package nfvchain_test

import (
	"fmt"
	"strings"

	nfvchain "nfvchain"
)

// Example runs the full joint-optimization pipeline on a tiny deterministic
// deployment: three VNFs chained two ways across two servers.
func Example() {
	problem := &nfvchain.Problem{
		Nodes: []nfvchain.Node{
			{ID: "server1", Capacity: 100},
			{ID: "server2", Capacity: 100},
		},
		VNFs: []nfvchain.VNF{
			{ID: "Firewall", Instances: 2, Demand: 20, ServiceRate: 100},
			{ID: "NAT", Instances: 1, Demand: 30, ServiceRate: 150},
			{ID: "IDS", Instances: 1, Demand: 50, ServiceRate: 120},
		},
		Requests: []nfvchain.Request{
			{ID: "web", Chain: []nfvchain.VNFID{"Firewall", "NAT"}, Rate: 40, DeliveryProb: 1},
			{ID: "scan", Chain: []nfvchain.VNFID{"Firewall", "IDS"}, Rate: 30, DeliveryProb: 1},
		},
	}

	sol, err := nfvchain.Optimize(problem, nfvchain.Options{Seed: 7})
	if err != nil {
		fmt.Println("optimize:", err)
		return
	}
	eval, err := nfvchain.Evaluate(sol)
	if err != nil {
		fmt.Println("evaluate:", err)
		return
	}

	fmt.Printf("nodes in service: %d\n", eval.NodesInService)
	fmt.Printf("requests rejected: %d\n", len(sol.Rejected))
	fmt.Printf("latency positive: %v\n", eval.MeanRequestLatency() > 0)
	// Output:
	// nodes in service: 2
	// requests rejected: 0
	// latency positive: true
}

// ExampleAnalyzeTrace shows trace synthesis plus Poisson verification.
func ExampleAnalyzeTrace() {
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.NumRequests = 1
	cfg.RateMin, cfg.RateMax = 50, 50 // one 50 pps flow
	problem, err := nfvchain.GenerateWorkload(cfg)
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	trace, err := nfvchain.GenerateTrace(problem, 60, 1)
	if err != nil {
		fmt.Println("trace:", err)
		return
	}
	for _, st := range nfvchain.AnalyzeTrace(trace) {
		fmt.Printf("rate≈50: %v, poisson: %v\n", st.Rate > 45 && st.Rate < 55, st.PoissonLike)
	}
	// Output:
	// rate≈50: true, poisson: true
}

// ExampleSolution_WriteJSON round-trips a solution through its JSON form.
func ExampleSolution_WriteJSON() {
	cfg := nfvchain.DefaultWorkloadConfig()
	cfg.NumRequests = 10
	problem, _ := nfvchain.GenerateWorkload(cfg)
	sol, err := nfvchain.Optimize(problem, nfvchain.Options{Seed: 3})
	if err != nil {
		fmt.Println("optimize:", err)
		return
	}
	var buf strings.Builder
	if err := sol.WriteJSON(&buf); err != nil {
		fmt.Println("write:", err)
		return
	}
	back, err := nfvchain.ReadSolutionJSON(strings.NewReader(buf.String()))
	if err != nil {
		fmt.Println("read:", err)
		return
	}
	fmt.Println("round trip ok:", back.Placement.NodesInService() == sol.Placement.NodesInService())
	// Output:
	// round trip ok: true
}
