#!/usr/bin/env sh
# serve_smoke.sh — boot nfvd on a random port, probe /healthz, run one tiny
# /v1/solve round-trip through curl, and shut the daemon down cleanly.
# Exercises the real binary end to end (flags, listener, queue, worker pool,
# graceful drain), complementing the in-process httptest suites.
set -eu

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -INT "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building nfvd"
go build -o "$workdir/nfvd" ./cmd/nfvd

"$workdir/nfvd" -addr 127.0.0.1:0 -workers 2 >"$workdir/nfvd.log" 2>&1 &
daemon_pid=$!

# The daemon prints "nfvd: listening on http://HOST:PORT" once ready.
base_url=""
for _ in $(seq 1 50); do
    base_url=$(sed -n 's/^nfvd: listening on \(http:\/\/.*\)$/\1/p' "$workdir/nfvd.log")
    [ -n "$base_url" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/nfvd.log"; echo "serve-smoke: daemon died during startup" >&2; exit 1; }
    sleep 0.1
done
[ -n "$base_url" ] || { cat "$workdir/nfvd.log"; echo "serve-smoke: daemon never became ready" >&2; exit 1; }
echo "serve-smoke: daemon at $base_url"

curl -fsS "$base_url/healthz" >/dev/null
echo "serve-smoke: healthz ok"

cat >"$workdir/solve.json" <<'EOF'
{
  "problem": {
    "nodes": [{"id": "n1", "capacity": 4}],
    "vnfs": [{"id": "fw", "instances": 1, "demand": 1, "serviceRate": 50}],
    "requests": [{"id": "r1", "chain": ["fw"], "rate": 5, "deliveryProb": 0.95}]
  },
  "options": {"seed": 42}
}
EOF

job_id=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$workdir/solve.json" "$base_url/v1/solve" |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$job_id" ] || { echo "serve-smoke: solve submission returned no job id" >&2; exit 1; }
echo "serve-smoke: submitted $job_id"

# Poll until the job leaves the queue (tiny problem: milliseconds).
state=""
for _ in $(seq 1 100); do
    state=$(curl -fsS "$base_url/v1/jobs/$job_id" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    [ "$state" = "done" ] && break
    case "$state" in failed|canceled) echo "serve-smoke: job ended $state" >&2; exit 1 ;; esac
    sleep 0.1
done
[ "$state" = "done" ] || { echo "serve-smoke: job stuck in state '$state'" >&2; exit 1; }

result=$(curl -fsS "$base_url/v1/jobs/$job_id/result")
case "$result" in
    *'"placement"'*'"schedule"'*) ;;
    *) echo "serve-smoke: result is not a solution document:" >&2; echo "$result" >&2; exit 1 ;;
esac
echo "serve-smoke: solve round-trip ok"

# Anytime round-trip: race a portfolio under a 200ms deadline. The unbounded
# SA entry guarantees the deadline (not the budgets) ends the race, and the
# greedy baseline guarantees an incumbent exists well before it.
cat >"$workdir/anytime.json" <<'EOF'
{
  "problem": {
    "nodes": [{"id": "n1", "capacity": 8}, {"id": "n2", "capacity": 8}],
    "vnfs": [
      {"id": "fw", "instances": 2, "demand": 2, "serviceRate": 50},
      {"id": "nat", "instances": 2, "demand": 2, "serviceRate": 40}
    ],
    "requests": [
      {"id": "r1", "chain": ["fw", "nat"], "rate": 10, "deliveryProb": 0.95},
      {"id": "r2", "chain": ["fw"], "rate": 8, "deliveryProb": 0.98}
    ]
  },
  "options": {"seed": 42},
  "portfolio": ["greedy", "sa:iters=0;cooling=0.999999"],
  "deadline_ms": 200
}
EOF

anytime_id=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$workdir/anytime.json" "$base_url/v1/solve" |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$anytime_id" ] || { echo "serve-smoke: anytime submission returned no job id" >&2; exit 1; }
echo "serve-smoke: submitted anytime race $anytime_id (200ms deadline)"

state=""
for _ in $(seq 1 100); do
    status=$(curl -fsS "$base_url/v1/jobs/$anytime_id")
    state=$(echo "$status" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
    [ "$state" = "done" ] && break
    case "$state" in failed|canceled) echo "serve-smoke: anytime job ended $state" >&2; exit 1 ;; esac
    sleep 0.1
done
[ "$state" = "done" ] || { echo "serve-smoke: anytime job stuck in state '$state'" >&2; exit 1; }

# The trajectory must carry at least one incumbent, and the result must be a
# best-so-far solution document despite the expired deadline.
echo "$status" | grep -q '"progress"' ||
    { echo "serve-smoke: anytime job status has no incumbent trajectory:" >&2; echo "$status" >&2; exit 1; }
anytime_result=$(curl -fsS "$base_url/v1/jobs/$anytime_id/result")
case "$anytime_result" in
    *'"placement"'*'"schedule"'*) ;;
    *) echo "serve-smoke: anytime result is not a solution document:" >&2; echo "$anytime_result" >&2; exit 1 ;;
esac
echo "serve-smoke: anytime race round-trip ok (incumbent returned at deadline)"

metrics=$(curl -fsS "$base_url/metrics")
echo "$metrics" | grep -q '"queueCapacity"' ||
    { echo "serve-smoke: metrics missing queueCapacity" >&2; exit 1; }
echo "$metrics" | grep -q '"races"' ||
    { echo "serve-smoke: metrics missing race counters" >&2; exit 1; }
echo "serve-smoke: metrics ok"

kill -INT "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""
grep -q "nfvd: bye" "$workdir/nfvd.log" ||
    { cat "$workdir/nfvd.log"; echo "serve-smoke: daemon did not shut down cleanly" >&2; exit 1; }
echo "serve-smoke: graceful shutdown ok"
