// Package nfvchain is a library for joint optimization of VNF chain
// placement and request scheduling in NFV datacenters, reproducing the
// system of Zhang et al., "Joint Optimization of Chain Placement and Request
// Scheduling for Network Function Virtualization" (IEEE ICDCS 2017).
//
// The library models a datacenter as computing nodes with CPU-bounded
// capacities hosting Virtual Network Functions (VNFs); requests are Poisson
// packet flows that traverse ordered VNF chains, with packet-loss feedback
// and retransmission. Two coupled NP-hard problems are solved heuristically:
//
//   - Chain placement: BFDSU (Best Fit Decreasing using Smallest Used nodes
//     with the largest probability) packs every VNF's service-instance
//     bundle onto nodes, maximizing the average utilization of nodes in
//     service. Baselines: FFD, BFD, WFD, NAH, random, and an exact
//     branch-and-bound optimum for small instances.
//
//   - Request scheduling: RCKK (Reverse Complete Karmarkar-Karp) balances
//     the requests sharing a VNF across its M_f service instances,
//     minimizing the average M/M/1 response latency. Baselines: CGA
//     (greedy), forward-combining KK, round-robin, random, and an exact
//     branch-and-bound partitioner.
//
// Solutions are evaluated two ways, which agree by construction and by
// test: analytically via open Jackson network theory (per-instance M/M/1
// response times, Kleinrock flow merging, λ/P loss inflation) and
// empirically via a packet-level discrete-event simulator.
//
// # Quick start
//
//	problem, err := nfvchain.GenerateWorkload(nfvchain.DefaultWorkloadConfig())
//	if err != nil { ... }
//	sol, err := nfvchain.Optimize(problem, nfvchain.Options{})
//	if err != nil { ... }
//	eval, err := nfvchain.Evaluate(sol)
//	if err != nil { ... }
//	fmt.Printf("utilization %.1f%% over %d nodes, mean latency %.4fs\n",
//	    eval.AvgUtilization*100, eval.NodesInService, eval.MeanRequestLatency())
//
// # Cluster mode
//
// Beyond the paper's single datacenter, OptimizeCluster partitions a
// workload across N regions (a configurable fraction of requests promoted
// to global flows any region can serve) and SimulateCluster composes the N
// per-region simulators under one global clock: the underlying Simulator
// exposes stepping primitives (HasPendingEvents, PeekNextEventTime,
// ProcessNextEvent, Inject), and internal/cluster always advances the
// datacenter with the earliest pending event, routing each global arrival
// with a pluggable policy (NewClusterRouter: locality, least-loaded,
// weighted) and charging a WAN entry hop for off-home service. A
// 1-datacenter cluster at zero WAN latency is bit-identical to a plain
// Simulate call at the same seed.
//
// # Streaming workloads
//
// Beyond the default flat-Poisson tier, SimulationConfig accepts pull-based
// arrivals: Sources maps requests to ArrivalSource generators — Poisson and
// log-normal renewals, diurnal NHPP, bursty MMPP on/off processes, built
// individually in internal/workload or as a weighted steady/diurnal/bursty
// client-class mix by BuildClassSources — and TraceStream replays a merged
// arrival cursor (NewTraceStream over a CSV, or NewMergedStream superposing
// per-request sources). The engine stages one arrival event per
// live cursor and re-pulls after each dispatch, so multi-million-arrival
// replays run in O(#requests) long-lived memory; ExpectedArrivals pre-sizes
// the event agenda, and AnalyzeArrivals computes per-flow rate, burstiness
// and a Poisson KS test from any cursor in one pass. Streamed replay is
// bit-identical to materializing the same trace, and explicit Poisson
// sources on the canonical streams are bit-identical to the built-in tier
// (also for cluster global flows via GlobalRequest sources).
//
// # Solver portfolio and anytime racing
//
// Beyond the fixed two-phase pipeline, SolveRace optimizes placement and
// scheduling jointly: a portfolio of solvers — the greedy pipelines (greedy,
// bfd, ffd, nah, exact) plus a metaheuristic tier of simulated annealing
// (sa), large-neighborhood search (lns) and particle-swarm placement with a
// KK inner scheduler (pso) — races on parallel workers, each reporting a
// monotone stream of incumbents (PortfolioIncumbent) while a shared
// first-improvement publication feeds RaceOptions.OnIncumbent. Budgets are
// iterations, not wall clock, so at a fixed RaceOptions.Seed every solver's
// (iteration, objective) trajectory is deterministic and the winner is
// invariant to worker count; a context deadline bounds wall clock, returning
// best-so-far. Specs parse from "name:key=value;..." strings
// (ParsePortfolioSpecs, DefaultPortfolio); the winner is finalized exactly
// like Optimize, admission control included. The same race runs behind
// cmd/nfvd's POST /v1/solve (portfolio + deadline_ms, trajectory in job
// progress) and cmd/nfvsim's -solver portfolio flag.
//
// # Online control plane
//
// The simulator's deployment need not stay static: NewController builds a
// pool manager that attaches as both SimulationConfig.FaultHook and
// SimulationConfig.Control (ticking every ControlInterval simulated
// seconds) and, by ControlPolicy, autoscales each VNF's instance pool
// against observed utilization, migrates instances off failed/hot/doomed
// nodes for an explicit cost, and sheds uncoverable admissions
// deterministically (Results.Shed). FaultPlan.Preemption adds correlated
// node-group losses with optional advance notice the controller evacuates
// ahead of. Control == nil and Preemption == nil keep every run
// bit-identical to historical ones; per-region controllers compose into
// cluster mode via ClusterSimConfig.FaultPlans and FaultHooks.
//
// The cmd/nfvsim binary regenerates every figure of the paper's evaluation;
// see EXPERIMENTS.md for the paper-vs-measured record and DESIGN.md for the
// architecture. The cmd/nfvd binary serves the optimizer and simulator as a
// long-running HTTP daemon (job queue, worker pool, content-addressed result
// cache, cancellation) with a Go client in internal/service; served results
// are bit-identical to the direct library calls at the same seed.
package nfvchain
