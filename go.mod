module nfvchain

go 1.22
