package nfvchain

import (
	"testing"
)

func TestEndToEndFacade(t *testing.T) {
	cfg := DefaultWorkloadConfig()
	cfg.NumRequests = 80
	p, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Optimize(p, Options{Seed: 1, LinkDelay: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(sol)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AvgUtilization <= 0 || ev.NodesInService < 1 {
		t.Errorf("evaluation implausible: %+v", ev)
	}
	res, err := Simulate(sol, SimulationConfig{Horizon: 5, Warmup: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("simulation delivered nothing")
	}
}

func TestFacadeConstructors(t *testing.T) {
	placers := []PlacementAlgorithm{
		NewBFDSU(1), NewFFD(), NewBFD(), NewWFD(), NewNAH(), NewExactPlacer(),
	}
	wantPlacers := []string{"BFDSU", "FFD", "BFD", "WFD", "NAH", "Exact"}
	for i, alg := range placers {
		if alg.Name() != wantPlacers[i] {
			t.Errorf("placer %d name = %s, want %s", i, alg.Name(), wantPlacers[i])
		}
	}
	schedulers := []SchedulingAlgorithm{NewRCKK(), NewCGA(), NewExactScheduler()}
	wantScheds := []string{"RCKK", "CGA", "Exact"}
	for i, alg := range schedulers {
		if alg.Name() != wantScheds[i] {
			t.Errorf("scheduler %d name = %s, want %s", i, alg.Name(), wantScheds[i])
		}
	}
}

func TestFacadeCustomAlgorithms(t *testing.T) {
	cfg := DefaultWorkloadConfig()
	cfg.NumRequests = 40
	p, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Optimize(p, Options{Placer: NewFFD(), Scheduler: NewCGA()})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PlacementIterations != 1 {
		t.Errorf("FFD iterations = %d", sol.PlacementIterations)
	}
}

func TestFacadeTraceDriven(t *testing.T) {
	cfg := DefaultWorkloadConfig()
	cfg.NumRequests = 20
	p, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(p, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sol, SimulationConfig{Horizon: 3, Trace: tr, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("trace-driven simulation delivered nothing")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// New scheduler constructors.
	for _, alg := range []SchedulingAlgorithm{NewCKK(), NewKKForward(), NewRoundRobin()} {
		if alg.Name() == "" {
			t.Error("unnamed scheduler")
		}
	}

	// Topology + router + TA placer.
	topo, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewChainRouter(topo); err != nil {
		t.Fatal(err)
	}
	if names := SNDlibTopologyNames(); len(names) != 5 {
		t.Errorf("SNDlibTopologyNames = %v", names)
	}
	if _, err := NewSNDlibTopology("abilene"); err != nil {
		t.Error(err)
	}
	if _, err := NewRandomTopology(10, 15, 1); err != nil {
		t.Error(err)
	}
	if NewTopologyAwarePlacer(topo, 1).Name() != "TA-BFDSU" {
		t.Error("TA placer name wrong")
	}

	// Dynamic controller round trip.
	base := &Problem{
		Nodes: []Node{{ID: "n", Capacity: 100}},
		VNFs:  []VNF{{ID: "f", Instances: 1, Demand: 10, ServiceRate: 100}},
	}
	ctrl, err := NewDynamicController(DynamicConfig{Problem: base, SetupCost: SetupCostClickOS})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctrl.Admit(Request{ID: "r", Chain: []VNFID{"f"}, Rate: 10, DeliveryProb: 1}, 0)
	if err != nil || !out.Accepted {
		t.Fatalf("admit: %v %+v", err, out)
	}
	if SetupCostVM <= SetupCostClickOS {
		t.Error("setup cost constants inverted")
	}

	// Multi-resource annotation.
	cfg := DefaultWorkloadConfig()
	cfg.NumRequests = 30
	p, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := AddMemoryDimension(p, 1); err != nil {
		t.Fatal(err)
	}
	if p.ExtraResources() != 1 {
		t.Error("memory dimension missing")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 21 {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	if DefaultExperimentConfig().SchedulingTrials != 1000 {
		t.Error("default experiment config should match the paper's protocol")
	}
	tab, err := RunExperiment("fig12", ExperimentConfig{Seed: 1, PlacementTrials: 2, SchedulingTrials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig12" || len(tab.Series) == 0 {
		t.Errorf("experiment table implausible: %+v", tab)
	}
	if err := FastExperimentConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestFacadePolishAndBounds(t *testing.T) {
	cfg := DefaultWorkloadConfig()
	cfg.NumRequests = 60
	p, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.5 * p.TotalCapacity() / p.TotalDemand()
	for i := range p.VNFs {
		p.VNFs[i].Demand *= scale
	}
	sol, err := Optimize(p, Options{Placer: NewWFD()})
	if err != nil {
		t.Fatal(err)
	}
	lb := PlacementLowerBound(p)
	if lb < 1 {
		t.Errorf("lower bound = %d", lb)
	}
	better, err := ImprovePlacement(p, sol.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if better.NodesInService() > sol.Placement.NodesInService() {
		t.Error("ImprovePlacement worsened node count")
	}
	if better.NodesInService() < lb {
		t.Errorf("polished placement %d beats the lower bound %d", better.NodesInService(), lb)
	}
	sched, err := ImproveSchedule(p, sol.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(p); err != nil {
		t.Fatal(err)
	}
}
