package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/queueing"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
	"nfvchain/internal/workload"
)

func genProblem(t *testing.T, seed uint64) *model.Problem {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	cfg.NumRequests = 100
	p, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOptimizeDefaultPipeline(t *testing.T) {
	p := genProblem(t, 1)
	sol, err := Optimize(p, Options{Seed: 1, LinkDelay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Placement.Validate(p); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	if err := sol.Schedule.ValidatePartial(p); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if sol.PlacementIterations < 1 {
		t.Error("missing iteration count")
	}
	if sol.LinkDelay != 0.5 {
		t.Error("link delay not propagated")
	}
	// Workload generator guarantees headroom, so a balanced RCKK schedule
	// should admit everything.
	if sol.RejectionRate != 0 {
		t.Errorf("unexpected rejections: %v", sol.Rejected)
	}
}

func TestOptimizeRejectsInvalidProblem(t *testing.T) {
	if _, err := Optimize(&model.Problem{}, Options{}); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestOptimizePropagatesPlacementFailure(t *testing.T) {
	p := genProblem(t, 2)
	// Shrink every node so nothing fits.
	for i := range p.Nodes {
		p.Nodes[i].Capacity = 1
	}
	_, err := Optimize(p, Options{})
	if !errors.Is(err, placement.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestOptimizeCustomAlgorithms(t *testing.T) {
	p := genProblem(t, 3)
	sol, err := Optimize(p, Options{Placer: placement.FFD{}, Scheduler: scheduling.CGA{}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.PlacementIterations != 1 {
		t.Errorf("FFD iterations = %d, want 1", sol.PlacementIterations)
	}
}

func TestEvaluateObjectives(t *testing.T) {
	p := genProblem(t, 4)
	sol, err := Optimize(p, Options{Seed: 4, LinkDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(sol)
	if err != nil {
		t.Fatal(err)
	}
	if ev.AvgUtilization <= 0 || ev.AvgUtilization > 1 {
		t.Errorf("AvgUtilization = %v outside (0,1]", ev.AvgUtilization)
	}
	if ev.NodesInService < 1 || ev.NodesInService > len(p.Nodes) {
		t.Errorf("NodesInService = %d", ev.NodesInService)
	}
	if ev.ResourceOccupation <= 0 {
		t.Errorf("ResourceOccupation = %v", ev.ResourceOccupation)
	}
	if ev.AvgResponseTime <= 0 {
		t.Errorf("AvgResponseTime = %v", ev.AvgResponseTime)
	}
	if ev.TotalLatency <= 0 {
		t.Errorf("TotalLatency = %v", ev.TotalLatency)
	}
	if got := len(ev.PerRequestLatency); got != len(p.Requests)-len(sol.Rejected) {
		t.Errorf("PerRequestLatency entries = %d", got)
	}
	if mean := ev.MeanRequestLatency(); math.Abs(mean*float64(len(ev.PerRequestLatency))-ev.TotalLatency) > 1e-9 {
		t.Errorf("MeanRequestLatency inconsistent: %v", mean)
	}
	// All instances reported, sorted.
	var total int
	for _, f := range p.VNFs {
		total += f.Instances
	}
	if len(ev.Instances) != total {
		t.Errorf("Instances = %d, want %d", len(ev.Instances), total)
	}
}

func TestEvaluateMatchesEq12UnderUniformP(t *testing.T) {
	// Single VNF, two instances, uniform P: W(f,k) must equal Eq. 12's
	// closed form 1/(Pµ − Σλ).
	p := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 100}},
		VNFs:  []model.VNF{{ID: "f", Instances: 2, Demand: 1, ServiceRate: 100}},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"f"}, Rate: 30, DeliveryProb: 0.98},
			{ID: "r2", Chain: []model.VNFID{"f"}, Rate: 40, DeliveryProb: 0.98},
		},
	}
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(sol)
	if err != nil {
		t.Fatal(err)
	}
	for _, ie := range ev.Instances {
		if ie.RawArrival == 0 {
			continue
		}
		want, err := queueing.InstanceResponseTime(100, 0.98, []float64{ie.RawArrival})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ie.ResponseTime-want) > 1e-9 {
			t.Errorf("instance %d: W = %v, want Eq.12 %v", ie.Instance, ie.ResponseTime, want)
		}
	}
}

func TestEvaluateUnstableWithoutAdmission(t *testing.T) {
	p := &model.Problem{
		Nodes:    []model.Node{{ID: "n", Capacity: 100}},
		VNFs:     []model.VNF{{ID: "f", Instances: 1, Demand: 1, ServiceRate: 50}},
		Requests: []model.Request{{ID: "r", Chain: []model.VNFID{"f"}, Rate: 60, DeliveryProb: 1}},
	}
	sol, err := Optimize(p, Options{DisableAdmissionControl: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(sol); !errors.Is(err, queueing.ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
	// With admission control the overload is rejected and evaluation works.
	sol2, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol2.Rejected) != 1 {
		t.Fatalf("Rejected = %v", sol2.Rejected)
	}
	if _, err := Evaluate(sol2); err != nil {
		t.Errorf("Evaluate after admission: %v", err)
	}
}

func TestEvaluateLinkLatencyTerm(t *testing.T) {
	// Two VNFs forced onto different nodes: Eq. 16 adds (span−1)·L.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 10},
			{ID: "n2", Capacity: 10},
		},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 10, ServiceRate: 100},
			{ID: "f2", Instances: 1, Demand: 10, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "r", Chain: []model.VNFID{"f1", "f2"}, Rate: 10, DeliveryProb: 1},
		},
	}
	const linkDelay = 2.0
	sol, err := Optimize(p, Options{LinkDelay: linkDelay})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(sol)
	if err != nil {
		t.Fatal(err)
	}
	wantChain := 2.0 / (100 - 10) // two stages, W = 1/(µ−λ) each
	want := wantChain + linkDelay
	if math.Abs(ev.TotalLatency-want) > 1e-9 {
		t.Errorf("TotalLatency = %v, want %v (chain + L)", ev.TotalLatency, want)
	}
}

func TestSimulateBridge(t *testing.T) {
	p := genProblem(t, 6)
	sol, err := Optimize(p, Options{Seed: 6, LinkDelay: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sol, SimulationConfig{Horizon: 20, Warmup: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("simulation delivered nothing")
	}
}

func TestAnalyticVsSimulatedLatencyAgree(t *testing.T) {
	// End-to-end validation of the open-Jackson model: the analytic mean
	// request latency (Eq. 16 with L=0) must match the simulator within a
	// loose tolerance on a well-provisioned instance.
	p := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 2, Demand: 1, ServiceRate: 120},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 200},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"f1", "f2"}, Rate: 40, DeliveryProb: 0.98},
			{ID: "r2", Chain: []model.VNFID{"f1"}, Rate: 50, DeliveryProb: 0.98},
			{ID: "r3", Chain: []model.VNFID{"f2"}, Rate: 30, DeliveryProb: 0.98},
		},
	}
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(sol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sol, SimulationConfig{Horizon: 3000, Warmup: 200, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	// Compare per-request: analytic Eq. 16 term vs simulated mean sojourn.
	for rid, analytic := range ev.PerRequestLatency {
		sim := res.PerRequest[rid].Mean()
		if math.Abs(sim-analytic)/analytic > 0.15 {
			t.Errorf("request %s: simulated %v vs analytic %v", rid, sim, analytic)
		}
	}
}

func TestOptimizePropertyAcrossConfigs(t *testing.T) {
	// Any feasible generated workload must yield a valid, evaluable
	// solution: placement feasible, schedule complete modulo rejections,
	// every loaded instance stable after admission control.
	f := func(seed uint64, vnfs8, reqs8, nodes8 uint8) bool {
		cfg := workload.DefaultConfig()
		cfg.Seed = seed
		cfg.NumVNFs = 6 + int(vnfs8%25)   // 6..30
		cfg.NumRequests = 10 + int(reqs8) // 10..265
		cfg.NumNodes = 4 + int(nodes8%17) // 4..20
		if cfg.MaxChainLength > cfg.NumVNFs {
			cfg.MaxChainLength = cfg.NumVNFs
		}
		p, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		sol, err := Optimize(p, Options{Seed: seed, LinkDelay: 0.001})
		if err != nil {
			return false
		}
		if sol.Placement.Validate(p) != nil || sol.Schedule.ValidatePartial(p) != nil {
			return false
		}
		ev, err := Evaluate(sol)
		if err != nil {
			return false
		}
		for _, ie := range ev.Instances {
			if ie.RawArrival > 0 && ie.Utilization >= 1 {
				return false
			}
		}
		return ev.TotalLatency >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateRejectsForeignSchedule(t *testing.T) {
	p := genProblem(t, 8)
	sol, err := Optimize(p, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sol.Schedule.Assign("ghost", "nope", 0)
	if _, err := Evaluate(sol); err == nil || !strings.Contains(err.Error(), "unknown request") {
		t.Errorf("err = %v", err)
	}
}

func TestPerInstanceLatencyMatchesEq11(t *testing.T) {
	// The simulator's measured per-visit sojourn at every instance must
	// match the analytic W(f,k) of Eq. 11 — the per-instance granularity of
	// the model validation.
	p := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 2, Demand: 1, ServiceRate: 130},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 220},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"f1", "f2"}, Rate: 45, DeliveryProb: 0.98},
			{ID: "r2", Chain: []model.VNFID{"f1"}, Rate: 55, DeliveryProb: 0.98},
			{ID: "r3", Chain: []model.VNFID{"f2"}, Rate: 35, DeliveryProb: 0.98},
		},
	}
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(sol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sol, SimulationConfig{Horizon: 3000, Warmup: 200, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, ie := range ev.Instances {
		if ie.RawArrival == 0 {
			continue
		}
		key := simulate.InstanceKey{VNF: ie.VNF, Instance: ie.Instance}
		sum, ok := res.PerInstance[key]
		if !ok || sum.N() == 0 {
			t.Fatalf("no per-instance samples for %v", key)
		}
		got := sum.Mean()
		if math.Abs(got-ie.ResponseTime)/ie.ResponseTime > 0.08 {
			t.Errorf("%s/%d: simulated W %v vs Eq. 11 %v", ie.VNF, ie.Instance, got, ie.ResponseTime)
		}
	}
}
