package core

import (
	"fmt"
	"sort"

	"nfvchain/internal/model"
	"nfvchain/internal/queueing"
)

// InstanceEval holds the analytic steady-state view of one service instance.
type InstanceEval struct {
	VNF      model.VNFID
	Instance int
	// Arrival is Λ_k^f, the effective (retransmission-inflated) total rate.
	Arrival float64
	// RawArrival is Σ λ_r z_{r,k}^f without loss inflation.
	RawArrival float64
	// Utilization is ρ_k^f = Λ_k^f / µ_f (Eq. 9).
	Utilization float64
	// ResponseTime is W(f,k) per Eq. 11 (0 for an idle instance).
	ResponseTime float64
}

// Evaluation aggregates the paper's objectives for a solution.
type Evaluation struct {
	// Objective 1 (Eq. 13): mean load(v)/A_v over nodes in service.
	AvgUtilization float64
	// Eq. 14: Σ_v y_v.
	NodesInService int
	// Fig. 9 metric: total capacity of nodes in service.
	ResourceOccupation float64

	// Objective 2 (Eq. 15): W(f,k) averaged over loaded instances, per VNF
	// and overall.
	AvgResponseTime float64
	PerVNFResponse  map[model.VNFID]float64
	Instances       []InstanceEval

	// Eq. 16: Σ_r (chain response + (span−1)·L) over admitted requests.
	TotalLatency float64
	// PerRequestLatency is each admitted request's Eq. 16 term.
	PerRequestLatency map[model.RequestID]float64
}

// Evaluate computes the analytic objectives of a solution. It fails with
// queueing.ErrUnstable (wrapped) when any loaded instance has ρ ≥ 1 — which
// cannot happen after admission control.
func Evaluate(sol *Solution) (*Evaluation, error) {
	p := sol.Problem
	if err := sol.Placement.Validate(p); err != nil {
		return nil, fmt.Errorf("core: evaluate: %w", err)
	}
	if err := sol.Schedule.ValidatePartial(p); err != nil {
		return nil, fmt.Errorf("core: evaluate: %w", err)
	}

	ev := &Evaluation{
		AvgUtilization:     sol.Placement.AverageUtilization(p),
		NodesInService:     sol.Placement.NodesInService(),
		ResourceOccupation: sol.Placement.ResourceOccupation(p),
		PerVNFResponse:     make(map[model.VNFID]float64),
		PerRequestLatency:  make(map[model.RequestID]float64),
	}

	// Per-instance response times, W(f,k) of Eq. 11.
	response := make(map[model.VNFID][]float64) // per VNF, indexed by k
	var grand float64
	var grandN int
	for _, f := range p.VNFs {
		eff := sol.Schedule.InstanceLoads(p, f.ID)
		raw := sol.Schedule.RawInstanceLoads(p, f.ID)
		ws := make([]float64, f.Instances)
		var sum float64
		var loaded int
		for k := 0; k < f.Instances; k++ {
			ie := InstanceEval{
				VNF:         f.ID,
				Instance:    k,
				Arrival:     eff[k],
				RawArrival:  raw[k],
				Utilization: eff[k] / f.ServiceRate,
			}
			if raw[k] > 0 {
				if eff[k] >= f.ServiceRate {
					return nil, fmt.Errorf("core: evaluate: vnf %s instance %d (Λ=%v, µ=%v): %w",
						f.ID, k, eff[k], f.ServiceRate, queueing.ErrUnstable)
				}
				// Eq. 11: W = ρ / ((1−ρ)·Σλ_raw); equals Eq. 12's
				// 1/(Pµ−Σλ) under uniform P.
				rho := ie.Utilization
				ie.ResponseTime = rho / ((1 - rho) * raw[k])
				sum += ie.ResponseTime
				loaded++
			}
			ws[k] = ie.ResponseTime
			ev.Instances = append(ev.Instances, ie)
		}
		response[f.ID] = ws
		if loaded > 0 {
			ev.PerVNFResponse[f.ID] = sum / float64(loaded)
			grand += sum
			grandN += loaded
		}
	}
	if grandN > 0 {
		ev.AvgResponseTime = grand / float64(grandN)
	}

	// Eq. 16 over admitted requests.
	for _, r := range p.Requests {
		if len(sol.Schedule.InstanceOf[r.ID]) == 0 {
			continue // rejected
		}
		var lat float64
		for _, fid := range r.Chain {
			k, _ := sol.Schedule.Instance(r.ID, fid)
			lat += response[fid][k]
		}
		span := sol.Placement.NodeSpan(r)
		if span > 1 {
			lat += float64(span-1) * sol.LinkDelay
		}
		ev.PerRequestLatency[r.ID] = lat
		ev.TotalLatency += lat
	}

	sort.Slice(ev.Instances, func(i, j int) bool {
		if ev.Instances[i].VNF != ev.Instances[j].VNF {
			return ev.Instances[i].VNF < ev.Instances[j].VNF
		}
		return ev.Instances[i].Instance < ev.Instances[j].Instance
	})
	return ev, nil
}

// MeanRequestLatency returns TotalLatency averaged over admitted requests
// (0 when none).
func (ev *Evaluation) MeanRequestLatency() float64 {
	if len(ev.PerRequestLatency) == 0 {
		return 0
	}
	return ev.TotalLatency / float64(len(ev.PerRequestLatency))
}
