// Package core implements the paper's joint optimization pipeline: phase
// one places VNF chains on computing nodes (Section IV-A, default BFDSU),
// phase two schedules requests onto service instances (Section IV-B, default
// RCKK), with admission control enforcing per-instance stability. It also
// evaluates solutions analytically — Objective 1 (Eq. 13/14), Objective 2
// (Eq. 15) and the combined total latency (Eq. 16) — and bridges to the
// discrete-event simulator for empirical validation.
package core

import (
	"context"
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
	"nfvchain/internal/workload"
)

// Options configures the pipeline. Zero values select the paper's proposed
// algorithms.
type Options struct {
	// Placer is the phase-one algorithm; nil means BFDSU with Seed.
	Placer placement.Algorithm
	// Scheduler is the phase-two algorithm; nil means RCKK.
	Scheduler scheduling.Partitioner
	// LinkDelay is the constant per-hop latency L of Eq. 16.
	LinkDelay float64
	// DisableAdmissionControl keeps overloaded assignments instead of
	// rejecting requests; Evaluate will then fail on unstable instances.
	DisableAdmissionControl bool
	// Seed drives the default BFDSU placer.
	Seed uint64
}

// Solution is the output of the two-phase pipeline.
type Solution struct {
	Problem   *model.Problem
	Placement *model.Placement
	// PlacementIterations is the Fig. 10 execution-cost counter.
	PlacementIterations int
	// Schedule has admission control already applied (unless disabled).
	Schedule *model.Schedule
	// Rejected lists requests dropped by admission control.
	Rejected []model.RequestID
	// RejectionRate is the paper's job rejection rate (Figs. 15–16).
	RejectionRate float64
	// LinkDelay echoes the L used for Eq. 16 evaluation.
	LinkDelay float64
}

// Optimize runs placement then scheduling on the problem.
func Optimize(p *model.Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	placer := opts.Placer
	if placer == nil {
		placer = &placement.BFDSU{Seed: opts.Seed}
	}
	scheduler := opts.Scheduler
	if scheduler == nil {
		scheduler = scheduling.RCKK{}
	}

	placed, err := placer.Place(p)
	if err != nil {
		return nil, fmt.Errorf("core: placement (%s): %w", placer.Name(), err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduler)
	if err != nil {
		return nil, fmt.Errorf("core: scheduling (%s): %w", scheduler.Name(), err)
	}

	sol := &Solution{
		Problem:             p,
		Placement:           placed.Placement,
		PlacementIterations: placed.Iterations,
		Schedule:            sched,
		LinkDelay:           opts.LinkDelay,
	}
	if !opts.DisableAdmissionControl {
		adm, err := scheduling.ApplyAdmissionControl(p, sched)
		if err != nil {
			return nil, fmt.Errorf("core: admission control: %w", err)
		}
		sol.Schedule = adm.Admitted
		sol.Rejected = adm.Rejected
		sol.RejectionRate = adm.RejectionRate
	}
	return sol, nil
}

// SimulationConfig carries the simulator knobs not already fixed by the
// solution.
type SimulationConfig struct {
	Horizon    float64
	Warmup     float64
	BufferSize int
	// DropPolicy selects the fate of packets meeting a full buffer (zero
	// value = DropDiscard, the historical silent-loss semantics);
	// DropRetransmit re-injects them from the source after RetransmitDelay.
	DropPolicy      simulate.DropPolicy
	RetransmitDelay float64
	Trace           *workload.Trace
	// TraceStream replays arrivals from a forward-only cursor (e.g. a
	// workload.TraceStream over a CSV) in constant memory — bit-identical to
	// materializing the same trace into Trace. Mutually exclusive with
	// Trace and Sources.
	TraceStream simulate.TraceSource
	// Sources overrides individual requests' arrival processes with
	// pull-based generators (e.g. workload.BuildSources client classes);
	// absent requests keep the flat-Poisson default. Mutually exclusive
	// with Trace and TraceStream.
	Sources map[model.RequestID]simulate.ArrivalSource
	// ExpectedArrivals hints the total arrival count for streamed runs
	// (agenda sizing, sample pre-allocation); 0 falls back to the offered-
	// rate estimate.
	ExpectedArrivals int
	// ServiceDist selects the service-time distribution (zero value =
	// exponential, the paper's assumption).
	ServiceDist simulate.ServiceDist
	// Agenda selects the event-queue backend (zero value AgendaAuto picks
	// by expected event count). Pop order is identical under every kind,
	// so results are bit-for-bit reproducible regardless of the choice.
	Agenda simulate.AgendaKind
	Seed   uint64

	// FaultPlan injects node failures; nil (the zero value) disables fault
	// injection and keeps runs bit-identical to historical ones.
	FaultPlan *simulate.FaultPlan
	// FailurePolicy selects the fate of packets caught at failed instances
	// (zero value FailDrop). Ignored without a FaultPlan.
	FailurePolicy simulate.FailurePolicy
	// FaultHook observes node transitions and may repair the run mid-
	// flight (e.g. a repair.Controller). Ignored without a FaultPlan.
	FaultHook simulate.FaultHook

	// Control attaches a periodic control plane (e.g. a control.Controller):
	// it ticks every ControlInterval simulated seconds and may autoscale,
	// migrate and shed. nil (the zero value) keeps runs bit-identical to
	// historical ones; ControlInterval must be positive and finite when set.
	Control         simulate.ControlHook
	ControlInterval float64
}

// Simulate runs the discrete-event simulator on a solution, wiring in its
// placement, post-admission schedule and link delay.
func Simulate(sol *Solution, cfg SimulationConfig) (*simulate.Results, error) {
	return SimulateContext(context.Background(), sol, cfg)
}

// SimulateContext is Simulate with cancellation: the event loop polls ctx
// every simulate.CtxCheckInterval events and aborts with ctx.Err() when it
// fires. With a background context it is bit-identical to Simulate.
func SimulateContext(ctx context.Context, sol *Solution, cfg SimulationConfig) (*simulate.Results, error) {
	return simulate.RunContext(ctx, simConfig(sol, cfg))
}

// SimulateWith runs the simulation on a caller-provided reusable Simulator,
// amortizing run-state allocation across runs (the serving daemon's worker
// pool path). The returned Results aliases the simulator's buffers and is
// only valid until its next Reset; outputs are bit-identical to Simulate
// under the same config and seed.
func SimulateWith(ctx context.Context, sim *simulate.Simulator, sol *Solution, cfg SimulationConfig) (*simulate.Results, error) {
	if err := sim.Reset(simConfig(sol, cfg)); err != nil {
		return nil, err
	}
	return sim.RunContext(ctx)
}

// simConfig wires a solution and the remaining knobs into the simulator's
// config.
func simConfig(sol *Solution, cfg SimulationConfig) simulate.Config {
	return simulate.Config{
		Problem:          sol.Problem,
		Schedule:         sol.Schedule,
		Placement:        sol.Placement,
		LinkDelay:        sol.LinkDelay,
		Horizon:          cfg.Horizon,
		Warmup:           cfg.Warmup,
		BufferSize:       cfg.BufferSize,
		DropPolicy:       cfg.DropPolicy,
		RetransmitDelay:  cfg.RetransmitDelay,
		Trace:            cfg.Trace,
		TraceStream:      cfg.TraceStream,
		Sources:          cfg.Sources,
		ExpectedArrivals: cfg.ExpectedArrivals,
		ServiceDist:      cfg.ServiceDist,
		Agenda:           cfg.Agenda,
		Seed:             cfg.Seed,
		FaultPlan:        cfg.FaultPlan,
		FailurePolicy:    cfg.FailurePolicy,
		FaultHook:        cfg.FaultHook,
		Control:          cfg.Control,
		ControlInterval:  cfg.ControlInterval,
	}
}
