package core

import (
	"context"
	"fmt"

	"nfvchain/internal/cluster"
	"nfvchain/internal/model"
	"nfvchain/internal/simulate"
)

// ClusterOptions configures PartitionRegions/OptimizeCluster: the multi-
// datacenter lift of the single-datacenter pipeline.
type ClusterOptions struct {
	// Datacenters is the number of regions (>= 1).
	Datacenters int
	// GlobalFraction is the fraction of requests promoted to cluster-level
	// (global) flows, routed across datacenters per arrival. 0 keeps every
	// request regional; 1 promotes all of them.
	GlobalFraction float64
	// Options is the per-region placement/scheduling pipeline configuration;
	// Options.Seed is varied per region so placements differ.
	Options Options
}

// ClusterSolution is the per-region output of OptimizeCluster plus the
// global flow list shared by every region.
type ClusterSolution struct {
	// Regions holds one solved pipeline per datacenter.
	Regions []*Solution
	// Names labels the regions ("region0", ...).
	Names []string
	// Global lists the promoted flows; each is present in every region's
	// problem (so any region can serve it) and homed at the region that
	// would have owned it regionally.
	Global []cluster.GlobalRequest
}

// PartitionRegions splits a base problem into n regional problems. Every
// region receives a full copy of the node set (its own capacity) and the
// VNF catalog; requests are dealt round-robin to their home region. A
// globalFraction share of requests is promoted to global flows: those are
// included in EVERY region's problem — each region provisions for the full
// global load it might be asked to serve, the realistic failover posture —
// and listed in the returned ClusterSolution skeleton with their home set.
// The regional problems are returned unsolved (Regions[i].Problem only).
func PartitionRegions(base *model.Problem, n int, globalFraction float64) ([]*model.Problem, []cluster.GlobalRequest, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("core: %d datacenters; need at least 1", n)
	}
	if !(globalFraction >= 0 && globalFraction <= 1) {
		return nil, nil, fmt.Errorf("core: global fraction %v outside [0,1]", globalFraction)
	}
	if err := base.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	problems := make([]*model.Problem, n)
	for d := range problems {
		problems[d] = &model.Problem{
			Nodes: append([]model.Node{}, base.Nodes...),
			VNFs:  append([]model.VNF{}, base.VNFs...),
		}
	}
	// Promote every k-th request (k = 1/globalFraction); k=1 promotes all.
	globalEvery := 0
	if globalFraction > 0 {
		globalEvery = int(1/globalFraction + 0.5)
		if globalEvery < 1 {
			globalEvery = 1
		}
	}
	var globals []cluster.GlobalRequest
	for i, r := range base.Requests {
		home := i % n
		if globalEvery > 0 && i%globalEvery == 0 {
			globals = append(globals, cluster.GlobalRequest{ID: r.ID, Rate: r.Rate, Home: home})
			for d := range problems {
				problems[d].Requests = append(problems[d].Requests, r)
			}
			continue
		}
		problems[home].Requests = append(problems[home].Requests, r)
	}
	for d, p := range problems {
		if len(p.Requests) == 0 {
			return nil, nil, fmt.Errorf("core: region %d received no requests (only %d requests for %d datacenters)", d, len(base.Requests), n)
		}
	}
	return problems, globals, nil
}

// OptimizeCluster partitions the base problem into regions and runs the
// two-phase pipeline (placement, scheduling, admission control) per region.
func OptimizeCluster(base *model.Problem, opts ClusterOptions) (*ClusterSolution, error) {
	problems, globals, err := PartitionRegions(base, opts.Datacenters, opts.GlobalFraction)
	if err != nil {
		return nil, err
	}
	cs := &ClusterSolution{Global: globals}
	for d, p := range problems {
		regionOpts := opts.Options
		regionOpts.Seed = opts.Options.Seed + uint64(d)
		sol, err := Optimize(p, regionOpts)
		if err != nil {
			return nil, fmt.Errorf("core: region %d: %w", d, err)
		}
		cs.Regions = append(cs.Regions, sol)
		cs.Names = append(cs.Names, fmt.Sprintf("region%d", d))
	}
	return cs, nil
}

// ClusterSimConfig carries the cluster-level simulation knobs on top of the
// per-region SimulationConfig.
type ClusterSimConfig struct {
	// Sim parameterizes every region's simulator; Sim.Seed is varied per
	// region (Seed+d) so regional traffic differs.
	Sim SimulationConfig
	// WANLatency is the inter-datacenter entry-hop latency (seconds).
	WANLatency float64
	// Router picks the serving datacenter per global arrival; nil means
	// locality-first.
	Router cluster.Router
	// Seed drives the cluster-level global arrival streams.
	Seed uint64
	// Workers selects the cluster execution driver (see cluster.Config): 0
	// runs the event-interleaved sequential loop, >= 1 the conservative-
	// window loop, draining datacenters between routing barriers in parallel
	// when Workers > 1. Results are bit-identical across all values.
	Workers int
	// FaultPlans optionally injects per-datacenter fault plans: entry d
	// overrides Sim.FaultPlan for region d, so each datacenter can face its
	// own outage schedule or preemption regime. Length must be zero or match
	// the region count.
	FaultPlans []*simulate.FaultPlan
	// FaultHooks optionally attaches one repair/control hook per datacenter
	// (entry d overrides Sim.FaultHook for region d). Hooks must not be
	// shared across regions: under the parallel windowed driver each region
	// runs on its own goroutine, so give every datacenter its own controller.
	// Length must be zero or match the region count.
	FaultHooks []simulate.FaultHook
}

// SimulateCluster runs the composed region-scale simulation on an optimized
// cluster solution.
func SimulateCluster(cs *ClusterSolution, cfg ClusterSimConfig) (*cluster.Results, error) {
	return SimulateClusterContext(context.Background(), cs, cfg)
}

// SimulateClusterContext is SimulateCluster with cancellation.
func SimulateClusterContext(ctx context.Context, cs *ClusterSolution, cfg ClusterSimConfig) (*cluster.Results, error) {
	if len(cs.Regions) == 0 {
		return nil, fmt.Errorf("core: cluster solution has no regions")
	}
	if len(cfg.FaultPlans) != 0 && len(cfg.FaultPlans) != len(cs.Regions) {
		return nil, fmt.Errorf("core: %d fault plans for %d regions (want 0 or %d)",
			len(cfg.FaultPlans), len(cs.Regions), len(cs.Regions))
	}
	if len(cfg.FaultHooks) != 0 && len(cfg.FaultHooks) != len(cs.Regions) {
		return nil, fmt.Errorf("core: %d fault hooks for %d regions (want 0 or %d)",
			len(cfg.FaultHooks), len(cs.Regions), len(cs.Regions))
	}
	ccfg := cluster.Config{
		WANLatency: cfg.WANLatency,
		Router:     cfg.Router,
		Global:     cs.Global,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
	}
	for d, sol := range cs.Regions {
		regionSim := cfg.Sim
		regionSim.Seed = cfg.Sim.Seed + uint64(d)
		if len(cfg.FaultPlans) > 0 {
			regionSim.FaultPlan = cfg.FaultPlans[d]
		}
		if len(cfg.FaultHooks) > 0 {
			regionSim.FaultHook = cfg.FaultHooks[d]
		}
		name := fmt.Sprintf("region%d", d)
		if d < len(cs.Names) && cs.Names[d] != "" {
			name = cs.Names[d]
		}
		ccfg.Datacenters = append(ccfg.Datacenters, cluster.Datacenter{
			Name: name,
			Sim:  simConfig(sol, regionSim),
		})
	}
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx)
}
