package core

import (
	"context"
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/portfolio"
	"nfvchain/internal/scheduling"
)

// RaceOptions configures SolveRace, the anytime entry point of the
// pipeline.
type RaceOptions struct {
	// Portfolio lists the solver specs to race; empty means
	// portfolio.DefaultPortfolio.
	Portfolio []string
	// Workers bounds solver-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// Seed derives per-solver seeds for specs that did not pin one.
	Seed uint64
	// LinkDelay is the per-hop latency L of Eq. 16, also wired into the
	// race objective.
	LinkDelay float64
	// DisableAdmissionControl keeps the winner's raw schedule.
	DisableAdmissionControl bool
	// OnIncumbent observes the race's first-improvement incumbent stream.
	OnIncumbent func(portfolio.Incumbent)
}

// SolveRace runs a portfolio race over the problem and finalizes the
// winner exactly like Optimize finalizes the two-phase pipeline: admission
// control enforces per-instance stability on the winning schedule (unless
// disabled). Bound the race with a ctx deadline for anytime behavior — the
// best-so-far winner is returned when the deadline passes.
func SolveRace(ctx context.Context, p *model.Problem, opts RaceOptions) (*Solution, *portfolio.RaceResult, error) {
	texts := opts.Portfolio
	if len(texts) == 0 {
		texts = portfolio.DefaultPortfolio()
	}
	specs, err := portfolio.ParseSpecs(texts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	obj := portfolio.DefaultObjective()
	if opts.LinkDelay > 0 {
		obj.LinkDelay = opts.LinkDelay
	}
	res, err := portfolio.Race(ctx, p, portfolio.RaceConfig{
		Specs:       specs,
		Workers:     opts.Workers,
		Seed:        opts.Seed,
		Objective:   obj,
		OnIncumbent: opts.OnIncumbent,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: race: %w", err)
	}

	sol := &Solution{
		Problem:             p,
		Placement:           res.Best.Placement,
		PlacementIterations: res.Best.Iterations,
		Schedule:            res.Best.Schedule,
		LinkDelay:           opts.LinkDelay,
	}
	if !opts.DisableAdmissionControl {
		adm, err := scheduling.ApplyAdmissionControl(p, sol.Schedule)
		if err != nil {
			return nil, nil, fmt.Errorf("core: admission control: %w", err)
		}
		sol.Schedule = adm.Admitted
		sol.Rejected = adm.Rejected
		sol.RejectionRate = adm.RejectionRate
	}
	return sol, res, nil
}
