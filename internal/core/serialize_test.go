package core

import (
	"strings"
	"testing"
)

func TestSolutionJSONRoundTrip(t *testing.T) {
	p := genProblem(t, 9)
	sol, err := Optimize(p, Options{Seed: 9, LinkDelay: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sol.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSolutionJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.LinkDelay != 0.25 || back.PlacementIterations != sol.PlacementIterations {
		t.Errorf("metadata lost: %+v", back)
	}
	for f, v := range sol.Placement.NodeOf {
		if back.Placement.NodeOf[f] != v {
			t.Fatalf("placement of %s lost", f)
		}
	}
	// The round-tripped solution evaluates identically.
	e1, err := Evaluate(sol)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Evaluate(back)
	if err != nil {
		t.Fatal(err)
	}
	if e1.TotalLatency != e2.TotalLatency || e1.NodesInService != e2.NodesInService {
		t.Errorf("evaluation differs after round trip: %v vs %v", e1.TotalLatency, e2.TotalLatency)
	}
}

func TestReadSolutionJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"unknown fields": `{"bogus": 1}`,
		"missing parts":  `{"problem": null, "placement": null, "schedule": null}`,
		"invalid problem": `{"problem": {"nodes":[],"vnfs":[],"requests":[]},
			"placement": {"nodeOf":{}}, "schedule": {"instanceOf":{}}}`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadSolutionJSON(strings.NewReader(in)); err == nil {
				t.Error("bad solution accepted")
			}
		})
	}
}

func TestReadSolutionJSONRejectsInfeasiblePlacement(t *testing.T) {
	p := genProblem(t, 10)
	sol, err := Optimize(p, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the instance: inflate one VNF's demand beyond any node, so the
	// recorded placement is no longer feasible for the recorded problem.
	sol.Problem.VNFs[0].Demand = 10 * sol.Problem.TotalCapacity()
	var buf strings.Builder
	if err := sol.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSolutionJSON(strings.NewReader(buf.String())); err == nil {
		t.Error("over-capacity placement accepted on read")
	}
}
