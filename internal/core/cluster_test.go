package core

import (
	"strings"
	"testing"

	"nfvchain/internal/repair"
	"nfvchain/internal/simulate"
)

// clusterSolution optimizes a small 2-region cluster for the fault-plumbing
// tests.
func clusterSolution(t *testing.T) *ClusterSolution {
	t.Helper()
	base := genProblem(t, 4)
	cs, err := OptimizeCluster(base, ClusterOptions{
		Datacenters:    2,
		GlobalFraction: 0.2,
		Options:        Options{Seed: 4, LinkDelay: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// TestClusterPerDatacenterFaultPlans pins the per-region fault plumbing: a
// plan attached to region 0 only must produce downtime there and nowhere
// else, with a per-region repair hook observing exactly its own region's
// transitions — identically across the sequential and windowed drivers.
func TestClusterPerDatacenterFaultPlans(t *testing.T) {
	cs := clusterSolution(t)
	node := cs.Regions[0].Problem.Nodes[0].ID
	run := func(workers int) (*simulate.Results, *simulate.Results, repair.Stats) {
		ctrl, err := repair.New(repair.Config{
			Problem:   cs.Regions[0].Problem,
			Placement: cs.Regions[0].Placement,
			Schedule:  cs.Regions[0].Schedule,
			Mode:      repair.ModeRescheduleReplace,
			SetupCost: 0.05,
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulateCluster(cs, ClusterSimConfig{
			Sim:        SimulationConfig{Horizon: 6, Warmup: 0.5, Seed: 11},
			Seed:       3,
			Workers:    workers,
			FaultPlans: []*simulate.FaultPlan{{Outages: []simulate.Outage{{Node: node, DownAt: 1, UpAt: 3}}}, nil},
			FaultHooks: []simulate.FaultHook{ctrl, nil},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Datacenters[0].Results, res.Datacenters[1].Results, ctrl.Stats()
	}
	r0, r1, stats := run(0)
	if len(r0.Downtime) == 0 || r0.Downtime[node] <= 0 {
		t.Errorf("region 0 downtime missing: %v", r0.Downtime)
	}
	if len(r1.Downtime) != 0 {
		t.Errorf("fault plan leaked into region 1: %v", r1.Downtime)
	}
	if stats.NodeFailures != 1 || stats.NodeRecoveries != 1 {
		t.Errorf("hook saw %+v, want exactly region 0's one outage", stats)
	}
	// The windowed driver must agree bit-for-bit.
	w0, w1, wstats := run(2)
	if w0.Delivered != r0.Delivered || w0.FailureDrops != r0.FailureDrops ||
		w1.Delivered != r1.Delivered || wstats != stats {
		t.Errorf("windowed driver diverged under per-region faults: %d/%d/%d vs %d/%d/%d",
			w0.Delivered, w0.FailureDrops, w1.Delivered, r0.Delivered, r0.FailureDrops, r1.Delivered)
	}
}

// TestClusterFaultPlanValidation covers the length contract: plans and hooks
// are all-regions-or-none.
func TestClusterFaultPlanValidation(t *testing.T) {
	cs := clusterSolution(t)
	if _, err := SimulateCluster(cs, ClusterSimConfig{
		Sim:        SimulationConfig{Horizon: 2},
		FaultPlans: []*simulate.FaultPlan{{}},
	}); err == nil || !strings.Contains(err.Error(), "fault plans") {
		t.Errorf("mismatched FaultPlans accepted: %v", err)
	}
	if _, err := SimulateCluster(cs, ClusterSimConfig{
		Sim:        SimulationConfig{Horizon: 2},
		FaultHooks: []simulate.FaultHook{nil},
	}); err == nil || !strings.Contains(err.Error(), "fault hooks") {
		t.Errorf("mismatched FaultHooks accepted: %v", err)
	}
}
