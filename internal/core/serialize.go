package core

import (
	"encoding/json"
	"fmt"
	"io"

	"nfvchain/internal/model"
)

// solutionJSON is the stable on-disk form of a Solution. The problem itself
// is stored alongside so a solution file is self-contained.
type solutionJSON struct {
	Problem             *model.Problem    `json:"problem"`
	Placement           *model.Placement  `json:"placement"`
	PlacementIterations int               `json:"placementIterations"`
	Schedule            *model.Schedule   `json:"schedule"`
	Rejected            []model.RequestID `json:"rejected,omitempty"`
	RejectionRate       float64           `json:"rejectionRate"`
	LinkDelay           float64           `json:"linkDelay"`
}

// WriteJSON serializes the solution (with its problem) as indented JSON.
func (s *Solution) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(solutionJSON{
		Problem:             s.Problem,
		Placement:           s.Placement,
		PlacementIterations: s.PlacementIterations,
		Schedule:            s.Schedule,
		Rejected:            s.Rejected,
		RejectionRate:       s.RejectionRate,
		LinkDelay:           s.LinkDelay,
	}); err != nil {
		return fmt.Errorf("core: encode solution: %w", err)
	}
	return nil
}

// ReadSolutionJSON parses a solution written by WriteJSON and validates its
// internal consistency (problem validity, placement feasibility, schedule
// completeness modulo rejections).
func ReadSolutionJSON(r io.Reader) (*Solution, error) {
	var raw solutionJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decode solution: %w", err)
	}
	if raw.Problem == nil || raw.Placement == nil || raw.Schedule == nil {
		return nil, fmt.Errorf("core: solution file missing problem, placement or schedule")
	}
	if err := raw.Problem.Validate(); err != nil {
		return nil, fmt.Errorf("core: solution problem: %w", err)
	}
	if err := raw.Placement.Validate(raw.Problem); err != nil {
		return nil, fmt.Errorf("core: solution placement: %w", err)
	}
	if err := raw.Schedule.ValidatePartial(raw.Problem); err != nil {
		return nil, fmt.Errorf("core: solution schedule: %w", err)
	}
	return &Solution{
		Problem:             raw.Problem,
		Placement:           raw.Placement,
		PlacementIterations: raw.PlacementIterations,
		Schedule:            raw.Schedule,
		Rejected:            raw.Rejected,
		RejectionRate:       raw.RejectionRate,
		LinkDelay:           raw.LinkDelay,
	}, nil
}
