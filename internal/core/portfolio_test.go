package core

import (
	"context"
	"testing"
	"time"

	"nfvchain/internal/model"
	"nfvchain/internal/portfolio"
)

func racingProblem(t *testing.T) *model.Problem {
	t.Helper()
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 12}, {ID: "n2", Capacity: 12}, {ID: "n3", Capacity: 12},
		},
		VNFs: []model.VNF{
			{ID: "fw", Instances: 2, Demand: 2, ServiceRate: 30},
			{ID: "nat", Instances: 2, Demand: 2, ServiceRate: 25},
			{ID: "ids", Instances: 3, Demand: 1.5, ServiceRate: 20},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"fw", "nat"}, Rate: 8, DeliveryProb: 0.95},
			{ID: "r2", Chain: []model.VNFID{"fw", "ids"}, Rate: 7, DeliveryProb: 0.98},
			{ID: "r3", Chain: []model.VNFID{"nat", "ids"}, Rate: 6, DeliveryProb: 0.9},
			{ID: "r4", Chain: []model.VNFID{"fw", "nat", "ids"}, Rate: 5, DeliveryProb: 0.97},
			{ID: "r5", Chain: []model.VNFID{"ids"}, Rate: 9, DeliveryProb: 0.99},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveRaceFinalizesLikeOptimize(t *testing.T) {
	p := racingProblem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var incumbents int
	sol, res, err := SolveRace(ctx, p, RaceOptions{
		Portfolio: []string{"greedy", "sa:iters=1000", "lns:iters=50", "pso:iters=15;particles=6"},
		Seed:      7,
		LinkDelay: 0.001,
		OnIncumbent: func(portfolio.Incumbent) {
			incumbents++
		},
	})
	if err != nil {
		t.Fatalf("SolveRace: %v", err)
	}
	if incumbents == 0 || res.Published != incumbents {
		t.Errorf("incumbents seen %d, race published %d", incumbents, res.Published)
	}
	if len(res.Outcomes) != 4 {
		t.Errorf("outcomes = %d, want 4", len(res.Outcomes))
	}
	// The finalized solution passes the same invariants Optimize guarantees:
	// valid placement, admission-controlled (evaluable) schedule.
	if err := sol.Placement.Validate(p); err != nil {
		t.Errorf("placement invalid: %v", err)
	}
	if err := sol.Schedule.ValidatePartial(p); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	if _, err := Evaluate(sol); err != nil {
		t.Errorf("winner not evaluable after admission control: %v", err)
	}
	if sol.LinkDelay != 0.001 {
		t.Errorf("link delay %v not propagated", sol.LinkDelay)
	}
}

func TestSolveRaceRejectsBadPortfolio(t *testing.T) {
	p := racingProblem(t)
	if _, _, err := SolveRace(context.Background(), p, RaceOptions{
		Portfolio: []string{"nope"},
	}); err == nil {
		t.Error("unknown solver accepted")
	}
}
