package workload

import (
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

// Config parameterizes problem generation. Field ranges default to the
// paper's Section V-A setup; see DefaultConfig.
type Config struct {
	Seed uint64

	// Topology-independent sizes.
	NumVNFs     int // 6..30 in the paper
	NumRequests int // 30..1000 in the paper
	NumNodes    int // 4..50 in the paper

	// Chains.
	MinChainLength int // ≥1
	MaxChainLength int // ≤6 in the paper
	// ChainMode selects how chains are drawn; zero value means
	// ChainModeRandom.
	ChainMode ChainMode

	// Request arrival rates λ_r (packets/s), uniform in [RateMin, RateMax].
	RateMin, RateMax float64

	// DeliveryProb is the probability P of correct delivery shared by all
	// requests (the paper scales it in [0.98, 1]).
	DeliveryProb float64

	// RequestsPerInstance controls M_f sizing: each instance is expected to
	// serve about this many requests (the paper's range is 1..200).
	RequestsPerInstance int

	// ServiceHeadroom scales every µ_f so that a perfectly balanced
	// assignment has utilization 1/ServiceHeadroom. Must be > 1 for stable
	// queues; the paper "scales µ_f with the number of requests" the same way.
	ServiceHeadroom float64

	// Node capacities A_v, uniform integer units in [CapacityMin, CapacityMax]
	// (paper range 1..5000; one unit = 64-byte packets at 10 kpps).
	CapacityMin, CapacityMax float64

	// UniformCapacity forces every node to CapacityMax, the homogeneous
	// setting used in the NP-hardness reduction.
	UniformCapacity bool
}

// ChainMode selects the chain-drawing strategy of Generate.
type ChainMode int

// Chain modes. Enums start at one; the Config zero value maps to
// ChainModeRandom for backward compatibility.
const (
	// ChainModeRandom draws uniform random chains of distinct VNFs — the
	// paper's setup ("each request traverses a VNF chain consisted of at
	// most 6 VNFs").
	ChainModeRandom ChainMode = iota + 1
	// ChainModeTemplates draws chains from the named SFC templates with
	// Zipf-distributed popularity (rank-1 template most common), the way
	// production service chains concentrate on a few canonical sequences.
	// Requires NumVNFs ≥ 6 so every template's VNFs exist.
	ChainModeTemplates
)

// DefaultConfig returns the paper's baseline setup: 15 VNFs, 200 requests,
// 10 nodes, chains of up to 6 VNFs, λ ∈ [1,100] pps, P = 0.98.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		NumVNFs:             15,
		NumRequests:         200,
		NumNodes:            10,
		MinChainLength:      1,
		MaxChainLength:      model.MaxChainLength,
		RateMin:             1,
		RateMax:             100,
		DeliveryProb:        0.98,
		RequestsPerInstance: 20,
		ServiceHeadroom:     1.25,
		CapacityMin:         1000,
		CapacityMax:         5000,
	}
}

// Validate reports the first out-of-range field.
func (c Config) Validate() error {
	switch {
	case c.NumVNFs < 1:
		return fmt.Errorf("workload: NumVNFs %d < 1", c.NumVNFs)
	case c.NumRequests < 0:
		return fmt.Errorf("workload: NumRequests %d < 0", c.NumRequests)
	case c.NumNodes < 1:
		return fmt.Errorf("workload: NumNodes %d < 1", c.NumNodes)
	case c.MinChainLength < 1:
		return fmt.Errorf("workload: MinChainLength %d < 1", c.MinChainLength)
	case c.MaxChainLength < c.MinChainLength:
		return fmt.Errorf("workload: MaxChainLength %d < MinChainLength %d", c.MaxChainLength, c.MinChainLength)
	case c.MaxChainLength > c.NumVNFs:
		return fmt.Errorf("workload: MaxChainLength %d exceeds NumVNFs %d", c.MaxChainLength, c.NumVNFs)
	case c.RateMin <= 0 || c.RateMax < c.RateMin:
		return fmt.Errorf("workload: rate range [%v,%v] invalid", c.RateMin, c.RateMax)
	case c.DeliveryProb <= 0 || c.DeliveryProb > 1:
		return fmt.Errorf("workload: DeliveryProb %v outside (0,1]", c.DeliveryProb)
	case c.RequestsPerInstance < 1:
		return fmt.Errorf("workload: RequestsPerInstance %d < 1", c.RequestsPerInstance)
	case c.ServiceHeadroom <= 1:
		return fmt.Errorf("workload: ServiceHeadroom %v must exceed 1 for stability", c.ServiceHeadroom)
	case c.CapacityMin <= 0 || c.CapacityMax < c.CapacityMin:
		return fmt.Errorf("workload: capacity range [%v,%v] invalid", c.CapacityMin, c.CapacityMax)
	}
	switch c.ChainMode {
	case 0, ChainModeRandom: // zero value defaults to random
	case ChainModeTemplates:
		if c.NumVNFs < 6 {
			return fmt.Errorf("workload: template chains need the 6 core VNFs, have NumVNFs=%d", c.NumVNFs)
		}
	default:
		return fmt.Errorf("workload: unknown chain mode %d", c.ChainMode)
	}
	return nil
}

// Generate synthesizes a complete problem instance from the config. The
// same config (including Seed) always yields the same problem.
//
// Sizing follows the paper's conventions: the first NumVNFs catalog entries
// form the VNF population; each request draws a uniform chain of distinct
// VNFs and a uniform rate; each VNF deploys M_f = ceil(|R_f| /
// RequestsPerInstance) instances (at least one), and its µ_f is scaled so a
// balanced assignment runs at utilization 1/ServiceHeadroom.
func Generate(cfg Config) (*model.Problem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumVNFs > CatalogSize {
		return nil, fmt.Errorf("workload: NumVNFs %d exceeds catalog size %d", cfg.NumVNFs, CatalogSize)
	}

	nodeStream := rng.Derive(cfg.Seed, "nodes")
	chainStream := rng.Derive(cfg.Seed, "chains")
	rateStream := rng.Derive(cfg.Seed, "rates")

	p := &model.Problem{}

	// Nodes.
	for i := 0; i < cfg.NumNodes; i++ {
		capacity := cfg.CapacityMax
		if !cfg.UniformCapacity {
			capacity = float64(int(nodeStream.Uniform(cfg.CapacityMin, cfg.CapacityMax)) + 1)
			if capacity > cfg.CapacityMax {
				capacity = cfg.CapacityMax
			}
		}
		p.Nodes = append(p.Nodes, model.Node{
			ID:       model.NodeID(fmt.Sprintf("node%02d", i)),
			Name:     fmt.Sprintf("node%02d", i),
			Capacity: capacity,
		})
	}

	// VNF skeletons from the catalog (instances/µ sized after requests).
	entries := Catalog()[:cfg.NumVNFs]
	ids := make([]model.VNFID, cfg.NumVNFs)
	for i, e := range entries {
		ids[i] = model.VNFID(e.Name)
	}

	// Zipf popularity weights for template mode: rank i gets 1/(i+1).
	templates := ChainTemplates()
	zipf := make([]float64, len(templates))
	for i := range zipf {
		zipf[i] = 1 / float64(i+1)
	}

	// Requests with random or template-drawn chains.
	usersOf := make(map[model.VNFID][]float64) // rates of requests using each VNF
	for i := 0; i < cfg.NumRequests; i++ {
		var chain []model.VNFID
		if cfg.ChainMode == ChainModeTemplates {
			tpl := templates[chainStream.WeightedIndex(zipf)]
			chain = append([]model.VNFID(nil), tpl.VNFs...)
		} else {
			length := chainStream.UniformInt(cfg.MinChainLength, cfg.MaxChainLength)
			perm := chainStream.Perm(cfg.NumVNFs)
			chain = make([]model.VNFID, length)
			for j := 0; j < length; j++ {
				chain[j] = ids[perm[j]]
			}
		}
		rate := rateStream.Uniform(cfg.RateMin, cfg.RateMax)
		req := model.Request{
			ID:           model.RequestID(fmt.Sprintf("req%04d", i)),
			Chain:        chain,
			Rate:         rate,
			DeliveryProb: cfg.DeliveryProb,
		}
		p.Requests = append(p.Requests, req)
		for _, f := range chain {
			usersOf[f] = append(usersOf[f], rate)
		}
	}

	// Size each VNF from its demand population.
	for i, e := range entries {
		rates := usersOf[ids[i]]
		instances := 1
		if len(rates) > 0 {
			instances = (len(rates) + cfg.RequestsPerInstance - 1) / cfg.RequestsPerInstance
		}
		// Σ effective rates spread over M_f instances, padded by headroom.
		var sum float64
		for _, r := range rates {
			sum += r / cfg.DeliveryProb
		}
		mu := e.ServiceRate
		if sum > 0 {
			needed := sum / float64(instances) * cfg.ServiceHeadroom
			if needed > mu {
				mu = needed
			}
		}
		p.VNFs = append(p.VNFs, model.VNF{
			ID:          ids[i],
			Name:        e.Name,
			Category:    e.Category,
			Instances:   instances,
			Demand:      e.Demand,
			ServiceRate: mu,
		})
	}

	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid problem: %w", err)
	}
	return p, nil
}

// AddMemoryDimension annotates an existing problem with one additional
// resource dimension — memory, in GB — realizing the paper's "other
// resources are modeled as additional constraints". Node memory is drawn
// from server tiers (64–512 GB); per-instance VNF memory is proportional to
// its CPU demand (stateful functions like IDS/DPI are memory-heavy) with a
// small floor. The problem is modified in place and revalidated.
func AddMemoryDimension(p *model.Problem, seed uint64) error {
	s := rng.Derive(seed, "memory")
	tiers := []float64{64, 128, 256, 512}
	for i := range p.Nodes {
		p.Nodes[i].Extras = []float64{tiers[s.IntN(len(tiers))]}
	}
	for i := range p.VNFs {
		mem := 0.5 + p.VNFs[i].Demand*0.05 // GB per instance
		p.VNFs[i].Extras = []float64{mem}
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("workload: memory dimension broke problem: %w", err)
	}
	return nil
}
