package workload

import (
	"math"
	"testing"

	"nfvchain/internal/model"
)

func analysisProblem(rate float64) *model.Problem {
	return &model.Problem{
		Nodes:    []model.Node{{ID: "n", Capacity: 1000}},
		VNFs:     []model.VNF{{ID: "f", Instances: 1, Demand: 1, ServiceRate: 10 * rate}},
		Requests: []model.Request{{ID: "r", Chain: []model.VNFID{"f"}, Rate: rate, DeliveryProb: 1}},
	}
}

func TestAnalyzeTraceAcceptsPoisson(t *testing.T) {
	p := analysisProblem(40)
	tr, err := GenerateTrace(p, 100, InterArrivalExponential, 3)
	if err != nil {
		t.Fatal(err)
	}
	sts := AnalyzeTrace(tr)
	if len(sts) != 1 {
		t.Fatalf("stats = %v", sts)
	}
	st := sts[0]
	if st.Request != "r" || st.Count < 3000 {
		t.Errorf("unexpected stats %+v", st)
	}
	if math.Abs(st.Rate-40)/40 > 0.1 {
		t.Errorf("rate = %v, want ≈40", st.Rate)
	}
	if math.Abs(st.CVGap-1) > 0.1 {
		t.Errorf("CV = %v, want ≈1 for Poisson", st.CVGap)
	}
	if !st.PoissonLike {
		t.Errorf("exponential gaps rejected: KS = %v", st.KSStatistic)
	}
}

func TestAnalyzeTraceFlagsBurstiness(t *testing.T) {
	p := analysisProblem(40)
	tr, err := GenerateTrace(p, 100, InterArrivalLogNormal, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := AnalyzeTrace(tr)[0]
	// σ=1 lognormal gaps: CV = sqrt(e−1) ≈ 1.31 and decidedly not
	// exponential.
	if st.CVGap < 1.1 {
		t.Errorf("lognormal CV = %v, want > 1.1", st.CVGap)
	}
	if st.PoissonLike {
		t.Errorf("lognormal gaps accepted as Poisson: KS = %v", st.KSStatistic)
	}
}

func TestAnalyzeTraceDeterministicArrivalsRejected(t *testing.T) {
	// Perfectly periodic arrivals: CV ≈ 0, KS far from exponential.
	tr := &Trace{Horizon: 10}
	for i := 0; i < 100; i++ {
		tr.Arrivals = append(tr.Arrivals, Arrival{Time: float64(i) * 0.1, Request: "clock"})
	}
	st := AnalyzeTrace(tr)[0]
	if st.CVGap > 0.01 {
		t.Errorf("periodic CV = %v, want ≈0", st.CVGap)
	}
	if st.PoissonLike {
		t.Error("periodic arrivals accepted as Poisson")
	}
	if math.Abs(st.Rate-10) > 0.5 {
		t.Errorf("rate = %v, want ≈10", st.Rate)
	}
}

func TestAnalyzeTraceTinySamples(t *testing.T) {
	tr := &Trace{Horizon: 1, Arrivals: []Arrival{
		{Time: 0.1, Request: "a"},
		{Time: 0.5, Request: "a"},
		{Time: 0.3, Request: "b"},
	}}
	sts := AnalyzeTrace(tr)
	if len(sts) != 2 {
		t.Fatalf("stats = %v", sts)
	}
	// Sorted by id; fewer than 3 arrivals → no gap statistics.
	if sts[0].Request != "a" || sts[1].Request != "b" {
		t.Errorf("order: %v", sts)
	}
	if sts[0].MeanGap != 0 || sts[0].PoissonLike {
		t.Errorf("tiny sample produced gap stats: %+v", sts[0])
	}
	if sts[0].Count != 2 || sts[1].Count != 1 {
		t.Errorf("counts wrong: %+v", sts)
	}
}

func TestKSExponentialExactFit(t *testing.T) {
	// Quantile-spaced samples of Exp(1) have minimal KS distance.
	var xs []float64
	const n = 1000
	for i := 1; i <= n; i++ {
		q := (float64(i) - 0.5) / n
		xs = append(xs, -math.Log(1-q))
	}
	if d := ksExponential(xs, 1); d > 0.01 {
		t.Errorf("KS of exact quantiles = %v, want ≈0", d)
	}
	// Wrong rate → large distance.
	if d := ksExponential(xs, 5); d < 0.3 {
		t.Errorf("KS under wrong rate = %v, want large", d)
	}
}
