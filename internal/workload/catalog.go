// Package workload synthesizes the paper's evaluation workloads: a catalog
// of thirty commonly-deployed VNFs in nine categories (following the Li &
// Chen survey the paper traces), VNF chains of up to six functions, requests
// with Poisson arrival rates of 1–100 packets/s, and packet-level arrival
// traces for the discrete-event simulator.
//
// This package is the documented substitution for the paper's private
// datacenter traces: the model consumes traces only through per-request mean
// rates and Poisson/exponential assumptions, so generating workloads with
// the same parameter ranges reproduces the algorithms' operating regime
// (see DESIGN.md §5).
package workload

// CatalogEntry describes one VNF type from the survey-derived catalog with
// its relative resource demand (units per service instance, where one unit
// processes 64-byte packets at 10 kpps) and nominal per-instance service
// rate in packets per second.
type CatalogEntry struct {
	Name        string
	Category    string
	Demand      float64 // resource units per instance
	ServiceRate float64 // packets/s per instance at nominal sizing
}

// Categories of the Li & Chen survey the paper cites (nine classes).
const (
	CategoryShaping     = "traffic-shaping"
	CategorySecurity    = "security"
	CategoryTranslation = "address-translation"
	CategoryMonitoring  = "monitoring"
	CategoryGateway     = "gateway"
	CategoryProxy       = "proxy-caching"
	CategoryOptimizer   = "optimization"
	CategorySignaling   = "signaling"
	CategoryAccess      = "access"
)

// catalog lists thirty commonly-used VNFs. The first six entries are the
// paper's explicitly named functions (NAT, FW, IDS, LB, WAN Optimizer, Flow
// Monitor). Demands are in capacity units; heavier packet processing (DPI,
// transcoding) costs more units and serves at a lower rate.
var catalog = []CatalogEntry{
	{Name: "NAT", Category: CategoryTranslation, Demand: 30, ServiceRate: 3000},
	{Name: "Firewall", Category: CategorySecurity, Demand: 40, ServiceRate: 2500},
	{Name: "IDS", Category: CategorySecurity, Demand: 120, ServiceRate: 1000},
	{Name: "LoadBalancer", Category: CategoryShaping, Demand: 25, ServiceRate: 3500},
	{Name: "WANOptimizer", Category: CategoryOptimizer, Demand: 90, ServiceRate: 1200},
	{Name: "FlowMonitor", Category: CategoryMonitoring, Demand: 20, ServiceRate: 4000},

	{Name: "IPS", Category: CategorySecurity, Demand: 130, ServiceRate: 900},
	{Name: "DPI", Category: CategorySecurity, Demand: 150, ServiceRate: 800},
	{Name: "AntivirusGateway", Category: CategorySecurity, Demand: 110, ServiceRate: 950},
	{Name: "DDoSProtection", Category: CategorySecurity, Demand: 100, ServiceRate: 1100},
	{Name: "TrafficShaper", Category: CategoryShaping, Demand: 35, ServiceRate: 2800},
	{Name: "RateLimiter", Category: CategoryShaping, Demand: 15, ServiceRate: 4500},
	{Name: "NAT64", Category: CategoryTranslation, Demand: 35, ServiceRate: 2700},
	{Name: "CarrierGradeNAT", Category: CategoryTranslation, Demand: 60, ServiceRate: 2000},
	{Name: "NetworkAnalyzer", Category: CategoryMonitoring, Demand: 70, ServiceRate: 1500},
	{Name: "QoEMonitor", Category: CategoryMonitoring, Demand: 45, ServiceRate: 2200},
	{Name: "PacketSampler", Category: CategoryMonitoring, Demand: 10, ServiceRate: 5000},
	{Name: "VPNGateway", Category: CategoryGateway, Demand: 80, ServiceRate: 1300},
	{Name: "IPsecGateway", Category: CategoryGateway, Demand: 95, ServiceRate: 1150},
	{Name: "ServingGateway", Category: CategoryGateway, Demand: 85, ServiceRate: 1250},
	{Name: "PDNGateway", Category: CategoryGateway, Demand: 90, ServiceRate: 1200},
	{Name: "WebProxy", Category: CategoryProxy, Demand: 50, ServiceRate: 1800},
	{Name: "HTTPCache", Category: CategoryProxy, Demand: 55, ServiceRate: 1700},
	{Name: "CDNNode", Category: CategoryProxy, Demand: 75, ServiceRate: 1400},
	{Name: "TCPOptimizer", Category: CategoryOptimizer, Demand: 40, ServiceRate: 2400},
	{Name: "VideoTranscoder", Category: CategoryOptimizer, Demand: 160, ServiceRate: 700},
	{Name: "CompressionEngine", Category: CategoryOptimizer, Demand: 105, ServiceRate: 1000},
	{Name: "IMSCore", Category: CategorySignaling, Demand: 65, ServiceRate: 1600},
	{Name: "SessionBorderCtrl", Category: CategorySignaling, Demand: 70, ServiceRate: 1500},
	{Name: "BRAS", Category: CategoryAccess, Demand: 85, ServiceRate: 1250},
}

// Catalog returns a copy of the thirty-entry VNF catalog.
func Catalog() []CatalogEntry {
	return append([]CatalogEntry(nil), catalog...)
}

// CatalogSize is the number of catalog entries (the paper scales the number
// of VNFs from 6 up to this value).
const CatalogSize = 30

// CatalogCategories returns the distinct category labels in catalog order.
func CatalogCategories() []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range catalog {
		if !seen[e.Category] {
			seen[e.Category] = true
			out = append(out, e.Category)
		}
	}
	return out
}
