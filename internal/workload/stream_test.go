package workload

import (
	"bytes"
	"strings"
	"testing"

	"nfvchain/internal/model"
)

// TestTraceStreamRoundTrip writes a generated trace as CSV and re-reads it
// through the streaming cursor row for row.
func TestTraceStreamRoundTrip(t *testing.T) {
	p := sourceProblem(t, 30)
	tr, err := GenerateTrace(p, 5, InterArrivalExponential, 21)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	ts, err := NewTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range tr.Arrivals {
		tm, id, ok := ts.NextArrival()
		if !ok {
			t.Fatalf("stream ended at row %d of %d (err %v)", i, len(tr.Arrivals), ts.Err())
		}
		if tm != a.Time || id != a.Request {
			t.Fatalf("row %d: streamed (%v, %s) != written (%v, %s)", i, tm, id, a.Time, a.Request)
		}
	}
	if _, _, ok := ts.NextArrival(); ok {
		t.Fatal("stream has rows beyond the written trace")
	}
	if err := ts.Err(); err != nil {
		t.Fatalf("clean EOF reported error %v", err)
	}
	if ts.Row() != len(tr.Arrivals) {
		t.Errorf("Row() = %d, want %d", ts.Row(), len(tr.Arrivals))
	}
}

// TestTraceStreamErrors covers header and row validation; after the first bad
// row the cursor must stay stopped with a sticky error.
func TestTraceStreamErrors(t *testing.T) {
	headerErr := map[string]string{
		"empty":       "",
		"bad header":  "when,who\n1,r\n",
		"wide header": "time,request,extra\n",
	}
	for name, in := range headerErr {
		if _, err := NewTraceStream(strings.NewReader(in)); err == nil {
			t.Errorf("%s: bad header accepted", name)
		}
	}

	rowErr := map[string]string{
		"bad time":        "time,request\nabc,r\n",
		"nan time":        "time,request\nNaN,r\n",
		"negative time":   "time,request\n-1,r\n",
		"decreasing time": "time,request\n2,r\n1,r\n",
		"wide row":        "time,request\n1,r,x\n",
	}
	for name, in := range rowErr {
		t.Run(name, func(t *testing.T) {
			ts, err := NewTraceStream(strings.NewReader(in))
			if err != nil {
				t.Fatal(err)
			}
			for {
				if _, _, ok := ts.NextArrival(); !ok {
					break
				}
			}
			if ts.Err() == nil {
				t.Fatal("malformed row accepted")
			}
			if _, _, ok := ts.NextArrival(); ok {
				t.Fatal("cursor advanced past a sticky error")
			}
		})
	}
}

// TestTraceStreamInternsIDs asserts repeated request IDs resolve to the same
// interned string value, the property that keeps long replays at
// O(#requests) long-lived memory.
func TestTraceStreamInternsIDs(t *testing.T) {
	ts, err := NewTraceStream(strings.NewReader("time,request\n1,alpha\n2,alpha\n3,beta\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, a1, _ := ts.NextArrival()
	_, a2, _ := ts.NextArrival()
	_, b, _ := ts.NextArrival()
	if a1 != "alpha" || a2 != "alpha" || b != "beta" {
		t.Fatalf("parsed IDs %q %q %q", a1, a2, b)
	}
	if len(ts.ids) != 2 {
		t.Errorf("intern table holds %d entries, want 2", len(ts.ids))
	}
}

// TestAnalyzeArrivalsMatchesAnalyzeTrace pins the streaming analyzer to the
// materializing one on traces small enough that the reservoir holds every
// gap: all statistics, including KS, must agree exactly.
func TestAnalyzeArrivalsMatchesAnalyzeTrace(t *testing.T) {
	p := sourceProblem(t, 30)
	tr, err := GenerateTrace(p, 10, InterArrivalLogNormal, 21)
	if err != nil {
		t.Fatal(err)
	}
	want := AnalyzeTrace(tr)
	got, err := AnalyzeArrivals(&traceCursor{tr: tr}, tr.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streaming analyzer reported %d flows, materializing %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("flow %s: streaming %+v != materializing %+v", want[i].Request, got[i], want[i])
		}
	}
}

// traceCursor adapts a materialized Trace to the ArrivalCursor interface.
type traceCursor struct {
	tr *Trace
	i  int
}

func (c *traceCursor) NextArrival() (float64, model.RequestID, bool) {
	if c.i >= len(c.tr.Arrivals) {
		return 0, "", false
	}
	a := c.tr.Arrivals[c.i]
	c.i++
	return a.Time, a.Request, true
}

func (c *traceCursor) Err() error { return nil }

// TestAnalyzeArrivalsBoundsInfiniteCursor pins the horizon-bounded pull: a
// MergedStream over renewal sources never ends, so a positive horizon must
// stop the analysis (and leave arrivals past it unconsumed) rather than
// drain forever.
func TestAnalyzeArrivalsBoundsInfiniteCursor(t *testing.T) {
	p := sourceProblem(t, 20)
	srcs, err := TraceSources(p, InterArrivalExponential, 13)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 3.0
	sts, err := AnalyzeArrivals(NewMergedStream(srcs), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) == 0 {
		t.Fatal("bounded analysis of a live generator cursor saw no flows")
	}
	total := 0
	for _, st := range sts {
		total += st.Count
	}
	tr, err := GenerateTrace(p, horizon, InterArrivalExponential, 13)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(tr.Arrivals) {
		t.Errorf("bounded streaming analysis counted %d arrivals, materialized trace has %d",
			total, len(tr.Arrivals))
	}
}

// TestAnalyzeTraceCSVStreams checks the CSV convenience wrapper end to end,
// including error propagation from a malformed row.
func TestAnalyzeTraceCSVStreams(t *testing.T) {
	p := sourceProblem(t, 20)
	tr, err := GenerateTrace(p, 5, InterArrivalExponential, 21)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	sts, err := AnalyzeTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range sts {
		total += st.Count
	}
	if total != len(tr.Arrivals) {
		t.Errorf("streamed analysis counted %d arrivals, trace has %d", total, len(tr.Arrivals))
	}
	if _, err := AnalyzeTraceCSV(strings.NewReader("time,request\n2,r\n1,r\n")); err == nil {
		t.Error("out-of-order CSV analyzed without error")
	}
}
