package workload

import (
	"math"
	"strings"
	"testing"

	"nfvchain/internal/model"
)

func TestCatalog(t *testing.T) {
	entries := Catalog()
	if len(entries) != CatalogSize {
		t.Fatalf("catalog size = %d, want %d", len(entries), CatalogSize)
	}
	names := make(map[string]bool)
	for _, e := range entries {
		if names[e.Name] {
			t.Errorf("duplicate catalog name %s", e.Name)
		}
		names[e.Name] = true
		if e.Demand <= 0 || e.ServiceRate <= 0 {
			t.Errorf("catalog entry %s has non-positive sizing", e.Name)
		}
		if e.Category == "" {
			t.Errorf("catalog entry %s missing category", e.Name)
		}
	}
	// The paper's six core VNFs come first.
	wantFirst := []string{"NAT", "Firewall", "IDS", "LoadBalancer", "WANOptimizer", "FlowMonitor"}
	for i, w := range wantFirst {
		if entries[i].Name != w {
			t.Errorf("catalog[%d] = %s, want %s", i, entries[i].Name, w)
		}
	}
	if got := len(CatalogCategories()); got != 9 {
		t.Errorf("categories = %d, want 9 (Li & Chen survey)", got)
	}
	// Catalog() returns a copy.
	entries[0].Name = "mutated"
	if Catalog()[0].Name != "NAT" {
		t.Error("Catalog returns shared slice")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero vnfs":          func(c *Config) { c.NumVNFs = 0 },
		"negative requests":  func(c *Config) { c.NumRequests = -1 },
		"zero nodes":         func(c *Config) { c.NumNodes = 0 },
		"zero min chain":     func(c *Config) { c.MinChainLength = 0 },
		"max below min":      func(c *Config) { c.MaxChainLength = 0 },
		"chain beyond vnfs":  func(c *Config) { c.MaxChainLength = c.NumVNFs + 1 },
		"zero rate":          func(c *Config) { c.RateMin = 0 },
		"inverted rates":     func(c *Config) { c.RateMax = c.RateMin - 1 },
		"bad delivery prob":  func(c *Config) { c.DeliveryProb = 0 },
		"p above one":        func(c *Config) { c.DeliveryProb = 1.2 },
		"zero per instance":  func(c *Config) { c.RequestsPerInstance = 0 },
		"headroom too small": func(c *Config) { c.ServiceHeadroom = 1 },
		"zero capacity":      func(c *Config) { c.CapacityMin = 0 },
		"inverted capacity":  func(c *Config) { c.CapacityMax = 1; c.CapacityMin = 2 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGenerateProducesValidProblem(t *testing.T) {
	cfg := DefaultConfig()
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("generated problem invalid: %v", err)
	}
	if len(p.Nodes) != cfg.NumNodes || len(p.VNFs) != cfg.NumVNFs || len(p.Requests) != cfg.NumRequests {
		t.Errorf("sizes: %d nodes, %d vnfs, %d requests", len(p.Nodes), len(p.VNFs), len(p.Requests))
	}
	for _, r := range p.Requests {
		if len(r.Chain) < cfg.MinChainLength || len(r.Chain) > cfg.MaxChainLength {
			t.Errorf("request %s chain length %d outside [%d,%d]", r.ID, len(r.Chain), cfg.MinChainLength, cfg.MaxChainLength)
		}
		if r.Rate < cfg.RateMin || r.Rate > cfg.RateMax {
			t.Errorf("request %s rate %v outside range", r.ID, r.Rate)
		}
		if r.DeliveryProb != cfg.DeliveryProb {
			t.Errorf("request %s P = %v", r.ID, r.DeliveryProb)
		}
	}
	for _, n := range p.Nodes {
		if n.Capacity < cfg.CapacityMin || n.Capacity > cfg.CapacityMax {
			t.Errorf("node %s capacity %v outside range", n.ID, n.Capacity)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Requests {
		if a.Requests[i].Rate != b.Requests[i].Rate || len(a.Requests[i].Chain) != len(b.Requests[i].Chain) {
			t.Fatal("same seed produced different requests")
		}
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Requests {
		if a.Requests[i].Rate != c.Requests[i].Rate {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical requests")
	}
}

func TestGenerateInstanceSizing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RequestsPerInstance = 10
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.VNFs {
		users := len(p.RequestsUsing(f.ID))
		if users == 0 {
			if f.Instances != 1 {
				t.Errorf("unused vnf %s has %d instances", f.ID, f.Instances)
			}
			continue
		}
		want := (users + 9) / 10
		if f.Instances != want {
			t.Errorf("vnf %s: %d users → %d instances, want %d", f.ID, users, f.Instances, want)
		}
		// Paper Eq. 3: M_f ≤ Σ_r U_r^f.
		if f.Instances > users {
			t.Errorf("vnf %s violates Eq. 3: %d instances > %d users", f.ID, f.Instances, users)
		}
	}
}

func TestGenerateStabilityHeadroom(t *testing.T) {
	cfg := DefaultConfig()
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A perfectly balanced split must be stable: Σ effective rates over
	// M_f·µ_f below 1.
	for _, f := range p.VNFs {
		var sum float64
		for _, rid := range p.RequestsUsing(f.ID) {
			r, _ := p.Request(rid)
			sum += r.EffectiveRate()
		}
		if sum >= float64(f.Instances)*f.ServiceRate {
			t.Errorf("vnf %s: aggregate load %v >= capacity %v", f.ID, sum, float64(f.Instances)*f.ServiceRate)
		}
	}
}

func TestGenerateTemplateChains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChainMode = ChainModeTemplates
	cfg.NumRequests = 600
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every chain must be one of the templates.
	valid := make(map[string]int)
	for _, tpl := range ChainTemplates() {
		key := ""
		for _, f := range tpl.VNFs {
			key += string(f) + "/"
		}
		valid[key] = 0
	}
	for _, r := range p.Requests {
		key := ""
		for _, f := range r.Chain {
			key += string(f) + "/"
		}
		if _, ok := valid[key]; !ok {
			t.Fatalf("request %s chain %v is not a template", r.ID, r.Chain)
		}
		valid[key]++
	}
	// Zipf popularity: the rank-1 template must be the most common.
	first := ""
	for _, f := range ChainTemplates()[0].VNFs {
		first += string(f) + "/"
	}
	for key, count := range valid {
		if key != first && count > valid[first] {
			t.Errorf("template %q (%d) more popular than rank-1 (%d)", key, count, valid[first])
		}
	}
	if valid[first] < cfg.NumRequests/4 {
		t.Errorf("rank-1 template drew only %d of %d requests; expected Zipf head", valid[first], cfg.NumRequests)
	}
}

func TestGenerateTemplateChainsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChainMode = ChainModeTemplates
	cfg.NumVNFs = 5 // templates need the 6 core VNFs
	if _, err := Generate(cfg); err == nil {
		t.Error("template mode with 5 VNFs accepted")
	}
	cfg.ChainMode = ChainMode(99)
	cfg.NumVNFs = 15
	if _, err := Generate(cfg); err == nil {
		t.Error("unknown chain mode accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumVNFs = CatalogSize + 1
	cfg.MaxChainLength = 6
	if _, err := Generate(cfg); err == nil {
		t.Error("NumVNFs beyond catalog accepted")
	}
	bad := DefaultConfig()
	bad.NumNodes = 0
	if _, err := Generate(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGenerateUniformCapacity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UniformCapacity = true
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range p.Nodes {
		if n.Capacity != cfg.CapacityMax {
			t.Errorf("node %s capacity %v, want uniform %v", n.ID, n.Capacity, cfg.CapacityMax)
		}
	}
}

func TestChainTemplates(t *testing.T) {
	ts := ChainTemplates()
	if len(ts) < 3 {
		t.Fatalf("only %d templates", len(ts))
	}
	for _, tpl := range ts {
		if len(tpl.VNFs) == 0 || len(tpl.VNFs) > model.MaxChainLength {
			t.Errorf("template %s has %d VNFs", tpl.Name, len(tpl.VNFs))
		}
	}
	if _, err := ChainTemplateByName("web-ingress"); err != nil {
		t.Errorf("ChainTemplateByName: %v", err)
	}
	if _, err := ChainTemplateByName("nope"); err == nil {
		t.Error("unknown template accepted")
	}
	// Returned slice is a copy.
	ts[0].Name = "mutated"
	if ChainTemplates()[0].Name == "mutated" {
		t.Error("ChainTemplates returns shared slice")
	}
}

func TestTemplateProblem(t *testing.T) {
	p, err := TemplateProblem(4, 2000, 20, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("template problem invalid: %v", err)
	}
	if len(p.Requests) != len(ChainTemplates()) {
		t.Errorf("requests = %d, want one per template", len(p.Requests))
	}
	if _, err := TemplateProblem(0, 1, 1, 1); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestTraceGeneration(t *testing.T) {
	p, err := TemplateProblem(4, 2000, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(p, 10, InterArrivalExponential, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	// Sorted by time.
	for i := 1; i < tr.Len(); i++ {
		if tr.Arrivals[i].Time < tr.Arrivals[i-1].Time {
			t.Fatal("trace not sorted")
		}
	}
	// Empirical rate ≈ λ within 20% for λ·horizon = 500 samples.
	r := p.Requests[0]
	got := tr.Rate(r.ID)
	if math.Abs(got-r.Rate)/r.Rate > 0.2 {
		t.Errorf("empirical rate %v vs λ=%v", got, r.Rate)
	}
}

func TestTraceLogNormalMeanRate(t *testing.T) {
	p, err := TemplateProblem(4, 2000, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateTrace(p, 50, InterArrivalLogNormal, 11)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Requests[0]
	got := tr.Rate(r.ID)
	if math.Abs(got-r.Rate)/r.Rate > 0.35 { // heavy tail → wider tolerance
		t.Errorf("lognormal empirical rate %v vs λ=%v", got, r.Rate)
	}
}

func TestTraceErrors(t *testing.T) {
	p, _ := TemplateProblem(2, 2000, 10, 1)
	if _, err := GenerateTrace(p, 0, InterArrivalExponential, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := GenerateTrace(p, 1, InterArrival(99), 1); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	p, _ := TemplateProblem(2, 2000, 30, 1)
	tr, err := GenerateTrace(p, 2, InterArrivalExponential, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost arrivals: %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Arrivals {
		if tr.Arrivals[i].Request != back.Arrivals[i].Request {
			t.Fatal("round trip reordered arrivals")
		}
		if math.Abs(tr.Arrivals[i].Time-back.Arrivals[i].Time) > 1e-12 {
			t.Fatal("round trip changed times")
		}
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "a,b\n1,x\n",
		"bad time":      "time,request\nnope,x\n",
		"negative time": "time,request\n-1,x\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTraceCSV(strings.NewReader(in)); err == nil {
				t.Error("bad trace accepted")
			}
		})
	}
}

func TestTraceDeterministicPerRequest(t *testing.T) {
	p, _ := TemplateProblem(2, 2000, 10, 1)
	a, _ := GenerateTrace(p, 5, InterArrivalExponential, 9)
	b, _ := GenerateTrace(p, 5, InterArrivalExponential, 9)
	if a.Len() != b.Len() {
		t.Fatal("same seed, different trace length")
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatal("same seed, different arrivals")
		}
	}
}
