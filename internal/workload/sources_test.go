package workload

import (
	"math"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/stats"
)

// pull materializes one source's arrivals up to the horizon.
func pull(src Source, horizon float64) []float64 {
	var out []float64
	t := 0.0
	for {
		next, ok := src.Next(t)
		if !ok || next >= horizon {
			return out
		}
		out = append(out, next)
		t = next
	}
}

func sourceProblem(t *testing.T, requests int) *model.Problem {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.NumRequests = requests
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMergedStreamMatchesGenerateTrace pins the streaming identity at the
// workload layer: pulling TraceSources through a MergedStream reproduces
// GenerateTrace's materialized-and-sorted trace arrival for arrival.
func TestMergedStreamMatchesGenerateTrace(t *testing.T) {
	p := sourceProblem(t, 40)
	for _, dist := range []InterArrival{InterArrivalExponential, InterArrivalLogNormal} {
		tr, err := GenerateTrace(p, 5, dist, 21)
		if err != nil {
			t.Fatal(err)
		}
		srcs, err := TraceSources(p, dist, 21)
		if err != nil {
			t.Fatal(err)
		}
		ms := NewMergedStream(srcs)
		for i, a := range tr.Arrivals {
			tm, id, ok := ms.NextArrival()
			if !ok {
				t.Fatalf("dist %d: stream ended at %d of %d arrivals", dist, i, len(tr.Arrivals))
			}
			if tm != a.Time || id != a.Request {
				t.Fatalf("dist %d: arrival %d: streamed (%v, %s) != materialized (%v, %s)",
					dist, i, tm, id, a.Time, a.Request)
			}
		}
		if tm, _, ok := ms.NextArrival(); ok && tm < 5 {
			t.Fatalf("dist %d: stream has extra arrival at %v inside the horizon", dist, tm)
		}
	}
}

// TestLogNormalRenewalMeanRate checks the µ = ln(1/rate) − σ²/2 calibration:
// the empirical mean gap converges to 1/rate.
func TestLogNormalRenewalMeanRate(t *testing.T) {
	const rate = 20.0
	src := NewLogNormalRenewal(rate, 1, rng.Derive(3, "lognormal"))
	times := pull(src, 2000)
	got := float64(len(times)) / 2000
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("log-normal renewal empirical rate %v, want ~%v", got, rate)
	}
}

// TestNHPPDiurnalRate checks the Lewis–Shedler sampler against the analytic
// integral of the sinusoidal intensity: total mass over whole periods is
// base·horizon, and the peak quarter-period carries its exact share
// ∫λ(t)dt = base·(P/4 + amplitude·P·√2/(2π)) of the arrivals.
func TestNHPPDiurnalRate(t *testing.T) {
	const (
		base    = 50.0
		amp     = 0.8
		period  = 20.0
		horizon = 4000.0 // 200 periods, ~200k arrivals
	)
	rf, peak := Diurnal(base, amp, period, 0)
	if peak != base*(1+amp) {
		t.Fatalf("peak %v, want %v", peak, base*(1+amp))
	}
	src := NewNHPP(rf, peak, rng.Derive(7, "nhpp"))
	times := pull(src, horizon)

	total := float64(len(times))
	if want := base * horizon; math.Abs(total-want)/want > 0.03 {
		t.Errorf("NHPP total arrivals %v, want ~%v (mean preservation)", total, want)
	}

	// Peak quarter [0, P/4): sin rises 0→1. Trough quarter [P/2, 3P/4).
	peakCount, troughCount := 0, 0
	for _, tm := range times {
		switch phase := math.Mod(tm, period) / period; {
		case phase < 0.25:
			peakCount++
		case phase >= 0.5 && phase < 0.75:
			troughCount++
		}
	}
	quarterMass := func(sign float64) float64 {
		// ∫ over a quarter with sin contributing ±√2/(2π)·amplitude·P·base...
		// exactly: ∫₀^{P/4} base(1+a·sin(2πt/P))dt = base·P/4 + sign·base·a·P/(2π).
		return (base*period/4 + sign*base*amp*period/(2*math.Pi)) * (horizon / period)
	}
	if want := quarterMass(1); math.Abs(float64(peakCount)-want)/want > 0.03 {
		t.Errorf("NHPP peak-quarter arrivals %d, want ~%.0f", peakCount, want)
	}
	if want := quarterMass(-1); math.Abs(float64(troughCount)-want)/want > 0.05 {
		t.Errorf("NHPP trough-quarter arrivals %d, want ~%.0f", troughCount, want)
	}
	if peakCount <= troughCount {
		t.Errorf("diurnal peak quarter (%d) not busier than trough quarter (%d)", peakCount, troughCount)
	}
}

// TestMMPPBurstyStatistics materializes an MMPP pull sequence into a Trace
// and checks, via AnalyzeTrace, that the mean rate is preserved and the
// inter-arrival CV exceeds 1 — the burstiness the KS test must reject as
// non-Poisson.
func TestMMPPBurstyStatistics(t *testing.T) {
	const (
		rate    = 30.0 // target mean rate
		meanOn  = 1.0
		meanOff = 4.0
		horizon = 2000.0
	)
	onRate := rate * (meanOn + meanOff) / meanOn
	src := NewMMPP(onRate, meanOn, meanOff, rng.Derive(9, "mmpp"))
	tr := &Trace{Horizon: horizon}
	for _, tm := range pull(src, horizon) {
		tr.Arrivals = append(tr.Arrivals, Arrival{Time: tm, Request: "burst"})
	}
	sts := AnalyzeTrace(tr)
	if len(sts) != 1 {
		t.Fatalf("got %d stats rows, want 1", len(sts))
	}
	st := sts[0]
	if math.Abs(st.Rate-rate)/rate > 0.1 {
		t.Errorf("MMPP empirical rate %v, want ~%v (mean preservation)", st.Rate, rate)
	}
	if st.CVGap <= 1.2 {
		t.Errorf("MMPP inter-arrival CV %v, want > 1.2 (burstiness)", st.CVGap)
	}
	if st.PoissonLike {
		t.Error("MMPP flagged Poisson-like; the KS test must reject on/off bursts")
	}
}

// TestBuildSourcesDeterministic pins the derived-stream construction: same
// seed → identical assignments and identical arrival draws; different seed →
// different draws.
func TestBuildSourcesDeterministic(t *testing.T) {
	p := sourceProblem(t, 50)
	a, err := BuildSources(p, DefaultClasses(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSources(p, DefaultClasses(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sources) != len(p.Requests) || len(a.Assignments) != len(p.Requests) {
		t.Fatalf("sources/assignments cover %d/%d of %d requests",
			len(a.Sources), len(a.Assignments), len(p.Requests))
	}
	for id, aa := range a.Assignments {
		if ba := b.Assignments[id]; aa != ba {
			t.Fatalf("request %s assignment differs across identical builds: %+v vs %+v", id, aa, ba)
		}
		ta := pull(a.Sources[id], 3)
		tb := pull(b.Sources[id], 3)
		if len(ta) != len(tb) {
			t.Fatalf("request %s draw counts differ: %d vs %d", id, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("request %s draw %d differs: %v vs %v", id, i, ta[i], tb[i])
			}
		}
	}
	c, err := BuildSources(p, DefaultClasses(), 6)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for id := range a.Sources {
		ta, tc := pull(a.Sources[id], 3), pull(c.Sources[id], 3)
		if len(ta) != len(tc) {
			same = false
			break
		}
		for i := range ta {
			if ta[i] != tc[i] {
				same = false
			}
		}
		if !same {
			break
		}
	}
	if same {
		t.Error("seeds 5 and 6 produced identical class workloads")
	}
}

// TestBuildSourcesPreservesLoad checks the skew renormalization: per class,
// the effective rates sum to the members' problem rates, so classes reshape
// traffic without changing the provisioned load.
func TestBuildSourcesPreservesLoad(t *testing.T) {
	p := sourceProblem(t, 80)
	cw, err := BuildSources(p, DefaultClasses(), 5)
	if err != nil {
		t.Fatal(err)
	}
	problemRate := map[model.RequestID]float64{}
	for _, r := range p.Requests {
		problemRate[r.ID] = r.Rate
	}
	classEffective := map[string]float64{}
	classProblem := map[string]float64{}
	for id, as := range cw.Assignments {
		if !(as.Rate > 0) {
			t.Fatalf("request %s effective rate %v not positive", id, as.Rate)
		}
		classEffective[as.Class] += as.Rate
		classProblem[as.Class] += problemRate[id]
	}
	for name, want := range classProblem {
		got := classEffective[name]
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("class %s aggregate rate %v, want %v (load preservation)", name, got, want)
		}
	}
}

// TestBuildSourcesErrors covers the class-validation surface.
func TestBuildSourcesErrors(t *testing.T) {
	p := sourceProblem(t, 10)
	cases := map[string][]ClientClass{
		"empty":         {},
		"no name":       {{Weight: 1}},
		"zero weight":   {{Name: "a", Weight: 0}},
		"dup name":      {{Name: "a", Weight: 1}, {Name: "a", Weight: 1}},
		"amplitude 1":   {{Name: "a", Weight: 1, Process: ProcessDiurnal, Amplitude: 1, Period: 10}},
		"zero period":   {{Name: "a", Weight: 1, Process: ProcessDiurnal, Amplitude: 0.5}},
		"zero sojourn":  {{Name: "a", Weight: 1, Process: ProcessOnOff, MeanOn: 0, MeanOff: 1}},
		"zipf zero s":   {{Name: "a", Weight: 1, Skew: SkewZipf}},
		"lognorm sigma": {{Name: "a", Weight: 1, Skew: SkewLogNormal}},
	}
	for name, classes := range cases {
		if _, err := BuildSources(p, classes, 1); err == nil {
			t.Errorf("%s: invalid classes accepted", name)
		}
	}
}

// TestMMPPSojournStatistics sanity-checks the modulation itself: gaps within
// bursts are short (1/onRate-ish) while off-period crossings add meanOff-
// scale silences, giving a visibly bimodal gap distribution.
func TestMMPPSojournStatistics(t *testing.T) {
	src := NewMMPP(100, 1, 4, rng.Derive(11, "mmpp2"))
	times := pull(src, 500)
	var gaps stats.Summary
	long := 0
	for i := 1; i < len(times); i++ {
		g := times[i] - times[i-1]
		gaps.Add(g)
		if g > 1 { // a silence far beyond any in-burst gap (mean 0.01)
			long++
		}
	}
	if long == 0 {
		t.Error("no off-period silences observed in 500s of MMPP traffic")
	}
	// Mean gap ≈ 1/meanRate = (1+4)/(100·1) = 0.05.
	if m := gaps.Mean(); math.Abs(m-0.05) > 0.01 {
		t.Errorf("MMPP mean gap %v, want ~0.05", m)
	}
}
