package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"nfvchain/internal/model"
)

// TraceStream is a forward-only cursor over a trace CSV ("time,request"
// rows, as written by Trace.WriteCSV or cmd/tracegen): it parses one row per
// NextArrival call instead of materializing the file, so replaying a
// 10M-arrival trace holds O(#distinct requests) long-lived memory (request
// IDs are interned; the csv reader's row buffer is reused). Rows must be in
// non-decreasing time order — the order WriteCSV emits — and replay order is
// file order. TraceStream satisfies simulate.TraceSource: hand it to
// simulate.Config.TraceStream for constant-memory replay, bit-identical to
// materializing the same file through ReadTraceCSV + Config.Trace.
type TraceStream struct {
	cr   *csv.Reader
	ids  map[string]model.RequestID
	row  int
	last float64
	err  error
	done bool
}

// NewTraceStream opens a cursor over r, validating the header row.
func NewTraceStream(r io.Reader) (*TraceStream, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = 2
	rec, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read trace header: %w", err)
	}
	if rec[0] != "time" || rec[1] != "request" {
		return nil, fmt.Errorf("workload: bad trace header %v", rec)
	}
	return &TraceStream{cr: cr, ids: make(map[string]model.RequestID)}, nil
}

// NextArrival returns the next trace row; ok is false at end of file or on
// the first malformed row (check Err to tell the two apart).
func (t *TraceStream) NextArrival() (float64, model.RequestID, bool) {
	if t.done {
		return 0, "", false
	}
	rec, err := t.cr.Read()
	if err == io.EOF {
		t.done = true
		return 0, "", false
	}
	t.row++
	if err != nil {
		t.fail(fmt.Errorf("workload: trace row %d: %w", t.row, err))
		return 0, "", false
	}
	tm, err := strconv.ParseFloat(rec[0], 64)
	if err != nil {
		t.fail(fmt.Errorf("workload: trace row %d: bad time %q: %w", t.row, rec[0], err))
		return 0, "", false
	}
	if math.IsNaN(tm) || tm < 0 {
		t.fail(fmt.Errorf("workload: trace row %d: negative or NaN time %v", t.row, tm))
		return 0, "", false
	}
	if tm < t.last {
		t.fail(fmt.Errorf("workload: trace row %d: time %v decreases below %v (streamed traces must be time-ordered)", t.row, tm, t.last))
		return 0, "", false
	}
	t.last = tm
	// Intern the request ID: the map lookup on the reused record's field
	// allocates nothing on a hit, so long-lived memory stays O(#requests).
	id, ok := t.ids[rec[1]]
	if !ok {
		s := strings.Clone(rec[1])
		id = model.RequestID(s)
		t.ids[s] = id
	}
	return tm, id, true
}

// Err reports why the stream stopped: nil after a clean end of file, the
// first row error otherwise.
func (t *TraceStream) Err() error { return t.err }

// Row returns the number of data rows consumed so far.
func (t *TraceStream) Row() int { return t.row }

func (t *TraceStream) fail(err error) {
	t.done = true
	if t.err == nil {
		t.err = err
	}
}
