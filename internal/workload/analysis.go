package workload

import (
	"io"
	"math"
	"sort"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/stats"
)

// TraceStats summarizes one request's arrival process in a recorded trace.
// It answers the question the paper's model quietly assumes away: *is this
// flow actually Poisson?* — via the inter-arrival coefficient of variation
// (1 for exponential gaps) and a Kolmogorov–Smirnov test against the fitted
// exponential distribution.
type TraceStats struct {
	Request model.RequestID
	// Count is the number of arrivals observed.
	Count int
	// Rate is the empirical mean arrival rate (arrivals / horizon).
	Rate float64
	// MeanGap and CVGap describe the inter-arrival gaps; CV ≈ 1 indicates
	// exponential (Poisson process), CV ≫ 1 indicates burstiness.
	MeanGap, CVGap float64
	// KSStatistic is the Kolmogorov–Smirnov distance between the empirical
	// gap distribution and Exp(1/MeanGap).
	KSStatistic float64
	// PoissonLike reports whether KSStatistic is below the 5% critical
	// value 1.358/√n — i.e. exponential gaps are not rejected.
	PoissonLike bool
}

// AnalyzeTrace computes per-request arrival statistics, sorted by request
// id. Requests with fewer than three arrivals are reported with Count/Rate
// only (no gap statistics).
func AnalyzeTrace(t *Trace) []TraceStats {
	byReq := make(map[model.RequestID][]float64)
	for _, a := range t.Arrivals {
		byReq[a.Request] = append(byReq[a.Request], a.Time)
	}
	out := make([]TraceStats, 0, len(byReq))
	for id, times := range byReq {
		st := TraceStats{Request: id, Count: len(times)}
		if t.Horizon > 0 {
			st.Rate = float64(len(times)) / t.Horizon
		}
		if len(times) >= 3 {
			sort.Float64s(times)
			gaps := make([]float64, len(times)-1)
			var sum stats.Summary
			for i := 1; i < len(times); i++ {
				gaps[i-1] = times[i] - times[i-1]
				sum.Add(gaps[i-1])
			}
			st.MeanGap = sum.Mean()
			if st.MeanGap > 0 {
				st.CVGap = sum.StdDev() / st.MeanGap
				st.KSStatistic = ksExponential(gaps, 1/st.MeanGap)
				critical := 1.358 / math.Sqrt(float64(len(gaps)))
				st.PoissonLike = st.KSStatistic < critical
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Request < out[j].Request })
	return out
}

// ArrivalCursor is the streaming-analysis input: any forward-only,
// time-ordered arrival cursor (TraceStream over a CSV, MergedStream over
// live generator sources, or any simulate.TraceSource).
type ArrivalCursor interface {
	NextArrival() (t float64, id model.RequestID, ok bool)
	Err() error
}

// analysisReservoir bounds the per-request gap sample AnalyzeArrivals keeps
// for the KS test; 2048 gaps put the 5% critical value at 0.03, fine enough
// to separate Poisson from bursty processes.
const analysisReservoir = 2048

// analysisSeed derives the deterministic reservoir-sampling streams; it is a
// fixed constant because the analysis is a diagnostic — two passes over the
// same cursor always report identical statistics.
const analysisSeed = 0x9e3779b97f4a7c15

// AnalyzeArrivals is the one-pass streaming counterpart of AnalyzeTrace: it
// computes per-request arrival statistics from a cursor without holding any
// arrival times, so workload-realism KPIs work on 10M-arrival traces in
// O(#requests) memory. Count, Rate, MeanGap and CVGap are exact (Welford
// accumulation); the KS statistic is computed over a deterministic reservoir
// sample of at most analysisReservoir gaps per request — exact for requests
// with no more gaps than that, an unbiased estimate beyond. A positive
// horizon both scales Rate and bounds the pull — arrivals at or past it are
// not consumed, which is what makes never-ending generator cursors (a
// MergedStream over renewal sources) analyzable at all; pass <= 0 to drain
// a finite cursor and use the latest arrival time observed (ReadTraceCSV's
// convention).
func AnalyzeArrivals(c ArrivalCursor, horizon float64) ([]TraceStats, error) {
	type reqState struct {
		count int
		last  float64
		gaps  stats.Summary
		res   []float64
		s     *rng.Stream
	}
	byReq := make(map[model.RequestID]*reqState)
	maxTime := 0.0
	for {
		t, id, ok := c.NextArrival()
		if !ok || (horizon > 0 && t >= horizon) {
			break
		}
		if t > maxTime {
			maxTime = t
		}
		st := byReq[id]
		if st == nil {
			st = &reqState{s: rng.Derive(analysisSeed, "analyze/"+string(id))}
			byReq[id] = st
		}
		if st.count > 0 {
			gap := t - st.last
			st.gaps.Add(gap)
			// Reservoir sampling (algorithm R) over the gap sequence.
			if len(st.res) < analysisReservoir {
				st.res = append(st.res, gap)
			} else if j := st.s.IntN(st.gaps.N()); j < analysisReservoir {
				st.res[j] = gap
			}
		}
		st.count++
		st.last = t
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		horizon = maxTime
	}
	out := make([]TraceStats, 0, len(byReq))
	for id, st := range byReq {
		ts := TraceStats{Request: id, Count: st.count}
		if horizon > 0 {
			ts.Rate = float64(st.count) / horizon
		}
		if st.count >= 3 {
			ts.MeanGap = st.gaps.Mean()
			if ts.MeanGap > 0 {
				ts.CVGap = st.gaps.StdDev() / ts.MeanGap
				ts.KSStatistic = ksExponential(st.res, 1/ts.MeanGap)
				critical := 1.358 / math.Sqrt(float64(len(st.res)))
				ts.PoissonLike = ts.KSStatistic < critical
			}
		}
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Request < out[j].Request })
	return out, nil
}

// AnalyzeTraceCSV streams a trace CSV through AnalyzeArrivals — the
// constant-memory replacement for ReadTraceCSV + AnalyzeTrace.
func AnalyzeTraceCSV(r io.Reader) ([]TraceStats, error) {
	ts, err := NewTraceStream(r)
	if err != nil {
		return nil, err
	}
	return AnalyzeArrivals(ts, 0)
}

// ksExponential returns the Kolmogorov–Smirnov statistic between the sample
// and the exponential distribution with the given rate. The sample is not
// modified.
func ksExponential(sample []float64, rate float64) float64 {
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	var d float64
	for i, x := range xs {
		f := 1 - math.Exp(-rate*x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}
