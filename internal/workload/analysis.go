package workload

import (
	"math"
	"sort"

	"nfvchain/internal/model"
	"nfvchain/internal/stats"
)

// TraceStats summarizes one request's arrival process in a recorded trace.
// It answers the question the paper's model quietly assumes away: *is this
// flow actually Poisson?* — via the inter-arrival coefficient of variation
// (1 for exponential gaps) and a Kolmogorov–Smirnov test against the fitted
// exponential distribution.
type TraceStats struct {
	Request model.RequestID
	// Count is the number of arrivals observed.
	Count int
	// Rate is the empirical mean arrival rate (arrivals / horizon).
	Rate float64
	// MeanGap and CVGap describe the inter-arrival gaps; CV ≈ 1 indicates
	// exponential (Poisson process), CV ≫ 1 indicates burstiness.
	MeanGap, CVGap float64
	// KSStatistic is the Kolmogorov–Smirnov distance between the empirical
	// gap distribution and Exp(1/MeanGap).
	KSStatistic float64
	// PoissonLike reports whether KSStatistic is below the 5% critical
	// value 1.358/√n — i.e. exponential gaps are not rejected.
	PoissonLike bool
}

// AnalyzeTrace computes per-request arrival statistics, sorted by request
// id. Requests with fewer than three arrivals are reported with Count/Rate
// only (no gap statistics).
func AnalyzeTrace(t *Trace) []TraceStats {
	byReq := make(map[model.RequestID][]float64)
	for _, a := range t.Arrivals {
		byReq[a.Request] = append(byReq[a.Request], a.Time)
	}
	out := make([]TraceStats, 0, len(byReq))
	for id, times := range byReq {
		st := TraceStats{Request: id, Count: len(times)}
		if t.Horizon > 0 {
			st.Rate = float64(len(times)) / t.Horizon
		}
		if len(times) >= 3 {
			sort.Float64s(times)
			gaps := make([]float64, len(times)-1)
			var sum stats.Summary
			for i := 1; i < len(times); i++ {
				gaps[i-1] = times[i] - times[i-1]
				sum.Add(gaps[i-1])
			}
			st.MeanGap = sum.Mean()
			if st.MeanGap > 0 {
				st.CVGap = sum.StdDev() / st.MeanGap
				st.KSStatistic = ksExponential(gaps, 1/st.MeanGap)
				critical := 1.358 / math.Sqrt(float64(len(gaps)))
				st.PoissonLike = st.KSStatistic < critical
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Request < out[j].Request })
	return out
}

// ksExponential returns the Kolmogorov–Smirnov statistic between the sample
// and the exponential distribution with the given rate. The sample is not
// modified.
func ksExponential(sample []float64, rate float64) float64 {
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	var d float64
	for i, x := range xs {
		f := 1 - math.Exp(-rate*x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}
