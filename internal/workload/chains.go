package workload

import (
	"fmt"

	"nfvchain/internal/model"
)

// ChainTemplate is a named service-function chain drawn from the deployment
// patterns the paper's introduction motivates (e.g. "some flows need to
// traverse a firewall and a load balancer, other flows only the firewall").
type ChainTemplate struct {
	Name  string
	VNFs  []model.VNFID
	Usage string // what traffic class the chain serves
}

// chainTemplates lists canonical enterprise/datacenter SFCs composed from
// the catalog's first entries.
var chainTemplates = []ChainTemplate{
	{
		Name:  "web-ingress",
		VNFs:  []model.VNFID{"Firewall", "LoadBalancer"},
		Usage: "north-south web traffic entering the datacenter",
	},
	{
		Name:  "secure-web",
		VNFs:  []model.VNFID{"Firewall", "IDS", "LoadBalancer"},
		Usage: "web traffic with intrusion detection",
	},
	{
		Name:  "firewall-only",
		VNFs:  []model.VNFID{"Firewall"},
		Usage: "east-west flows needing only perimeter filtering",
	},
	{
		Name:  "branch-office",
		VNFs:  []model.VNFID{"NAT", "Firewall", "WANOptimizer"},
		Usage: "WAN traffic from branch offices",
	},
	{
		Name:  "monitored-nat",
		VNFs:  []model.VNFID{"NAT", "FlowMonitor"},
		Usage: "outbound flows with usage accounting",
	},
	{
		Name:  "full-inspection",
		VNFs:  []model.VNFID{"NAT", "Firewall", "IDS", "LoadBalancer", "WANOptimizer", "FlowMonitor"},
		Usage: "maximum-length chain exercising all six core VNFs",
	},
}

// ChainTemplates returns the named SFC templates.
func ChainTemplates() []ChainTemplate {
	out := make([]ChainTemplate, len(chainTemplates))
	copy(out, chainTemplates)
	return out
}

// ChainTemplate returns the template with the given name.
func ChainTemplateByName(name string) (ChainTemplate, error) {
	for _, t := range chainTemplates {
		if t.Name == name {
			return t, nil
		}
	}
	return ChainTemplate{}, fmt.Errorf("workload: unknown chain template %q", name)
}

// TemplateProblem builds a small, fully deterministic problem from the chain
// templates: one request per template with the given per-request rate and
// delivery probability, over nodes of the given capacity. It is the
// quickstart-friendly counterpart of Generate.
func TemplateProblem(numNodes int, capacity, rate, deliveryProb float64) (*model.Problem, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("workload: numNodes %d < 1", numNodes)
	}
	p := &model.Problem{}
	for i := 0; i < numNodes; i++ {
		p.Nodes = append(p.Nodes, model.Node{
			ID:       model.NodeID(fmt.Sprintf("node%02d", i)),
			Capacity: capacity,
		})
	}
	used := make(map[model.VNFID]int) // → request count
	for _, t := range chainTemplates {
		for _, f := range t.VNFs {
			used[f]++
		}
	}
	for _, e := range Catalog() {
		id := model.VNFID(e.Name)
		n, ok := used[id]
		if !ok {
			continue
		}
		// One instance unless several template chains share the VNF heavily.
		instances := 1
		if n >= 4 {
			instances = 2
		}
		mu := e.ServiceRate
		needed := float64(n) * rate / deliveryProb / float64(instances) * 1.5
		if needed > mu {
			mu = needed
		}
		p.VNFs = append(p.VNFs, model.VNF{
			ID:          id,
			Name:        e.Name,
			Category:    e.Category,
			Instances:   instances,
			Demand:      e.Demand,
			ServiceRate: mu,
		})
	}
	for i, t := range chainTemplates {
		p.Requests = append(p.Requests, model.Request{
			ID:           model.RequestID(fmt.Sprintf("req-%s-%d", t.Name, i)),
			Chain:        append([]model.VNFID(nil), t.VNFs...),
			Rate:         rate,
			DeliveryProb: deliveryProb,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload: template problem invalid: %w", err)
	}
	return p, nil
}
