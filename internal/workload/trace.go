package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"nfvchain/internal/model"
)

// Arrival is one packet arrival of a request.
type Arrival struct {
	Time    float64 // seconds from trace start
	Request model.RequestID
}

// Trace is a packet-level arrival trace over a finite horizon, sorted by
// time. It drives the discrete-event simulator in trace-driven mode and can
// be exported/imported as CSV.
type Trace struct {
	Horizon  float64
	Arrivals []Arrival
}

// InterArrival selects the inter-arrival time distribution of generated
// traces.
type InterArrival int

// Supported inter-arrival processes. Exponential matches the paper's model
// assumptions; LogNormal reproduces the heavier-tailed flow inter-arrivals
// measured in datacenters (Benson et al.), with the same mean rate.
const (
	InterArrivalExponential InterArrival = iota + 1
	InterArrivalLogNormal
)

// logNormalSigma is the shape parameter of the log-normal inter-arrival
// mode; σ ≈ 1 gives the pronounced burstiness of measured flow traces.
const logNormalSigma = 1.0

// GenerateTrace samples packet arrivals for every request in the problem up
// to the horizon. Each request uses an independent derived stream, so the
// trace for any subset of requests is invariant to the others. It is built
// on TraceSources — the materializing counterpart of streaming the same
// sources through a MergedStream (draw-for-draw identical, so the two paths
// produce byte-identical CSV).
func GenerateTrace(p *model.Problem, horizon float64, dist InterArrival, seed uint64) (*Trace, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: horizon %v must be positive", horizon)
	}
	srcs, err := TraceSources(p, dist, seed)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Horizon: horizon}
	for _, r := range p.Requests {
		src := srcs[r.ID]
		t := 0.0
		for {
			next, ok := src.Next(t)
			if !ok || next >= horizon {
				break
			}
			tr.Arrivals = append(tr.Arrivals, Arrival{Time: next, Request: r.ID})
			t = next
		}
	}
	tr.sort()
	return tr, nil
}

func (t *Trace) sort() {
	sort.SliceStable(t.Arrivals, func(i, j int) bool {
		if t.Arrivals[i].Time != t.Arrivals[j].Time {
			return t.Arrivals[i].Time < t.Arrivals[j].Time
		}
		return t.Arrivals[i].Request < t.Arrivals[j].Request
	})
}

// Len returns the number of arrivals.
func (t *Trace) Len() int { return len(t.Arrivals) }

// Rate returns the empirical mean arrival rate of one request in the trace.
func (t *Trace) Rate(r model.RequestID) float64 {
	if t.Horizon <= 0 {
		return 0
	}
	n := 0
	for _, a := range t.Arrivals {
		if a.Request == r {
			n++
		}
	}
	return float64(n) / t.Horizon
}

// WriteCSV writes the trace as "time,request" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "request"}); err != nil {
		return fmt.Errorf("workload: write trace header: %w", err)
	}
	for _, a := range t.Arrivals {
		rec := []string{strconv.FormatFloat(a.Time, 'g', -1, 64), string(a.Request)}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: write trace row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("workload: flush trace: %w", err)
	}
	return nil
}

// ReadTraceCSV parses a trace written by WriteCSV. The horizon is the
// latest arrival time unless every row is empty.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: empty trace file")
	}
	if len(records[0]) != 2 || records[0][0] != "time" || records[0][1] != "request" {
		return nil, fmt.Errorf("workload: bad trace header %v", records[0])
	}
	tr := &Trace{}
	for i, rec := range records[1:] {
		tm, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad time %q: %w", i+1, rec[0], err)
		}
		if tm < 0 {
			return nil, fmt.Errorf("workload: trace row %d: negative time %v", i+1, tm)
		}
		tr.Arrivals = append(tr.Arrivals, Arrival{Time: tm, Request: model.RequestID(rec[1])})
		if tm > tr.Horizon {
			tr.Horizon = tm
		}
	}
	tr.sort()
	return tr, nil
}
