package workload

import (
	"fmt"
	"math"
	"sort"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

// Source is a pull-based arrival process: Next returns the first arrival
// strictly after `after`, or ok=false when the process is exhausted. The
// method set is identical to simulate.ArrivalSource, so every generator here
// plugs directly into simulate.Config.Sources and the cluster driver's
// per-flow sources without an adapter. Sources are deterministic — all
// randomness comes from the rng.Stream they are built over — and must be
// pulled with non-decreasing `after` values (the simulator always does).
type Source interface {
	Next(after float64) (t float64, ok bool)
}

// PoissonSource is the homogeneous Poisson process: exponential inter-
// arrival gaps with mean 1/rate. On the stream "arrivals/<id>" it is draw-
// for-draw identical to the simulator's built-in default.
type PoissonSource struct {
	rate float64
	s    *rng.Stream
}

// NewPoisson builds a Poisson source. rate must be positive and finite.
func NewPoisson(rate float64, s *rng.Stream) *PoissonSource {
	return &PoissonSource{rate: rate, s: s}
}

// Next draws the next arrival after the given time.
func (p *PoissonSource) Next(after float64) (float64, bool) {
	return after + p.s.Exp(p.rate), true
}

// LogNormalSource is a renewal process with log-normal inter-arrival gaps of
// mean 1/rate and log-scale sigma — the heavy-tailed flow inter-arrivals of
// measured datacenter traces. With sigma = 1 on the stream "trace/<id>" it
// reproduces GenerateTrace's InterArrivalLogNormal draws exactly.
type LogNormalSource struct {
	mu, sigma float64
	s         *rng.Stream
}

// NewLogNormalRenewal builds a log-normal renewal source with mean rate
// `rate` (E[gap] = 1/rate via µ = ln(1/rate) − σ²/2). rate and sigma must be
// positive and finite.
func NewLogNormalRenewal(rate, sigma float64, s *rng.Stream) *LogNormalSource {
	return &LogNormalSource{mu: math.Log(1/rate) - sigma*sigma/2, sigma: sigma, s: s}
}

// Next draws the next arrival after the given time.
func (l *LogNormalSource) Next(after float64) (float64, bool) {
	return after + l.s.LogNormal(l.mu, l.sigma), true
}

// RateFunc is a time-varying arrival intensity λ(t) for non-homogeneous
// Poisson processes.
type RateFunc func(t float64) float64

// Diurnal returns the sinusoidal day-shaped intensity
//
//	λ(t) = base · (1 + amplitude · sin(2π(t/period + phase)))
//
// together with its peak base·(1+amplitude), the thinning bound NewNHPP
// needs. The time-average over any whole number of periods is exactly base,
// so diurnal sources preserve the mean load of the flat process they
// replace. amplitude must lie in [0, 1) — the intensity stays strictly
// positive — and period must be positive.
func Diurnal(base, amplitude, period, phase float64) (RateFunc, float64) {
	return func(t float64) float64 {
		return base * (1 + amplitude*math.Sin(2*math.Pi*(t/period+phase)))
	}, base * (1 + amplitude)
}

// NHPPSource is a non-homogeneous Poisson process sampled by Lewis–Shedler
// thinning: candidate arrivals are drawn from a homogeneous process at the
// peak intensity and accepted with probability λ(t)/peak, which yields
// exactly the target NHPP. The rate function must satisfy
// 0 < λ(t) <= peak for all t the source will be pulled over (a vanishing
// intensity would make a pull spin without ever accepting).
type NHPPSource struct {
	rate RateFunc
	peak float64
	s    *rng.Stream
}

// NewNHPP builds a thinning sampler for the intensity function with the
// given peak bound. peak must be positive and finite.
func NewNHPP(rate RateFunc, peak float64, s *rng.Stream) *NHPPSource {
	return &NHPPSource{rate: rate, peak: peak, s: s}
}

// Next thins candidates from the peak-rate homogeneous process until one is
// accepted.
func (n *NHPPSource) Next(after float64) (float64, bool) {
	t := after
	for {
		t += n.s.Exp(n.peak)
		if n.s.Float64()*n.peak < n.rate(t) {
			return t, true
		}
	}
}

// MMPPSource is a two-state Markov-modulated Poisson process: the source
// alternates between exponentially distributed on-periods (mean meanOn),
// during which arrivals are Poisson at onRate, and silent off-periods (mean
// meanOff). The long-run mean rate is onRate·meanOn/(meanOn+meanOff) and the
// inter-arrival CV exceeds 1 — the canonical bursty traffic model. The
// process starts at the beginning of an on-period, so bursts are observable
// from t = 0.
type MMPPSource struct {
	onRate, meanOn, meanOff float64
	s                       *rng.Stream
	on                      bool
	stateEnd                float64
}

// NewMMPP builds an on/off burst source. All three parameters must be
// positive and finite.
func NewMMPP(onRate, meanOn, meanOff float64, s *rng.Stream) *MMPPSource {
	m := &MMPPSource{onRate: onRate, meanOn: meanOn, meanOff: meanOff, s: s, on: true}
	m.stateEnd = s.Exp(1 / meanOn)
	return m
}

// Next advances through on/off epochs until an arrival lands inside an
// on-period. State sojourns are drawn lazily in epoch order, so the draw
// sequence — and therefore the process — is deterministic.
func (m *MMPPSource) Next(after float64) (float64, bool) {
	t := after
	for {
		if t >= m.stateEnd {
			m.on = !m.on
			mean := m.meanOff
			if m.on {
				mean = m.meanOn
			}
			m.stateEnd += m.s.Exp(1 / mean)
			continue
		}
		if !m.on {
			t = m.stateEnd
			continue
		}
		gap := m.s.Exp(m.onRate)
		if t+gap < m.stateEnd {
			return t + gap, true
		}
		t = m.stateEnd
	}
}

// TraceSources builds the per-request renewal sources GenerateTrace draws
// from — Poisson for InterArrivalExponential, log-normal (σ = 1) for
// InterArrivalLogNormal — each on its own stream "trace/<id>" derived from
// seed. Pulling each source to the horizon and merging by (time, request)
// yields GenerateTrace's trace draw-for-draw, which is how cmd/tracegen
// writes CSV incrementally without materializing a Trace.
func TraceSources(p *model.Problem, dist InterArrival, seed uint64) (map[model.RequestID]Source, error) {
	if dist != InterArrivalExponential && dist != InterArrivalLogNormal {
		return nil, fmt.Errorf("workload: unknown inter-arrival distribution %d", dist)
	}
	out := make(map[model.RequestID]Source, len(p.Requests))
	for _, r := range p.Requests {
		s := rng.Derive(seed, "trace/"+string(r.ID))
		switch dist {
		case InterArrivalExponential:
			out[r.ID] = NewPoisson(r.Rate, s)
		case InterArrivalLogNormal:
			out[r.ID] = NewLogNormalRenewal(r.Rate, logNormalSigma, s)
		}
	}
	return out, nil
}

// Process selects a client class's arrival process shape.
type Process int

// Supported class processes.
const (
	// ProcessPoisson is the flat homogeneous process (the paper's model).
	ProcessPoisson Process = iota
	// ProcessDiurnal is a sinusoidal NHPP sampled by Lewis–Shedler thinning:
	// the class's load swells and ebbs over Period while preserving its mean.
	ProcessDiurnal
	// ProcessOnOff is a two-state MMPP: bursts at an elevated on-rate
	// separated by silent gaps, mean-preserving, inter-arrival CV > 1.
	ProcessOnOff
)

// Skew selects how a class's aggregate load is divided among its members.
type Skew int

// Supported per-client rate skews.
const (
	// SkewNone keeps every member's problem rate unchanged.
	SkewNone Skew = iota
	// SkewZipf multiplies member rates by 1/rank^ZipfS over a seeded random
	// rank permutation — a few heavy hitters, a long tail.
	SkewZipf
	// SkewLogNormal multiplies member rates by LogNormal(0, Sigma) draws.
	SkewLogNormal
)

// ClientClass describes one heterogeneous client population in the ServeGen
// style: a share of the problem's requests (Weight), an arrival-process
// shape (Process), and a skew of per-client mean rates within the class
// (Skew). Skew multipliers are renormalized so the class's aggregate offered
// load equals the sum of its members' problem rates — classes reshape
// traffic in time and across clients without changing the provisioned load.
type ClientClass struct {
	Name   string
	Weight float64 // relative share of requests assigned to this class

	Process Process

	Skew  Skew
	ZipfS float64 // SkewZipf exponent s (> 0); weights 1/rank^s
	Sigma float64 // SkewLogNormal log-scale (> 0)

	// ProcessDiurnal knobs: relative Amplitude in [0, 1), positive Period,
	// and Phase as a fraction of a period (members of a class peak together,
	// which is the point of diurnality).
	Amplitude float64
	Period    float64
	Phase     float64

	// ProcessOnOff knobs: mean on/off sojourns (both positive). The on-rate
	// is derived as rate·(MeanOn+MeanOff)/MeanOn so the mean is preserved;
	// the implied burst factor is (MeanOn+MeanOff)/MeanOn.
	MeanOn, MeanOff float64
}

func (c *ClientClass) validate(i int) error {
	if c.Name == "" {
		return fmt.Errorf("workload: class %d has no name", i)
	}
	if !(c.Weight > 0) || math.IsInf(c.Weight, 1) {
		return fmt.Errorf("workload: class %s weight %v must be positive and finite", c.Name, c.Weight)
	}
	switch c.Process {
	case ProcessPoisson:
	case ProcessDiurnal:
		if !(c.Amplitude >= 0 && c.Amplitude < 1) {
			return fmt.Errorf("workload: class %s amplitude %v outside [0, 1)", c.Name, c.Amplitude)
		}
		if !(c.Period > 0) || math.IsInf(c.Period, 1) {
			return fmt.Errorf("workload: class %s period %v must be positive and finite", c.Name, c.Period)
		}
		if math.IsNaN(c.Phase) || math.IsInf(c.Phase, 0) {
			return fmt.Errorf("workload: class %s phase %v must be finite", c.Name, c.Phase)
		}
	case ProcessOnOff:
		if !(c.MeanOn > 0) || math.IsInf(c.MeanOn, 1) || !(c.MeanOff > 0) || math.IsInf(c.MeanOff, 1) {
			return fmt.Errorf("workload: class %s on/off sojourns (%v, %v) must be positive and finite", c.Name, c.MeanOn, c.MeanOff)
		}
	default:
		return fmt.Errorf("workload: class %s has unknown process %d", c.Name, c.Process)
	}
	switch c.Skew {
	case SkewNone:
	case SkewZipf:
		if !(c.ZipfS > 0) || math.IsInf(c.ZipfS, 1) {
			return fmt.Errorf("workload: class %s Zipf exponent %v must be positive and finite", c.Name, c.ZipfS)
		}
	case SkewLogNormal:
		if !(c.Sigma > 0) || math.IsInf(c.Sigma, 1) {
			return fmt.Errorf("workload: class %s sigma %v must be positive and finite", c.Name, c.Sigma)
		}
	default:
		return fmt.Errorf("workload: class %s has unknown skew %d", c.Name, c.Skew)
	}
	return nil
}

// DefaultClasses is the reference heavy-traffic mix: a steady majority with
// Zipf-skewed rates, a diurnal population whose load swings ±80% over a
// 20-second "day" (scaled to simulation horizons), and a bursty minority
// spending 1s on for every 4s off — a 5× burst factor.
func DefaultClasses() []ClientClass {
	return []ClientClass{
		{Name: "steady", Weight: 0.60, Process: ProcessPoisson, Skew: SkewZipf, ZipfS: 1},
		{Name: "diurnal", Weight: 0.25, Process: ProcessDiurnal, Skew: SkewLogNormal, Sigma: 1, Amplitude: 0.8, Period: 20},
		{Name: "bursty", Weight: 0.15, Process: ProcessOnOff, Skew: SkewZipf, ZipfS: 1, MeanOn: 1, MeanOff: 4},
	}
}

// Assignment records which class a request landed in and the effective mean
// rate its source targets after skew renormalization.
type Assignment struct {
	Class string
	Rate  float64
}

// ClassWorkload is the output of BuildSources: one arrival source per
// request (plug into simulate.Config.Sources, a MergedStream, or cluster
// flows) plus the per-request class assignment for reporting.
type ClassWorkload struct {
	Sources     map[model.RequestID]Source
	Assignments map[model.RequestID]Assignment
}

// BuildSources assigns every request of the problem to a client class and
// builds its arrival source. All randomness — class assignment, skew
// multipliers, and each source's draws — comes from streams derived from
// seed, so the construction is deterministic and any request's arrival
// process is invariant to the set of other requests in its class pulling
// arrivals. Per class, skew multipliers are renormalized so the class's
// aggregate mean rate equals the sum of its members' problem rates.
func BuildSources(p *model.Problem, classes []ClientClass, seed uint64) (*ClassWorkload, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: no client classes")
	}
	weights := make([]float64, len(classes))
	for i := range classes {
		if err := classes[i].validate(i); err != nil {
			return nil, err
		}
		for j := 0; j < i; j++ {
			if classes[j].Name == classes[i].Name {
				return nil, fmt.Errorf("workload: duplicate class name %s", classes[i].Name)
			}
		}
		weights[i] = classes[i].Weight
	}

	// Deterministic class assignment, in problem request order.
	assign := rng.Derive(seed, "classes/assign")
	members := make([][]model.Request, len(classes))
	for _, r := range p.Requests {
		ci := assign.WeightedIndex(weights)
		members[ci] = append(members[ci], r)
	}

	cw := &ClassWorkload{
		Sources:     make(map[model.RequestID]Source, len(p.Requests)),
		Assignments: make(map[model.RequestID]Assignment, len(p.Requests)),
	}
	for ci := range classes {
		c := &classes[ci]
		ms := members[ci]
		if len(ms) == 0 {
			continue
		}
		// Skew multipliers, renormalized to preserve the class's aggregate
		// problem load: Σ rate_j·w_j·scale = Σ rate_j.
		mult := make([]float64, len(ms))
		for j := range mult {
			mult[j] = 1
		}
		skew := rng.Derive(seed, "classes/skew/"+c.Name)
		switch c.Skew {
		case SkewZipf:
			for j, rank := range skew.Perm(len(ms)) {
				mult[j] = 1 / math.Pow(float64(rank+1), c.ZipfS)
			}
		case SkewLogNormal:
			for j := range mult {
				mult[j] = skew.LogNormal(0, c.Sigma)
			}
		}
		var load, skewed float64
		for j, r := range ms {
			load += r.Rate
			skewed += r.Rate * mult[j]
		}
		scale := load / skewed

		for j, r := range ms {
			rate := r.Rate * mult[j] * scale
			st := rng.Derive(seed, "classes/src/"+c.Name+"/"+string(r.ID))
			var src Source
			switch c.Process {
			case ProcessDiurnal:
				rf, peak := Diurnal(rate, c.Amplitude, c.Period, c.Phase)
				src = NewNHPP(rf, peak, st)
			case ProcessOnOff:
				src = NewMMPP(rate*(c.MeanOn+c.MeanOff)/c.MeanOn, c.MeanOn, c.MeanOff, st)
			default:
				src = NewPoisson(rate, st)
			}
			cw.Sources[r.ID] = src
			cw.Assignments[r.ID] = Assignment{Class: c.Name, Rate: rate}
		}
	}
	return cw, nil
}

// MergedStream superposes per-request sources into one globally time-ordered
// arrival cursor — the pull-based counterpart of GenerateTrace-then-sort,
// and a ready-made simulate.TraceSource / tracegen CSV feed. Each source
// keeps exactly one staged arrival in an indexed min-heap, so memory is
// O(#sources) regardless of how many arrivals are pulled. Time ties break by
// request ID, matching Trace.sort's (time, request) order.
type MergedStream struct {
	ids   []model.RequestID
	srcs  []Source
	next  []float64 // staged arrival per source
	heap  []int32   // index heap on (next[i], ids[i])
	ready bool
}

// NewMergedStream builds the superposition of the given sources. The map is
// snapshotted in sorted-ID order, so construction is deterministic.
func NewMergedStream(sources map[model.RequestID]Source) *MergedStream {
	m := &MergedStream{}
	for id := range sources {
		m.ids = append(m.ids, id)
	}
	sort.Slice(m.ids, func(i, j int) bool { return m.ids[i] < m.ids[j] })
	m.srcs = make([]Source, len(m.ids))
	for i, id := range m.ids {
		m.srcs[i] = sources[id]
	}
	return m
}

// less orders staged arrivals by (time, request ID).
func (m *MergedStream) less(a, b int32) bool {
	if m.next[a] != m.next[b] {
		return m.next[a] < m.next[b]
	}
	return m.ids[a] < m.ids[b]
}

func (m *MergedStream) siftDown(i int) {
	h := m.heap
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && m.less(h[c+1], h[c]) {
			c++
		}
		if m.less(h[i], h[c]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// prime draws every source's first arrival (after 0) and heapifies.
func (m *MergedStream) prime() {
	m.ready = true
	m.next = make([]float64, len(m.srcs))
	m.heap = m.heap[:0]
	for i := range m.srcs {
		t, ok := m.srcs[i].Next(0)
		if !ok {
			m.next[i] = math.Inf(1)
			continue
		}
		m.next[i] = t
		m.heap = append(m.heap, int32(i))
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

// NextArrival pops the earliest staged arrival, redraws its source, and
// returns (time, request). ok is false once every source is exhausted —
// generator sources never are, so callers bound the pull by their horizon.
func (m *MergedStream) NextArrival() (float64, model.RequestID, bool) {
	if !m.ready {
		m.prime()
	}
	if len(m.heap) == 0 {
		return 0, "", false
	}
	i := m.heap[0]
	t, id := m.next[i], m.ids[i]
	nt, ok := m.srcs[i].Next(t)
	if ok && nt >= t {
		m.next[i] = nt
		m.siftDown(0)
	} else {
		// Exhausted (or misbehaving): drop the source from the heap.
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap = m.heap[:last]
		m.next[i] = math.Inf(1)
		if len(m.heap) > 0 {
			m.siftDown(0)
		}
	}
	return t, id, true
}

// Err reports the stream's error state; a generator superposition cannot
// fail, so it is always nil (present to satisfy simulate.TraceSource).
func (m *MergedStream) Err() error { return nil }
