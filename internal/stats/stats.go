// Package stats provides the statistical plumbing the evaluation needs:
// online (Welford) summaries, exact sample percentiles for tail analysis
// (the paper quotes 99th-percentile response times over 1000 runs),
// histograms, and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates moments online using Welford's algorithm. The zero
// value is ready to use.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll folds a batch of observations into the summary.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Sum returns n·mean, the running total.
func (s *Summary) Sum() float64 { return float64(s.n) * s.mean }

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval around the mean (0 for fewer than two observations).
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// Merge folds another summary into this one (parallel Welford merge).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// String formats the summary compactly.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Percentile returns the p-th percentile (p in [0,100]) of the samples using
// linear interpolation between closest ranks. It panics on an empty slice or
// out-of-range p. The input is not modified.
//
// Cost: every call copies the samples and sorts the copy — O(n) extra memory
// and O(n log n) time. Callers that need several quantiles of the SAME
// sample set must use Percentiles (or PercentilesOK), which sorts once for
// all of them; calling Percentile k times re-sorts k times.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		panic("stats: Percentile of empty sample set")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,100]", p))
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Percentiles returns several percentiles in one pass — one copy and one
// sort amortized over all requested quantiles, the cheap way to extract a
// p50/p95/p99 profile from one sample set. The input is not modified.
func Percentiles(samples []float64, ps ...float64) []float64 {
	if len(samples) == 0 {
		panic("stats: Percentiles of empty sample set")
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			panic(fmt.Sprintf("stats: percentile %v outside [0,100]", p))
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// PercentileOK is the non-panicking Percentile: it reports ok = false (and
// value 0) for an empty sample set or a p outside [0,100], so callers on
// paths where no sample may exist — short horizons, long warmups, total
// buffer loss — can degrade gracefully instead of crashing.
func PercentileOK(samples []float64, p float64) (float64, bool) {
	if len(samples) == 0 || p < 0 || p > 100 {
		return 0, false
	}
	return Percentile(samples, p), true
}

// PercentilesOK is the non-panicking Percentiles: ok = false on an empty
// sample set or any out-of-range p. Like Percentiles it sorts the sample
// set once for all requested quantiles.
func PercentilesOK(samples []float64, ps ...float64) ([]float64, bool) {
	if len(samples) == 0 {
		return nil, false
	}
	for _, p := range ps {
		if p < 0 || p > 100 {
			return nil, false
		}
	}
	return Percentiles(samples, ps...), true
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, x := range samples {
		sum += x
	}
	return sum / float64(len(samples))
}

// EnhancementRatio returns (baseline − improved) / baseline, the paper's
// improvement metric, e.g. (W_CGA − W_RCKK)/W_CGA. It returns 0 when the
// baseline is 0.
func EnhancementRatio(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - improved) / baseline
}
