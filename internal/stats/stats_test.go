package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Error("zero-value Summary not neutral")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if !close(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if !close(s.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !close(s.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
	if s.CI95() <= 0 {
		t.Errorf("CI95 = %v, want positive", s.CI95())
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Mean() != 3 || s.Min() != 3 || s.Max() != 3 || s.Variance() != 0 {
		t.Errorf("single-observation summary wrong: %v", s.String())
	}
}

func TestSummaryMerge(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 4, 7}
	var whole, a, b Summary
	whole.AddAll(xs)
	a.AddAll(xs[:4])
	b.AddAll(xs[4:])
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !close(a.Mean(), whole.Mean(), 1e-12) {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if !close(a.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}

	var empty Summary
	a.Merge(&empty) // no-op
	if a.N() != whole.N() {
		t.Error("merging empty changed N")
	}
	var fresh Summary
	fresh.Merge(&whole)
	if fresh.N() != whole.N() || !close(fresh.Mean(), whole.Mean(), 1e-12) {
		t.Error("merge into empty failed")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(as, bs []float64) bool {
		ok := func(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 }
		var seq, left, right Summary
		for _, x := range as {
			if !ok(x) {
				return true
			}
			seq.Add(x)
			left.Add(x)
		}
		for _, x := range bs {
			if !ok(x) {
				return true
			}
			seq.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		return left.N() == seq.N() && close(left.Mean(), seq.Mean(), 1e-6) &&
			close(left.Variance(), seq.Variance(), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !close(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Input unchanged.
	if !sort.Float64sAreSorted(xs[:2]) || xs[0] != 15 {
		t.Error("Percentile mutated input")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile singleton = %v", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !close(got, 5, 1e-12) {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
	if got := Percentile(xs, 99); !close(got, 9.9, 1e-12) {
		t.Errorf("Percentile(99) = %v, want 9.9", got)
	}
}

func TestPercentilesBatch(t *testing.T) {
	xs := []float64{3, 1, 2}
	got := Percentiles(xs, 0, 50, 100)
	want := []float64{1, 2, 3}
	for i := range want {
		if !close(got[i], want[i], 1e-12) {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPercentileOK(t *testing.T) {
	if v, ok := PercentileOK([]float64{15, 20, 35, 40, 50}, 50); !ok || !close(v, 35, 1e-12) {
		t.Errorf("PercentileOK = (%v, %v), want (35, true)", v, ok)
	}
	for name, call := range map[string]func() (float64, bool){
		"empty":    func() (float64, bool) { return PercentileOK(nil, 50) },
		"negative": func() (float64, bool) { return PercentileOK([]float64{1}, -1) },
		"over 100": func() (float64, bool) { return PercentileOK([]float64{1}, 101) },
	} {
		if v, ok := call(); ok || v != 0 {
			t.Errorf("%s: PercentileOK = (%v, %v), want (0, false)", name, v, ok)
		}
	}
}

func TestPercentilesOK(t *testing.T) {
	got, ok := PercentilesOK([]float64{3, 1, 2}, 0, 50, 100)
	if !ok {
		t.Fatal("PercentilesOK not ok on valid input")
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !close(got[i], want[i], 1e-12) {
			t.Errorf("PercentilesOK[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, ok := PercentilesOK(nil, 50); ok {
		t.Error("PercentilesOK ok on empty samples")
	}
	if _, ok := PercentilesOK([]float64{1}, 50, 200); ok {
		t.Error("PercentilesOK ok on out-of-range p")
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":       func() { Percentile(nil, 50) },
		"negative":    func() { Percentile([]float64{1}, -1) },
		"over 100":    func() { Percentile([]float64{1}, 101) },
		"batch empty": func() { Percentiles(nil, 50) },
		"batch range": func() { Percentiles([]float64{1}, 200) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}

func TestPercentileWithinBounds(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		v := Percentile(xs, p)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); !close(got, 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestEnhancementRatio(t *testing.T) {
	if got := EnhancementRatio(1.60, 1.23); !close(got, 0.23125, 1e-9) {
		t.Errorf("EnhancementRatio = %v, want 0.23125", got)
	}
	if got := EnhancementRatio(0, 5); got != 0 {
		t.Errorf("EnhancementRatio(0,·) = %v, want 0", got)
	}
	if got := EnhancementRatio(10, 12); !close(got, -0.2, 1e-12) {
		t.Errorf("EnhancementRatio regression = %v, want -0.2", got)
	}
}

func close(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
