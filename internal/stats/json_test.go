package stats

import (
	"encoding/json"
	"testing"
)

// TestSummaryJSONRoundTrip asserts the Welford state survives a round trip
// exactly — merged and re-encoded summaries behave bit-for-bit like the
// originals.
func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	for _, x := range []float64{0.25, 1.5, -3.75, 42, 0.1} {
		s.Add(x)
	}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip drifted: %v vs %v", &back, &s)
	}
	if back.Variance() != s.Variance() || back.CI95() != s.CI95() {
		t.Errorf("derived moments drifted after round trip")
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Errorf("re-encoding unstable: %s vs %s", again, data)
	}
}

// TestSummaryJSONZero round-trips the zero value.
func TestSummaryJSONZero(t *testing.T) {
	var s Summary
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("zero round trip drifted: %v vs %v", &back, &s)
	}
}

// TestSummaryJSONStrict rejects unknown fields and negative counts.
func TestSummaryJSONStrict(t *testing.T) {
	var s Summary
	if err := json.Unmarshal([]byte(`{"n":1,"mean":2,"m2":0,"min":2,"max":2,"bogus":1}`), &s); err == nil {
		t.Error("unknown field accepted")
	}
	if err := json.Unmarshal([]byte(`{"n":-4,"mean":0,"m2":0,"min":0,"max":0}`), &s); err == nil {
		t.Error("negative n accepted")
	}
}
