package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// summaryJSON is the stable wire form of a Summary. The internal Welford
// state (n, mean, m2, min, max) is carried verbatim so a round trip is
// exact: Merge, Variance and CI95 on a decoded Summary behave bit-for-bit
// like on the original.
type summaryJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON encodes the summary's Welford state.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON decodes a summary written by MarshalJSON. Unknown fields are
// rejected so wire-format drift fails loudly instead of silently zeroing
// moments.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var raw summaryJSON
	if err := strictUnmarshal(data, &raw); err != nil {
		return fmt.Errorf("stats: decode summary: %w", err)
	}
	if raw.N < 0 {
		return fmt.Errorf("stats: decode summary: negative n %d", raw.N)
	}
	s.n, s.mean, s.m2, s.min, s.max = raw.N, raw.Mean, raw.M2, raw.Min, raw.Max
	return nil
}

// strictUnmarshal is json.Unmarshal with DisallowUnknownFields.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
