package stats

import (
	"math"
	"strings"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("accepted zero bins")
	}
	if _, err := NewHistogram(10, 10, 4); err == nil {
		t.Error("accepted empty range")
	}
	if _, err := NewHistogram(10, 5, 4); err == nil {
		t.Error("accepted inverted range")
	}
	h, err := NewHistogram(0, 10, 5)
	if err != nil || h.Bins() != 5 {
		t.Fatalf("NewHistogram: %v, bins=%d", err, h.Bins())
	}
}

func TestHistogramBinning(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2 (10 and 42)", h.Overflow())
	}
	if h.Count(0) != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Count(1))
	}
	if h.Count(2) != 1 { // 5
		t.Errorf("bin2 = %d, want 1", h.Count(2))
	}
	if h.Count(4) != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Count(4))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if med < 35 || med > 65 {
		t.Errorf("median estimate %v implausible", med)
	}
	if !math.IsNaN((&Histogram{}).Quantile(0.5)) {
		t.Error("Quantile on empty histogram should be NaN")
	}
	hi := h.Quantile(1)
	if hi < 90 {
		t.Errorf("q=1 estimate %v too low", hi)
	}
}

func TestHistogramString(t *testing.T) {
	h, _ := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(-5)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Errorf("String missing bars: %q", s)
	}
	if !strings.Contains(s, "underflow=1") {
		t.Errorf("String missing underflow: %q", s)
	}
}
