package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into fixed-width bins over [Lo,Hi); values
// outside the range land in underflow/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	counts    []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram builds a histogram with the given bounds and bin count.
// It returns an error for non-positive bins or an empty range.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram bins %d must be positive", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.counts)))
		if i >= len(h.counts) { // float rounding at the upper edge
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Count returns the number of observations in bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Total returns all observations including under/overflow.
func (h *Histogram) Total() int { return h.total }

// Underflow returns the count of observations below Lo.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow returns the count of observations at or above Hi.
func (h *Histogram) Overflow() int { return h.overflow }

// Quantile returns an approximate quantile (q in [0,1]) from the binned
// counts, attributing each bin's mass to its midpoint. NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if cum >= target && h.underflow > 0 {
		return h.Lo
	}
	width := (h.Hi - h.Lo) / float64(len(h.counts))
	for i, c := range h.counts {
		cum += float64(c)
		if cum >= target {
			return h.Lo + (float64(i)+0.5)*width
		}
	}
	return h.Hi
}

// String renders a compact ASCII bar chart, useful in CLI output.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 1
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.counts))
	for i, c := range h.counts {
		bar := strings.Repeat("#", c*40/maxCount)
		fmt.Fprintf(&b, "[%8.3g,%8.3g) %6d %s\n", h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, bar)
	}
	if h.underflow > 0 || h.overflow > 0 {
		fmt.Fprintf(&b, "underflow=%d overflow=%d\n", h.underflow, h.overflow)
	}
	return b.String()
}
