// Package profiling wires the standard pprof file profiles into the
// repository's commands (-cpuprofile / -memprofile on nfvsim and nfvbench),
// so optimization PRs can demonstrate their wins with before/after flame
// graphs next to the BENCH.json trajectory (see EXPERIMENTS.md).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (when non-empty). Either path may be empty to skip that profile; the stop
// function is always non-nil and must be called exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			defer f.Close()
			// Materialize recent frees so the heap profile reflects live
			// memory, the view that matters for steady-state footprint.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
