// Package profiling wires the standard pprof file profiles into the
// repository's commands (-cpuprofile / -memprofile / -mutexprofile /
// -blockprofile on nfvsim and nfvbench), so optimization PRs can demonstrate
// their wins with before/after flame graphs next to the BENCH.json
// trajectory (see EXPERIMENTS.md). Mutex and block profiles exist for
// contention debugging of the parallel cluster driver's worker pool.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles names the output file for each supported profile; an empty path
// skips that profile.
type Profiles struct {
	// CPU receives a CPU profile covering Start..stop.
	CPU string
	// Mem receives a heap profile (live objects after a forced GC) at stop.
	Mem string
	// Mutex receives a mutex-contention profile at stop; enabling it sets
	// runtime mutex profiling (fraction 1) for the whole run.
	Mutex string
	// Block receives a blocking profile at stop; enabling it sets the
	// runtime block profile rate to 1 for the whole run.
	Block string
}

// Start begins the requested profiles and returns a stop function that ends
// the CPU profile and writes the end-of-run profiles. Every path may be
// empty to skip that profile; the stop function is always non-nil and must
// be called exactly once.
func Start(p Profiles) (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	// Contention profiling must be switched on before the workload runs; the
	// profiles themselves are snapshotted at stop.
	if p.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if p.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			defer f.Close()
			// Materialize recent frees so the heap profile reflects live
			// memory, the view that matters for steady-state footprint.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		if p.Mutex != "" {
			if err := writeLookup("mutex", p.Mutex); err != nil {
				return err
			}
			runtime.SetMutexProfileFraction(0)
		}
		if p.Block != "" {
			if err := writeLookup("block", p.Block); err != nil {
				return err
			}
			runtime.SetBlockProfileRate(0)
		}
		return nil
	}, nil
}

// writeLookup snapshots a named runtime profile to path.
func writeLookup(name, path string) error {
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("runtime profile %q not found", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s profile: %w", name, err)
	}
	defer f.Close()
	if err := prof.WriteTo(f, 0); err != nil {
		return fmt.Errorf("write %s profile: %w", name, err)
	}
	return nil
}
