package profiling

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestStartWritesAllProfiles enables every profile, generates a little
// contention so the mutex/block profiles have something to record, and
// checks each output file materializes.
func TestStartWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	p := Profiles{
		CPU:   filepath.Join(dir, "cpu.pprof"),
		Mem:   filepath.Join(dir, "mem.pprof"),
		Mutex: filepath.Join(dir, "mutex.pprof"),
		Block: filepath.Join(dir, "block.pprof"),
	}
	stop, err := Start(p)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				mu.Lock()
				mu.Unlock() //nolint:staticcheck // intentional contention
			}
		}()
	}
	wg.Wait()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for name, path := range map[string]string{
		"cpu": p.CPU, "mem": p.Mem, "mutex": p.Mutex, "block": p.Block,
	} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s profile missing: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s profile is empty", name)
		}
	}
}

// TestStartEmpty asserts the all-empty Profiles request is a no-op with a
// working stop function.
func TestStartEmpty(t *testing.T) {
	stop, err := Start(Profiles{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
