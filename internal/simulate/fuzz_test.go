package simulate

import (
	"math"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/workload"
)

// FuzzConfigValidate throws adversarial numeric knobs — negative, NaN, ±Inf
// — at Reset and asserts the contract: every configuration either fails
// validation with an error or produces a runnable simulation; nothing
// panics. The sweep covers the fault plan (random faults, overlapping and
// zero-length outages, correlated preemption with arbitrary group sizes and
// lead times), the control plane (tick interval, shedding, live migration)
// and the arrival tier (custom per-request sources of every process shape
// plus the ExpectedArrivals sizing hint). Runs are only attempted for
// configurations Reset accepted AND whose timing knobs cannot livelock the
// event loop (a pathologically tiny retransmit delay, MTTR, preemption
// interval or control interval is valid but makes the agenda grind through
// billions of events, which a fuzzer must not wait on); source parameters
// are clamped into live ranges for the same reason.
func FuzzConfigValidate(f *testing.F) {
	f.Add(10.0, 1.0, 0.001, 0.005, 20.0, 4.0, 0, 0, 0, false,
		5.0, 1.0, 0.5, 1.0, 2.0, 3.0, 1, false, false, false,
		0, 40.0, 0.5, 0, false)
	f.Add(-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0, 0, false,
		0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, false, false, false,
		1, 0.0, 0.0, -1, true)
	f.Add(math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), 1, 1, 4, true,
		math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), -1, true, true, true,
		2, math.NaN(), math.Inf(1), -7, true)
	f.Add(math.Inf(1), 0.0, 0.0, 0.0, math.Inf(1), 1.0, 0, 1, 0, true,
		math.Inf(1), math.Inf(-1), 0.0, math.Inf(1), 0.0, math.Inf(1), 99, true, false, true,
		-3, math.Inf(-1), 1e30, 1<<30, true)
	f.Add(5.0, -2.0, -0.5, 1e-12, -3.0, math.Inf(-1), 2, -1, -7, true,
		1e-12, 1e-12, -1.0, 1e-12, -2.0, 0.0, 0, true, true, false,
		1, 80.0, 0.9, 5000, true)
	f.Add(50.0, 5.0, 0.002, 0.01, math.Inf(1), 2.0, 1, 0, 2, true,
		4.0, 0.5, 0.25, 0.5, 1.0, 0.0, 2, true, true, true,
		2, 3.0, 6.0, 100000, true)
	// Overlapping outages on the same node plus full-cluster preemption under
	// an actively migrating control plane.
	f.Add(20.0, 1.0, 0.001, 0.01, 0.0, 0.0, 0, 0, 0, true,
		3.0, 0.8, 0.3, 0.7, 2.0, 4.0, 8, true, true, true,
		0, 25.0, 0.1, 1000, true)

	f.Fuzz(func(t *testing.T, horizon, warmup, linkDelay, retransmitDelay,
		mtbf, mttr float64, dropPolicy, failPolicy, bufferSize int, withFaults bool,
		preemptInterval, recovery, leadTime, controlInterval, outDown, outLen float64,
		groupSize int, withPreempt, withControl, withOutages bool,
		sourceKind int, srcA, srcB float64, expectedArrivals int, withSources bool) {
		prob, sched, pl := faultProblem(40, 100)
		cfg := Config{
			Problem:          prob,
			Schedule:         sched,
			Placement:        pl,
			LinkDelay:        linkDelay,
			Horizon:          horizon,
			Warmup:           warmup,
			BufferSize:       bufferSize,
			DropPolicy:       DropPolicy(dropPolicy),
			FailurePolicy:    FailurePolicy(failPolicy),
			RetransmitDelay:  retransmitDelay,
			ExpectedArrivals: expectedArrivals,
			Seed:             1,
		}
		if withSources {
			// Clamp the process knobs into live ranges: the contract under fuzz
			// is that any *accepted* source config runs without panicking, and
			// unclamped rates would make a run take unbounded time rather than
			// fail. The rate ceiling keeps the offered load below the fixture's
			// service rate (100 pps) so accepted runs finish well inside the
			// fuzzer's per-input hang limit; degenerate numeric inputs still
			// reach validation through the plain config fields above.
			clamp := func(v, lo, hi float64) float64 {
				if math.IsNaN(v) || v < lo {
					return lo
				}
				if v > hi {
					return hi
				}
				return v
			}
			rate := clamp(srcA, 1, 25)
			srcs := make(map[model.RequestID]ArrivalSource, len(prob.Requests))
			for _, r := range prob.Requests {
				st := rng.Derive(1, "fuzz/src/"+string(r.ID))
				switch ((sourceKind % 3) + 3) % 3 {
				case 0:
					srcs[r.ID] = workload.NewPoisson(rate, st)
				case 1:
					rf, peak := workload.Diurnal(rate, clamp(srcB, 0, 0.9), clamp(srcA+srcB, 0.5, 100), 0)
					srcs[r.ID] = workload.NewNHPP(rf, peak, st)
				case 2:
					srcs[r.ID] = workload.NewMMPP(rate, clamp(srcA, 0.1, 10), clamp(srcB, 0.1, 10), st)
				}
			}
			cfg.Sources = srcs
		}
		if withFaults || withPreempt || withOutages {
			cfg.FaultPlan = &FaultPlan{}
			if withFaults {
				cfg.FaultPlan.MTBF, cfg.FaultPlan.MTTR = mtbf, mttr
			}
			if withPreempt {
				cfg.FaultPlan.Preemption = &PreemptionPlan{
					MeanInterval: preemptInterval,
					GroupSize:    groupSize,
					Recovery:     recovery,
					LeadTime:     leadTime,
				}
			}
			if withOutages {
				// Overlapping intervals on one node (zero-length when outLen
				// is 0 — validation must reject those cleanly) plus a second
				// node's outage.
				cfg.FaultPlan.Outages = []Outage{
					{Node: "a", DownAt: outDown, UpAt: outDown + outLen},
					{Node: "a", DownAt: outDown + outLen/2, UpAt: outDown + 1.5*outLen},
					{Node: "b", DownAt: outDown, UpAt: outDown + outLen},
				}
			}
		}
		if withControl {
			// A live hook: shed a quarter of admissions and bounce f's first
			// instance between the two nodes — deterministic, and exercising
			// the migration freeze/resume machinery under every fault mix.
			tick := 0
			cfg.Control = tickHook(func(now float64, cp *ControlPlane) {
				_ = cp.SetShedFraction(0.25)
				target := model.NodeID("a")
				if tick%2 == 0 {
					target = "b"
				}
				tick++
				_ = cp.MigrateInstance("f", 0, target, now+0.01)
			})
			cfg.ControlInterval = controlInterval
		}
		sim := NewSimulator()
		if err := sim.Reset(cfg); err != nil {
			return // rejected cleanly — the contract holds
		}
		// Validation passed; make sure the accepted config is actually
		// runnable — but only when it cannot livelock the fuzzer.
		if horizon > 100 {
			return
		}
		retransmitting := cfg.DropPolicy == DropRetransmit ||
			(cfg.FaultPlan != nil && cfg.FailurePolicy == FailRetransmit)
		if retransmitting && retransmitDelay < 1e-3 {
			return
		}
		if cfg.FaultPlan != nil && cfg.FaultPlan.randomFaults() && (mtbf < 1e-3 || mttr < 1e-3) {
			return
		}
		if withPreempt && preemptInterval < 1e-2 {
			return
		}
		if withControl && controlInterval < 1e-2 {
			return
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("Reset accepted config but Run failed: %v", err)
		}
		if res.Availability < 0 || res.Availability > 1 || math.IsNaN(res.Availability) {
			t.Fatalf("availability %v out of [0,1]", res.Availability)
		}
		lost := res.FailureDrops + res.Shed
		if cfg.DropPolicy == DropDiscard {
			lost += res.Dropped
		}
		if got := res.Delivered + res.InFlight + lost; got != res.Generated {
			t.Fatalf("conservation violated: delivered %d + inflight %d + lost %d = %d, want %d",
				res.Delivered, res.InFlight, lost, got, res.Generated)
		}
	})
}
