package simulate

import (
	"math"
	"testing"
)

// FuzzConfigValidate throws adversarial numeric knobs — negative, NaN, ±Inf
// — at Reset and asserts the contract: every configuration either fails
// validation with an error or produces a runnable simulation; nothing
// panics. Runs are only attempted for configurations Reset accepted AND
// whose timing knobs cannot livelock the event loop (a pathologically tiny
// retransmit delay or MTTR is valid but makes the agenda grind through
// billions of events, which a fuzzer must not wait on).
func FuzzConfigValidate(f *testing.F) {
	f.Add(10.0, 1.0, 0.001, 0.005, 20.0, 4.0, 0, 0, 0, false)
	f.Add(-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0, 0, false)
	f.Add(math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), 1, 1, 4, true)
	f.Add(math.Inf(1), 0.0, 0.0, 0.0, math.Inf(1), 1.0, 0, 1, 0, true)
	f.Add(5.0, -2.0, -0.5, 1e-12, -3.0, math.Inf(-1), 2, -1, -7, true)
	f.Add(50.0, 5.0, 0.002, 0.01, math.Inf(1), 2.0, 1, 0, 2, true)

	f.Fuzz(func(t *testing.T, horizon, warmup, linkDelay, retransmitDelay,
		mtbf, mttr float64, dropPolicy, failPolicy, bufferSize int, withFaults bool) {
		prob, sched, pl := faultProblem(40, 100)
		cfg := Config{
			Problem:         prob,
			Schedule:        sched,
			Placement:       pl,
			LinkDelay:       linkDelay,
			Horizon:         horizon,
			Warmup:          warmup,
			BufferSize:      bufferSize,
			DropPolicy:      DropPolicy(dropPolicy),
			FailurePolicy:   FailurePolicy(failPolicy),
			RetransmitDelay: retransmitDelay,
			Seed:            1,
		}
		if withFaults {
			cfg.FaultPlan = &FaultPlan{MTBF: mtbf, MTTR: mttr}
		}
		sim := NewSimulator()
		if err := sim.Reset(cfg); err != nil {
			return // rejected cleanly — the contract holds
		}
		// Validation passed; make sure the accepted config is actually
		// runnable — but only when it cannot livelock the fuzzer.
		if horizon > 100 {
			return
		}
		retransmitting := cfg.DropPolicy == DropRetransmit ||
			(cfg.FaultPlan != nil && cfg.FailurePolicy == FailRetransmit)
		if retransmitting && retransmitDelay < 1e-3 {
			return
		}
		if cfg.FaultPlan != nil && cfg.FaultPlan.randomFaults() && (mtbf < 1e-3 || mttr < 1e-3) {
			return
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("Reset accepted config but Run failed: %v", err)
		}
		if res.Availability < 0 || res.Availability > 1 || math.IsNaN(res.Availability) {
			t.Fatalf("availability %v out of [0,1]", res.Availability)
		}
		lost := res.FailureDrops
		if cfg.DropPolicy == DropDiscard {
			lost += res.Dropped
		}
		if got := res.Delivered + res.InFlight + lost; got != res.Generated {
			t.Fatalf("conservation violated: delivered %d + inflight %d + lost %d = %d, want %d",
				res.Delivered, res.InFlight, lost, got, res.Generated)
		}
	})
}
