package simulate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/stats"
	"nfvchain/internal/workload"
)

// InstanceKey identifies one service instance of a VNF.
type InstanceKey struct {
	VNF      model.VNFID
	Instance int
}

// ArrivalSource is a pull-based external arrival process for one request:
// Next returns the first arrival time strictly after the previous one (the
// simulator passes the last arrival it admitted, or 0 at seeding). ok=false
// retires the flow — no further arrivals are generated. The simulator keeps
// exactly one pending event per live source, so memory stays O(#sources)
// regardless of how many arrivals a source will produce. Sources must be
// deterministic for reproducible runs (drive them from rng.Derive streams)
// and are pulled in strictly non-decreasing `after` order; a returned time
// in the past is clamped to the pull time. The workload package's generator
// sources (Poisson, diurnal NHPP, MMPP on/off, log-normal renewal) satisfy
// this interface.
type ArrivalSource interface {
	Next(after float64) (t float64, ok bool)
}

// TraceSource is a forward-only cursor over a time-ordered arrival trace —
// the streaming counterpart of a materialized Config.Trace. NextArrival
// returns consecutive (time, request) rows in non-decreasing time order;
// ok=false ends the trace, after which Err reports whether it ended cleanly
// or on a malformed row. workload.TraceStream (a CSV cursor) and
// workload.MergedStream (a live generator superposition) both satisfy it.
type TraceSource interface {
	NextArrival() (t float64, id model.RequestID, ok bool)
	Err() error
}

// Config parameterizes one simulation run.
type Config struct {
	Problem  *model.Problem
	Schedule *model.Schedule
	// Placement is optional; when present, consecutive chain stages hosted
	// on different nodes incur LinkDelay (the paper's per-hop constant L in
	// Eq. 16). When nil, all stages are considered co-located.
	Placement *model.Placement

	Horizon float64 // simulated seconds; must be positive
	Warmup  float64 // samples from packets arriving before Warmup are discarded

	// LinkDelay is the constant inter-node latency L. Ignored without a
	// placement.
	LinkDelay float64

	// BufferSize bounds each instance's waiting room (excluding the packet
	// in service); 0 means unbounded. Full buffers drop arriving packets.
	BufferSize int

	// DropPolicy selects what happens to a packet that meets a full buffer.
	// The zero value (DropDiscard) keeps the historical semantics: the drop
	// is counted and the packet vanishes. DropRetransmit models the paper's
	// NACK loss feedback (Fig. 3) for mid-chain losses too: the source
	// learns of the drop and re-injects the packet after RetransmitDelay.
	DropPolicy DropPolicy

	// RetransmitDelay is the NACK round-trip before a dropped packet is
	// re-injected at its source. Required (positive) with DropRetransmit —
	// an instantaneous retry against a still-full buffer would livelock the
	// event loop. Ignored under DropDiscard.
	RetransmitDelay float64

	// Trace optionally replays recorded external arrivals instead of
	// generating Poisson arrivals online. Every arrival is materialized into
	// the agenda at seeding time — O(total arrivals) memory; prefer
	// TraceStream for large traces. Mutually exclusive with TraceStream and
	// Sources.
	Trace *workload.Trace

	// TraceStream replays external arrivals from a forward-only cursor
	// instead of a materialized Trace: exactly one trace arrival is pending
	// at any moment, so a 10M-row trace runs in constant memory. Replay is
	// bit-identical to handing the same (time-ordered) trace to Trace. Rows
	// naming unknown or inject-only requests are skipped; rows at or past
	// the horizon end the replay. A cursor error (malformed or out-of-order
	// row) stops the stream and fails the run at Run/Finalize. Mutually
	// exclusive with Trace and Sources.
	TraceStream TraceSource

	// Sources overrides the arrival process of individual requests: a
	// request whose ID maps to a non-nil ArrivalSource draws its external
	// arrivals from it instead of the flat-Poisson process at Rate. Requests
	// absent from the map (or mapped to nil) keep the Poisson default, so a
	// nil or empty map is bit-identical to historical runs. IDs not
	// scheduled in this simulation are ignored, mirroring trace replay.
	// Mutually exclusive with Trace and TraceStream.
	Sources map[model.RequestID]ArrivalSource

	// ExpectedArrivals hints the total number of external arrivals the run
	// will admit, sizing the AgendaAuto backend choice and the
	// latency-sample reservation when the exact count is unknowable up
	// front (TraceStream replay, custom Sources). 0 falls back to the
	// offered-rate estimate Σ Rate·Horizon from the problem, which is exact
	// in expectation for the flat-Poisson default and mean-preserving
	// generator classes. Ignored when Trace is set (the count is exact).
	ExpectedArrivals int

	// InjectOnly lists requests whose external arrivals are supplied by the
	// caller through Simulator.Inject instead of being generated from Rate
	// (or read from Trace). The requests still participate in scheduling and
	// admission exactly like any other — only their arrival source changes.
	// This is how a ClusterSimulator drives cross-datacenter traffic: every
	// datacenter provisions for the global requests it might serve, and the
	// cluster scheduler injects each global packet into the datacenter its
	// routing policy picked. IDs absent from the problem (or removed by
	// admission) are ignored.
	InjectOnly []model.RequestID

	// FaultPlan injects node failures (random MTBF/MTTR chains and/or
	// scheduled outages). nil disables fault injection entirely, leaving
	// every event and RNG stream bit-identical to historical runs. A
	// FaultPlan requires a Placement (failures are per node).
	FaultPlan *FaultPlan

	// FailurePolicy selects the fate of packets caught at a failed
	// instance (zero value FailDrop = crash loss). FailRetransmit requires
	// a positive RetransmitDelay. Ignored without a FaultPlan.
	FailurePolicy FailurePolicy

	// FaultHook, if non-nil, is notified of node transitions mid-run and
	// may repair the routing via the RepairControl it receives. Ignored
	// without a FaultPlan. A hook additionally implementing
	// PreemptionNoticeHook receives advance notice of correlated
	// preemptions (see PreemptionPlan.LeadTime).
	FaultHook FaultHook

	// Control, if non-nil, receives a controller tick every ControlInterval
	// simulated seconds and may reshape the deployment through the
	// ControlPlane it is handed — the online control-plane entry point (see
	// internal/control). Requires a Placement and a positive finite
	// ControlInterval. nil keeps every event and RNG stream bit-identical
	// to historical runs.
	Control ControlHook

	// ControlInterval is the controller tick period (simulated seconds).
	// Required (positive, finite) when Control is set; ignored otherwise.
	ControlInterval float64

	// ServiceDist selects the per-packet service-time distribution; the
	// zero value means ServiceExponential (the paper's model assumption).
	// Non-exponential choices keep each instance's mean rate µ but change
	// its variability, quantifying how far the open-Jackson analytics can
	// be trusted when the M/M/1 assumption is violated.
	ServiceDist ServiceDist

	// Agenda selects the pending-event queue implementation (see AgendaKind).
	// Every kind pops events in the identical (time, seq) order, so Results
	// are bit-identical across kinds — this is purely a performance knob.
	// The zero value AgendaAuto picks by expected event count.
	Agenda AgendaKind

	Seed uint64
}

// expectedEvents estimates the run's total event count from the offered
// load: per admitted packet, one source event, one arrival plus one service
// completion per chain stage, and one delivery check. Trace-mode runs weight
// each request's per-packet cost by its actual share of the trace — a trace
// skewed toward long-chain requests generates correspondingly more events —
// rather than assuming arrivals divide uniformly across requests; arrivals
// naming unknown requests are skipped at seeding time and count nothing.
// Streaming modes (TraceStream, Sources) cannot enumerate arrivals up
// front: they scale the rate-weighted mean per-arrival cost by the
// ExpectedArrivals hint when one is given, and otherwise fall back to the
// problem's offered rates — exact in expectation for the Poisson default
// and for mean-preserving generator classes.
func (cfg *Config) expectedEvents() float64 {
	if cfg.Trace != nil {
		cost := make(map[model.RequestID]float64, len(cfg.Problem.Requests))
		for _, r := range cfg.Problem.Requests {
			cost[r.ID] = float64(2*len(r.Chain) + 2)
		}
		var total float64
		for _, a := range cfg.Trace.Arrivals {
			total += cost[a.Request]
		}
		return total
	}
	var rate, weighted float64
	for _, r := range cfg.Problem.Requests {
		rate += r.Rate
		weighted += r.Rate * float64(2*len(r.Chain)+2)
	}
	if cfg.ExpectedArrivals > 0 && rate > 0 {
		return float64(cfg.ExpectedArrivals) * weighted / rate
	}
	return weighted * cfg.Horizon
}

// resolveAgenda returns the concrete backend the run starts on: the
// configured kind, or — for AgendaAuto — the 4-ary heap on small runs and
// the ladder queue once the expected event count clears agendaAutoThreshold.
// An AgendaAuto run that starts on the heap additionally migrates to the
// ladder at runtime if its observed pending population crosses
// agendaAdaptivePending (see agenda.migrateToLadder); Results.Agenda reports
// the backend the run finished on.
func (cfg *Config) resolveAgenda() AgendaKind {
	if cfg.Agenda != AgendaAuto {
		return cfg.Agenda
	}
	if cfg.expectedEvents() >= agendaAutoThreshold {
		return AgendaLadder
	}
	return AgendaHeap
}

// DropPolicy selects the fate of packets arriving at a full buffer.
type DropPolicy int

// Supported drop policies.
const (
	// DropDiscard counts the drop and discards the packet silently — the
	// source never learns of the loss. This is the historical default,
	// kept as the zero value for reproducibility of existing experiments.
	DropDiscard DropPolicy = iota
	// DropRetransmit counts the drop and re-injects the packet from its
	// source after Config.RetransmitDelay, mirroring the delivery-check
	// NACK path: no packet is ever silently lost (loss-feedback model of
	// the paper's Eq. 7 / Fig. 3).
	DropRetransmit
)

// ServiceDist selects the service-time distribution of every instance.
type ServiceDist int

// Supported service-time distributions (mean always 1/µ).
const (
	// ServiceExponential: CV = 1; the paper's M/M/1 assumption.
	ServiceExponential ServiceDist = iota
	// ServiceDeterministic: CV = 0; an M/D/1 system, the best case for
	// queueing (half the M/M/1 waiting time by Pollaczek–Khinchine).
	ServiceDeterministic
	// ServiceLogNormal: CV ≈ 1.31 (σ = 1); heavier-than-exponential tails,
	// the regime where M/M/1 analytics underestimate latency.
	ServiceLogNormal
)

// CV returns the distribution's coefficient of variation.
func (d ServiceDist) CV() float64 {
	switch d {
	case ServiceDeterministic:
		return 0
	case ServiceLogNormal:
		return math.Sqrt(math.E - 1)
	default:
		return 1
	}
}

// sample draws one service time with mean 1/mu.
func (d ServiceDist) sample(s *rng.Stream, mu float64) float64 {
	switch d {
	case ServiceDeterministic:
		return 1 / mu
	case ServiceLogNormal:
		// E[lognormal(µ̂,1)] = exp(µ̂+1/2) = 1/mu → µ̂ = −ln(mu) − 1/2.
		return s.LogNormal(-math.Log(mu)-0.5, 1)
	default:
		return s.Exp(mu)
	}
}

// Results aggregates one run's measurements.
type Results struct {
	Horizon, Warmup float64

	// Agenda is the resolved agenda kind the run executed with (never
	// AgendaAuto). Diagnostic only — it affects no measurement.
	Agenda AgendaKind

	// Generated counts external packet arrivals admitted before the
	// horizon (retransmissions are not new packets).
	Generated int
	// Delivered counts packets that completed their chain and passed the
	// delivery check; Latency summarizes their end-to-end sojourn
	// (including retransmission passes and link hops).
	Delivered int
	Latency   stats.Summary
	// LatencySamples holds every measured end-to-end latency (post-warmup),
	// enabling percentile tail analysis.
	LatencySamples []float64

	// Retransmissions counts failed delivery checks (each triggers a new
	// pass from the source).
	Retransmissions int
	// Dropped counts buffer-full drop events. Under DropDiscard each event
	// permanently loses one packet; under DropRetransmit the packet is
	// re-injected at its source and only the extra pass is lost.
	Dropped int
	// DroppedByInstance breaks Dropped down by the instance whose full
	// buffer caused it, locating the bottleneck stage.
	DroppedByInstance map[InstanceKey]int
	// DropRetransmits counts drop-triggered source re-injections (only
	// non-zero under DropRetransmit; disjoint from Retransmissions, which
	// counts delivery-check NACKs).
	DropRetransmits int
	// InFlight counts packets admitted before the horizon that had neither
	// completed delivery nor been permanently lost when the run ended, so
	// Generated = Delivered + InFlight + discarded drops + FailureDrops +
	// Shed always holds (buffer drops are permanent only under DropDiscard;
	// failure drops only under FailDrop).
	InFlight int

	// Shed counts external arrivals turned away by the control plane's
	// deterministic admission shedding (RepairControl.SetShedFraction):
	// offered — they count toward Generated and depress Availability — but
	// never admitted into the network. Always zero without a ControlHook.
	Shed int

	// FailureDrops counts packets permanently lost to node failures under
	// FailDrop — in service or queued at a failing instance, or arriving
	// while its node was down.
	FailureDrops int
	// FailureDropsByInstance breaks FailureDrops down by the instance that
	// held (or was about to hold) the packet.
	FailureDropsByInstance map[InstanceKey]int
	// FailRetransmits counts failure-triggered source re-injections (only
	// non-zero under FailRetransmit; disjoint from Retransmissions and
	// DropRetransmits).
	FailRetransmits int

	// Downtime is each node's accumulated out-of-service time within
	// [0, Horizon]; nodes that never failed are absent. Empty without a
	// FaultPlan.
	Downtime map[model.NodeID]float64

	// Availability is the fraction of offered packets that completed
	// delivery by the horizon, Delivered/Generated (1 when nothing was
	// offered). Without faults it is slightly below 1 only because of
	// still-in-flight packets and discarded buffer drops.
	Availability float64

	// Utilization is the measured busy fraction of each instance over
	// [Warmup, Horizon].
	Utilization map[InstanceKey]float64

	// MeanJobs is the time-averaged number of packets in each instance's
	// system (queue + service) over [Warmup, Horizon] — the empirical
	// counterpart of the paper's Eq. 10, E[N] = ρ/(1−ρ).
	MeanJobs map[InstanceKey]float64

	// PerRequest summarizes delivered latency per request.
	PerRequest map[model.RequestID]*stats.Summary

	// PerInstance summarizes the per-visit sojourn (queueing + service) at
	// each instance — the empirical W(f,k) of the paper's Eq. 11.
	PerInstance map[InstanceKey]*stats.Summary
}

// packet is one in-flight packet. Packets live in the simulation's flat
// arena and are addressed by int32 index, so events and ring buffers carry
// 4-byte handles instead of pointers.
type packet struct {
	reqIndex   int32
	stage      int32   // index into the request's chain
	birth      float64 // first external arrival time (retransmissions keep it)
	visitStart float64 // arrival time at the current instance
}

// instance is the runtime state of one service instance. Instances live in
// a flat table indexed by int32; the per-instance aggregates (visit sojourn
// summary, drop count) are folded into the Results maps at finalize so the
// event loop never touches a map.
type instance struct {
	key InstanceKey
	mu  float64
	// Waiting room: a power-of-two ring buffer of packet indices (q, qhead,
	// qlen), making both enqueue and dequeue O(1) without per-packet
	// allocation.
	q     []int32
	qhead int
	qlen  int
	// busy is the in-service packet index, -1 while idle.
	busy         int32
	serviceStart float64
	busyTime     float64 // accumulated within [warmup, horizon]
	stream       *rng.Stream

	// Fault state (inert without a FaultPlan): node indexes the node table
	// (-1 when faults are off), down mirrors the node's state so the
	// arrival hot path checks one local field, epoch invalidates pending
	// completion events of failed service, and bootUntil delays a
	// replacement instance's first service until its setup cost is paid.
	node      int32
	down      bool
	epoch     int32
	bootUntil float64
	// retired marks an instance removed by RemoveInstance: it drains its
	// residual work but receives no new routes. Observational only.
	retired bool

	// Control-plane utilization window (maintained only when Config.Control
	// is set, see simulation.ctrlOn): ctrlBusy accumulates raw busy time —
	// unclipped by warmup/horizon, unlike busyTime — and ctrlMark snapshots
	// it at each tick, so a tick's window utilization is their difference
	// over the window length.
	ctrlBusy float64
	ctrlMark float64

	// Time-averaged population bookkeeping (∫N dt over [warmup, horizon]).
	population int
	lastChange float64
	popArea    float64

	// dropped, failureDrops and visits feed DroppedByInstance,
	// FailureDropsByInstance and PerInstance.
	dropped      int
	failureDrops int
	visits       stats.Summary
}

// notePopulation folds the time since the last change into the ∫N dt area
// and applies the population delta.
func (inst *instance) notePopulation(now, warmup, horizon float64, delta int) {
	inst.popArea += float64(inst.population) * overlap(inst.lastChange, now, warmup, horizon)
	inst.lastChange = now
	inst.population += delta
}

// enqueue appends a packet index to the instance's ring buffer, doubling it
// when full (capacities stay powers of two so the index masks below are
// valid).
func (inst *instance) enqueue(pid int32) {
	if inst.qlen == len(inst.q) {
		grown := make([]int32, max(2*len(inst.q), 8))
		for i := 0; i < inst.qlen; i++ {
			grown[i] = inst.q[(inst.qhead+i)&(len(inst.q)-1)]
		}
		inst.q = grown
		inst.qhead = 0
	}
	inst.q[(inst.qhead+inst.qlen)&(len(inst.q)-1)] = pid
	inst.qlen++
}

// requeueFront pushes a packet index back onto the head of the ring buffer
// — the migration freeze path returns an interrupted in-service packet to
// the front so its position in line is preserved.
func (inst *instance) requeueFront(pid int32) {
	if inst.qlen == len(inst.q) {
		grown := make([]int32, max(2*len(inst.q), 8))
		for i := 0; i < inst.qlen; i++ {
			grown[i] = inst.q[(inst.qhead+i)&(len(inst.q)-1)]
		}
		inst.q = grown
		inst.qhead = 0
	}
	inst.qhead = (inst.qhead - 1) & (len(inst.q) - 1)
	inst.q[inst.qhead] = pid
	inst.qlen++
}

// dequeue pops the head of the ring buffer; the caller checks qlen > 0.
func (inst *instance) dequeue() int32 {
	pid := inst.q[inst.qhead]
	inst.qhead = (inst.qhead + 1) & (len(inst.q) - 1)
	inst.qlen--
	return pid
}

// simulation is the run state.
type simulation struct {
	cfg     Config
	agenda  agenda
	now     float64
	results *Results

	requests []model.Request
	// instances is the flat instance table; instIndex resolves keys to
	// table indices during build.
	instances []instance
	instIndex map[InstanceKey]int32

	// Flat chain routing: stage s of request i is served by instance
	// routeFlat[chainOff[i]+s] and incurs link delay hopFlat[chainOff[i]+s]
	// on entry (0 for s=0 or co-located stages).
	chainOff  []int32
	routeFlat []int32
	hopFlat   []float64

	arrivalStreams  []*rng.Stream
	deliveryStreams []*rng.Stream

	// perReq accumulates delivered latency per request index; finalize
	// publishes it as Results.PerRequest.
	perReq []stats.Summary

	// live counts admitted packets not yet delivered or permanently
	// dropped; finalize publishes it as Results.InFlight.
	live int

	// Stepping state. started records that seedArrivals/seedFaults ran (the
	// primitives and Run both trigger it lazily, exactly once per Reset).
	// staged holds an event popped by HasPendingEvents/PeekNextEventTime but
	// not yet processed; it is always the global minimum of the pending set.
	started   bool
	staged    event
	hasStaged bool

	// injectOnly[i] marks request i as externally driven (Config.InjectOnly):
	// seedArrivals generates no traffic for it. injectIndex resolves request
	// IDs for Simulator.Inject, built lazily on first use.
	injectOnly  []bool
	injectIndex map[model.RequestID]int32

	// sources[i] is request i's arrival process: the caller's override from
	// Config.Sources, or a pointer into the poisson arena — the flat-Poisson
	// default over arrivalStreams[i], bit-identical to the historical inline
	// draw. Unused in trace modes.
	sources []ArrivalSource
	poisson []poissonSource

	// Streamed-trace state (Config.TraceStream): streamRow stamps each
	// admitted row with its position in the low sequence band (see
	// streamSeqBase), streamErr latches the first cursor failure — the
	// stream stops pulling and Run/Finalize surface it after the drain.
	streamRow uint64
	streamErr error

	// packets is the flat packet arena; packetFree recycles indices. The
	// simulation is single-goroutine, so a plain slice beats sync.Pool: no
	// synchronization, and recycling order is deterministic.
	packets    []packet
	packetFree []int32

	// Fault state, populated only when cfg.FaultPlan != nil (see fault.go).
	nodes     []nodeState
	nodeIndex map[model.NodeID]int32
	reqIndex  map[model.RequestID]int32
	// nextInst tracks the next free instance index per VNF for
	// RepairControl.AddInstance (base indices [0, M_f) are reserved).
	nextInst map[model.VNFID]int

	// Control-plane state, inert unless cfg.Control is set (ctrlOn) or a
	// hook enables shedding. lastTick anchors the per-tick observation
	// window; shedFrac/shedAcc implement deterministic fractional admission
	// shedding (see shedNext).
	ctrlOn   bool
	lastTick float64
	shedFrac float64
	shedAcc  float64

	// Correlated-preemption state (cfg.FaultPlan.Preemption): the dedicated
	// stream, the pending event's drawn group and time, and draw/notice
	// scratch. At most one preemption is pending at a time.
	preemptStream *rng.Stream
	preemptGroup  []int32
	preemptPerm   []int32
	preemptAt     float64
	noticeIDs     []model.NodeID

	// streams caches derived RNG streams by label: Reset rewinds a cached
	// stream in place (rng.Stream.Reseed) instead of re-deriving it, which
	// would allocate per request and instance on every trial. labelBuf is the
	// reused label scratch; the map lookup on string(labelBuf) does not
	// allocate.
	streams  map[string]*rng.Stream
	labelBuf []byte
}

// poissonSource is the default ArrivalSource: the flat-Poisson process of
// the paper, drawing inter-arrival gaps from the request's cached
// "arrivals/<id>" stream. Instances live in the simulation's poisson arena
// so Reset reuse allocates nothing, and Next performs the exact arithmetic
// of the historical inline draw — which is why expressing the default path
// through the interface leaves every golden fingerprint untouched.
type poissonSource struct {
	stream *rng.Stream
	rate   float64
}

func (p *poissonSource) Next(after float64) (float64, bool) {
	return after + p.stream.Exp(p.rate), true
}

// stream returns the cached stream for the label currently in labelBuf,
// rewound to the state rng.Derive(cfg.Seed, label) would start in —
// bit-identical to a fresh derivation, allocation-free after the first run.
func (s *simulation) stream() *rng.Stream {
	if st, ok := s.streams[string(s.labelBuf)]; ok {
		st.Reseed(s.cfg.Seed, s.labelBuf)
		return st
	}
	if s.streams == nil {
		s.streams = make(map[string]*rng.Stream)
	}
	lbl := string(s.labelBuf)
	st := rng.Derive(s.cfg.Seed, lbl)
	s.streams[lbl] = st
	return st
}

// namedStream resolves the stream labeled prefix+id.
func (s *simulation) namedStream(prefix, id string) *rng.Stream {
	s.labelBuf = append(s.labelBuf[:0], prefix...)
	s.labelBuf = append(s.labelBuf, id...)
	return s.stream()
}

// serviceStream resolves the per-instance service stream, labeled
// "service/<vnf>/<k>" exactly as the historical fmt.Sprintf spelling.
func (s *simulation) serviceStream(f model.VNFID, k int) *rng.Stream {
	s.labelBuf = append(s.labelBuf[:0], "service/"...)
	s.labelBuf = append(s.labelBuf, f...)
	s.labelBuf = append(s.labelBuf, '/')
	s.labelBuf = strconv.AppendInt(s.labelBuf, int64(k), 10)
	return s.stream()
}

// newPacket returns the arena index of a recycled (or fresh) packet for
// request i born at t. Pointers into the arena must be re-derived after any
// call — appends may move the backing array.
func (s *simulation) newPacket(i int32, t float64) int32 {
	if n := len(s.packetFree); n > 0 {
		pid := s.packetFree[n-1]
		s.packetFree = s.packetFree[:n-1]
		s.packets[pid] = packet{reqIndex: i, birth: t}
		return pid
	}
	s.packets = append(s.packets, packet{reqIndex: i, birth: t})
	return int32(len(s.packets) - 1)
}

// freePacket recycles the packet index after delivery or a discarding drop.
func (s *simulation) freePacket(pid int32) {
	s.packetFree = append(s.packetFree, pid)
}

// Simulator owns a reusable simulation: Reset(cfg) prepares a run while
// retaining every backing array of the previous one (agenda, packet arena,
// ring buffers, free lists, latency-sample slice, result maps), and Run()
// executes it. Sweeps that evaluate many configurations amortize all run
// -state allocation this way:
//
//	var sim Simulator
//	for _, cfg := range cfgs {
//		if err := sim.Reset(cfg); err != nil { ... }
//		res, err := sim.Run()
//		// consume res before the next Reset
//	}
//
// The Results returned by Run aliases the simulator's reused buffers and is
// only valid until the next Reset. Use the package-level Run for a fresh,
// independently owned Results. A Simulator must not be shared across
// goroutines. The zero value is ready to use.
type Simulator struct {
	s     simulation
	ready bool
}

// NewSimulator returns an empty reusable simulator.
func NewSimulator() *Simulator { return &Simulator{} }

// Run executes one simulation with freshly allocated state and returns its
// measurements. The Results is independently owned and stays valid
// indefinitely.
func Run(cfg Config) (*Results, error) {
	var sim Simulator
	if err := sim.Reset(cfg); err != nil {
		return nil, err
	}
	return sim.Run()
}

// RunContext is Run with cancellation: the event loop polls ctx every
// CtxCheckInterval events and aborts with ctx.Err() when it fires. A
// context.Background() run is bit-identical to Run — the check never
// perturbs RNG streams or event order, it only decides whether to keep
// going.
func RunContext(ctx context.Context, cfg Config) (*Results, error) {
	var sim Simulator
	if err := sim.Reset(cfg); err != nil {
		return nil, err
	}
	return sim.RunContext(ctx)
}

// Reset validates cfg and prepares the simulator for one run, reusing the
// previous run's backing arrays. Any Results previously returned by Run is
// invalidated.
func (sim *Simulator) Reset(cfg Config) error {
	sim.ready = false
	if cfg.Problem == nil || cfg.Schedule == nil {
		return errors.New("simulate: Problem and Schedule are required")
	}
	if !(cfg.Horizon > 0) || math.IsInf(cfg.Horizon, 1) {
		return fmt.Errorf("simulate: horizon %v must be positive and finite", cfg.Horizon)
	}
	if !(cfg.Warmup >= 0 && cfg.Warmup < cfg.Horizon) {
		return fmt.Errorf("simulate: warmup %v outside [0, horizon)", cfg.Warmup)
	}
	if !(cfg.LinkDelay >= 0) || math.IsInf(cfg.LinkDelay, 1) {
		return fmt.Errorf("simulate: link delay %v must be non-negative and finite", cfg.LinkDelay)
	}
	if cfg.BufferSize < 0 {
		return fmt.Errorf("simulate: negative buffer size %d", cfg.BufferSize)
	}
	switch cfg.DropPolicy {
	case DropDiscard:
	case DropRetransmit:
		if !(cfg.RetransmitDelay > 0) || math.IsInf(cfg.RetransmitDelay, 1) {
			return fmt.Errorf("simulate: DropRetransmit requires a positive finite RetransmitDelay, got %v", cfg.RetransmitDelay)
		}
	default:
		return fmt.Errorf("simulate: unknown drop policy %d", cfg.DropPolicy)
	}
	switch cfg.ServiceDist {
	case ServiceExponential, ServiceDeterministic, ServiceLogNormal:
	default:
		return fmt.Errorf("simulate: unknown service distribution %d", cfg.ServiceDist)
	}
	switch cfg.Agenda {
	case AgendaAuto, AgendaHeap, AgendaLadder:
	default:
		return fmt.Errorf("simulate: unknown agenda kind %d", cfg.Agenda)
	}
	if cfg.Trace != nil && cfg.TraceStream != nil {
		return errors.New("simulate: Trace and TraceStream are mutually exclusive")
	}
	if len(cfg.Sources) > 0 && (cfg.Trace != nil || cfg.TraceStream != nil) {
		return errors.New("simulate: Sources cannot be combined with trace replay (Trace/TraceStream)")
	}
	if cfg.ExpectedArrivals < 0 {
		return fmt.Errorf("simulate: negative ExpectedArrivals %d", cfg.ExpectedArrivals)
	}
	switch cfg.FailurePolicy {
	case FailDrop:
	case FailRetransmit:
		if cfg.FaultPlan != nil && (!(cfg.RetransmitDelay > 0) || math.IsInf(cfg.RetransmitDelay, 1)) {
			return fmt.Errorf("simulate: FailRetransmit requires a positive finite RetransmitDelay, got %v", cfg.RetransmitDelay)
		}
	default:
		return fmt.Errorf("simulate: unknown failure policy %d", cfg.FailurePolicy)
	}
	if cfg.FaultPlan != nil {
		if cfg.Placement == nil {
			return errors.New("simulate: FaultPlan requires a Placement (failures are per node)")
		}
		if err := cfg.FaultPlan.validate(cfg.Problem); err != nil {
			return err
		}
	}
	if cfg.Control != nil {
		if cfg.Placement == nil {
			return errors.New("simulate: Control requires a Placement (the control plane acts per node)")
		}
		if !(cfg.ControlInterval > 0) || math.IsInf(cfg.ControlInterval, 1) {
			return fmt.Errorf("simulate: Control requires a positive finite ControlInterval, got %v", cfg.ControlInterval)
		}
	}
	// Partial validation: requests absent from the schedule were rejected by
	// admission control and simply generate no traffic.
	if err := cfg.Schedule.ValidatePartial(cfg.Problem); err != nil {
		return fmt.Errorf("simulate: %w", err)
	}
	if cfg.Placement != nil {
		if err := cfg.Placement.Validate(cfg.Problem); err != nil {
			return fmt.Errorf("simulate: %w", err)
		}
	}

	s := &sim.s
	s.cfg = cfg
	s.now = 0
	s.live = 0
	s.started = false
	s.hasStaged = false
	s.ctrlOn = cfg.Control != nil
	s.lastTick = 0
	s.shedFrac = 0
	s.shedAcc = 0
	s.preemptStream = nil
	s.preemptGroup = s.preemptGroup[:0]
	s.preemptAt = 0
	s.agenda.reset(cfg.resolveAgenda(), cfg.Agenda == AgendaAuto)
	s.packets = s.packets[:0]
	s.packetFree = s.packetFree[:0]
	s.requests = s.requests[:0]
	s.chainOff = s.chainOff[:0]
	s.routeFlat = s.routeFlat[:0]
	s.hopFlat = s.hopFlat[:0]
	s.arrivalStreams = s.arrivalStreams[:0]
	s.deliveryStreams = s.deliveryStreams[:0]
	s.perReq = s.perReq[:0]
	s.injectOnly = s.injectOnly[:0]
	s.sources = s.sources[:0]
	s.poisson = s.poisson[:0]
	s.streamRow = 0
	s.streamErr = nil
	if s.injectIndex != nil {
		clear(s.injectIndex)
	}
	// Fault state is truncated, not dropped: buildFaults recycles the node
	// table (and each node's instances slice) and the maps below, so
	// failure-churn sweeps reuse memory like the packet arena does.
	s.nodes = s.nodes[:0]
	if s.nodeIndex != nil {
		clear(s.nodeIndex)
	}
	if s.reqIndex != nil {
		clear(s.reqIndex)
	}
	if s.nextInst != nil {
		clear(s.nextInst)
	}
	s.resetResults()
	if err := s.build(); err != nil {
		return err
	}
	s.presizeSamples()
	sim.ready = true
	return nil
}

// Run executes the run prepared by the preceding Reset. The returned Results
// aliases the simulator's buffers and is valid until the next Reset.
func (sim *Simulator) Run() (*Results, error) {
	return sim.RunContext(context.Background())
}

// CtxCheckInterval is the number of events the loop processes between two
// context polls in RunContext: a cancelled run stops within at most this
// many events of the cancellation. The poll is amortized so heavily that it
// is invisible in the event-loop benchmarks; contexts that can never be
// cancelled (Done() == nil, e.g. context.Background()) skip it entirely.
const CtxCheckInterval = 4096

// RunContext executes the run prepared by the preceding Reset, aborting
// with ctx.Err() if ctx is cancelled mid-run (the Results is then nil and
// the simulator needs a fresh Reset). The returned Results aliases the
// simulator's buffers and is valid until the next Reset.
//
// RunContext is built on the stepping primitives' machinery (start, peel,
// dispatch), so a run that was partially advanced with ProcessNextEvent may
// be finished with RunContext — the remaining events process identically.
func (sim *Simulator) RunContext(ctx context.Context) (*Results, error) {
	if !sim.ready {
		return nil, errors.New("simulate: Run requires a successful Reset first")
	}
	sim.ready = false
	s := &sim.s
	s.start()
	if err := s.loop(ctx); err != nil {
		return nil, err
	}
	if s.streamErr != nil {
		return nil, s.streamErr
	}
	s.finalize()
	return s.results, nil
}

// HasPendingEvents reports whether at least one event remains at or before
// the horizon — whether ProcessNextEvent would do work. Stepping primitive
// for external schedulers (see internal/cluster): the idiomatic drive loop
//
//	for sim.HasPendingEvents() {
//		sim.ProcessNextEvent()
//	}
//	res, err := sim.Finalize()
//
// is event-for-event identical to Run. The first primitive called after
// Reset seeds the initial arrivals and faults.
func (sim *Simulator) HasPendingEvents() bool {
	if !sim.ready {
		return false
	}
	s := &sim.s
	s.start()
	return s.stage() && s.staged.time <= s.cfg.Horizon
}

// PeekNextEventTime returns the simulated time of the next pending event
// without processing it, or +Inf when nothing remains at or before the
// horizon. This is what a ClusterSimulator compares across datacenters to
// advance the composition in global-time order.
func (sim *Simulator) PeekNextEventTime() float64 {
	if !sim.ready {
		return math.Inf(1)
	}
	s := &sim.s
	s.start()
	if !s.stage() || s.staged.time > s.cfg.Horizon {
		return math.Inf(1)
	}
	return s.staged.time
}

// ProcessNextEvent processes exactly one event, advancing the simulated
// clock to its time; it reports false (and does nothing) when no event
// remains at or before the horizon.
func (sim *Simulator) ProcessNextEvent() bool {
	if !sim.ready {
		return false
	}
	s := &sim.s
	s.start()
	if !s.stage() || s.staged.time > s.cfg.Horizon {
		return false
	}
	e := s.staged
	s.hasStaged = false
	s.now = e.time
	s.dispatch(e)
	return true
}

// DrainUntil processes every pending event with time <= t (capped at the
// horizon) in one tight loop and returns the number of events processed.
// It is the batch counterpart of ProcessNextEvent for window-based external
// schedulers (see internal/cluster's conservative-window driver): draining a
// datacenter to a barrier costs one call — no per-event staging round-trips,
// no exported-method dispatch in the hot loop — while popping the exact same
// (time, seq) event order as a ProcessNextEvent loop would.
//
// max > 0 bounds how many events this call may process, so a driver can
// interleave cancellation checks between chunks; max <= 0 drains without
// bound. A return value equal to max means the drain may be incomplete —
// call again; any smaller value means every remaining event is later than t
// (the first of them stays staged, so a following PeekNextEventTime is O(1)).
func (sim *Simulator) DrainUntil(t float64, max int) int {
	if !sim.ready {
		return 0
	}
	s := &sim.s
	s.start()
	if h := s.cfg.Horizon; t > h {
		t = h
	}
	if max <= 0 {
		max = math.MaxInt
	}
	n := 0
	// Consume any staged (peeked) event up front so the hot loop below pops
	// the agenda directly — one call layer and one event copy fewer per
	// event than going through peel.
	if s.hasStaged {
		e := s.staged
		if e.time > t {
			return 0
		}
		s.hasStaged = false
		s.now = e.time
		s.dispatch(e)
		n++
	}
	a := &s.agenda
	for n < max {
		e, ok := a.pop()
		if !ok {
			return n
		}
		if e.time > t {
			s.staged = e
			s.hasStaged = true
			return n
		}
		s.now = e.time
		s.dispatch(e)
		n++
	}
	return n
}

// Finalize ends a stepped run, publishing its measurements: the counterpart
// of Run's implicit finalization for drive loops built on the stepping
// primitives. Like Run, the returned Results aliases the simulator's buffers
// (valid until the next Reset), and the simulator needs a fresh Reset before
// it can run again. Finalizing before the agenda is drained is legal and
// simply measures the truncated run.
func (sim *Simulator) Finalize() (*Results, error) {
	if !sim.ready {
		return nil, errors.New("simulate: Finalize requires a successful Reset first")
	}
	sim.ready = false
	s := &sim.s
	s.start() // a never-stepped run still admits its seeded arrivals
	if s.streamErr != nil {
		return nil, s.streamErr
	}
	s.finalize()
	return s.results, nil
}

// Inject admits one external packet of request id arriving at time at. The
// packet's measured latency runs from birth, letting a caller account for
// upstream delay already incurred (a ClusterSimulator charges the WAN entry
// hop this way: arrival at t+WAN with birth t); use birth == at when there
// is none. Inject reports false with a nil error when at is past the
// horizon — the packet is simply not admitted, mirroring how seeded traffic
// past the horizon is cut off. The injection must not be in the simulator's
// past (at >= the last processed event time), and id must name a scheduled
// request. Events already peeked via PeekNextEventTime remain correctly
// ordered: an injected arrival earlier than the staged event is re-queued
// ahead of it.
func (sim *Simulator) Inject(at, birth float64, id model.RequestID) (bool, error) {
	if !sim.ready {
		return false, errors.New("simulate: Inject requires a successful Reset first")
	}
	s := &sim.s
	s.start()
	ri, ok := s.requestIndexOf(id)
	if !ok {
		return false, fmt.Errorf("simulate: Inject: request %q is not scheduled in this simulation", id)
	}
	if !(at >= s.now) || math.IsInf(at, 1) {
		return false, fmt.Errorf("simulate: Inject at %v outside [now=%v, +Inf)", at, s.now)
	}
	if !(birth <= at) || math.IsNaN(birth) {
		return false, fmt.Errorf("simulate: Inject birth %v must not exceed arrival time %v", birth, at)
	}
	if at >= s.cfg.Horizon {
		return false, nil
	}
	if s.shedFrac > 0 && s.shedNext() {
		// Admission shed: the injection is offered but turned away.
		s.results.Generated++
		s.results.Shed++
		return true, nil
	}
	// If a peeked event is staged and the injection precedes it, the staged
	// event goes back to the agenda (original seq intact) so the next pop
	// returns the earlier of the two.
	if s.hasStaged && at < s.staged.time {
		s.agenda.unpop(s.staged)
		s.hasStaged = false
	}
	s.results.Generated++
	s.live++
	pid := s.newPacket(ri, birth)
	s.agenda.push(event{
		time: at,
		kind: evArrival,
		pkt:  pid,
		inst: s.routeFlat[s.chainOff[ri]],
	})
	return true, nil
}

// CanServe reports whether id is scheduled in this simulation — whether
// Inject would accept it. Routing policies use it to skip datacenters that
// never provisioned a request.
func (sim *Simulator) CanServe(id model.RequestID) bool {
	if !sim.ready {
		return false
	}
	_, ok := sim.s.requestIndexOf(id)
	return ok
}

// PendingPackets returns the number of admitted packets currently in flight
// (not yet delivered or permanently lost) — the live-load signal the
// cluster's least-loaded routing policy observes.
func (sim *Simulator) PendingPackets() int {
	return sim.s.live
}

// PendingEvents returns the number of events currently pending (agenda plus
// any staged peeked event), seeding the run first if no primitive has. It is
// the observable behind the streaming-memory guarantee: immediately after
// Reset, a flat-Poisson run holds one evSource per live source and a
// streamed-trace run holds exactly one evStream — independent of how many
// arrivals the trace or the sources will eventually deliver — whereas a
// materialized Trace run holds every admitted trace arrival.
func (sim *Simulator) PendingEvents() int {
	if !sim.ready {
		return 0
	}
	s := &sim.s
	s.start()
	n := s.agenda.size()
	if s.hasStaged {
		n++
	}
	return n
}

// requestIndexOf resolves a request ID to its index, building the lookup
// lazily on first use (pure Run/Reset cycles never pay for it).
func (s *simulation) requestIndexOf(id model.RequestID) (int32, bool) {
	if s.injectIndex == nil {
		s.injectIndex = make(map[model.RequestID]int32, len(s.requests))
	}
	if len(s.injectIndex) != len(s.requests) {
		clear(s.injectIndex)
		for i := range s.requests {
			s.injectIndex[s.requests[i].ID] = int32(i)
		}
	}
	ri, ok := s.injectIndex[id]
	return ri, ok
}

// start seeds the initial arrivals and faults exactly once per Reset; every
// entry point into the event loop (Run, the stepping primitives, Inject)
// triggers it lazily.
func (s *simulation) start() {
	if s.started {
		return
	}
	s.started = true
	s.seedArrivals()
	s.seedFaults()
	if s.cfg.Control != nil && s.cfg.ControlInterval < s.cfg.Horizon {
		s.agenda.push(event{time: s.cfg.ControlInterval, kind: evControlTick})
	}
}

// stage ensures the next pending event (in (time, seq) order) is staged,
// reporting false when the agenda is drained. Staging is transparent to
// event order: handlers only push events during dispatch, when nothing is
// staged, except Inject — which explicitly re-queues a staged event it
// undercuts.
func (s *simulation) stage() bool {
	if s.hasStaged {
		return true
	}
	e, ok := s.agenda.pop()
	if !ok {
		return false
	}
	s.staged = e
	s.hasStaged = true
	return true
}

// peel returns the next event in (time, seq) order, consuming the staged
// event when one is present.
func (s *simulation) peel() (event, bool) {
	if s.hasStaged {
		s.hasStaged = false
		return s.staged, true
	}
	return s.agenda.pop()
}

// resetResults clears the reused Results, retaining its maps and the
// latency-sample backing array.
func (s *simulation) resetResults() {
	if s.results == nil {
		s.results = &Results{
			Utilization:            make(map[InstanceKey]float64),
			MeanJobs:               make(map[InstanceKey]float64),
			DroppedByInstance:      make(map[InstanceKey]int),
			FailureDropsByInstance: make(map[InstanceKey]int),
			Downtime:               make(map[model.NodeID]float64),
			PerRequest:             make(map[model.RequestID]*stats.Summary),
			PerInstance:            make(map[InstanceKey]*stats.Summary),
		}
	}
	r := s.results
	clear(r.Utilization)
	clear(r.MeanJobs)
	clear(r.DroppedByInstance)
	clear(r.FailureDropsByInstance)
	clear(r.Downtime)
	clear(r.PerRequest)
	clear(r.PerInstance)
	*r = Results{
		Horizon:                s.cfg.Horizon,
		Warmup:                 s.cfg.Warmup,
		Agenda:                 s.agenda.kind,
		LatencySamples:         r.LatencySamples[:0],
		Utilization:            r.Utilization,
		MeanJobs:               r.MeanJobs,
		DroppedByInstance:      r.DroppedByInstance,
		FailureDropsByInstance: r.FailureDropsByInstance,
		Downtime:               r.Downtime,
		PerRequest:             r.PerRequest,
		PerInstance:            r.PerInstance,
	}
}

// addInstance appends a fresh instance to the table, recycling the ring
// buffer left in the slot by a previous run when one exists.
func (s *simulation) addInstance(key InstanceKey, mu float64, stream *rng.Stream) int32 {
	n := len(s.instances)
	if n < cap(s.instances) {
		s.instances = s.instances[:n+1]
		q := s.instances[n].q
		s.instances[n] = instance{key: key, mu: mu, stream: stream, busy: -1, node: -1, q: q}
	} else {
		s.instances = append(s.instances, instance{key: key, mu: mu, stream: stream, busy: -1, node: -1})
	}
	return int32(n)
}

// build resolves each request's chain to concrete instances and link hops.
func (s *simulation) build() error {
	p := s.cfg.Problem
	s.instances = s.instances[:0]
	if s.instIndex == nil {
		s.instIndex = make(map[InstanceKey]int32)
	} else {
		clear(s.instIndex)
	}
	for _, r := range p.Requests {
		// Skip requests the admission controller removed from the schedule.
		if len(s.cfg.Schedule.InstanceOf[r.ID]) == 0 {
			continue
		}
		s.requests = append(s.requests, r)
		s.injectOnly = append(s.injectOnly, false)
	}
	for _, id := range s.cfg.InjectOnly {
		for i := range s.requests {
			if s.requests[i].ID == id {
				s.injectOnly[i] = true
			}
		}
	}

	for _, r := range s.requests {
		s.arrivalStreams = append(s.arrivalStreams, s.namedStream("arrivals/", string(r.ID)))
		s.deliveryStreams = append(s.deliveryStreams, s.namedStream("delivery/", string(r.ID)))
		s.chainOff = append(s.chainOff, int32(len(s.routeFlat)))
		s.perReq = append(s.perReq, stats.Summary{})
		var prevNode model.NodeID
		for stage, fid := range r.Chain {
			k, ok := s.cfg.Schedule.Instance(r.ID, fid)
			if !ok {
				return fmt.Errorf("simulate: request %s unassigned at vnf %s", r.ID, fid)
			}
			f, _ := p.VNF(fid)
			key := InstanceKey{VNF: fid, Instance: k}
			iid, exists := s.instIndex[key]
			if !exists {
				iid = s.addInstance(key, f.ServiceRate, s.serviceStream(fid, k))
				s.instIndex[key] = iid
			}
			hop := 0.0
			if s.cfg.Placement != nil {
				node, _ := s.cfg.Placement.Node(fid)
				if stage > 0 && node != prevNode {
					hop = s.cfg.LinkDelay
				}
				prevNode = node
			}
			s.routeFlat = append(s.routeFlat, iid)
			s.hopFlat = append(s.hopFlat, hop)
		}
	}
	// Arrival sources: the caller's override where one exists, otherwise a
	// poissonSource over the request's arrival stream. The poisson arena is
	// filled completely before interface pointers are taken — appends may
	// move the backing array. Trace modes never consult sources, but wiring
	// them unconditionally keeps build branch-free.
	for i := range s.requests {
		var src ArrivalSource
		if len(s.cfg.Sources) > 0 {
			src = s.cfg.Sources[s.requests[i].ID]
		}
		s.sources = append(s.sources, src)
		s.poisson = append(s.poisson, poissonSource{stream: s.arrivalStreams[i], rate: s.requests[i].Rate})
	}
	for i := range s.sources {
		if s.sources[i] == nil {
			s.sources[i] = &s.poisson[i]
		}
	}
	// The node table serves both fault injection and the control plane
	// (migration and scaling act per node).
	if s.cfg.FaultPlan != nil || s.cfg.Control != nil {
		if err := s.buildFaults(); err != nil {
			return err
		}
	}
	return nil
}

// presizeSamples reserves LatencySamples capacity for the expected number of
// post-warmup deliveries, so the hot loop appends without reallocating. The
// estimate is the aggregate Poisson rate over the measurement window (or the
// trace length), capped to bound the up-front reservation on huge horizons.
func (s *simulation) presizeSamples() {
	const presizeCap = 1 << 21 // 2 Mi samples = 16 MiB, then append growth takes over
	expected := 0
	switch {
	case s.cfg.Trace != nil:
		expected = len(s.cfg.Trace.Arrivals)
	case s.cfg.ExpectedArrivals > 0:
		expected = s.cfg.ExpectedArrivals
	default:
		var totalRate float64
		for _, r := range s.requests {
			totalRate += r.Rate
		}
		expected = int(totalRate * (s.cfg.Horizon - s.cfg.Warmup))
	}
	if expected > presizeCap {
		expected = presizeCap
	}
	if expected > cap(s.results.LatencySamples) {
		s.results.LatencySamples = make([]float64, 0, expected)
	}
}

// streamSeqBase is where the regular sequence counter starts on a streamed-
// trace run. Materialized replay pushes every trace arrival at seed time, so
// trace arrivals occupy the lowest sequence numbers and win every time tie
// against in-run events while ordering among themselves by row position;
// streamed replay reproduces that exact pop order by stamping admitted rows
// with their row index from the band [1, streamSeqBase] and starting the
// in-run counter above it. 2^48 rows dwarfs any replayable trace, and the
// in-run counter keeps 2^64−2^48 values of headroom. Sequence values are
// unobservable — only pop order matters — so raising the base is invisible
// to every measurement.
const streamSeqBase = 1 << 48

// seedArrivals schedules the first external arrival of every request, pushes
// the whole materialized trace, or stages the first streamed-trace row.
func (s *simulation) seedArrivals() {
	if s.cfg.TraceStream != nil {
		s.agenda.startSeqAt(streamSeqBase)
		s.scheduleNextStream()
		return
	}
	if s.cfg.Trace != nil {
		index := make(map[model.RequestID]int32, len(s.requests))
		for i, r := range s.requests {
			index[r.ID] = int32(i)
		}
		for _, a := range s.cfg.Trace.Arrivals {
			i, ok := index[a.Request]
			if !ok || a.Time >= s.cfg.Horizon || s.injectOnly[i] {
				continue
			}
			s.results.Generated++
			s.live++
			pid := s.newPacket(i, a.Time)
			s.agenda.push(event{
				time: a.Time,
				kind: evArrival,
				pkt:  pid,
				inst: s.routeFlat[s.chainOff[i]],
			})
		}
		return
	}
	for i := range s.requests {
		if s.injectOnly[i] {
			continue
		}
		s.scheduleNextSource(int32(i), 0)
	}
}

// scheduleNextSource pulls request i's next external arrival after t from
// its arrival source and stages it as the request's single pending evSource.
// A source reporting ok=false retires the flow; a time at or past the
// horizon ends it. Defensively, a non-monotone or NaN time from a custom
// source is clamped to the pull time — events must never be scheduled in the
// simulator's past.
func (s *simulation) scheduleNextSource(i int32, t float64) {
	next, ok := s.sources[i].Next(t)
	if !ok {
		return
	}
	if !(next >= t) {
		next = t
	}
	if next >= s.cfg.Horizon {
		return
	}
	s.agenda.push(event{time: next, kind: evSource, reqIndex: i})
}

// scheduleNextStream pulls trace rows from the streamed cursor until one is
// admissible — a scheduled, non-inject-only request arriving before the
// horizon — and stages it as a stamped evStream event carrying its row-band
// sequence number, so exactly one trace arrival is ever pending. The first
// row at or past the horizon ends the replay (rows are time-ordered, so
// everything after it is cut off too, exactly like materialized seeding
// skipping those rows). A malformed or out-of-order row latches streamErr,
// stops the stream, and fails the run once the agenda drains.
func (s *simulation) scheduleNextStream() {
	ts := s.cfg.TraceStream
	for {
		t, id, ok := ts.NextArrival()
		if !ok {
			if err := ts.Err(); err != nil && s.streamErr == nil {
				s.streamErr = fmt.Errorf("simulate: trace stream: %w", err)
			}
			return
		}
		if !(t >= s.now) {
			s.streamErr = fmt.Errorf("simulate: trace stream: arrival at %v out of order (clock at %v)", t, s.now)
			return
		}
		if t >= s.cfg.Horizon {
			return
		}
		i, known := s.requestIndexOf(id)
		if !known || s.injectOnly[i] {
			continue
		}
		s.streamRow++
		s.agenda.pushStamped(event{time: t, seq: s.streamRow, kind: evStream, reqIndex: i})
		return
	}
}

// loop drains the agenda until the horizon, or until ctx fires (checked
// every CtxCheckInterval events; a non-cancellable ctx costs one perfectly
// predicted branch per event).
func (s *simulation) loop(ctx context.Context) error {
	horizon := s.cfg.Horizon
	done := ctx.Done()
	check := CtxCheckInterval
	for {
		if done != nil {
			check--
			if check <= 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
				check = CtxCheckInterval
			}
		}
		e, ok := s.peel()
		if !ok || e.time > horizon {
			break
		}
		s.now = e.time
		s.dispatch(e)
	}
	return nil
}

// dispatch runs one event's handler; s.now has already been advanced to the
// event's time. This is the single dispatch point shared by loop and
// ProcessNextEvent.
func (s *simulation) dispatch(e event) {
	// evService leads: with due-now arrivals dispatched directly, service
	// completions are the bulk of what still flows through the agenda.
	switch e.kind {
	case evService:
		s.complete(e.inst, e.reqIndex)
	case evArrival:
		s.arrive(e.pkt, e.inst)
	case evNodeDown:
		s.nodeDown(e.inst, e.reqIndex == 1)
	case evNodeUp:
		s.nodeUp(e.inst, e.reqIndex == 1)
	case evInstanceReady:
		s.instanceReady(e.inst)
	case evControlTick:
		s.controlTick()
	case evPreempt:
		s.preemptFire()
	case evPreemptNotice:
		s.preemptNotice()
	case evStream:
		// A streamed trace arrival: admit the packet exactly as a
		// materialized replay dispatches its seeded evArrival — same time,
		// same (row-band) sequence position, no admission shed (seeded trace
		// arrivals never consult the shed either) — then pull the next row.
		// Packet arena indices differ from the materialized run (packets are
		// born lazily and recycled instead of all at seed time), but indices
		// influence no ordering or measurement, which is what keeps the two
		// replays fingerprint-identical while this one holds O(live) packets.
		i := e.reqIndex
		s.results.Generated++
		s.live++
		pid := s.newPacket(i, s.now)
		s.arrive(pid, s.routeFlat[s.chainOff[i]])
		s.scheduleNextStream()
	case evSource:
		i := e.reqIndex
		s.results.Generated++
		if s.shedFrac > 0 && s.shedNext() {
			// Admission shed: offered but never admitted. The next arrival
			// is still drawn, so the source stream is unperturbed.
			s.results.Shed++
			s.scheduleNextSource(i, s.now)
			return
		}
		s.live++
		pid := s.newPacket(i, s.now)
		first := s.routeFlat[s.chainOff[i]]
		// A fresh packet enters its first stage at the current time; with
		// the due-now FIFO drained that arrival is the next pop, so call
		// the handler directly and skip the agenda round-trip.
		if s.agenda.fifoEmpty() {
			s.arrive(pid, first)
		} else {
			s.agenda.push(event{time: s.now, kind: evArrival, pkt: pid, inst: first})
		}
		s.scheduleNextSource(i, s.now)
	}
}

// arrive delivers a packet to an instance's queue or service position. A
// packet reaching an instance whose node is down follows the failure policy;
// one reaching a still-booting replacement waits in its buffer.
func (s *simulation) arrive(pid, iid int32) {
	inst := &s.instances[iid]
	if inst.down {
		s.failPacket(pid, inst)
		return
	}
	s.packets[pid].visitStart = s.now
	if inst.busy < 0 && s.now >= inst.bootUntil {
		inst.notePopulation(s.now, s.cfg.Warmup, s.cfg.Horizon, +1)
		s.startService(inst, iid, pid)
		return
	}
	if s.cfg.BufferSize > 0 && inst.qlen >= s.cfg.BufferSize {
		s.drop(pid, inst)
		return
	}
	inst.notePopulation(s.now, s.cfg.Warmup, s.cfg.Horizon, +1)
	inst.enqueue(pid)
}

// drop handles a buffer-full arrival according to the configured policy.
func (s *simulation) drop(pid int32, inst *instance) {
	s.results.Dropped++
	inst.dropped++
	if s.cfg.DropPolicy == DropRetransmit {
		// NACK loss feedback: the source re-injects the packet after the
		// feedback round-trip, keeping its original birth time so the
		// measured latency includes every retry pass.
		s.results.DropRetransmits++
		p := &s.packets[pid]
		p.stage = 0
		s.agenda.push(event{
			time: s.now + s.cfg.RetransmitDelay,
			kind: evArrival,
			pkt:  pid,
			inst: s.routeFlat[s.chainOff[p.reqIndex]],
		})
		return
	}
	s.live--
	s.freePacket(pid)
}

// startService begins serving the packet at inst and schedules completion.
func (s *simulation) startService(inst *instance, iid, pid int32) {
	inst.busy = pid
	inst.serviceStart = s.now
	d := s.cfg.ServiceDist.sample(inst.stream, inst.mu)
	s.agenda.push(event{time: s.now + d, kind: evService, inst: iid, reqIndex: inst.epoch})
}

// complete finishes the in-service packet of inst and advances it. epoch
// guards against stale completions: when an instance fails mid-service its
// epoch is bumped, so the already-scheduled evService for the failed packet
// arrives with an outdated epoch and is ignored (the agenda has no removal).
// Without faults every epoch is 0, preserving historical event streams.
func (s *simulation) complete(iid int32, epoch int32) {
	inst := &s.instances[iid]
	if inst.epoch != epoch || inst.busy < 0 {
		return
	}
	pid := inst.busy
	inst.busyTime += overlap(inst.serviceStart, s.now, s.cfg.Warmup, s.cfg.Horizon)
	if s.ctrlOn {
		inst.ctrlBusy += s.now - inst.serviceStart
	}
	inst.notePopulation(s.now, s.cfg.Warmup, s.cfg.Horizon, -1)
	if s.packets[pid].visitStart >= s.cfg.Warmup {
		inst.visits.Add(s.now - s.packets[pid].visitStart)
	}
	inst.busy = -1
	if inst.qlen > 0 {
		s.startService(inst, iid, inst.dequeue())
	}
	s.advance(pid)
}

// advance moves a finished packet to its next stage, delivery check, or
// retransmission.
func (s *simulation) advance(pid int32) {
	p := &s.packets[pid]
	ri := p.reqIndex
	r := &s.requests[ri]
	if int(p.stage)+1 < len(r.Chain) {
		p.stage++
		off := s.chainOff[ri] + p.stage
		// Zero-latency hop with a drained due-now FIFO: the arrival is the
		// next pop, so dispatch it directly instead of via the agenda.
		if hop := s.hopFlat[off]; hop != 0 || !s.agenda.fifoEmpty() {
			s.agenda.push(event{
				time: s.now + hop,
				kind: evArrival,
				pkt:  pid,
				inst: s.routeFlat[off],
			})
			return
		}
		s.arrive(pid, s.routeFlat[off])
		return
	}
	// End of chain: delivery check.
	if s.deliveryStreams[ri].Bernoulli(r.DeliveryProb) {
		s.results.Delivered++
		s.live--
		if p.birth >= s.cfg.Warmup {
			lat := s.now - p.birth
			s.results.Latency.Add(lat)
			s.results.LatencySamples = append(s.results.LatencySamples, lat)
			s.perReq[ri].Add(lat)
		}
		s.freePacket(pid)
		return
	}
	// NACK: retransmit from the source immediately (paper Fig. 3).
	s.results.Retransmissions++
	p.stage = 0
	if s.agenda.fifoEmpty() {
		s.arrive(pid, s.routeFlat[s.chainOff[ri]])
		return
	}
	s.agenda.push(event{time: s.now, kind: evArrival, pkt: pid, inst: s.routeFlat[s.chainOff[ri]]})
}

// finalize folds in-flight busy time, normalizes utilizations, and publishes
// the per-instance and per-request aggregates kept out of the hot loop.
func (s *simulation) finalize() {
	// Re-read the agenda kind: an adaptive AgendaAuto run may have migrated
	// heap→ladder mid-run (Results.Agenda reports the final backend).
	s.results.Agenda = s.agenda.kind
	s.results.InFlight = s.live
	span := s.cfg.Horizon - s.cfg.Warmup
	for i := range s.instances {
		inst := &s.instances[i]
		busy := inst.busyTime
		if inst.busy >= 0 {
			busy += overlap(inst.serviceStart, s.cfg.Horizon, s.cfg.Warmup, s.cfg.Horizon)
		}
		s.results.Utilization[inst.key] = busy / span
		inst.notePopulation(s.cfg.Horizon, s.cfg.Warmup, s.cfg.Horizon, 0)
		s.results.MeanJobs[inst.key] = inst.popArea / span
		if inst.dropped > 0 {
			s.results.DroppedByInstance[inst.key] = inst.dropped
		}
		if inst.failureDrops > 0 {
			s.results.FailureDropsByInstance[inst.key] = inst.failureDrops
		}
		if inst.visits.N() > 0 {
			sum := new(stats.Summary)
			*sum = inst.visits
			s.results.PerInstance[inst.key] = sum
		}
	}
	for i := range s.requests {
		sum := new(stats.Summary)
		*sum = s.perReq[i]
		s.results.PerRequest[s.requests[i].ID] = sum
	}
	if len(s.nodes) > 0 {
		s.finalizeFaults()
	}
	s.results.Availability = 1
	if s.results.Generated > 0 {
		s.results.Availability = float64(s.results.Delivered) / float64(s.results.Generated)
	}
}

// overlap returns the length of [a,b] ∩ [lo,hi].
func overlap(a, b, lo, hi float64) float64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}
