package simulate

import (
	"errors"
	"fmt"
	"math"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/stats"
	"nfvchain/internal/workload"
)

// InstanceKey identifies one service instance of a VNF.
type InstanceKey struct {
	VNF      model.VNFID
	Instance int
}

// Config parameterizes one simulation run.
type Config struct {
	Problem  *model.Problem
	Schedule *model.Schedule
	// Placement is optional; when present, consecutive chain stages hosted
	// on different nodes incur LinkDelay (the paper's per-hop constant L in
	// Eq. 16). When nil, all stages are considered co-located.
	Placement *model.Placement

	Horizon float64 // simulated seconds; must be positive
	Warmup  float64 // samples from packets arriving before Warmup are discarded

	// LinkDelay is the constant inter-node latency L. Ignored without a
	// placement.
	LinkDelay float64

	// BufferSize bounds each instance's waiting room (excluding the packet
	// in service); 0 means unbounded. Full buffers drop arriving packets.
	BufferSize int

	// DropPolicy selects what happens to a packet that meets a full buffer.
	// The zero value (DropDiscard) keeps the historical semantics: the drop
	// is counted and the packet vanishes. DropRetransmit models the paper's
	// NACK loss feedback (Fig. 3) for mid-chain losses too: the source
	// learns of the drop and re-injects the packet after RetransmitDelay.
	DropPolicy DropPolicy

	// RetransmitDelay is the NACK round-trip before a dropped packet is
	// re-injected at its source. Required (positive) with DropRetransmit —
	// an instantaneous retry against a still-full buffer would livelock the
	// event loop. Ignored under DropDiscard.
	RetransmitDelay float64

	// Trace optionally replays recorded external arrivals instead of
	// generating Poisson arrivals online.
	Trace *workload.Trace

	// ServiceDist selects the per-packet service-time distribution; the
	// zero value means ServiceExponential (the paper's model assumption).
	// Non-exponential choices keep each instance's mean rate µ but change
	// its variability, quantifying how far the open-Jackson analytics can
	// be trusted when the M/M/1 assumption is violated.
	ServiceDist ServiceDist

	Seed uint64
}

// DropPolicy selects the fate of packets arriving at a full buffer.
type DropPolicy int

// Supported drop policies.
const (
	// DropDiscard counts the drop and discards the packet silently — the
	// source never learns of the loss. This is the historical default,
	// kept as the zero value for reproducibility of existing experiments.
	DropDiscard DropPolicy = iota
	// DropRetransmit counts the drop and re-injects the packet from its
	// source after Config.RetransmitDelay, mirroring the delivery-check
	// NACK path: no packet is ever silently lost (loss-feedback model of
	// the paper's Eq. 7 / Fig. 3).
	DropRetransmit
)

// ServiceDist selects the service-time distribution of every instance.
type ServiceDist int

// Supported service-time distributions (mean always 1/µ).
const (
	// ServiceExponential: CV = 1; the paper's M/M/1 assumption.
	ServiceExponential ServiceDist = iota
	// ServiceDeterministic: CV = 0; an M/D/1 system, the best case for
	// queueing (half the M/M/1 waiting time by Pollaczek–Khinchine).
	ServiceDeterministic
	// ServiceLogNormal: CV ≈ 1.31 (σ = 1); heavier-than-exponential tails,
	// the regime where M/M/1 analytics underestimate latency.
	ServiceLogNormal
)

// CV returns the distribution's coefficient of variation.
func (d ServiceDist) CV() float64 {
	switch d {
	case ServiceDeterministic:
		return 0
	case ServiceLogNormal:
		return math.Sqrt(math.E - 1)
	default:
		return 1
	}
}

// sample draws one service time with mean 1/mu.
func (d ServiceDist) sample(s *rng.Stream, mu float64) float64 {
	switch d {
	case ServiceDeterministic:
		return 1 / mu
	case ServiceLogNormal:
		// E[lognormal(µ̂,1)] = exp(µ̂+1/2) = 1/mu → µ̂ = −ln(mu) − 1/2.
		return s.LogNormal(-math.Log(mu)-0.5, 1)
	default:
		return s.Exp(mu)
	}
}

// Results aggregates one run's measurements.
type Results struct {
	Horizon, Warmup float64

	// Generated counts external packet arrivals admitted before the
	// horizon (retransmissions are not new packets).
	Generated int
	// Delivered counts packets that completed their chain and passed the
	// delivery check; Latency summarizes their end-to-end sojourn
	// (including retransmission passes and link hops).
	Delivered int
	Latency   stats.Summary
	// LatencySamples holds every measured end-to-end latency (post-warmup),
	// enabling percentile tail analysis.
	LatencySamples []float64

	// Retransmissions counts failed delivery checks (each triggers a new
	// pass from the source).
	Retransmissions int
	// Dropped counts buffer-full drop events. Under DropDiscard each event
	// permanently loses one packet; under DropRetransmit the packet is
	// re-injected at its source and only the extra pass is lost.
	Dropped int
	// DroppedByInstance breaks Dropped down by the instance whose full
	// buffer caused it, locating the bottleneck stage.
	DroppedByInstance map[InstanceKey]int
	// DropRetransmits counts drop-triggered source re-injections (only
	// non-zero under DropRetransmit; disjoint from Retransmissions, which
	// counts delivery-check NACKs).
	DropRetransmits int
	// InFlight counts packets admitted before the horizon that had neither
	// completed delivery nor been permanently dropped when the run ended,
	// so Generated = Delivered + InFlight + discarded drops always holds.
	InFlight int

	// Utilization is the measured busy fraction of each instance over
	// [Warmup, Horizon].
	Utilization map[InstanceKey]float64

	// MeanJobs is the time-averaged number of packets in each instance's
	// system (queue + service) over [Warmup, Horizon] — the empirical
	// counterpart of the paper's Eq. 10, E[N] = ρ/(1−ρ).
	MeanJobs map[InstanceKey]float64

	// PerRequest summarizes delivered latency per request.
	PerRequest map[model.RequestID]*stats.Summary

	// PerInstance summarizes the per-visit sojourn (queueing + service) at
	// each instance — the empirical W(f,k) of the paper's Eq. 11.
	PerInstance map[InstanceKey]*stats.Summary
}

// packet is one in-flight packet.
type packet struct {
	reqIndex   int
	stage      int     // index into the request's chain
	birth      float64 // first external arrival time (retransmissions keep it)
	visitStart float64 // arrival time at the current instance
}

// instance is the runtime state of one service instance.
type instance struct {
	key InstanceKey
	mu  float64
	// Waiting room: a power-of-two ring buffer (q, qhead, qlen) instead of
	// a slice dequeued by copy-shifting, making both enqueue and dequeue
	// O(1) without per-packet allocation.
	q     []*packet
	qhead int
	qlen  int
	// busy is non-nil while serving.
	busy         *packet
	serviceStart float64
	busyTime     float64 // accumulated within [warmup, horizon]
	stream       *rng.Stream

	// Time-averaged population bookkeeping (∫N dt over [warmup, horizon]).
	population int
	lastChange float64
	popArea    float64
}

// notePopulation folds the time since the last change into the ∫N dt area
// and applies the population delta.
func (inst *instance) notePopulation(now, warmup, horizon float64, delta int) {
	inst.popArea += float64(inst.population) * overlap(inst.lastChange, now, warmup, horizon)
	inst.lastChange = now
	inst.population += delta
}

// enqueue appends p to the instance's ring buffer, doubling it when full
// (capacities stay powers of two so the index masks below are valid).
func (inst *instance) enqueue(p *packet) {
	if inst.qlen == len(inst.q) {
		grown := make([]*packet, max(2*len(inst.q), 8))
		for i := 0; i < inst.qlen; i++ {
			grown[i] = inst.q[(inst.qhead+i)&(len(inst.q)-1)]
		}
		inst.q = grown
		inst.qhead = 0
	}
	inst.q[(inst.qhead+inst.qlen)&(len(inst.q)-1)] = p
	inst.qlen++
}

// dequeue pops the head of the ring buffer; the caller checks qlen > 0.
func (inst *instance) dequeue() *packet {
	p := inst.q[inst.qhead]
	inst.q[inst.qhead] = nil
	inst.qhead = (inst.qhead + 1) & (len(inst.q) - 1)
	inst.qlen--
	return p
}

// simulation is the run state.
type simulation struct {
	cfg     Config
	agenda  *agenda
	now     float64
	results *Results

	requests  []model.Request
	instances map[InstanceKey]*instance
	// route[i][s] is the instance serving stage s of request i.
	route [][]*instance
	// hop[i][s] is the link delay entering stage s of request i (0 for s=0
	// or co-located stages).
	hop [][]float64

	arrivalStreams  []*rng.Stream
	deliveryStreams []*rng.Stream

	// live counts admitted packets not yet delivered or permanently
	// dropped; finalize publishes it as Results.InFlight.
	live int

	// Free lists recycle event and packet objects across the run. The
	// simulation is single-goroutine, so plain slices beat sync.Pool: no
	// synchronization, and recycling order is deterministic.
	eventFree  []*event
	packetFree []*packet
}

// newEvent returns a recycled (or fresh) event populated from e.
func (s *simulation) newEvent(e event) *event {
	if n := len(s.eventFree); n > 0 {
		out := s.eventFree[n-1]
		s.eventFree = s.eventFree[:n-1]
		*out = e
		return out
	}
	out := new(event)
	*out = e
	return out
}

// freeEvent recycles e once the loop has dispatched it.
func (s *simulation) freeEvent(e *event) {
	e.pkt, e.inst = nil, nil
	s.eventFree = append(s.eventFree, e)
}

// newPacket returns a recycled (or fresh) packet for request i born at t.
func (s *simulation) newPacket(i int, t float64) *packet {
	if n := len(s.packetFree); n > 0 {
		p := s.packetFree[n-1]
		s.packetFree = s.packetFree[:n-1]
		*p = packet{reqIndex: i, birth: t}
		return p
	}
	return &packet{reqIndex: i, birth: t}
}

// freePacket recycles p after delivery or a discarding drop.
func (s *simulation) freePacket(p *packet) {
	s.packetFree = append(s.packetFree, p)
}

// Run executes the simulation and returns its measurements.
func Run(cfg Config) (*Results, error) {
	if cfg.Problem == nil || cfg.Schedule == nil {
		return nil, errors.New("simulate: Problem and Schedule are required")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("simulate: horizon %v must be positive", cfg.Horizon)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return nil, fmt.Errorf("simulate: warmup %v outside [0, horizon)", cfg.Warmup)
	}
	if cfg.LinkDelay < 0 {
		return nil, fmt.Errorf("simulate: negative link delay %v", cfg.LinkDelay)
	}
	if cfg.BufferSize < 0 {
		return nil, fmt.Errorf("simulate: negative buffer size %d", cfg.BufferSize)
	}
	switch cfg.DropPolicy {
	case DropDiscard:
	case DropRetransmit:
		if cfg.RetransmitDelay <= 0 {
			return nil, fmt.Errorf("simulate: DropRetransmit requires a positive RetransmitDelay, got %v", cfg.RetransmitDelay)
		}
	default:
		return nil, fmt.Errorf("simulate: unknown drop policy %d", cfg.DropPolicy)
	}
	switch cfg.ServiceDist {
	case ServiceExponential, ServiceDeterministic, ServiceLogNormal:
	default:
		return nil, fmt.Errorf("simulate: unknown service distribution %d", cfg.ServiceDist)
	}
	// Partial validation: requests absent from the schedule were rejected by
	// admission control and simply generate no traffic.
	if err := cfg.Schedule.ValidatePartial(cfg.Problem); err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	if cfg.Placement != nil {
		if err := cfg.Placement.Validate(cfg.Problem); err != nil {
			return nil, fmt.Errorf("simulate: %w", err)
		}
	}

	s := &simulation{
		cfg:    cfg,
		agenda: newAgenda(),
		results: &Results{
			Horizon:           cfg.Horizon,
			Warmup:            cfg.Warmup,
			Utilization:       make(map[InstanceKey]float64),
			MeanJobs:          make(map[InstanceKey]float64),
			DroppedByInstance: make(map[InstanceKey]int),
			PerRequest:        make(map[model.RequestID]*stats.Summary),
			PerInstance:       make(map[InstanceKey]*stats.Summary),
		},
		instances: make(map[InstanceKey]*instance),
	}
	if err := s.build(); err != nil {
		return nil, err
	}
	s.presizeSamples()
	s.seedArrivals()
	s.loop()
	s.finalize()
	return s.results, nil
}

// build resolves each request's chain to concrete instances and link hops.
func (s *simulation) build() error {
	p := s.cfg.Problem
	for _, r := range p.Requests {
		// Skip requests the admission controller removed from the schedule.
		if len(s.cfg.Schedule.InstanceOf[r.ID]) == 0 {
			continue
		}
		s.requests = append(s.requests, r)
	}
	s.route = make([][]*instance, len(s.requests))
	s.hop = make([][]float64, len(s.requests))
	s.arrivalStreams = make([]*rng.Stream, len(s.requests))
	s.deliveryStreams = make([]*rng.Stream, len(s.requests))

	for i, r := range s.requests {
		s.arrivalStreams[i] = rng.Derive(s.cfg.Seed, "arrivals/"+string(r.ID))
		s.deliveryStreams[i] = rng.Derive(s.cfg.Seed, "delivery/"+string(r.ID))
		s.route[i] = make([]*instance, len(r.Chain))
		s.hop[i] = make([]float64, len(r.Chain))
		var prevNode model.NodeID
		for stage, fid := range r.Chain {
			k, ok := s.cfg.Schedule.Instance(r.ID, fid)
			if !ok {
				return fmt.Errorf("simulate: request %s unassigned at vnf %s", r.ID, fid)
			}
			f, _ := p.VNF(fid)
			key := InstanceKey{VNF: fid, Instance: k}
			inst, exists := s.instances[key]
			if !exists {
				inst = &instance{
					key:    key,
					mu:     f.ServiceRate,
					stream: rng.Derive(s.cfg.Seed, fmt.Sprintf("service/%s/%d", fid, k)),
				}
				s.instances[key] = inst
			}
			s.route[i][stage] = inst
			if s.cfg.Placement != nil {
				node, _ := s.cfg.Placement.Node(fid)
				if stage > 0 && node != prevNode {
					s.hop[i][stage] = s.cfg.LinkDelay
				}
				prevNode = node
			}
		}
		s.results.PerRequest[r.ID] = &stats.Summary{}
	}
	return nil
}

// presizeSamples reserves LatencySamples capacity for the expected number of
// post-warmup deliveries, so the hot loop appends without reallocating. The
// estimate is the aggregate Poisson rate over the measurement window (or the
// trace length), capped to bound the up-front reservation on huge horizons.
func (s *simulation) presizeSamples() {
	const presizeCap = 1 << 21 // 2 Mi samples = 16 MiB, then append growth takes over
	expected := 0
	if s.cfg.Trace != nil {
		expected = len(s.cfg.Trace.Arrivals)
	} else {
		var totalRate float64
		for _, r := range s.requests {
			totalRate += r.Rate
		}
		expected = int(totalRate * (s.cfg.Horizon - s.cfg.Warmup))
	}
	if expected > presizeCap {
		expected = presizeCap
	}
	if expected > 0 {
		s.results.LatencySamples = make([]float64, 0, expected)
	}
}

// seedArrivals schedules the first external arrival of every request, or
// pushes the whole trace.
func (s *simulation) seedArrivals() {
	if s.cfg.Trace != nil {
		index := make(map[model.RequestID]int, len(s.requests))
		for i, r := range s.requests {
			index[r.ID] = i
		}
		for _, a := range s.cfg.Trace.Arrivals {
			i, ok := index[a.Request]
			if !ok || a.Time >= s.cfg.Horizon {
				continue
			}
			s.results.Generated++
			s.live++
			s.agenda.push(s.newEvent(event{
				time: a.Time,
				kind: evArrival,
				pkt:  s.newPacket(i, a.Time),
				inst: s.route[i][0],
			}))
		}
		return
	}
	for i := range s.requests {
		s.scheduleNextSource(i, 0)
	}
}

// scheduleNextSource draws the next Poisson arrival of request i after t.
func (s *simulation) scheduleNextSource(i int, t float64) {
	next := t + s.arrivalStreams[i].Exp(s.requests[i].Rate)
	if next >= s.cfg.Horizon {
		return
	}
	s.agenda.push(s.newEvent(event{time: next, kind: evSource, reqIndex: i}))
}

// loop drains the agenda until the horizon.
func (s *simulation) loop() {
	for !s.agenda.empty() {
		e := s.agenda.pop()
		if e.time > s.cfg.Horizon {
			break
		}
		s.now = e.time
		switch e.kind {
		case evSource:
			i := e.reqIndex
			s.results.Generated++
			s.live++
			s.agenda.push(s.newEvent(event{
				time: s.now,
				kind: evArrival,
				pkt:  s.newPacket(i, s.now),
				inst: s.route[i][0],
			}))
			s.scheduleNextSource(i, s.now)
		case evArrival:
			s.arrive(e.pkt, e.inst)
		case evService:
			s.complete(e.inst)
		}
		s.freeEvent(e)
	}
}

// arrive delivers a packet to an instance's queue or service position.
func (s *simulation) arrive(p *packet, inst *instance) {
	p.visitStart = s.now
	if inst.busy == nil {
		inst.notePopulation(s.now, s.cfg.Warmup, s.cfg.Horizon, +1)
		s.startService(inst, p)
		return
	}
	if s.cfg.BufferSize > 0 && inst.qlen >= s.cfg.BufferSize {
		s.drop(p, inst)
		return
	}
	inst.notePopulation(s.now, s.cfg.Warmup, s.cfg.Horizon, +1)
	inst.enqueue(p)
}

// drop handles a buffer-full arrival according to the configured policy.
func (s *simulation) drop(p *packet, inst *instance) {
	s.results.Dropped++
	s.results.DroppedByInstance[inst.key]++
	if s.cfg.DropPolicy == DropRetransmit {
		// NACK loss feedback: the source re-injects the packet after the
		// feedback round-trip, keeping its original birth time so the
		// measured latency includes every retry pass.
		s.results.DropRetransmits++
		p.stage = 0
		s.agenda.push(s.newEvent(event{
			time: s.now + s.cfg.RetransmitDelay,
			kind: evArrival,
			pkt:  p,
			inst: s.route[p.reqIndex][0],
		}))
		return
	}
	s.live--
	s.freePacket(p)
}

// startService begins serving p at inst and schedules its completion.
func (s *simulation) startService(inst *instance, p *packet) {
	inst.busy = p
	inst.serviceStart = s.now
	d := s.cfg.ServiceDist.sample(inst.stream, inst.mu)
	s.agenda.push(s.newEvent(event{time: s.now + d, kind: evService, inst: inst}))
}

// complete finishes the in-service packet of inst and advances it.
func (s *simulation) complete(inst *instance) {
	p := inst.busy
	inst.busyTime += overlap(inst.serviceStart, s.now, s.cfg.Warmup, s.cfg.Horizon)
	inst.notePopulation(s.now, s.cfg.Warmup, s.cfg.Horizon, -1)
	if p.visitStart >= s.cfg.Warmup {
		sum := s.results.PerInstance[inst.key]
		if sum == nil {
			sum = &stats.Summary{}
			s.results.PerInstance[inst.key] = sum
		}
		sum.Add(s.now - p.visitStart)
	}
	inst.busy = nil
	if inst.qlen > 0 {
		s.startService(inst, inst.dequeue())
	}
	s.advance(p)
}

// advance moves a finished packet to its next stage, delivery check, or
// retransmission.
func (s *simulation) advance(p *packet) {
	r := s.requests[p.reqIndex]
	if p.stage+1 < len(r.Chain) {
		p.stage++
		s.agenda.push(s.newEvent(event{
			time: s.now + s.hop[p.reqIndex][p.stage],
			kind: evArrival,
			pkt:  p,
			inst: s.route[p.reqIndex][p.stage],
		}))
		return
	}
	// End of chain: delivery check.
	if s.deliveryStreams[p.reqIndex].Bernoulli(r.DeliveryProb) {
		s.results.Delivered++
		s.live--
		if p.birth >= s.cfg.Warmup {
			lat := s.now - p.birth
			s.results.Latency.Add(lat)
			s.results.LatencySamples = append(s.results.LatencySamples, lat)
			s.results.PerRequest[r.ID].Add(lat)
		}
		s.freePacket(p)
		return
	}
	// NACK: retransmit from the source immediately (paper Fig. 3).
	s.results.Retransmissions++
	p.stage = 0
	s.agenda.push(s.newEvent(event{time: s.now, kind: evArrival, pkt: p, inst: s.route[p.reqIndex][0]}))
}

// finalize folds in-flight busy time and normalizes utilizations.
func (s *simulation) finalize() {
	s.results.InFlight = s.live
	span := s.cfg.Horizon - s.cfg.Warmup
	for key, inst := range s.instances {
		busy := inst.busyTime
		if inst.busy != nil {
			busy += overlap(inst.serviceStart, s.cfg.Horizon, s.cfg.Warmup, s.cfg.Horizon)
		}
		s.results.Utilization[key] = busy / span
		inst.notePopulation(s.cfg.Horizon, s.cfg.Warmup, s.cfg.Horizon, 0)
		s.results.MeanJobs[key] = inst.popArea / span
	}
}

// overlap returns the length of [a,b] ∩ [lo,hi].
func overlap(a, b, lo, hi float64) float64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}
