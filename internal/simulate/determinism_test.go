package simulate

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"nfvchain/internal/scheduling"
	"nfvchain/internal/workload"
)

// fingerprintResults folds every deterministic field of a Results into one
// FNV-1a hash, using exact float bit patterns so any numeric drift — however
// small — changes the fingerprint.
func fingerprintResults(res *Results) uint64 {
	h := fnv.New64a()
	writeInt := func(v int) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeInt(res.Generated)
	writeInt(res.Delivered)
	writeInt(res.Retransmissions)
	writeInt(res.Dropped)
	writeFloat(res.Latency.Mean())
	writeFloat(res.Latency.Variance())
	writeFloat(res.Latency.Min())
	writeFloat(res.Latency.Max())
	for _, lat := range res.LatencySamples {
		writeFloat(lat)
	}
	keys := make([]InstanceKey, 0, len(res.Utilization))
	for k := range res.Utilization {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].VNF != keys[j].VNF {
			return keys[i].VNF < keys[j].VNF
		}
		return keys[i].Instance < keys[j].Instance
	})
	for _, k := range keys {
		h.Write([]byte(k.VNF))
		writeInt(k.Instance)
		writeFloat(res.Utilization[k])
		writeFloat(res.MeanJobs[k])
	}
	return h.Sum64()
}

// defaultWorkloadRun solves the default generated workload with RCKK and
// simulates it — the fixture shared by the determinism goldens.
func defaultWorkloadRun(t *testing.T, cfg Config) *Results {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 11
	p, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Problem = p
	cfg.Schedule = sched
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSeedDeterminismGolden pins the simulator's output on the default
// workload to fingerprints captured before the pooling/ring-buffer refactor.
// Any change to event ordering, RNG consumption, or float arithmetic breaks
// these goldens — allocation-oriented rewrites must keep them bit-identical.
func TestSeedDeterminismGolden(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{
			name: "plain",
			cfg:  Config{Horizon: 20, Warmup: 2, Seed: 7},
			want: 0x4af579b7b3270177,
		},
		{
			name: "buffered",
			cfg:  Config{Horizon: 20, Warmup: 2, Seed: 7, BufferSize: 2},
			want: 0x7c13b08e2cdb0988,
		},
		{
			name: "lognormal",
			cfg:  Config{Horizon: 15, Warmup: 1, Seed: 3, ServiceDist: ServiceLogNormal},
			want: 0xb81fe93896fa901a,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := defaultWorkloadRun(t, tc.cfg)
			got := fingerprintResults(res)
			if got != tc.want {
				t.Errorf("fingerprint = %#x, want %#x (seed-determinism regression)", got, tc.want)
			}
		})
	}
}

// TestRunTwiceIdentical asserts two runs with identical configs produce
// bit-identical results — object pooling must not leak state across runs.
func TestRunTwiceIdentical(t *testing.T) {
	cfg := Config{Horizon: 25, Warmup: 3, Seed: 13, BufferSize: 3}
	a := defaultWorkloadRun(t, cfg)
	b := defaultWorkloadRun(t, cfg)
	if fa, fb := fingerprintResults(a), fingerprintResults(b); fa != fb {
		t.Errorf("two identical runs diverged: %#x vs %#x", fa, fb)
	}
	if len(a.LatencySamples) != len(b.LatencySamples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.LatencySamples), len(b.LatencySamples))
	}
	for i := range a.LatencySamples {
		if a.LatencySamples[i] != b.LatencySamples[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a.LatencySamples[i], b.LatencySamples[i])
		}
	}
}

// TestGoldenPrint regenerates the golden fingerprints when run with -v; it
// never fails and exists so future refactors can re-derive the constants
// after an *intentional* semantic change.
func TestGoldenPrint(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Horizon: 20, Warmup: 2, Seed: 7}},
		{"buffered", Config{Horizon: 20, Warmup: 2, Seed: 7, BufferSize: 2}},
		{"lognormal", Config{Horizon: 15, Warmup: 1, Seed: 3, ServiceDist: ServiceLogNormal}},
	} {
		res := defaultWorkloadRun(t, tc.cfg)
		t.Logf("%s: %#x (samples=%d delivered=%d dropped=%d)",
			tc.name, fingerprintResults(res), len(res.LatencySamples), res.Delivered, res.Dropped)
	}
}
