package simulate

import (
	"math"
	"testing"

	"nfvchain/internal/model"
)

// tickHook adapts a func to ControlHook for tests.
type tickHook func(now float64, cp *ControlPlane)

func (h tickHook) Tick(now float64, cp *ControlPlane) { h(now, cp) }

// controlConfig returns a valid control-enabled config over the fault fixture.
func controlConfig(hook ControlHook, interval float64) Config {
	prob, sched, pl := faultProblem(40, 100)
	return Config{
		Problem:         prob,
		Schedule:        sched,
		Placement:       pl,
		Horizon:         10,
		LinkDelay:       0.001,
		Seed:            3,
		Control:         hook,
		ControlInterval: interval,
	}
}

func TestControlConfigValidation(t *testing.T) {
	hook := tickHook(func(float64, *ControlPlane) {})
	for name, interval := range map[string]float64{
		"zero interval":     0,
		"negative interval": -1,
		"NaN interval":      math.NaN(),
		"infinite interval": math.Inf(1),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Run(controlConfig(hook, interval)); err == nil {
				t.Error("invalid control interval accepted")
			}
		})
	}
	t.Run("nil placement", func(t *testing.T) {
		cfg := controlConfig(hook, 1)
		cfg.Placement = nil
		if _, err := Run(cfg); err == nil {
			t.Error("control without placement accepted")
		}
	})
}

// TestControlTickSchedule pins the tick cadence: first tick at Interval, then
// every Interval, strictly before the horizon, with monotone window lengths.
func TestControlTickSchedule(t *testing.T) {
	var times []float64
	hook := tickHook(func(now float64, cp *ControlPlane) {
		times = append(times, now)
		want := 1.0
		if len(times) == 1 {
			want = 1.0 // first window spans [0, Interval)
		}
		if cp.Window() != want {
			t.Errorf("tick at %v: window %v, want %v", now, cp.Window(), want)
		}
	})
	if _, err := Run(controlConfig(hook, 1)); err != nil {
		t.Fatal(err)
	}
	if len(times) != 9 {
		t.Fatalf("got %d ticks, want 9: %v", len(times), times)
	}
	for i, at := range times {
		if at != float64(i+1) {
			t.Errorf("tick %d at %v, want %d", i, at, i+1)
		}
	}
}

// TestControlObservation sanity-checks the per-instance observations: keys
// cover the deployment, utilization is a fraction, and the busy instance of a
// saturated VNF reads hot.
func TestControlObservation(t *testing.T) {
	var obs []InstanceObs
	hook := tickHook(func(now float64, cp *ControlPlane) {
		obs = cp.Instances(obs[:0])
	})
	cfg := controlConfig(hook, 1)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 {
		t.Fatalf("observed %d instances, want 2", len(obs))
	}
	for _, o := range obs {
		if o.Utilization < 0 || o.Utilization > 1+1e-9 {
			t.Errorf("instance %v utilization %v outside [0,1]", o.Key, o.Utilization)
		}
		if o.Node == "" || o.Down || o.Retired {
			t.Errorf("unexpected observation state: %+v", o)
		}
		// λ=40 against µ=100 keeps each single-instance VNF around ρ ≈ 0.4.
		if o.Utilization == 0 {
			t.Errorf("instance %v read idle under sustained load", o.Key)
		}
	}
}

// TestShedFraction pins the deterministic shedding valve: a half-rate shed
// sheds half the subsequent admissions exactly (error-accumulator, no RNG),
// keeps the ledger balanced, and leaves the arrival streams untouched.
func TestShedFraction(t *testing.T) {
	plain, err := Run(controlConfig(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	hook := tickHook(func(now float64, cp *ControlPlane) {
		if err := cp.SetShedFraction(0.5); err != nil {
			t.Fatal(err)
		}
	})
	shed, err := Run(controlConfig(hook, 1))
	if err != nil {
		t.Fatal(err)
	}
	if shed.Generated != plain.Generated {
		t.Fatalf("shedding perturbed arrivals: %d vs %d generated", shed.Generated, plain.Generated)
	}
	if shed.Shed == 0 {
		t.Fatal("half-rate valve shed nothing")
	}
	if got := shed.Delivered + shed.InFlight + shed.Dropped + shed.FailureDrops + shed.Shed; got != shed.Generated {
		t.Errorf("conservation violated: %d != %d", got, shed.Generated)
	}
	if shed.Delivered >= plain.Delivered {
		t.Errorf("shed run delivered %d, not below full admission %d", shed.Delivered, plain.Delivered)
	}
}

func TestSetShedFractionValidation(t *testing.T) {
	hook := tickHook(func(now float64, cp *ControlPlane) {
		for _, bad := range []float64{math.NaN(), -0.1, 1.1} {
			if err := cp.SetShedFraction(bad); err == nil {
				t.Errorf("shed fraction %v accepted", bad)
			}
		}
		if cp.ShedFraction() != 0 {
			t.Errorf("rejected fractions leaked: %v", cp.ShedFraction())
		}
	})
	if _, err := Run(controlConfig(hook, 5)); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateInstance moves a live instance mid-run: the run must stay
// conservative, the instance must keep serving from its new host, and the
// error paths must reject unknown targets and past resume times.
func TestMigrateInstance(t *testing.T) {
	migrated := false
	hook := tickHook(func(now float64, cp *ControlPlane) {
		if migrated {
			return
		}
		migrated = true
		if err := cp.MigrateInstance("f", 0, "b", now+0.05); err != nil {
			t.Fatal(err)
		}
		if err := cp.MigrateInstance("bogus", 0, "b", now); err == nil {
			t.Error("migrating unknown vnf accepted")
		}
		if err := cp.MigrateInstance("f", 0, "nowhere", now); err == nil {
			t.Error("migrating to unknown node accepted")
		}
		if err := cp.MigrateInstance("f", 0, "b", now-1); err == nil {
			t.Error("resume time in the past accepted")
		}
	})
	res, err := Run(controlConfig(hook, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !migrated {
		t.Fatal("hook never ran")
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered after migration")
	}
	if got := res.Delivered + res.InFlight + res.Dropped + res.FailureDrops; got != res.Generated {
		t.Errorf("conservation violated after migration: %d != %d", got, res.Generated)
	}
	// Both chain stages now share node b, so the migrated deployment must
	// still record utilization for both instances.
	for _, key := range []InstanceKey{{VNF: "f", Instance: 0}, {VNF: "g", Instance: 0}} {
		if res.Utilization[key] <= 0 {
			t.Errorf("instance %v idle after migration", key)
		}
	}
}

// TestRemoveInstanceGuard pins the retirement contract: an instance still
// routed to cannot retire; after rerouting, removal succeeds and the run
// drains without losing packets.
func TestRemoveInstanceGuard(t *testing.T) {
	prob, sched, pl := faultProblem(40, 100)
	prob.VNFs[0].Instances = 2 // f gains a second base instance
	acted := false
	hook := tickHook(func(now float64, cp *ControlPlane) {
		if acted {
			return
		}
		acted = true
		// The only request routes through f instance 0: removing it must fail.
		if err := cp.RemoveInstance("f", 0); err == nil {
			t.Error("removed an instance with routed requests")
		}
		if err := cp.Reassign("r", "f", 1); err != nil {
			t.Fatal(err)
		}
		if err := cp.RemoveInstance("f", 0); err != nil {
			t.Errorf("removal after reroute failed: %v", err)
		}
		if err := cp.RemoveInstance("f", 9); err == nil {
			t.Error("removed a nonexistent instance")
		}
	})
	res, err := Run(Config{
		Problem: prob, Schedule: sched, Placement: pl,
		Horizon: 10, LinkDelay: 0.001, Seed: 3,
		Control: hook, ControlInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !acted {
		t.Fatal("hook never ran")
	}
	if got := res.Delivered + res.InFlight + res.Dropped + res.FailureDrops; got != res.Generated {
		t.Errorf("conservation violated after retirement: %d != %d", got, res.Generated)
	}
	if res.Delivered == 0 {
		t.Error("nothing delivered after retirement")
	}
}

func TestPreemptionPlanValidation(t *testing.T) {
	prob, sched, pl := faultProblem(40, 100)
	for name, pp := range map[string]*PreemptionPlan{
		"zero interval":     {MeanInterval: 0, GroupSize: 1, Recovery: 1},
		"infinite interval": {MeanInterval: math.Inf(1), GroupSize: 1, Recovery: 1},
		"zero group":        {MeanInterval: 1, GroupSize: 0, Recovery: 1},
		"zero recovery":     {MeanInterval: 1, GroupSize: 1, Recovery: 0},
		"negative lead":     {MeanInterval: 1, GroupSize: 1, Recovery: 1, LeadTime: -1},
		"NaN lead":          {MeanInterval: 1, GroupSize: 1, Recovery: 1, LeadTime: math.NaN()},
	} {
		t.Run(name, func(t *testing.T) {
			_, err := Run(Config{
				Problem: prob, Schedule: sched, Placement: pl,
				Horizon: 5, Seed: 1,
				FaultPlan: &FaultPlan{Preemption: pp},
			})
			if err == nil {
				t.Error("invalid preemption plan accepted")
			}
		})
	}
}

// noticeRecorder records preemption notices and node transitions.
type noticeRecorder struct {
	notices  []noticeEvent
	downs    map[model.NodeID][]float64
	failDown int
}

type noticeEvent struct {
	at, downAt float64
	nodes      []model.NodeID
}

func (h *noticeRecorder) NodeDown(now float64, n model.NodeID, ctrl *RepairControl) {
	if h.downs == nil {
		h.downs = make(map[model.NodeID][]float64)
	}
	h.downs[n] = append(h.downs[n], now)
	h.failDown++
}
func (h *noticeRecorder) NodeUp(float64, model.NodeID, *RepairControl) {}
func (h *noticeRecorder) PreemptionNotice(now float64, nodes []model.NodeID, downAt float64, ctrl *RepairControl) {
	h.notices = append(h.notices, noticeEvent{at: now, downAt: downAt, nodes: append([]model.NodeID(nil), nodes...)})
}

// TestPreemptionNotice pins the advance-notice contract: each notice precedes
// its loss by up to LeadTime, names GroupSize distinct nodes, and every named
// node actually goes down at the announced time.
func TestPreemptionNotice(t *testing.T) {
	prob, sched, pl := faultProblem(40, 100)
	rec := &noticeRecorder{}
	res, err := Run(Config{
		Problem: prob, Schedule: sched, Placement: pl,
		Horizon: 30, LinkDelay: 0.001, Seed: 5,
		FaultPlan: &FaultPlan{Preemption: &PreemptionPlan{
			MeanInterval: 5, GroupSize: 2, Recovery: 1, LeadTime: 0.5,
		}},
		FaultHook:       rec,
		FailurePolicy:   FailRetransmit,
		RetransmitDelay: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.notices) == 0 {
		t.Fatal("no preemption notices over a 30s horizon")
	}
	for _, n := range rec.notices {
		if n.at > n.downAt || n.downAt-n.at > 0.5+1e-9 {
			t.Errorf("notice at %v for loss at %v violates the lead window", n.at, n.downAt)
		}
		if len(n.nodes) != 2 || n.nodes[0] == n.nodes[1] {
			t.Errorf("notice group %v not 2 distinct nodes", n.nodes)
		}
		for _, id := range n.nodes {
			found := false
			for _, at := range rec.downs[id] {
				if at == n.downAt {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("announced loss of %s at %v never happened (downs: %v)", id, n.downAt, rec.downs[id])
			}
		}
	}
	// GroupSize 2 of 2 nodes: every preemption downs both nodes.
	if rec.failDown != 2*len(rec.notices) {
		t.Errorf("%d node-down events for %d notices", rec.failDown, len(rec.notices))
	}
	if res.FailureDrops != 0 {
		t.Errorf("FailRetransmit lost %d packets", res.FailureDrops)
	}
}

// TestPreemptionStreamIsolation asserts the dedicated preemption stream: the
// arrival sample path — hence Generated — is identical with and without
// preemption under FailRetransmit.
func TestPreemptionStreamIsolation(t *testing.T) {
	prob, sched, pl := faultProblem(40, 100)
	base := Config{
		Problem: prob, Schedule: sched, Placement: pl,
		Horizon: 20, LinkDelay: 0.001, Seed: 9,
		FailurePolicy: FailRetransmit, RetransmitDelay: 0.05,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withPP := base
	withPP.FaultPlan = &FaultPlan{Preemption: &PreemptionPlan{MeanInterval: 4, GroupSize: 1, Recovery: 0.5}}
	preempted, err := Run(withPP)
	if err != nil {
		t.Fatal(err)
	}
	if preempted.Generated != plain.Generated {
		t.Errorf("preemption perturbed the arrival stream: %d vs %d generated",
			preempted.Generated, plain.Generated)
	}
	if len(preempted.Downtime) == 0 {
		t.Error("preemption produced no downtime; scenario is vacuous")
	}
	// And the dedicated stream is itself deterministic.
	again, err := Run(withPP)
	if err != nil {
		t.Fatal(err)
	}
	if again.Delivered != preempted.Delivered || again.Availability != preempted.Availability {
		t.Errorf("preempted runs diverged: %d/%v vs %d/%v",
			again.Delivered, again.Availability, preempted.Delivered, preempted.Availability)
	}
}
