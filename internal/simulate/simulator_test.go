package simulate

import (
	"math"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/queueing"
	"nfvchain/internal/stats"
	"nfvchain/internal/workload"
)

// singleQueueProblem is one request through one single-instance VNF.
func singleQueueProblem(lambda, mu, p float64) (*model.Problem, *model.Schedule) {
	prob := &model.Problem{
		Nodes:    []model.Node{{ID: "n", Capacity: 1000}},
		VNFs:     []model.VNF{{ID: "f", Instances: 1, Demand: 1, ServiceRate: mu}},
		Requests: []model.Request{{ID: "r", Chain: []model.VNFID{"f"}, Rate: lambda, DeliveryProb: p}},
	}
	sched := model.NewSchedule()
	sched.Assign("r", "f", 0)
	return prob, sched
}

func TestRunValidation(t *testing.T) {
	prob, sched := singleQueueProblem(10, 100, 1)
	cases := map[string]Config{
		"nil problem":     {Schedule: sched, Horizon: 1},
		"nil schedule":    {Problem: prob, Horizon: 1},
		"zero horizon":    {Problem: prob, Schedule: sched},
		"warmup >= hz":    {Problem: prob, Schedule: sched, Horizon: 1, Warmup: 1},
		"negative warmup": {Problem: prob, Schedule: sched, Horizon: 1, Warmup: -0.1},
		"negative link":   {Problem: prob, Schedule: sched, Horizon: 1, LinkDelay: -1},
		"negative buffer": {Problem: prob, Schedule: sched, Horizon: 1, BufferSize: -1},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	t.Run("invalid schedule", func(t *testing.T) {
		bad := model.NewSchedule()
		bad.Assign("ghost", "f", 0)
		if _, err := Run(Config{Problem: prob, Schedule: bad, Horizon: 1}); err == nil {
			t.Error("invalid schedule accepted")
		}
	})
}

func TestMM1AgreementWithTheory(t *testing.T) {
	lambda, mu := 50.0, 100.0
	prob, sched := singleQueueProblem(lambda, mu, 1)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 2000, Warmup: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	want, err := (queueing.MM1{Lambda: lambda, Mu: mu}).MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Latency.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("simulated mean latency %v vs M/M/1 %v (>5%% off)", got, want)
	}
	// Utilization ≈ ρ = 0.5.
	util := res.Utilization[InstanceKey{VNF: "f", Instance: 0}]
	if math.Abs(util-0.5) > 0.03 {
		t.Errorf("utilization %v, want ≈0.5", util)
	}
	if res.Delivered == 0 || len(res.LatencySamples) != res.Latency.N() {
		t.Error("sample bookkeeping inconsistent")
	}
	if res.Retransmissions != 0 {
		t.Errorf("P=1 but %d retransmissions", res.Retransmissions)
	}
}

func TestLossFeedbackMatchesEffectiveRateTheory(t *testing.T) {
	// Paper Fig. 3 with one station: E[T] = 1/(Pµ − λ0).
	lambda, mu, p := 50.0, 100.0, 0.9
	prob, sched := singleQueueProblem(lambda, mu, p)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 3000, Warmup: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (p*mu - lambda)
	got := res.Latency.Mean()
	if math.Abs(got-want)/want > 0.06 {
		t.Errorf("mean latency %v vs theory %v", got, want)
	}
	if res.Retransmissions == 0 {
		t.Error("no retransmissions despite 10% loss")
	}
	// Utilization ≈ ρ = (λ/P)/µ.
	util := res.Utilization[InstanceKey{VNF: "f", Instance: 0}]
	wantUtil := lambda / p / mu
	if math.Abs(util-wantUtil) > 0.03 {
		t.Errorf("utilization %v, want ≈%v", util, wantUtil)
	}
}

func TestTandemChainMatchesJackson(t *testing.T) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 1, ServiceRate: 120},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 90},
		},
		Requests: []model.Request{{ID: "r", Chain: []model.VNFID{"f1", "f2"}, Rate: 40, DeliveryProb: 1}},
	}
	sched := model.NewSchedule()
	sched.Assign("r", "f1", 0)
	sched.Assign("r", "f2", 0)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 2000, Warmup: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0/(120-40) + 1.0/(90-40)
	got := res.Latency.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("tandem latency %v vs Jackson %v", got, want)
	}
}

func TestLinkDelayAddsPerHop(t *testing.T) {
	prob := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 1, ServiceRate: 200},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 200},
		},
		Requests: []model.Request{{ID: "r", Chain: []model.VNFID{"f1", "f2"}, Rate: 20, DeliveryProb: 1}},
	}
	sched := model.NewSchedule()
	sched.Assign("r", "f1", 0)
	sched.Assign("r", "f2", 0)

	split := model.NewPlacement()
	split.Assign("f1", "n1")
	split.Assign("f2", "n2")
	const linkDelay = 0.5

	together := model.NewPlacement()
	together.Assign("f1", "n1")
	together.Assign("f2", "n1")

	resSplit, err := Run(Config{Problem: prob, Schedule: sched, Placement: split,
		LinkDelay: linkDelay, Horizon: 1000, Warmup: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	resTogether, err := Run(Config{Problem: prob, Schedule: sched, Placement: together,
		LinkDelay: linkDelay, Horizon: 1000, Warmup: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	gap := resSplit.Latency.Mean() - resTogether.Latency.Mean()
	if math.Abs(gap-linkDelay) > 0.05 {
		t.Errorf("inter-node hop cost %v, want ≈%v (Eq. 16's L)", gap, linkDelay)
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	prob, sched := singleQueueProblem(30, 80, 0.95)
	cfg := Config{Problem: prob, Schedule: sched, Horizon: 200, Warmup: 10, Seed: 5}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Retransmissions != b.Retransmissions {
		t.Fatal("same seed, different counts")
	}
	if a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("same seed, different latency")
	}
	cfg.Seed = 6
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delivered == a.Delivered && c.Latency.Mean() == a.Latency.Mean() {
		t.Error("different seeds produced identical runs")
	}
}

func TestFiniteBufferDrops(t *testing.T) {
	// Overloaded queue (λ > µ) with a tiny buffer must drop.
	prob, sched := singleQueueProblem(200, 100, 1)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 50, BufferSize: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("overloaded finite buffer dropped nothing")
	}
	// Unbounded buffer on the same overload drops nothing (queues grow).
	res2, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Dropped != 0 {
		t.Errorf("unbounded buffer dropped %d", res2.Dropped)
	}
	// The unstable queue must still stay ~fully utilized.
	if u := res2.Utilization[InstanceKey{VNF: "f", Instance: 0}]; u < 0.9 {
		t.Errorf("overloaded utilization %v, want ≈1", u)
	}
}

func TestFiniteBufferMatchesMM1K(t *testing.T) {
	// BufferSize B gives system capacity K = B+1 (waiting room + server).
	// The measured drop fraction must match the analytic blocking
	// probability of the M/M/1/K queue.
	lambda, mu := 80.0, 100.0
	const buffer = 4
	prob, sched := singleQueueProblem(lambda, mu, 1)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 3000, Warmup: 100,
		BufferSize: buffer, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := res.Delivered + res.Dropped
	if arrivals == 0 {
		t.Fatal("no arrivals")
	}
	dropFrac := float64(res.Dropped) / float64(arrivals)
	want, err := (queueing.MM1K{Lambda: lambda, Mu: mu, K: buffer + 1}).BlockingProb()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dropFrac-want) > 0.02 {
		t.Errorf("drop fraction %v vs M/M/1/K blocking %v", dropFrac, want)
	}
	// Mean sojourn of accepted packets matches too.
	wantT, err := (queueing.MM1K{Lambda: lambda, Mu: mu, K: buffer + 1}).MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Latency.Mean(); math.Abs(got-wantT)/wantT > 0.06 {
		t.Errorf("accepted-packet latency %v vs M/M/1/K %v", got, wantT)
	}
}

func TestTraceDrivenMode(t *testing.T) {
	prob, sched := singleQueueProblem(50, 150, 1)
	tr, err := workload.GenerateTrace(prob, 500, workload.InterArrivalExponential, 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 500, Warmup: 25, Trace: tr, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := (queueing.MM1{Lambda: 50, Mu: 150}).MeanResponseTime()
	if math.Abs(res.Latency.Mean()-want)/want > 0.1 {
		t.Errorf("trace-driven latency %v vs theory %v", res.Latency.Mean(), want)
	}
	// Same trace twice → identical arrival process.
	res2, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 500, Warmup: 25, Trace: tr, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res2.Delivered {
		t.Error("trace-driven runs not reproducible")
	}
}

func TestSkipsUnscheduledRequests(t *testing.T) {
	// A request removed by admission control (absent from the schedule) must
	// generate no traffic.
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 100}},
		VNFs:  []model.VNF{{ID: "f", Instances: 1, Demand: 1, ServiceRate: 100}},
		Requests: []model.Request{
			{ID: "kept", Chain: []model.VNFID{"f"}, Rate: 20, DeliveryProb: 1},
			{ID: "rejected", Chain: []model.VNFID{"f"}, Rate: 20, DeliveryProb: 1},
		},
	}
	sched := model.NewSchedule()
	sched.Assign("kept", "f", 0)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.PerRequest["rejected"]; ok {
		t.Error("rejected request has samples")
	}
	if res.PerRequest["kept"].N() == 0 {
		t.Error("kept request has no samples")
	}
}

func TestServiceDistributions(t *testing.T) {
	// Same load, three service distributions. Kingman's VUT formula ranks
	// them: deterministic < exponential < lognormal response time.
	lambda, mu := 70.0, 100.0
	results := map[ServiceDist]float64{}
	for _, dist := range []ServiceDist{ServiceDeterministic, ServiceExponential, ServiceLogNormal} {
		prob, sched := singleQueueProblem(lambda, mu, 1)
		res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 2000, Warmup: 100,
			ServiceDist: dist, Seed: 29})
		if err != nil {
			t.Fatal(err)
		}
		results[dist] = res.Latency.Mean()
		// Kingman prediction within 12% for each distribution.
		want, err := (queueing.Kingman{Lambda: lambda, Mu: mu, CA: 1, CS: dist.CV()}).MeanResponseTime()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Latency.Mean()-want)/want > 0.12 {
			t.Errorf("dist %d: simulated %v vs Kingman %v", dist, res.Latency.Mean(), want)
		}
		// Mean service rate preserved: utilization ≈ ρ regardless of shape.
		util := res.Utilization[InstanceKey{VNF: "f", Instance: 0}]
		if math.Abs(util-lambda/mu) > 0.03 {
			t.Errorf("dist %d: utilization %v, want ≈0.7", dist, util)
		}
	}
	if !(results[ServiceDeterministic] < results[ServiceExponential] &&
		results[ServiceExponential] < results[ServiceLogNormal]) {
		t.Errorf("latency ordering violated: %v", results)
	}
}

func TestServiceDistValidation(t *testing.T) {
	prob, sched := singleQueueProblem(10, 100, 1)
	if _, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 1, ServiceDist: ServiceDist(9)}); err == nil {
		t.Error("unknown service distribution accepted")
	}
	if ServiceExponential.CV() != 1 || ServiceDeterministic.CV() != 0 {
		t.Error("CV values wrong")
	}
	if cv := ServiceLogNormal.CV(); math.Abs(cv-math.Sqrt(math.E-1)) > 1e-12 {
		t.Errorf("lognormal CV = %v", cv)
	}
}

func TestMeanJobsMatchesEq10(t *testing.T) {
	// Paper Eq. 10: E[N] = ρ/(1−ρ). ρ = 0.6 → E[N] = 1.5.
	lambda, mu := 60.0, 100.0
	prob, sched := singleQueueProblem(lambda, mu, 1)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 3000, Warmup: 100, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	want, err := (queueing.MM1{Lambda: lambda, Mu: mu}).MeanJobs()
	if err != nil {
		t.Fatal(err)
	}
	got := res.MeanJobs[InstanceKey{VNF: "f", Instance: 0}]
	if math.Abs(got-want)/want > 0.06 {
		t.Errorf("time-averaged population %v vs E[N] = %v", got, want)
	}
	// Little's law on measured quantities: N̄ ≈ λ_eff · W̄.
	if math.Abs(got-lambda*res.Latency.Mean())/got > 0.06 {
		t.Errorf("Little's law violated: N̄=%v, λ·W̄=%v", got, lambda*res.Latency.Mean())
	}
}

func TestPacketConservation(t *testing.T) {
	// In a stable lossless system every generated packet is eventually
	// delivered; the ones still in flight at the horizon are the only gap.
	prob, sched := singleQueueProblem(50, 200, 1)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 500, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no packets generated")
	}
	if res.Delivered > res.Generated {
		t.Errorf("delivered %d > generated %d", res.Delivered, res.Generated)
	}
	inFlight := res.Generated - res.Delivered - res.Dropped
	if inFlight < 0 {
		t.Errorf("negative in-flight count: %d", inFlight)
	}
	// ρ = 0.25, horizon 500s: at most a handful still queued at the end.
	if inFlight > 20 {
		t.Errorf("%d packets unaccounted for in a lightly loaded system", inFlight)
	}
	// Poisson arrival count sanity: λ·T = 25000 ± 5σ.
	if math.Abs(float64(res.Generated)-25000) > 5*math.Sqrt(25000) {
		t.Errorf("generated %d, want ≈25000", res.Generated)
	}
}

func TestPacketConservationWithDrops(t *testing.T) {
	prob, sched := singleQueueProblem(150, 100, 1)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 100, BufferSize: 2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected drops")
	}
	inFlight := res.Generated - res.Delivered - res.Dropped
	if inFlight < 0 || inFlight > 4 { // at most buffer+in-service remain
		t.Errorf("in-flight = %d, want within [0, buffer+service]", inFlight)
	}
}

func TestPercentileTailFromSamples(t *testing.T) {
	prob, sched := singleQueueProblem(60, 100, 1)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 1000, Warmup: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	p99 := stats.Percentile(res.LatencySamples, 99)
	// Analytic p99 of M/M/1 sojourn: −ln(0.01)/(µ−λ).
	want, _ := (queueing.MM1{Lambda: 60, Mu: 100}).ResponseTimeQuantile(0.99)
	if math.Abs(p99-want)/want > 0.15 {
		t.Errorf("p99 %v vs theory %v", p99, want)
	}
	if p99 <= res.Latency.Mean() {
		t.Error("p99 below mean")
	}
}

func TestKleinrockMergeAtSharedInstance(t *testing.T) {
	// Two requests share one instance (the paper's Fig. 4 situation): the
	// merged stream must behave as one Poisson flow with the summed rate,
	// so the shared instance's response time follows M/M/1 at λ1+λ2.
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 100}},
		VNFs:  []model.VNF{{ID: "f", Instances: 1, Demand: 1, ServiceRate: 150}},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"f"}, Rate: 40, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"f"}, Rate: 50, DeliveryProb: 1},
		},
	}
	sched := model.NewSchedule()
	sched.Assign("r1", "f", 0)
	sched.Assign("r2", "f", 0)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 2000, Warmup: 100, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	want, err := (queueing.MM1{Lambda: queueing.MergeRates(40, 50), Mu: 150}).MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	// Both requests see the same merged-queue latency.
	for _, id := range []model.RequestID{"r1", "r2"} {
		got := res.PerRequest[id].Mean()
		if math.Abs(got-want)/want > 0.06 {
			t.Errorf("%s latency %v vs merged M/M/1 %v", id, got, want)
		}
	}
	// Utilization reflects the merged rate.
	util := res.Utilization[InstanceKey{VNF: "f", Instance: 0}]
	if math.Abs(util-0.6) > 0.03 {
		t.Errorf("utilization %v, want ≈0.6", util)
	}
}
