package simulate

import "testing"

func TestScratchUnpopTieAtTopBoundary(t *testing.T) {
	var a agenda
	a.reset(AgendaLadder, false)
	// Three events at the same time; seq stamps 1,2,3 assigned by push.
	a.push(event{time: 5})
	a.push(event{time: 5})
	a.push(event{time: 5})
	e1, ok := a.pop()
	if !ok || e1.seq != 1 {
		t.Fatalf("first pop = %+v ok=%v, want seq 1", e1, ok)
	}
	a.unpop(e1)
	e, ok := a.pop()
	if !ok || e.seq != 1 {
		t.Fatalf("pop after unpop = seq %d ok=%v, want seq 1 (time %v)", e.seq, ok, e.time)
	}
}
