package simulate

import "math"

// ladderAgenda is a ladder queue (Tang, Goh & Thng's calendar-queue
// descendant): an O(1)-amortized priority queue on the (time, seq) total
// order, selected via AgendaLadder.
//
// Structure, from coarse to fine:
//
//   - top: an unsorted spill buffer. Every push with time >= topStart lands
//     here with an O(1) append; topStart is the maximum timestamp top held
//     when the current ladder generation was spawned, so top only ever
//     receives events at or beyond everything already in the ladder.
//   - rungs: a stack of bucket arrays. Rung 0 spans the timestamps top held
//     at spawn time, divided into ~one bucket per half-threshold of events;
//     each deeper rung lazily subdivides the single bucket its parent is
//     currently consuming, and only buckets that turn out crowded
//     (> ladderThresh events) are subdivided at all. A push below topStart
//     lands in the first rung bucket that is still ahead of the consumption
//     point — again O(1). Small event masses (a top or bucket of at most
//     ladderThresh events) skip the rung machinery entirely and are sorted
//     wholesale — bucketizing a few dozen events costs more than sorting
//     them, which is what made the ladder lose to the heap on workloads
//     whose pending population stays small.
//   - bottom: the sorted head of the queue, kept in DESCENDING (time, seq)
//     order so the next event to pop is the LAST element. Pops are an O(1)
//     truncation; pushes that undercut every rung are insertion-sorted in,
//     and because such pushes are due soon they land near the end of the
//     array, where the insertion memmove is a few events instead of half
//     the bottom. If undercutting pushes pile bottom up past
//     ladderBottomMax, bottom is re-bucketized into a new rung.
//
// Every event is appended O(1) on push, moved O(1) times between rungs in
// expectation, and sorted once inside a bounded bucket — O(1) amortized per
// operation, against the heap's O(log n) sift. Consumption order is bottom,
// then rungs deepest-first, then top; the bucket arithmetic routes every
// push below the consumption point into bottom, so the pop sequence is the
// exact (time, seq) order regardless of arrival pattern.
//
// All backing arrays (top, bottom, rung stack, bucket arrays) are retained
// across reset, mirroring the simulator's packet arena: steady-state sweeps
// run the ladder allocation-free. The zero value is ready to use.
type ladderAgenda struct {
	top      []event
	topStart float64 // pushes at or beyond this go to top
	topMin   float64 // min/max timestamps currently in top
	topMax   float64

	rungs []rung

	bottom []event // sorted DESCENDING by (time, seq); next pop is the last element
}

// Sizing constants. ladderThresh bounds the event mass sorted directly into
// bottom (and thereby bottom's usual length) — masses above it are
// bucketized, masses at or below it are sorted wholesale; ladderBottomMax
// triggers re-bucketizing a bottom that pushes keep undercutting;
// ladderMaxRungs bounds subdivision depth (equal-timestamp masses cannot be
// subdivided and are sorted wholesale instead); ladderMaxBuckets caps one
// rung's width.
const (
	ladderThresh     = 48
	ladderBottomMax  = 192
	ladderMaxRungs   = 8
	ladderMaxBuckets = 1 << 16
)

// rung is one subdivision level: nbuckets buckets of width seconds starting
// at start. cur is the index of the bucket whose contents have moved on to
// bottom (or a deeper rung); pushes only land in buckets strictly beyond it.
type rung struct {
	start    float64
	width    float64
	buckets  [][]event
	nbuckets int
	cur      int
}

// bucketOf maps a timestamp to a bucket index, clamped to the rung. The
// computation stays in float64 until the clamp so out-of-range timestamps
// cannot overflow the int conversion.
func (r *rung) bucketOf(t float64) int {
	ft := (t - r.start) / r.width
	if !(ft > 0) { // also catches NaN
		return 0
	}
	if ft >= float64(r.nbuckets) {
		return r.nbuckets - 1
	}
	return int(ft)
}

// prepare readies the rung to hold nb buckets, truncating recycled bucket
// arrays in place.
func (r *rung) prepare(start, width float64, nb int) {
	r.start, r.width, r.nbuckets, r.cur = start, width, nb, -1
	for len(r.buckets) < nb {
		r.buckets = append(r.buckets, nil)
	}
	for i := 0; i < nb; i++ {
		r.buckets[i] = r.buckets[i][:0]
	}
}

// reset empties the ladder, retaining every backing array.
func (l *ladderAgenda) reset() {
	l.top = l.top[:0]
	l.topStart = math.Inf(-1)
	l.rungs = l.rungs[:0]
	l.bottom = l.bottom[:0]
}

// push enqueues an already seq-stamped event.
func (l *ladderAgenda) push(e event) {
	if e.time >= l.topStart {
		if len(l.top) == 0 {
			l.topMin, l.topMax = e.time, e.time
		} else if e.time < l.topMin {
			l.topMin = e.time
		} else if e.time > l.topMax {
			l.topMax = e.time
		}
		l.top = append(l.top, e)
		return
	}
	for i := range l.rungs {
		r := &l.rungs[i]
		if idx := r.bucketOf(e.time); idx > r.cur {
			r.buckets[idx] = append(r.buckets[idx], e)
			return
		}
	}
	l.insertBottom(e)
}

// unpop returns the most recently popped event — by the caller's contract
// still the global minimum — to the queue. It must bypass push's routing: a
// time exactly at topStart would land in top and be held back until bottom
// drains, popping after equal-time events whose seq it precedes. Since e
// precedes everything pending, appending it to the descending bottom keeps
// the array sorted.
func (l *ladderAgenda) unpop(e event) {
	l.bottom = append(l.bottom, e)
}

// peek returns the minimum event without removing it, nil when empty. The
// pointer is invalidated by the next push or pop.
func (l *ladderAgenda) peek() *event {
	if !l.ensureBottom() {
		return nil
	}
	return &l.bottom[len(l.bottom)-1]
}

// popOK removes and returns the minimum event; ok is false when empty.
func (l *ladderAgenda) popOK() (event, bool) {
	if !l.ensureBottom() {
		return event{}, false
	}
	n := len(l.bottom) - 1
	e := l.bottom[n]
	l.bottom = l.bottom[:n]
	return e, true
}

// pop removes and returns the minimum event; the caller checks non-empty
// (via peek).
func (l *ladderAgenda) pop() event {
	e, _ := l.popOK()
	return e
}

// head returns the minimum event's (time, seq) key, (+Inf, 0) when empty.
func (l *ladderAgenda) head() (float64, uint64) {
	if !l.ensureBottom() {
		return math.Inf(1), 0
	}
	e := &l.bottom[len(l.bottom)-1]
	return e.time, e.seq
}

// ensureBottom refills bottom from the ladder until it holds the global
// minimum; false means the whole queue is empty.
func (l *ladderAgenda) ensureBottom() bool {
	for len(l.bottom) == 0 {
		if n := len(l.rungs); n > 0 {
			r := &l.rungs[n-1]
			nxt := r.cur + 1
			for nxt < r.nbuckets && len(r.buckets[nxt]) == 0 {
				nxt++
			}
			if nxt >= r.nbuckets {
				// Rung exhausted; drop it, retaining its bucket arrays.
				l.rungs = l.rungs[:n-1]
				continue
			}
			r.cur = nxt
			b := r.buckets[nxt]
			if len(b) > ladderThresh && n < ladderMaxRungs && l.spawnRung(b) {
				// Re-derive the parent pointer: spawnRung may have grown the
				// rung stack's backing array.
				l.rungs[n-1].buckets[nxt] = b[:0]
				continue
			}
			sortEvents(b)
			l.bottom = appendReversed(l.bottom, b)
			r.buckets[nxt] = b[:0]
			continue
		}
		if len(l.top) > 0 {
			// Small tops (and degenerate ones: all equal timestamps, or rungs
			// exhausted) are sorted wholesale — spawning a rung for a few
			// dozen events costs more than one bounded sort. Equal-time
			// events arrive in seq order, so the degenerate path is
			// near-linear.
			if len(l.top) > ladderThresh && len(l.rungs) < ladderMaxRungs && l.spawnRung(l.top) {
				l.topStart = l.topMax
				l.top = l.top[:0]
				continue
			}
			sortEvents(l.top)
			l.bottom = appendReversed(l.bottom, l.top)
			l.topStart = l.topMax
			l.top = l.top[:0]
			continue
		}
		return false
	}
	return true
}

// appendReversed appends src (sorted ascending) onto dst in reverse, keeping
// dst's descending pop order.
func appendReversed(dst, src []event) []event {
	if n := len(dst) + len(src); n > cap(dst) {
		grown := make([]event, len(dst), max(n, 2*cap(dst)))
		copy(grown, dst)
		dst = grown
	}
	for i := len(src) - 1; i >= 0; i-- {
		dst = append(dst, src[i])
	}
	return dst
}

// spawnRung subdivides the events of b into a new deepest rung sized so
// each bucket holds about half a threshold's worth of events — buckets then
// usually drain straight to bottom without re-spawning, and the rung needs
// ~2/ladderThresh as many bucket arrays as events (vs one per event, which
// made bucket-slice churn the dominant allocator). It reports false when b
// cannot be subdivided (all timestamps equal, or the span underflows); the
// caller sorts b instead.
func (l *ladderAgenda) spawnRung(b []event) bool {
	mn, mx := b[0].time, b[0].time
	for i := 1; i < len(b); i++ {
		if t := b[i].time; t < mn {
			mn = t
		} else if t > mx {
			mx = t
		}
	}
	nb := len(b) / (ladderThresh / 2)
	if nb < 2 {
		nb = 2
	}
	if nb > ladderMaxBuckets {
		nb = ladderMaxBuckets
	}
	width := (mx - mn) / float64(nb)
	if !(width > 0) || math.IsInf(width, 1) {
		return false
	}
	// Recycle the rung slot (and its bucket arrays) left by a popped rung.
	n := len(l.rungs)
	if n < cap(l.rungs) {
		l.rungs = l.rungs[:n+1]
	} else {
		l.rungs = append(l.rungs, rung{})
	}
	r := &l.rungs[n]
	r.prepare(mn, width, nb)
	for _, e := range b {
		idx := r.bucketOf(e.time)
		r.buckets[idx] = append(r.buckets[idx], e)
	}
	return true
}

// insertBottom insertion-sorts an event into the descending bottom — the
// path for pushes that undercut every rung. Such events are due soon, so
// their slot is near the end of the array and the memmove shifts only the
// few events due even sooner. When undercutting pushes pile bottom up past
// ladderBottomMax, bottom is re-bucketized into a new deepest rung so the
// per-push cost stays bounded.
func (l *ladderAgenda) insertBottom(e event) {
	// Single backward pass fusing the position search with the shift: walk
	// from the end (the earliest events) toward the front, sliding events
	// that precede e one slot right until e's slot appears. Undercutting
	// pushes are due soon, so the walk usually stops within a few events.
	l.bottom = append(l.bottom, event{})
	b := l.bottom
	i := len(b) - 1
	for i > 0 && eventBefore(&b[i-1], &e) {
		b[i] = b[i-1]
		i--
	}
	b[i] = e
	if len(l.bottom) > ladderBottomMax && len(l.rungs) < ladderMaxRungs {
		if l.spawnRung(l.bottom) {
			l.bottom = l.bottom[:0]
		}
	}
}

// sortEvents orders events ascending by (time, seq) — a closure-free,
// allocation-free insertion/quicksort hybrid. Keys are unique (seq is), so
// equal-pivot pathologies cannot arise; equal-time runs arrive already in
// seq order, which the insertion sort handles in linear time.
func sortEvents(s []event) {
	for len(s) > 24 {
		// Median-of-three pivot, moved to s[0].
		m := len(s) / 2
		hi := len(s) - 1
		if eventBefore(&s[m], &s[0]) {
			s[m], s[0] = s[0], s[m]
		}
		if eventBefore(&s[hi], &s[0]) {
			s[hi], s[0] = s[0], s[hi]
		}
		if eventBefore(&s[hi], &s[m]) {
			s[hi], s[m] = s[m], s[hi]
		}
		s[0], s[m] = s[m], s[0]
		pivot := s[0]
		// Hoare partition.
		i, j := 0, len(s)
		for {
			for {
				j--
				if !eventBefore(&pivot, &s[j]) {
					break
				}
			}
			for {
				i++
				if i >= len(s) || !eventBefore(&s[i], &pivot) {
					break
				}
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		s[0], s[j] = s[j], s[0]
		// Recurse into the smaller half, loop on the larger.
		if j < len(s)-j-1 {
			sortEvents(s[:j])
			s = s[j+1:]
		} else {
			sortEvents(s[j+1:])
			s = s[:j]
		}
	}
	for i := 1; i < len(s); i++ {
		e := s[i]
		j := i
		for j > 0 && eventBefore(&e, &s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = e
	}
}
