package simulate

import (
	"strings"
	"testing"

	"nfvchain/internal/rng"
)

// TestAgendaDifferentialRandom drives the heap- and ladder-backed agendas
// with identical randomized push/pop workloads — duplicate timestamps,
// equal-time seq ties, pushes interleaved mid-drain, occasional pushes below
// already-popped times — and asserts the two pop bit-identical event
// sequences. The wrappers are reused across trials, so post-reset state
// (retained rungs, FIFO, heap array) is exercised too.
func TestAgendaDifferentialRandom(t *testing.T) {
	st := rng.New(42)
	var h, l agenda
	for trial := 0; trial < 60; trial++ {
		h.reset(AgendaHeap, false)
		l.reset(AgendaLadder, false)
		pending := 0
		last := 0.0
		for i := 0; i < 3000; i++ {
			if pending > 0 && st.Float64() < 0.45 {
				eh, okh := h.pop()
				el, okl := l.pop()
				if okh != okl || eh != el {
					t.Fatalf("trial %d op %d: pop diverged: heap %+v %v, ladder %+v %v",
						trial, i, eh, okh, el, okl)
				}
				pending--
				last = eh.time
				continue
			}
			var tm float64
			switch st.IntN(5) {
			case 0:
				tm = last // exact duplicate of the current time (seq tie-break)
			case 1:
				tm = float64(st.IntN(8)) // coarse grid: heavy cross-push ties
			case 2:
				tm = st.Float64() * 10 // continuous, possibly below 'last'
			case 3:
				tm = last + st.Float64() // near future
			case 4:
				tm = 5 + st.Float64()*0.001 // dense cluster: crowded buckets
			}
			e := event{time: tm, kind: evArrival, pkt: int32(i), inst: int32(trial)}
			h.push(e)
			l.push(e)
			pending++
		}
		for {
			eh, okh := h.pop()
			el, okl := l.pop()
			if okh != okl || eh != el {
				t.Fatalf("trial %d drain: pop diverged: heap %+v %v, ladder %+v %v",
					trial, eh, okh, el, okl)
			}
			if !okh {
				break
			}
		}
	}
}

// TestAgendaDifferentialBulk skips the wrapper's due-now FIFO and compares
// the raw backends under bulk loads that force the ladder through every
// structural path: a top spawn over thousands of events, crowded buckets
// that spawn deeper rungs, an equal-timestamp mass that cannot be
// subdivided, and bottom-insert storms below every rung.
func TestAgendaDifferentialBulk(t *testing.T) {
	st := rng.New(7)
	var h heapAgenda
	var l ladderAgenda
	for trial := 0; trial < 4; trial++ {
		h.reset()
		l.reset()
		seq := uint64(0)
		push := func(tm float64) {
			seq++
			e := event{time: tm, seq: seq, kind: evService}
			h.push(e)
			l.push(e)
		}
		for i := 0; i < 8000; i++ {
			switch st.IntN(10) {
			case 0, 1, 2:
				push(st.Float64() * 1000) // broad uniform spread
			case 3, 4, 5, 6:
				push(500 + st.Float64()*0.01) // dense cluster → deep rungs
			default:
				push(7.25) // zero-spread mass → wholesale sort path
			}
		}
		drained := 0
		for {
			hp, lp := h.peek(), l.peek()
			if (hp == nil) != (lp == nil) {
				t.Fatalf("trial %d: emptiness diverged at pop %d", trial, drained)
			}
			if hp == nil {
				break
			}
			eh, el := h.pop(), l.pop()
			if eh != el {
				t.Fatalf("trial %d pop %d: heap %+v, ladder %+v", trial, drained, eh, el)
			}
			drained++
			// Interleave pushes mid-drain, some undercutting every rung.
			if drained%3 == 0 {
				push(eh.time + st.Float64()*100)
			}
			if drained%7 == 0 {
				push(eh.time) // equal to the just-popped time
			}
			if drained > 20000 {
				break // bounded: interleaved pushes would drain forever
			}
		}
	}
}

// TestAgendaGoldenInvariance asserts AgendaHeap and AgendaLadder produce
// byte-identical Results on the seed-determinism configs — both must match
// the pinned golden fingerprints, proving the agenda kind is invisible to
// every measurement.
func TestAgendaGoldenInvariance(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"plain", Config{Horizon: 20, Warmup: 2, Seed: 7}, 0x4af579b7b3270177},
		{"buffered", Config{Horizon: 20, Warmup: 2, Seed: 7, BufferSize: 2}, 0x7c13b08e2cdb0988},
		{"lognormal", Config{Horizon: 15, Warmup: 1, Seed: 3, ServiceDist: ServiceLogNormal}, 0xb81fe93896fa901a},
	}
	for _, kind := range []AgendaKind{AgendaHeap, AgendaLadder} {
		for _, tc := range cases {
			t.Run(kind.String()+"/"+tc.name, func(t *testing.T) {
				cfg := tc.cfg
				cfg.Agenda = kind
				res := defaultWorkloadRun(t, cfg)
				if res.Agenda != kind {
					t.Errorf("Results.Agenda = %v, want %v", res.Agenda, kind)
				}
				if got := fingerprintResults(res); got != tc.want {
					t.Errorf("%v fingerprint = %#x, want golden %#x", kind, got, tc.want)
				}
			})
		}
	}
}

// TestParseAgendaKind covers the flag-value round trip and the error text
// listing the valid spellings.
func TestParseAgendaKind(t *testing.T) {
	for _, k := range []AgendaKind{AgendaAuto, AgendaHeap, AgendaLadder} {
		got, err := ParseAgendaKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseAgendaKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseAgendaKind("bogus"); err == nil {
		t.Fatal("ParseAgendaKind(bogus) succeeded")
	} else if msg := err.Error(); !strings.Contains(msg, "auto|heap|ladder") {
		t.Errorf("error %q does not list valid values", msg)
	}
}

// TestAgendaAutoResolution pins the auto heuristic: small runs stay on the
// heap, runs past the expected-event threshold move to the ladder, and an
// explicit kind always wins.
func TestAgendaAutoResolution(t *testing.T) {
	small := Config{Horizon: 20, Warmup: 2, Seed: 7}
	if res := defaultWorkloadRun(t, small); res.Agenda != AgendaHeap {
		t.Errorf("small auto run resolved to %v, want heap", res.Agenda)
	}
	forced := Config{Horizon: 20, Warmup: 2, Seed: 7, Agenda: AgendaLadder}
	if res := defaultWorkloadRun(t, forced); res.Agenda != AgendaLadder {
		t.Errorf("forced ladder run resolved to %v", res.Agenda)
	}
	if _, err := Run(Config{Horizon: 1, Agenda: AgendaKind(99)}); err == nil {
		t.Error("invalid agenda kind accepted")
	}
}
