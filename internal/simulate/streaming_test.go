package simulate

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/workload"
)

// sliceCursor replays a materialized arrival slice through the TraceSource
// interface — the minimal in-memory streamed counterpart of Config.Trace.
type sliceCursor struct {
	arrivals []workload.Arrival
	i        int
}

func (c *sliceCursor) NextArrival() (float64, model.RequestID, bool) {
	if c.i >= len(c.arrivals) {
		return 0, "", false
	}
	a := c.arrivals[c.i]
	c.i++
	return a.Time, a.Request, true
}

func (c *sliceCursor) Err() error { return nil }

// streamFixture solves the default generated workload and samples a trace —
// the shared fixture of the streamed-vs-materialized differentials.
func streamFixture(t *testing.T) (*model.Problem, *model.Schedule, *workload.Trace) {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 11
	wcfg.NumRequests = 60
	p, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateTrace(p, 20, workload.InterArrivalExponential, 21)
	if err != nil {
		t.Fatal(err)
	}
	return p, sched, tr
}

// TestStreamReplayMatchesMaterialized pins the tentpole identity: replaying a
// trace through the streaming cursor is bit-identical to materializing it
// into Config.Trace, under both agenda backends.
func TestStreamReplayMatchesMaterialized(t *testing.T) {
	p, sched, tr := streamFixture(t)
	for _, kind := range []AgendaKind{AgendaHeap, AgendaLadder} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			base := Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7, Agenda: kind}
			mat := base
			mat.Trace = tr
			resM, err := Run(mat)
			if err != nil {
				t.Fatal(err)
			}
			str := base
			str.TraceStream = &sliceCursor{arrivals: tr.Arrivals}
			resS, err := Run(str)
			if err != nil {
				t.Fatal(err)
			}
			if fm, fs := fingerprintResults(resM), fingerprintResults(resS); fm != fs {
				t.Errorf("streamed replay fingerprint %#x != materialized %#x", fs, fm)
			}
			if resM.Generated != resS.Generated {
				t.Errorf("generated: streamed %d != materialized %d", resS.Generated, resM.Generated)
			}
		})
	}
}

// TestStreamReplayFromCSV closes the loop through the file format: a CSV
// written by the trace is replayed via workload.TraceStream and must match
// the materialized run bit for bit.
func TestStreamReplayFromCSV(t *testing.T) {
	p, sched, tr := streamFixture(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	ts, err := workload.NewTraceStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7}
	mat := base
	mat.Trace = tr
	resM, err := Run(mat)
	if err != nil {
		t.Fatal(err)
	}
	str := base
	str.TraceStream = ts
	resS, err := Run(str)
	if err != nil {
		t.Fatal(err)
	}
	if fm, fs := fingerprintResults(resM), fingerprintResults(resS); fm != fs {
		t.Errorf("CSV-streamed fingerprint %#x != materialized %#x", fs, fm)
	}
}

// TestExplicitSourcesMatchGolden pins the second identity: the flat-Poisson
// default routed through the ArrivalSource interface — here spelled out as
// explicit workload.PoissonSource overrides on the very streams the simulator
// derives itself — reproduces the historical golden fingerprint bit for bit.
func TestExplicitSourcesMatchGolden(t *testing.T) {
	const goldenPlain = 0x4af579b7b3270177
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 11
	p, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7}
	srcs := make(map[model.RequestID]ArrivalSource, len(p.Requests))
	for _, r := range p.Requests {
		srcs[r.ID] = workload.NewPoisson(r.Rate, rng.Derive(cfg.Seed, "arrivals/"+string(r.ID)))
	}
	cfg.Sources = srcs
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintResults(res); got != goldenPlain {
		t.Errorf("explicit-sources fingerprint %#x != golden %#x", got, goldenPlain)
	}
}

// syntheticCursor produces n evenly spaced arrivals of one request without
// materializing anything — the O(1)-memory feed of the scale test.
type syntheticCursor struct {
	n  int
	dt float64
	id model.RequestID
	i  int
}

func (c *syntheticCursor) NextArrival() (float64, model.RequestID, bool) {
	if c.i >= c.n {
		return 0, "", false
	}
	c.i++
	return float64(c.i) * c.dt, c.id, true
}

func (c *syntheticCursor) Err() error { return nil }

// TestStreamPendingEventsConstant is the acceptance-scale check: a streamed
// replay of 1M arrivals stages exactly one arrival event at t=0 — the live
// cursor count, not the arrival count — and still generates every packet.
func TestStreamPendingEventsConstant(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-arrival replay")
	}
	const n = 1_000_000
	prob, sched := singleQueueProblem(50, 40000, 1)
	cur := &syntheticCursor{n: n, dt: 30.0 / n, id: prob.Requests[0].ID}
	sim := NewSimulator()
	cfg := Config{Problem: prob, Schedule: sched, Horizon: 60, Warmup: 0, Seed: 5,
		TraceStream: cur, ExpectedArrivals: n}
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if got := sim.PendingEvents(); got != 1 {
		t.Fatalf("streamed pending events at t=0 = %d, want 1 (one live cursor)", got)
	}
	res, err := sim.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != n {
		t.Fatalf("generated %d of %d streamed arrivals", res.Generated, n)
	}

	// Materialized contrast: the same replay through Config.Trace stages
	// every arrival up front.
	const small = 1000
	tr := &workload.Trace{Horizon: 30}
	for i := 1; i <= small; i++ {
		tr.Arrivals = append(tr.Arrivals, workload.Arrival{Time: float64(i) * 30.0 / small, Request: prob.Requests[0].ID})
	}
	simM := NewSimulator()
	if err := simM.Reset(Config{Problem: prob, Schedule: sched, Horizon: 60, Seed: 5, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if got := simM.PendingEvents(); got != small {
		t.Fatalf("materialized pending events at t=0 = %d, want %d (every arrival staged)", got, small)
	}
}

// errCursor yields a decreasing timestamp pair.
type errCursor struct{ i int }

func (c *errCursor) NextArrival() (float64, model.RequestID, bool) {
	c.i++
	switch c.i {
	case 1:
		return 5, "r", true
	case 2:
		return 1, "r", true
	}
	return 0, "", false
}

func (c *errCursor) Err() error { return nil }

// TestStreamOutOfOrderFails asserts a cursor that goes backwards in time
// aborts the run with an error instead of silently reordering arrivals.
func TestStreamOutOfOrderFails(t *testing.T) {
	prob, sched := singleQueueProblem(50, 150, 1)
	_, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 60, Seed: 5,
		TraceStream: &errCursor{}})
	if err == nil {
		t.Fatal("out-of-order stream accepted")
	}
}

// TestStreamConfigValidation covers the new mutual-exclusion and hint rules.
func TestStreamConfigValidation(t *testing.T) {
	prob, sched := singleQueueProblem(50, 150, 1)
	tr, err := workload.GenerateTrace(prob, 5, workload.InterArrivalExponential, 1)
	if err != nil {
		t.Fatal(err)
	}
	cur := func() TraceSource { return &sliceCursor{arrivals: tr.Arrivals} }
	srcs := map[model.RequestID]ArrivalSource{
		prob.Requests[0].ID: workload.NewPoisson(50, rng.Derive(1, "x")),
	}
	cases := map[string]Config{
		"trace+stream":      {Problem: prob, Schedule: sched, Horizon: 5, Trace: tr, TraceStream: cur()},
		"sources+trace":     {Problem: prob, Schedule: sched, Horizon: 5, Trace: tr, Sources: srcs},
		"sources+stream":    {Problem: prob, Schedule: sched, Horizon: 5, TraceStream: cur(), Sources: srcs},
		"negative-expected": {Problem: prob, Schedule: sched, Horizon: 5, ExpectedArrivals: -1},
	}
	for name, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

// TestExpectedArrivalsHint pins the agenda-sizing satellite: with the hint
// set, expectedEvents scales the per-arrival event cost by the hinted count
// instead of the offered-rate estimate, and without it the historical
// rate-based formula is untouched.
func TestExpectedArrivalsHint(t *testing.T) {
	prob, sched := singleQueueProblem(50, 150, 1)
	base := Config{Problem: prob, Schedule: sched, Horizon: 100}
	withoutHint := base.expectedEvents()
	if withoutHint <= 0 {
		t.Fatalf("rate-based estimate %v not positive", withoutHint)
	}
	hinted := base
	hinted.ExpectedArrivals = 1_000_000
	withHint := hinted.expectedEvents()
	// 1M arrivals vs 50 pps * 100 s = 5000: the hint must scale the estimate
	// by the arrival ratio (each arrival costs the same event multiple).
	ratio := withHint / withoutHint
	want := 1_000_000.0 / 5000.0
	if ratio < 0.99*want || ratio > 1.01*want {
		t.Errorf("hinted/unhinted event estimate ratio %v, want ~%v", ratio, want)
	}
}
