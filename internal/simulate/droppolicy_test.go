package simulate

import (
	"testing"
)

// TestDropDiscardConservation pins the ledger of the historical policy:
// every generated packet is delivered, permanently dropped, or in flight.
func TestDropDiscardConservation(t *testing.T) {
	prob, sched := singleQueueProblem(150, 100, 1)
	res, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 100, BufferSize: 2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected drops")
	}
	if got := res.Delivered + res.Dropped + res.InFlight; got != res.Generated {
		t.Errorf("delivered %d + dropped %d + in-flight %d = %d, want generated %d",
			res.Delivered, res.Dropped, res.InFlight, got, res.Generated)
	}
	if res.DropRetransmits != 0 {
		t.Errorf("DropDiscard recorded %d drop retransmits", res.DropRetransmits)
	}
	key := InstanceKey{VNF: "f", Instance: 0}
	if res.DroppedByInstance[key] != res.Dropped {
		t.Errorf("per-instance drops %d, want all %d at the single instance",
			res.DroppedByInstance[key], res.Dropped)
	}
}

// TestDropRetransmitConservesPackets checks the NACK loss-feedback policy:
// drops trigger source re-injection, so no packet is ever silently lost —
// Generated = Delivered + InFlight exactly, even under heavy overload.
func TestDropRetransmitConservesPackets(t *testing.T) {
	prob, sched := singleQueueProblem(150, 100, 1)
	res, err := Run(Config{
		Problem: prob, Schedule: sched, Horizon: 100, BufferSize: 2, Seed: 19,
		DropPolicy: DropRetransmit, RetransmitDelay: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("expected drops")
	}
	if res.DropRetransmits != res.Dropped {
		t.Errorf("drop retransmits %d != drops %d: every drop must re-inject",
			res.DropRetransmits, res.Dropped)
	}
	if got := res.Delivered + res.InFlight; got != res.Generated {
		t.Errorf("delivered %d + in-flight %d = %d, want generated %d (packets leaked)",
			res.Delivered, res.InFlight, got, res.Generated)
	}
}

// TestDropRetransmitStableSystem: with feedback on a stable queue and ample
// buffer, retried packets still get through, and measured latencies include
// the retry passes (so they can only grow vs. discard).
func TestDropRetransmitStableSystem(t *testing.T) {
	prob, sched := singleQueueProblem(80, 100, 1)
	discard, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 500, Warmup: 50,
		BufferSize: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	retry, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 500, Warmup: 50,
		BufferSize: 3, Seed: 5, DropPolicy: DropRetransmit, RetransmitDelay: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if discard.Dropped == 0 || retry.Dropped == 0 {
		t.Fatalf("expected drops under both policies (got %d / %d)", discard.Dropped, retry.Dropped)
	}
	// Retransmission re-offers load, so the retry run sees at least as many
	// deliveries as discard minus the permanently lost ones.
	if retry.Delivered+retry.InFlight != retry.Generated {
		t.Errorf("retry run leaked packets: %d + %d != %d",
			retry.Delivered, retry.InFlight, retry.Generated)
	}
	if retry.Latency.Mean() <= 0 {
		t.Error("retry run measured no latency")
	}
}

// TestDropRetransmitValidation: an instantaneous retry would livelock the
// event loop on a full first-stage buffer, so Run must refuse it.
func TestDropRetransmitValidation(t *testing.T) {
	prob, sched := singleQueueProblem(10, 100, 1)
	if _, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 1,
		DropPolicy: DropRetransmit}); err == nil {
		t.Error("DropRetransmit with zero RetransmitDelay accepted")
	}
	if _, err := Run(Config{Problem: prob, Schedule: sched, Horizon: 1,
		DropPolicy: DropPolicy(42)}); err == nil {
		t.Error("unknown drop policy accepted")
	}
}
