package simulate

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/scheduling"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// tinyProblem builds a small fixed instance: two nodes, two VNFs, three
// chained requests, sized so a BufferSize-1 run produces drops (populating
// the per-instance maps) without generating an unwieldy sample set.
func tinyProblem(t *testing.T) (*model.Problem, *model.Schedule, *model.Placement) {
	t.Helper()
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 10},
			{ID: "n2", Capacity: 10},
		},
		VNFs: []model.VNF{
			{ID: "fw", Instances: 2, Demand: 1, ServiceRate: 40},
			{ID: "nat", Instances: 1, Demand: 1, ServiceRate: 30},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"fw", "nat"}, Rate: 6, DeliveryProb: 0.95},
			{ID: "r2", Chain: []model.VNFID{"fw"}, Rate: 8, DeliveryProb: 0.98},
			{ID: "r3", Chain: []model.VNFID{"nat", "fw"}, Rate: 4, DeliveryProb: 0.9},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	pl := model.NewPlacement()
	pl.Assign("fw", "n1")
	pl.Assign("nat", "n2")
	return p, sched, pl
}

// tinyResults runs the tiny fixture deterministically.
func tinyResults(t *testing.T) *Results {
	t.Helper()
	p, sched, pl := tinyProblem(t)
	res, err := Run(Config{
		Problem:    p,
		Schedule:   sched,
		Placement:  pl,
		Horizon:    10,
		Warmup:     1,
		LinkDelay:  0.001,
		BufferSize: 1,
		Seed:       7,
		FaultPlan: &FaultPlan{Outages: []Outage{
			{Node: "n2", DownAt: 4, UpAt: 5},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// encodeResults renders res through WriteJSON.
func encodeResults(t *testing.T, res *Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResultsJSONGolden pins the wire encoding to a committed fixture:
// field renames, ordering changes, or float drift all break this test.
// Regenerate intentionally with `go test ./internal/simulate -run Golden -update`.
func TestResultsJSONGolden(t *testing.T) {
	got := encodeResults(t, tinyResults(t))
	path := filepath.Join("testdata", "results.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("results JSON drifted from golden %s (len %d vs %d); rerun with -update only for intentional format changes",
			path, len(got), len(want))
	}
}

// TestResultsJSONRoundTrip asserts decode(encode(res)) preserves every field
// and that re-encoding yields byte-identical JSON (the stable-encoding
// property the service result cache relies on).
func TestResultsJSONRoundTrip(t *testing.T) {
	res := tinyResults(t)
	first := encodeResults(t, res)
	back, err := ReadResultsJSON(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second := encodeResults(t, back)
	if !bytes.Equal(first, second) {
		t.Error("re-encoded results differ from the original encoding")
	}
	if back.Generated != res.Generated || back.Delivered != res.Delivered ||
		back.Dropped != res.Dropped || back.InFlight != res.InFlight ||
		back.FailureDrops != res.FailureDrops || back.Agenda != res.Agenda {
		t.Errorf("scalar counters drifted: got %+v", back)
	}
	if back.Latency != res.Latency {
		t.Errorf("latency summary drifted: %v vs %v", back.Latency, res.Latency)
	}
	if !reflect.DeepEqual(back.Utilization, res.Utilization) {
		t.Errorf("utilization map drifted")
	}
	if !reflect.DeepEqual(back.DroppedByInstance, res.DroppedByInstance) {
		t.Errorf("dropped-by-instance map drifted")
	}
	if !reflect.DeepEqual(back.Downtime, res.Downtime) {
		t.Errorf("downtime map drifted")
	}
	if !reflect.DeepEqual(back.PerRequest, res.PerRequest) {
		t.Errorf("per-request summaries drifted")
	}
	if !reflect.DeepEqual(back.PerInstance, res.PerInstance) {
		t.Errorf("per-instance summaries drifted")
	}
	if len(back.LatencySamples) != len(res.LatencySamples) {
		t.Fatalf("sample count drifted: %d vs %d", len(back.LatencySamples), len(res.LatencySamples))
	}
	for i := range back.LatencySamples {
		if back.LatencySamples[i] != res.LatencySamples[i] {
			t.Fatalf("sample %d drifted: %v vs %v", i, back.LatencySamples[i], res.LatencySamples[i])
		}
	}
}

// TestReadResultsJSONStrict rejects unknown fields and bad agenda spellings.
func TestReadResultsJSONStrict(t *testing.T) {
	if _, err := ReadResultsJSON(strings.NewReader(`{"horizon": 1, "bogus": 2}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadResultsJSON(strings.NewReader(`{"horizon": 1, "agenda": "calendar"}`)); err == nil {
		t.Error("unknown agenda kind accepted")
	}
	if _, err := ReadResultsJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
