package simulate

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nfvchain/internal/model"
	"nfvchain/internal/stats"
)

// resultsJSON is the stable wire form of a Results. Instance-keyed maps are
// flattened into slices sorted by (vnf, instance) — struct map keys have no
// JSON spelling — and string-keyed maps rely on encoding/json's sorted-key
// output, so encoding the same Results always yields the same bytes (the
// property the service result cache and the golden fixture depend on).
type resultsJSON struct {
	Horizon float64 `json:"horizon"`
	Warmup  float64 `json:"warmup"`
	Agenda  string  `json:"agenda"`

	Generated      int           `json:"generated"`
	Delivered      int           `json:"delivered"`
	Latency        stats.Summary `json:"latency"`
	LatencySamples []float64     `json:"latencySamples,omitempty"`

	Retransmissions   int                 `json:"retransmissions"`
	Dropped           int                 `json:"dropped"`
	DroppedByInstance []instanceCountJSON `json:"droppedByInstance,omitempty"`
	DropRetransmits   int                 `json:"dropRetransmits"`
	InFlight          int                 `json:"inFlight"`
	// Shed is omitted when zero so control-free results keep the historical
	// byte encoding (the golden fixture and result cache pin it).
	Shed int `json:"shed,omitempty"`

	FailureDrops           int                 `json:"failureDrops"`
	FailureDropsByInstance []instanceCountJSON `json:"failureDropsByInstance,omitempty"`
	FailRetransmits        int                 `json:"failRetransmits"`
	Downtime               map[string]float64  `json:"downtime,omitempty"`

	Availability float64 `json:"availability"`

	Utilization []instanceValueJSON       `json:"utilization,omitempty"`
	MeanJobs    []instanceValueJSON       `json:"meanJobs,omitempty"`
	PerRequest  map[string]*stats.Summary `json:"perRequest,omitempty"`
	PerInstance []instanceSummaryJSON     `json:"perInstance,omitempty"`
}

// instanceCountJSON flattens one map[InstanceKey]int entry.
type instanceCountJSON struct {
	VNF      model.VNFID `json:"vnf"`
	Instance int         `json:"instance"`
	Count    int         `json:"count"`
}

// instanceValueJSON flattens one map[InstanceKey]float64 entry.
type instanceValueJSON struct {
	VNF      model.VNFID `json:"vnf"`
	Instance int         `json:"instance"`
	Value    float64     `json:"value"`
}

// instanceSummaryJSON flattens one map[InstanceKey]*stats.Summary entry.
type instanceSummaryJSON struct {
	VNF      model.VNFID   `json:"vnf"`
	Instance int           `json:"instance"`
	Summary  stats.Summary `json:"summary"`
}

// sortedKeys returns the map's instance keys ordered by (vnf, instance).
func sortedKeys[T any](m map[InstanceKey]T) []InstanceKey {
	keys := make([]InstanceKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].VNF != keys[j].VNF {
			return keys[i].VNF < keys[j].VNF
		}
		return keys[i].Instance < keys[j].Instance
	})
	return keys
}

func flattenCounts(m map[InstanceKey]int) []instanceCountJSON {
	if len(m) == 0 {
		return nil
	}
	out := make([]instanceCountJSON, 0, len(m))
	for _, k := range sortedKeys(m) {
		out = append(out, instanceCountJSON{VNF: k.VNF, Instance: k.Instance, Count: m[k]})
	}
	return out
}

func flattenValues(m map[InstanceKey]float64) []instanceValueJSON {
	if len(m) == 0 {
		return nil
	}
	out := make([]instanceValueJSON, 0, len(m))
	for _, k := range sortedKeys(m) {
		out = append(out, instanceValueJSON{VNF: k.VNF, Instance: k.Instance, Value: m[k]})
	}
	return out
}

func flattenSummaries(m map[InstanceKey]*stats.Summary) []instanceSummaryJSON {
	if len(m) == 0 {
		return nil
	}
	out := make([]instanceSummaryJSON, 0, len(m))
	for _, k := range sortedKeys(m) {
		out = append(out, instanceSummaryJSON{VNF: k.VNF, Instance: k.Instance, Summary: *m[k]})
	}
	return out
}

// WriteJSON serializes the results as indented JSON in a stable encoding:
// identical Results always produce identical bytes.
func (r *Results) WriteJSON(w io.Writer) error {
	raw := resultsJSON{
		Horizon:                r.Horizon,
		Warmup:                 r.Warmup,
		Agenda:                 r.Agenda.String(),
		Generated:              r.Generated,
		Delivered:              r.Delivered,
		Latency:                r.Latency,
		LatencySamples:         r.LatencySamples,
		Retransmissions:        r.Retransmissions,
		Dropped:                r.Dropped,
		DroppedByInstance:      flattenCounts(r.DroppedByInstance),
		DropRetransmits:        r.DropRetransmits,
		InFlight:               r.InFlight,
		Shed:                   r.Shed,
		FailureDrops:           r.FailureDrops,
		FailureDropsByInstance: flattenCounts(r.FailureDropsByInstance),
		FailRetransmits:        r.FailRetransmits,
		Availability:           r.Availability,
		Utilization:            flattenValues(r.Utilization),
		MeanJobs:               flattenValues(r.MeanJobs),
		PerInstance:            flattenSummaries(r.PerInstance),
	}
	if len(r.Downtime) > 0 {
		raw.Downtime = make(map[string]float64, len(r.Downtime))
		for n, dt := range r.Downtime {
			raw.Downtime[string(n)] = dt
		}
	}
	if len(r.PerRequest) > 0 {
		raw.PerRequest = make(map[string]*stats.Summary, len(r.PerRequest))
		for id, sum := range r.PerRequest {
			raw.PerRequest[string(id)] = sum
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(raw); err != nil {
		return fmt.Errorf("simulate: encode results: %w", err)
	}
	return nil
}

// ReadResultsJSON parses results written by WriteJSON. Unknown fields are
// rejected so wire-format drift fails loudly. The returned Results is
// independently owned (maps are always non-nil, mirroring a fresh Run).
func ReadResultsJSON(r io.Reader) (*Results, error) {
	var raw resultsJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("simulate: decode results: %w", err)
	}
	agenda, err := ParseAgendaKind(raw.Agenda)
	if err != nil {
		return nil, fmt.Errorf("simulate: decode results: %w", err)
	}
	out := &Results{
		Horizon:                raw.Horizon,
		Warmup:                 raw.Warmup,
		Agenda:                 agenda,
		Generated:              raw.Generated,
		Delivered:              raw.Delivered,
		Latency:                raw.Latency,
		LatencySamples:         raw.LatencySamples,
		Retransmissions:        raw.Retransmissions,
		Dropped:                raw.Dropped,
		DroppedByInstance:      make(map[InstanceKey]int, len(raw.DroppedByInstance)),
		DropRetransmits:        raw.DropRetransmits,
		InFlight:               raw.InFlight,
		Shed:                   raw.Shed,
		FailureDrops:           raw.FailureDrops,
		FailureDropsByInstance: make(map[InstanceKey]int, len(raw.FailureDropsByInstance)),
		FailRetransmits:        raw.FailRetransmits,
		Downtime:               make(map[model.NodeID]float64, len(raw.Downtime)),
		Availability:           raw.Availability,
		Utilization:            make(map[InstanceKey]float64, len(raw.Utilization)),
		MeanJobs:               make(map[InstanceKey]float64, len(raw.MeanJobs)),
		PerRequest:             make(map[model.RequestID]*stats.Summary, len(raw.PerRequest)),
		PerInstance:            make(map[InstanceKey]*stats.Summary, len(raw.PerInstance)),
	}
	for _, e := range raw.DroppedByInstance {
		out.DroppedByInstance[InstanceKey{VNF: e.VNF, Instance: e.Instance}] = e.Count
	}
	for _, e := range raw.FailureDropsByInstance {
		out.FailureDropsByInstance[InstanceKey{VNF: e.VNF, Instance: e.Instance}] = e.Count
	}
	for n, dt := range raw.Downtime {
		out.Downtime[model.NodeID(n)] = dt
	}
	for _, e := range raw.Utilization {
		out.Utilization[InstanceKey{VNF: e.VNF, Instance: e.Instance}] = e.Value
	}
	for _, e := range raw.MeanJobs {
		out.MeanJobs[InstanceKey{VNF: e.VNF, Instance: e.Instance}] = e.Value
	}
	for id, sum := range raw.PerRequest {
		out.PerRequest[model.RequestID(id)] = sum
	}
	for _, e := range raw.PerInstance {
		sum := new(stats.Summary)
		*sum = e.Summary
		out.PerInstance[InstanceKey{VNF: e.VNF, Instance: e.Instance}] = sum
	}
	return out, nil
}
