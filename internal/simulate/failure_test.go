package simulate

import (
	"math"
	"testing"

	"nfvchain/internal/model"
)

// faultProblem is one request through a two-stage chain whose VNFs sit on
// different nodes, so a single-node failure takes out exactly one stage.
func faultProblem(lambda, mu float64) (*model.Problem, *model.Schedule, *model.Placement) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "a", Capacity: 100}, {ID: "b", Capacity: 100}},
		VNFs: []model.VNF{
			{ID: "f", Instances: 1, Demand: 1, ServiceRate: mu},
			{ID: "g", Instances: 1, Demand: 1, ServiceRate: mu},
		},
		Requests: []model.Request{{ID: "r", Chain: []model.VNFID{"f", "g"}, Rate: lambda, DeliveryProb: 1}},
	}
	sched := model.NewSchedule()
	sched.Assign("r", "f", 0)
	sched.Assign("r", "g", 0)
	pl := model.NewPlacement()
	pl.Assign("f", "a")
	pl.Assign("g", "b")
	return prob, sched, pl
}

// checkConservation asserts the packet ledger balances: every admitted packet
// is delivered, still in flight, or permanently lost to the one sink each
// policy combination allows.
func checkConservation(t *testing.T, cfg Config, res *Results) {
	t.Helper()
	lost := 0
	if cfg.DropPolicy == DropDiscard {
		lost += res.Dropped
	}
	lost += res.FailureDrops // only non-zero under FailDrop
	if got := res.Delivered + res.InFlight + lost; got != res.Generated {
		t.Errorf("conservation violated: delivered %d + inflight %d + lost %d = %d, want generated %d",
			res.Delivered, res.InFlight, lost, got, res.Generated)
	}
	if cfg.FailurePolicy == FailRetransmit && res.FailureDrops != 0 {
		t.Errorf("FailRetransmit lost %d packets to failures", res.FailureDrops)
	}
}

// TestFailureConservationAllPolicies sweeps every (DropPolicy, FailurePolicy)
// combination over several seeds under random faults plus a scheduled outage
// and asserts the conservation invariant — no goldens, pure property.
func TestFailureConservationAllPolicies(t *testing.T) {
	prob, sched, pl := faultProblem(40, 60)
	for _, dp := range []DropPolicy{DropDiscard, DropRetransmit} {
		for _, fp := range []FailurePolicy{FailDrop, FailRetransmit} {
			for seed := uint64(1); seed <= 6; seed++ {
				cfg := Config{
					Problem:         prob,
					Schedule:        sched,
					Placement:       pl,
					Horizon:         25,
					LinkDelay:       0.002,
					BufferSize:      4,
					DropPolicy:      dp,
					FailurePolicy:   fp,
					RetransmitDelay: 0.01,
					FaultPlan: &FaultPlan{
						MTBF:    4,
						MTTR:    1,
						Outages: []Outage{{Node: "b", DownAt: 10, UpAt: 12}},
					},
					Seed: seed,
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("drop=%d fail=%d seed=%d: %v", dp, fp, seed, err)
				}
				if res.Generated == 0 {
					t.Fatalf("drop=%d fail=%d seed=%d: no traffic generated", dp, fp, seed)
				}
				checkConservation(t, cfg, res)
			}
		}
	}
}

// TestScheduledOutageDeterministic pins the semantics of a deterministic
// outage: exact downtime accounting, failure drops only on the failed node's
// instance, and availability strictly below a fault-free run.
func TestScheduledOutageDeterministic(t *testing.T) {
	prob, sched, pl := faultProblem(50, 200)
	cfg := Config{
		Problem:   prob,
		Schedule:  sched,
		Placement: pl,
		Horizon:   10,
		Seed:      5,
		FaultPlan: &FaultPlan{Outages: []Outage{{Node: "a", DownAt: 2, UpAt: 4}}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Downtime["a"]; got != 2 {
		t.Errorf("downtime[a] = %v, want exactly 2", got)
	}
	if _, ok := res.Downtime["b"]; ok {
		t.Error("node b never failed but has downtime")
	}
	if res.FailureDrops == 0 {
		t.Error("outage during traffic produced no failure drops")
	}
	fKey := InstanceKey{VNF: "f", Instance: 0}
	if res.FailureDropsByInstance[fKey] == 0 {
		t.Error("failed instance f/0 recorded no failure drops")
	}
	total := 0
	for _, n := range res.FailureDropsByInstance {
		total += n
	}
	if total != res.FailureDrops {
		t.Errorf("per-instance failure drops sum %d != total %d", total, res.FailureDrops)
	}
	checkConservation(t, cfg, res)

	base, err := Run(Config{Problem: prob, Schedule: sched, Placement: pl, Horizon: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability >= base.Availability {
		t.Errorf("availability with outage %v not below fault-free %v", res.Availability, base.Availability)
	}
	if base.FailureDrops != 0 || len(base.Downtime) != 0 {
		t.Error("fault-free run reported failure drops or downtime")
	}
}

// TestOverlappingOutagesMergeDowntime asserts overlapping down intervals are
// merged, not double-counted, and intervals open at the horizon are clipped.
func TestOverlappingOutagesMergeDowntime(t *testing.T) {
	prob, sched, pl := faultProblem(10, 100)
	res, err := Run(Config{
		Problem:   prob,
		Schedule:  sched,
		Placement: pl,
		Horizon:   10,
		Seed:      1,
		FaultPlan: &FaultPlan{Outages: []Outage{
			{Node: "a", DownAt: 1, UpAt: 3},
			{Node: "a", DownAt: 2, UpAt: 5},
			{Node: "a", DownAt: 9, UpAt: 99}, // still open at the horizon
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Downtime["a"]; got != 5 {
		t.Errorf("downtime[a] = %v, want 5 (merged [1,5] plus clipped [9,10])", got)
	}
}

// TestFailRetransmitRecoversPackets asserts the NACK path survives an outage
// with zero permanent loss: every packet alive at the failure is re-injected
// and eventually delivered or still in flight.
func TestFailRetransmitRecoversPackets(t *testing.T) {
	prob, sched, pl := faultProblem(50, 200)
	cfg := Config{
		Problem:         prob,
		Schedule:        sched,
		Placement:       pl,
		Horizon:         10,
		Seed:            5,
		FailurePolicy:   FailRetransmit,
		RetransmitDelay: 0.02,
		FaultPlan:       &FaultPlan{Outages: []Outage{{Node: "a", DownAt: 2, UpAt: 4}}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailRetransmits == 0 {
		t.Error("outage under FailRetransmit triggered no retransmissions")
	}
	if res.FailureDrops != 0 {
		t.Errorf("FailRetransmit permanently lost %d packets", res.FailureDrops)
	}
	checkConservation(t, cfg, res)
	// Retries during the outage bounce off the down node and re-inject, so
	// retransmissions far exceed the packets caught at the failure instant.
	if res.FailRetransmits < res.FailureDrops {
		t.Errorf("retransmit accounting inconsistent: %d", res.FailRetransmits)
	}
}

// replaceHook is a minimal self-healing FaultHook: when node a dies it boots
// a replacement instance of f on node b after a fixed setup cost and reroutes
// the request to it.
type replaceHook struct {
	t     *testing.T
	setup float64
	done  bool
}

func (h *replaceHook) NodeDown(now float64, node model.NodeID, ctrl *RepairControl) {
	if h.done || node != "a" {
		return
	}
	h.done = true
	k, err := ctrl.AddInstance("f", "b", now+h.setup)
	if err != nil {
		h.t.Fatalf("AddInstance: %v", err)
	}
	if err := ctrl.Reassign("r", "f", k); err != nil {
		h.t.Fatalf("Reassign: %v", err)
	}
	if ctrl.Now() != now {
		h.t.Errorf("RepairControl.Now() = %v, want %v", ctrl.Now(), now)
	}
	if ctrl.NodeIsUp("a") {
		h.t.Error("node a reported up inside its NodeDown hook")
	}
	if !ctrl.NodeIsUp("b") {
		h.t.Error("node b reported down")
	}
}

func (h *replaceHook) NodeUp(now float64, node model.NodeID, ctrl *RepairControl) {}

// TestFaultHookReplacementImprovesAvailability runs the same long outage with
// and without a replacement hook: booting a substitute instance on the
// surviving node must strictly raise availability at the same seed.
func TestFaultHookReplacementImprovesAvailability(t *testing.T) {
	prob, sched, pl := faultProblem(50, 200)
	outage := &FaultPlan{Outages: []Outage{{Node: "a", DownAt: 2, UpAt: 9}}}
	base := Config{
		Problem:   prob,
		Schedule:  sched,
		Placement: pl,
		Horizon:   10,
		Seed:      5,
		FaultPlan: outage,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	healed := base
	healed.FaultHook = &replaceHook{t: t, setup: 0.1}
	repaired, err := Run(healed)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Generated != plain.Generated {
		t.Fatalf("arrival stream diverged: %d vs %d generated", repaired.Generated, plain.Generated)
	}
	if repaired.Availability <= plain.Availability {
		t.Errorf("replacement hook availability %v not above unrepaired %v",
			repaired.Availability, plain.Availability)
	}
	if repaired.FailureDrops >= plain.FailureDrops {
		t.Errorf("replacement hook failure drops %d not below unrepaired %d",
			repaired.FailureDrops, plain.FailureDrops)
	}
	// The replacement instance must have served packets.
	served := false
	for k := range repaired.Utilization {
		if k.VNF == "f" && k.Instance >= 1 && repaired.Utilization[k] > 0 {
			served = true
		}
	}
	if !served {
		t.Error("replacement instance of f never served")
	}
	checkConservation(t, healed, repaired)
}

// TestFaultConfigValidation covers the fault-specific rejection paths.
func TestFaultConfigValidation(t *testing.T) {
	prob, sched, pl := faultProblem(10, 100)
	base := func() Config {
		return Config{Problem: prob, Schedule: sched, Placement: pl, Horizon: 1}
	}
	cases := map[string]func(*Config){
		"nan mtbf":       func(c *Config) { c.FaultPlan = &FaultPlan{MTBF: math.NaN(), MTTR: 1} },
		"negative mtbf":  func(c *Config) { c.FaultPlan = &FaultPlan{MTBF: -1, MTTR: 1} },
		"nan mttr":       func(c *Config) { c.FaultPlan = &FaultPlan{MTBF: 1, MTTR: math.NaN()} },
		"zero mttr":      func(c *Config) { c.FaultPlan = &FaultPlan{MTBF: 1} },
		"inf mttr":       func(c *Config) { c.FaultPlan = &FaultPlan{MTBF: 1, MTTR: math.Inf(1)} },
		"unknown node":   func(c *Config) { c.FaultPlan = &FaultPlan{Outages: []Outage{{Node: "ghost", DownAt: 1, UpAt: 2}}} },
		"negative down":  func(c *Config) { c.FaultPlan = &FaultPlan{Outages: []Outage{{Node: "a", DownAt: -1, UpAt: 2}}} },
		"nan down":       func(c *Config) { c.FaultPlan = &FaultPlan{Outages: []Outage{{Node: "a", DownAt: math.NaN(), UpAt: 2}}} },
		"up before down": func(c *Config) { c.FaultPlan = &FaultPlan{Outages: []Outage{{Node: "a", DownAt: 2, UpAt: 2}}} },
		"nan up":         func(c *Config) { c.FaultPlan = &FaultPlan{Outages: []Outage{{Node: "a", DownAt: 1, UpAt: math.NaN()}}} },
		"no placement":   func(c *Config) { c.Placement = nil; c.FaultPlan = &FaultPlan{MTBF: 1, MTTR: 1} },
		"bad policy":     func(c *Config) { c.FailurePolicy = FailurePolicy(99) },
		"retransmit delay 0": func(c *Config) {
			c.FaultPlan = &FaultPlan{MTBF: 1, MTTR: 1}
			c.FailurePolicy = FailRetransmit
		},
		"retransmit delay nan": func(c *Config) {
			c.FaultPlan = &FaultPlan{MTBF: 1, MTTR: 1}
			c.FailurePolicy = FailRetransmit
			c.RetransmitDelay = math.NaN()
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := base()
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid fault config accepted")
			}
		})
	}
	// Infinite MTBF disables random faults and must be accepted without MTTR.
	cfg := base()
	cfg.FaultPlan = &FaultPlan{MTBF: math.Inf(1)}
	if _, err := Run(cfg); err != nil {
		t.Errorf("infinite MTBF rejected: %v", err)
	}
}

// TestFaultStateDoesNotLeakAcrossReset runs a heavily faulted config and then
// a fault-free golden-style config on the same Simulator, asserting the
// second run is bit-identical to a fresh one.
func TestFaultStateDoesNotLeakAcrossReset(t *testing.T) {
	prob, sched, pl := faultProblem(40, 60)
	faulted := Config{
		Problem:         prob,
		Schedule:        sched,
		Placement:       pl,
		Horizon:         15,
		FailurePolicy:   FailRetransmit,
		RetransmitDelay: 0.01,
		FaultPlan:       &FaultPlan{MTBF: 3, MTTR: 1},
		Seed:            9,
	}
	clean := Config{Problem: prob, Schedule: sched, Placement: pl, Horizon: 15, Seed: 9}

	var sim Simulator
	if err := sim.Reset(faulted); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Reset(clean); err != nil {
		t.Fatal(err)
	}
	reused, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprintResults(reused), fingerprintResults(fresh); got != want {
		t.Errorf("fault state leaked across Reset: fingerprint %#x != fresh %#x", got, want)
	}
	if reused.FailureDrops != 0 || reused.FailRetransmits != 0 || len(reused.Downtime) != 0 {
		t.Error("fault counters leaked into a fault-free run")
	}
}

// TestRandomFaultsDeterministic asserts the random fault chain is a pure
// function of the seed: identical configs produce identical results, and the
// fault sample path is independent of the failure policy (packet handling
// changes; node up/down times must not).
func TestRandomFaultsDeterministic(t *testing.T) {
	prob, sched, pl := faultProblem(40, 60)
	cfg := Config{
		Problem:   prob,
		Schedule:  sched,
		Placement: pl,
		Horizon:   20,
		FaultPlan: &FaultPlan{MTBF: 3, MTTR: 1},
		Seed:      4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintResults(a) != fingerprintResults(b) {
		t.Error("identical faulted configs diverged")
	}
	retr := cfg
	retr.FailurePolicy = FailRetransmit
	retr.RetransmitDelay = 0.01
	c, err := Run(retr)
	if err != nil {
		t.Fatal(err)
	}
	for n, dt := range a.Downtime {
		if c.Downtime[n] != dt {
			t.Errorf("node %s downtime %v under FailDrop vs %v under FailRetransmit — fault stream not isolated", n, dt, c.Downtime[n])
		}
	}
	if len(a.Downtime) == 0 {
		t.Fatal("MTBF=3 over horizon 20 produced no downtime — fixture too weak")
	}
}
