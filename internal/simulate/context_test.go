package simulate

import (
	"context"
	"errors"
	"testing"
	"time"

	"nfvchain/internal/scheduling"
	"nfvchain/internal/workload"
)

// defaultWorkloadRunWith mirrors defaultWorkloadRun but executes the run
// through the supplied runner, for exercising RunContext paths.
func defaultWorkloadRunWith(t *testing.T, cfg Config, run func(Config) (*Results, error)) (*Results, error) {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 11
	p, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Problem = p
	cfg.Schedule = sched
	return run(cfg)
}

// TestRunContextBackgroundIdentical asserts the ctx-polling loop leaves the
// event stream untouched: a background-context run is bit-identical to Run.
func TestRunContextBackgroundIdentical(t *testing.T) {
	cfg := Config{Horizon: 20, Warmup: 2, Seed: 7, BufferSize: 2}
	direct := defaultWorkloadRun(t, cfg)
	want := fingerprintResults(direct)
	ctxRes, err := defaultWorkloadRunWith(t, cfg, func(c Config) (*Results, error) {
		return RunContext(context.Background(), c)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintResults(ctxRes); got != want {
		t.Errorf("RunContext(Background) fingerprint %#x != Run fingerprint %#x", got, want)
	}
}

// TestRunContextCancelled asserts a pre-cancelled context aborts the run
// with ctx.Err() and a nil Results.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := defaultWorkloadRunWith(t, Config{Horizon: 50, Warmup: 1, Seed: 7},
		func(c Config) (*Results, error) { return RunContext(ctx, c) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned non-nil Results")
	}
}

// TestRunContextCancelMidRun cancels a long run from another goroutine and
// asserts it aborts promptly (within one ctx-check interval of events)
// instead of simulating the full horizon.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// Uncancelled, this horizon takes minutes of wall clock.
	_, err := defaultWorkloadRunWith(t, Config{Horizon: 1e6, Warmup: 1, Seed: 7},
		func(c Config) (*Results, error) { return RunContext(ctx, c) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestSimulatorRunContextNeedsReset asserts the reusable API still demands a
// Reset before each RunContext.
func TestSimulatorRunContextNeedsReset(t *testing.T) {
	var sim Simulator
	if _, err := sim.RunContext(context.Background()); err == nil {
		t.Error("RunContext without Reset succeeded")
	}
}
