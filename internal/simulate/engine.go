// Package simulate is a packet-level discrete-event simulator for placed and
// scheduled VNF chains. It is the trace-driven counterpart of the analytic
// queueing model: Poisson (or trace-fed) packet arrivals per request, FCFS
// exponential service at every service instance, inter-node link latency
// from the placement, NACK-style loss feedback with source retransmission,
// and optional finite buffers with per-instance drop accounting (discard or
// NACK-style drop retransmission, see DropPolicy). Comparing its empirical
// latencies against Eq. 12 validates the open-Jackson-network model end to
// end.
//
// The event loop is allocation-lean: events and packets are recycled
// through free lists on the simulation, each instance's waiting room is a
// ring buffer, and the latency-sample slice is pre-sized from the offered
// load, so steady-state simulation performs no per-packet allocation.
package simulate

import "container/heap"

// eventKind discriminates scheduler events.
type eventKind int

const (
	evArrival eventKind = iota + 1 // packet arrives at a stage's instance
	evService                      // instance finishes its packet
	evSource                       // next external arrival of a request
)

// event is one scheduled occurrence. seq breaks time ties deterministically.
type event struct {
	time float64
	seq  uint64
	kind eventKind

	pkt      *packet // evArrival, evService payload
	inst     *instance
	reqIndex int // evSource payload
}

// eventHeap is a min-heap on (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// agenda wraps the heap with sequence numbering.
type agenda struct {
	h   eventHeap
	seq uint64
}

func newAgenda() *agenda {
	// Pre-size the backing array: the outstanding-event population is one
	// source event per request plus one service event per busy instance
	// plus in-flight hops, which fits comfortably here for typical runs;
	// larger runs amortize growth as usual.
	a := &agenda{h: make(eventHeap, 0, 256)}
	heap.Init(&a.h)
	return a
}

func (a *agenda) push(e *event) {
	a.seq++
	e.seq = a.seq
	heap.Push(&a.h, e)
}

func (a *agenda) pop() *event {
	if len(a.h) == 0 {
		return nil
	}
	return heap.Pop(&a.h).(*event)
}

func (a *agenda) empty() bool { return len(a.h) == 0 }
