// Package simulate is a packet-level discrete-event simulator for placed and
// scheduled VNF chains. It is the trace-driven counterpart of the analytic
// queueing model: Poisson (or trace-fed) packet arrivals per request, FCFS
// exponential service at every service instance, inter-node link latency
// from the placement, NACK-style loss feedback with source retransmission,
// and optional finite buffers with per-instance drop accounting (discard or
// NACK-style drop retransmission, see DropPolicy).  Comparing its empirical
// latencies against Eq. 12 validates the open-Jackson-network model end to
// end.
//
// A FaultPlan additionally injects node failures (random MTBF/MTTR chains
// and/or scheduled outages): a failed node takes every instance on it out of
// service, packets caught there follow the FailurePolicy (crash loss or
// NACK-style source retransmission), and a FaultHook can repair the run mid-
// flight — rerouting requests to survivors and booting replacement instances
// — which is how internal/repair implements self-healing.
//
// The event loop is allocation-free in steady state and built for raw CPU
// speed: the agenda (see AgendaKind) is either a value-typed implicit 4-ary
// min-heap of 32-byte events or an O(1)-amortized ladder queue, fronted by a
// due-now FIFO that lets the dominant zero-delay stage transitions bypass
// the priority queue entirely; packets live in a flat arena indexed by int32
// and are recycled through a free list, each instance's waiting room is a
// ring buffer of packet indices, and the latency-sample slice is pre-sized
// from the offered load.  A Simulator can additionally be Reset and re-Run
// so sweeps reuse every backing array across trials.
package simulate

import (
	"fmt"
	"math"
)

// eventKind discriminates scheduler events.
type eventKind int32

const (
	evArrival       eventKind = iota + 1 // packet arrives at a stage's instance
	evService                            // instance finishes its packet
	evSource                             // next external arrival of a request
	evNodeDown                           // a node (and every instance on it) fails
	evNodeUp                             // a node returns to service
	evInstanceReady                      // a replacement instance finishes booting
	evControlTick                        // periodic controller tick (Config.Control)
	evPreempt                            // a correlated-preemption group goes down
	evPreemptNotice                      // advance notice ahead of a preemption
	evStream                             // next streamed-trace arrival (Config.TraceStream)
)

// event is one scheduled occurrence. seq breaks time ties deterministically.
// It is a 32-byte value: the agenda stores events inline, so pushing and
// popping never touches the allocator and comparisons never go through an
// interface. pkt and inst index the simulation's packet arena and instance
// table (-1 when unused). reqIndex is overloaded per kind: the request index
// for evSource, the service epoch for evService (stale completions of a
// failed instance are dropped by epoch mismatch), and the random-fault-chain
// flag for evNodeDown/evNodeUp; for node events inst is the node index.
type event struct {
	time     float64
	seq      uint64
	kind     eventKind
	reqIndex int32 // evSource payload
	pkt      int32 // evArrival payload (packet arena index)
	inst     int32 // evArrival, evService payload (instance table index)
}

// eventBefore is the agenda's total order. seq is unique per push, so every
// correct priority-queue representation pops the exact same event sequence —
// which is why AgendaHeap and AgendaLadder are interchangeable bit-for-bit
// (the seed-determinism goldens pin that).
func eventBefore(a, b *event) bool {
	return a.time < b.time || (a.time == b.time && a.seq < b.seq)
}

// AgendaKind selects the pending-event priority queue backing the simulator.
// All kinds pop events in the identical (time, seq) total order, so results
// are bit-identical across kinds; the choice is purely about speed.
type AgendaKind int

// Supported agenda kinds.
const (
	// AgendaAuto (the zero value) picks the backend from the expected event
	// count: the 4-ary heap for small runs, the ladder queue once the run is
	// large enough for O(1)-amortized operations to beat the heap's cache-hot
	// sift (see agendaAutoThreshold).
	AgendaAuto AgendaKind = iota
	// AgendaHeap is the value-typed implicit 4-ary min-heap — the reference
	// implementation: ~O(log n) per operation but with a short, cache-friendly
	// sift that wins on small pending-event populations.
	AgendaHeap
	// AgendaLadder is the ladder queue (calendar-queue family): a lazily
	// bucketed multi-rung structure with an unsorted top and a small sorted
	// bottom, O(1) amortized insert and pop regardless of population.
	AgendaLadder
)

// agendaAutoThreshold is the expected-event count above which AgendaAuto
// selects the ladder queue up front. The threshold is deliberately high:
// with the lazy-hole optimization the heap's sift is so cheap that the
// ladder only reaches parity around ~10k simultaneously pending events
// (measured on the wide-fleet workload), and expected TOTAL events overstate
// the pending population by orders of magnitude on steady-state queueing
// runs. The ladder's O(1)-amortized bound is insurance for extreme backlogs
// — and because the static estimate cannot see the actual backlog, an
// AgendaAuto agenda ALSO watches the live pending population and migrates
// heap→ladder at runtime when it crosses agendaAdaptivePending.
const agendaAutoThreshold = 1 << 24

// agendaAdaptivePending is the observed pending-event population at which an
// adaptive (AgendaAuto) agenda migrates from the heap to the ladder mid-run.
// It sits above the measured ~10k crossover so the migration only fires when
// the ladder is clearly ahead; migration preserves every event's (time, seq)
// stamp, so the pop order — and therefore every Result — is bit-identical to
// a run that never switched.
const agendaAdaptivePending = 1 << 14

// String returns the flag spelling of the kind.
func (k AgendaKind) String() string {
	switch k {
	case AgendaAuto:
		return "auto"
	case AgendaHeap:
		return "heap"
	case AgendaLadder:
		return "ladder"
	default:
		return fmt.Sprintf("AgendaKind(%d)", int(k))
	}
}

// ParseAgendaKind parses an -agenda flag value.
func ParseAgendaKind(s string) (AgendaKind, error) {
	switch s {
	case "auto":
		return AgendaAuto, nil
	case "heap":
		return AgendaHeap, nil
	case "ladder":
		return AgendaLadder, nil
	default:
		return 0, fmt.Errorf("simulate: unknown agenda kind %q (want auto|heap|ladder)", s)
	}
}

// agenda is the simulator's pending-event queue: a seq-stamping wrapper over
// one of the priority-queue backends, fronted by a due-now FIFO.
//
// The FIFO exploits the dominant event pattern of the DES: a finished packet
// advancing to a co-located stage is pushed with time exactly equal to the
// current simulated time. Such an event can only be preceded by other events
// with the same time and a smaller sequence number, so appending it to a
// FIFO and comparing the FIFO head against the backend minimum on pop
// preserves the exact (time, seq) pop order while skipping the backend
// entirely — an O(1) append and an O(1) pop for roughly half of all events.
//
// Invariants: every event in now[nhead:] has time == nowTime and the
// segment is in ascending seq order (appends carry the globally increasing
// seq). nowTime is the time of the last event popped while the FIFO was
// empty; it is poisoned to NaN — matching no push — in the one ordering
// where a backend event with a different time overtakes a non-empty FIFO,
// which never happens in the simulator (events are never scheduled in the
// past) but keeps the wrapper correct as a general priority queue. backMin
// and backSeq mirror the backend head's key exactly (+Inf/0 when empty):
// pushes can only lower backMin (a pushed event always carries the largest
// seq, so it never wins a time tie against the resident head) and backend
// pops refresh both — which is what lets the dominant FIFO pop decide the
// race against the backend with two scalar compares and no backend call.
type agenda struct {
	seq      uint64
	n        int        // live event count across FIFO + backend (see size)
	kind     AgendaKind // resolved backend: AgendaHeap or AgendaLadder
	adaptive bool       // AgendaAuto run: may migrate heap→ladder at runtime
	now      []event    // due-now FIFO
	nhead    int
	nowTime  float64
	backMin  float64 // backend head time, +Inf when the backend is empty
	backSeq  uint64  // backend head seq
	heap     heapAgenda
	ladder   ladderAgenda
}

// reset empties the agenda for kind, retaining every backing array. adaptive
// marks an AgendaAuto run, allowing a runtime heap→ladder migration once the
// pending population crosses agendaAdaptivePending.
func (a *agenda) reset(kind AgendaKind, adaptive bool) {
	a.seq = 0
	a.n = 0
	a.kind = kind
	a.adaptive = adaptive && kind == AgendaHeap
	a.now = a.now[:0]
	a.nhead = 0
	a.nowTime = math.NaN()
	a.backMin = math.Inf(1)
	a.backSeq = 0
	a.heap.reset()
	a.ladder.reset()
}

// push stamps e with the next sequence number and enqueues it.
func (a *agenda) push(e event) {
	a.seq++
	a.n++
	e.seq = a.seq
	if e.time == a.nowTime {
		a.now = append(a.now, e)
		return
	}
	if e.time < a.backMin {
		a.backMin, a.backSeq = e.time, e.seq
	}
	if a.kind == AgendaLadder {
		a.ladder.push(e)
		return
	}
	a.heap.push(e)
	if a.adaptive && len(a.heap.events) >= agendaAdaptivePending {
		a.migrateToLadder()
	}
}

// pushStamped enqueues an event that already carries its (time, seq) stamp —
// the streamed-trace replay path. A materialized trace replay pushes every
// arrival at seed time, so trace arrivals hold the lowest sequence numbers
// and win every time tie against in-run events; streamed replay reproduces
// that exact pop order by stamping each trace row with its row index from a
// band below the regular counter (see streamSeqBase). The event bypasses the
// due-now FIFO — its low seq would violate the FIFO's ascending-seq
// invariant — and goes straight to the backend, whose pop tie-break against
// the FIFO is exact. Unlike push, the cached head key update must be
// tie-aware: a stamped event can win a time tie against the resident head.
func (a *agenda) pushStamped(e event) {
	a.n++
	if e.time < a.backMin || (e.time == a.backMin && e.seq < a.backSeq) {
		a.backMin, a.backSeq = e.time, e.seq
	}
	if a.kind == AgendaLadder {
		a.ladder.push(e)
		return
	}
	a.heap.push(e)
	if a.adaptive && len(a.heap.events) >= agendaAdaptivePending {
		a.migrateToLadder()
	}
}

// startSeqAt raises the regular sequence counter so that all subsequently
// pushed events stamp above base, reserving [1, base] for pushStamped.
// Sequence values are unobservable — only the relative pop order matters —
// so this cannot perturb a run that never calls pushStamped.
func (a *agenda) startSeqAt(base uint64) {
	if a.seq < base {
		a.seq = base
	}
}

// size returns the number of pending events (FIFO + backend). On a streamed
// run this stays O(live packets + arrival sources) regardless of how many
// trace rows the cursor will eventually deliver — the observable behind the
// constant-memory replay guarantee.
func (a *agenda) size() int {
	return a.n
}

// migrateToLadder moves every pending heap event into the ladder and flips
// the backend — the adaptive AgendaAuto escape hatch for runs whose actual
// backlog dwarfs the static estimate. Seq stamps are preserved, so the pop
// sequence (the only observable) is identical to never having switched; the
// cached head key stays valid because the event set is unchanged.
func (a *agenda) migrateToLadder() {
	a.heap.fill() // discard any holed (already-popped) root first
	for _, e := range a.heap.events {
		a.ladder.push(e)
	}
	a.heap.reset()
	a.kind = AgendaLadder
	a.adaptive = false
}

// unpop returns e — the most recently popped event, still the global
// minimum — to the backend with its original (time, seq) stamp intact. The
// cluster scheduler uses this to reinsert a peeked event when a cross-
// datacenter injection must run first. e re-enters the backend rather than
// the FIFO (its seq predates the FIFO's remaining entries, which the pop
// tie-break resolves through the exact-peek path), and the cached head key
// is simply e's own: e precedes everything else pending.
func (a *agenda) unpop(e event) {
	a.n++
	if a.kind == AgendaLadder {
		a.ladder.unpop(e)
	} else {
		a.heap.push(e)
	}
	a.backMin, a.backSeq = e.time, e.seq
}

// pop removes and returns the minimum event; ok is false when empty.
//
// The heap path is pop-as-hole: popping only marks the root as removed, and
// the hole is filled by whatever comes next — a push replaces the root and
// sifts down once (so the steady pop/push cycle of the DES pays a single
// sift-down per event, with no sift-up and no append), or a later pop
// finishes the deferred removal first. The heap's arrangement after a
// replace differs from a pop-then-push arrangement, but (time, seq) is a
// total order, so the pop sequence — the only observable — is identical.
//
// While the root is holed the new backend minimum is unknown, so backMin
// demotes from exact to a lower bound (the popped key). The FIFO fast path
// stays sound — a FIFO head strictly below a lower bound is certainly below
// the real head — and the rare tie falls through to an exact peek, which
// fills the hole and re-tightens the bound.
func (a *agenda) pop() (event, bool) {
	if a.nhead < len(a.now) {
		f := &a.now[a.nhead]
		if f.time < a.backMin || (f.time == a.backMin && f.seq < a.backSeq) {
			e := *f
			a.nhead++
			if a.nhead == len(a.now) {
				a.now = a.now[:0]
				a.nhead = 0
			}
			a.n--
			return e, true
		}
		// The bound says the backend head may precede the FIFO's: resolve
		// exactly. peek fills any hole, making the head (and bound) exact.
		var b *event
		if a.kind == AgendaLadder {
			b = a.ladder.peek()
		} else {
			b = a.heap.peek()
		}
		if b == nil || eventBefore(f, b) {
			if b != nil {
				a.backMin, a.backSeq = b.time, b.seq
			} else {
				a.backMin, a.backSeq = math.Inf(1), 0
			}
			e := *f
			a.nhead++
			if a.nhead == len(a.now) {
				a.now = a.now[:0]
				a.nhead = 0
			}
			a.n--
			return e, true
		}
		// Backend first: pop it. If its time differs from the FIFO's,
		// poison nowTime so later pushes cannot break the FIFO's time
		// homogeneity.
		e, _ := a.popBackend()
		if e.time != a.nowTime {
			a.nowTime = math.NaN()
		}
		a.n--
		return e, true
	}
	if a.kind == AgendaLadder {
		l := &a.ladder
		// Bottom-run fast path: while at least two sorted events remain,
		// pop (a truncation off the descending array's end) and read the
		// next head without the popOK/head call pair (each of which
		// re-walks ensureBottom).
		if n := len(l.bottom); n >= 2 {
			e := l.bottom[n-1]
			l.bottom = l.bottom[:n-1]
			nxt := &l.bottom[n-2]
			a.backMin, a.backSeq = nxt.time, nxt.seq
			a.nowTime = e.time
			a.n--
			return e, true
		}
		e, ok := l.popOK()
		if ok {
			a.backMin, a.backSeq = l.head()
			a.nowTime = e.time
			a.n--
		}
		return e, ok
	}
	h := &a.heap
	if h.holed {
		h.fill()
	}
	if len(h.events) == 0 {
		return event{}, false
	}
	top := h.events[0]
	h.holed = true
	a.backMin, a.backSeq = top.time, top.seq
	a.nowTime = top.time
	a.n--
	return top, true
}

// popBackend removes the backend minimum and refreshes the cached head key.
func (a *agenda) popBackend() (event, bool) {
	if a.kind == AgendaLadder {
		e, ok := a.ladder.popOK()
		a.backMin, a.backSeq = a.ladder.head()
		return e, ok
	}
	e, ok := a.heap.popOK()
	a.backMin, a.backSeq = a.heap.head()
	return e, ok
}

func (a *agenda) empty() bool {
	if a.nhead < len(a.now) {
		return false
	}
	if a.kind == AgendaLadder {
		return a.ladder.peek() == nil
	}
	n := len(a.heap.events)
	if a.heap.holed {
		n--
	}
	return n == 0
}

// fifoEmpty reports whether the due-now FIFO is drained. While it is, an
// event pushed at the current time is guaranteed (up to measure-zero time
// ties against future-scheduled events) to be the very next pop, so the
// simulator may dispatch its handler directly instead of round-tripping
// the event through the agenda.
func (a *agenda) fifoEmpty() bool {
	return a.nhead >= len(a.now)
}

// heapAgenda is a value-typed implicit 4-ary min-heap on (time, seq).
//
// A 4-ary layout halves the tree depth of the binary heap: sift-down does
// one comparison chain over four children per level, which trades a few
// comparisons for far fewer cache lines touched, a net win on event
// populations that fit L1/L2.
//
// holed marks a deferred removal: the root has been popped (the agenda
// returned events[0] to the caller) but the slot still holds the stale
// value. The next push fills the hole by sifting the new event down from
// the root — one sift-down instead of a sift-down plus a sift-up — and
// every other entry point (peek, pop, popOK, head) calls fill first.
type heapAgenda struct {
	events []event
	holed  bool
}

// reset empties the heap, retaining its backing array for the next run.
func (h *heapAgenda) reset() {
	h.events = h.events[:0]
	h.holed = false
}

// fill finishes a deferred root removal: the last element is moved into the
// hole and sifted down.
func (h *heapAgenda) fill() {
	if !h.holed {
		return
	}
	h.holed = false
	n := len(h.events) - 1
	last := h.events[n]
	h.events = h.events[:n]
	if n > 0 {
		h.siftDownRoot(last)
	}
}

// peek returns the minimum event without removing it, nil when empty. The
// pointer is invalidated by the next push or pop.
func (h *heapAgenda) peek() *event {
	h.fill()
	if len(h.events) == 0 {
		return nil
	}
	return &h.events[0]
}

// popOK removes and returns the minimum event; ok is false when empty.
func (h *heapAgenda) popOK() (event, bool) {
	h.fill()
	if len(h.events) == 0 {
		return event{}, false
	}
	return h.pop(), true
}

// head returns the minimum event's (time, seq) key, (+Inf, 0) when empty.
func (h *heapAgenda) head() (float64, uint64) {
	h.fill()
	if len(h.events) == 0 {
		return math.Inf(1), 0
	}
	return h.events[0].time, h.events[0].seq
}

// push inserts the (already seq-stamped) event: into a pending root hole
// with one sift-down when there is one, otherwise appended and sifted up.
func (h *heapAgenda) push(e event) {
	if h.holed {
		h.holed = false
		h.siftDownRoot(e)
		return
	}
	h.events = append(h.events, e)
	// Sift up: 4-ary parent of i is (i-1)/4.
	i := len(h.events) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := &h.events[parent]
		if p.time < e.time || (p.time == e.time && p.seq < e.seq) {
			break
		}
		h.events[i] = *p
		i = parent
	}
	h.events[i] = e
}

// siftDownRoot writes e into the (vacant) root slot, sinking it to its
// heap position. len(h.events) >= 1.
func (h *heapAgenda) siftDownRoot(e event) {
	ev := h.events
	n := len(ev)
	// Sift down: children of i are 4i+1 … 4i+4.
	i := 0
	for {
		child := i<<2 + 1
		if child >= n {
			break
		}
		// Select the minimum of up to four children.
		end := child + 4
		if end > n {
			end = n
		}
		m := child
		mt, ms := ev[child].time, ev[child].seq
		for c := child + 1; c < end; c++ {
			ct, cs := ev[c].time, ev[c].seq
			if ct < mt || (ct == mt && cs < ms) {
				m, mt, ms = c, ct, cs
			}
		}
		if e.time < mt || (e.time == mt && e.seq < ms) {
			break
		}
		ev[i] = ev[m]
		i = m
	}
	ev[i] = e
}

// pop removes and returns the minimum event; the caller checks non-empty
// and that no hole is pending (fill).
func (h *heapAgenda) pop() event {
	n := len(h.events)
	top := h.events[0]
	last := h.events[n-1]
	h.events = h.events[:n-1]
	if n > 1 {
		h.siftDownRoot(last)
	}
	return top
}
