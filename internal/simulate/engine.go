// Package simulate is a packet-level discrete-event simulator for placed and
// scheduled VNF chains. It is the trace-driven counterpart of the analytic
// queueing model: Poisson (or trace-fed) packet arrivals per request, FCFS
// exponential service at every service instance, inter-node link latency
// from the placement, NACK-style loss feedback with source retransmission,
// and optional finite buffers with per-instance drop accounting (discard or
// NACK-style drop retransmission, see DropPolicy).  Comparing its empirical
// latencies against Eq. 12 validates the open-Jackson-network model end to
// end.
//
// A FaultPlan additionally injects node failures (random MTBF/MTTR chains
// and/or scheduled outages): a failed node takes every instance on it out of
// service, packets caught there follow the FailurePolicy (crash loss or
// NACK-style source retransmission), and a FaultHook can repair the run mid-
// flight — rerouting requests to survivors and booting replacement instances
// — which is how internal/repair implements self-healing.
//
// The event loop is allocation-free in steady state and built for raw CPU
// speed: the agenda is a value-typed implicit 4-ary min-heap of 32-byte
// events (no container/heap interface boxing, no per-event pointer), packets
// live in a flat arena indexed by int32 and are recycled through a free
// list, each instance's waiting room is a ring buffer of packet indices, and
// the latency-sample slice is pre-sized from the offered load.  A Simulator
// can additionally be Reset and re-Run so sweeps reuse every backing array
// across trials.
package simulate

// eventKind discriminates scheduler events.
type eventKind int32

const (
	evArrival       eventKind = iota + 1 // packet arrives at a stage's instance
	evService                            // instance finishes its packet
	evSource                             // next external arrival of a request
	evNodeDown                           // a node (and every instance on it) fails
	evNodeUp                             // a node returns to service
	evInstanceReady                      // a replacement instance finishes booting
)

// event is one scheduled occurrence. seq breaks time ties deterministically.
// It is a 32-byte value: the agenda stores events inline, so pushing and
// popping never touches the allocator and comparisons never go through an
// interface. pkt and inst index the simulation's packet arena and instance
// table (-1 when unused). reqIndex is overloaded per kind: the request index
// for evSource, the service epoch for evService (stale completions of a
// failed instance are dropped by epoch mismatch), and the random-fault-chain
// flag for evNodeDown/evNodeUp; for node events inst is the node index.
type event struct {
	time     float64
	seq      uint64
	kind     eventKind
	reqIndex int32 // evSource payload
	pkt      int32 // evArrival payload (packet arena index)
	inst     int32 // evArrival, evService payload (instance table index)
}

// agenda is a value-typed implicit 4-ary min-heap on (time, seq).
//
// Because (time, seq) is a total order — seq is unique per push — every
// correct priority-queue representation pops the exact same event sequence,
// so swapping the binary container/heap for this layout is stream-preserving
// by construction (the seed-determinism goldens pin that). A 4-ary layout
// halves the tree depth of the binary heap: sift-down does one comparison
// chain over four children per level, which trades a few comparisons for far
// fewer cache lines touched, a net win on event populations that fit L1/L2.
type agenda struct {
	events []event
	seq    uint64
}

// reset empties the agenda, retaining its backing array for the next run.
func (a *agenda) reset() {
	a.events = a.events[:0]
	a.seq = 0
}

// push stamps e with the next sequence number and sifts it up.
func (a *agenda) push(e event) {
	a.seq++
	e.seq = a.seq
	a.events = append(a.events, e)
	// Sift up: 4-ary parent of i is (i-1)/4.
	i := len(a.events) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := &a.events[parent]
		if p.time < e.time || (p.time == e.time && p.seq < e.seq) {
			break
		}
		a.events[i] = *p
		i = parent
	}
	a.events[i] = e
}

// pop removes and returns the minimum event; ok is false when empty.
func (a *agenda) pop() (event, bool) {
	n := len(a.events)
	if n == 0 {
		return event{}, false
	}
	top := a.events[0]
	last := a.events[n-1]
	a.events = a.events[:n-1]
	n--
	if n == 0 {
		return top, true
	}
	// Sift down: children of i are 4i+1 … 4i+4.
	i := 0
	for {
		child := i<<2 + 1
		if child >= n {
			break
		}
		// Select the minimum of up to four children.
		end := child + 4
		if end > n {
			end = n
		}
		m := child
		mt, ms := a.events[child].time, a.events[child].seq
		for c := child + 1; c < end; c++ {
			ct, cs := a.events[c].time, a.events[c].seq
			if ct < mt || (ct == mt && cs < ms) {
				m, mt, ms = c, ct, cs
			}
		}
		if last.time < mt || (last.time == mt && last.seq < ms) {
			break
		}
		a.events[i] = a.events[m]
		i = m
	}
	a.events[i] = last
	return top, true
}

func (a *agenda) empty() bool { return len(a.events) == 0 }
