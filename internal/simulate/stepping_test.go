package simulate

import (
	"math"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/workload"
)

// steppingFixture builds the default-workload problem and RCKK schedule the
// stepping tests run against.
func steppingFixture(t *testing.T) (*model.Problem, *model.Schedule) {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 11
	p, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	return p, sched
}

// TestSteppingDifferential asserts that the manual drive loop
//
//	for sim.HasPendingEvents() { sim.ProcessNextEvent() }
//	sim.Finalize()
//
// is bit-identical to Run under every AgendaKind — the contract the
// ClusterSimulator composition rests on.
func TestSteppingDifferential(t *testing.T) {
	p, sched := steppingFixture(t)
	for _, kind := range []AgendaKind{AgendaAuto, AgendaHeap, AgendaLadder} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7, Agenda: kind}
			want, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var sim Simulator
			if err := sim.Reset(cfg); err != nil {
				t.Fatal(err)
			}
			steps := 0
			lastT := 0.0
			for sim.HasPendingEvents() {
				if pt := sim.PeekNextEventTime(); pt < lastT {
					t.Fatalf("step %d: peeked time %v went backwards (last %v)", steps, pt, lastT)
				} else {
					lastT = pt
				}
				if !sim.ProcessNextEvent() {
					t.Fatalf("step %d: HasPendingEvents true but ProcessNextEvent refused", steps)
				}
				steps++
			}
			if sim.ProcessNextEvent() {
				t.Fatal("ProcessNextEvent advanced past a drained agenda")
			}
			if pt := sim.PeekNextEventTime(); !math.IsInf(pt, 1) {
				t.Fatalf("drained PeekNextEventTime = %v, want +Inf", pt)
			}
			got, err := sim.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			if steps == 0 {
				t.Fatal("stepped run processed no events")
			}
			if fg, fw := fingerprintResults(got), fingerprintResults(want); fg != fw {
				t.Errorf("stepped run fingerprint %#x != Run fingerprint %#x", fg, fw)
			}
			if _, err := sim.Finalize(); err == nil {
				t.Error("second Finalize without Reset succeeded")
			}
		})
	}
}

// TestDrainUntilDifferential drives a full run as a sequence of DrainUntil
// windows — unbounded and chunked — and asserts bit-identity with Run: the
// batch-step primitive the windowed cluster driver drains datacenters with
// must process exactly the events an event-at-a-time loop would.
func TestDrainUntilDifferential(t *testing.T) {
	p, sched := steppingFixture(t)
	cfg := Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxPerCall := range []int{0, 7} {
		var sim Simulator
		if err := sim.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		total := 0
		for barrier := 0.5; sim.HasPendingEvents(); barrier += 0.5 {
			for {
				n := sim.DrainUntil(barrier, maxPerCall)
				total += n
				if maxPerCall <= 0 || n < maxPerCall {
					break
				}
			}
			// Inclusive barrier: nothing at or before it may remain pending.
			if pt := sim.PeekNextEventTime(); pt <= barrier {
				t.Fatalf("max=%d: event at %v still pending after DrainUntil(%v)", maxPerCall, pt, barrier)
			}
		}
		if total == 0 {
			t.Fatalf("max=%d: drained no events", maxPerCall)
		}
		got, err := sim.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if fg, fw := fingerprintResults(got), fingerprintResults(want); fg != fw {
			t.Errorf("max=%d: drained run fingerprint %#x != Run fingerprint %#x", maxPerCall, fg, fw)
		}
	}
}

// TestDrainUntilBounds covers DrainUntil's edges: the max cap is honored, a
// barrier before the first event drains nothing, draining past the horizon
// clamps to it, and an unready simulator reports zero.
func TestDrainUntilBounds(t *testing.T) {
	p, sched := steppingFixture(t)
	cfg := Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7}
	var sim Simulator
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	first := sim.PeekNextEventTime()
	if n := sim.DrainUntil(first/2, 0); n != 0 {
		t.Errorf("DrainUntil before the first event drained %d events", n)
	}
	if n := sim.DrainUntil(20, 3); n != 3 {
		t.Errorf("DrainUntil(max=3) drained %d events, want exactly 3", n)
	}
	if n := sim.DrainUntil(math.Inf(1), 0); n == 0 {
		t.Error("DrainUntil(+Inf) drained nothing on a pending simulator")
	}
	if sim.HasPendingEvents() {
		t.Error("events pending after draining to +Inf (horizon clamp failed)")
	}
	if _, err := sim.Finalize(); err != nil {
		t.Fatal(err)
	}
	var unready Simulator
	if n := unready.DrainUntil(10, 0); n != 0 {
		t.Errorf("unready DrainUntil drained %d events", n)
	}
}

// TestSteppingMixedWithRun steps part of a run manually and finishes it with
// RunContext — both halves must compose into the exact Run result.
func TestSteppingMixedWithRun(t *testing.T) {
	p, sched := steppingFixture(t)
	cfg := Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sim Simulator
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000 && sim.HasPendingEvents(); i++ {
		sim.ProcessNextEvent()
	}
	got, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fg, fw := fingerprintResults(got), fingerprintResults(want); fg != fw {
		t.Errorf("mixed step+Run fingerprint %#x != Run fingerprint %#x", fg, fw)
	}
}

// TestInjectMatchesTrace replays the same arrival set two ways — as a Trace,
// and via InjectOnly + Inject calls before the run — and asserts bit-
// identical results: injection is just another way of supplying external
// arrivals.
func TestInjectMatchesTrace(t *testing.T) {
	p, sched := steppingFixture(t)
	trace, err := workload.GenerateTrace(p, 20, workload.InterArrivalExponential, 99)
	if err != nil {
		t.Fatal(err)
	}
	target := p.Requests[0].ID
	cfg := Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7, Trace: trace}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.InjectOnly = []model.RequestID{target}
	var sim Simulator
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	injected := 0
	for _, a := range trace.Arrivals {
		if a.Request != target {
			continue
		}
		ok, err := sim.Inject(a.Time, a.Time, a.Request)
		if err != nil {
			t.Fatal(err)
		}
		if a.Time < 20 != ok {
			t.Fatalf("Inject at %v admitted=%v, want %v", a.Time, ok, a.Time < 20)
		}
		if ok {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("trace contains no arrivals for the injected request")
	}
	got, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fg, fw := fingerprintResults(got), fingerprintResults(want); fg != fw {
		t.Errorf("injected run fingerprint %#x != trace run fingerprint %#x", fg, fw)
	}
}

// TestInjectValidation covers Inject's error and truncation contract.
func TestInjectValidation(t *testing.T) {
	p, sched := steppingFixture(t)
	cfg := Config{Problem: p, Schedule: sched, Horizon: 10, Warmup: 1, Seed: 7}
	for _, r := range p.Requests {
		cfg.InjectOnly = append(cfg.InjectOnly, r.ID)
	}
	var sim Simulator
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	id := p.Requests[0].ID
	if _, err := sim.Inject(1, 1, "no-such-request"); err == nil {
		t.Error("Inject of unknown request succeeded")
	}
	if _, err := sim.Inject(1, 2, id); err == nil {
		t.Error("Inject with birth after arrival succeeded")
	}
	if ok, err := sim.Inject(10, 10, id); err != nil || ok {
		t.Errorf("Inject at horizon = (%v, %v), want rejected without error", ok, err)
	}
	if ok, err := sim.Inject(0.5, 0.25, id); err != nil || !ok {
		t.Fatalf("Inject = (%v, %v), want admitted", ok, err)
	}
	if !sim.CanServe(id) {
		t.Error("CanServe(scheduled request) = false")
	}
	if sim.CanServe("no-such-request") {
		t.Error("CanServe(unknown request) = true")
	}
	// Drain; the injected packet's latency is measured from birth 0.25.
	midRunInjected := false
	for sim.HasPendingEvents() {
		// Exercise one mid-run injection at a legal (current-peek) time.
		if !midRunInjected {
			midRunInjected = true
			at := sim.PeekNextEventTime()
			if ok, err := sim.Inject(at, at, id); err != nil || !ok {
				t.Fatalf("mid-run Inject = (%v, %v)", ok, err)
			}
		}
		sim.ProcessNextEvent()
	}
	res, err := sim.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 2 {
		t.Errorf("Generated = %d, want 2 (the admitted injections)", res.Generated)
	}
	var uninjected Simulator
	if _, err := uninjected.Inject(0, 0, id); err == nil {
		t.Error("Inject without Reset succeeded")
	}
}

// TestInjectUnpopOrdering pins the staged-event reinsertion: peek a far
// event, inject an earlier one, and the earlier one must process first.
func TestInjectUnpopOrdering(t *testing.T) {
	p, sched := steppingFixture(t)
	cfg := Config{Problem: p, Schedule: sched, Horizon: 10, Warmup: 0, Seed: 7,
		InjectOnly: []model.RequestID{p.Requests[0].ID}}
	for _, r := range p.Requests[1:] {
		cfg.InjectOnly = append(cfg.InjectOnly, r.ID)
	}
	var sim Simulator
	if err := sim.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	// With every request InjectOnly the agenda starts empty.
	if sim.HasPendingEvents() {
		t.Fatal("fully inject-only run has seeded events")
	}
	id := p.Requests[0].ID
	if ok, err := sim.Inject(5, 5, id); err != nil || !ok {
		t.Fatalf("Inject = (%v, %v)", ok, err)
	}
	if pt := sim.PeekNextEventTime(); pt != 5 {
		t.Fatalf("peek after first inject = %v, want 5", pt)
	}
	// The peek staged the t=5 event; injecting at t=1 must come back first.
	if ok, err := sim.Inject(1, 1, id); err != nil || !ok {
		t.Fatalf("earlier Inject = (%v, %v)", ok, err)
	}
	if pt := sim.PeekNextEventTime(); pt != 1 {
		t.Fatalf("peek after earlier inject = %v, want 1", pt)
	}
	times := []float64{}
	for sim.HasPendingEvents() {
		times = append(times, sim.PeekNextEventTime())
		sim.ProcessNextEvent()
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("event times regressed: %v after %v", times[i], times[i-1])
		}
	}
	res, err := sim.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 2 || res.Delivered+res.InFlight != 2 {
		t.Errorf("Generated=%d Delivered=%d InFlight=%d, want 2 accounted packets",
			res.Generated, res.Delivered, res.InFlight)
	}
}

// TestExpectedEventsTraceWeighting pins the corrected trace-mode estimate:
// per-packet event cost is weighted by each request's actual share of the
// trace, not the uniform mean over requests.
func TestExpectedEventsTraceWeighting(t *testing.T) {
	problem := &model.Problem{
		Requests: []model.Request{
			{ID: "long", Chain: []model.VNFID{"a", "b", "c", "d"}, Rate: 1, DeliveryProb: 1},  // cost 2*4+2 = 10
			{ID: "short", Chain: []model.VNFID{"a"}, Rate: 1, DeliveryProb: 1},                // cost 2*1+2 = 4
		},
	}
	trace := &workload.Trace{Horizon: 100}
	for i := 0; i < 90; i++ {
		trace.Arrivals = append(trace.Arrivals, workload.Arrival{Time: float64(i), Request: "long"})
	}
	for i := 0; i < 10; i++ {
		trace.Arrivals = append(trace.Arrivals, workload.Arrival{Time: float64(i), Request: "short"})
	}
	// An arrival for an unknown request is skipped at seeding and must
	// contribute nothing.
	trace.Arrivals = append(trace.Arrivals, workload.Arrival{Time: 1, Request: "ghost"})
	cfg := Config{Problem: problem, Trace: trace, Horizon: 100}
	if got, want := cfg.expectedEvents(), 90.0*10+10*4; got != want {
		t.Errorf("expectedEvents = %v, want %v (trace-weighted)", got, want)
	}
	// The old uniform-mean estimate would have said (90+10+1) * (10+4)/2 = 707.
	cfg.Trace = nil
	if got, want := cfg.expectedEvents(), 100.0*(10+4); got != want {
		t.Errorf("rate-mode expectedEvents = %v, want %v", got, want)
	}
}

// TestAgendaAdaptiveMigration drives the wrapper past agendaAdaptivePending
// and asserts it migrates heap→ladder with the pop sequence intact.
func TestAgendaAdaptiveMigration(t *testing.T) {
	var a agenda
	a.reset(AgendaHeap, true)
	n := agendaAdaptivePending + 500
	for i := 0; i < n; i++ {
		// A deterministic scatter with duplicate times (seq tie-breaks).
		a.push(event{time: float64(i%997) / 7, kind: evArrival, pkt: int32(i)})
	}
	if a.kind != AgendaLadder {
		t.Fatalf("agenda kind after %d pushes = %v, want ladder (adaptive migration)", n, a.kind)
	}
	var lastT float64
	var lastSeq uint64
	for popped := 0; ; popped++ {
		e, ok := a.pop()
		if !ok {
			if popped != n {
				t.Fatalf("drained %d events, pushed %d", popped, n)
			}
			break
		}
		if popped > 0 && (e.time < lastT || (e.time == lastT && e.seq < lastSeq)) {
			t.Fatalf("pop %d out of order: (%v,%d) after (%v,%d)", popped, e.time, e.seq, lastT, lastSeq)
		}
		lastT, lastSeq = e.time, e.seq
	}
	// A non-adaptive heap must never migrate.
	a.reset(AgendaHeap, false)
	for i := 0; i < n; i++ {
		a.push(event{time: float64(i), kind: evArrival})
	}
	if a.kind != AgendaHeap {
		t.Fatalf("non-adaptive agenda migrated to %v", a.kind)
	}
}

// TestAgendaAutoAdaptiveRun pins the end-to-end adaptive behavior: a trace
// whose seeded backlog exceeds agendaAdaptivePending makes an AgendaAuto run
// finish on the ladder, with results bit-identical to both forced backends.
func TestAgendaAutoAdaptiveRun(t *testing.T) {
	p, sched := steppingFixture(t)
	trace := &workload.Trace{Horizon: 10}
	id := p.Requests[0].ID
	n := agendaAdaptivePending + 1000
	for i := 0; i < n; i++ {
		trace.Arrivals = append(trace.Arrivals, workload.Arrival{
			Time:    10 * float64(i) / float64(n),
			Request: id,
		})
	}
	base := Config{Problem: p, Schedule: sched, Horizon: 10, Warmup: 1, Seed: 7, Trace: trace}

	auto := base
	res, err := Run(auto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agenda != AgendaLadder {
		t.Errorf("auto run finished on %v, want ladder (adaptive switch at %d pending)", res.Agenda, agendaAdaptivePending)
	}
	fAuto := fingerprintResults(res)

	for _, kind := range []AgendaKind{AgendaHeap, AgendaLadder} {
		forced := base
		forced.Agenda = kind
		fres, err := Run(forced)
		if err != nil {
			t.Fatal(err)
		}
		if f := fingerprintResults(fres); f != fAuto {
			t.Errorf("forced %v fingerprint %#x != adaptive auto fingerprint %#x", kind, f, fAuto)
		}
	}
}
