package simulate

import (
	"fmt"
	"math"

	"nfvchain/internal/model"
)

// ControlHook is the periodic control-plane entry point: when Config.Control
// is set, the simulator fires Tick every Config.ControlInterval simulated
// seconds (first tick at Interval, last strictly before the horizon), at
// deterministic times interleaved with traffic and fault events in (time,
// seq) order. The hook observes the live deployment through the ControlPlane
// and may reshape it — add, retire or migrate instances, reroute requests,
// shed admissions — which is how internal/control implements a pool-manager
// loop (autoscaling, migration, graceful degradation) on top of the repair
// primitives. A nil Control leaves every event and RNG stream bit-identical
// to historical runs.
type ControlHook interface {
	Tick(now float64, cp *ControlPlane)
}

// PreemptionNoticeHook is optionally implemented by a Config.FaultHook to
// receive advance notice of correlated preemptions (PreemptionPlan.LeadTime
// > 0): it fires at downAt − LeadTime with the drawn node group, before any
// of the nodes fail, so a controller can migrate instances off the doomed
// nodes ahead of the loss. The nodes slice and the control handle are only
// valid for the duration of the callback.
type PreemptionNoticeHook interface {
	PreemptionNotice(now float64, nodes []model.NodeID, downAt float64, ctrl *RepairControl)
}

// PreemptionPlan extends a FaultPlan with spot-style correlated capacity
// loss: preemption events arrive as a Poisson process (mean interval
// MeanInterval) and each takes down a uniformly drawn group of GroupSize
// distinct nodes at once, all recovering after a fixed Recovery delay. The
// event times and group draws come from a dedicated "preempt" RNG stream, so
// enabling preemption leaves every existing per-node fault chain, arrival
// and service stream untouched — the same sample-path isolation the random
// MTBF/MTTR chains rely on. A nil Preemption keeps runs bit-identical to
// historical ones.
type PreemptionPlan struct {
	// MeanInterval is the mean time between preemption events (seconds,
	// exponentially distributed). Required: positive and finite.
	MeanInterval float64
	// GroupSize is how many distinct nodes each event takes down, clamped
	// to the node count. Required: at least 1.
	GroupSize int
	// Recovery is the fixed time until every node of the group returns to
	// service. Required: positive and finite.
	Recovery float64
	// LeadTime is the advance-notice window: when positive, a FaultHook
	// implementing PreemptionNoticeHook is told the drawn group LeadTime
	// seconds before the loss (clamped so notice never precedes the draw).
	// Zero disables notices.
	LeadTime float64
}

// validate rejects unusable preemption plans.
func (pp *PreemptionPlan) validate() error {
	if !(pp.MeanInterval > 0) || math.IsInf(pp.MeanInterval, 1) {
		return fmt.Errorf("simulate: preemption mean interval %v must be positive and finite", pp.MeanInterval)
	}
	if pp.GroupSize < 1 {
		return fmt.Errorf("simulate: preemption group size %d must be at least 1", pp.GroupSize)
	}
	if !(pp.Recovery > 0) || math.IsInf(pp.Recovery, 1) {
		return fmt.Errorf("simulate: preemption recovery %v must be positive and finite", pp.Recovery)
	}
	if math.IsNaN(pp.LeadTime) || pp.LeadTime < 0 || math.IsInf(pp.LeadTime, 1) {
		return fmt.Errorf("simulate: preemption lead time %v must be non-negative and finite", pp.LeadTime)
	}
	return nil
}

// seedPreemption derives the dedicated preemption stream and schedules the
// first event. Called from seedFaults when the plan carries a Preemption.
func (s *simulation) seedPreemption() {
	s.preemptStream = s.namedStream("preempt", "")
	s.schedulePreempt(0)
}

// schedulePreempt draws the next preemption after t — its time and its node
// group — and pushes the preempt event (plus the advance notice when a lead
// time is configured). The group is drawn at scheduling time so the notice
// and the loss agree on it; at most one preemption is pending at a time, so
// one scratch group suffices.
func (s *simulation) schedulePreempt(t float64) {
	pp := s.cfg.FaultPlan.Preemption
	at := t + s.preemptStream.Exp(1/pp.MeanInterval)
	if at >= s.cfg.Horizon {
		return
	}
	n := len(s.nodes)
	g := pp.GroupSize
	if g > n {
		g = n
	}
	// Partial Fisher–Yates over the node indices: the first g entries of the
	// scratch permutation are a uniform distinct draw.
	perm := s.preemptPerm[:0]
	for i := 0; i < n; i++ {
		perm = append(perm, int32(i))
	}
	s.preemptPerm = perm
	group := s.preemptGroup[:0]
	for i := 0; i < g; i++ {
		j := i + s.preemptStream.IntN(n-i)
		perm[i], perm[j] = perm[j], perm[i]
		group = append(group, perm[i])
	}
	s.preemptGroup = group
	s.preemptAt = at
	if pp.LeadTime > 0 {
		notice := at - pp.LeadTime
		if notice < t {
			notice = t
		}
		s.agenda.push(event{time: notice, kind: evPreemptNotice})
	}
	s.agenda.push(event{time: at, kind: evPreempt})
}

// preemptNotice delivers the advance notice for the pending preemption to a
// FaultHook that wants it.
func (s *simulation) preemptNotice() {
	hook, ok := s.cfg.FaultHook.(PreemptionNoticeHook)
	if !ok {
		return
	}
	ids := s.noticeIDs[:0]
	for _, nid := range s.preemptGroup {
		ids = append(ids, s.nodes[nid].id)
	}
	s.noticeIDs = ids
	hook.PreemptionNotice(s.now, ids, s.preemptAt, &RepairControl{s: s})
}

// preemptFire takes down the pending group (each node through the same
// nodeDown path as outages, so overlapping intervals merge and the FaultHook
// fires per node), schedules the group's fixed-delay recovery, and draws the
// next preemption.
func (s *simulation) preemptFire() {
	pp := s.cfg.FaultPlan.Preemption
	up := s.now + pp.Recovery
	for _, nid := range s.preemptGroup {
		s.nodeDown(nid, false)
		s.agenda.push(event{time: up, kind: evNodeUp, inst: nid})
	}
	s.schedulePreempt(s.now)
}

// InstanceObs is one instance's control-plane observation at a tick.
type InstanceObs struct {
	// Key identifies the instance; Node is its current hosting node.
	Key  InstanceKey
	Node model.NodeID
	// Queue is the waiting-room occupancy; Busy reports a packet in service.
	Queue int
	Busy  bool
	// Down mirrors the hosting node's state; Booting reports a setup or
	// migration still in progress; Retired marks an instance removed by
	// RemoveInstance that is draining its residual work.
	Down    bool
	Booting bool
	Retired bool
	// Utilization is the instance's busy fraction over the window that just
	// ended (the time since the previous tick, or since t=0 for the first).
	Utilization float64
}

// ControlPlane is the observation-and-actuation handle a ControlHook
// receives at each tick. It embeds the full RepairControl actuation surface
// (AddInstance, Reassign, MigrateInstance, RemoveInstance, SetShedFraction,
// NodeIsUp) and adds deployment-wide observation. Like a RepairControl it is
// only valid for the duration of the callback.
type ControlPlane struct {
	RepairControl
	window float64
}

// Window returns the length of the observation window that just ended.
func (cp *ControlPlane) Window() float64 { return cp.window }

// Pending returns the number of admitted packets currently in flight.
func (cp *ControlPlane) Pending() int { return cp.s.live }

// Instances appends one observation per service instance (base instances
// first, then additions, in creation order — a deterministic order) to buf
// and returns it. Utilization is measured over the window that just ended.
func (cp *ControlPlane) Instances(buf []InstanceObs) []InstanceObs {
	s := cp.s
	for i := range s.instances {
		inst := &s.instances[i]
		util := 0.0
		if cp.window > 0 {
			util = (s.ctrlBusyNow(inst) - inst.ctrlMark) / cp.window
		}
		obs := InstanceObs{
			Key:         inst.key,
			Queue:       inst.qlen,
			Busy:        inst.busy >= 0,
			Down:        inst.down,
			Booting:     inst.bootUntil > s.now,
			Retired:     inst.retired,
			Utilization: util,
		}
		if inst.node >= 0 {
			obs.Node = s.nodes[inst.node].id
		}
		buf = append(buf, obs)
	}
	return buf
}

// ctrlBusyNow returns inst's cumulative raw busy time up to now, including
// the in-progress service.
func (s *simulation) ctrlBusyNow(inst *instance) float64 {
	b := inst.ctrlBusy
	if inst.busy >= 0 {
		b += s.now - inst.serviceStart
	}
	return b
}

// controlTick runs one controller tick: hand the hook an observation window,
// then roll the per-instance utilization marks and schedule the next tick.
func (s *simulation) controlTick() {
	cp := ControlPlane{RepairControl: RepairControl{s: s}, window: s.now - s.lastTick}
	s.cfg.Control.Tick(s.now, &cp)
	for i := range s.instances {
		inst := &s.instances[i]
		inst.ctrlMark = s.ctrlBusyNow(inst)
	}
	s.lastTick = s.now
	if next := s.now + s.cfg.ControlInterval; next < s.cfg.Horizon {
		s.agenda.push(event{time: next, kind: evControlTick})
	}
}

// shedNext implements deterministic fractional admission shedding with an
// error accumulator: over any long run of arrivals, exactly a shedFrac
// share returns true, with no RNG involved — so shedding never perturbs the
// arrival, service or fault streams.
func (s *simulation) shedNext() bool {
	s.shedAcc += s.shedFrac
	if s.shedAcc >= 1 {
		s.shedAcc--
		return true
	}
	return false
}

// SetShedFraction sets the deterministic admission-shedding rate: the given
// fraction of subsequent external arrivals (Poisson sources and injections
// alike) is counted as offered and shed instead of entering the network —
// the control plane's graceful-degradation valve under capacity shortage.
// Shedding is frac-of-arrivals exact via an error accumulator and draws no
// randomness, so it leaves every RNG stream untouched. Fraction 0 restores
// full admission.
func (rc *RepairControl) SetShedFraction(frac float64) error {
	if math.IsNaN(frac) || frac < 0 || frac > 1 {
		return fmt.Errorf("simulate: shed fraction %v outside [0,1]", frac)
	}
	rc.s.shedFrac = frac
	return nil
}

// ShedFraction returns the current admission-shedding rate.
func (rc *RepairControl) ShedFraction() float64 { return rc.s.shedFrac }

// MigrateInstance moves instance k of VNF f to the given node: the instance
// freezes now — an in-flight service is interrupted and its packet returns
// to the head of the queue — and resumes serving on the destination at
// resumeAt (the migration cost is resumeAt − Now(); the frozen interval
// counts toward queue sojourn but not utilization). Requests keep routing to
// the instance across the move; link hops are recomputed from the new
// hosting node. Migrating onto a down node parks the instance there until
// the node recovers.
func (rc *RepairControl) MigrateInstance(f model.VNFID, k int, node model.NodeID, resumeAt float64) error {
	s := rc.s
	iid, ok := s.instIndex[InstanceKey{VNF: f, Instance: k}]
	if !ok {
		return fmt.Errorf("simulate: migrate: vnf %s has no live instance %d", f, k)
	}
	nid, ok := s.nodeIndex[node]
	if !ok {
		return fmt.Errorf("simulate: migrate: unknown node %s", node)
	}
	if math.IsNaN(resumeAt) || math.IsInf(resumeAt, 0) || resumeAt < s.now {
		return fmt.Errorf("simulate: migrate: resume time %v before now %v", resumeAt, s.now)
	}
	inst := &s.instances[iid]
	if inst.busy >= 0 {
		// Freeze: interrupt the in-flight service and put the packet back at
		// the head of the queue; the epoch bump invalidates the pending
		// completion event. The packet stays in the system, so population
		// accounting is untouched.
		inst.busyTime += overlap(inst.serviceStart, s.now, s.cfg.Warmup, s.cfg.Horizon)
		if s.ctrlOn {
			inst.ctrlBusy += s.now - inst.serviceStart
		}
		inst.epoch++
		pid := inst.busy
		inst.busy = -1
		inst.requeueFront(pid)
	}
	if old := inst.node; old >= 0 && old != nid {
		hosted := s.nodes[old].instances
		for i, id := range hosted {
			if id == iid {
				hosted[i] = hosted[len(hosted)-1]
				s.nodes[old].instances = hosted[:len(hosted)-1]
				break
			}
		}
	}
	if inst.node != nid {
		s.nodes[nid].instances = append(s.nodes[nid].instances, iid)
	}
	inst.node = nid
	inst.down = s.nodes[nid].downDepth > 0
	inst.bootUntil = resumeAt
	if resumeAt > s.now {
		s.agenda.push(event{time: resumeAt, kind: evInstanceReady, inst: iid})
	} else if !inst.down && inst.busy < 0 && inst.qlen > 0 {
		s.startService(inst, iid, inst.dequeue())
	}
	s.recomputeHops()
	return nil
}

// RemoveInstance retires instance k of VNF f from the deployment. The
// instance must already be routed away from (Reassign every request using it
// first); it then drains — packets still in flight toward it are served
// normally — and simply never receives new work. Retirement is what lets a
// scale-down shrink M_f without losing in-flight packets.
func (rc *RepairControl) RemoveInstance(f model.VNFID, k int) error {
	s := rc.s
	iid, ok := s.instIndex[InstanceKey{VNF: f, Instance: k}]
	if !ok {
		return fmt.Errorf("simulate: remove: vnf %s has no live instance %d", f, k)
	}
	for _, target := range s.routeFlat {
		if target == iid {
			return fmt.Errorf("simulate: remove: instance %d of vnf %s still has routed requests (Reassign them first)", k, f)
		}
	}
	s.instances[iid].retired = true
	return nil
}

// recomputeHops rebuilds every request's link-hop vector from the instances'
// current hosting nodes — the post-migration counterpart of the per-request
// recomputation Reassign does. O(total chain stages), far off the hot path.
func (s *simulation) recomputeHops() {
	for ri := range s.requests {
		off := s.chainOff[ri]
		for stage := range s.requests[ri].Chain {
			o := off + int32(stage)
			hop := 0.0
			if stage > 0 && s.instances[s.routeFlat[o]].node != s.instances[s.routeFlat[o-1]].node {
				hop = s.cfg.LinkDelay
			}
			s.hopFlat[o] = hop
		}
	}
}
