package simulate

import (
	"testing"

	"nfvchain/internal/scheduling"
	"nfvchain/internal/workload"
)

// TestSimulatorReuseMatchesFreshRuns pins the Reset contract: one Simulator
// driven through a sequence of heterogeneous configs (different seeds,
// buffering, drop policies, distributions) must produce bit-identical results
// to a fresh package-level Run per config. Any state leaking across Resets —
// a stale ring-buffer entry, an unzeroed arena slot, a retained sample —
// changes a fingerprint.
func TestSimulatorReuseMatchesFreshRuns(t *testing.T) {
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 11
	p, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	configs := []Config{
		{Horizon: 5, Warmup: 1, Seed: 7},
		{Horizon: 5, Warmup: 1, Seed: 8}, // same shape, new seed: arena reuse
		{Horizon: 5, Warmup: 1, Seed: 7, BufferSize: 2},
		{Horizon: 2, Seed: 7, BufferSize: 2, DropPolicy: DropRetransmit, RetransmitDelay: 0.004},
		{Horizon: 4, Warmup: 1, Seed: 3, ServiceDist: ServiceLogNormal},
		{Horizon: 5, Warmup: 1, Seed: 7}, // repeat of the first: full cycle back
	}
	sim := NewSimulator()
	for i, cfg := range configs {
		cfg.Problem, cfg.Schedule = p, sched
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("config %d: fresh run: %v", i, err)
		}
		if err := sim.Reset(cfg); err != nil {
			t.Fatalf("config %d: reset: %v", i, err)
		}
		reused, err := sim.Run()
		if err != nil {
			t.Fatalf("config %d: reused run: %v", i, err)
		}
		// Fingerprint the reused Results immediately — it aliases the
		// simulator's buffers and is only valid until the next Reset.
		if ff, fr := fingerprintResults(fresh), fingerprintResults(reused); ff != fr {
			t.Errorf("config %d: reused simulator diverged from fresh run: %#x vs %#x", i, fr, ff)
		}
	}
}

// TestSimulatorRunRequiresReset pins the misuse error path.
func TestSimulatorRunRequiresReset(t *testing.T) {
	if _, err := NewSimulator().Run(); err == nil {
		t.Fatal("Run before Reset succeeded, want error")
	}
}
