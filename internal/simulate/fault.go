package simulate

import (
	"fmt"
	"math"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

// FaultPlan injects computing-node failures into a run. A node going down
// fails every service instance placed on it: the in-service packet and all
// queued packets are handled per Config.FailurePolicy, and arrivals routed
// to a down instance meet the same fate until the node recovers (or a
// FaultHook reroutes them). Random faults and the deterministic outage list
// compose; overlapping down intervals are merged for downtime accounting.
//
// Fault times are drawn from a dedicated per-node RNG stream (derived from
// Config.Seed and the node id), so they are identical across runs with the
// same seed regardless of traffic, drop policy, or repair decisions — the
// property the availability experiment relies on to compare repair modes
// under the same failure sample path. A nil FaultPlan disables the subsystem
// entirely and leaves every event stream bit-identical to historical runs.
type FaultPlan struct {
	// MTBF is each node's mean time between failures (seconds of up time
	// before the next failure, exponentially distributed). Zero or +Inf
	// disables random faults; the Outages list still applies.
	MTBF float64
	// MTTR is each node's mean time to repair (seconds of down time,
	// exponentially distributed). Required (positive, finite) when random
	// faults are enabled.
	MTTR float64
	// Outages is an optional deterministic list of scheduled node outages,
	// for reproducible failure scenarios independent of any RNG.
	Outages []Outage
	// Preemption optionally adds spot-style correlated capacity loss:
	// events on a dedicated RNG stream each take down a drawn group of
	// nodes at once (see PreemptionPlan). nil keeps the plan's sample paths
	// bit-identical to historical runs.
	Preemption *PreemptionPlan
}

// Outage is one scheduled node outage: the node fails at DownAt and
// recovers at UpAt (simulated seconds).
type Outage struct {
	Node   model.NodeID
	DownAt float64
	UpAt   float64
}

// randomFaults reports whether the plan draws MTBF/MTTR faults.
func (fp *FaultPlan) randomFaults() bool {
	return fp.MTBF > 0 && !math.IsInf(fp.MTBF, 1)
}

// validate rejects unusable plans against the problem's node set.
func (fp *FaultPlan) validate(p *model.Problem) error {
	if math.IsNaN(fp.MTBF) || fp.MTBF < 0 {
		return fmt.Errorf("simulate: fault plan MTBF %v must be non-negative", fp.MTBF)
	}
	if math.IsNaN(fp.MTTR) || fp.MTTR < 0 {
		return fmt.Errorf("simulate: fault plan MTTR %v must be non-negative", fp.MTTR)
	}
	if fp.randomFaults() && (fp.MTTR <= 0 || math.IsInf(fp.MTTR, 1)) {
		return fmt.Errorf("simulate: fault plan with MTBF %v requires a positive finite MTTR, got %v", fp.MTBF, fp.MTTR)
	}
	for i, o := range fp.Outages {
		if _, ok := p.Node(o.Node); !ok {
			return fmt.Errorf("simulate: outage %d references unknown node %s", i, o.Node)
		}
		if math.IsNaN(o.DownAt) || math.IsInf(o.DownAt, 0) || o.DownAt < 0 {
			return fmt.Errorf("simulate: outage %d down time %v must be non-negative and finite", i, o.DownAt)
		}
		if math.IsNaN(o.UpAt) || o.UpAt <= o.DownAt {
			return fmt.Errorf("simulate: outage %d up time %v must exceed down time %v", i, o.UpAt, o.DownAt)
		}
	}
	if fp.Preemption != nil {
		if err := fp.Preemption.validate(); err != nil {
			return err
		}
	}
	return nil
}

// FailurePolicy selects the fate of packets caught at a failed instance —
// the in-service packet, the queued packets, and any packet arriving while
// the instance's node is down.
type FailurePolicy int

// Supported failure policies.
const (
	// FailDrop counts the packet as a failure drop and discards it — the
	// crash-loss model: state on a failed node is simply gone. The zero
	// value, so fault-free configs need no change.
	FailDrop FailurePolicy = iota
	// FailRetransmit re-injects the packet from its source after
	// Config.RetransmitDelay, reusing the NACK loss-feedback machinery of
	// DropRetransmit: the delivery check times out and the source retries,
	// so no packet is ever permanently lost to a failure.
	FailRetransmit
)

// FaultHook observes node state transitions mid-run, at the simulated time
// they occur, and may use the RepairControl to reroute requests or add
// replacement instances — the entry point for self-healing controllers (see
// internal/repair). NodeDown is invoked after the node's instances have
// failed their packets; NodeUp after the node is back in service. The
// control handle is only valid for the duration of the callback.
type FaultHook interface {
	NodeDown(now float64, node model.NodeID, ctrl *RepairControl)
	NodeUp(now float64, node model.NodeID, ctrl *RepairControl)
}

// nodeState is the runtime fault state of one computing node. Nodes are
// tracked only when a FaultPlan is configured.
type nodeState struct {
	id model.NodeID
	// downDepth counts overlapping down intervals (random faults plus
	// scheduled outages); the node is down while it is positive.
	downDepth int
	downStart float64
	downtime  float64
	// stream draws the node's random fault chain; nil without random faults.
	stream *rng.Stream
	// instances lists the instance-table indices hosted on this node.
	instances []int32
}

// buildFaults prepares the node table, instance→node links, and the
// request-index map used by RepairControl. Called from build only when a
// FaultPlan is configured.
func (s *simulation) buildFaults() error {
	p := s.cfg.Problem
	// Rebuild into the retained node table: slots up to the previous run's
	// capacity keep their instances backing arrays, so churn-heavy sweeps
	// stop re-allocating per-node state every trial. The maps were cleared
	// (not dropped) by Reset.
	nodes := s.nodes[:cap(s.nodes)]
	if s.nodeIndex == nil {
		s.nodeIndex = make(map[model.NodeID]int32, len(p.Nodes))
	}
	for i, n := range p.Nodes {
		if i < len(nodes) {
			nodes[i] = nodeState{id: n.ID, instances: nodes[i].instances[:0]}
		} else {
			nodes = append(nodes, nodeState{id: n.ID})
		}
		s.nodeIndex[n.ID] = int32(i)
	}
	s.nodes = nodes[:len(p.Nodes)]
	for iid := range s.instances {
		inst := &s.instances[iid]
		node, ok := s.cfg.Placement.Node(inst.key.VNF)
		if !ok {
			return fmt.Errorf("simulate: fault plan: vnf %s unplaced", inst.key.VNF)
		}
		nid := s.nodeIndex[node]
		inst.node = nid
		s.nodes[nid].instances = append(s.nodes[nid].instances, int32(iid))
	}
	if s.reqIndex == nil {
		s.reqIndex = make(map[model.RequestID]int32, len(s.requests))
	}
	for i, r := range s.requests {
		s.reqIndex[r.ID] = int32(i)
	}
	if s.nextInst == nil {
		s.nextInst = make(map[model.VNFID]int)
	}
	return nil
}

// seedFaults schedules the first random failure of every node and the
// deterministic outage list. Random fault chains alternate down/up events
// (flagged random=1 in reqIndex) so each down draws its repair time and
// each up draws the next failure; scheduled outages push both edges up
// front.
func (s *simulation) seedFaults() {
	fp := s.cfg.FaultPlan
	if fp == nil {
		return
	}
	if fp.randomFaults() {
		for i := range s.nodes {
			nd := &s.nodes[i]
			nd.stream = s.namedStream("fault/", string(nd.id))
			t := nd.stream.Exp(1 / fp.MTBF)
			if t < s.cfg.Horizon {
				s.agenda.push(event{time: t, kind: evNodeDown, inst: int32(i), reqIndex: 1})
			}
		}
	}
	for _, o := range fp.Outages {
		if o.DownAt >= s.cfg.Horizon {
			continue
		}
		nid := s.nodeIndex[o.Node]
		s.agenda.push(event{time: o.DownAt, kind: evNodeDown, inst: nid})
		s.agenda.push(event{time: o.UpAt, kind: evNodeUp, inst: nid})
	}
	if fp.Preemption != nil {
		s.seedPreemption()
	}
}

// nodeDown processes one down edge: on the first overlapping interval the
// node's instances fail their packets and the hook fires; a random-chain
// edge additionally draws the repair time.
func (s *simulation) nodeDown(nid int32, random bool) {
	nd := &s.nodes[nid]
	nd.downDepth++
	if nd.downDepth == 1 {
		nd.downStart = s.now
		for _, iid := range nd.instances {
			s.failInstance(iid)
		}
		if s.cfg.FaultHook != nil {
			s.cfg.FaultHook.NodeDown(s.now, nd.id, &RepairControl{s: s})
		}
	}
	if random {
		s.agenda.push(event{
			time: s.now + nd.stream.Exp(1/s.cfg.FaultPlan.MTTR),
			kind: evNodeUp, inst: nid, reqIndex: 1,
		})
	}
}

// nodeUp processes one up edge: when the last overlapping interval ends the
// downtime is folded in, the node's instances accept work again, and the
// hook fires; a random-chain edge additionally draws the next failure time.
func (s *simulation) nodeUp(nid int32, random bool) {
	nd := &s.nodes[nid]
	nd.downDepth--
	if nd.downDepth == 0 {
		nd.downtime += s.now - nd.downStart
		for _, iid := range nd.instances {
			s.instances[iid].down = false
		}
		if s.cfg.FaultHook != nil {
			s.cfg.FaultHook.NodeUp(s.now, nd.id, &RepairControl{s: s})
		}
	}
	if random {
		t := s.now + nd.stream.Exp(1/s.cfg.FaultPlan.MTBF)
		if t < s.cfg.Horizon {
			s.agenda.push(event{time: t, kind: evNodeDown, inst: nid, reqIndex: 1})
		}
	}
}

// failInstance fails every packet held by the instance (in service and
// queued) per the failure policy and marks it down. Bumping the service
// epoch invalidates the pending completion event without touching the
// agenda.
func (s *simulation) failInstance(iid int32) {
	inst := &s.instances[iid]
	inst.down = true
	removed := 0
	if inst.busy >= 0 {
		inst.busyTime += overlap(inst.serviceStart, s.now, s.cfg.Warmup, s.cfg.Horizon)
		if s.ctrlOn {
			inst.ctrlBusy += s.now - inst.serviceStart
		}
		inst.epoch++
		pid := inst.busy
		inst.busy = -1
		removed++
		s.failPacket(pid, inst)
	}
	for inst.qlen > 0 {
		removed++
		s.failPacket(inst.dequeue(), inst)
	}
	if removed > 0 {
		inst.notePopulation(s.now, s.cfg.Warmup, s.cfg.Horizon, -removed)
	}
}

// failPacket applies the failure policy to one packet caught by a failure
// at inst: FailDrop loses it permanently; FailRetransmit re-injects it from
// its source after the NACK round-trip, keeping its birth time so measured
// latency includes the recovery passes.
func (s *simulation) failPacket(pid int32, inst *instance) {
	if s.cfg.FailurePolicy == FailRetransmit {
		s.results.FailRetransmits++
		p := &s.packets[pid]
		p.stage = 0
		s.agenda.push(event{
			time: s.now + s.cfg.RetransmitDelay,
			kind: evArrival,
			pkt:  pid,
			inst: s.routeFlat[s.chainOff[p.reqIndex]],
		})
		return
	}
	s.results.FailureDrops++
	inst.failureDrops++
	s.live--
	s.freePacket(pid)
}

// instanceReady fires when a replacement instance finishes booting: packets
// that queued during the boot start service (unless the hosting node has
// failed in the meantime).
func (s *simulation) instanceReady(iid int32) {
	inst := &s.instances[iid]
	if !inst.down && inst.busy < 0 && inst.qlen > 0 {
		s.startService(inst, iid, inst.dequeue())
	}
}

// RepairControl lets a FaultHook repair the running simulation at the
// simulated time of a node transition: rerouting future packet visits to
// surviving instances and registering freshly booted replacement capacity.
// It is only valid inside the hook invocation that received it.
type RepairControl struct {
	s *simulation
}

// Now returns the simulated time of the transition being handled.
func (rc *RepairControl) Now() float64 { return rc.s.now }

// NodeIsUp reports whether the named node is currently in service.
func (rc *RepairControl) NodeIsUp(n model.NodeID) bool {
	idx, ok := rc.s.nodeIndex[n]
	return ok && rc.s.nodes[idx].downDepth == 0
}

// AddInstance registers a new service instance of VNF f on the given node,
// serving at the VNF's rate from readyAt onward (the boot/setup cost is
// readyAt − Now()). Packets routed to it before readyAt wait in its buffer.
// It returns the new instance index, to be targeted with Reassign.
func (rc *RepairControl) AddInstance(f model.VNFID, node model.NodeID, readyAt float64) (int, error) {
	s := rc.s
	vnf, ok := s.cfg.Problem.VNF(f)
	if !ok {
		return 0, fmt.Errorf("simulate: repair: unknown vnf %s", f)
	}
	nid, ok := s.nodeIndex[node]
	if !ok {
		return 0, fmt.Errorf("simulate: repair: unknown node %s", node)
	}
	if math.IsNaN(readyAt) || math.IsInf(readyAt, 0) || readyAt < s.now {
		return 0, fmt.Errorf("simulate: repair: ready time %v before now %v", readyAt, s.now)
	}
	k, ok := s.nextInst[f]
	if !ok {
		k = vnf.Instances
	}
	s.nextInst[f] = k + 1
	key := InstanceKey{VNF: f, Instance: k}
	iid := s.addInstance(key, vnf.ServiceRate, s.serviceStream(f, k))
	s.instIndex[key] = iid
	inst := &s.instances[iid]
	inst.node = nid
	inst.bootUntil = readyAt
	inst.down = s.nodes[nid].downDepth > 0
	s.nodes[nid].instances = append(s.nodes[nid].instances, iid)
	if readyAt > s.now {
		s.agenda.push(event{time: readyAt, kind: evInstanceReady, inst: iid})
	}
	return k, nil
}

// Reassign reroutes every future visit of request r to VNF f onto instance
// k of f, effective immediately: packets advance to the new instance at
// their next stage transition (and failure retransmissions restart there).
// k must name a base instance of f or one added with AddInstance. Link-hop
// delays along the request's chain are recomputed from the instances'
// hosting nodes.
func (rc *RepairControl) Reassign(r model.RequestID, f model.VNFID, k int) error {
	s := rc.s
	ri, ok := s.reqIndex[r]
	if !ok {
		return fmt.Errorf("simulate: repair: unknown request %s", r)
	}
	vnf, ok := s.cfg.Problem.VNF(f)
	if !ok {
		return fmt.Errorf("simulate: repair: unknown vnf %s", f)
	}
	key := InstanceKey{VNF: f, Instance: k}
	iid, exists := s.instIndex[key]
	if !exists {
		if k < 0 || k >= vnf.Instances {
			return fmt.Errorf("simulate: repair: vnf %s has no instance %d", f, k)
		}
		// A base instance nothing was scheduled on yet: materialize it on
		// the VNF's placed node, with the same derived service stream it
		// would have received at build time.
		node, ok := s.cfg.Placement.Node(f)
		if !ok {
			return fmt.Errorf("simulate: repair: vnf %s unplaced", f)
		}
		nid := s.nodeIndex[node]
		iid = s.addInstance(key, vnf.ServiceRate, s.serviceStream(f, k))
		s.instIndex[key] = iid
		s.instances[iid].node = nid
		s.instances[iid].down = s.nodes[nid].downDepth > 0
		s.nodes[nid].instances = append(s.nodes[nid].instances, iid)
	}
	chain := s.requests[ri].Chain
	off := s.chainOff[ri]
	touched := false
	for stage, fid := range chain {
		if fid == f {
			s.routeFlat[off+int32(stage)] = iid
			touched = true
		}
	}
	if !touched {
		return fmt.Errorf("simulate: repair: request %s does not use vnf %s", r, f)
	}
	// Recompute the request's link hops from the instances' hosting nodes
	// (identical to the placement-derived hops until replacements spread a
	// VNF across nodes).
	for stage := range chain {
		o := off + int32(stage)
		hop := 0.0
		if stage > 0 && s.instances[s.routeFlat[o]].node != s.instances[s.routeFlat[o-1]].node {
			hop = s.cfg.LinkDelay
		}
		s.hopFlat[o] = hop
	}
	return nil
}

// finalizeFaults folds per-node downtime (clipping intervals still open at
// the horizon) into the results.
func (s *simulation) finalizeFaults() {
	for i := range s.nodes {
		nd := &s.nodes[i]
		dt := nd.downtime
		if nd.downDepth > 0 {
			dt += s.cfg.Horizon - nd.downStart
		}
		if dt > 0 {
			s.results.Downtime[nd.id] = dt
		}
	}
}
