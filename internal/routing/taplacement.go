package routing

import (
	"fmt"
	"sort"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/rng"
	"nfvchain/internal/topology"
)

// TopologyAware is a locality-extended BFDSU: the weighted best-fit draw of
// the paper's Algorithm 1 is multiplied by a chain-locality factor, so a
// candidate node that is network-close to the nodes already hosting the
// VNF's chain peers is preferred among similarly snug fits. It realizes the
// paper's Fig. 1 insight — convert inter-server chains to intra-server
// processing — as an actual placement objective rather than a side effect
// of packing, and is exercised by the locality ablation bench.
type TopologyAware struct {
	// Topo supplies inter-node hop distances; compute vertex ids must match
	// the problem's node ids.
	Topo *topology.Graph
	// Seed drives the weighted draws.
	Seed uint64
	// MaxRestarts bounds the restart loop (0 = placement.DefaultMaxRestarts).
	MaxRestarts int
	// LocalityBias ≥ 0 scales how strongly proximity to chain peers shapes
	// the draw; 0 reduces to plain BFDSU weights. Default 1.
	LocalityBias float64
}

// Name implements placement.Algorithm.
func (t *TopologyAware) Name() string { return "TA-BFDSU" }

// Place implements placement.Algorithm.
func (t *TopologyAware) Place(p *model.Problem) (*placement.Result, error) {
	if err := placement.Precheck(p); err != nil {
		return nil, err
	}
	if t.Topo == nil {
		return nil, fmt.Errorf("routing: TA-BFDSU needs a topology")
	}
	for _, n := range p.Nodes {
		if !t.Topo.HasVertex(string(n.ID)) {
			return nil, fmt.Errorf("routing: node %s not in topology", n.ID)
		}
	}
	maxRestarts := t.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = placement.DefaultMaxRestarts
	}
	bias := t.LocalityBias
	if bias == 0 {
		bias = 1
	}

	peers := chainPeers(p)
	hops := t.allPairsHops(p)
	stream := rng.Derive(t.Seed, "ta-bfdsu")
	sorted := p.SortedVNFsByDemand()

	iterations := 0
	for attempt := 1; attempt <= maxRestarts; attempt++ {
		pl, ok := t.onePass(p, sorted, peers, hops, stream, bias, &iterations)
		if ok {
			return &placement.Result{Placement: pl, Iterations: iterations}, nil
		}
	}
	return nil, fmt.Errorf("routing: TA-BFDSU exhausted %d restarts: %w", maxRestarts, placement.ErrInfeasible)
}

// onePass mirrors BFDSU's pass with the locality-weighted draw.
func (t *TopologyAware) onePass(p *model.Problem, sorted []model.VNF,
	peers map[model.VNFID]map[model.VNFID]bool, hops map[model.NodeID]map[model.NodeID]int,
	stream *rng.Stream, bias float64, iterations *int) (*model.Placement, bool) {

	residual := make(map[model.NodeID]float64, len(p.Nodes))
	extras := make(map[model.NodeID][]float64, len(p.Nodes))
	used := make(map[model.NodeID]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		residual[n.ID] = n.Capacity
		extras[n.ID] = append([]float64(nil), n.Extras...)
	}
	pl := model.NewPlacement()

	fits := func(v model.NodeID, f model.VNF) bool {
		if residual[v] < f.TotalDemand()-1e-9 {
			return false
		}
		for dim, e := range f.TotalExtras() {
			if extras[v][dim] < e-1e-9 {
				return false
			}
		}
		return true
	}
	candidatesFrom := func(f model.VNF, fromUsed bool) []model.NodeID {
		var out []model.NodeID
		for _, n := range p.Nodes {
			if used[n.ID] != fromUsed {
				continue
			}
			if fits(n.ID, f) {
				out = append(out, n.ID)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			ri, rj := residual[out[i]], residual[out[j]]
			if ri != rj {
				return ri < rj
			}
			return out[i] < out[j]
		})
		return out
	}

	for _, f := range sorted {
		*iterations++
		demand := f.TotalDemand()
		cands := candidatesFrom(f, true)
		if len(cands) == 0 {
			cands = candidatesFrom(f, false)
		}
		if len(cands) == 0 {
			return nil, false
		}
		weights := make([]float64, len(cands))
		for i, v := range cands {
			fit := 1 / (1 + residual[v] - demand)
			weights[i] = fit * localityFactor(f.ID, v, pl, peers, hops, bias)
		}
		choice := stream.WeightedIndex(weights)
		if choice < 0 {
			return nil, false
		}
		v := cands[choice]
		pl.Assign(f.ID, v)
		residual[v] -= demand
		for dim, e := range f.TotalExtras() {
			extras[v][dim] -= e
		}
		used[v] = true
	}
	return pl, true
}

// localityFactor returns 1/(1 + bias·meanHop) where meanHop averages the
// hop distance from candidate v to the hosts of f's already-placed chain
// peers; 1 when no peer is placed yet.
func localityFactor(f model.VNFID, v model.NodeID, pl *model.Placement,
	peers map[model.VNFID]map[model.VNFID]bool, hops map[model.NodeID]map[model.NodeID]int, bias float64) float64 {
	ps := peers[f]
	if len(ps) == 0 {
		return 1
	}
	var sum float64
	var count int
	for peer := range ps {
		host, ok := pl.Node(peer)
		if !ok {
			continue
		}
		if d, ok := hops[v][host]; ok && d >= 0 {
			sum += float64(d)
			count++
		}
	}
	if count == 0 {
		return 1
	}
	return 1 / (1 + bias*sum/float64(count))
}

// chainPeers maps each VNF to the set of VNFs co-occurring in at least one
// request chain.
func chainPeers(p *model.Problem) map[model.VNFID]map[model.VNFID]bool {
	peers := make(map[model.VNFID]map[model.VNFID]bool, len(p.VNFs))
	for _, r := range p.Requests {
		for _, a := range r.Chain {
			for _, b := range r.Chain {
				if a == b {
					continue
				}
				if peers[a] == nil {
					peers[a] = make(map[model.VNFID]bool)
				}
				peers[a][b] = true
			}
		}
	}
	return peers
}

// allPairsHops precomputes hop distances between all problem nodes.
func (t *TopologyAware) allPairsHops(p *model.Problem) map[model.NodeID]map[model.NodeID]int {
	out := make(map[model.NodeID]map[model.NodeID]int, len(p.Nodes))
	for _, a := range p.Nodes {
		dists := t.Topo.HopDistances(string(a.ID))
		row := make(map[model.NodeID]int, len(p.Nodes))
		for _, b := range p.Nodes {
			if d, ok := dists[string(b.ID)]; ok {
				row[b.ID] = d
			} else {
				row[b.ID] = -1
			}
		}
		out[a.ID] = row
	}
	return out
}

var _ placement.Algorithm = (*TopologyAware)(nil)
