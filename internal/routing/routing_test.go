package routing

import (
	"math"
	"strings"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/topology"
)

// lineProblem places three VNFs on a 4-node line topology c0-c1-c2-c3.
func lineProblem() (*model.Problem, *model.Placement, *topology.Graph) {
	g := topology.Line(4)
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "c0", Capacity: 100},
			{ID: "c1", Capacity: 100},
			{ID: "c2", Capacity: 100},
			{ID: "c3", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 10, ServiceRate: 100},
			{ID: "b", Instances: 1, Demand: 10, ServiceRate: 100},
			{ID: "c", Instances: 1, Demand: 10, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"a", "b", "c"}, Rate: 1, DeliveryProb: 1},
		},
	}
	pl := model.NewPlacement()
	pl.Assign("a", "c0")
	pl.Assign("b", "c3")
	pl.Assign("c", "c3")
	return p, pl, g
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(nil); err == nil {
		t.Error("nil topology accepted")
	}
	empty := topology.New()
	if _, err := NewRouter(empty); err == nil {
		t.Error("empty topology accepted")
	}
	onlySwitch := topology.New()
	onlySwitch.AddVertex("sw", topology.KindSwitch)
	if _, err := NewRouter(onlySwitch); err == nil {
		t.Error("switch-only topology accepted")
	}
	disconnected := topology.Line(2)
	disconnected.AddVertex("island", topology.KindCompute)
	if _, err := NewRouter(disconnected); err == nil {
		t.Error("disconnected topology accepted")
	}
	if _, err := NewRouter(topology.Line(3)); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestChainPath(t *testing.T) {
	p, pl, g := lineProblem()
	rt, err := NewRouter(g)
	if err != nil {
		t.Fatal(err)
	}
	path, err := rt.ChainPath(p, pl, p.Requests[0])
	if err != nil {
		t.Fatal(err)
	}
	// a on c0, b and c on c3: one network crossing c0→c3 (3 links), then
	// b→c intra-server.
	if path.Transitions != 1 {
		t.Errorf("Transitions = %d, want 1", path.Transitions)
	}
	if math.Abs(path.Delay-3*topology.DefaultLinkDelay) > 1e-12 {
		t.Errorf("Delay = %v, want 3 links", path.Delay)
	}
	wantHops := []string{"c0", "c1", "c2", "c3"}
	if len(path.Hops) != len(wantHops) {
		t.Fatalf("Hops = %v", path.Hops)
	}
	for i := range wantHops {
		if path.Hops[i] != wantHops[i] {
			t.Errorf("Hops[%d] = %s, want %s", i, path.Hops[i], wantHops[i])
		}
	}
	if len(path.Waypoints) != 3 {
		t.Errorf("Waypoints = %v", path.Waypoints)
	}
}

func TestChainPathCoLocated(t *testing.T) {
	p, pl, g := lineProblem()
	pl.Assign("a", "c2")
	pl.Assign("b", "c2")
	pl.Assign("c", "c2")
	rt, _ := NewRouter(g)
	path, err := rt.ChainPath(p, pl, p.Requests[0])
	if err != nil {
		t.Fatal(err)
	}
	if path.Delay != 0 || path.Transitions != 0 || len(path.Hops) != 1 {
		t.Errorf("co-located chain should be free: %+v", path)
	}
}

func TestChainPathChargesRevisits(t *testing.T) {
	// A→B→A placement: Eq. 16's span-1 counts one distinct transition, but
	// the physical route crosses the network twice.
	p, pl, g := lineProblem()
	pl.Assign("a", "c0")
	pl.Assign("b", "c1")
	pl.Assign("c", "c0")
	rt, _ := NewRouter(g)
	path, err := rt.ChainPath(p, pl, p.Requests[0])
	if err != nil {
		t.Fatal(err)
	}
	if path.Transitions != 2 {
		t.Errorf("Transitions = %d, want 2 (there and back)", path.Transitions)
	}
	if math.Abs(path.Delay-2*topology.DefaultLinkDelay) > 1e-12 {
		t.Errorf("Delay = %v, want 2 links", path.Delay)
	}
	span := pl.NodeSpan(p.Requests[0])
	if span-1 >= path.Transitions {
		t.Errorf("span-1 = %d should under-count vs transitions %d here", span-1, path.Transitions)
	}
}

func TestChainPathErrors(t *testing.T) {
	p, pl, g := lineProblem()
	rt, _ := NewRouter(g)

	t.Run("unplaced vnf", func(t *testing.T) {
		broken := pl.Clone()
		delete(broken.NodeOf, "b")
		if _, err := rt.ChainPath(p, broken, p.Requests[0]); err == nil || !strings.Contains(err.Error(), "unplaced") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("node outside topology", func(t *testing.T) {
		broken := pl.Clone()
		broken.Assign("b", "cX")
		if _, err := rt.ChainPath(p, broken, p.Requests[0]); err == nil || !strings.Contains(err.Error(), "not in topology") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("empty chain", func(t *testing.T) {
		if _, err := rt.ChainPath(p, pl, model.Request{ID: "x"}); err == nil {
			t.Error("empty chain accepted")
		}
	})
}

func TestNetworkDelays(t *testing.T) {
	p, pl, g := lineProblem()
	p.Requests = append(p.Requests, model.Request{
		ID: "r2", Chain: []model.VNFID{"b", "c"}, Rate: 1, DeliveryProb: 1,
	})
	rt, _ := NewRouter(g)
	delays, err := rt.NetworkDelays(p, pl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 2 {
		t.Fatalf("delays = %v", delays)
	}
	if delays["r2"] != 0 {
		t.Errorf("co-located r2 delay = %v", delays["r2"])
	}
	// With a schedule that rejected r1, only r2 is resolved.
	sched := model.NewSchedule()
	sched.Assign("r2", "b", 0)
	sched.Assign("r2", "c", 0)
	delays, err = rt.NetworkDelays(p, pl, sched)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := delays["r1"]; ok {
		t.Error("rejected request resolved")
	}
}

func TestCalibrateLinkDelay(t *testing.T) {
	p, pl, g := lineProblem()
	rt, _ := NewRouter(g)
	// r1 spans {c0,c3} → span-1 = 1; measured delay 3 → L = 3.
	l, err := rt.CalibrateLinkDelay(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-3) > 1e-12 {
		t.Errorf("L = %v, want 3", l)
	}
	// Fully co-located: L = 0.
	for _, f := range p.VNFs {
		pl.Assign(f.ID, "c1")
	}
	l, err = rt.CalibrateLinkDelay(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if l != 0 {
		t.Errorf("co-located L = %v, want 0", l)
	}
}
