// Package routing resolves placed VNF chains to physical paths over the
// datacenter topology. It turns the paper's abstract per-hop constant L
// (Eq. 16) into measured path delays — the Fig. 1 motivation made concrete:
// a chain served intra-server pays no network latency, while every
// inter-server transition pays the shortest-path delay between the two
// hosts — and provides a topology-aware placement algorithm that trades a
// little packing tightness for chain locality.
package routing

import (
	"errors"
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/topology"
)

// Path is the physical route of one request under a placement.
type Path struct {
	// Waypoints is the sequence of computing nodes visited, one per chain
	// position (consecutive duplicates preserved — they indicate
	// intra-server transitions).
	Waypoints []model.NodeID
	// Hops is the full vertex sequence including switches, with consecutive
	// shortest paths concatenated. Length 1 for a fully co-located chain.
	Hops []string
	// Delay is the total link delay along Hops.
	Delay float64
	// Transitions counts inter-node transitions (the paper's Σ η − 1 term
	// counts *distinct* nodes; Transitions counts actual network crossings,
	// which also charges A→B→A patterns).
	Transitions int
}

// Router resolves chains against one topology. Computing-node ids in the
// model must match compute vertex ids in the graph.
type Router struct {
	topo *topology.Graph
}

// NewRouter validates that the graph is usable (connected, has compute
// vertices) and returns a router.
func NewRouter(g *topology.Graph) (*Router, error) {
	if g == nil {
		return nil, errors.New("routing: nil topology")
	}
	if len(g.ComputeVertices()) == 0 {
		return nil, errors.New("routing: topology has no computing nodes")
	}
	if !g.Connected() {
		return nil, errors.New("routing: topology is disconnected")
	}
	return &Router{topo: g}, nil
}

// ChainPath resolves request r's chain under the placement to its physical
// path. Every VNF in the chain must be placed on a node that exists in the
// topology.
func (rt *Router) ChainPath(p *model.Problem, pl *model.Placement, r model.Request) (*Path, error) {
	if len(r.Chain) == 0 {
		return nil, fmt.Errorf("routing: request %s has an empty chain", r.ID)
	}
	path := &Path{}
	for _, fid := range r.Chain {
		node, ok := pl.Node(fid)
		if !ok {
			return nil, fmt.Errorf("routing: request %s: vnf %s unplaced", r.ID, fid)
		}
		if !rt.topo.HasVertex(string(node)) {
			return nil, fmt.Errorf("routing: node %s not in topology", node)
		}
		path.Waypoints = append(path.Waypoints, node)
	}
	path.Hops = []string{string(path.Waypoints[0])}
	for i := 1; i < len(path.Waypoints); i++ {
		a, b := string(path.Waypoints[i-1]), string(path.Waypoints[i])
		if a == b {
			continue // intra-server transition: no network crossing
		}
		segment, delay := rt.topo.ShortestPath(a, b)
		if segment == nil {
			return nil, fmt.Errorf("routing: no path between %s and %s", a, b)
		}
		path.Hops = append(path.Hops, segment[1:]...)
		path.Delay += delay
		path.Transitions++
	}
	return path, nil
}

// NetworkDelays resolves every request and returns per-request path delays.
// Rejected requests (absent from the schedule, if one is given) are skipped
// when sched is non-nil.
func (rt *Router) NetworkDelays(p *model.Problem, pl *model.Placement, sched *model.Schedule) (map[model.RequestID]float64, error) {
	out := make(map[model.RequestID]float64, len(p.Requests))
	for _, r := range p.Requests {
		if sched != nil && len(sched.InstanceOf[r.ID]) == 0 {
			continue
		}
		path, err := rt.ChainPath(p, pl, r)
		if err != nil {
			return nil, err
		}
		out[r.ID] = path.Delay
	}
	return out, nil
}

// CalibrateLinkDelay returns the constant L that makes the paper's Eq. 16
// approximation Σ(η−1)·L match the topology-measured network delays in
// aggregate: L = Σ path delays / Σ (span−1). It returns 0 when every chain
// is fully co-located.
func (rt *Router) CalibrateLinkDelay(p *model.Problem, pl *model.Placement) (float64, error) {
	var delaySum float64
	var spanSum int
	for _, r := range p.Requests {
		path, err := rt.ChainPath(p, pl, r)
		if err != nil {
			return 0, err
		}
		delaySum += path.Delay
		spanSum += pl.NodeSpan(r) - 1
	}
	if spanSum == 0 {
		return 0, nil
	}
	return delaySum / float64(spanSum), nil
}
