package routing

import (
	"errors"
	"strings"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/rng"
	"nfvchain/internal/topology"
	"nfvchain/internal/workload"
)

// clusteredWorld builds two far-apart clusters of nodes and two independent
// chains, each fitting inside one cluster but too big for one node: a
// locality-aware placer should keep each chain inside a single cluster.
func clusteredWorld() (*model.Problem, *topology.Graph) {
	g := topology.New()
	for _, id := range []string{"l0", "l1", "r0", "r1"} {
		g.AddVertex(id, topology.KindCompute)
	}
	// Clusters {l0,l1} and {r0,r1} joined by a long 10-link chain of
	// switches.
	g.MustAddEdge("l0", "l1", topology.DefaultLinkDelay)
	g.MustAddEdge("r0", "r1", topology.DefaultLinkDelay)
	prev := "l1"
	for i := 0; i < 10; i++ {
		sw := "sw" + string(rune('0'+i))
		g.AddVertex(sw, topology.KindSwitch)
		g.MustAddEdge(prev, sw, topology.DefaultLinkDelay)
		prev = sw
	}
	g.MustAddEdge(prev, "r0", topology.DefaultLinkDelay)

	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "l0", Capacity: 100},
			{ID: "l1", Capacity: 100},
			{ID: "r0", Capacity: 100},
			{ID: "r1", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "a1", Instances: 1, Demand: 60, ServiceRate: 100},
			{ID: "a2", Instances: 1, Demand: 60, ServiceRate: 100},
			{ID: "b1", Instances: 1, Demand: 60, ServiceRate: 100},
			{ID: "b2", Instances: 1, Demand: 60, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "ra", Chain: []model.VNFID{"a1", "a2"}, Rate: 1, DeliveryProb: 1},
			{ID: "rb", Chain: []model.VNFID{"b1", "b2"}, Rate: 1, DeliveryProb: 1},
		},
	}
	return p, g
}

func TestTopologyAwareFeasibleAndValid(t *testing.T) {
	p, g := clusteredWorld()
	alg := &TopologyAware{Topo: g, Seed: 1}
	res, err := alg.Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err)
	}
	if res.Iterations < len(p.VNFs) {
		t.Errorf("iterations = %d, want >= %d", res.Iterations, len(p.VNFs))
	}
	if alg.Name() != "TA-BFDSU" {
		t.Error("name wrong")
	}
}

func TestTopologyAwareKeepsChainsLocal(t *testing.T) {
	p, g := clusteredWorld()
	rt, err := NewRouter(g)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate network delay over several seeds: TA-BFDSU should beat
	// plain BFDSU clearly, since crossing the inter-cluster path costs 12
	// links while local placement costs ≤ 1.
	var taTotal, plainTotal float64
	for seed := uint64(0); seed < 10; seed++ {
		ta, err := (&TopologyAware{Topo: g, Seed: seed, LocalityBias: 4}).Place(p)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := (&placement.BFDSU{Seed: seed}).Place(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range p.Requests {
			tp, err := rt.ChainPath(p, ta.Placement, r)
			if err != nil {
				t.Fatal(err)
			}
			pp, err := rt.ChainPath(p, plain.Placement, r)
			if err != nil {
				t.Fatal(err)
			}
			taTotal += tp.Delay
			plainTotal += pp.Delay
		}
	}
	if taTotal >= plainTotal {
		t.Errorf("TA-BFDSU network delay %v not below plain BFDSU %v", taTotal, plainTotal)
	}
}

func TestTopologyAwareOnGeneratedWorkload(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumRequests = 100
	cfg.NumNodes = 12
	p, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Random topology whose compute ids are relabeled to match.
	g, err := topology.RandomConnected(12, 20, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Nodes {
		p.Nodes[i].ID = model.NodeID(g.ComputeVertices()[i])
	}
	res, err := (&TopologyAware{Topo: g, Seed: 5}).Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyAwareErrors(t *testing.T) {
	p, g := clusteredWorld()

	t.Run("nil topology", func(t *testing.T) {
		if _, err := (&TopologyAware{Seed: 1}).Place(p); err == nil {
			t.Error("nil topology accepted")
		}
	})
	t.Run("node missing from topology", func(t *testing.T) {
		bad := p.Clone()
		bad.Nodes[0].ID = "ghost"
		// Fix chains' validity: requests reference VNFs, not nodes, so the
		// clone stays valid; only the topology lookup must fail.
		if _, err := (&TopologyAware{Topo: g, Seed: 1}).Place(bad); err == nil ||
			!strings.Contains(err.Error(), "not in topology") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("infeasible", func(t *testing.T) {
		bad := p.Clone()
		for i := range bad.VNFs {
			bad.VNFs[i].Demand = 90 // four 90s into four 100s with pairs impossible
		}
		bad.VNFs[0].Demand = 150
		_, err := (&TopologyAware{Topo: g, Seed: 1}).Place(bad)
		if !errors.Is(err, placement.ErrInfeasible) {
			t.Errorf("err = %v, want ErrInfeasible", err)
		}
	})
}

func TestChainPeers(t *testing.T) {
	p, _ := clusteredWorld()
	peers := chainPeers(p)
	if !peers["a1"]["a2"] || !peers["a2"]["a1"] {
		t.Error("chain peers missing within chain a")
	}
	if peers["a1"]["b1"] {
		t.Error("cross-chain peers invented")
	}
	if peers["a1"]["a1"] {
		t.Error("self peer recorded")
	}
}
