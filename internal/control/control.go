// Package control implements an online control plane for the fault-injected
// simulator: a Navarch-style pool manager that runs as a periodic
// simulate.ControlHook on top of the repair controller's inventory and
// placement machinery. Where internal/repair only reacts to node failures,
// this controller watches live per-instance utilization ρ over each tick
// window and continuously reshapes the deployment:
//
//   - Autoscaling: a VNF whose active instances run hot (mean ρ above
//     Config.ScaleUpUtil) gains a replica — placed by the repair
//     controller's BFDSU residual-capacity draw and paying the
//     internal/dynamic boot cost before it serves; one running cold (mean ρ
//     below Config.ScaleDownUtil, with slack to spare) drains and retires
//     an instance, shrinking M_f without losing in-flight packets.
//
//   - Migration: instances stranded on failed nodes, or crowded onto hot
//     nodes, are moved to better hosts for an explicit migration cost
//     (freeze + transfer delay); requests are rebalanced across the move
//     with the same RCKK partitioning the repair paths use. When a
//     correlated preemption announces itself ahead of time
//     (simulate.PreemptionPlan.LeadTime), the controller evacuates the
//     doomed nodes before the loss.
//
//   - Graceful degradation: when even the reshaped pool cannot cover the
//     offered load at the target utilization, the controller sheds the
//     uncoverable admission fraction deterministically
//     (RepairControl.SetShedFraction) instead of letting queues diverge.
//
// Every decision is deterministic at a fixed seed: observation order follows
// the instance table and the problem's VNF order, placement draws come from
// the repair controller's seeded decision counter, and shedding uses an
// RNG-free error accumulator. Attaching no controller (simulate.Config.
// Control == nil) leaves runs bit-identical to historical ones.
package control

import (
	"errors"
	"fmt"
	"math"

	"nfvchain/internal/model"
	"nfvchain/internal/repair"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
)

// Policy selects how much of the control plane is active. Policies are
// ordered: each level includes everything below it.
type Policy int

// Supported policies.
const (
	// PolicyNone disables the control plane entirely — the unmitigated
	// baseline. Hooks attached anyway are inert.
	PolicyNone Policy = iota
	// PolicyRepair reacts to node transitions exactly like a
	// repair.Controller in reschedule+replace mode, but never acts between
	// them: no autoscaling, no migration, no shedding.
	PolicyRepair
	// PolicyAutoscale adds the periodic tick loop: utilization-driven
	// scale-up/scale-down and deterministic admission shedding under
	// capacity shortage.
	PolicyAutoscale
	// PolicyAutoscaleMigrate additionally migrates instances — off failed
	// nodes, off hot nodes, and (given advance notice) off nodes about to
	// be preempted.
	PolicyAutoscaleMigrate
)

// String returns the flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyRepair:
		return "repair"
	case PolicyAutoscale:
		return "autoscale"
	case PolicyAutoscaleMigrate:
		return "autoscale+migrate"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses a -control flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "none":
		return PolicyNone, nil
	case "repair":
		return PolicyRepair, nil
	case "autoscale":
		return PolicyAutoscale, nil
	case "autoscale+migrate", "migrate":
		return PolicyAutoscaleMigrate, nil
	default:
		return 0, fmt.Errorf("control: unknown policy %q (want none|repair|autoscale|autoscale+migrate)", s)
	}
}

// Config parameterizes a Controller.
type Config struct {
	// Problem, Placement and Schedule describe the deployment being
	// simulated — the same values passed to simulate.Config.
	Problem   *model.Problem
	Placement *model.Placement
	Schedule  *model.Schedule

	// Policy selects the active mechanisms; the zero value is PolicyNone.
	Policy Policy

	// ScaleUpUtil is the mean window utilization above which a VNF gains a
	// replica (default 0.85); ScaleDownUtil the level below which it may
	// retire one (default 0.30). Hysteresis lives in the gap.
	ScaleUpUtil   float64
	ScaleDownUtil float64

	// TargetUtil is the per-VNF utilization ceiling the shedding valve
	// defends: admissions are shed so residual demand ≤ TargetUtil × active
	// capacity (default 0.95).
	TargetUtil float64

	// SetupCost is the boot delay (seconds) a new replica pays before
	// serving; zero defaults to dynamic.SetupCostVM (pass
	// dynamic.SetupCostClickOS for the paper's lightweight alternative).
	SetupCost float64

	// MigrationCost is the freeze+transfer delay (seconds) a migrating
	// instance pays before resuming on its destination; zero defaults to
	// SetupCost.
	MigrationCost float64

	// Partitioner rebalances requests across instance sets; nil defaults to
	// RCKK, the paper's scheduler.
	Partitioner scheduling.Partitioner

	// Seed makes placement draws deterministic.
	Seed uint64
}

// Stats counts the controller's activity over one run.
type Stats struct {
	// Ticks counts controller ticks observed.
	Ticks int
	// ScaleUps and ScaleDowns count autoscaling actions; SetupSecs is the
	// total boot time paid by scale-ups.
	ScaleUps   int
	ScaleDowns int
	SetupSecs  float64
	// Migrations counts tick-driven moves (off failed or hot nodes);
	// Evacuations counts preemption-notice moves ahead of a loss.
	// MigrationSecs is the total freeze+transfer time paid.
	Migrations    int
	Evacuations   int
	MigrationSecs float64
	// NodeSeconds integrates the number of nodes hosting at least one live
	// instance over the run — the cost axis of the cost-vs-SLO frontier.
	NodeSeconds float64
	// Repair is the embedded repair controller's own activity (node
	// transitions, reschedules, replacements).
	Repair repair.Stats
}

// Controller is the pool manager: one value implements simulate.FaultHook
// (node transitions), simulate.ControlHook (periodic ticks) and
// simulate.PreemptionNoticeHook (ahead-of-loss evacuation), all sharing the
// embedded repair controller as the single placement/inventory authority.
// Create one per deployment and Reset it between runs; it is not safe for
// concurrent use, matching the simulator's single-goroutine loop.
type Controller struct {
	cfg Config
	rep *repair.Controller

	stats    Stats
	lastCost float64

	// noticed marks nodes under an active preemption notice (cleared when
	// the node actually goes down), so placements avoid doomed hosts.
	noticed map[model.NodeID]bool

	// Tick scratch, reused across ticks.
	obs     []simulate.InstanceObs
	obsIdx  map[simulate.InstanceKey]int
	hosts   []repair.InstanceHost
	surv    []int
	nodeSet map[model.NodeID]struct{}
	nodeSum map[model.NodeID]float64
	nodeN   map[model.NodeID]int
}

// New validates cfg and builds a controller primed with the initial
// placement.
func New(cfg Config) (*Controller, error) {
	switch cfg.Policy {
	case PolicyNone, PolicyRepair, PolicyAutoscale, PolicyAutoscaleMigrate:
	default:
		return nil, fmt.Errorf("control: unknown policy %d", cfg.Policy)
	}
	if cfg.ScaleUpUtil == 0 {
		cfg.ScaleUpUtil = 0.85
	}
	if cfg.ScaleDownUtil == 0 {
		cfg.ScaleDownUtil = 0.30
	}
	if cfg.TargetUtil == 0 {
		cfg.TargetUtil = 0.95
	}
	if !(cfg.ScaleDownUtil > 0 && cfg.ScaleDownUtil < cfg.ScaleUpUtil && cfg.ScaleUpUtil < 1) {
		return nil, fmt.Errorf("control: need 0 < ScaleDownUtil (%v) < ScaleUpUtil (%v) < 1",
			cfg.ScaleDownUtil, cfg.ScaleUpUtil)
	}
	if !(cfg.TargetUtil > 0 && cfg.TargetUtil <= 1) {
		return nil, fmt.Errorf("control: TargetUtil %v outside (0,1]", cfg.TargetUtil)
	}
	if cfg.MigrationCost < 0 || math.IsNaN(cfg.MigrationCost) || math.IsInf(cfg.MigrationCost, 0) {
		return nil, fmt.Errorf("control: invalid migration cost %v", cfg.MigrationCost)
	}
	rep, err := repair.New(repair.Config{
		Problem:     cfg.Problem,
		Placement:   cfg.Placement,
		Schedule:    cfg.Schedule,
		Mode:        repair.ModeRescheduleReplace,
		Partitioner: cfg.Partitioner,
		SetupCost:   cfg.SetupCost,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return nil, errors.New("control: " + err.Error())
	}
	if cfg.SetupCost == 0 {
		cfg.SetupCost = rep.SetupCost()
	}
	if cfg.MigrationCost == 0 {
		cfg.MigrationCost = cfg.SetupCost
	}
	return &Controller{
		cfg:     cfg,
		rep:     rep,
		noticed: make(map[model.NodeID]bool),
		obsIdx:  make(map[simulate.InstanceKey]int),
		nodeSet: make(map[model.NodeID]struct{}),
		nodeSum: make(map[model.NodeID]float64),
		nodeN:   make(map[model.NodeID]int),
	}, nil
}

// Reset re-primes the controller to its initial-placement state with a new
// seed, retaining every map and scratch buffer — equivalent to New with the
// same Config and the given seed, so sweeps reuse one controller across
// runs.
func (c *Controller) Reset(seed uint64) {
	c.cfg.Seed = seed
	c.rep.Reset(seed)
	c.stats = Stats{}
	c.lastCost = 0
	clear(c.noticed)
}

// Stats returns the controller's accumulated activity. NodeSeconds is
// integrated up to the last observed event; use StatsAt to fold it to the
// horizon after a run.
func (c *Controller) Stats() Stats {
	st := c.stats
	st.Repair = c.rep.Stats()
	return st
}

// StatsAt folds the nodes-in-service cost integral up to now (typically the
// horizon, after the run ends) and returns the stats.
func (c *Controller) StatsAt(now float64) Stats {
	c.foldCost(now)
	return c.Stats()
}

// foldCost integrates nodes-in-service over [lastCost, now). Called before
// every inventory change so each interval is charged at the count that held
// throughout it.
func (c *Controller) foldCost(now float64) {
	if now > c.lastCost {
		c.stats.NodeSeconds += float64(c.nodesInService()) * (now - c.lastCost)
		c.lastCost = now
	}
}

// nodesInService counts distinct nodes hosting at least one live instance.
func (c *Controller) nodesInService() int {
	clear(c.nodeSet)
	hosts := c.hosts[:0]
	for _, f := range c.cfg.Problem.VNFs {
		hosts = c.rep.InstancesOf(f.ID, hosts[:0])
		for _, h := range hosts {
			c.nodeSet[h.Node] = struct{}{}
		}
	}
	c.hosts = hosts
	return len(c.nodeSet)
}

// NodeDown implements simulate.FaultHook: under PolicyRepair and above the
// embedded repair controller reschedules and replaces exactly as
// internal/repair would.
func (c *Controller) NodeDown(now float64, node model.NodeID, ctrl *simulate.RepairControl) {
	c.foldCost(now)
	delete(c.noticed, node) // the announced loss has landed
	if c.cfg.Policy >= PolicyRepair {
		c.rep.NodeDown(now, node, ctrl)
	}
}

// NodeUp implements simulate.FaultHook.
func (c *Controller) NodeUp(now float64, node model.NodeID, ctrl *simulate.RepairControl) {
	c.foldCost(now)
	if c.cfg.Policy >= PolicyRepair {
		c.rep.NodeUp(now, node, ctrl)
	}
}

// PreemptionNotice implements simulate.PreemptionNoticeHook: under
// PolicyAutoscaleMigrate the controller evacuates every instance hosted on
// a doomed node to a surviving host ahead of the loss, paying the migration
// cost, and rebalances the affected VNFs onto their post-evacuation pools.
func (c *Controller) PreemptionNotice(now float64, nodes []model.NodeID, downAt float64, ctrl *simulate.RepairControl) {
	if c.cfg.Policy < PolicyAutoscaleMigrate {
		return
	}
	c.foldCost(now)
	for _, n := range nodes {
		c.noticed[n] = true
	}
	safe := func(n model.NodeID) bool { return ctrl.NodeIsUp(n) && !c.noticed[n] }
	resume := now + c.cfg.MigrationCost
	for _, f := range c.cfg.Problem.VNFs {
		c.hosts = c.rep.InstancesOf(f.ID, c.hosts[:0])
		moved := false
		for _, h := range c.hosts {
			if !c.noticed[h.Node] {
				continue
			}
			target, ok := c.rep.PickNode(f.ID, safe)
			if !ok {
				continue
			}
			if err := ctrl.MigrateInstance(f.ID, h.Instance, target, resume); err != nil {
				continue
			}
			c.rep.MoveInstance(f.ID, h.Instance, target)
			c.stats.Evacuations++
			c.stats.MigrationSecs += c.cfg.MigrationCost
			moved = true
		}
		if moved {
			c.surv = append(c.surv[:0], c.rep.Survivors(f.ID, safe)...)
			c.rep.Rebalance(f.ID, c.surv, ctrl)
		}
	}
}

// Tick implements simulate.ControlHook: observe the window, autoscale each
// VNF, migrate under PolicyAutoscaleMigrate, and set the admission-shedding
// valve from the residual capacity shortfall.
func (c *Controller) Tick(now float64, cp *simulate.ControlPlane) {
	c.stats.Ticks++
	c.foldCost(now)
	if c.cfg.Policy < PolicyAutoscale {
		return
	}
	c.obs = cp.Instances(c.obs[:0])
	clear(c.obsIdx)
	for i := range c.obs {
		c.obsIdx[c.obs[i].Key] = i
	}
	rc := &cp.RepairControl

	// coverage is the worst-case fraction of offered load the active pools
	// can absorb at TargetUtil; anything beyond it gets shed.
	coverage := 1.0
	for _, f := range c.cfg.Problem.VNFs {
		c.hosts = c.rep.InstancesOf(f.ID, c.hosts[:0])
		if len(c.hosts) == 0 {
			continue
		}
		demand := c.rep.OfferedLoad(f.ID)
		var utilSum, capacity float64
		active := 0
		victim, victimSeen := -1, false
		for _, h := range c.hosts {
			oi, ok := c.obsIdx[simulate.InstanceKey{VNF: f.ID, Instance: h.Instance}]
			if !ok || c.obs[oi].Down {
				continue
			}
			active++
			capacity += f.ServiceRate
			utilSum += c.obs[oi].Utilization
			if !victimSeen || h.Instance > victim {
				victim, victimSeen = h.Instance, true
			}
		}
		if demand > 0 {
			cov := 0.0
			if capacity > 0 {
				cov = math.Min(1, c.cfg.TargetUtil*capacity/demand)
			}
			coverage = math.Min(coverage, cov)
		}
		if active == 0 {
			// Every instance is down (the repair hook replaces capacity on
			// failures it observes, but a fully preempted pool may still be
			// empty): try to boot a replica on any up node.
			c.scaleUp(f.ID, now, cp, rc, cp.NodeIsUp)
			continue
		}
		mean := utilSum / float64(active)
		switch {
		case mean > c.cfg.ScaleUpUtil:
			c.scaleUp(f.ID, now, cp, rc, cp.NodeIsUp)
		case mean < c.cfg.ScaleDownUtil && active > 1 &&
			demand <= c.cfg.TargetUtil*(capacity-f.ServiceRate):
			c.scaleDown(f.ID, victim, rc)
		}
	}
	if c.cfg.Policy >= PolicyAutoscaleMigrate {
		c.migrateTick(now, cp, rc)
	}
	shed := 1 - coverage
	if shed < 0 {
		shed = 0
	}
	_ = rc.SetShedFraction(shed)
}

// scaleUp boots one replica of f on a node the predicate accepts and
// rebalances f's requests across the enlarged pool.
func (c *Controller) scaleUp(f model.VNFID, now float64, cp *simulate.ControlPlane, rc *simulate.RepairControl, keep func(model.NodeID) bool) {
	node, ok := c.rep.PickNode(f, keep)
	if !ok {
		return
	}
	k, err := rc.AddInstance(f, node, now+c.cfg.SetupCost)
	if err != nil {
		return
	}
	c.rep.RecordInstance(f, k, node)
	c.surv = append(c.surv[:0], c.rep.Survivors(f, cp.NodeIsUp)...)
	c.rep.Rebalance(f, c.surv, rc)
	c.stats.ScaleUps++
	c.stats.SetupSecs += c.cfg.SetupCost
}

// scaleDown drains instance victim of f: requests are rebalanced onto the
// rest of the pool first, then the instance retires (finishing any residual
// work) and leaves the inventory.
func (c *Controller) scaleDown(f model.VNFID, victim int, rc *simulate.RepairControl) {
	c.surv = c.surv[:0]
	for _, k := range c.rep.Survivors(f, rc.NodeIsUp) {
		if k != victim {
			c.surv = append(c.surv, k)
		}
	}
	if len(c.surv) == 0 {
		return
	}
	c.rep.Rebalance(f, c.surv, rc)
	if err := rc.RemoveInstance(f, victim); err != nil {
		return
	}
	c.rep.ForgetInstance(f, victim)
	c.stats.ScaleDowns++
}

// migrateTick moves instances stranded on down nodes back into service on
// surviving hosts (rather than waiting out the recovery), paying the
// migration cost, and rebalances the affected VNFs.
func (c *Controller) migrateTick(now float64, cp *simulate.ControlPlane, rc *simulate.RepairControl) {
	safe := func(n model.NodeID) bool { return cp.NodeIsUp(n) && !c.noticed[n] }
	resume := now + c.cfg.MigrationCost
	for _, f := range c.cfg.Problem.VNFs {
		c.hosts = c.rep.InstancesOf(f.ID, c.hosts[:0])
		moved := false
		for _, h := range c.hosts {
			if cp.NodeIsUp(h.Node) {
				continue
			}
			target, ok := c.rep.PickNode(f.ID, safe)
			if !ok {
				continue
			}
			if err := rc.MigrateInstance(f.ID, h.Instance, target, resume); err != nil {
				continue
			}
			c.rep.MoveInstance(f.ID, h.Instance, target)
			c.stats.Migrations++
			c.stats.MigrationSecs += c.cfg.MigrationCost
			moved = true
		}
		if moved {
			c.surv = append(c.surv[:0], c.rep.Survivors(f.ID, cp.NodeIsUp)...)
			c.rep.Rebalance(f.ID, c.surv, rc)
		}
	}
	c.hotNodeTick(now, cp, rc)
}

// hotNodeTick relieves the hottest node: when one node's instances run
// collectively above ScaleUpUtil while it hosts at least two of them, its
// least-utilized instance migrates to a host picked over the remaining
// nodes' residual capacities. One move per tick bounds churn; ties resolve
// in problem node order and instance-table order, keeping the decision
// deterministic.
func (c *Controller) hotNodeTick(now float64, cp *simulate.ControlPlane, rc *simulate.RepairControl) {
	clear(c.nodeSum)
	clear(c.nodeN)
	for i := range c.obs {
		o := &c.obs[i]
		if o.Down || o.Retired || o.Node == "" {
			continue
		}
		c.nodeSum[o.Node] += o.Utilization
		c.nodeN[o.Node]++
	}
	var hot model.NodeID
	hotMean := c.cfg.ScaleUpUtil
	for _, n := range c.cfg.Problem.Nodes {
		cnt := c.nodeN[n.ID]
		if cnt < 2 {
			continue
		}
		if mean := c.nodeSum[n.ID] / float64(cnt); mean > hotMean {
			hot, hotMean = n.ID, mean
		}
	}
	if hot == "" {
		return
	}
	best := -1
	for i := range c.obs {
		o := &c.obs[i]
		if o.Node != hot || o.Down || o.Retired || o.Booting {
			continue
		}
		if best < 0 || o.Utilization < c.obs[best].Utilization {
			best = i
		}
	}
	if best < 0 {
		return
	}
	key := c.obs[best].Key
	safe := func(n model.NodeID) bool { return cp.NodeIsUp(n) && !c.noticed[n] && n != hot }
	target, ok := c.rep.PickNode(key.VNF, safe)
	if !ok {
		return
	}
	if err := rc.MigrateInstance(key.VNF, key.Instance, target, now+c.cfg.MigrationCost); err != nil {
		return
	}
	c.rep.MoveInstance(key.VNF, key.Instance, target)
	c.stats.Migrations++
	c.stats.MigrationSecs += c.cfg.MigrationCost
	c.surv = append(c.surv[:0], c.rep.Survivors(key.VNF, cp.NodeIsUp)...)
	c.rep.Rebalance(key.VNF, c.surv, rc)
}

// Interface conformance.
var (
	_ simulate.FaultHook            = (*Controller)(nil)
	_ simulate.ControlHook          = (*Controller)(nil)
	_ simulate.PreemptionNoticeHook = (*Controller)(nil)
)
