package control

import (
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
)

// hotFixture is a four-node deployment where each VNF starts with a single
// instance running near ρ ≈ 0.9 — above the default scale-up threshold — with
// plenty of spare nodes to scale and migrate onto.
func hotFixture(t *testing.T) (*model.Problem, *model.Schedule, *model.Placement) {
	t.Helper()
	prob := &model.Problem{
		Nodes: []model.Node{
			{ID: "a", Capacity: 10},
			{ID: "b", Capacity: 10},
			{ID: "c", Capacity: 10},
			{ID: "d", Capacity: 10},
		},
		VNFs: []model.VNF{
			{ID: "fw", Instances: 1, Demand: 1, ServiceRate: 100},
			{ID: "nat", Instances: 1, Demand: 1, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"fw", "nat"}, Rate: 50, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"fw", "nat"}, Rate: 40, DeliveryProb: 1},
		},
	}
	sched, err := scheduling.ScheduleAll(prob, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	pl := model.NewPlacement()
	pl.Assign("fw", "a")
	pl.Assign("nat", "b")
	return prob, sched, pl
}

// coldFixture starts each VNF with two instances at ρ ≈ 0.03: far below the
// scale-down threshold, with ample slack to retire one replica per VNF.
func coldFixture(t *testing.T) (*model.Problem, *model.Schedule, *model.Placement) {
	t.Helper()
	prob := &model.Problem{
		Nodes: []model.Node{
			{ID: "a", Capacity: 10},
			{ID: "b", Capacity: 10},
			{ID: "c", Capacity: 10},
		},
		VNFs: []model.VNF{
			{ID: "fw", Instances: 2, Demand: 1, ServiceRate: 100},
			{ID: "nat", Instances: 2, Demand: 1, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"fw", "nat"}, Rate: 3, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"fw", "nat"}, Rate: 3, DeliveryProb: 1},
		},
	}
	sched, err := scheduling.ScheduleAll(prob, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	pl := model.NewPlacement()
	pl.Assign("fw", "a")
	pl.Assign("nat", "b")
	return prob, sched, pl
}

// newController builds a controller over the fixture with fast (ClickOS-ish)
// setup and migration costs so actions land well inside the short horizons.
func newController(t *testing.T, prob *model.Problem, sched *model.Schedule, pl *model.Placement, policy Policy) *Controller {
	t.Helper()
	ctrl, err := New(Config{
		Problem:       prob,
		Placement:     pl,
		Schedule:      sched,
		Policy:        policy,
		SetupCost:     0.05,
		MigrationCost: 0.05,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// runControlled simulates the deployment with ctrl attached as fault hook and
// control hook; ctrl == nil runs the unmitigated baseline over the same fault
// sample path.
func runControlled(t *testing.T, prob *model.Problem, sched *model.Schedule, pl *model.Placement, ctrl *Controller, pp *simulate.PreemptionPlan, seed uint64) *simulate.Results {
	t.Helper()
	cfg := simulate.Config{
		Problem:   prob,
		Schedule:  sched,
		Placement: pl,
		Horizon:   12,
		LinkDelay: 0.001,
		Seed:      seed,
	}
	if pp != nil {
		cfg.FaultPlan = &simulate.FaultPlan{Preemption: pp}
	}
	if ctrl != nil {
		cfg.FaultHook = ctrl
		cfg.Control = ctrl
		cfg.ControlInterval = 0.5
	}
	res, err := simulate.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkConservation asserts the extended packet ledger: every offered packet
// is delivered, in flight, buffer-dropped, failure-dropped, or shed.
func checkConservation(t *testing.T, res *simulate.Results) {
	t.Helper()
	got := res.Delivered + res.InFlight + res.Dropped + res.FailureDrops + res.Shed
	if got != res.Generated {
		t.Errorf("conservation violated: delivered %d + inflight %d + dropped %d + failed %d + shed %d = %d, want generated %d",
			res.Delivered, res.InFlight, res.Dropped, res.FailureDrops, res.Shed, got, res.Generated)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{PolicyNone, PolicyRepair, PolicyAutoscale, PolicyAutoscaleMigrate} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParsePolicy("migrate"); err != nil || got != PolicyAutoscaleMigrate {
		t.Errorf("ParsePolicy(migrate) = %v, %v", got, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus policy")
	}
}

func TestNewValidation(t *testing.T) {
	prob, sched, pl := hotFixture(t)
	base := Config{Problem: prob, Placement: pl, Schedule: sched}
	cases := map[string]func(Config) Config{
		"unknown policy":      func(c Config) Config { c.Policy = Policy(7); return c },
		"inverted thresholds": func(c Config) Config { c.ScaleUpUtil = 0.2; c.ScaleDownUtil = 0.5; return c },
		"scale-up above one":  func(c Config) Config { c.ScaleUpUtil = 1.5; return c },
		"bad target util":     func(c Config) Config { c.TargetUtil = 1.5; return c },
		"negative migration":  func(c Config) Config { c.MigrationCost = -1; return c },
		"nil problem":         func(c Config) Config { c.Problem = nil; return c },
	}
	for name, mut := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := New(mut(base)); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestAutoscaleUpAddsCapacity drives a hot single-instance deployment: the
// tick loop must boot replicas and cut the mean sojourn time against the
// unmitigated baseline on identical arrival/service sample paths.
func TestAutoscaleUpAddsCapacity(t *testing.T) {
	prob, sched, pl := hotFixture(t)
	plain := runControlled(t, prob, sched, pl, nil, nil, 7)
	ctrl := newController(t, prob, sched, pl, PolicyAutoscale)
	scaled := runControlled(t, prob, sched, pl, ctrl, nil, 7)
	stats := ctrl.StatsAt(12)

	if scaled.Generated != plain.Generated {
		t.Fatalf("arrival streams diverged: %d vs %d generated", scaled.Generated, plain.Generated)
	}
	if stats.ScaleUps == 0 {
		t.Fatalf("hot deployment triggered no scale-ups: %+v", stats)
	}
	if len(scaled.Utilization) <= len(plain.Utilization) {
		t.Errorf("no new instances in results: %d vs %d", len(scaled.Utilization), len(plain.Utilization))
	}
	if scaled.Latency.Mean() >= plain.Latency.Mean() {
		t.Errorf("autoscaled mean latency %v not below baseline %v", scaled.Latency.Mean(), plain.Latency.Mean())
	}
	if stats.Ticks == 0 || stats.NodeSeconds <= 0 {
		t.Errorf("tick/cost accounting empty: %+v", stats)
	}
	checkConservation(t, scaled)
}

// TestScaleDownRetiresIdleCapacity drives a cold two-instance deployment: the
// controller must drain and retire replicas without losing packets.
func TestScaleDownRetiresIdleCapacity(t *testing.T) {
	prob, sched, pl := coldFixture(t)
	ctrl := newController(t, prob, sched, pl, PolicyAutoscale)
	res := runControlled(t, prob, sched, pl, ctrl, nil, 7)
	stats := ctrl.StatsAt(12)

	if stats.ScaleDowns == 0 {
		t.Fatalf("cold deployment triggered no scale-downs: %+v", stats)
	}
	if res.Delivered == 0 || res.FailureDrops != 0 || res.Shed != 0 {
		t.Errorf("scale-down lost traffic: %+v", res)
	}
	checkConservation(t, res)
}

// preemptionPlan is the shared correlated-loss scenario: roughly four events
// over the horizon, each taking half the cluster down for two seconds, with
// advance notice.
func preemptionPlan() *simulate.PreemptionPlan {
	return &simulate.PreemptionPlan{MeanInterval: 2.5, GroupSize: 2, Recovery: 2, LeadTime: 0.4}
}

// TestMigratePolicySurvivesPreemption is the headline robustness property: on
// the same preemption sample path, autoscale+migrate must strictly beat the
// unmitigated baseline on availability and permanent losses by evacuating
// doomed nodes ahead of each loss.
func TestMigratePolicySurvivesPreemption(t *testing.T) {
	prob, sched, pl := hotFixture(t)
	plain := runControlled(t, prob, sched, pl, nil, preemptionPlan(), 7)
	ctrl := newController(t, prob, sched, pl, PolicyAutoscaleMigrate)
	managed := runControlled(t, prob, sched, pl, ctrl, preemptionPlan(), 7)
	stats := ctrl.StatsAt(12)

	if managed.Generated != plain.Generated {
		t.Fatalf("fault/arrival streams diverged: %d vs %d generated", managed.Generated, plain.Generated)
	}
	if plain.FailureDrops == 0 {
		t.Fatal("baseline saw no preemption losses; scenario is vacuous")
	}
	if managed.Availability <= plain.Availability {
		t.Errorf("managed availability %v not above baseline %v", managed.Availability, plain.Availability)
	}
	if managed.FailureDrops >= plain.FailureDrops {
		t.Errorf("managed failure drops %d not below baseline %d", managed.FailureDrops, plain.FailureDrops)
	}
	if stats.Evacuations+stats.Migrations == 0 {
		t.Errorf("migrate policy moved nothing: %+v", stats)
	}
	checkConservation(t, plain)
	checkConservation(t, managed)
}

// TestTotalPreemptionSurvival preempts the entire cluster at once, repeatedly:
// every node hosting every VNF goes down together. The run must neither
// deadlock nor diverge — traffic is shed or served within the horizon and the
// extended ledger stays balanced.
func TestTotalPreemptionSurvival(t *testing.T) {
	prob, sched, pl := hotFixture(t)
	pp := &simulate.PreemptionPlan{MeanInterval: 3, GroupSize: 4, Recovery: 1.5, LeadTime: 0.3}
	ctrl := newController(t, prob, sched, pl, PolicyAutoscaleMigrate)
	res := runControlled(t, prob, sched, pl, ctrl, pp, 7)

	if res.Delivered == 0 {
		t.Error("total preemption delivered nothing")
	}
	if res.Shed == 0 {
		t.Error("capacity shortage shed no admissions")
	}
	if res.FailureDrops == 0 {
		t.Error("full-cluster preemption dropped nothing; scenario is vacuous")
	}
	checkConservation(t, res)
}

// TestControlDeterminism asserts equal seeds replay equal control decisions:
// identical results and stats across two managed runs.
func TestControlDeterminism(t *testing.T) {
	prob, sched, pl := hotFixture(t)
	run := func() (*simulate.Results, Stats) {
		ctrl := newController(t, prob, sched, pl, PolicyAutoscaleMigrate)
		res := runControlled(t, prob, sched, pl, ctrl, preemptionPlan(), 7)
		return res, ctrl.StatsAt(12)
	}
	res1, stats1 := run()
	res2, stats2 := run()
	if res1.Availability != res2.Availability || res1.Delivered != res2.Delivered ||
		res1.Shed != res2.Shed || res1.FailureDrops != res2.FailureDrops {
		t.Errorf("managed runs diverged: %v/%d/%d/%d vs %v/%d/%d/%d",
			res1.Availability, res1.Delivered, res1.Shed, res1.FailureDrops,
			res2.Availability, res2.Delivered, res2.Shed, res2.FailureDrops)
	}
	if stats1 != stats2 {
		t.Errorf("control stats diverged: %+v vs %+v", stats1, stats2)
	}
}

// TestResetMatchesFresh pins the reuse contract, mirroring the repair
// controller's: a Reset controller must behave bit-identically to a freshly
// constructed one, including when the reset run replays the seed of a prior,
// state-mutating run.
func TestResetMatchesFresh(t *testing.T) {
	prob, sched, pl := hotFixture(t)
	ctrl := newController(t, prob, sched, pl, PolicyAutoscaleMigrate)
	// Dirty the controller with one run on a different seed, then Reset and
	// compare against a fresh-controller baseline.
	runControlled(t, prob, sched, pl, ctrl, preemptionPlan(), 99)
	for trial := 0; trial < 3; trial++ {
		ctrl.Reset(1)
		gotRes := runControlled(t, prob, sched, pl, ctrl, preemptionPlan(), 7)
		gotStats := ctrl.StatsAt(12)
		fresh := newController(t, prob, sched, pl, PolicyAutoscaleMigrate)
		wantRes := runControlled(t, prob, sched, pl, fresh, preemptionPlan(), 7)
		wantStats := fresh.StatsAt(12)
		if gotRes.Availability != wantRes.Availability || gotRes.Delivered != wantRes.Delivered ||
			gotRes.Shed != wantRes.Shed {
			t.Fatalf("trial %d: reset run diverged from fresh: %v/%d/%d vs %v/%d/%d", trial,
				gotRes.Availability, gotRes.Delivered, gotRes.Shed,
				wantRes.Availability, wantRes.Delivered, wantRes.Shed)
		}
		if gotStats != wantStats {
			t.Fatalf("trial %d: reset stats diverged from fresh: %+v vs %+v", trial, gotStats, wantStats)
		}
	}
}

// TestPolicyOrderingInert asserts PolicyNone hooks are inert: attaching the
// controller must not change the simulation outcome versus no hooks at all.
func TestPolicyOrderingInert(t *testing.T) {
	prob, sched, pl := hotFixture(t)
	plain := runControlled(t, prob, sched, pl, nil, preemptionPlan(), 7)
	ctrl := newController(t, prob, sched, pl, PolicyNone)
	inert := runControlled(t, prob, sched, pl, ctrl, preemptionPlan(), 7)
	if inert.Availability != plain.Availability || inert.Delivered != plain.Delivered ||
		inert.FailureDrops != plain.FailureDrops || inert.Shed != 0 {
		t.Errorf("PolicyNone hooks perturbed the run: %v/%d/%d/%d vs %v/%d/%d",
			inert.Availability, inert.Delivered, inert.FailureDrops, inert.Shed,
			plain.Availability, plain.Delivered, plain.FailureDrops)
	}
	if st := ctrl.StatsAt(12); st.ScaleUps != 0 || st.Migrations != 0 || st.Evacuations != 0 ||
		st.Repair.Reschedules != 0 || st.Ticks == 0 {
		t.Errorf("PolicyNone acted: %+v", st)
	}
}
