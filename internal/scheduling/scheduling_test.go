package scheduling

import (
	"math"
	"testing"
	"testing/quick"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/workload"
)

func items(ws ...float64) []Item {
	out := make([]Item, len(ws))
	for i, w := range ws {
		out[i] = Item{ID: model.RequestID(string(rune('a' + i))), Weight: w}
	}
	return out
}

func allPartitioners() []Partitioner {
	return []Partitioner{RCKK{}, CGA{}, CGA{MaxNodes: 10000}, KKForward{}, RoundRobin{}, &Random{Seed: 1}, &Exact{}}
}

func TestValidateRejectsBadInput(t *testing.T) {
	for _, alg := range allPartitioners() {
		if _, err := alg.Partition(items(1, 2), 0); err == nil {
			t.Errorf("%s accepted m=0", alg.Name())
		}
		if _, err := alg.Partition([]Item{{ID: "x", Weight: -1}}, 2); err == nil {
			t.Errorf("%s accepted negative weight", alg.Name())
		}
	}
}

func TestEmptyAndSingleInstance(t *testing.T) {
	for _, alg := range allPartitioners() {
		got, err := alg.Partition(nil, 3)
		if err != nil || len(got) != 0 {
			t.Errorf("%s on empty items: %v, %v", alg.Name(), got, err)
		}
		got, err = alg.Partition(items(5, 3, 2), 1)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for _, k := range got {
			if k != 0 {
				t.Errorf("%s assigned instance %d with m=1", alg.Name(), k)
			}
		}
	}
}

func TestAssignmentsInRangeAndConserveSum(t *testing.T) {
	is := items(8, 7, 6, 5, 4, 3, 2, 1)
	var total float64
	for _, it := range is {
		total += it.Weight
	}
	for _, alg := range allPartitioners() {
		for _, m := range []int{2, 3, 5} {
			assign, err := alg.Partition(is, m)
			if err != nil {
				t.Fatalf("%s m=%d: %v", alg.Name(), m, err)
			}
			if len(assign) != len(is) {
				t.Fatalf("%s m=%d: %d assignments", alg.Name(), m, len(assign))
			}
			loads := Loads(is, assign, m)
			var sum float64
			for _, l := range loads {
				sum += l
			}
			if math.Abs(sum-total) > 1e-9 {
				t.Errorf("%s m=%d: loads sum %v, want %v", alg.Name(), m, sum, total)
			}
			for i, k := range assign {
				if k < 0 || k >= m {
					t.Errorf("%s m=%d: item %d → instance %d", alg.Name(), m, i, k)
				}
			}
		}
	}
}

func TestKnownTwoWayCase(t *testing.T) {
	// Items 8,7,6,5,4 into 2 instances. Optimal split is {8,7}/{6,5,4}
	// (makespan 15). The KK differencing method reaches spread 2
	// (e.g. {8,6}/{7,5,4}); greedy LPT ends at spread 4 ({8,5,4}/{7,6}).
	is := items(8, 7, 6, 5, 4)

	exact, err := (&Exact{}).Partition(is, 2)
	if err != nil {
		t.Fatal(err)
	}
	if span := Makespan(Loads(is, exact, 2)); span != 15 {
		t.Errorf("Exact makespan = %v, want 15", span)
	}

	rckk, err := RCKK{}.Partition(is, 2)
	if err != nil {
		t.Fatal(err)
	}
	if spread := Spread(Loads(is, rckk, 2)); spread != 2 {
		t.Errorf("RCKK spread = %v, want 2 (KK differencing)", spread)
	}

	cga, err := CGA{}.Partition(is, 2)
	if err != nil {
		t.Fatal(err)
	}
	if spread := Spread(Loads(is, cga, 2)); spread != 4 {
		t.Errorf("CGA spread = %v, want 4 (LPT)", spread)
	}
}

func TestCGACompleteSearchImproves(t *testing.T) {
	is := items(8, 7, 6, 5, 4)
	full, err := CGA{MaxNodes: 1_000_000}.Partition(is, 2)
	if err != nil {
		t.Fatal(err)
	}
	if span := Makespan(Loads(is, full, 2)); span != 15 {
		t.Errorf("complete CGA makespan = %v, want optimal 15", span)
	}
}

func TestRCKKDeterministic(t *testing.T) {
	is := items(9, 3, 7, 1, 4, 4, 8, 2)
	a, _ := RCKK{}.Partition(is, 3)
	b, _ := RCKK{}.Partition(is, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RCKK not deterministic")
		}
	}
}

func TestRCKKBeatsCGAOnAverage(t *testing.T) {
	// The paper's headline scheduling claim: RCKK yields better balance
	// (hence lower mean response time) than greedy CGA averaged over many
	// random instances.
	s := rng.New(1234)
	const trials = 300
	var rckkSpread, cgaSpread float64
	for trial := 0; trial < trials; trial++ {
		n := 15 + s.IntN(50)
		is := make([]Item, n)
		for i := range is {
			is[i] = Item{ID: model.RequestID(string(rune('A'+i%26)) + string(rune('0'+i/26))), Weight: s.Uniform(1, 100)}
		}
		m := 2 + s.IntN(7)
		ra, err := RCKK{}.Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := CGA{}.Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		rckkSpread += Spread(Loads(is, ra, m))
		cgaSpread += Spread(Loads(is, ca, m))
	}
	if rckkSpread >= cgaSpread {
		t.Errorf("mean RCKK spread %v >= mean CGA spread %v over %d trials",
			rckkSpread/trials, cgaSpread/trials, trials)
	}
}

func TestReversePairingBeatsForward(t *testing.T) {
	// Ablation of the paper's key design choice in Algorithm 2.
	s := rng.New(99)
	const trials = 200
	var rev, fwd float64
	for trial := 0; trial < trials; trial++ {
		n := 10 + s.IntN(40)
		is := make([]Item, n)
		for i := range is {
			is[i] = Item{ID: model.RequestID(string(rune('A'+i%26)) + string(rune('0'+i/26))), Weight: s.Uniform(1, 50)}
		}
		m := 2 + s.IntN(5)
		ra, err := RCKK{}.Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		fa, err := KKForward{}.Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		rev += Spread(Loads(is, ra, m))
		fwd += Spread(Loads(is, fa, m))
	}
	if rev >= fwd {
		t.Errorf("reverse pairing spread %v >= forward %v — ablation should favor reverse", rev/trials, fwd/trials)
	}
}

func TestKKRandomValidAndWorseThanReverse(t *testing.T) {
	s := rng.New(41)
	var rev, rnd float64
	const trials = 150
	for trial := 0; trial < trials; trial++ {
		n := 10 + s.IntN(40)
		is := make([]Item, n)
		for i := range is {
			is[i] = Item{ID: model.RequestID(string(rune('A'+i%26)) + string(rune('0'+i/26))), Weight: s.Uniform(1, 50)}
		}
		m := 2 + s.IntN(5)
		ra, err := RCKK{}.Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		ka, err := (KKRandom{Seed: uint64(trial)}).Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ka {
			if k < 0 || k >= m {
				t.Fatalf("KKRandom assignment %d outside [0,%d)", k, m)
			}
		}
		rev += Spread(Loads(is, ra, m))
		rnd += Spread(Loads(is, ka, m))
	}
	if rev >= rnd {
		t.Errorf("reverse pairing spread %v >= random pairing %v — ablation should favor reverse", rev/trials, rnd/trials)
	}
}

func TestKKForwardCollapsesToOneInstance(t *testing.T) {
	// Forward pairing is the degenerate member of the paper's m! pairing
	// space: all mass stays in position 0.
	is := items(9, 7, 5, 3, 1)
	assign, err := KKForward{}.Partition(is, 3)
	if err != nil {
		t.Fatal(err)
	}
	loads := Loads(is, assign, 3)
	if loads[0] != 25 || loads[1] != 0 || loads[2] != 0 {
		t.Errorf("forward pairing loads = %v, expected total collapse", loads)
	}
}

func TestExactNeverWorse(t *testing.T) {
	s := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		n := 6 + s.IntN(10)
		is := make([]Item, n)
		for i := range is {
			is[i] = Item{ID: model.RequestID(string(rune('a' + i))), Weight: float64(s.UniformInt(1, 30))}
		}
		m := 2 + s.IntN(3)
		opt, err := (&Exact{}).Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		optSpan := Makespan(Loads(is, opt, m))
		for _, alg := range []Partitioner{RCKK{}, CGA{}, KKForward{}, RoundRobin{}} {
			a, err := alg.Partition(is, m)
			if err != nil {
				t.Fatal(err)
			}
			if span := Makespan(Loads(is, a, m)); span < optSpan-1e-9 {
				t.Errorf("trial %d: %s makespan %v < exact %v", trial, alg.Name(), span, optSpan)
			}
		}
	}
}

func TestExactGuards(t *testing.T) {
	big := make([]Item, 30)
	for i := range big {
		big[i] = Item{ID: model.RequestID(string(rune('a'+i%26)) + "x"), Weight: 1}
	}
	if _, err := (&Exact{}).Partition(big, 2); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := (&Exact{MaxItems: 40}).Partition(big, 2); err != nil {
		t.Errorf("custom guard rejected: %v", err)
	}
}

func TestPartitionDoesNotMutateItems(t *testing.T) {
	is := items(5, 1, 4, 2, 3)
	snapshot := append([]Item(nil), is...)
	for _, alg := range allPartitioners() {
		if _, err := alg.Partition(is, 2); err != nil {
			t.Fatal(err)
		}
		for i := range is {
			if is[i] != snapshot[i] {
				t.Fatalf("%s mutated items", alg.Name())
			}
		}
	}
}

func TestMetricsHelpers(t *testing.T) {
	loads := []float64{3, 9, 6}
	if got := Makespan(loads); got != 9 {
		t.Errorf("Makespan = %v", got)
	}
	if got := Spread(loads); got != 6 {
		t.Errorf("Spread = %v", got)
	}
	if got := Spread(nil); got != 0 {
		t.Errorf("Spread(nil) = %v", got)
	}
	if got := Makespan(nil); got != 0 {
		t.Errorf("Makespan(nil) = %v", got)
	}
}

func TestScheduleAllIntegration(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumRequests = 120
	p, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Partitioner{RCKK{}, CGA{}, RoundRobin{}} {
		s, err := ScheduleAll(p, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := s.Validate(p); err != nil {
			t.Fatalf("%s produced invalid schedule: %v", alg.Name(), err)
		}
	}
}

func TestScheduleAllRejectsInvalidProblem(t *testing.T) {
	if _, err := ScheduleAll(&model.Problem{}, RCKK{}); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestRCKKPropertyAllAssigned(t *testing.T) {
	f := func(raw []uint8, m8 uint8) bool {
		m := int(m8%9) + 1
		is := make([]Item, len(raw))
		for i, b := range raw {
			is[i] = Item{ID: model.RequestID(string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))), Weight: float64(b)}
		}
		assign, err := (RCKK{}).Partition(is, m)
		if err != nil || len(assign) != len(is) {
			return false
		}
		for _, k := range assign {
			if k < 0 || k >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
