package scheduling

import (
	"sort"
)

// CKK is the Complete Karmarkar-Karp algorithm (Korf 2009), the second
// complete comparator the paper names alongside CGA. Its first descent is
// exactly the KK differencing heuristic; on backtracking it explores the
// alternative combinations of the two largest partitions, so given enough
// node budget it converges to the optimal makespan. For m = 2 the branch is
// the classic binary choice (difference the two largest values vs. sum
// them); for m > 2 it branches over distinct pairings of the two leading
// tuples, which is why — as the paper observes — it "does not scale well as
// the number of instances increases".
type CKK struct {
	// MaxNodes bounds the search-tree size; 0 means DefaultCKKMaxNodes.
	MaxNodes int
	// MaxPairings bounds how many of the m! pairings are tried per branch
	// point for m > 2 (ordered from reverse pairing outward); 0 means
	// DefaultCKKMaxPairings.
	MaxPairings int
}

// Defaults for CKK's tractability guards.
const (
	DefaultCKKMaxNodes    = 200_000
	DefaultCKKMaxPairings = 6
)

// Name implements Partitioner.
func (c CKK) Name() string { return "CKK" }

// Partition implements Partitioner.
func (c CKK) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	n := len(items)
	assign := make([]int, n)
	if n == 0 || m == 1 {
		return assign, nil
	}

	maxNodes := c.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultCKKMaxNodes
	}
	maxPairings := c.MaxPairings
	if maxPairings <= 0 {
		maxPairings = DefaultCKKMaxPairings
	}

	// Seed the incumbent with plain RCKK (the first CKK descent).
	incumbent, err := RCKK{}.Partition(items, m)
	if err != nil {
		return nil, err
	}
	bestSpan := Makespan(Loads(items, incumbent, m))

	// Initial partition list, one per item, descending.
	ar := &mergeArena{nodes: make([]mergeNode, 0, n)}
	list := newPartitionList(items, sortedIndexesByWeightDesc(items), m)

	s := &ckkSearch{
		items:       items,
		m:           m,
		arena:       ar,
		best:        incumbent,
		bestSpan:    bestSpan,
		budget:      maxNodes,
		maxPairings: maxPairings,
	}
	s.search(list)
	copy(assign, s.best)
	return assign, nil
}

type ckkSearch struct {
	items       []Item
	m           int
	arena       *mergeArena
	best        []int
	bestSpan    float64
	budget      int
	maxPairings int
}

// search recursively combines the two leading partitions under every
// admissible pairing. list is always sorted descending by leading value.
func (s *ckkSearch) search(list []*partition) {
	if s.budget <= 0 {
		return
	}
	s.budget--
	if len(list) == 1 {
		final := list[0]
		assign := make([]int, len(s.items))
		final.assignments(s.arena, assign)
		span := Makespan(Loads(s.items, assign, s.m))
		if span < s.bestSpan {
			s.bestSpan = span
			s.best = assign
		}
		return
	}

	a, b := list[0], list[1]
	rest := list[2:]

	// Lower bound: the largest remaining leading value can never shrink
	// below (a0 − everything else's capacity to offset); cheap bound: the
	// current leading value minus the sum of all other leading values.
	var offset float64
	for _, p := range list[1:] {
		offset += p.sums[0]
	}
	if a.sums[0]-offset >= s.bestSpan {
		return
	}

	for _, perm := range pairings(s.m, s.maxPairings) {
		// Arena nodes created inside a branch are dead once it returns (the
		// incumbent is materialized into a plain []int immediately), so the
		// arena rolls back to keep peak memory proportional to search depth
		// rather than total nodes visited.
		mark := s.arena.mark()
		c := combineWith(a, b, perm, s.arena)
		next := insertSorted(append([]*partition(nil), rest...), c)
		s.search(next)
		s.arena.release(mark)
		if s.budget <= 0 {
			return
		}
	}
}

// combineWith merges a and b into a fresh partition, pairing position i of a
// with position perm[i] of b, then sorts and normalizes. Unlike the in-place
// combineReverse it must keep a and b intact: the search revisits them under
// other pairings.
func combineWith(a, b *partition, perm []int, ar *mergeArena) *partition {
	m := len(a.sums)
	c := &partition{sums: make([]float64, m), sets: make([]setRef, m)}
	for i := 0; i < m; i++ {
		j := perm[i]
		c.sums[i] = a.sums[i] + b.sums[j]
		c.sets[i] = ar.merge(a.sets[i], b.sets[j])
	}
	sortPartition(c)
	normalize(c)
	return c
}

// pairings enumerates up to limit permutations of [0,m), starting from the
// reverse pairing (the KK move) and then lexicographic alternatives. For
// m = 2 this is exactly {reverse, identity} — difference vs. sum.
func pairings(m, limit int) [][]int {
	reverse := make([]int, m)
	for i := range reverse {
		reverse[i] = m - 1 - i
	}
	out := [][]int{reverse}
	if limit <= 1 {
		return out
	}
	// Enumerate permutations in lexicographic order, skipping the reverse
	// pairing already emitted.
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for len(out) < limit {
		cand := append([]int(nil), perm...)
		if !equalInts(cand, reverse) {
			out = append(out, cand)
		}
		if !nextPermutation(perm) {
			break
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// nextPermutation advances perm to the next lexicographic permutation,
// returning false after the last one.
func nextPermutation(perm []int) bool {
	i := len(perm) - 2
	for i >= 0 && perm[i] >= perm[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(perm) - 1
	for perm[j] <= perm[i] {
		j--
	}
	perm[i], perm[j] = perm[j], perm[i]
	sort.Ints(perm[i+1:])
	return true
}

var _ Partitioner = CKK{}
