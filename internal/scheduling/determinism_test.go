package scheduling

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

// determinismItems builds a reproducible item set for the partition goldens.
func determinismItems(n int, seed uint64) []Item {
	s := rng.New(seed)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID:     model.RequestID(fmt.Sprintf("r%04d", i)),
			Weight: s.Uniform(1, 100),
		}
	}
	return items
}

// fingerprintAssign hashes an assignment vector.
func fingerprintAssign(assign []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, a := range assign {
		binary.LittleEndian.PutUint64(buf[:], uint64(a))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestPartitionDeterminismGolden pins every KK-family partitioner's output to
// fingerprints captured before the merge-tree refactor. The refactor replaced
// per-merge set copying with immutable merge-tree nodes; assignments must stay
// byte-identical for fixed inputs.
func TestPartitionDeterminismGolden(t *testing.T) {
	cases := []struct {
		name string
		alg  Partitioner
		n, m int
		want uint64
	}{
		{"rckk-50-5", RCKK{}, 50, 5, 0x5329122fd1336e81},
		{"rckk-250-5", RCKK{}, 250, 5, 0x370c90b9f894081},
		{"rckk-1000-8", RCKK{}, 1000, 8, 0x9beaca947072eb87},
		{"ckk-40-4", CKK{MaxNodes: 20_000}, 40, 4, 0xbb4e9a4b5df294c5},
		{"kkforward-250-5", KKForward{}, 250, 5, 0x79b4da79586cdf65},
		{"kkrandom-250-5", KKRandom{Seed: 9}, 250, 5, 0x4aaac6b05be98a41},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			items := determinismItems(tc.n, 7)
			assign, err := tc.alg.Partition(items, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprintAssign(assign); got != tc.want {
				t.Errorf("fingerprint = %#x, want %#x (partition determinism regression)", got, tc.want)
			}
		})
	}
}

// TestPartitionGoldenPrint regenerates the golden fingerprints (run with -v)
// after an intentional semantic change.
func TestPartitionGoldenPrint(t *testing.T) {
	for _, tc := range []struct {
		name string
		alg  Partitioner
		n, m int
	}{
		{"rckk-50-5", RCKK{}, 50, 5},
		{"rckk-250-5", RCKK{}, 250, 5},
		{"rckk-1000-8", RCKK{}, 1000, 8},
		{"ckk-40-4", CKK{MaxNodes: 20_000}, 40, 4},
		{"kkforward-250-5", KKForward{}, 250, 5},
		{"kkrandom-250-5", KKRandom{Seed: 9}, 250, 5},
	} {
		items := determinismItems(tc.n, 7)
		assign, err := tc.alg.Partition(items, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %#x (makespan=%.6f)", tc.name, fingerprintAssign(assign),
			Makespan(Loads(items, assign, tc.m)))
	}
}

// TestPartitionRepeatIdentical asserts two calls with the same inputs agree —
// shared merge arenas must not leak state between invocations.
func TestPartitionRepeatIdentical(t *testing.T) {
	items := determinismItems(300, 21)
	for _, alg := range []Partitioner{RCKK{}, KKForward{}, CKK{MaxNodes: 5000}} {
		a, err := alg.Partition(items, 6)
		if err != nil {
			t.Fatal(err)
		}
		b, err := alg.Partition(items, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: assignment %d differs across runs: %d vs %d", alg.Name(), i, a[i], b[i])
			}
		}
	}
}
