package scheduling

import (
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

func TestImproveNeverWorsensMakespan(t *testing.T) {
	s := rng.New(61)
	for trial := 0; trial < 40; trial++ {
		n := 8 + s.IntN(40)
		is := make([]Item, n)
		for i := range is {
			is[i] = Item{ID: model.RequestID(string(rune('A'+i%26)) + string(rune('0'+i/26))), Weight: s.Uniform(1, 100)}
		}
		m := 2 + s.IntN(6)
		for _, alg := range []Partitioner{RoundRobin{}, CGA{ArrivalOrder: true}, RCKK{}} {
			assign, err := alg.Partition(is, m)
			if err != nil {
				t.Fatal(err)
			}
			before := Makespan(Loads(is, assign, m))
			better, err := Improve(is, assign, m, 0)
			if err != nil {
				t.Fatal(err)
			}
			after := Makespan(Loads(is, better, m))
			if after > before+1e-9 {
				t.Fatalf("trial %d %s: Improve worsened %v → %v", trial, alg.Name(), before, after)
			}
			// Conservation: same multiset of assignments.
			var sumBefore, sumAfter float64
			for _, l := range Loads(is, assign, m) {
				sumBefore += l
			}
			for _, l := range Loads(is, better, m) {
				sumAfter += l
			}
			if diff := sumBefore - sumAfter; diff > 1e-9 || diff < -1e-9 {
				t.Fatal("Improve lost load")
			}
			// Input slice untouched.
			check := Makespan(Loads(is, assign, m))
			if check != before {
				t.Fatal("Improve mutated input assignment")
			}
		}
	}
}

func TestImproveFixesBadAssignment(t *testing.T) {
	// Everything on instance 0: local search must spread it.
	is := items(10, 9, 8, 7, 6, 5)
	assign := make([]int, len(is))
	before := Makespan(Loads(is, assign, 3))
	better, err := Improve(is, assign, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	after := Makespan(Loads(is, better, 3))
	if after >= before {
		t.Errorf("Improve left makespan %v (was %v)", after, before)
	}
	// Optimal makespan for {10,9,8,7,6,5} into 3 is 15; move/swap search
	// should land at or near it.
	if after > 17 {
		t.Errorf("makespan %v far from optimal 15", after)
	}
}

func TestImproveApproachesExact(t *testing.T) {
	s := rng.New(71)
	var gapGreedy, gapPolished float64
	for trial := 0; trial < 15; trial++ {
		n := 8 + s.IntN(8)
		is := make([]Item, n)
		for i := range is {
			is[i] = Item{ID: model.RequestID(string(rune('a' + i))), Weight: float64(s.UniformInt(1, 40))}
		}
		m := 2 + s.IntN(3)
		opt, err := (&Exact{}).Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		optSpan := Makespan(Loads(is, opt, m))
		greedy, err := CGA{ArrivalOrder: true}.Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		polished, err := Improve(is, greedy, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		pSpan := Makespan(Loads(is, polished, m))
		if pSpan < optSpan-1e-9 {
			t.Fatalf("trial %d: polished beats exact — impossible", trial)
		}
		gapGreedy += Makespan(Loads(is, greedy, m)) - optSpan
		gapPolished += pSpan - optSpan
	}
	if gapPolished >= gapGreedy {
		t.Errorf("Improve did not shrink arrival-greedy's gap: %v → %v", gapGreedy, gapPolished)
	}
}

func TestImproveSchedule(t *testing.T) {
	p := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 100}},
		VNFs:  []model.VNF{{ID: "f", Instances: 3, Demand: 1, ServiceRate: 1000}},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"f"}, Rate: 10, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"f"}, Rate: 9, DeliveryProb: 1},
			{ID: "r3", Chain: []model.VNFID{"f"}, Rate: 8, DeliveryProb: 1},
			{ID: "r4", Chain: []model.VNFID{"f"}, Rate: 7, DeliveryProb: 1},
			{ID: "r5", Chain: []model.VNFID{"f"}, Rate: 6, DeliveryProb: 1},
			{ID: "r6", Chain: []model.VNFID{"f"}, Rate: 5, DeliveryProb: 1},
		},
	}
	bad := model.NewSchedule()
	for _, r := range p.Requests {
		bad.Assign(r.ID, "f", 0) // everything on one instance
	}
	before := Makespan(bad.InstanceLoads(p, "f"))
	better, err := ImproveSchedule(p, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := better.Validate(p); err != nil {
		t.Fatal(err)
	}
	after := Makespan(better.InstanceLoads(p, "f"))
	if after >= before {
		t.Errorf("ImproveSchedule left makespan %v (was %v)", after, before)
	}
	// The original schedule is untouched.
	if Makespan(bad.InstanceLoads(p, "f")) != before {
		t.Error("ImproveSchedule mutated input")
	}

	incomplete := model.NewSchedule()
	if _, err := ImproveSchedule(p, incomplete); err == nil {
		t.Error("incomplete schedule accepted")
	}
}

func TestImproveValidation(t *testing.T) {
	is := items(1, 2, 3)
	if _, err := Improve(is, []int{0, 1}, 2, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Improve(is, []int{0, 1, 5}, 2, 0); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if _, err := Improve(is, []int{0, 0, 0}, 0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	got, err := Improve(nil, nil, 3, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("empty improve: %v %v", got, err)
	}
}
