package scheduling

import (
	"fmt"
	"sort"

	"nfvchain/internal/model"
)

// AdmissionResult is the outcome of admission control over a schedule.
type AdmissionResult struct {
	// Admitted is the schedule with rejected requests removed everywhere.
	Admitted *model.Schedule
	// Rejected lists the dropped requests, sorted by id.
	Rejected []model.RequestID
	// RejectionRate is |Rejected| / |requests with at least one assignment|,
	// the paper's job rejection rate metric (Figs. 15–16).
	RejectionRate float64
}

// ApplyAdmissionControl enforces ρ < 1 on every service instance: while any
// instance's effective arrival rate Λ_k^f reaches or exceeds its service
// rate µ_f, the *lowest-rate* request on that instance is rejected. Shedding
// light requests first removes the least traffic beyond what stability
// strictly requires — the admission controller "ensures the normal operation
// of the services" while carrying the most load — at the cost of more
// rejected jobs when an instance is badly overloaded, which is exactly the
// penalty the paper's job rejection rate measures. A rejected request is
// removed from *all* instances, since its whole chain stops being served.
func ApplyAdmissionControl(p *model.Problem, s *model.Schedule) (*AdmissionResult, error) {
	if err := s.Validate(p); err != nil {
		return nil, fmt.Errorf("scheduling: admission control on invalid schedule: %w", err)
	}
	admitted := s.Clone()
	rejected := make(map[model.RequestID]bool)

	reject := func(r model.RequestID) {
		rejected[r] = true
		delete(admitted.InstanceOf, r)
	}

	// Iterate to a fixed point: rejecting a request may unload several
	// instances at once, and order must be deterministic.
	for changed := true; changed; {
		changed = false
		for _, f := range p.VNFs {
			loads := admitted.InstanceLoads(p, f.ID)
			for k, load := range loads {
				if load < f.ServiceRate {
					continue
				}
				victim := lightestRequestOn(p, admitted, f.ID, k)
				if victim == "" {
					continue
				}
				reject(victim)
				changed = true
			}
		}
	}

	res := &AdmissionResult{Admitted: admitted}
	for r := range rejected {
		res.Rejected = append(res.Rejected, r)
	}
	sort.Slice(res.Rejected, func(i, j int) bool { return res.Rejected[i] < res.Rejected[j] })
	scheduled := 0
	for _, r := range p.Requests {
		if len(s.InstanceOf[r.ID]) > 0 {
			scheduled++
		}
	}
	if scheduled > 0 {
		res.RejectionRate = float64(len(res.Rejected)) / float64(scheduled)
	}
	return res, nil
}

// lightestRequestOn returns the lowest-effective-rate request assigned to
// instance k of VNF f (ties by id), or "" when the instance is empty.
func lightestRequestOn(p *model.Problem, s *model.Schedule, f model.VNFID, k int) model.RequestID {
	var best model.RequestID
	var bestRate float64
	for _, r := range p.Requests {
		kk, ok := s.Instance(r.ID, f)
		if !ok || kk != k {
			continue
		}
		rate := r.EffectiveRate()
		if best == "" || rate < bestRate || (rate == bestRate && r.ID < best) {
			best, bestRate = r.ID, rate
		}
	}
	return best
}
