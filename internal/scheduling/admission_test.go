package scheduling

import (
	"testing"

	"nfvchain/internal/model"
)

// overloadProblem builds one VNF with two instances where instance 0 is
// overloaded (Λ ≥ µ) under the given schedule.
func overloadProblem() (*model.Problem, *model.Schedule) {
	p := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f", Instances: 2, Demand: 10, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"f"}, Rate: 60, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"f"}, Rate: 50, DeliveryProb: 1},
			{ID: "r3", Chain: []model.VNFID{"f"}, Rate: 30, DeliveryProb: 1},
		},
	}
	s := model.NewSchedule()
	s.Assign("r1", "f", 0)
	s.Assign("r2", "f", 0) // instance 0: 110 ≥ 100 → overloaded
	s.Assign("r3", "f", 1)
	return p, s
}

func TestAdmissionControlDropsLightest(t *testing.T) {
	p, s := overloadProblem()
	res, err := ApplyAdmissionControl(p, s)
	if err != nil {
		t.Fatal(err)
	}
	// Instance 0 carries r1 (60) and r2 (50): dropping the lightest request
	// (r2) restores Λ = 60 < 100 while shedding the least traffic.
	if len(res.Rejected) != 1 || res.Rejected[0] != "r2" {
		t.Fatalf("Rejected = %v, want [r2] (lightest on overloaded instance)", res.Rejected)
	}
	loads := res.Admitted.InstanceLoads(p, "f")
	if loads[0] >= 100 {
		t.Errorf("instance 0 still overloaded: %v", loads[0])
	}
	if _, ok := res.Admitted.Instance("r2", "f"); ok {
		t.Error("rejected request still scheduled")
	}
	if got := res.RejectionRate; got != 1.0/3 {
		t.Errorf("RejectionRate = %v, want 1/3", got)
	}
}

func TestAdmissionControlNoOpWhenStable(t *testing.T) {
	p, s := overloadProblem()
	s.Assign("r1", "f", 1) // move r1: loads 50 and 90, both stable
	res, err := ApplyAdmissionControl(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 0 || res.RejectionRate != 0 {
		t.Errorf("stable schedule rejected %v", res.Rejected)
	}
}

func TestAdmissionControlCascade(t *testing.T) {
	// A single instance so overloaded that several requests must go.
	p := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs:  []model.VNF{{ID: "f", Instances: 1, Demand: 1, ServiceRate: 100}},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"f"}, Rate: 80, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"f"}, Rate: 70, DeliveryProb: 1},
			{ID: "r3", Chain: []model.VNFID{"f"}, Rate: 60, DeliveryProb: 1},
		},
	}
	s := model.NewSchedule()
	for _, r := range p.Requests {
		s.Assign(r.ID, "f", 0)
	}
	res, err := ApplyAdmissionControl(p, s)
	if err != nil {
		t.Fatal(err)
	}
	// 210 → drop r3 (150 left) → drop r2 (80 left) → stable.
	if len(res.Rejected) != 2 {
		t.Fatalf("Rejected = %v, want 2 drops", res.Rejected)
	}
	if res.Rejected[0] != "r2" || res.Rejected[1] != "r3" {
		t.Errorf("Rejected = %v, want lightest-first [r2 r3]", res.Rejected)
	}
	loads := res.Admitted.InstanceLoads(p, "f")
	if loads[0] >= 100 {
		t.Errorf("still overloaded: %v", loads[0])
	}
}

func TestAdmissionControlWholeChainRemoved(t *testing.T) {
	// Rejecting a request must remove it from every VNF in its chain.
	p := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f", Instances: 1, Demand: 1, ServiceRate: 50},
			{ID: "g", Instances: 1, Demand: 1, ServiceRate: 500},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"f", "g"}, Rate: 60, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"g"}, Rate: 10, DeliveryProb: 1},
		},
	}
	s := model.NewSchedule()
	s.Assign("r1", "f", 0)
	s.Assign("r1", "g", 0)
	s.Assign("r2", "g", 0)
	res, err := ApplyAdmissionControl(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 1 || res.Rejected[0] != "r1" {
		t.Fatalf("Rejected = %v", res.Rejected)
	}
	if _, ok := res.Admitted.Instance("r1", "g"); ok {
		t.Error("rejected request survives on downstream VNF g")
	}
	if _, ok := res.Admitted.Instance("r2", "g"); !ok {
		t.Error("innocent request r2 was dropped")
	}
}

func TestAdmissionControlLossFeedbackPushesOverload(t *testing.T) {
	// λ = 95 stable at µ=100 with P=1, but λ/P ≈ 101 at P=0.94 → rejected.
	p := &model.Problem{
		Nodes:    []model.Node{{ID: "n", Capacity: 1000}},
		VNFs:     []model.VNF{{ID: "f", Instances: 1, Demand: 1, ServiceRate: 100}},
		Requests: []model.Request{{ID: "r", Chain: []model.VNFID{"f"}, Rate: 95, DeliveryProb: 0.94}},
	}
	s := model.NewSchedule()
	s.Assign("r", "f", 0)
	res, err := ApplyAdmissionControl(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rejected) != 1 {
		t.Errorf("loss-inflated overload not rejected: %v", res.Rejected)
	}
}

func TestAdmissionControlInvalidSchedule(t *testing.T) {
	p, _ := overloadProblem()
	bad := model.NewSchedule()
	bad.Assign("ghost", "f", 0)
	if _, err := ApplyAdmissionControl(p, bad); err == nil {
		t.Error("invalid schedule accepted")
	}
}
