package scheduling

import (
	"sort"
)

// CGA is the paper's baseline scheduler: the greedy descent of Korf's
// Complete Greedy Algorithm, better known as LPT (Longest Processing Time).
// Items are taken in descending weight order and each goes to the instance
// with the currently smallest load. The paper notes the complete search
// "does not scale as the number of instances increases", so the first
// (greedy) descent is the operative baseline; set MaxNodes > 0 to let CGA
// keep searching the branch-and-bound tree for a better makespan within
// that node budget.
type CGA struct {
	// MaxNodes bounds the complete-search extension; 0 means pure greedy.
	MaxNodes int
	// ArrivalOrder processes items as given instead of sorting them by
	// decreasing weight first. Korf's CGA sorts; the CGA numbers the paper
	// reports (enhancement ratios of ~42% shrinking to ~2%, persistent job
	// rejection under load) are only reachable by a greedy that does not —
	// arrival-order greedy keeps an O(E[λ]) imbalance at any request count,
	// while the LPT sort balances almost perfectly for n ≫ m. The
	// experiment harness uses this mode for the paper-faithful baseline;
	// see EXPERIMENTS.md.
	ArrivalOrder bool
}

// Name implements Partitioner.
func (c CGA) Name() string { return "CGA" }

// Partition implements Partitioner.
func (c CGA) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	n := len(items)
	assign := make([]int, n)
	if n == 0 || m == 1 {
		return assign, nil
	}
	var order []int
	if c.ArrivalOrder {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	} else {
		order = sortedIndexesByWeightDesc(items)
	}

	greedy := greedyAssign(items, order, m)
	best := greedy
	if c.MaxNodes > 0 {
		bestSpan := Makespan(Loads(items, greedy, m))
		budget := c.MaxNodes
		cur := append([]int(nil), greedy...)
		best = append([]int(nil), greedy...)
		cgaSearch(items, order, m, 0, make([]float64, m), cur, &best, &bestSpan, &budget)
	}
	copy(assign, best)
	return assign, nil
}

// sortedIndexesByWeightDesc returns item indexes in descending weight order
// with id tie-breaks.
func sortedIndexesByWeightDesc(items []Item) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := items[order[a]].Weight, items[order[b]].Weight
		if wa != wb {
			return wa > wb
		}
		return items[order[a]].ID < items[order[b]].ID
	})
	return order
}

// greedyAssign is the LPT descent: each item (heaviest first) goes to the
// least-loaded instance. The returned slice is indexed like items.
func greedyAssign(items []Item, order []int, m int) []int {
	loads := make([]float64, m)
	assign := make([]int, len(items))
	for _, idx := range order {
		k := 0
		for j := 1; j < m; j++ {
			if loads[j] < loads[k] {
				k = j
			}
		}
		loads[k] += items[idx].Weight
		assign[idx] = k
	}
	return assign
}

// cgaSearch explores assignments of order[depth:] depth-first in
// increasing-load order, pruning branches whose makespan already meets the
// incumbent and skipping duplicate loads (Korf's symmetry rule). cur and
// best are indexed like items.
func cgaSearch(items []Item, order []int, m, depth int, loads []float64, cur []int, best *[]int, bestSpan *float64, budget *int) {
	if *budget <= 0 {
		return
	}
	*budget--
	if depth == len(order) {
		span := Makespan(loads)
		if span < *bestSpan {
			*bestSpan = span
			copy(*best, cur)
		}
		return
	}
	idx := order[depth]
	w := items[idx].Weight
	targets := make([]int, m)
	for k := range targets {
		targets[k] = k
	}
	sort.SliceStable(targets, func(a, b int) bool { return loads[targets[a]] < loads[targets[b]] })
	var lastLoad float64
	first := true
	for _, k := range targets {
		if !first && loads[k] == lastLoad {
			continue // equal-load instances are symmetric
		}
		first, lastLoad = false, loads[k]
		if loads[k]+w >= *bestSpan {
			continue // cannot beat the incumbent
		}
		loads[k] += w
		cur[idx] = k
		cgaSearch(items, order, m, depth+1, loads, cur, best, bestSpan, budget)
		loads[k] -= w
	}
}

var _ Partitioner = CGA{}
