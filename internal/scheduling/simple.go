package scheduling

import (
	"nfvchain/internal/rng"
)

// RoundRobin deals requests to instances cyclically in descending weight
// order — the simplest balance-agnostic baseline for the ablation benches.
type RoundRobin struct{}

// Name implements Partitioner.
func (RoundRobin) Name() string { return "RoundRobin" }

// Partition implements Partitioner.
func (RoundRobin) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	assign := make([]int, len(items))
	for rank, idx := range sortedIndexesByWeightDesc(items) {
		assign[idx] = rank % m
	}
	return assign, nil
}

// Random assigns every request to a uniformly random instance. It models
// hash-based flow steering with no load awareness.
type Random struct {
	Seed uint64
}

// Name implements Partitioner.
func (r *Random) Name() string { return "Random" }

// Partition implements Partitioner.
func (r *Random) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	s := rng.Derive(r.Seed, "random-scheduling")
	assign := make([]int, len(items))
	for i := range items {
		assign[i] = s.IntN(m)
	}
	return assign, nil
}

// KKForward is the degenerate extreme of the paper's "m! ways of combining
// two partitions" (Section IV-C): identical tuple machinery to RCKK but the
// two largest partitions are combined *position-wise* (largest with
// largest). Since every partition starts with all mass in position 0,
// forward pairing never spreads anything — it collapses to one instance,
// which is exactly why the paper combines in reverse order. Kept as the
// worst member of the pairing space; see KKRandom for the informative
// mid-point ablation.
type KKForward struct{}

// Name implements Partitioner.
func (KKForward) Name() string { return "KKForward" }

// Partition implements Partitioner.
func (KKForward) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	n := len(items)
	assign := make([]int, n)
	if n == 0 || m == 1 {
		return assign, nil
	}
	ar := &mergeArena{nodes: make([]mergeNode, 0, n)}
	list := newPartitionList(items, sortedIndexesByWeightDesc(items), m)
	for len(list) > 1 {
		a, b := list[0], list[1]
		list = list[2:]
		for i := 0; i < m; i++ {
			a.sums[i] += b.sums[i]
			a.sets[i] = ar.merge(a.sets[i], b.sets[i])
		}
		sortPartition(a)
		normalize(a)
		list = insertSorted(list, a)
	}
	list[0].assignments(ar, assign)
	return assign, nil
}

// KKRandom is the informative ablation of RCKK's reverse-pairing rule: the
// same differencing machinery, but each merge combines the two largest
// partitions under a *uniformly random* permutation drawn from the m! ways
// the paper enumerates. Reverse pairing should beat a random member of that
// space — which is precisely the claim the ablation experiment checks.
type KKRandom struct {
	Seed uint64
}

// Name implements Partitioner.
func (r KKRandom) Name() string { return "KKRandom" }

// Partition implements Partitioner.
func (r KKRandom) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	n := len(items)
	assign := make([]int, n)
	if n == 0 || m == 1 {
		return assign, nil
	}
	stream := rng.Derive(r.Seed, "kk-random")
	ar := &mergeArena{nodes: make([]mergeNode, 0, n)}
	list := newPartitionList(items, sortedIndexesByWeightDesc(items), m)
	for len(list) > 1 {
		a, b := list[0], list[1]
		list = list[2:]
		perm := stream.Perm(m)
		for i := 0; i < m; i++ {
			j := perm[i]
			a.sums[i] += b.sums[j]
			a.sets[i] = ar.merge(a.sets[i], b.sets[j])
		}
		sortPartition(a)
		normalize(a)
		list = insertSorted(list, a)
	}
	list[0].assignments(ar, assign)
	return assign, nil
}

var (
	_ Partitioner = RoundRobin{}
	_ Partitioner = (*Random)(nil)
	_ Partitioner = KKForward{}
	_ Partitioner = KKRandom{}
)
