package scheduling

import (
	"nfvchain/internal/rng"
)

// RoundRobin deals requests to instances cyclically in descending weight
// order — the simplest balance-agnostic baseline for the ablation benches.
type RoundRobin struct{}

// Name implements Partitioner.
func (RoundRobin) Name() string { return "RoundRobin" }

// Partition implements Partitioner.
func (RoundRobin) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	assign := make([]int, len(items))
	for rank, idx := range sortedIndexesByWeightDesc(items) {
		assign[idx] = rank % m
	}
	return assign, nil
}

// Random assigns every request to a uniformly random instance. It models
// hash-based flow steering with no load awareness.
type Random struct {
	Seed uint64
}

// Name implements Partitioner.
func (r *Random) Name() string { return "Random" }

// Partition implements Partitioner.
func (r *Random) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	s := rng.Derive(r.Seed, "random-scheduling")
	assign := make([]int, len(items))
	for i := range items {
		assign[i] = s.IntN(m)
	}
	return assign, nil
}

// KKForward is the degenerate extreme of the paper's "m! ways of combining
// two partitions" (Section IV-C): identical tuple machinery to RCKK but the
// two largest partitions are combined *position-wise* (largest with
// largest). Since every partition starts with all mass in position 0,
// forward pairing never spreads anything — it collapses to one instance,
// which is exactly why the paper combines in reverse order. Kept as the
// worst member of the pairing space; see KKRandom for the informative
// mid-point ablation.
type KKForward struct{}

// Name implements Partitioner.
func (KKForward) Name() string { return "KKForward" }

// Partition implements Partitioner.
func (KKForward) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	n := len(items)
	assign := make([]int, n)
	if n == 0 || m == 1 {
		return assign, nil
	}
	list := make([]*partition, 0, n)
	for _, idx := range sortedIndexesByWeightDesc(items) {
		p := &partition{sums: make([]float64, m), sets: make([][]int, m)}
		p.sums[0] = items[idx].Weight
		p.sets[0] = []int{idx}
		list = append(list, p)
	}
	for len(list) > 1 {
		a, b := list[0], list[1]
		list = list[2:]
		c := &partition{sums: make([]float64, m), sets: make([][]int, m)}
		for i := 0; i < m; i++ {
			c.sums[i] = a.sums[i] + b.sums[i]
			set := append([]int(nil), a.sets[i]...)
			set = append(set, b.sets[i]...)
			c.sets[i] = set
		}
		sortPartition(c)
		normalize(c)
		list = insertSorted(list, c)
	}
	for pos, set := range list[0].sets {
		for _, idx := range set {
			assign[idx] = pos
		}
	}
	return assign, nil
}

// KKRandom is the informative ablation of RCKK's reverse-pairing rule: the
// same differencing machinery, but each merge combines the two largest
// partitions under a *uniformly random* permutation drawn from the m! ways
// the paper enumerates. Reverse pairing should beat a random member of that
// space — which is precisely the claim the ablation experiment checks.
type KKRandom struct {
	Seed uint64
}

// Name implements Partitioner.
func (r KKRandom) Name() string { return "KKRandom" }

// Partition implements Partitioner.
func (r KKRandom) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	n := len(items)
	assign := make([]int, n)
	if n == 0 || m == 1 {
		return assign, nil
	}
	stream := rng.Derive(r.Seed, "kk-random")
	list := make([]*partition, 0, n)
	for _, idx := range sortedIndexesByWeightDesc(items) {
		p := &partition{sums: make([]float64, m), sets: make([][]int, m)}
		p.sums[0] = items[idx].Weight
		p.sets[0] = []int{idx}
		list = append(list, p)
	}
	for len(list) > 1 {
		a, b := list[0], list[1]
		list = list[2:]
		perm := stream.Perm(m)
		c := &partition{sums: make([]float64, m), sets: make([][]int, m)}
		for i := 0; i < m; i++ {
			j := perm[i]
			c.sums[i] = a.sums[i] + b.sums[j]
			set := append([]int(nil), a.sets[i]...)
			set = append(set, b.sets[j]...)
			c.sets[i] = set
		}
		sortPartition(c)
		normalize(c)
		list = insertSorted(list, c)
	}
	for pos, set := range list[0].sets {
		for _, idx := range set {
			assign[idx] = pos
		}
	}
	return assign, nil
}

var (
	_ Partitioner = RoundRobin{}
	_ Partitioner = (*Random)(nil)
	_ Partitioner = KKForward{}
	_ Partitioner = KKRandom{}
)
