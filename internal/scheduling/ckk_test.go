package scheduling

import (
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

func TestCKKTwoWayFindsOptimum(t *testing.T) {
	// The classic CKK motivating case: KK alone gets spread 2 on
	// {8,7,6,5,4}; complete search reaches the perfect split (makespan 15).
	is := items(8, 7, 6, 5, 4)
	assign, err := CKK{}.Partition(is, 2)
	if err != nil {
		t.Fatal(err)
	}
	if span := Makespan(Loads(is, assign, 2)); span != 15 {
		t.Errorf("CKK makespan = %v, want optimal 15", span)
	}
}

func TestCKKNeverWorseThanRCKK(t *testing.T) {
	s := rng.New(17)
	for trial := 0; trial < 40; trial++ {
		n := 8 + s.IntN(12)
		is := make([]Item, n)
		for i := range is {
			is[i] = Item{ID: model.RequestID(string(rune('a' + i))), Weight: float64(s.UniformInt(1, 50))}
		}
		m := 2 + s.IntN(3)
		rckk, err := RCKK{}.Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		ckk, err := CKK{}.Partition(is, m)
		if err != nil {
			t.Fatal(err)
		}
		rSpan := Makespan(Loads(is, rckk, m))
		cSpan := Makespan(Loads(is, ckk, m))
		if cSpan > rSpan+1e-9 {
			t.Errorf("trial %d: CKK makespan %v worse than its own first descent %v", trial, cSpan, rSpan)
		}
	}
}

func TestCKKMatchesExactOnSmallInstances(t *testing.T) {
	s := rng.New(23)
	for trial := 0; trial < 15; trial++ {
		n := 6 + s.IntN(8)
		is := make([]Item, n)
		for i := range is {
			is[i] = Item{ID: model.RequestID(string(rune('a' + i))), Weight: float64(s.UniformInt(1, 30))}
		}
		opt, err := (&Exact{}).Partition(is, 2)
		if err != nil {
			t.Fatal(err)
		}
		ckk, err := CKK{}.Partition(is, 2)
		if err != nil {
			t.Fatal(err)
		}
		optSpan := Makespan(Loads(is, opt, 2))
		ckkSpan := Makespan(Loads(is, ckk, 2))
		if ckkSpan > optSpan+1e-9 {
			t.Errorf("trial %d: CKK 2-way %v not optimal (%v)", trial, ckkSpan, optSpan)
		}
	}
}

func TestCKKBudgetDegradesGracefully(t *testing.T) {
	is := items(8, 7, 6, 5, 4, 9, 3, 2, 11, 1)
	tiny, err := CKK{MaxNodes: 1}.Partition(is, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With a single node the incumbent is the RCKK descent.
	rckk, _ := RCKK{}.Partition(is, 3)
	if Makespan(Loads(is, tiny, 3)) > Makespan(Loads(is, rckk, 3))+1e-9 {
		t.Error("budget-1 CKK worse than RCKK seed")
	}
}

func TestCKKValidations(t *testing.T) {
	if _, err := (CKK{}).Partition(items(1), 0); err == nil {
		t.Error("m=0 accepted")
	}
	got, err := CKK{}.Partition(nil, 4)
	if err != nil || len(got) != 0 {
		t.Errorf("empty items: %v, %v", got, err)
	}
	got, err = CKK{}.Partition(items(3, 2, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range got {
		if k != 0 {
			t.Error("m=1 must assign all to instance 0")
		}
	}
}

func TestPairings(t *testing.T) {
	ps := pairings(2, 10)
	if len(ps) != 2 {
		t.Fatalf("pairings(2) = %v, want 2 permutations", ps)
	}
	if ps[0][0] != 1 || ps[0][1] != 0 {
		t.Errorf("first pairing %v, want reverse", ps[0])
	}
	ps3 := pairings(3, 100)
	if len(ps3) != 6 {
		t.Errorf("pairings(3) = %d, want 3! = 6", len(ps3))
	}
	seen := map[string]bool{}
	for _, p := range ps3 {
		key := fmtInts(p)
		if seen[key] {
			t.Errorf("duplicate pairing %v", p)
		}
		seen[key] = true
	}
	if got := pairings(4, 3); len(got) != 3 {
		t.Errorf("pairings limit ignored: %d", len(got))
	}
}

func fmtInts(xs []int) string {
	out := ""
	for _, x := range xs {
		out += string(rune('0' + x))
	}
	return out
}

func TestNextPermutation(t *testing.T) {
	perm := []int{0, 1, 2}
	count := 1
	for nextPermutation(perm) {
		count++
	}
	if count != 6 {
		t.Errorf("enumerated %d permutations of 3, want 6", count)
	}
	if !equalInts(perm, []int{2, 1, 0}) {
		t.Errorf("final permutation %v, want descending", perm)
	}
}
