package scheduling

import (
	"fmt"

	"nfvchain/internal/model"
)

// Improve runs a deterministic move/swap local search on an assignment:
// while the makespan keeps dropping, it tries to move one item off the
// most-loaded instance onto any other instance, and failing that to swap an
// item of the most-loaded instance with a lighter item elsewhere. The result
// never has a larger makespan than the input. It is the scheduling analogue
// of placement.Improve — a polish pass usable after any Partitioner.
//
// maxRounds bounds the loop; 0 means DefaultImproveRounds. The input slice
// is not modified.
func Improve(items []Item, assign []int, m, maxRounds int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	if len(assign) != len(items) {
		return nil, fmt.Errorf("scheduling: assignment length %d != items %d", len(assign), len(items))
	}
	for i, k := range assign {
		if k < 0 || k >= m {
			return nil, fmt.Errorf("scheduling: item %d assigned to instance %d outside [0,%d)", i, k, m)
		}
	}
	cur := append([]int(nil), assign...)
	ImproveInPlace(items, cur, m, maxRounds)
	return cur, nil
}

// ImproveInPlace is Improve without the defensive copy and validation: it
// mutates assign directly and returns the number of improving rounds applied.
// Inputs must already be a valid assignment (every index in [0,m)); it is the
// allocation-lean inner-loop form the portfolio metaheuristics polish
// candidates with. maxRounds <= 0 means DefaultImproveRounds.
func ImproveInPlace(items []Item, assign []int, m, maxRounds int) int {
	if maxRounds <= 0 {
		maxRounds = DefaultImproveRounds
	}
	loads := Loads(items, assign, m)
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		if !improveOnce(items, assign, loads) {
			break
		}
	}
	return rounds
}

// DefaultImproveRounds bounds the local search; each round strictly reduces
// the makespan, so convergence is fast in practice.
const DefaultImproveRounds = 1000

// improveOnce applies the first strictly-improving move or swap; false when
// the assignment is locally optimal.
func improveOnce(items []Item, assign []int, loads []float64) bool {
	src := argmax(loads)
	span := loads[src]

	// Move: item i from src to the instance where the resulting pairwise
	// makespan is smallest.
	bestItem, bestDst := -1, -1
	bestNew := span
	for i, k := range assign {
		if k != src {
			continue
		}
		w := items[i].Weight
		if w == 0 {
			continue
		}
		for dst := range loads {
			if dst == src {
				continue
			}
			newMax := maxf(span-w, loads[dst]+w)
			if newMax < bestNew-1e-12 {
				bestNew, bestItem, bestDst = newMax, i, dst
			}
		}
	}
	if bestItem >= 0 {
		loads[src] -= items[bestItem].Weight
		loads[bestDst] += items[bestItem].Weight
		assign[bestItem] = bestDst
		return true
	}

	// Swap: exchange item i on src with lighter item j elsewhere.
	for i, ki := range assign {
		if ki != src {
			continue
		}
		wi := items[i].Weight
		for j, kj := range assign {
			if kj == src {
				continue
			}
			wj := items[j].Weight
			if wj >= wi {
				continue
			}
			delta := wi - wj
			newMax := maxf(span-delta, loads[kj]+delta)
			if newMax < span-1e-12 {
				loads[src] -= delta
				loads[kj] += delta
				assign[i], assign[j] = kj, src
				return true
			}
		}
	}
	return false
}

// ImproveSchedule applies Improve to every VNF of an existing complete
// schedule and returns the polished schedule; per-VNF makespans never grow.
func ImproveSchedule(p *model.Problem, s *model.Schedule) (*model.Schedule, error) {
	if err := s.Validate(p); err != nil {
		return nil, fmt.Errorf("scheduling: improve: %w", err)
	}
	out := s.Clone()
	for _, f := range p.VNFs {
		items := ItemsFor(p, f.ID)
		if len(items) == 0 {
			continue
		}
		assign := make([]int, len(items))
		for i, it := range items {
			k, ok := out.Instance(it.ID, f.ID)
			if !ok {
				return nil, fmt.Errorf("scheduling: improve: request %s unassigned at %s", it.ID, f.ID)
			}
			assign[i] = k
		}
		better, err := Improve(items, assign, f.Instances, 0)
		if err != nil {
			return nil, err
		}
		for i, it := range items {
			out.Assign(it.ID, f.ID, better[i])
		}
	}
	return out, nil
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
