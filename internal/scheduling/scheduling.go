// Package scheduling implements the request-scheduling algorithms of the
// paper's Section IV-B. Assigning the requests R_f that use a VNF f to its
// M_f service instances so that per-instance total arrival rates are as
// equal as possible is multi-way number partitioning (NP-hard); the paper's
// contribution is RCKK (Reverse Complete Karmarkar-Karp, Algorithm 2),
// evaluated against CGA (the greedy descent of Korf's Complete Greedy
// Algorithm). Additional comparators — forward-combining KK (ablation), an
// exact branch-and-bound partitioner, round-robin and random — support the
// optimality and ablation analyses.
//
// Balanced instance loads minimize the average M/M/1 response latency
// W(f,k) = 1/(P·µ_f − Σ_r λ_r z_{r,k}^f) across instances (paper Eq. 12/15),
// which is why every algorithm here reduces to partitioning the requests'
// effective rates.
package scheduling

import (
	"errors"
	"fmt"
	"sort"

	"nfvchain/internal/model"
)

// Item is one request's contribution to a VNF's load: its retransmission-
// inflated arrival rate λ_r/P_r.
type Item struct {
	ID     model.RequestID
	Weight float64
}

// Partitioner splits items across m service instances.
type Partitioner interface {
	// Name returns the short algorithm identifier used in experiment output.
	Name() string
	// Partition returns assign[i] = instance index of items[i], with every
	// index in [0,m). Implementations must not mutate items.
	Partition(items []Item, m int) ([]int, error)
}

// ReusePartitioner is implemented by partitioners that can run against
// caller-retained scratch buffers, allocation-free in steady state. The
// returned assignment slice aliases the scratch and is only valid until the
// next call with the same scratch — callers that keep results must copy.
// Repair controllers rebalance on every node transition, so this is their
// hot path.
type ReusePartitioner interface {
	Partitioner
	PartitionReuse(items []Item, m int, scratch *PartitionScratch) ([]int, error)
}

// PartitionScratch holds the reusable buffers of PartitionReuse calls. The
// zero value is ready; a scratch must not be shared across goroutines.
type PartitionScratch struct {
	assign []int
	order  []int
	nodes  []mergeNode
	sums   []float64
	sets   []setRef
	parts  []partition
	list   []*partition
	stack  []setRef
}

// grown returns s resized to n elements, reusing its backing array when
// large enough; contents are unspecified.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// validate rejects structurally bad partition inputs on behalf of all
// implementations.
func validate(items []Item, m int) error {
	if m < 1 {
		return fmt.Errorf("scheduling: instance count %d < 1", m)
	}
	for _, it := range items {
		if it.Weight < 0 {
			return fmt.Errorf("scheduling: item %s has negative weight %v", it.ID, it.Weight)
		}
	}
	return nil
}

// sortedByWeightDesc returns a copy of items in descending weight order with
// id tie-breaks, the scan order shared by RCKK, CGA and KK.
func sortedByWeightDesc(items []Item) []Item {
	out := append([]Item(nil), items...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Loads sums item weights per instance for a given assignment.
func Loads(items []Item, assign []int, m int) []float64 {
	loads := make([]float64, m)
	for i, it := range items {
		loads[assign[i]] += it.Weight
	}
	return loads
}

// Makespan returns the maximum instance load, the quantity exact
// partitioning minimizes.
func Makespan(loads []float64) float64 {
	var maxL float64
	for _, l := range loads {
		if l > maxL {
			maxL = l
		}
	}
	return maxL
}

// Spread returns max−min instance load, the balance measure the paper's
// Objective 2 insight targets ("balance Σλ_r of each instance as nearly
// equal as possible").
func Spread(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	minL, maxL := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	return maxL - minL
}

// ErrNoRequests is returned by ScheduleAll helpers when a VNF has requests
// but zero instances — a malformed problem that Validate would reject.
var ErrNoRequests = errors.New("scheduling: vnf has zero instances")

// ItemsFor builds the partition input for VNF f: one item per request in
// R_f, weighted by its effective rate λ_r/P_r (Eq. 7).
func ItemsFor(p *model.Problem, f model.VNFID) []Item {
	var items []Item
	for _, r := range p.Requests {
		if r.Uses(f) {
			items = append(items, Item{ID: r.ID, Weight: r.EffectiveRate()})
		}
	}
	return items
}

// ScheduleAll partitions every VNF's request set across its instances with
// the given algorithm and returns the complete schedule (the z_{r,k}^f
// matrix of Eq. 5).
func ScheduleAll(p *model.Problem, alg Partitioner) (*model.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("scheduling: %w", err)
	}
	s := model.NewSchedule()
	for _, f := range p.VNFs {
		items := ItemsFor(p, f.ID)
		if len(items) == 0 {
			continue
		}
		if f.Instances < 1 {
			return nil, fmt.Errorf("scheduling: vnf %s: %w", f.ID, ErrNoRequests)
		}
		assign, err := alg.Partition(items, f.Instances)
		if err != nil {
			return nil, fmt.Errorf("scheduling: vnf %s: %w", f.ID, err)
		}
		if len(assign) != len(items) {
			return nil, fmt.Errorf("scheduling: vnf %s: %s returned %d assignments for %d items",
				f.ID, alg.Name(), len(assign), len(items))
		}
		for i, it := range items {
			if assign[i] < 0 || assign[i] >= f.Instances {
				return nil, fmt.Errorf("scheduling: vnf %s: %s assigned item %s to instance %d outside [0,%d)",
					f.ID, alg.Name(), it.ID, assign[i], f.Instances)
			}
			s.Assign(it.ID, f.ID, assign[i])
		}
	}
	return s, nil
}
