package scheduling

import (
	"fmt"
	"hash/fnv"
	"testing"

	"nfvchain/internal/rng"
	"nfvchain/internal/model"
)

func TestCompatProbe(t *testing.T) {
	h := fnv.New64a()
	for _, n := range []int{1, 2, 7, 50, 313} {
		for _, m := range []int{1, 2, 3, 5} {
			st := rng.Derive(uint64(n*1000+m), "probe")
			items := make([]Item, n)
			for i := range items {
				items[i] = Item{ID: model.RequestID(fmt.Sprintf("r%d", i)), Weight: float64(1+st.IntN(1000)) / 7.0}
			}
			for _, p := range []Partitioner{RCKK{}, CKK{}, KKForward{}, KKRandom{Seed: 42}} {
				assign, err := p.Partition(items, m)
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range assign {
					fmt.Fprintf(h, "%s/%d/%d;", p.Name(), m, a)
				}
			}
		}
	}
	t.Logf("PROBE-HASH %#x", h.Sum64())
}
