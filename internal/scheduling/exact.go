package scheduling

import (
	"fmt"
	"sort"
)

// Exact computes a makespan-optimal partition by branch-and-bound, seeded
// with the LPT incumbent. Multi-way number partitioning is NP-hard (the
// paper cites Korf), so Exact guards its instance size; it exists to measure
// the optimality gap of RCKK and CGA on small instances.
type Exact struct {
	// MaxItems bounds the accepted item count (default 24).
	MaxItems int
	// MaxExpansions caps the search-tree size (default 10e6).
	MaxExpansions int
}

// Defaults for Exact's tractability guards.
const (
	DefaultExactMaxItems      = 24
	DefaultExactMaxExpansions = 10_000_000
)

// Name implements Partitioner.
func (e *Exact) Name() string { return "Exact" }

// Partition implements Partitioner.
func (e *Exact) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	maxItems := e.MaxItems
	if maxItems <= 0 {
		maxItems = DefaultExactMaxItems
	}
	if len(items) > maxItems {
		return nil, fmt.Errorf("scheduling: exact search limited to %d items, got %d", maxItems, len(items))
	}
	maxExp := e.MaxExpansions
	if maxExp <= 0 {
		maxExp = DefaultExactMaxExpansions
	}
	n := len(items)
	assign := make([]int, n)
	if n == 0 || m == 1 {
		return assign, nil
	}
	order := sortedIndexesByWeightDesc(items)
	best := greedyAssign(items, order, m)
	bestSpan := Makespan(Loads(items, best, m))
	// Lower bound: max(total/m, heaviest item). Stop early when greedy hits it.
	var total, heaviest float64
	for _, it := range items {
		total += it.Weight
		if it.Weight > heaviest {
			heaviest = it.Weight
		}
	}
	lower := total / float64(m)
	if heaviest > lower {
		lower = heaviest
	}
	if bestSpan > lower+1e-12 {
		cur := append([]int(nil), best...)
		incumbent := append([]int(nil), best...)
		budget := maxExp
		exactSearch(items, order, m, 0, make([]float64, m), cur, &incumbent, &bestSpan, lower, &budget)
		best = incumbent
	}
	copy(assign, best)
	return assign, nil
}

// exactSearch is cgaSearch without a node budget cutoff semantic change:
// it prunes with the same rules plus a global lower bound for early exit.
func exactSearch(items []Item, order []int, m, depth int, loads []float64, cur []int, best *[]int, bestSpan *float64, lower float64, budget *int) {
	if *budget <= 0 || *bestSpan <= lower+1e-12 {
		return
	}
	*budget--
	if depth == len(order) {
		span := Makespan(loads)
		if span < *bestSpan {
			*bestSpan = span
			copy(*best, cur)
		}
		return
	}
	idx := order[depth]
	w := items[idx].Weight
	targets := make([]int, m)
	for k := range targets {
		targets[k] = k
	}
	sort.SliceStable(targets, func(a, b int) bool { return loads[targets[a]] < loads[targets[b]] })
	var lastLoad float64
	first := true
	for _, k := range targets {
		if !first && loads[k] == lastLoad {
			continue
		}
		first, lastLoad = false, loads[k]
		if loads[k]+w >= *bestSpan {
			continue
		}
		loads[k] += w
		cur[idx] = k
		exactSearch(items, order, m, depth+1, loads, cur, best, bestSpan, lower, budget)
		loads[k] -= w
	}
}

var _ Partitioner = (*Exact)(nil)
