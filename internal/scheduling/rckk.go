package scheduling

import (
	"sort"
)

// RCKK is the paper's Reverse Complete Karmarkar-Karp heuristic
// (Algorithm 2). Every request starts as its own m-tuple partition
// (λ_r, 0, …, 0); the two partitions with the largest leading values are
// repeatedly combined *in reverse order* — the largest position of one with
// the smallest of the other — then re-sorted and normalized by subtracting
// the smallest position. The surviving tuple's positions are the instance
// assignments. Reverse pairing is what cancels large against small; the
// forward-combining KK variant in this package exists to ablate exactly
// that choice.
type RCKK struct{}

// Name implements Partitioner.
func (RCKK) Name() string { return "RCKK" }

// partition is one m-tuple with the item indexes backing each position.
type partition struct {
	sums []float64
	sets [][]int // parallel to sums; values index the caller's item slice
}

// Partition implements Partitioner.
func (RCKK) Partition(items []Item, m int) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	n := len(items)
	assign := make([]int, n)
	if n == 0 {
		return assign, nil
	}
	if m == 1 {
		return assign, nil // all zeros
	}

	// One partition per item: (λ_r, 0, …, 0). Build in descending weight
	// order so the list starts sorted by leading value.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := items[order[a]].Weight, items[order[b]].Weight
		if wa != wb {
			return wa > wb
		}
		return items[order[a]].ID < items[order[b]].ID
	})
	list := make([]*partition, 0, n)
	for _, idx := range order {
		p := &partition{sums: make([]float64, m), sets: make([][]int, m)}
		p.sums[0] = items[idx].Weight
		p.sets[0] = []int{idx}
		list = append(list, p)
	}

	for len(list) > 1 {
		a, b := list[0], list[1]
		list = list[2:]
		c := combineReverse(a, b, m)
		list = insertSorted(list, c)
	}

	final := list[0]
	for pos, set := range final.sets {
		for _, idx := range set {
			assign[idx] = pos
		}
	}
	return assign, nil
}

// combineReverse merges b into a with reverse pairing: position i of a with
// position m−1−i of b, then re-sorts positions descending and normalizes by
// the smallest position (Algorithm 2 steps 3–5).
func combineReverse(a, b *partition, m int) *partition {
	c := &partition{sums: make([]float64, m), sets: make([][]int, m)}
	for i := 0; i < m; i++ {
		j := m - 1 - i
		c.sums[i] = a.sums[i] + b.sums[j]
		set := append([]int(nil), a.sets[i]...)
		set = append(set, b.sets[j]...)
		c.sets[i] = set
	}
	sortPartition(c)
	normalize(c)
	return c
}

// sortPartition orders the tuple's positions by descending sum, carrying the
// backing sets along.
func sortPartition(p *partition) {
	idx := make([]int, len(p.sums))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return p.sums[idx[a]] > p.sums[idx[b]] })
	sums := make([]float64, len(p.sums))
	sets := make([][]int, len(p.sets))
	for to, from := range idx {
		sums[to] = p.sums[from]
		sets[to] = p.sets[from]
	}
	p.sums, p.sets = sums, sets
}

// normalize subtracts the smallest (last) position from every position.
func normalize(p *partition) {
	last := p.sums[len(p.sums)-1]
	if last == 0 {
		return
	}
	for i := range p.sums {
		p.sums[i] -= last
	}
}

// insertSorted returns list with p inserted keeping descending order of the
// leading value.
func insertSorted(list []*partition, p *partition) []*partition {
	pos := sort.Search(len(list), func(i int) bool { return list[i].sums[0] < p.sums[0] })
	list = append(list, nil)
	copy(list[pos+1:], list[pos:])
	list[pos] = p
	return list
}

var _ Partitioner = RCKK{}
