package scheduling

import (
	"sort"
)

// RCKK is the paper's Reverse Complete Karmarkar-Karp heuristic
// (Algorithm 2). Every request starts as its own m-tuple partition
// (λ_r, 0, …, 0); the two partitions with the largest leading values are
// repeatedly combined *in reverse order* — the largest position of one with
// the smallest of the other — then re-sorted and normalized by subtracting
// the smallest position. The surviving tuple's positions are the instance
// assignments. Reverse pairing is what cancels large against small; the
// forward-combining KK variant in this package exists to ablate exactly
// that choice.
type RCKK struct{}

// Name implements Partitioner.
func (RCKK) Name() string { return "RCKK" }

// setRef references one item set held in a mergeArena: 0 is the empty set,
// a negative value −(i+1) is the singleton {items[i]}, and a positive value
// k is the union recorded in nodes[k−1]. References are immutable once
// created, so search algorithms (CKK) can share subtrees across branches.
type setRef int32

// leafRef returns the singleton set reference for item index idx.
func leafRef(idx int) setRef { return setRef(-(idx + 1)) }

// mergeNode joins two non-empty sets.
type mergeNode struct {
	left, right setRef
}

// mergeArena holds the merge trees of one Partition call. Unioning two sets
// appends at most one node — O(1) instead of the O(|set|) copying a
// materialized [][]int representation needs per combine.
type mergeArena struct {
	nodes []mergeNode
}

// merge returns the union of sets a and b.
func (ar *mergeArena) merge(a, b setRef) setRef {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	ar.nodes = append(ar.nodes, mergeNode{left: a, right: b})
	return setRef(len(ar.nodes))
}

// mark returns a truncation point for rollback; see release.
func (ar *mergeArena) mark() int { return len(ar.nodes) }

// release discards every node created after mark. Only valid when no live
// partition still references those nodes (CKK truncates after finishing a
// search branch).
func (ar *mergeArena) release(mark int) { ar.nodes = ar.nodes[:mark] }

// assignTo walks the set tree under ref and records pos as the assignment of
// every member item. stack is scratch space, returned for reuse.
func (ar *mergeArena) assignTo(ref setRef, pos int, assign []int, stack []setRef) []setRef {
	if ref == 0 {
		return stack
	}
	stack = append(stack[:0], ref)
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r < 0 {
			assign[-(r + 1)] = pos
			continue
		}
		nd := ar.nodes[r-1]
		stack = append(stack, nd.left, nd.right)
	}
	return stack
}

// partition is one m-tuple with the set of backing items per position.
type partition struct {
	sums []float64
	sets []setRef // parallel to sums; arena references, never materialized
}

// assignments fills assign from the partition's m set trees.
func (p *partition) assignments(ar *mergeArena, assign []int) {
	var stack []setRef
	for pos, ref := range p.sets {
		stack = ar.assignTo(ref, pos, assign, stack)
	}
}

// newPartitionList builds the initial one-item-per-partition list in the
// given item order, backed by two flat blocks so the whole list costs four
// allocations regardless of n.
func newPartitionList(items []Item, order []int, m int) []*partition {
	n := len(order)
	sums := make([]float64, n*m)
	sets := make([]setRef, n*m)
	parts := make([]partition, n)
	list := make([]*partition, n)
	for i, idx := range order {
		p := &parts[i]
		p.sums = sums[i*m : (i+1)*m : (i+1)*m]
		p.sets = sets[i*m : (i+1)*m : (i+1)*m]
		p.sums[0] = items[idx].Weight
		p.sets[0] = leafRef(idx)
		list[i] = p
	}
	return list
}

// Partition implements Partitioner.
func (r RCKK) Partition(items []Item, m int) ([]int, error) {
	var scratch PartitionScratch
	return r.PartitionReuse(items, m, &scratch)
}

// PartitionReuse implements ReusePartitioner: identical assignments to
// Partition, but every working buffer — the merge arena, the flat tuple
// blocks, the sorted list, the walk stack and the result itself — lives in
// scratch and is recycled across calls.
func (RCKK) PartitionReuse(items []Item, m int, sc *PartitionScratch) ([]int, error) {
	if err := validate(items, m); err != nil {
		return nil, err
	}
	n := len(items)
	sc.assign = grown(sc.assign, n)
	clear(sc.assign)
	if n == 0 || m == 1 {
		return sc.assign, nil // all zeros
	}

	// One partition per item: (λ_r, 0, …, 0). Build in descending weight
	// order so the list starts sorted by leading value.
	ar := &mergeArena{nodes: sc.nodes[:0]}
	list := sc.partitionList(items, m)

	for len(list) > 1 {
		a, b := list[0], list[1]
		list = list[2:]
		combineReverse(a, b, ar)
		list = insertSorted(list, a)
	}

	sc.stack = sc.stack[:0]
	for pos, ref := range list[0].sets {
		sc.stack = ar.assignTo(ref, pos, sc.assign, sc.stack)
	}
	sc.nodes = ar.nodes
	return sc.assign, nil
}

// partitionList is newPartitionList against the scratch's retained blocks:
// the list slice gets 2n capacity because the combine loop consumes two
// entries off the front for every one it re-inserts at the back.
func (sc *PartitionScratch) partitionList(items []Item, m int) []*partition {
	n := len(items)
	sc.order = grown(sc.order, n)
	for i := range sc.order {
		sc.order[i] = i
	}
	sort.SliceStable(sc.order, func(a, b int) bool {
		wa, wb := items[sc.order[a]].Weight, items[sc.order[b]].Weight
		if wa != wb {
			return wa > wb
		}
		return items[sc.order[a]].ID < items[sc.order[b]].ID
	})
	sc.sums = grown(sc.sums, n*m)
	clear(sc.sums)
	sc.sets = grown(sc.sets, n*m)
	clear(sc.sets)
	sc.parts = grown(sc.parts, n)
	if cap(sc.list) < 2*n {
		sc.list = make([]*partition, 2*n)
	}
	list := sc.list[:n]
	for i, idx := range sc.order {
		p := &sc.parts[i]
		p.sums = sc.sums[i*m : (i+1)*m : (i+1)*m]
		p.sets = sc.sets[i*m : (i+1)*m : (i+1)*m]
		p.sums[0] = items[idx].Weight
		p.sets[0] = leafRef(idx)
		list[i] = p
	}
	return list
}

// combineReverse merges b into a (in place, consuming b) with reverse
// pairing: position i of a with position m−1−i of b, then re-sorts positions
// descending and normalizes by the smallest position (Algorithm 2 steps 3–5).
func combineReverse(a, b *partition, ar *mergeArena) {
	m := len(a.sums)
	for i := 0; i < m; i++ {
		j := m - 1 - i
		a.sums[i] += b.sums[j]
		a.sets[i] = ar.merge(a.sets[i], b.sets[j])
	}
	sortPartition(a)
	normalize(a)
}

// sortPartition orders the tuple's positions by descending sum, carrying the
// backing sets along. The stable in-place insertion sort allocates nothing
// and produces the same permutation sort.SliceStable would (m is small: the
// instance count of one VNF).
func sortPartition(p *partition) {
	sums, sets := p.sums, p.sets
	for i := 1; i < len(sums); i++ {
		s, set := sums[i], sets[i]
		j := i
		for j > 0 && sums[j-1] < s {
			sums[j], sets[j] = sums[j-1], sets[j-1]
			j--
		}
		sums[j], sets[j] = s, set
	}
}

// normalize subtracts the smallest (last) position from every position.
func normalize(p *partition) {
	last := p.sums[len(p.sums)-1]
	if last == 0 {
		return
	}
	for i := range p.sums {
		p.sums[i] -= last
	}
}

// insertSorted returns list with p inserted keeping descending order of the
// leading value.
func insertSorted(list []*partition, p *partition) []*partition {
	pos := sort.Search(len(list), func(i int) bool { return list[i].sums[0] < p.sums[0] })
	list = append(list, nil)
	copy(list[pos+1:], list[pos:])
	list[pos] = p
	return list
}

var (
	_ Partitioner      = RCKK{}
	_ ReusePartitioner = RCKK{}
)
