// Package queueing implements the open-Jackson-network machinery the paper
// builds its model on (Section III-B): M/M/1 service instances, Burke/Little
// identities, Kleinrock flow merging, packet-loss retransmission feedback
// (λ = λ0/P), and a general Jackson network solver for chains of VNFs.
package queueing

import (
	"errors"
	"fmt"
	"math"
)

// ErrUnstable is returned when a queue's arrival rate reaches or exceeds its
// service rate (ρ ≥ 1), i.e. no steady state exists.
var ErrUnstable = errors.New("queueing: utilization >= 1, no steady state")

// MM1 is a single-server queue with Poisson arrivals at rate Lambda and
// exponential service at rate Mu (the model of one VNF service instance).
type MM1 struct {
	Lambda float64 // packet arrival rate Λ_k^f
	Mu     float64 // service rate µ_f
}

// Validate reports non-positive parameters.
func (q MM1) Validate() error {
	if q.Lambda < 0 {
		return fmt.Errorf("queueing: negative arrival rate %v", q.Lambda)
	}
	if q.Mu <= 0 {
		return fmt.Errorf("queueing: service rate %v must be positive", q.Mu)
	}
	return nil
}

// Utilization returns ρ = Λ/µ (Eq. 9).
func (q MM1) Utilization() float64 { return q.Lambda / q.Mu }

// Stable reports whether ρ < 1.
func (q MM1) Stable() bool { return q.Lambda < q.Mu }

// MeanJobs returns E[N] = ρ/(1−ρ), the steady-state mean number of packets
// in the system (Eq. 10).
func (q MM1) MeanJobs() (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if !q.Stable() {
		return 0, ErrUnstable
	}
	rho := q.Utilization()
	return rho / (1 - rho), nil
}

// MeanResponseTime returns E[T] = 1/(µ−Λ): queueing plus processing latency
// of one packet.
func (q MM1) MeanResponseTime() (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if !q.Stable() {
		return 0, ErrUnstable
	}
	return 1 / (q.Mu - q.Lambda), nil
}

// MeanWaitingTime returns W_q = ρ/(µ−Λ), time in buffer before service.
func (q MM1) MeanWaitingTime() (float64, error) {
	t, err := q.MeanResponseTime()
	if err != nil {
		return 0, err
	}
	return t * q.Utilization(), nil
}

// ProbJobs returns π(n) = (1−ρ)·ρⁿ (Eq. 8), or an error when unstable.
func (q MM1) ProbJobs(n int) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if !q.Stable() {
		return 0, ErrUnstable
	}
	if n < 0 {
		return 0, fmt.Errorf("queueing: negative job count %d", n)
	}
	rho := q.Utilization()
	return (1 - rho) * math.Pow(rho, float64(n)), nil
}

// ResponseTimeQuantile returns the p-quantile (p ∈ [0,1)) of the sojourn
// time, which in an M/M/1 queue is exponential with rate µ−Λ:
// T_p = −ln(1−p)/(µ−Λ). Used for analytic p99 tail comparisons.
func (q MM1) ResponseTimeQuantile(p float64) (float64, error) {
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("queueing: quantile %v outside [0,1)", p)
	}
	t, err := q.MeanResponseTime()
	if err != nil {
		return 0, err
	}
	return -math.Log(1-p) * t, nil
}

// EffectiveRate returns the retransmission-inflated arrival rate λ0/P of a
// flow whose packets are delivered correctly with probability P (Burke's
// theorem applied to the loss-feedback loop, Section III-B). P must lie in
// (0,1] and λ0 must be non-negative.
func EffectiveRate(lambda0, p float64) (float64, error) {
	if lambda0 < 0 {
		return 0, fmt.Errorf("queueing: negative external rate %v", lambda0)
	}
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("queueing: delivery probability %v outside (0,1]", p)
	}
	return lambda0 / p, nil
}

// InstanceResponseTime evaluates the paper's Eq. 12 for one service
// instance: W = 1/(P·µ − Σ_r λ_r), where rawRates are the *external* rates
// λ_r of the requests sharing the instance and P is their common delivery
// probability. Equivalently W = (1/P)/(µ − Λ) with Λ = Σλ_r/P.
func InstanceResponseTime(mu, p float64, rawRates []float64) (float64, error) {
	if mu <= 0 {
		return 0, fmt.Errorf("queueing: service rate %v must be positive", mu)
	}
	if p <= 0 || p > 1 {
		return 0, fmt.Errorf("queueing: delivery probability %v outside (0,1]", p)
	}
	var sum float64
	for _, r := range rawRates {
		if r < 0 {
			return 0, fmt.Errorf("queueing: negative request rate %v", r)
		}
		sum += r
	}
	denom := p*mu - sum
	if denom <= 0 {
		return 0, ErrUnstable
	}
	return 1 / denom, nil
}

// TandemWithLossResponseTime reproduces the paper's Fig. 3 worked example:
// a request with external Poisson rate lambda0 traverses VNFs with service
// rates mus in sequence; lost packets (delivered with probability p) are
// retransmitted from the source. The total mean response time is
// Σ_i 1/(p·µ_i − λ0).
func TandemWithLossResponseTime(lambda0, p float64, mus []float64) (float64, error) {
	if len(mus) == 0 {
		return 0, errors.New("queueing: empty tandem")
	}
	var total float64
	for _, mu := range mus {
		t, err := InstanceResponseTime(mu, p, []float64{lambda0})
		if err != nil {
			return 0, err
		}
		total += t
	}
	return total, nil
}

// MergeRates applies Kleinrock's approximation: flows merging at a service
// instance behave as one Poisson stream whose rate is the sum of the parts.
func MergeRates(rates ...float64) float64 {
	var sum float64
	for _, r := range rates {
		sum += r
	}
	return sum
}
