package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMM1KProbSumsToOne(t *testing.T) {
	for _, q := range []MM1K{
		{Lambda: 3, Mu: 4, K: 5},
		{Lambda: 4, Mu: 4, K: 7},  // ρ = 1 uniform case
		{Lambda: 9, Mu: 4, K: 10}, // overloaded but ergodic
	} {
		var sum float64
		for n := 0; n <= q.K; n++ {
			p, err := q.ProbJobs(n)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 || p > 1 {
				t.Errorf("π(%d) = %v outside [0,1]", n, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%+v: Σπ = %v", q, sum)
		}
	}
}

func TestMM1KRhoOneIsUniform(t *testing.T) {
	q := MM1K{Lambda: 5, Mu: 5, K: 4}
	for n := 0; n <= 4; n++ {
		p, err := q.ProbJobs(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-0.2) > 1e-12 {
			t.Errorf("π(%d) = %v, want uniform 0.2", n, p)
		}
	}
}

func TestMM1KConvergesToMM1(t *testing.T) {
	// For ρ < 1 and large K, M/M/1/K tends to M/M/1.
	lim := MM1{Lambda: 3, Mu: 5}
	fin := MM1K{Lambda: 3, Mu: 5, K: 200}
	wantJobs, _ := lim.MeanJobs()
	gotJobs, err := fin.MeanJobs()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotJobs-wantJobs) > 1e-6 {
		t.Errorf("MeanJobs = %v, want ≈%v", gotJobs, wantJobs)
	}
	wantT, _ := lim.MeanResponseTime()
	gotT, err := fin.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotT-wantT) > 1e-6 {
		t.Errorf("MeanResponseTime = %v, want ≈%v", gotT, wantT)
	}
	b, _ := fin.BlockingProb()
	if b > 1e-10 {
		t.Errorf("blocking %v should be negligible at K=200, ρ=0.6", b)
	}
}

func TestMM1KOverloadBlocks(t *testing.T) {
	q := MM1K{Lambda: 8, Mu: 4, K: 3}
	b, err := q.BlockingProb()
	if err != nil {
		t.Fatal(err)
	}
	// Heavily overloaded: blocking must be large; as Λ→∞, b→1−µ/Λ = 0.5.
	if b < 0.4 {
		t.Errorf("blocking = %v, want ≥ 0.4 at ρ=2", b)
	}
	thr, err := q.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	if thr > q.Mu {
		t.Errorf("throughput %v exceeds service capacity %v", thr, q.Mu)
	}
	u, err := q.Utilization()
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.9 {
		t.Errorf("overloaded utilization %v, want ≈1", u)
	}
}

func TestMM1KThroughputConservation(t *testing.T) {
	// Accepted rate = service completion rate = µ·P(server busy).
	f := func(l8, m8, k8 uint8) bool {
		q := MM1K{
			Lambda: 0.1 + float64(l8)/16,
			Mu:     0.1 + float64(m8)/16,
			K:      1 + int(k8%12),
		}
		thr, err1 := q.Throughput()
		u, err2 := q.Utilization()
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(thr-q.Mu*u) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMM1KValidation(t *testing.T) {
	if _, err := (MM1K{Lambda: -1, Mu: 1, K: 1}).BlockingProb(); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := (MM1K{Lambda: 1, Mu: 0, K: 1}).BlockingProb(); err == nil {
		t.Error("zero mu accepted")
	}
	if _, err := (MM1K{Lambda: 1, Mu: 1, K: 0}).BlockingProb(); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := (MM1K{Lambda: 1, Mu: 1, K: 3}).ProbJobs(4); err == nil {
		t.Error("state beyond K accepted")
	}
	if _, err := (MM1K{Lambda: 1, Mu: 1, K: 3}).ProbJobs(-1); err == nil {
		t.Error("negative state accepted")
	}
}
