package queueing

import (
	"fmt"
	"math"
)

// MM1K is a single-server queue with Poisson arrivals, exponential service,
// and room for at most K packets in the system (one in service plus K−1
// waiting). Arrivals finding the system full are dropped. This is the
// analytic counterpart of the simulator's finite BufferSize mode: the
// admission-control story of the paper quantified at packet granularity
// instead of job granularity.
//
// Unlike M/M/1, an M/M/1/K queue has a steady state for any ρ — overload
// shows up as blocking probability, not divergence.
type MM1K struct {
	Lambda float64 // arrival rate
	Mu     float64 // service rate
	K      int     // system capacity (≥ 1)
}

// Validate reports structurally invalid parameters.
func (q MM1K) Validate() error {
	if q.Lambda < 0 {
		return fmt.Errorf("queueing: negative arrival rate %v", q.Lambda)
	}
	if q.Mu <= 0 {
		return fmt.Errorf("queueing: service rate %v must be positive", q.Mu)
	}
	if q.K < 1 {
		return fmt.Errorf("queueing: system capacity %d must be >= 1", q.K)
	}
	return nil
}

// rho returns Λ/µ (may exceed 1; the chain remains ergodic).
func (q MM1K) rho() float64 { return q.Lambda / q.Mu }

// ProbJobs returns π(n), the steady-state probability of n packets in the
// system, for n in [0, K].
func (q MM1K) ProbJobs(n int) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if n < 0 || n > q.K {
		return 0, fmt.Errorf("queueing: state %d outside [0,%d]", n, q.K)
	}
	rho := q.rho()
	if rho == 1 {
		return 1 / float64(q.K+1), nil
	}
	return (1 - rho) * math.Pow(rho, float64(n)) / (1 - math.Pow(rho, float64(q.K+1))), nil
}

// BlockingProb returns π(K): the probability an arriving packet is dropped.
func (q MM1K) BlockingProb() (float64, error) {
	return q.ProbJobs(q.K)
}

// Throughput returns the accepted rate Λ·(1−π(K)).
func (q MM1K) Throughput() (float64, error) {
	b, err := q.BlockingProb()
	if err != nil {
		return 0, err
	}
	return q.Lambda * (1 - b), nil
}

// MeanJobs returns E[N] = Σ n·π(n).
func (q MM1K) MeanJobs() (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	var mean float64
	for n := 0; n <= q.K; n++ {
		p, err := q.ProbJobs(n)
		if err != nil {
			return 0, err
		}
		mean += float64(n) * p
	}
	return mean, nil
}

// MeanResponseTime returns the mean sojourn of *accepted* packets:
// E[T] = E[N] / (Λ·(1−π(K))) by Little's law over the accepted stream.
func (q MM1K) MeanResponseTime() (float64, error) {
	jobs, err := q.MeanJobs()
	if err != nil {
		return 0, err
	}
	thr, err := q.Throughput()
	if err != nil {
		return 0, err
	}
	if thr == 0 {
		return 0, fmt.Errorf("queueing: zero throughput")
	}
	return jobs / thr, nil
}

// Utilization returns the server busy probability 1 − π(0).
func (q MM1K) Utilization() (float64, error) {
	p0, err := q.ProbJobs(0)
	if err != nil {
		return 0, err
	}
	return 1 - p0, nil
}
