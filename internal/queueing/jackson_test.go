package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func tandem2(lambda0, p float64, mu1, mu2 float64) *JacksonNetwork {
	n, err := ChainNetwork(lambda0, p, []float64{mu1, mu2})
	if err != nil {
		panic(err)
	}
	return n
}

func TestJacksonValidate(t *testing.T) {
	tests := []struct {
		name string
		n    JacksonNetwork
	}{
		{"empty", JacksonNetwork{}},
		{"dim mismatch", JacksonNetwork{External: []float64{1}, ServiceRate: []float64{1, 2}, Routing: [][]float64{{0}}}},
		{"negative external", JacksonNetwork{External: []float64{-1}, ServiceRate: []float64{1}, Routing: [][]float64{{0}}}},
		{"zero mu", JacksonNetwork{External: []float64{1}, ServiceRate: []float64{0}, Routing: [][]float64{{0}}}},
		{"ragged routing", JacksonNetwork{External: []float64{1, 0}, ServiceRate: []float64{1, 1}, Routing: [][]float64{{0, 0}, {0}}}},
		{"negative prob", JacksonNetwork{External: []float64{1}, ServiceRate: []float64{1}, Routing: [][]float64{{-0.1}}}},
		{"superstochastic row", JacksonNetwork{External: []float64{1, 0}, ServiceRate: []float64{1, 1}, Routing: [][]float64{{0.6, 0.6}, {0, 0}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.n.Validate(); err == nil {
				t.Error("invalid network accepted")
			}
		})
	}
}

func TestChainNetworkTrafficRates(t *testing.T) {
	// Paper Fig. 3: steady-state λ = λ0/P at every station.
	n := tandem2(1, 0.8, 10, 10)
	lam, err := n.TrafficRates()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / 0.8
	for i, l := range lam {
		if !close(l, want, 1e-9) {
			t.Errorf("λ_%d = %v, want %v (λ0/P)", i, l, want)
		}
	}
}

func TestChainNetworkMatchesClosedForm(t *testing.T) {
	// The paper's closed form: E[T_i] = 1/(Pµ_i − λ0), E[T] = Σ E[T_i].
	lambda0, p := 2.0, 0.9
	mus := []float64{7, 11, 5}
	n, err := ChainNetwork(lambda0, p, mus)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, mu := range mus {
		want := (1 / p) / (mu - lambda0/p) // = 1/(pµ−λ0) scaled: E[T_i] as seen per network pass
		_ = want
		// Station response per visit: 1/(µ − λ0/p).
		perVisit := 1 / (mu - lambda0/p)
		if !close(ms[i].ResponseTime, perVisit, 1e-9) {
			t.Errorf("station %d response = %v, want %v", i, ms[i].ResponseTime, perVisit)
		}
		if !close(ms[i].MeanJobs, (lambda0/p)/(mu-lambda0/p), 1e-9) {
			t.Errorf("station %d jobs = %v", i, ms[i].MeanJobs)
		}
	}
	// Network sojourn per external packet (Little over the whole net):
	// E[T] = Σ E[N_i] / λ0 = Σ [ (λ0/p) / (µ_i − λ0/p) ] / λ0 = Σ 1/(pµ_i − λ0).
	resp, err := n.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	closedForm, err := TandemWithLossResponseTime(lambda0, p, mus)
	if err != nil {
		t.Fatal(err)
	}
	if !close(resp, closedForm, 1e-9) {
		t.Errorf("network E[T] = %v, closed form = %v", resp, closedForm)
	}
}

func TestJacksonNoFeedbackReducesToTandem(t *testing.T) {
	n := tandem2(3, 1, 5, 8) // P=1: plain tandem, Burke's theorem
	ms, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !close(ms[0].ResponseTime, 1.0/2, 1e-9) {
		t.Errorf("station 0 = %v, want 1/(5−3)", ms[0].ResponseTime)
	}
	if !close(ms[1].ResponseTime, 1.0/5, 1e-9) {
		t.Errorf("station 1 = %v, want 1/(8−3)", ms[1].ResponseTime)
	}
}

func TestJacksonUnstable(t *testing.T) {
	n := tandem2(6, 1, 5, 8)
	if _, err := n.Solve(); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
	if _, err := n.MeanJobs(); !errors.Is(err, ErrUnstable) {
		t.Errorf("MeanJobs err = %v", err)
	}
	if _, err := n.MeanResponseTime(); !errors.Is(err, ErrUnstable) {
		t.Errorf("MeanResponseTime err = %v", err)
	}
}

func TestJacksonSingularLoop(t *testing.T) {
	// A lossless closed loop (row sums = 1 with a cycle) has singular I−Pᵀ
	// when it keeps all traffic forever.
	n := &JacksonNetwork{
		External:    []float64{1, 0},
		ServiceRate: []float64{2, 2},
		Routing:     [][]float64{{0, 1}, {1, 0}},
	}
	if _, err := n.TrafficRates(); err == nil {
		t.Error("singular routing accepted")
	}
}

func TestJacksonStationaryProb(t *testing.T) {
	n := tandem2(1, 1, 2, 4) // ρ = 0.5, 0.25
	p00, err := n.StationaryProb([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !close(p00, 0.5*0.75, 1e-12) {
		t.Errorf("π(0,0) = %v, want 0.375", p00)
	}
	p12, err := n.StationaryProb([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 * 0.5) * (0.75 * 0.25 * 0.25)
	if !close(p12, want, 1e-12) {
		t.Errorf("π(1,2) = %v, want %v", p12, want)
	}
	if _, err := n.StationaryProb([]int{1}); err == nil {
		t.Error("wrong-length state accepted")
	}
	if _, err := n.StationaryProb([]int{-1, 0}); err == nil {
		t.Error("negative state accepted")
	}
}

func TestJacksonProductFormSumsToOne(t *testing.T) {
	n := tandem2(1, 0.9, 3, 5)
	var total float64
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			p, err := n.StationaryProb([]int{i, j})
			if err != nil {
				t.Fatal(err)
			}
			total += p
		}
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("Σπ = %v, want ≈1", total)
	}
}

func TestJacksonLittlesLawNetworkWide(t *testing.T) {
	f := func(l8, p8 uint8) bool {
		lambda0 := 0.1 + float64(l8)/256*2 // (0.1, 2.1)
		p := 0.5 + float64(p8)/256*0.5     // (0.5, 1)
		n, err := ChainNetwork(lambda0, p, []float64{6, 9, 7})
		if err != nil {
			return false
		}
		jobs, err1 := n.MeanJobs()
		resp, err2 := n.MeanResponseTime()
		if err1 != nil || err2 != nil {
			return false
		}
		return close(jobs, lambda0*resp, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChainNetworkValidation(t *testing.T) {
	if _, err := ChainNetwork(1, 0.5, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := ChainNetwork(1, 0, []float64{1}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := ChainNetwork(1, 1.2, []float64{1}); err == nil {
		t.Error("P>1 accepted")
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !close(x[0], 1, 1e-9) || !close(x[1], 3, 1e-9) {
		t.Errorf("x = %v, want [1 3]", x)
	}
	// Inputs unmodified.
	if a[0][0] != 2 || b[1] != 10 {
		t.Error("solveLinear mutated inputs")
	}
}

func TestSolveLinearErrors(t *testing.T) {
	if _, err := solveLinear(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := solveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := solveLinear([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("singular accepted")
	}
	if _, err := solveLinear([][]float64{{1}, {1}}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 3}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !close(x[0], 3, 1e-9) || !close(x[1], 2, 1e-9) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}
