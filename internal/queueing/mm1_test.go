package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMM1Basics(t *testing.T) {
	q := MM1{Lambda: 3, Mu: 4}
	if got := q.Utilization(); got != 0.75 {
		t.Errorf("Utilization = %v, want 0.75", got)
	}
	if !q.Stable() {
		t.Error("Stable() = false for ρ=0.75")
	}
	jobs, err := q.MeanJobs()
	if err != nil {
		t.Fatal(err)
	}
	if !close(jobs, 3, 1e-12) { // ρ/(1−ρ) = 0.75/0.25
		t.Errorf("MeanJobs = %v, want 3", jobs)
	}
	resp, err := q.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if !close(resp, 1, 1e-12) { // 1/(4−3)
		t.Errorf("MeanResponseTime = %v, want 1", resp)
	}
	wait, err := q.MeanWaitingTime()
	if err != nil {
		t.Fatal(err)
	}
	if !close(wait, 0.75, 1e-12) {
		t.Errorf("MeanWaitingTime = %v, want 0.75", wait)
	}
}

func TestMM1LittlesLaw(t *testing.T) {
	f := func(lu, mu8 uint8) bool {
		mu := 1 + float64(mu8)
		lambda := float64(lu) / 256 * mu // always < mu
		q := MM1{Lambda: lambda, Mu: mu}
		jobs, err1 := q.MeanJobs()
		resp, err2 := q.MeanResponseTime()
		if err1 != nil || err2 != nil {
			return false
		}
		return close(jobs, LittlesLaw(lambda, resp), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMM1Unstable(t *testing.T) {
	for _, q := range []MM1{{Lambda: 4, Mu: 4}, {Lambda: 5, Mu: 4}} {
		if q.Stable() {
			t.Errorf("%+v reported stable", q)
		}
		if _, err := q.MeanJobs(); !errors.Is(err, ErrUnstable) {
			t.Errorf("MeanJobs err = %v, want ErrUnstable", err)
		}
		if _, err := q.MeanResponseTime(); !errors.Is(err, ErrUnstable) {
			t.Errorf("MeanResponseTime err = %v, want ErrUnstable", err)
		}
		if _, err := q.MeanWaitingTime(); !errors.Is(err, ErrUnstable) {
			t.Errorf("MeanWaitingTime err = %v, want ErrUnstable", err)
		}
	}
}

func TestMM1Validate(t *testing.T) {
	if _, err := (MM1{Lambda: -1, Mu: 2}).MeanJobs(); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := (MM1{Lambda: 1, Mu: 0}).MeanJobs(); err == nil {
		t.Error("zero mu accepted")
	}
}

func TestMM1ProbJobs(t *testing.T) {
	q := MM1{Lambda: 1, Mu: 2} // ρ = 0.5
	var total float64
	for n := 0; n < 60; n++ {
		p, err := q.ProbJobs(n)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.5 * math.Pow(0.5, float64(n))
		if !close(p, want, 1e-12) {
			t.Errorf("ProbJobs(%d) = %v, want %v", n, p, want)
		}
		total += p
	}
	if !close(total, 1, 1e-9) {
		t.Errorf("Σπ(n) = %v, want ≈1", total)
	}
	if _, err := q.ProbJobs(-1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := (MM1{Lambda: 3, Mu: 2}).ProbJobs(0); !errors.Is(err, ErrUnstable) {
		t.Error("unstable ProbJobs should fail")
	}
}

func TestMM1ProbJobsMatchesMeanJobs(t *testing.T) {
	q := MM1{Lambda: 2, Mu: 5}
	var mean float64
	for n := 0; n < 200; n++ {
		p, _ := q.ProbJobs(n)
		mean += float64(n) * p
	}
	want, _ := q.MeanJobs()
	if !close(mean, want, 1e-9) {
		t.Errorf("Σ n·π(n) = %v, MeanJobs = %v", mean, want)
	}
}

func TestMM1ResponseTimeQuantile(t *testing.T) {
	q := MM1{Lambda: 1, Mu: 2}
	med, err := q.ResponseTimeQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !close(med, math.Ln2, 1e-12) { // exp(rate 1) median = ln 2
		t.Errorf("median = %v, want ln2", med)
	}
	p99, _ := q.ResponseTimeQuantile(0.99)
	if p99 <= med {
		t.Error("p99 not above median")
	}
	if _, err := q.ResponseTimeQuantile(1); err == nil {
		t.Error("quantile 1 accepted")
	}
	if _, err := q.ResponseTimeQuantile(-0.1); err == nil {
		t.Error("negative quantile accepted")
	}
}

func TestEffectiveRate(t *testing.T) {
	if got, err := EffectiveRate(10, 0.5); err != nil || got != 20 {
		t.Errorf("EffectiveRate = %v, %v", got, err)
	}
	if got, err := EffectiveRate(10, 1); err != nil || got != 10 {
		t.Errorf("EffectiveRate P=1 = %v, %v", got, err)
	}
	if _, err := EffectiveRate(-1, 0.5); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := EffectiveRate(1, 0); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := EffectiveRate(1, 1.1); err == nil {
		t.Error("P>1 accepted")
	}
}

func TestInstanceResponseTime(t *testing.T) {
	// Eq. 12 with P=1: W = 1/(µ − Σλ).
	w, err := InstanceResponseTime(10, 1, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !close(w, 0.2, 1e-12) {
		t.Errorf("W = %v, want 0.2", w)
	}
	// With P=0.98 the denominator shrinks: W = 1/(0.98·10 − 5).
	w2, err := InstanceResponseTime(10, 0.98, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !close(w2, 1/(9.8-5), 1e-12) {
		t.Errorf("W(P=0.98) = %v", w2)
	}
	if w2 <= w {
		t.Error("loss must increase response time")
	}

	if _, err := InstanceResponseTime(10, 1, []float64{11}); !errors.Is(err, ErrUnstable) {
		t.Errorf("overload err = %v, want ErrUnstable", err)
	}
	if _, err := InstanceResponseTime(0, 1, nil); err == nil {
		t.Error("zero mu accepted")
	}
	if _, err := InstanceResponseTime(1, 2, nil); err == nil {
		t.Error("P>1 accepted")
	}
	if _, err := InstanceResponseTime(1, 1, []float64{-1}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestTandemWithLossResponseTime(t *testing.T) {
	// Paper Fig. 3: E[T] = 1/(Pµ1−λ0) + 1/(Pµ2−λ0).
	got, err := TandemWithLossResponseTime(1, 0.5, []float64{4, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := 1/(0.5*4-1) + 1/(0.5*6-1)
	if !close(got, want, 1e-12) {
		t.Errorf("tandem = %v, want %v", got, want)
	}
	if _, err := TandemWithLossResponseTime(1, 0.5, nil); err == nil {
		t.Error("empty tandem accepted")
	}
	if _, err := TandemWithLossResponseTime(3, 0.5, []float64{4}); !errors.Is(err, ErrUnstable) {
		t.Error("overloaded tandem should be unstable")
	}
}

func TestMergeRates(t *testing.T) {
	if got := MergeRates(1, 2, 3.5); got != 6.5 {
		t.Errorf("MergeRates = %v", got)
	}
	if got := MergeRates(); got != 0 {
		t.Errorf("MergeRates() = %v", got)
	}
}

func close(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
