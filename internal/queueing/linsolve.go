package queueing

import (
	"errors"
	"math"
)

// solveLinear solves A·x = b by Gaussian elimination with partial pivoting.
// A and b are not modified. It returns an error on dimension mismatch or a
// (numerically) singular matrix.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("solve: dimension mismatch")
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, errors.New("solve: matrix not square")
		}
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i]) // augmented column
	}

	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, errors.New("solve: singular matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}
