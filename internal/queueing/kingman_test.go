package queueing

import (
	"errors"
	"testing"
)

func TestKingmanReducesToMM1(t *testing.T) {
	mm1 := MM1{Lambda: 3, Mu: 5}
	kg := Kingman{Lambda: 3, Mu: 5, CA: 1, CS: 1}
	w1, err := mm1.MeanWaitingTime()
	if err != nil {
		t.Fatal(err)
	}
	wk, err := kg.MeanWaitingTime()
	if err != nil {
		t.Fatal(err)
	}
	if !close(w1, wk, 1e-12) {
		t.Errorf("Kingman CA=CS=1 W_q = %v, M/M/1 = %v", wk, w1)
	}
	r1, _ := mm1.MeanResponseTime()
	rk, _ := kg.MeanResponseTime()
	if !close(r1, rk, 1e-12) {
		t.Errorf("response: %v vs %v", rk, r1)
	}
}

func TestKingmanMD1IsHalfMM1Waiting(t *testing.T) {
	// Pollaczek–Khinchine: M/D/1 waiting is half of M/M/1.
	mm1 := MM1{Lambda: 4, Mu: 5}
	md1 := Kingman{Lambda: 4, Mu: 5, CA: 1, CS: 0}
	w1, _ := mm1.MeanWaitingTime()
	wd, err := md1.MeanWaitingTime()
	if err != nil {
		t.Fatal(err)
	}
	if !close(wd, w1/2, 1e-12) {
		t.Errorf("M/D/1 W_q = %v, want half of %v", wd, w1)
	}
}

func TestKingmanVariabilityMonotone(t *testing.T) {
	base := Kingman{Lambda: 4, Mu: 5, CA: 1, CS: 1}
	heavy := Kingman{Lambda: 4, Mu: 5, CA: 1, CS: 2}
	wb, _ := base.MeanWaitingTime()
	wh, err := heavy.MeanWaitingTime()
	if err != nil {
		t.Fatal(err)
	}
	if wh <= wb {
		t.Errorf("more service variability should wait longer: %v vs %v", wh, wb)
	}
}

func TestKingmanErrors(t *testing.T) {
	if _, err := (Kingman{Lambda: 6, Mu: 5, CA: 1, CS: 1}).MeanWaitingTime(); !errors.Is(err, ErrUnstable) {
		t.Errorf("overload err = %v", err)
	}
	if _, err := (Kingman{Lambda: -1, Mu: 5}).MeanWaitingTime(); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := (Kingman{Lambda: 1, Mu: 0}).MeanWaitingTime(); err == nil {
		t.Error("zero mu accepted")
	}
	if _, err := (Kingman{Lambda: 1, Mu: 2, CA: -1}).MeanWaitingTime(); err == nil {
		t.Error("negative CV accepted")
	}
}
