package queueing

import (
	"errors"
	"testing"
)

func TestMMCReducesToMM1(t *testing.T) {
	m1 := MM1{Lambda: 3, Mu: 4}
	mc := MMC{Lambda: 3, Mu: 4, C: 1}
	w1, err1 := m1.MeanResponseTime()
	wc, err2 := mc.MeanResponseTime()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !close(w1, wc, 1e-9) {
		t.Errorf("M/M/1 = %v, M/M/c(c=1) = %v", w1, wc)
	}
	j1, _ := m1.MeanJobs()
	jc, _ := mc.MeanJobs()
	if !close(j1, jc, 1e-9) {
		t.Errorf("jobs: %v vs %v", j1, jc)
	}
}

func TestMMCErlangC(t *testing.T) {
	// Known value: Λ=2, µ=1.5, c=2 → a=4/3, ρ=2/3.
	q := MMC{Lambda: 2, Mu: 1.5, C: 2}
	pc, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	// C(2, 4/3) = (a²/2!)/(1−ρ) / (1 + a + (a²/2!)/(1−ρ))
	a := 4.0 / 3
	last := (a * a / 2) / (1 - 2.0/3)
	want := last / (1 + a + last)
	if !close(pc, want, 1e-9) {
		t.Errorf("ErlangC = %v, want %v", pc, want)
	}
	if pc <= 0 || pc >= 1 {
		t.Errorf("ErlangC = %v outside (0,1)", pc)
	}
}

func TestMMCPoolingBeatsSplit(t *testing.T) {
	// Classic result: one pooled M/M/2 has lower mean response than two
	// separate M/M/1 queues each receiving half the load.
	pooled := MMC{Lambda: 3, Mu: 2, C: 2}
	split := MM1{Lambda: 1.5, Mu: 2}
	wp, err := pooled.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := split.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if wp >= ws {
		t.Errorf("pooled %v >= split %v; pooling should win", wp, ws)
	}
}

func TestMMCUnstableAndInvalid(t *testing.T) {
	if _, err := (MMC{Lambda: 8, Mu: 2, C: 2}).MeanResponseTime(); !errors.Is(err, ErrUnstable) {
		t.Errorf("unstable err = %v", err)
	}
	if _, err := (MMC{Lambda: 1, Mu: 0, C: 2}).ErlangC(); err == nil {
		t.Error("zero mu accepted")
	}
	if _, err := (MMC{Lambda: 1, Mu: 1, C: 0}).ErlangC(); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := (MMC{Lambda: -1, Mu: 1, C: 1}).ErlangC(); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestMMCLittlesLaw(t *testing.T) {
	q := MMC{Lambda: 5, Mu: 2, C: 4}
	w, err := q.MeanResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := q.MeanJobs()
	if err != nil {
		t.Fatal(err)
	}
	if !close(jobs, LittlesLaw(5, w), 1e-9) {
		t.Errorf("L = %v, λW = %v", jobs, 5*w)
	}
}
