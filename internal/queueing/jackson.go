package queueing

import (
	"errors"
	"fmt"
	"math"
)

// JacksonNetwork is an open network of single-server exponential stations.
// Station i receives external Poisson arrivals at rate External[i]; a packet
// finishing service at station i moves to station j with probability
// Routing[i][j] and leaves the network with probability 1 − Σ_j Routing[i][j].
// Retransmission feedback (the paper's NACK loop) is expressed as a routing
// entry back toward an earlier station.
type JacksonNetwork struct {
	External    []float64   // λ0_i ≥ 0
	ServiceRate []float64   // µ_i > 0
	Routing     [][]float64 // row-substochastic matrix
}

// Validate checks dimensions, parameter signs, and substochastic rows.
func (n *JacksonNetwork) Validate() error {
	k := len(n.ServiceRate)
	if k == 0 {
		return errors.New("queueing: empty jackson network")
	}
	if len(n.External) != k || len(n.Routing) != k {
		return fmt.Errorf("queueing: dimension mismatch: %d stations, %d external, %d routing rows",
			k, len(n.External), len(n.Routing))
	}
	for i := 0; i < k; i++ {
		if n.External[i] < 0 {
			return fmt.Errorf("queueing: station %d negative external rate %v", i, n.External[i])
		}
		if n.ServiceRate[i] <= 0 {
			return fmt.Errorf("queueing: station %d service rate %v must be positive", i, n.ServiceRate[i])
		}
		if len(n.Routing[i]) != k {
			return fmt.Errorf("queueing: routing row %d has %d entries, want %d", i, len(n.Routing[i]), k)
		}
		var row float64
		for j, p := range n.Routing[i] {
			if p < 0 || p > 1 {
				return fmt.Errorf("queueing: routing[%d][%d] = %v outside [0,1]", i, j, p)
			}
			row += p
		}
		if row > 1+1e-9 {
			return fmt.Errorf("queueing: routing row %d sums to %v > 1", i, row)
		}
	}
	return nil
}

// TrafficRates solves the traffic equations λ_i = λ0_i + Σ_j λ_j·P_ji
// (Kleinrock's flow-merge over the whole network) by Gaussian elimination of
// (I − Pᵀ)·λ = λ0. An error is returned when the system is singular, which
// happens only for pathological routing (e.g. a lossless closed loop).
func (n *JacksonNetwork) TrafficRates() ([]float64, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	k := len(n.ServiceRate)
	// Build A = I − Pᵀ and b = λ0.
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			a[i][j] = -n.Routing[j][i]
		}
		a[i][i] += 1
		b[i] = n.External[i]
	}
	lam, err := solveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("queueing: traffic equations: %w", err)
	}
	for i, v := range lam {
		if err := assertFinite(v); err != nil {
			return nil, err
		}
		if v < -1e-9 {
			return nil, fmt.Errorf("queueing: negative traffic rate λ_%d = %v", i, v)
		}
		if v < 0 {
			lam[i] = 0
		}
	}
	return lam, nil
}

// StationMetrics holds the steady-state quantities of one station.
type StationMetrics struct {
	Arrival      float64 // λ_i from the traffic equations
	Utilization  float64 // ρ_i
	MeanJobs     float64 // E[N_i]
	ResponseTime float64 // E[T_i]
}

// Solve computes per-station steady-state metrics. ErrUnstable is returned
// when any station has ρ ≥ 1.
func (n *JacksonNetwork) Solve() ([]StationMetrics, error) {
	lam, err := n.TrafficRates()
	if err != nil {
		return nil, err
	}
	out := make([]StationMetrics, len(lam))
	for i, l := range lam {
		q := MM1{Lambda: l, Mu: n.ServiceRate[i]}
		if !q.Stable() {
			return nil, fmt.Errorf("station %d (λ=%v, µ=%v): %w", i, l, n.ServiceRate[i], ErrUnstable)
		}
		jobs, err := q.MeanJobs()
		if err != nil {
			return nil, err
		}
		resp, err := q.MeanResponseTime()
		if err != nil {
			return nil, err
		}
		out[i] = StationMetrics{
			Arrival:      l,
			Utilization:  q.Utilization(),
			MeanJobs:     jobs,
			ResponseTime: resp,
		}
	}
	return out, nil
}

// MeanJobs returns Σ_i E[N_i], the steady-state mean population.
func (n *JacksonNetwork) MeanJobs() (float64, error) {
	ms, err := n.Solve()
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, m := range ms {
		sum += m.MeanJobs
	}
	return sum, nil
}

// MeanResponseTime returns the network-wide mean sojourn time of an external
// arrival, E[T] = Σ E[N_i] / Σ λ0_i (Little's law applied to the whole
// network).
func (n *JacksonNetwork) MeanResponseTime() (float64, error) {
	jobs, err := n.MeanJobs()
	if err != nil {
		return 0, err
	}
	var ext float64
	for _, l := range n.External {
		ext += l
	}
	if ext == 0 {
		return 0, errors.New("queueing: no external arrivals")
	}
	return jobs / ext, nil
}

// StationaryProb returns the product-form probability of observing the given
// joint queue lengths: Π_i (1−ρ_i)·ρ_i^{n_i} (Jackson's theorem).
func (n *JacksonNetwork) StationaryProb(state []int) (float64, error) {
	ms, err := n.Solve()
	if err != nil {
		return 0, err
	}
	if len(state) != len(ms) {
		return 0, fmt.Errorf("queueing: state has %d entries, want %d", len(state), len(ms))
	}
	prob := 1.0
	for i, ni := range state {
		if ni < 0 {
			return 0, fmt.Errorf("queueing: negative queue length %d at station %d", ni, i)
		}
		rho := ms[i].Utilization
		prob *= (1 - rho) * math.Pow(rho, float64(ni))
	}
	return prob, nil
}

// ChainNetwork builds the Jackson network of the paper's Fig. 3: a tandem of
// stations with service rates mus, external arrivals lambda0 entering the
// first station, and the last station feeding back to the first with
// probability 1−p (the retransmission loop).
func ChainNetwork(lambda0, p float64, mus []float64) (*JacksonNetwork, error) {
	if len(mus) == 0 {
		return nil, errors.New("queueing: empty chain")
	}
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("queueing: delivery probability %v outside (0,1]", p)
	}
	k := len(mus)
	n := &JacksonNetwork{
		External:    make([]float64, k),
		ServiceRate: append([]float64(nil), mus...),
		Routing:     make([][]float64, k),
	}
	n.External[0] = lambda0
	for i := range n.Routing {
		n.Routing[i] = make([]float64, k)
		if i+1 < k {
			n.Routing[i][i+1] = 1
		}
	}
	n.Routing[k-1][0] = 1 - p // NACK feedback to the source-side station
	return n, nil
}
