package queueing

import (
	"fmt"
	"math"
)

// MMC is an M/M/c queue: Poisson arrivals at rate Lambda served by C
// identical exponential servers of rate Mu each. The paper co-locates M_f
// single-server instances of a VNF on one node; MMC quantifies the
// alternative pooled design (one shared queue feeding all instances), which
// the ablation benchmarks compare against the paper's per-instance split.
type MMC struct {
	Lambda float64
	Mu     float64
	C      int
}

// Validate reports structurally invalid parameters.
func (q MMC) Validate() error {
	if q.Lambda < 0 {
		return fmt.Errorf("queueing: negative arrival rate %v", q.Lambda)
	}
	if q.Mu <= 0 {
		return fmt.Errorf("queueing: service rate %v must be positive", q.Mu)
	}
	if q.C < 1 {
		return fmt.Errorf("queueing: server count %d must be >= 1", q.C)
	}
	return nil
}

// Utilization returns ρ = Λ/(c·µ).
func (q MMC) Utilization() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports whether ρ < 1.
func (q MMC) Stable() bool { return q.Utilization() < 1 }

// ErlangC returns the probability an arriving packet must wait (all c
// servers busy).
func (q MMC) ErlangC() (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if !q.Stable() {
		return 0, ErrUnstable
	}
	a := q.Lambda / q.Mu // offered load in Erlangs
	c := q.C
	// Iteratively build the normalizing sum to avoid factorial overflow.
	term := 1.0
	sum := term
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	term *= a / float64(c) // a^c/c!
	last := term / (1 - q.Utilization())
	return last / (sum + last), nil
}

// MeanWaitingTime returns the mean time in buffer W_q = C(c,a)/(c·µ−Λ).
func (q MMC) MeanWaitingTime() (float64, error) {
	pc, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pc / (float64(q.C)*q.Mu - q.Lambda), nil
}

// MeanResponseTime returns W = W_q + 1/µ.
func (q MMC) MeanResponseTime() (float64, error) {
	wq, err := q.MeanWaitingTime()
	if err != nil {
		return 0, err
	}
	return wq + 1/q.Mu, nil
}

// MeanJobs returns L = Λ·W by Little's law.
func (q MMC) MeanJobs() (float64, error) {
	w, err := q.MeanResponseTime()
	if err != nil {
		return 0, err
	}
	return q.Lambda * w, nil
}

// LittlesLaw returns L = λ·W; exposed so callers and tests can assert the
// identity between independently computed quantities.
func LittlesLaw(lambda, w float64) float64 { return lambda * w }

// assertFinite guards internal math; exported formulas never return NaN/Inf
// for validated stable inputs.
func assertFinite(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("queueing: non-finite result %v", x)
	}
	return nil
}
