package queueing

import "fmt"

// Kingman approximates the mean waiting time of a G/G/1 queue by Kingman's
// VUT formula:
//
//	W_q ≈ ρ/(1−ρ) · (C_a² + C_s²)/2 · 1/µ
//
// where C_a and C_s are the coefficients of variation of inter-arrival and
// service times. It reduces exactly to M/M/1 for C_a = C_s = 1 and to the
// Pollaczek–Khinchine M/G/1 mean for C_a = 1. The robustness experiment
// uses it to predict latency when the simulator runs non-exponential
// service — the regime where the paper's M/M/1 model drifts.
type Kingman struct {
	Lambda float64 // arrival rate
	Mu     float64 // service rate (mean service time 1/µ)
	CA     float64 // coefficient of variation of inter-arrival times
	CS     float64 // coefficient of variation of service times
}

// Validate reports structurally invalid parameters.
func (q Kingman) Validate() error {
	switch {
	case q.Lambda < 0:
		return fmt.Errorf("queueing: negative arrival rate %v", q.Lambda)
	case q.Mu <= 0:
		return fmt.Errorf("queueing: service rate %v must be positive", q.Mu)
	case q.CA < 0 || q.CS < 0:
		return fmt.Errorf("queueing: negative coefficient of variation (CA=%v, CS=%v)", q.CA, q.CS)
	}
	return nil
}

// MeanWaitingTime returns the approximate time in buffer.
func (q Kingman) MeanWaitingTime() (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	rho := q.Lambda / q.Mu
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return rho / (1 - rho) * (q.CA*q.CA + q.CS*q.CS) / 2 / q.Mu, nil
}

// MeanResponseTime returns W_q + 1/µ.
func (q Kingman) MeanResponseTime() (float64, error) {
	wq, err := q.MeanWaitingTime()
	if err != nil {
		return 0, err
	}
	return wq + 1/q.Mu, nil
}
