package placement

import (
	"fmt"
	"sort"

	"nfvchain/internal/model"
)

// Exact computes an optimal placement — one minimizing the number of nodes
// in service (the paper's Eq. 14, equivalent to maximizing Eq. 13 under
// uniform capacities) — by branch-and-bound over VNF→node assignments. The
// VNF-CP problem is NP-hard (paper Theorem 1), so Exact is only tractable on
// small instances; it exists to measure the optimality gap of the heuristics
// and to validate Theorem 2's bound SUM(V) ≤ 2·OPT(V) empirically.
type Exact struct {
	// MaxVNFs and MaxNodes bound the accepted instance size (defaults 14/10).
	MaxVNFs, MaxNodes int
	// MaxExpansions caps the search-tree size (default 5e6).
	MaxExpansions int
}

// Defaults for Exact's tractability guards.
const (
	DefaultExactMaxVNFs       = 14
	DefaultExactMaxNodes      = 10
	DefaultExactMaxExpansions = 5_000_000
)

// Name implements Algorithm.
func (e *Exact) Name() string { return "Exact" }

// Place implements Algorithm.
func (e *Exact) Place(p *model.Problem) (*Result, error) {
	if err := Precheck(p); err != nil {
		return nil, err
	}
	maxVNFs, maxNodes, maxExp := e.MaxVNFs, e.MaxNodes, e.MaxExpansions
	if maxVNFs <= 0 {
		maxVNFs = DefaultExactMaxVNFs
	}
	if maxNodes <= 0 {
		maxNodes = DefaultExactMaxNodes
	}
	if maxExp <= 0 {
		maxExp = DefaultExactMaxExpansions
	}
	if len(p.VNFs) > maxVNFs || len(p.Nodes) > maxNodes {
		return nil, fmt.Errorf("placement: exact search limited to %d VNFs × %d nodes, got %d × %d",
			maxVNFs, maxNodes, len(p.VNFs), len(p.Nodes))
	}

	vnfs := p.SortedVNFsByDemand()
	nodes := append([]model.Node(nil), p.Nodes...)
	// Larger nodes first: opening the biggest spare node dominates.
	sort.SliceStable(nodes, func(i, j int) bool {
		if nodes[i].Capacity != nodes[j].Capacity {
			return nodes[i].Capacity > nodes[j].Capacity
		}
		return nodes[i].ID < nodes[j].ID
	})

	s := &exactSearch{
		problem:  p,
		vnfs:     vnfs,
		nodes:    nodes,
		residual: make([]float64, len(nodes)),
		extras:   make([][]float64, len(nodes)),
		assign:   make([]int, len(vnfs)),
		best:     len(nodes) + 1,
		maxExp:   maxExp,
	}
	for i, n := range nodes {
		s.residual[i] = n.Capacity
		s.extras[i] = append([]float64(nil), n.Extras...)
	}
	s.dfs(0, 0)
	if s.bestNodes == nil {
		if s.expansions >= s.maxExp {
			return nil, fmt.Errorf("placement: exact search exceeded %d expansions", s.maxExp)
		}
		return nil, fmt.Errorf("placement: exact search: %w", ErrInfeasible)
	}
	pl := model.NewPlacement()
	for i, nodeID := range s.bestNodes {
		pl.Assign(vnfs[i].ID, nodeID)
	}
	return &Result{Placement: pl, Iterations: s.expansions}, nil
}

type exactSearch struct {
	problem    *model.Problem
	vnfs       []model.VNF
	nodes      []model.Node
	residual   []float64
	extras     [][]float64 // per node, additional-resource residuals
	assign     []int
	best       int
	bestNodes  []model.NodeID // per-VNF host ids of the incumbent solution
	expansions int
	maxExp     int
}

// dfs assigns vnfs[i:] given `used` nodes already opened.
func (s *exactSearch) dfs(i, used int) {
	if s.expansions >= s.maxExp {
		return
	}
	if used >= s.best {
		return // cannot improve
	}
	if i == len(s.vnfs) {
		s.best = used
		// Snapshot host *ids*: node positions are permuted by backtracking
		// swaps after this frame returns, so indexes would go stale.
		s.bestNodes = make([]model.NodeID, len(s.assign))
		for v, idx := range s.assign {
			s.bestNodes[v] = s.nodes[idx].ID
		}
		return
	}
	s.expansions++
	f := s.vnfs[i]
	// Try already-open nodes first (keeps `used` low), then exactly one new
	// node per distinct capacity (symmetry breaking: opening any of several
	// identical spare nodes is equivalent; with extras present, symmetry
	// breaking keys on the full capacity vector via a string key).
	for n := 0; n < used; n++ {
		if s.hostFits(n, f) {
			s.commit(n, f)
			s.assign[i] = n
			s.dfs(i+1, used)
			s.uncommit(n, f)
		}
	}
	if used < len(s.nodes) {
		seen := make(map[string]bool)
		for n := used; n < len(s.nodes); n++ {
			key := capacityKey(s.nodes[n])
			if seen[key] {
				continue
			}
			seen[key] = true
			if !s.hostFits(n, f) {
				continue
			}
			// Swap node n into position `used` so open nodes stay a prefix.
			s.swapNodes(n, used)
			s.commit(used, f)
			s.assign[i] = used
			s.dfs(i+1, used+1)
			s.uncommit(used, f)
			s.swapNodes(n, used)
		}
	}
}

// hostFits checks every resource dimension of node position n against f.
func (s *exactSearch) hostFits(n int, f model.VNF) bool {
	if s.residual[n] < f.TotalDemand()-1e-9 {
		return false
	}
	for dim, e := range f.TotalExtras() {
		if s.extras[n][dim] < e-1e-9 {
			return false
		}
	}
	return true
}

func (s *exactSearch) commit(n int, f model.VNF) {
	s.residual[n] -= f.TotalDemand()
	for dim, e := range f.TotalExtras() {
		s.extras[n][dim] -= e
	}
}

func (s *exactSearch) uncommit(n int, f model.VNF) {
	s.residual[n] += f.TotalDemand()
	for dim, e := range f.TotalExtras() {
		s.extras[n][dim] += e
	}
}

// capacityKey identifies interchangeable spare nodes.
func capacityKey(n model.Node) string {
	key := fmt.Sprintf("%g", n.Capacity)
	for _, e := range n.Extras {
		key += fmt.Sprintf("/%g", e)
	}
	return key
}

func (s *exactSearch) swapNodes(a, b int) {
	if a == b {
		return
	}
	s.nodes[a], s.nodes[b] = s.nodes[b], s.nodes[a]
	s.residual[a], s.residual[b] = s.residual[b], s.residual[a]
	s.extras[a], s.extras[b] = s.extras[b], s.extras[a]
	// Fix assignments referring to swapped positions (only for already
	// assigned VNFs, none of which can reference spare positions ≥ used —
	// but guard anyway for clarity).
	for i := range s.assign {
		switch s.assign[i] {
		case a:
			s.assign[i] = b
		case b:
			s.assign[i] = a
		}
	}
}

var _ Algorithm = (*Exact)(nil)
