package placement

import (
	"sort"

	"nfvchain/internal/model"
)

// Improve runs a deterministic local search on an existing feasible
// placement: it repeatedly tries to *evacuate* the least-loaded node in
// service by relocating each of its VNFs onto other used nodes (best-fit),
// and falls back to single-VNF relocations that strictly tighten packing.
// The result never uses more nodes than the input and stays feasible in
// every resource dimension. This is the paper's "near-optimal" aspiration
// made concrete as a polish pass: BFDSU+Improve closes most of the gap to
// the exact optimum on instances small enough to verify (see tests).
//
// maxRounds bounds the outer loop; 0 means DefaultImproveRounds.
func Improve(p *model.Problem, pl *model.Placement, maxRounds int) (*model.Placement, error) {
	if err := pl.Validate(p); err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = DefaultImproveRounds
	}
	cur := pl.Clone()
	for round := 0; round < maxRounds; round++ {
		if !evacuateOne(p, cur) {
			break
		}
	}
	return cur, nil
}

// DefaultImproveRounds bounds Improve's evacuation loop; each successful
// round removes one node from service, so the bound is rarely binding.
const DefaultImproveRounds = 64

// evacuateOne tries to empty one used node entirely; true when a node was
// evacuated.
func evacuateOne(p *model.Problem, pl *model.Placement) bool {
	used := pl.UsedNodes()
	if len(used) <= 1 {
		return false
	}
	load := pl.Load(p)
	// Try the least-loaded nodes first.
	sort.Slice(used, func(i, j int) bool {
		if load[used[i]] != load[used[j]] {
			return load[used[i]] < load[used[j]]
		}
		return used[i] < used[j]
	})
	for _, victim := range used {
		if moves, ok := PlanEvacuation(p, pl, victim); ok {
			for f, v := range moves {
				pl.Assign(f, v)
			}
			return true
		}
	}
	return false
}

// PlanEvacuation computes a relocation of every VNF on victim onto other
// used nodes, best-fit greedily, or reports failure. The plan respects all
// resource dimensions and is simulated on scratch residuals before commit;
// pl is not modified. It is the close-node move Improve iterates, exported
// so the portfolio metaheuristics reuse it as a destroy/repair neighborhood
// instead of duplicating the relocation logic.
func PlanEvacuation(p *model.Problem, pl *model.Placement, victim model.NodeID) (map[model.VNFID]model.NodeID, bool) {
	// Residuals of every other used node.
	residual := pl.Residual(p)
	extras := scratchExtras(p, pl)
	targets := pl.UsedNodes()

	// Victim's VNFs, largest first (hardest to re-home).
	var vnfs []model.VNF
	for _, fid := range pl.VNFsOn(victim) {
		f, ok := p.VNF(fid)
		if !ok {
			return nil, false
		}
		vnfs = append(vnfs, f)
	}
	sort.SliceStable(vnfs, func(i, j int) bool {
		di, dj := vnfs[i].TotalDemand(), vnfs[j].TotalDemand()
		if di != dj {
			return di > dj
		}
		return vnfs[i].ID < vnfs[j].ID
	})

	moves := make(map[model.VNFID]model.NodeID, len(vnfs))
	for _, f := range vnfs {
		best := model.NodeID("")
		bestRes := 0.0
		for _, v := range targets {
			if v == victim {
				continue
			}
			if !fitsScratch(residual, extras, v, f) {
				continue
			}
			if best == "" || residual[v] < bestRes || (residual[v] == bestRes && v < best) {
				best, bestRes = v, residual[v]
			}
		}
		if best == "" {
			return nil, false
		}
		moves[f.ID] = best
		residual[best] -= f.TotalDemand()
		for dim, e := range f.TotalExtras() {
			extras[best][dim] -= e
		}
	}
	return moves, true
}

// scratchExtras copies per-node extra-resource residuals.
func scratchExtras(p *model.Problem, pl *model.Placement) map[model.NodeID][]float64 {
	if p.ExtraResources() == 0 {
		return nil
	}
	out := make(map[model.NodeID][]float64, len(p.Nodes))
	loads := pl.ExtrasLoad(p)
	for _, n := range p.Nodes {
		row := append([]float64(nil), n.Extras...)
		for dim, used := range loads[n.ID] {
			row[dim] -= used
		}
		out[n.ID] = row
	}
	return out
}

func fitsScratch(residual map[model.NodeID]float64, extras map[model.NodeID][]float64, v model.NodeID, f model.VNF) bool {
	if residual[v] < f.TotalDemand()-1e-9 {
		return false
	}
	if extras != nil {
		row := extras[v]
		for dim, e := range f.TotalExtras() {
			if row[dim] < e-1e-9 {
				return false
			}
		}
	}
	return true
}
