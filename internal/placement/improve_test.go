package placement

import (
	"testing"

	"nfvchain/internal/model"
)

func TestImproveEvacuatesWastefulPlacement(t *testing.T) {
	// WFD spreads four small VNFs over four nodes; Improve should compress
	// them onto one.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100}, {ID: "n2", Capacity: 100},
			{ID: "n3", Capacity: 100}, {ID: "n4", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 20, ServiceRate: 1},
			{ID: "b", Instances: 1, Demand: 20, ServiceRate: 1},
			{ID: "c", Instances: 1, Demand: 20, ServiceRate: 1},
			{ID: "d", Instances: 1, Demand: 20, ServiceRate: 1},
		},
	}
	spread, err := WFD{}.Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if spread.Placement.NodesInService() != 4 {
		t.Fatalf("WFD used %d nodes, expected 4", spread.Placement.NodesInService())
	}
	better, err := Improve(p, spread.Placement, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := better.Validate(p); err != nil {
		t.Fatal(err)
	}
	if got := better.NodesInService(); got != 1 {
		t.Errorf("Improve left %d nodes, want 1", got)
	}
	// Input untouched.
	if spread.Placement.NodesInService() != 4 {
		t.Error("Improve mutated its input")
	}
}

func TestImproveNeverWorsens(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		p := generated(t, seed+500, 12, 80, 9)
		for _, alg := range allAlgorithms() {
			res, err := alg.Place(p)
			if err != nil {
				continue
			}
			before := res.Placement.NodesInService()
			after, err := Improve(p, res.Placement, 0)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, alg.Name(), err)
			}
			if err := after.Validate(p); err != nil {
				t.Fatalf("seed %d %s: improved placement invalid: %v", seed, alg.Name(), err)
			}
			if after.NodesInService() > before {
				t.Errorf("seed %d %s: Improve grew %d → %d nodes", seed, alg.Name(), before, after.NodesInService())
			}
			if after.AverageUtilization(p) < res.Placement.AverageUtilization(p)-1e-9 &&
				after.NodesInService() == before {
				t.Errorf("seed %d %s: utilization dropped without node savings", seed, alg.Name())
			}
		}
	}
}

func TestImproveClosesGapToOptimal(t *testing.T) {
	var gapBefore, gapAfter int
	for seed := uint64(0); seed < 8; seed++ {
		p := generated(t, seed+700, 9, 50, 7)
		opt, err := (&Exact{}).Place(p)
		if err != nil {
			t.Fatal(err)
		}
		spread, err := WFD{}.Place(p)
		if err != nil {
			continue
		}
		better, err := Improve(p, spread.Placement, 0)
		if err != nil {
			t.Fatal(err)
		}
		optN := opt.Placement.NodesInService()
		gapBefore += spread.Placement.NodesInService() - optN
		gapAfter += better.NodesInService() - optN
		if better.NodesInService() < optN {
			t.Fatalf("seed %d: Improve beat the exact optimum — impossible", seed)
		}
	}
	if gapAfter >= gapBefore {
		t.Errorf("Improve did not shrink WFD's optimality gap: %d → %d", gapBefore, gapAfter)
	}
}

func TestImproveRespectsExtras(t *testing.T) {
	// CPU would allow compression to one node, memory forbids it.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100, Extras: []float64{32}},
			{ID: "n2", Capacity: 100, Extras: []float64{32}},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 10, ServiceRate: 1, Extras: []float64{20}},
			{ID: "b", Instances: 1, Demand: 10, ServiceRate: 1, Extras: []float64{20}},
		},
	}
	pl := model.NewPlacement()
	pl.Assign("a", "n1")
	pl.Assign("b", "n2")
	better, err := Improve(p, pl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := better.Validate(p); err != nil {
		t.Fatal(err)
	}
	if better.NodesInService() != 2 {
		t.Errorf("Improve violated memory: %d nodes", better.NodesInService())
	}
}

func TestImproveRejectsInvalidInput(t *testing.T) {
	p := smallProblem()
	if _, err := Improve(p, model.NewPlacement(), 0); err == nil {
		t.Error("incomplete placement accepted")
	}
}
