// Package placement implements the VNF chain placement (VNF-CP) algorithms
// of the paper's Section IV-A: the proposed BFDSU (Best Fit Decreasing using
// Smallest Used nodes with the largest probability) and the baselines it is
// evaluated against — FFD (First Fit Decreasing) and NAH (the chain-oriented
// Node Assignment Heuristic of Xia et al.) — plus additional classical
// packers (BFD, WFD, random) and an exact branch-and-bound optimum for small
// instances.
//
// All algorithms place each VNF's full bundle of M_f service instances on a
// single node (paper Eq. 2) subject to node capacities (Eq. 6), and report
// the iteration count the paper's Fig. 10 uses as execution cost.
package placement

import (
	"errors"
	"fmt"

	"nfvchain/internal/model"
)

// ErrInfeasible is returned when no feasible placement was found — either
// provably (a VNF exceeds every node's capacity, or total demand exceeds
// total capacity) or because a randomized search exhausted its restarts.
var ErrInfeasible = errors.New("placement: no feasible placement found")

// Result is the outcome of one placement run.
type Result struct {
	Placement *model.Placement
	// Iterations is the algorithm-specific execution-cost counter of the
	// paper's Fig. 10: stateless single-pass packers (FFD/BFD/WFD) report 1;
	// the stateful algorithms report their node-list evaluations — BFDSU one
	// per weighted placement decision across all restart passes, NAH one per
	// anchor selection plus one per co-placement attempt.
	Iterations int
}

// Algorithm is a VNF chain placement strategy.
type Algorithm interface {
	// Name returns the short algorithm identifier used in experiment output.
	Name() string
	// Place computes a feasible placement for the problem or returns
	// ErrInfeasible (possibly wrapped).
	Place(p *model.Problem) (*Result, error)
}

// Precheck rejects problems that provably admit no placement: a VNF bundle
// larger than the largest node, or aggregate demand beyond aggregate
// capacity. Passing Precheck does not guarantee feasibility.
func Precheck(p *model.Problem) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("placement: %w", err)
	}
	var maxCap float64
	for _, n := range p.Nodes {
		if n.Capacity > maxCap {
			maxCap = n.Capacity
		}
	}
	for _, f := range p.VNFs {
		if f.TotalDemand() > maxCap {
			return fmt.Errorf("placement: vnf %s total demand %v exceeds largest node capacity %v: %w",
				f.ID, f.TotalDemand(), maxCap, ErrInfeasible)
		}
	}
	if p.TotalDemand() > p.TotalCapacity() {
		return fmt.Errorf("placement: total demand %v exceeds total capacity %v: %w",
			p.TotalDemand(), p.TotalCapacity(), ErrInfeasible)
	}
	// Additional resources: each dimension must fit somewhere and in total.
	for dim := 0; dim < p.ExtraResources(); dim++ {
		var maxExtra, totalExtra, demandExtra float64
		for _, n := range p.Nodes {
			if n.Extras[dim] > maxExtra {
				maxExtra = n.Extras[dim]
			}
			totalExtra += n.Extras[dim]
		}
		for _, f := range p.VNFs {
			need := f.TotalExtras()[dim]
			demandExtra += need
			if need > maxExtra {
				return fmt.Errorf("placement: vnf %s extra resource %d demand %v exceeds largest node capacity %v: %w",
					f.ID, dim, need, maxExtra, ErrInfeasible)
			}
		}
		if demandExtra > totalExtra {
			return fmt.Errorf("placement: extra resource %d total demand %v exceeds total capacity %v: %w",
				dim, demandExtra, totalExtra, ErrInfeasible)
		}
	}
	return nil
}

// residualState tracks per-node remaining capacity during a packing run —
// the CPU dimension that drives packing decisions plus any additional
// resources, which act purely as feasibility constraints (the paper models
// memory/bandwidth "as additional constraints" on the CPU-bounded packing).
type residualState struct {
	problem  *model.Problem
	residual map[model.NodeID]float64
	extras   map[model.NodeID][]float64 // nil for CPU-only problems
	used     map[model.NodeID]bool
}

func newResidualState(p *model.Problem) *residualState {
	st := &residualState{
		problem:  p,
		residual: make(map[model.NodeID]float64, len(p.Nodes)),
		used:     make(map[model.NodeID]bool, len(p.Nodes)),
	}
	if p.ExtraResources() > 0 {
		st.extras = make(map[model.NodeID][]float64, len(p.Nodes))
	}
	for _, n := range p.Nodes {
		st.residual[n.ID] = n.Capacity
		if st.extras != nil {
			st.extras[n.ID] = append([]float64(nil), n.Extras...)
		}
	}
	return st
}

// place commits VNF f to node v.
func (st *residualState) place(pl *model.Placement, f model.VNF, v model.NodeID) {
	pl.Assign(f.ID, v)
	st.residual[v] -= f.TotalDemand()
	if st.extras != nil {
		row := st.extras[v]
		for i, e := range f.TotalExtras() {
			row[i] -= e
		}
	}
	st.used[v] = true
}

// fits reports whether node v can still host demand d (CPU only); callers
// placing a concrete VNF use fitsVNF, which also checks the additional
// resources.
func (st *residualState) fits(v model.NodeID, d float64) bool {
	return st.residual[v] >= d-1e-9
}

// fitsVNF reports whether node v can host the whole VNF bundle in every
// resource dimension.
func (st *residualState) fitsVNF(v model.NodeID, f model.VNF) bool {
	if !st.fits(v, f.TotalDemand()) {
		return false
	}
	if st.extras != nil {
		row := st.extras[v]
		for i, e := range f.TotalExtras() {
			if row[i] < e-1e-9 {
				return false
			}
		}
	}
	return true
}
