package placement

import (
	"fmt"
	"sort"

	"nfvchain/internal/model"
)

// NAH is the Node Assignment Heuristic of Xia et al. ("Network function
// placement for NFV chaining in packet/optical datacenters", JLT 2015), the
// chain-oriented baseline of the paper's evaluation. For each service chain
// in turn it anchors the chain's most resource-demanding unplaced VNF on the
// node with the *largest* remaining capacity, then packs as many of that
// chain's remaining VNFs as fit onto the same node; leftover VNFs of the
// chain trigger further anchor rounds. VNFs shared between chains are placed
// only once (first chain wins). NAH keeps no used/spare distinction.
//
// Iterations counts node-list evaluations: one per anchor selection (a scan
// of all nodes) plus one per co-placement fit attempt on the anchor. This is
// the execution-cost measure under which the paper reports NAH ≈ 3× BFDSU.
type NAH struct{}

// Name implements Algorithm.
func (NAH) Name() string { return "NAH" }

// Place implements Algorithm.
func (NAH) Place(p *model.Problem) (*Result, error) {
	if err := Precheck(p); err != nil {
		return nil, err
	}
	st := newResidualState(p)
	pl := model.NewPlacement()
	iterations := 0

	place := func(chain []model.VNFID) error {
		// Unplaced VNFs of this chain, most demanding first.
		var pending []model.VNF
		for _, fid := range chain {
			if _, done := pl.Node(fid); done {
				continue
			}
			f, ok := p.VNF(fid)
			if !ok {
				return fmt.Errorf("placement: NAH: undefined vnf %s", fid)
			}
			pending = append(pending, f)
		}
		sort.SliceStable(pending, func(i, j int) bool {
			di, dj := pending[i].TotalDemand(), pending[j].TotalDemand()
			if di != dj {
				return di > dj
			}
			return pending[i].ID < pending[j].ID
		})
		for len(pending) > 0 {
			iterations++
			anchor := largestResidualNode(p, st)
			if anchor == "" || !st.fitsVNF(anchor, pending[0]) {
				return fmt.Errorf("placement: NAH cannot place vnf %s: %w", pending[0].ID, ErrInfeasible)
			}
			st.place(pl, pending[0], anchor)
			rest := pending[1:]
			pending = pending[:0]
			for _, f := range rest {
				iterations++ // co-placement fit attempt on the anchor
				if st.fitsVNF(anchor, f) {
					st.place(pl, f, anchor)
				} else {
					pending = append(pending, f)
				}
			}
		}
		return nil
	}

	for _, r := range p.Requests {
		if err := place(r.Chain); err != nil {
			return nil, err
		}
	}
	// VNFs used by no request still must be placed (Eq. 2); treat them as
	// one synthetic chain, matching the paper's "place every VNF" contract.
	var orphans []model.VNFID
	for _, f := range p.VNFs {
		if _, done := pl.Node(f.ID); !done {
			orphans = append(orphans, f.ID)
		}
	}
	if len(orphans) > 0 {
		if err := place(orphans); err != nil {
			return nil, err
		}
	}
	return &Result{Placement: pl, Iterations: iterations}, nil
}

// largestResidualNode returns the node with maximum remaining capacity
// (ties by id), or "" for an empty problem.
func largestResidualNode(p *model.Problem, st *residualState) model.NodeID {
	best := model.NodeID("")
	bestRes := -1.0
	for _, n := range p.Nodes {
		res := st.residual[n.ID]
		if res > bestRes || (res == bestRes && (best == "" || n.ID < best)) {
			best, bestRes = n.ID, res
		}
	}
	return best
}

var _ Algorithm = NAH{}
