package placement

import (
	"sort"

	"nfvchain/internal/model"
)

// LowerBound returns a provable lower bound on Σ y_v — the number of nodes
// any feasible placement must put in service — without searching. It is the
// maximum of three bounds:
//
//   - Capacity covering: the smallest k such that the k largest node
//     capacities sum to at least the total demand (per resource dimension).
//   - Big-item pigeonhole: VNF bundles larger than half the largest node
//     capacity are pairwise incompatible, so each needs its own node.
//   - Trivial: 1 when any VNF exists.
//
// On instances small enough for the exact search, LB ≤ OPT always holds
// (asserted in tests); on larger instances the bound lets experiments report
// heuristic gaps without branch-and-bound.
func LowerBound(p *model.Problem) int {
	if len(p.VNFs) == 0 {
		return 0
	}
	lb := 1

	// Capacity covering per resource dimension.
	if k := coveringBound(nodeCapacities(p, -1), totalDemand(p, -1)); k > lb {
		lb = k
	}
	for dim := 0; dim < p.ExtraResources(); dim++ {
		if k := coveringBound(nodeCapacities(p, dim), totalDemand(p, dim)); k > lb {
			lb = k
		}
	}

	// Big-item pigeonhole on the CPU dimension.
	var maxCap float64
	for _, n := range p.Nodes {
		if n.Capacity > maxCap {
			maxCap = n.Capacity
		}
	}
	big := 0
	for _, f := range p.VNFs {
		if f.TotalDemand() > maxCap/2 {
			big++
		}
	}
	if big > lb {
		lb = big
	}
	return lb
}

// nodeCapacities returns capacities in the given dimension (-1 = CPU).
func nodeCapacities(p *model.Problem, dim int) []float64 {
	out := make([]float64, len(p.Nodes))
	for i, n := range p.Nodes {
		if dim < 0 {
			out[i] = n.Capacity
		} else {
			out[i] = n.Extras[dim]
		}
	}
	return out
}

// totalDemand sums VNF bundle demands in the given dimension (-1 = CPU).
func totalDemand(p *model.Problem, dim int) float64 {
	var sum float64
	for _, f := range p.VNFs {
		if dim < 0 {
			sum += f.TotalDemand()
		} else {
			sum += f.TotalExtras()[dim]
		}
	}
	return sum
}

// coveringBound returns the minimal number of largest capacities needed to
// cover the demand (len(caps)+1 when even all of them cannot).
func coveringBound(caps []float64, demand float64) int {
	if demand <= 0 {
		return 0
	}
	sorted := append([]float64(nil), caps...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var sum float64
	for i, c := range sorted {
		sum += c
		if sum >= demand-1e-9 {
			return i + 1
		}
	}
	return len(caps) + 1
}
