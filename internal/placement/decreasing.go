package placement

import (
	"fmt"
	"sort"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

// FFD is First Fit Decreasing, the classical bin-packing baseline the paper
// compares against: VNFs in descending demand order each go to the first
// node (in the problem's node order) with room. FFD keeps no used/spare
// distinction and is fully deterministic, so Iterations is always 1.
type FFD struct{}

// Name implements Algorithm.
func (FFD) Name() string { return "FFD" }

// Place implements Algorithm.
func (FFD) Place(p *model.Problem) (*Result, error) {
	if err := Precheck(p); err != nil {
		return nil, err
	}
	st := newResidualState(p)
	pl := model.NewPlacement()
	for _, f := range p.SortedVNFsByDemand() {
		placed := false
		for _, n := range p.Nodes {
			if st.fitsVNF(n.ID, f) {
				st.place(pl, f, n.ID)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("placement: FFD cannot place vnf %s: %w", f.ID, ErrInfeasible)
		}
	}
	return &Result{Placement: pl, Iterations: 1}, nil
}

// BFD is deterministic Best Fit Decreasing: each VNF goes to the feasible
// node with the smallest residual capacity (ties by node id). It is the
// derandomized core of BFDSU, included as an ablation: comparing the two
// isolates the value of BFDSU's weighted randomization and used-first rule.
type BFD struct{}

// Name implements Algorithm.
func (BFD) Name() string { return "BFD" }

// Place implements Algorithm.
func (BFD) Place(p *model.Problem) (*Result, error) {
	return fitDecreasing(p, "BFD", func(res, best float64) bool { return res < best })
}

// WFD is Worst Fit Decreasing: each VNF goes to the feasible node with the
// largest residual capacity. It spreads load thin — the utilization
// anti-pattern the paper's Objective 1 argues against — and serves as a
// lower-bound baseline in the ablation benches.
type WFD struct{}

// Name implements Algorithm.
func (WFD) Name() string { return "WFD" }

// Place implements Algorithm.
func (WFD) Place(p *model.Problem) (*Result, error) {
	return fitDecreasing(p, "WFD", func(res, best float64) bool { return res > best })
}

// fitDecreasing is the shared scan of BFD/WFD with a pluggable preference.
func fitDecreasing(p *model.Problem, name string, better func(res, best float64) bool) (*Result, error) {
	if err := Precheck(p); err != nil {
		return nil, err
	}
	st := newResidualState(p)
	pl := model.NewPlacement()
	for _, f := range p.SortedVNFsByDemand() {
		bestID := model.NodeID("")
		bestRes := 0.0
		for _, n := range p.Nodes {
			if !st.fitsVNF(n.ID, f) {
				continue
			}
			res := st.residual[n.ID]
			if bestID == "" || better(res, bestRes) || (res == bestRes && n.ID < bestID) {
				bestID, bestRes = n.ID, res
			}
		}
		if bestID == "" {
			return nil, fmt.Errorf("placement: %s cannot place vnf %s: %w", name, f.ID, ErrInfeasible)
		}
		st.place(pl, f, bestID)
	}
	return &Result{Placement: pl, Iterations: 1}, nil
}

// Random places each VNF on a uniformly random feasible node — the naive
// baseline for ablation benches. Iterations reports 1 + restarts, as for
// BFDSU.
type Random struct {
	MaxRestarts int
	Seed        uint64
}

// Name implements Algorithm.
func (r *Random) Name() string { return "Random" }

// Place implements Algorithm.
func (r *Random) Place(p *model.Problem) (*Result, error) {
	if err := Precheck(p); err != nil {
		return nil, err
	}
	maxRestarts := r.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = DefaultMaxRestarts
	}
	stream := rng.Derive(r.Seed, "random-placement")
	sorted := p.SortedVNFsByDemand()
	for attempt := 1; attempt <= maxRestarts; attempt++ {
		st := newResidualState(p)
		pl := model.NewPlacement()
		ok := true
		for _, f := range sorted {
			var candidates []model.NodeID
			for _, n := range p.Nodes {
				if st.fitsVNF(n.ID, f) {
					candidates = append(candidates, n.ID)
				}
			}
			if len(candidates) == 0 {
				ok = false
				break
			}
			sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
			st.place(pl, f, candidates[stream.IntN(len(candidates))])
		}
		if ok {
			return &Result{Placement: pl, Iterations: attempt}, nil
		}
	}
	return nil, fmt.Errorf("placement: Random exhausted %d restarts: %w", maxRestarts, ErrInfeasible)
}

var (
	_ Algorithm = FFD{}
	_ Algorithm = BFD{}
	_ Algorithm = WFD{}
	_ Algorithm = (*Random)(nil)
)
