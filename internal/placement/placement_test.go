package placement

import (
	"errors"
	"fmt"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/workload"
)

// smallProblem returns a hand-checkable instance: three nodes, four VNFs.
func smallProblem() *model.Problem {
	return &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 100},
			{ID: "n3", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 60, ServiceRate: 100},
			{ID: "b", Instances: 1, Demand: 40, ServiceRate: 100},
			{ID: "c", Instances: 2, Demand: 25, ServiceRate: 100}, // total 50
			{ID: "d", Instances: 1, Demand: 50, ServiceRate: 100},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"a", "b"}, Rate: 10, DeliveryProb: 1},
			{ID: "r2", Chain: []model.VNFID{"c", "d"}, Rate: 10, DeliveryProb: 1},
		},
	}
}

// generated returns a paper-scale generated instance.
func generated(t *testing.T, seed uint64, vnfs, requests, nodes int) *model.Problem {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	cfg.NumVNFs = vnfs
	cfg.NumRequests = requests
	cfg.NumNodes = nodes
	p, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		&BFDSU{Seed: 1},
		FFD{},
		BFD{},
		WFD{},
		NAH{},
		&Random{Seed: 1},
	}
}

func TestAllAlgorithmsProduceFeasiblePlacements(t *testing.T) {
	problems := map[string]*model.Problem{
		"small":     smallProblem(),
		"generated": generated(t, 3, 15, 200, 10),
		"tight":     tightProblem(),
	}
	for pname, p := range problems {
		for _, alg := range allAlgorithms() {
			t.Run(fmt.Sprintf("%s/%s", pname, alg.Name()), func(t *testing.T) {
				res, err := alg.Place(p)
				if err != nil {
					t.Fatalf("Place: %v", err)
				}
				if err := res.Placement.Validate(p); err != nil {
					t.Fatalf("infeasible placement: %v", err)
				}
				if res.Iterations < 1 {
					t.Errorf("Iterations = %d, want >= 1", res.Iterations)
				}
			})
		}
	}
}

// tightProblem leaves just enough total capacity that sloppy packing fails.
func tightProblem() *model.Problem {
	return &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 60, ServiceRate: 10},
			{ID: "b", Instances: 1, Demand: 60, ServiceRate: 10},
			{ID: "c", Instances: 1, Demand: 40, ServiceRate: 10},
			{ID: "d", Instances: 1, Demand: 40, ServiceRate: 10},
		},
	}
}

func TestPrecheck(t *testing.T) {
	t.Run("oversized vnf", func(t *testing.T) {
		p := smallProblem()
		p.VNFs[0].Demand = 101
		err := Precheck(p)
		if !errors.Is(err, ErrInfeasible) {
			t.Errorf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("total demand over capacity", func(t *testing.T) {
		p := smallProblem()
		for i := range p.VNFs {
			p.VNFs[i].Demand = 90
			p.VNFs[i].Instances = 1
		}
		err := Precheck(p)
		if !errors.Is(err, ErrInfeasible) {
			t.Errorf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("invalid problem", func(t *testing.T) {
		if err := Precheck(&model.Problem{}); err == nil {
			t.Error("empty problem accepted")
		}
	})
	t.Run("feasible", func(t *testing.T) {
		if err := Precheck(smallProblem()); err != nil {
			t.Errorf("Precheck: %v", err)
		}
	})
}

func TestFFDDeterministicSinglePass(t *testing.T) {
	p := smallProblem()
	r1, err := FFD{}.Place(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := FFD{}.Place(p)
	if r1.Iterations != 1 || r2.Iterations != 1 {
		t.Errorf("FFD iterations = %d/%d, want 1", r1.Iterations, r2.Iterations)
	}
	for f, v := range r1.Placement.NodeOf {
		if r2.Placement.NodeOf[f] != v {
			t.Error("FFD not deterministic")
		}
	}
	// FFD places a(60) on n1, b(40)→n1 (residual 40), d(50)→n2, c(50)→n2.
	if v, _ := r1.Placement.Node("a"); v != "n1" {
		t.Errorf("a on %s, want n1", v)
	}
	if v, _ := r1.Placement.Node("b"); v != "n1" {
		t.Errorf("b on %s, want n1 (first fit)", v)
	}
	if r1.Placement.NodesInService() != 2 {
		t.Errorf("FFD used %d nodes, want 2", r1.Placement.NodesInService())
	}
}

func TestBFDPrefersSnuggestNode(t *testing.T) {
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "big", Capacity: 200},
			{ID: "snug", Capacity: 55},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 50, ServiceRate: 1},
		},
	}
	res, err := BFD{}.Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Placement.Node("a"); v != "snug" {
		t.Errorf("BFD placed on %s, want snug", v)
	}
	resW, err := WFD{}.Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := resW.Placement.Node("a"); v != "big" {
		t.Errorf("WFD placed on %s, want big", v)
	}
}

func TestBFDSUDeterministicPerSeed(t *testing.T) {
	p := generated(t, 5, 15, 100, 10)
	a, err := (&BFDSU{Seed: 7}).Place(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&BFDSU{Seed: 7}).Place(p)
	if err != nil {
		t.Fatal(err)
	}
	for f, v := range a.Placement.NodeOf {
		if b.Placement.NodeOf[f] != v {
			t.Fatal("same seed, different placement")
		}
	}
	if a.Iterations != b.Iterations {
		t.Error("same seed, different iterations")
	}
}

func TestBFDSUPrefersUsedNodes(t *testing.T) {
	// Two VNFs that both fit on one node: BFDSU must co-locate them because
	// the used list is searched before the spare list.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 100},
			{ID: "n3", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 50, ServiceRate: 1},
			{ID: "b", Instances: 1, Demand: 50, ServiceRate: 1},
		},
	}
	for seed := uint64(0); seed < 20; seed++ {
		res, err := (&BFDSU{Seed: seed}).Place(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Placement.NodesInService() != 1 {
			t.Fatalf("seed %d: BFDSU used %d nodes, want 1 (used-first rule)", seed, res.Placement.NodesInService())
		}
	}
}

func TestBFDSUSolvesTrapThatBestFitFails(t *testing.T) {
	// A best-fit trap: nodes 100 and 120 with VNFs 60,60,50,50 (total 220 =
	// total capacity). The unique packing puts both 60s on the 120-node and
	// both 50s on the 100-node. Deterministic BFD wedges the first 60 onto
	// the snugger 100-node (residual 40 < 60) and dead-ends; BFDSU's
	// weighted draw plus restarts finds the packing.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n100", Capacity: 100},
			{ID: "n120", Capacity: 120},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 60, ServiceRate: 1},
			{ID: "b", Instances: 1, Demand: 60, ServiceRate: 1},
			{ID: "c", Instances: 1, Demand: 50, ServiceRate: 1},
			{ID: "d", Instances: 1, Demand: 50, ServiceRate: 1},
		},
	}
	if _, err := (BFD{}).Place(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("BFD err = %v; expected the trap to defeat deterministic best fit", err)
	}
	res, err := (&BFDSU{Seed: 3}).Place(p)
	if err != nil {
		t.Fatalf("BFDSU failed the trap: %v", err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 {
		t.Error("iterations must count the restarts that solved the trap")
	}
}

func TestBFDSUExhaustsRestarts(t *testing.T) {
	// Feasible by Precheck but impossible to pack: two 60s into 100+20
	// passes neither precheck… construct demand 60+55 into 100+20: total
	// 115 ≤ 120 and max 60 ≤ 100, yet infeasible.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 20},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 60, ServiceRate: 1},
			{ID: "b", Instances: 1, Demand: 55, ServiceRate: 1},
		},
	}
	alg := &BFDSU{Seed: 1, MaxRestarts: 50}
	if _, err := alg.Place(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible after restart exhaustion", err)
	}
}

func TestNAHAnchorsOnLargestNode(t *testing.T) {
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "small", Capacity: 80},
			{ID: "large", Capacity: 200},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 50, ServiceRate: 1},
			{ID: "b", Instances: 1, Demand: 30, ServiceRate: 1},
		},
		Requests: []model.Request{
			{ID: "r", Chain: []model.VNFID{"b", "a"}, Rate: 1, DeliveryProb: 1},
		},
	}
	res, err := NAH{}.Place(p)
	if err != nil {
		t.Fatal(err)
	}
	// Most demanding VNF of the chain (a) anchors on the largest node, and b
	// co-locates.
	if v, _ := res.Placement.Node("a"); v != "large" {
		t.Errorf("anchor on %s, want large", v)
	}
	if v, _ := res.Placement.Node("b"); v != "large" {
		t.Errorf("chain member on %s, want co-located", v)
	}
	// One anchor selection + one co-placement attempt.
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
}

func TestNAHPlacesOrphanVNFs(t *testing.T) {
	p := smallProblem()
	p.Requests = nil // no chains at all
	res, err := NAH{}.Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatalf("orphan VNFs unplaced: %v", err)
	}
}

func TestNAHSharedVNFPlacedOnce(t *testing.T) {
	p := smallProblem()
	p.Requests = []model.Request{
		{ID: "r1", Chain: []model.VNFID{"a", "b"}, Rate: 1, DeliveryProb: 1},
		{ID: "r2", Chain: []model.VNFID{"a", "c"}, Rate: 1, DeliveryProb: 1},
		{ID: "r3", Chain: []model.VNFID{"a", "d"}, Rate: 1, DeliveryProb: 1},
	}
	res, err := NAH{}.Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err) // Validate catches double-placement or missing VNFs
	}
}

func TestRandomPlacementFeasible(t *testing.T) {
	p := generated(t, 11, 10, 50, 8)
	res, err := (&Random{Seed: 2}).Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestExactFindsOptimum(t *testing.T) {
	// Optimal packing uses exactly 2 nodes: {60,40} and {50,50}.
	p := smallProblem()
	res, err := (&Exact{}).Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err)
	}
	if got := res.Placement.NodesInService(); got != 2 {
		t.Errorf("Exact used %d nodes, want 2", got)
	}
}

func TestExactBeatsOrMatchesHeuristics(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		p := generated(t, seed, 8, 40, 6)
		opt, err := (&Exact{}).Place(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, alg := range allAlgorithms() {
			res, err := alg.Place(p)
			if err != nil {
				continue // heuristics may fail tight instances
			}
			if res.Placement.NodesInService() < opt.Placement.NodesInService() {
				t.Errorf("seed %d: %s used %d nodes < optimal %d", seed, alg.Name(),
					res.Placement.NodesInService(), opt.Placement.NodesInService())
			}
		}
	}
}

func TestTheorem2BoundHolds(t *testing.T) {
	// Theorem 2: SUM(V) ≤ 2·OPT(V) asymptotically; verify on exhaustively
	// solvable instances.
	for seed := uint64(0); seed < 8; seed++ {
		p := generated(t, seed+100, 9, 60, 7)
		opt, err := (&Exact{}).Place(p)
		if err != nil {
			t.Fatalf("seed %d: exact: %v", seed, err)
		}
		res, err := (&BFDSU{Seed: seed}).Place(p)
		if err != nil {
			t.Fatalf("seed %d: bfdsu: %v", seed, err)
		}
		sum := res.Placement.NodesInService()
		optN := opt.Placement.NodesInService()
		if sum > 2*optN {
			t.Errorf("seed %d: BFDSU used %d nodes > 2×OPT=%d — Theorem 2 violated", seed, sum, 2*optN)
		}
	}
}

func TestExactSizeGuards(t *testing.T) {
	p := generated(t, 1, 20, 100, 10)
	if _, err := (&Exact{}).Place(p); err == nil {
		t.Error("oversized instance accepted")
	}
	small := smallProblem()
	if _, err := (&Exact{MaxVNFs: 2}).Place(small); err == nil {
		t.Error("custom vnf guard ignored")
	}
	if _, err := (&Exact{MaxNodes: 1}).Place(small); err == nil {
		t.Error("custom node guard ignored")
	}
}

func TestExactInfeasible(t *testing.T) {
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 20},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 60, ServiceRate: 1},
			{ID: "b", Instances: 1, Demand: 55, ServiceRate: 1},
		},
	}
	if _, err := (&Exact{}).Place(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[string]bool{"BFDSU": true, "FFD": true, "BFD": true, "WFD": true, "NAH": true, "Random": true}
	for _, alg := range allAlgorithms() {
		if !want[alg.Name()] {
			t.Errorf("unexpected name %q", alg.Name())
		}
		delete(want, alg.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing algorithms: %v", want)
	}
	if (&Exact{}).Name() != "Exact" {
		t.Error("Exact name wrong")
	}
}
