package placement

import (
	"errors"
	"fmt"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/workload"
)

// memoryBoundProblem is CPU-loose but memory-tight: packing by CPU alone
// would cram everything onto one node and violate memory.
func memoryBoundProblem() *model.Problem {
	return &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 1000, Extras: []float64{32}},
			{ID: "n2", Capacity: 1000, Extras: []float64{32}},
			{ID: "n3", Capacity: 1000, Extras: []float64{32}},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 10, ServiceRate: 100, Extras: []float64{20}},
			{ID: "b", Instances: 1, Demand: 10, ServiceRate: 100, Extras: []float64{20}},
			{ID: "c", Instances: 1, Demand: 10, ServiceRate: 100, Extras: []float64{20}},
		},
	}
}

func TestMultiResourcePlacementRespectsMemory(t *testing.T) {
	p := memoryBoundProblem()
	for _, alg := range allAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			res, err := alg.Place(p)
			if err != nil {
				t.Fatalf("Place: %v", err)
			}
			if err := res.Placement.Validate(p); err != nil {
				t.Fatalf("memory constraint violated: %v", err)
			}
			// 20 GB each into 32 GB nodes → one VNF per node.
			if res.Placement.NodesInService() != 3 {
				t.Errorf("used %d nodes, want 3 (memory forces spreading)", res.Placement.NodesInService())
			}
		})
	}
}

func TestMultiResourceExactRespectsMemory(t *testing.T) {
	p := memoryBoundProblem()
	res, err := (&Exact{}).Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err)
	}
	if res.Placement.NodesInService() != 3 {
		t.Errorf("exact used %d nodes, want 3", res.Placement.NodesInService())
	}
}

func TestMultiResourcePrecheck(t *testing.T) {
	t.Run("oversized extra on every node", func(t *testing.T) {
		p := memoryBoundProblem()
		p.VNFs[0].Extras = []float64{40}
		if err := Precheck(p); !errors.Is(err, ErrInfeasible) {
			t.Errorf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("aggregate extra demand too large", func(t *testing.T) {
		p := memoryBoundProblem()
		for i := range p.VNFs {
			p.VNFs[i].Extras = []float64{35 * 3.0 / 3} // 35 each > 96/3 on average? 105 > 96 total
		}
		if err := Precheck(p); !errors.Is(err, ErrInfeasible) {
			t.Errorf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("feasible multi-resource passes", func(t *testing.T) {
		if err := Precheck(memoryBoundProblem()); err != nil {
			t.Errorf("Precheck: %v", err)
		}
	})
}

func TestMultiResourceGeneratedWorkload(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.NumRequests = 100
	p, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.AddMemoryDimension(p, 5); err != nil {
		t.Fatal(err)
	}
	if p.ExtraResources() != 1 {
		t.Fatalf("ExtraResources = %d", p.ExtraResources())
	}
	for _, alg := range allAlgorithms() {
		res, err := alg.Place(p)
		if err != nil {
			// Memory tightness may defeat restartless baselines; that is a
			// legitimate infeasible, not a bug.
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := res.Placement.Validate(p); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
	}
}

func TestMultiResourceDimensionMismatchRejected(t *testing.T) {
	p := memoryBoundProblem()
	p.VNFs[0].Extras = nil
	if err := p.Validate(); err == nil {
		t.Error("dimension mismatch accepted")
	}
	p2 := memoryBoundProblem()
	p2.Nodes[1].Extras = []float64{32, 10}
	if err := p2.Validate(); err == nil {
		t.Error("ragged node extras accepted")
	}
}

func TestMultiResourceInstancesScaleExtras(t *testing.T) {
	f := model.VNF{ID: "x", Instances: 3, Demand: 5, ServiceRate: 1, Extras: []float64{2, 7}}
	got := f.TotalExtras()
	if len(got) != 2 || got[0] != 6 || got[1] != 21 {
		t.Errorf("TotalExtras = %v", got)
	}
	if (model.VNF{Instances: 2}).TotalExtras() != nil {
		t.Error("CPU-only VNF should have nil TotalExtras")
	}
}

func TestMultiResourceManyDims(t *testing.T) {
	// Three dimensions (memory, bandwidth, disk) all satisfiable.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100, Extras: []float64{64, 10, 500}},
			{ID: "n2", Capacity: 100, Extras: []float64{64, 10, 500}},
		},
		VNFs: []model.VNF{},
	}
	for i := 0; i < 6; i++ {
		p.VNFs = append(p.VNFs, model.VNF{
			ID:          model.VNFID(fmt.Sprintf("f%d", i)),
			Instances:   1,
			Demand:      25,
			ServiceRate: 10,
			Extras:      []float64{15, 3, 120},
		})
	}
	res, err := (&BFDSU{Seed: 2}).Place(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Placement.Validate(p); err != nil {
		t.Fatal(err)
	}
	// Bandwidth (10 per node, 3 per VNF) caps each node at 3 VNFs.
	for _, v := range res.Placement.UsedNodes() {
		if n := len(res.Placement.VNFsOn(v)); n > 3 {
			t.Errorf("node %s hosts %d VNFs, bandwidth allows 3", v, n)
		}
	}
}
