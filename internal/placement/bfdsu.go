package placement

import (
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

// BFDSU is the paper's priority-driven weighted placement algorithm
// (Algorithm 1): Best Fit Decreasing using Smallest Used nodes with the
// largest probability.
//
// VNFs are placed from the most to the least resource-demanding. For each
// VNF the candidate set V_rst(f) is drawn from the nodes already in service
// (Used_list); only when none fits does the algorithm fall back to the spare
// nodes (Spare_list). Among candidates sorted by ascending residual capacity
// RST(v), the host is drawn with weight
//
//	P_rst(v) = 1 / (1 + RST(v) − D_f^sum),
//
// so the snuggest-fitting node is most likely but not certain — the
// randomization lets a restart escape dead ends a deterministic best-fit
// walks into. When some VNF fits nowhere the procedure goes "back to Begin"
// (a full restart).
//
// Iterations counts the weighted placement decisions taken across all
// passes (each decision re-sorts the candidate set and re-evaluates the
// weights — one iteration of the paper's Fig. 10 execution-cost metric, in
// which single-pass stateless FFD counts as 1 while the stateful algorithms
// count their per-VNF node-list evaluations).
type BFDSU struct {
	// MaxRestarts bounds the "go back to Begin" loop of Algorithm 1.
	// Zero means DefaultMaxRestarts.
	MaxRestarts int
	// Seed seeds the weighted draws; runs with equal seeds are identical.
	Seed uint64
}

// DefaultMaxRestarts bounds BFDSU's restart loop when the caller does not
// choose a limit.
const DefaultMaxRestarts = 1000

// Name implements Algorithm.
func (b *BFDSU) Name() string { return "BFDSU" }

// Place implements Algorithm.
func (b *BFDSU) Place(p *model.Problem) (*Result, error) {
	if err := Precheck(p); err != nil {
		return nil, err
	}
	maxRestarts := b.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = DefaultMaxRestarts
	}
	stream := rng.Derive(b.Seed, "bfdsu")
	sorted := p.SortedVNFsByDemand()

	iterations := 0
	for attempt := 1; attempt <= maxRestarts; attempt++ {
		pl, ok := b.onePass(p, sorted, stream, &iterations)
		if ok {
			return &Result{Placement: pl, Iterations: iterations}, nil
		}
	}
	return nil, fmt.Errorf("placement: BFDSU exhausted %d restarts: %w", maxRestarts, ErrInfeasible)
}

// onePass runs one full placement pass; ok is false when some VNF fit
// nowhere and the caller must restart. iterations accrues one per weighted
// placement decision.
func (b *BFDSU) onePass(p *model.Problem, sorted []model.VNF, stream *rng.Stream, iterations *int) (*model.Placement, bool) {
	st := newResidualState(p)
	pl := model.NewPlacement()
	for _, f := range sorted {
		*iterations++
		demand := f.TotalDemand()
		candidates := b.candidates(p, st, f, true) // Used_list first
		if len(candidates) == 0 {
			candidates = b.candidates(p, st, f, false) // then Spare_list
		}
		if len(candidates) == 0 {
			return nil, false // back to Begin
		}
		weights := make([]float64, len(candidates))
		for i, v := range candidates {
			weights[i] = 1 / (1 + st.residual[v] - demand)
		}
		choice := stream.WeightedIndex(weights)
		if choice < 0 {
			return nil, false
		}
		st.place(pl, f, candidates[choice])
	}
	return pl, true
}

// candidates returns the feasible nodes from the used (or spare) list,
// sorted by ascending residual capacity with id tie-breaks — the paper's
// V_rst(f) ordering. Feasibility covers CPU and every additional resource.
func (b *BFDSU) candidates(p *model.Problem, st *residualState, f model.VNF, fromUsed bool) []model.NodeID {
	var out []model.NodeID
	for _, n := range p.Nodes {
		if st.used[n.ID] != fromUsed {
			continue
		}
		if st.fitsVNF(n.ID, f) {
			out = append(out, n.ID)
		}
	}
	sortNodesByResidual(out, st)
	return out
}

// sortNodesByResidual orders ids by ascending residual, ties by id.
func sortNodesByResidual(ids []model.NodeID, st *residualState) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if st.residual[a] < st.residual[b] || (st.residual[a] == st.residual[b] && a <= b) {
				break
			}
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

var _ Algorithm = (*BFDSU)(nil)
