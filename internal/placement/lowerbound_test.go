package placement

import (
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/workload"
)

func TestLowerBoundNeverExceedsOptimal(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		p := generated(t, seed+300, 9, 50, 7)
		lb := LowerBound(p)
		opt, err := (&Exact{}).Place(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		optN := opt.Placement.NodesInService()
		if lb > optN {
			t.Errorf("seed %d: LB %d > OPT %d", seed, lb, optN)
		}
		if lb < 1 {
			t.Errorf("seed %d: LB %d < 1", seed, lb)
		}
	}
}

func TestLowerBoundCapacityCovering(t *testing.T) {
	// Demand 250 against capacities 100,100,100: no 2 nodes cover it.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 100},
			{ID: "n3", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 90, ServiceRate: 1},
			{ID: "b", Instances: 1, Demand: 90, ServiceRate: 1},
			{ID: "c", Instances: 1, Demand: 70, ServiceRate: 1},
		},
	}
	if lb := LowerBound(p); lb != 3 {
		t.Errorf("LB = %d, want 3 (250 demand over 100-capacity nodes)", lb)
	}
}

func TestLowerBoundBigItems(t *testing.T) {
	// Four items each over half the largest capacity: pairwise conflicting.
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100}, {ID: "n2", Capacity: 100},
			{ID: "n3", Capacity: 100}, {ID: "n4", Capacity: 100},
			{ID: "n5", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 60, ServiceRate: 1},
			{ID: "b", Instances: 1, Demand: 60, ServiceRate: 1},
			{ID: "c", Instances: 1, Demand: 60, ServiceRate: 1},
			{ID: "d", Instances: 1, Demand: 60, ServiceRate: 1},
		},
	}
	if lb := LowerBound(p); lb != 4 {
		t.Errorf("LB = %d, want 4 (pigeonhole on big items)", lb)
	}
}

func TestLowerBoundExtrasDimension(t *testing.T) {
	// CPU is loose but memory forces 3 nodes (60 GB demand over 32 GB nodes
	// would need 2; make it need 3: 3×22 = 66 over 32-GB nodes → covering
	// bound ceil… 2×32=64 < 66 → 3).
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 1000, Extras: []float64{32}},
			{ID: "n2", Capacity: 1000, Extras: []float64{32}},
			{ID: "n3", Capacity: 1000, Extras: []float64{32}},
		},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 10, ServiceRate: 1, Extras: []float64{22}},
			{ID: "b", Instances: 1, Demand: 10, ServiceRate: 1, Extras: []float64{22}},
			{ID: "c", Instances: 1, Demand: 10, ServiceRate: 1, Extras: []float64{22}},
		},
	}
	if lb := LowerBound(p); lb != 3 {
		t.Errorf("LB = %d, want 3 (memory covering)", lb)
	}
}

func TestLowerBoundEdgeCases(t *testing.T) {
	empty := &model.Problem{Nodes: []model.Node{{ID: "n", Capacity: 1}}}
	if lb := LowerBound(empty); lb != 0 {
		t.Errorf("LB of empty VNF set = %d", lb)
	}
	tiny := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 100}},
		VNFs:  []model.VNF{{ID: "a", Instances: 1, Demand: 1, ServiceRate: 1}},
	}
	if lb := LowerBound(tiny); lb != 1 {
		t.Errorf("LB = %d, want 1", lb)
	}
	// Demand beyond all capacity: bound exceeds node count (flags
	// infeasibility).
	over := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 10}},
		VNFs:  []model.VNF{{ID: "a", Instances: 1, Demand: 50, ServiceRate: 1}},
	}
	if lb := LowerBound(over); lb != 2 {
		t.Errorf("LB = %d, want 2 (> node count signals infeasible)", lb)
	}
}

func TestLowerBoundOnGeneratedHeuristics(t *testing.T) {
	// On paper-scale instances (too big for Exact), every heuristic must
	// respect the bound.
	cfg := workload.DefaultConfig()
	cfg.NumRequests = 300
	p, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.7 * p.TotalCapacity() / p.TotalDemand()
	for i := range p.VNFs {
		p.VNFs[i].Demand *= scale
	}
	lb := LowerBound(p)
	for _, alg := range allAlgorithms() {
		res, err := alg.Place(p)
		if err != nil {
			continue
		}
		if got := res.Placement.NodesInService(); got < lb {
			t.Errorf("%s used %d nodes < lower bound %d", alg.Name(), got, lb)
		}
	}
}
