package cluster

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"nfvchain/internal/simulate"
)

// drainChunk bounds how many events a datacenter drains between cancellation
// checks, mirroring the sequential driver's polling cadence.
const drainChunk = simulate.CtxCheckInterval

// parallelMinWindowEvents is the smoothed per-window event count below which
// the windowed driver drains datacenters inline instead of fanning out to the
// worker pool: a window that carries only a handful of events costs more in
// goroutine handoff than it saves. A package variable so tests can force the
// pool on for tiny fixtures.
var parallelMinWindowEvents = 1024

// runWindowed advances the composition in conservative windows. Datacenters
// only interact at global arrival instants, so between consecutive arrivals
// every datacenter can drain its own agenda independently:
//
//   - The barrier is the earliest pending global arrival time arrT. Each
//     datacenter a global flow can reach drains inclusively to the barrier —
//     exactly the events the sequential driver would process before routing
//     that arrival (ties at arrT go to datacenter events there too).
//   - Datacenters no global flow can reach are invisible to every routing
//     decision (built-in policies only read DCState.Pending for CanServe
//     datacenters — the documented Config.Workers contract), so they drain
//     straight to the horizon in the first window.
//   - When the router is LoadOblivious its decisions never read live load, so
//     a serving datacenter may drain past the barrier up to the earliest time
//     a future arrival could enter it: next[i] for flows homed there, and
//     next[i]+WANLatency for flows that would pay the WAN entry hop. That
//     keeps every injection at or after the datacenter's local clock.
//
// Windows with enough events (a smoothed estimate against
// parallelMinWindowEvents) fan the per-datacenter drains across min(workers,
// active) goroutines; distinct datacenters share no mutable state, so the
// only coordination is an atomic work cursor. Routing and injection always
// happen on the caller's goroutine at the deterministic barrier, so results
// are bit-identical to the sequential driver.
func (c *ClusterSimulator) runWindowed(ctx context.Context, workers int) error {
	n := len(c.sims)
	if workers > n {
		workers = n
	}

	// A context watcher translates cancellation into a flag the drain loops
	// can poll without channel operations on the hot path.
	var stop atomic.Bool
	if done := ctx.Done(); done != nil {
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-finished:
			}
		}()
	}

	oblivious := false
	if lo, ok := c.router.(LoadOblivious); ok {
		oblivious = lo.LoadOblivious()
	}
	servesGlobal := make([]bool, n)
	for i := range c.canServe {
		for d, ok := range c.canServe[i] {
			if ok {
				servesGlobal[d] = true
			}
		}
	}

	limits := make([]float64, n)
	active := make([]int32, 0, n)
	winEW := 0 // smoothed events-per-window estimate
	for {
		// Barrier: the earliest pending global arrival (+Inf when none
		// remain, which makes the last window drain everything).
		minA, arrT := -1, math.Inf(1)
		for i, t := range c.next {
			if t < arrT {
				minA, arrT = i, t
			}
		}

		// Per-datacenter drain limits for this window.
		for d := 0; d < n; d++ {
			switch {
			case !servesGlobal[d]:
				limits[d] = math.Inf(1)
			case !oblivious:
				limits[d] = arrT
			default:
				lim := math.Inf(1)
				for i, t := range c.next {
					if !c.canServe[i][d] || math.IsInf(t, 1) {
						continue
					}
					if c.cfg.Global[i].Home != d {
						t += c.cfg.WANLatency
					}
					if t < lim {
						lim = t
					}
				}
				limits[d] = lim
			}
		}
		active = active[:0]
		for d := 0; d < n; d++ {
			if c.times[d] <= limits[d] {
				active = append(active, int32(d))
			}
		}

		total := 0
		if workers > 1 && len(active) >= 2 &&
			(winEW >= parallelMinWindowEvents || math.IsInf(arrT, 1)) {
			total = c.drainParallel(active, limits, workers, &stop)
		} else {
			for _, d := range active {
				total += drainDC(c.sims[d], limits[d], &stop)
				c.times[d] = c.sims[d].PeekNextEventTime()
			}
		}
		winEW = (3*winEW + total) / 4

		if stop.Load() {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if minA < 0 {
			return nil
		}
		c.routeArrival(minA, arrT)
		c.next[minA] = c.nextArrival(minA, arrT, c.res.Horizon)
	}
}

// drainParallel fans the window's active datacenters across min(workers,
// len(active)) goroutines pulling from an atomic cursor. Each datacenter is
// drained by exactly one worker and workers touch no shared simulator state,
// so the fan-out is race-free by construction.
func (c *ClusterSimulator) drainParallel(active []int32, limits []float64, workers int, stop *atomic.Bool) int {
	if workers > len(active) {
		workers = len(active)
	}
	var cursor atomic.Int32
	var total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(active) {
					return
				}
				d := active[i]
				total.Add(int64(drainDC(c.sims[d], limits[d], stop)))
				c.times[d] = c.sims[d].PeekNextEventTime()
			}
		}()
	}
	wg.Wait()
	return int(total.Load())
}

// drainDC drains one datacenter inclusively to t in drainChunk-sized batches,
// checking the stop flag between batches so cancellation interrupts even a
// window holding millions of events.
func drainDC(sim *simulate.Simulator, t float64, stop *atomic.Bool) int {
	total := 0
	for {
		n := sim.DrainUntil(t, drainChunk)
		total += n
		if n < drainChunk || stop.Load() {
			return total
		}
	}
}
