package cluster

import (
	"fmt"
	"testing"

	"nfvchain/internal/control"
	"nfvchain/internal/model"
	"nfvchain/internal/simulate"
)

// faultsProblem is a two-node variant of diffProblem with an explicit
// placement, so each datacenter can host fault injection (faults require a
// placement) and a control plane with somewhere to migrate to.
func faultsProblem(withGlobals bool) (*model.Problem, *model.Schedule, *model.Placement) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "na", Capacity: 1000}, {ID: "nb", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 1, ServiceRate: 500},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 600},
		},
		Requests: []model.Request{
			{ID: "local", Chain: []model.VNFID{"f1", "f2"}, Rate: 120, DeliveryProb: 0.98},
		},
	}
	if withGlobals {
		prob.Requests = append(prob.Requests,
			model.Request{ID: "g0", Chain: []model.VNFID{"f1", "f2"}, Rate: 40, DeliveryProb: 0.98},
			model.Request{ID: "g1", Chain: []model.VNFID{"f1", "f2"}, Rate: 25, DeliveryProb: 0.98},
		)
	}
	sched := model.NewSchedule()
	for _, r := range prob.Requests {
		for _, f := range prob.VNFs {
			sched.Assign(r.ID, f.ID, 0)
		}
	}
	pl := model.NewPlacement()
	pl.Assign("f1", "na")
	pl.Assign("f2", "nb")
	return prob, sched, pl
}

// runFaultsDiff builds a fresh 4-datacenter cluster — per-datacenter outage
// schedules, correlated preemption, and one autoscale+migrate controller per
// region — and runs it under the given driver. Controllers are per-region and
// rebuilt per run, so sequential and windowed executions start identical.
func runFaultsDiff(t *testing.T, workers int) *Results {
	t.Helper()
	cfg := Config{WANLatency: 0.005, Router: LeastLoaded{}, Seed: 9, Workers: workers}
	for d := 0; d < 4; d++ {
		prob, sched, pl := faultsProblem(d != 3)
		ctrl, err := control.New(control.Config{
			Problem:       prob,
			Placement:     pl,
			Schedule:      sched,
			Policy:        control.PolicyAutoscaleMigrate,
			SetupCost:     0.05,
			MigrationCost: 0.05,
			Seed:          uint64(d + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Datacenters = append(cfg.Datacenters, Datacenter{
			Name: fmt.Sprintf("dc%d", d),
			Sim: simulate.Config{
				Problem: prob, Schedule: sched, Placement: pl,
				Horizon: 8, Warmup: 1, LinkDelay: 0.001, Seed: uint64(50 + d),
				FaultPlan: &simulate.FaultPlan{
					Outages: []simulate.Outage{{Node: "na", DownAt: 2, UpAt: 3.5 + 0.2*float64(d)}},
					Preemption: &simulate.PreemptionPlan{
						MeanInterval: 4, GroupSize: 1, Recovery: 1, LeadTime: 0.2,
					},
				},
				FaultHook:       ctrl,
				Control:         ctrl,
				ControlInterval: 0.5,
			},
		})
	}
	cfg.Global = []GlobalRequest{
		{ID: "g0", Rate: 40, Home: 0},
		{ID: "g1", Rate: 25, Home: 1},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterParallelFaultsDifferential extends the driver differential to
// the full online control plane: under per-datacenter outages, correlated
// preemption and per-region autoscale+migrate controllers, the windowed
// driver — inline and pooled — must produce bit-identical per-datacenter
// fingerprints and aggregates to the sequential driver. Run under -race in
// CI, this also proves region-confined controllers share no mutable state.
func TestClusterParallelFaultsDifferential(t *testing.T) {
	forcePool(t)
	base := runFaultsDiff(t, 0)
	var downtime, shed int
	for d := range base.Datacenters {
		res := base.Datacenters[d].Results
		downtime += len(res.Downtime)
		shed += res.Shed
	}
	if downtime == 0 {
		t.Fatal("no datacenter recorded downtime; fault scenario is vacuous")
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := runFaultsDiff(t, workers)
			for d := range base.Datacenters {
				fb := fingerprint(base.Datacenters[d].Results)
				fg := fingerprint(got.Datacenters[d].Results)
				if fb != fg {
					t.Errorf("datacenter %d fingerprint = %#x, want sequential %#x", d, fg, fb)
				}
				if got.Datacenters[d].Results.Shed != base.Datacenters[d].Results.Shed {
					t.Errorf("datacenter %d shed = %d, want %d", d,
						got.Datacenters[d].Results.Shed, base.Datacenters[d].Results.Shed)
				}
			}
			if got.Generated != base.Generated || got.Delivered != base.Delivered ||
				got.WANHops != base.WANHops || got.RoutedLocal != base.RoutedLocal {
				t.Errorf("aggregates diverged:\n got %+v\nwant %+v", got, base)
			}
		})
	}
}
