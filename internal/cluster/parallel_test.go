package cluster

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"nfvchain/internal/model"
	"nfvchain/internal/simulate"
)

// forcePool drops the windowed driver's pool-engagement threshold to zero for
// the duration of a test, so even tiny fixtures exercise the goroutine
// fan-out (and its -race coverage) instead of the inline drain.
func forcePool(t *testing.T) {
	t.Helper()
	old := parallelMinWindowEvents
	parallelMinWindowEvents = 0
	t.Cleanup(func() { parallelMinWindowEvents = old })
}

// diffProblem is a compact two-stage datacenter problem: one local flow plus
// two globally routed flows sharing the chain. withGlobals=false drops the
// global requests, producing a datacenter that cannot serve them — the
// drain-to-horizon fast path for datacenters invisible to the router.
func diffProblem(withGlobals bool) (*model.Problem, *model.Schedule) {
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n", Capacity: 1000}},
		VNFs: []model.VNF{
			{ID: "f1", Instances: 1, Demand: 1, ServiceRate: 500},
			{ID: "f2", Instances: 1, Demand: 1, ServiceRate: 600},
		},
		Requests: []model.Request{
			{ID: "local", Chain: []model.VNFID{"f1", "f2"}, Rate: 120, DeliveryProb: 0.98},
		},
	}
	if withGlobals {
		prob.Requests = append(prob.Requests,
			model.Request{ID: "g0", Chain: []model.VNFID{"f1", "f2"}, Rate: 40, DeliveryProb: 0.98},
			model.Request{ID: "g1", Chain: []model.VNFID{"f1", "f2"}, Rate: 25, DeliveryProb: 0.98},
		)
	}
	sched := model.NewSchedule()
	for _, r := range prob.Requests {
		for _, f := range prob.VNFs {
			sched.Assign(r.ID, f.ID, 0)
		}
	}
	return prob, sched
}

// diffFixture builds a 4-datacenter cluster for the driver differential:
// datacenters 0-2 serve both global flows (homed at 0 and 1), datacenter 3
// serves neither.
func diffFixture(wan float64, router Router, workers int, horizon float64) (Config, error) {
	full, fullSched := diffProblem(true)
	localOnly, localSched := diffProblem(false)
	cfg := Config{WANLatency: wan, Router: router, Seed: 9, Workers: workers}
	for d := 0; d < 4; d++ {
		prob, sched := full, fullSched
		if d == 3 {
			prob, sched = localOnly, localSched
		}
		cfg.Datacenters = append(cfg.Datacenters, Datacenter{
			Name: fmt.Sprintf("dc%d", d),
			Sim: simulate.Config{
				Problem: prob, Schedule: sched,
				Horizon: horizon, Warmup: 1, Seed: uint64(50 + d),
			},
		})
	}
	cfg.Global = []GlobalRequest{
		{ID: "g0", Rate: 40, Home: 0},
		{ID: "g1", Rate: 25, Home: 1},
	}
	return cfg, nil
}

// runDiff executes one fixture and returns its Results.
func runDiff(t *testing.T, wan float64, router Router, workers int) *Results {
	t.Helper()
	cfg, err := diffFixture(wan, router, workers, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterParallelDifferential pins the tentpole contract: the windowed
// driver — inline, small pool, and machine-sized pool — produces bit-identical
// per-datacenter fingerprints and routing counters to the sequential driver,
// across every built-in router and with and without WAN latency.
func TestClusterParallelDifferential(t *testing.T) {
	forcePool(t)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, router := range []Router{LocalityFirst{}, LeastLoaded{}, Weighted{}} {
		for _, wan := range []float64{0, 0.005} {
			base := runDiff(t, wan, router, 0)
			if base.RoutedLocal+base.WANHops == 0 {
				t.Fatalf("%s/wan=%v: baseline routed no global packets", router.Name(), wan)
			}
			for _, workers := range workerCounts {
				name := fmt.Sprintf("%s/wan=%v/workers=%d", router.Name(), wan, workers)
				t.Run(name, func(t *testing.T) {
					got := runDiff(t, wan, router, workers)
					for d := range base.Datacenters {
						fb := fingerprint(base.Datacenters[d].Results)
						fg := fingerprint(got.Datacenters[d].Results)
						if fb != fg {
							t.Errorf("datacenter %d fingerprint = %#x, want sequential %#x", d, fg, fb)
						}
					}
					if got.Generated != base.Generated || got.Delivered != base.Delivered ||
						got.WANHops != base.WANHops || got.RoutedLocal != base.RoutedLocal ||
						got.Rejected != base.Rejected || got.Truncated != base.Truncated {
						t.Errorf("aggregates diverged:\n got %+v\nwant %+v", got, base)
					}
					for d := range base.RoutedByDC {
						if got.RoutedByDC[d] != base.RoutedByDC[d] {
							t.Errorf("RoutedByDC[%d] = %d, want %d", d, got.RoutedByDC[d], base.RoutedByDC[d])
						}
					}
				})
			}
		}
	}
}

// TestClusterWindowedSingleDCGolden re-pins the N=1 plain-Simulator
// equivalence golden under the windowed driver: the tentpole must not move
// the composition's bit-exact fingerprint.
func TestClusterWindowedSingleDCGolden(t *testing.T) {
	const plainGolden = 0x4af579b7b3270177
	for _, workers := range []int{1, 2} {
		c, err := New(Config{
			Datacenters: []Datacenter{{Name: "solo", Sim: fixtureSim(t, 11)}},
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(res.Datacenters[0].Results); got != plainGolden {
			t.Errorf("workers=%d: N=1 fingerprint = %#x, want %#x", workers, got, plainGolden)
		}
	}
}

// TestClusterParallelCancellation asserts the windowed driver aborts promptly
// when the context is cancelled mid-window: the long-horizon fixture would
// take far longer to drain than the allowed deadline, and the chunked drains
// poll the shared stop flag between batches.
func TestClusterParallelCancellation(t *testing.T) {
	forcePool(t)
	cfg, err := diffFixture(0.005, LeastLoaded{}, 4, 3000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	start := time.Now()
	_, err = c.RunContext(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled windowed run succeeded")
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestClusterWindowedValidation covers the Workers knob's validation.
func TestClusterWindowedValidation(t *testing.T) {
	cfg, err := diffFixture(0, nil, -1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil {
		t.Error("New accepted negative Workers")
	}
}
