package cluster

import "math"

// timeIndex is a small indexed binary min-heap over (key, id): it tracks the
// next pending time of every member (datacenter or global arrival stream)
// and answers argmin in O(1), replacing the per-event O(N) rescans the
// sequential cluster driver used to pay. Keys move in either direction
// through update — processing pushes a datacenter's next-event time later,
// while an injection can pull it earlier — and equal keys break toward the
// smaller id, matching the member order a linear scan would have picked.
type timeIndex struct {
	heap []int32   // heap of member ids ordered by (key, id)
	pos  []int32   // member id -> position in heap
	key  []float64 // member id -> current key
}

// init (re)builds the index over a copy of keys.
func (x *timeIndex) init(keys []float64) {
	n := len(keys)
	x.key = append(x.key[:0], keys...)
	x.heap = x.heap[:0]
	x.pos = x.pos[:0]
	for i := 0; i < n; i++ {
		x.heap = append(x.heap, int32(i))
		x.pos = append(x.pos, int32(i))
	}
	for i := n/2 - 1; i >= 0; i-- {
		x.siftDown(i)
	}
}

// less orders member ids by (key, id).
func (x *timeIndex) less(a, b int32) bool {
	ka, kb := x.key[a], x.key[b]
	return ka < kb || (ka == kb && a < b)
}

// min returns the member with the smallest key and that key; (-1, +Inf) when
// the index is empty or every member is exhausted (key +Inf).
func (x *timeIndex) min() (int, float64) {
	if len(x.heap) == 0 {
		return -1, math.Inf(1)
	}
	id := x.heap[0]
	k := x.key[id]
	if math.IsInf(k, 1) {
		return -1, k
	}
	return int(id), k
}

// update sets id's key and restores heap order with a single sift.
func (x *timeIndex) update(id int, key float64) {
	old := x.key[id]
	if key == old {
		return
	}
	x.key[id] = key
	if i := int(x.pos[id]); key < old {
		x.siftUp(i)
	} else {
		x.siftDown(i)
	}
}

func (x *timeIndex) siftUp(i int) {
	id := x.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := x.heap[parent]
		if !x.less(id, p) {
			break
		}
		x.heap[i] = p
		x.pos[p] = int32(i)
		i = parent
	}
	x.heap[i] = id
	x.pos[id] = int32(i)
}

func (x *timeIndex) siftDown(i int) {
	id := x.heap[i]
	n := len(x.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && x.less(x.heap[r], x.heap[child]) {
			child = r
		}
		c := x.heap[child]
		if !x.less(c, id) {
			break
		}
		x.heap[i] = c
		x.pos[c] = int32(i)
		i = child
	}
	x.heap[i] = id
	x.pos[id] = int32(i)
}
