package cluster

import (
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/simulate"
)

// DCState is the live per-datacenter view a routing policy observes when
// placing one global arrival. The slice passed to Route is rebuilt (in a
// reused buffer) before every decision, so Pending and Routed track the
// simulation in real time.
type DCState struct {
	// Name is the datacenter's configured name.
	Name string
	// Home reports whether this datacenter is the arrival's home region.
	Home bool
	// CanServe reports whether the datacenter scheduled the request — only
	// such datacenters are valid routing targets.
	CanServe bool
	// Pending is the datacenter's live packet population (admitted, not yet
	// delivered or lost) at the moment of the decision.
	Pending int
	// Routed counts global packets this policy has already sent to the
	// datacenter during this run.
	Routed int
	// Capacity is the datacenter's total node capacity Σ_v A_v — the static
	// weight of the weighted policy.
	Capacity float64
}

// Router is a pluggable cross-datacenter routing/admission policy: Route
// picks the datacenter index to serve one arrival of req, or -1 to reject
// it. Implementations must be deterministic — the ClusterSimulator's
// reproducibility guarantee extends only to policies that decide purely
// from their inputs (and their own deterministic state).
type Router interface {
	Name() string
	Route(req *GlobalRequest, dcs []DCState) int
}

// LoadOblivious is an optional Router refinement: a policy whose
// LoadOblivious method returns true promises its decisions never read the
// live DCState.Pending field (only static fields and its own counters). The
// conservative-window driver uses this to extend per-datacenter lookahead —
// when routing can't observe live load, non-target datacenters may drain
// past the routing barrier by the WAN entry latency without changing any
// decision. Routers that don't implement the interface are treated as
// load-observing.
type LoadOblivious interface {
	LoadOblivious() bool
}

// LocalityFirst routes every arrival to its home datacenter when the home
// can serve it, avoiding the WAN entry hop; otherwise it falls back to the
// least-loaded serving datacenter. This is the latency-first baseline.
type LocalityFirst struct{}

// Name implements Router.
func (LocalityFirst) Name() string { return "locality" }

// Route implements Router.
func (LocalityFirst) Route(req *GlobalRequest, dcs []DCState) int {
	for i := range dcs {
		if dcs[i].Home && dcs[i].CanServe {
			return i
		}
	}
	return leastLoaded(dcs)
}

// LeastLoaded routes every arrival to the serving datacenter with the
// smallest live packet population, trading WAN hops for queueing headroom
// (ties break to the lowest index).
type LeastLoaded struct{}

// Name implements Router.
func (LeastLoaded) Name() string { return "least-loaded" }

// Route implements Router.
func (LeastLoaded) Route(req *GlobalRequest, dcs []DCState) int {
	return leastLoaded(dcs)
}

func leastLoaded(dcs []DCState) int {
	best := -1
	for i := range dcs {
		if !dcs[i].CanServe {
			continue
		}
		if best < 0 || dcs[i].Pending < dcs[best].Pending {
			best = i
		}
	}
	return best
}

// Weighted is a deterministic weighted round-robin: each arrival goes to
// the serving datacenter minimizing (Routed+1)/Capacity, so long-run route
// shares converge to the capacity proportions regardless of arrival order
// (ties break to the lowest index). It ignores live load — the static
// contrast policy to LeastLoaded.
type Weighted struct{}

// Name implements Router.
func (Weighted) Name() string { return "weighted" }

// LoadOblivious implements LoadOblivious: the policy reads only Routed and
// Capacity, never live Pending.
func (Weighted) LoadOblivious() bool { return true }

// Route implements Router.
func (Weighted) Route(req *GlobalRequest, dcs []DCState) int {
	best, bestCost := -1, 0.0
	for i := range dcs {
		if !dcs[i].CanServe || !(dcs[i].Capacity > 0) {
			continue
		}
		cost := float64(dcs[i].Routed+1) / dcs[i].Capacity
		if best < 0 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// ParseRoutePolicy parses a -route flag value into its Router.
func ParseRoutePolicy(s string) (Router, error) {
	switch s {
	case "locality":
		return LocalityFirst{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "weighted":
		return Weighted{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %q (want locality|least-loaded|weighted)", s)
	}
}

// RoutePolicies lists the built-in policy spellings accepted by
// ParseRoutePolicy.
func RoutePolicies() []string {
	return []string{"locality", "least-loaded", "weighted"}
}

// GlobalRequest is a request whose external arrivals enter at the cluster
// level and are routed to a datacenter per arrival. The request definition
// (chain, delivery probability) must be present — and is provisioned for —
// in every datacenter that may serve it; ID names that definition.
type GlobalRequest struct {
	ID model.RequestID
	// Rate is the Poisson arrival rate of the global flow, packets/s.
	// Ignored when Source is set.
	Rate float64
	// Source, when non-nil, replaces the Poisson process with a pull-based
	// arrival generator (e.g. a workload class source built by
	// workload.BuildSources), letting cluster flows carry diurnal or bursty
	// heavy-traffic processes. The source is consumed by the cluster driver
	// and must not be shared with another flow or simulator.
	Source simulate.ArrivalSource
	// Home is the index of the request's home datacenter: arrivals served
	// there enter immediately, arrivals routed elsewhere pay the WAN entry
	// hop.
	Home int
}
