package cluster

import (
	"testing"

	"nfvchain/internal/rng"
	"nfvchain/internal/workload"
)

// TestClusterSourceMatchesRate pins the GlobalRequest.Source seam: a custom
// Poisson source on the same derived stream the driver would use for Rate
// must reproduce the Rate-driven run bit for bit, under both the sequential
// and the windowed driver.
func TestClusterSourceMatchesRate(t *testing.T) {
	for _, workers := range []int{0, 2} {
		run := func(useSource bool) *Results {
			cfg := clusterFixture(t, 3, 0.25, LeastLoaded{}, 30)
			cfg.Workers = workers
			if useSource {
				g := &cfg.Global[0]
				g.Source = workload.NewPoisson(g.Rate, rng.Derive(cfg.Seed, "cluster/arrivals/"+string(g.ID)))
				g.Rate = 0 // Rate must be ignored (and not validated) with a Source
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(false), run(true)
		for d := range a.Datacenters {
			if fa, fb := fingerprint(a.Datacenters[d].Results), fingerprint(b.Datacenters[d].Results); fa != fb {
				t.Errorf("workers=%d: datacenter %d diverged between Rate and Source runs: %#x vs %#x",
					workers, d, fa, fb)
			}
		}
		if a.WANHops != b.WANHops || a.RoutedLocal != b.RoutedLocal || a.Generated != b.Generated {
			t.Errorf("workers=%d: routing diverged between Rate and Source runs", workers)
		}
	}
}

// TestClusterBurstySource smoke-tests a genuinely non-Poisson global flow: an
// MMPP source drives cross-datacenter arrivals and the run still satisfies
// the routing accounting invariants.
func TestClusterBurstySource(t *testing.T) {
	cfg := clusterFixture(t, 2, 0.1, LeastLoaded{}, 0)
	g := &cfg.Global[0]
	g.Rate = 0
	g.Source = workload.NewMMPP(150, 1, 4, rng.Derive(cfg.Seed, "bursty"))
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	routed := 0
	for _, n := range res.RoutedByDC {
		routed += n
	}
	if routed == 0 {
		t.Fatal("bursty source produced no routed arrivals")
	}
	if res.WANHops+res.RoutedLocal != routed {
		t.Errorf("WANHops %d + RoutedLocal %d != routed %d", res.WANHops, res.RoutedLocal, routed)
	}
}

// TestClusterSourceValidation keeps Rate validation for sourceless flows and
// drops it for sourced ones; an exhausted source retires the flow cleanly.
func TestClusterSourceValidation(t *testing.T) {
	cfg := clusterFixture(t, 2, 0, nil, 0) // rate 0 and no source: invalid
	if _, err := New(cfg); err == nil {
		t.Fatal("rate 0 without a source accepted")
	}
	cfg.Global[0].Source = emptySource{}
	c, err := New(cfg) // rate 0 with a source: valid
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	routed := 0
	for _, n := range res.RoutedByDC {
		routed += n
	}
	if routed != 0 {
		t.Errorf("exhausted source routed %d arrivals", routed)
	}
	if res.Generated == 0 {
		t.Error("local traffic vanished with an exhausted global source")
	}
}

// emptySource is an immediately exhausted arrival source.
type emptySource struct{}

func (emptySource) Next(after float64) (float64, bool) { return 0, false }
