package cluster

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"nfvchain/internal/model"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
	"nfvchain/internal/workload"
)

// fingerprint mirrors the simulate package's determinism-golden hash so the
// cluster equivalence test can pin bit-identity against the same constant.
func fingerprint(res *simulate.Results) uint64 {
	h := fnv.New64a()
	writeInt := func(v int) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	writeInt(res.Generated)
	writeInt(res.Delivered)
	writeInt(res.Retransmissions)
	writeInt(res.Dropped)
	writeFloat(res.Latency.Mean())
	writeFloat(res.Latency.Variance())
	writeFloat(res.Latency.Min())
	writeFloat(res.Latency.Max())
	for _, lat := range res.LatencySamples {
		writeFloat(lat)
	}
	keys := make([]simulate.InstanceKey, 0, len(res.Utilization))
	for k := range res.Utilization {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].VNF != keys[j].VNF {
			return keys[i].VNF < keys[j].VNF
		}
		return keys[i].Instance < keys[j].Instance
	})
	for _, k := range keys {
		h.Write([]byte(k.VNF))
		writeInt(k.Instance)
		writeFloat(res.Utilization[k])
		writeFloat(res.MeanJobs[k])
	}
	return h.Sum64()
}

// fixtureSim returns the default-workload simulation config shared with the
// simulate package's seed-determinism goldens.
func fixtureSim(t *testing.T, seed uint64) simulate.Config {
	t.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.Seed = seed
	p, err := workload.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduling.ScheduleAll(p, scheduling.RCKK{})
	if err != nil {
		t.Fatal(err)
	}
	return simulate.Config{Problem: p, Schedule: sched, Horizon: 20, Warmup: 2, Seed: 7}
}

// TestClusterSingleDCEquivalenceGolden pins the composition contract: one
// datacenter, zero WAN latency and no global traffic must reproduce the
// plain Simulator bit-for-bit — the same golden fingerprint the simulate
// package pins for this config (TestSeedDeterminismGolden/plain).
func TestClusterSingleDCEquivalenceGolden(t *testing.T) {
	const plainGolden = 0x4af579b7b3270177
	c, err := New(Config{Datacenters: []Datacenter{{Name: "solo", Sim: fixtureSim(t, 11)}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datacenters) != 1 {
		t.Fatalf("got %d datacenter results, want 1", len(res.Datacenters))
	}
	if got := fingerprint(res.Datacenters[0].Results); got != plainGolden {
		t.Errorf("N=1 cluster fingerprint = %#x, want plain-Simulator golden %#x", got, plainGolden)
	}
	direct, err := simulate.Run(fixtureSim(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != direct.Generated || res.Delivered != direct.Delivered ||
		res.InFlight != direct.InFlight || res.Latency != direct.Latency {
		t.Errorf("cluster aggregates diverge from the direct run: %+v vs %+v", res, direct)
	}
	if res.WANHops != 0 || res.Rejected != 0 {
		t.Errorf("no-global run counted WANHops=%d Rejected=%d", res.WANHops, res.Rejected)
	}
	if _, err := c.Run(); err == nil {
		t.Error("second Run of a single-use ClusterSimulator succeeded")
	}
}

// clusterFixture builds an n-datacenter cluster whose datacenters share one
// problem shape (distinct seeds) and serve one global request homed at 0.
func clusterFixture(t *testing.T, n int, wan float64, router Router, rate float64) Config {
	t.Helper()
	cfg := Config{WANLatency: wan, Router: router, Seed: 5}
	for d := 0; d < n; d++ {
		sim := fixtureSim(t, uint64(20+d))
		sim.Seed = uint64(100 + d)
		cfg.Datacenters = append(cfg.Datacenters, Datacenter{Sim: sim})
	}
	// Every datacenter generated from the same workload shape schedules the
	// same request IDs, so request 0 of datacenter 0's problem is servable
	// everywhere.
	cfg.Global = []GlobalRequest{{
		ID:   cfg.Datacenters[0].Sim.Problem.Requests[0].ID,
		Rate: rate,
		Home: 0,
	}}
	return cfg
}

// TestClusterGlobalRouting runs 3 datacenters with cross-datacenter traffic
// under each policy and checks the routing accounting invariants.
func TestClusterGlobalRouting(t *testing.T) {
	for _, router := range []Router{LocalityFirst{}, LeastLoaded{}, Weighted{}} {
		t.Run(router.Name(), func(t *testing.T) {
			cfg := clusterFixture(t, 3, 0.5, router, 40)
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Router != router.Name() {
				t.Errorf("Results.Router = %q, want %q", res.Router, router.Name())
			}
			totalRouted := 0
			for _, n := range res.RoutedByDC {
				totalRouted += n
			}
			if totalRouted == 0 {
				t.Fatal("no global packets were routed")
			}
			if res.WANHops+res.RoutedLocal != totalRouted {
				t.Errorf("WANHops %d + RoutedLocal %d != routed %d", res.WANHops, res.RoutedLocal, totalRouted)
			}
			if res.Rejected != 0 {
				t.Errorf("Rejected = %d on a cluster where every DC serves the request", res.Rejected)
			}
			switch router.(type) {
			case LocalityFirst:
				// The home datacenter can always serve: everything stays local.
				if res.WANHops != 0 {
					t.Errorf("locality policy paid %d WAN hops", res.WANHops)
				}
			case Weighted:
				// The deterministic WRR converges to capacity proportions.
				var caps []float64
				var totalCap float64
				for _, dc := range cfg.Datacenters {
					var c float64
					for _, n := range dc.Sim.Problem.Nodes {
						c += n.Capacity
					}
					caps = append(caps, c)
					totalCap += c
				}
				for d, n := range res.RoutedByDC {
					want := float64(totalRouted) * caps[d] / totalCap
					if math.Abs(float64(n)-want) > 2 {
						t.Errorf("weighted routing off proportion: dc%d got %d, want ~%.1f of %d", d, n, want, totalRouted)
					}
				}
			}
			if res.Generated <= totalRouted {
				t.Errorf("Generated = %d does not include local traffic beyond %d routed", res.Generated, totalRouted)
			}
		})
	}
}

// TestClusterDeterminism asserts two identical cluster runs produce
// bit-identical per-datacenter results, including under WAN routing.
func TestClusterDeterminism(t *testing.T) {
	run := func() *Results {
		c, err := New(clusterFixture(t, 3, 0.25, LeastLoaded{}, 30))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for d := range a.Datacenters {
		if fa, fb := fingerprint(a.Datacenters[d].Results), fingerprint(b.Datacenters[d].Results); fa != fb {
			t.Errorf("datacenter %d diverged across identical runs: %#x vs %#x", d, fa, fb)
		}
	}
	if a.WANHops != b.WANHops || a.RoutedLocal != b.RoutedLocal {
		t.Errorf("routing diverged: (%d,%d) vs (%d,%d)", a.WANHops, a.RoutedLocal, b.WANHops, b.RoutedLocal)
	}
}

// TestClusterWANLatency checks the entry-hop model: with the home region
// unable to serve the global request, every global packet pays the WAN hop,
// and mean global latency grows by at least that much.
func TestClusterWANLatency(t *testing.T) {
	makeCfg := func(wan float64) Config {
		cfg := Config{WANLatency: wan, Router: LeastLoaded{}, Seed: 5}
		for d := 0; d < 2; d++ {
			sim := fixtureSim(t, uint64(30+d))
			sim.Seed = uint64(200 + d)
			cfg.Datacenters = append(cfg.Datacenters, Datacenter{Sim: sim})
		}
		gid := cfg.Datacenters[0].Sim.Problem.Requests[0].ID
		// Home the request at a datacenter that cannot serve it: strip it
		// from datacenter 0's problem so every arrival is routed remotely.
		p0 := *cfg.Datacenters[0].Sim.Problem
		p0.Requests = append([]model.Request{}, p0.Requests[1:]...)
		cfg.Datacenters[0].Sim.Problem = &p0
		sched0, err := scheduling.ScheduleAll(&p0, scheduling.RCKK{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Datacenters[0].Sim.Schedule = sched0
		cfg.Global = []GlobalRequest{{ID: gid, Rate: 25, Home: 0}}
		return cfg
	}
	var lat [2]float64
	var offered [2]int
	for i, wan := range []float64{0, 1.0} {
		c, err := New(makeCfg(wan))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.RoutedLocal != 0 {
			t.Fatalf("wan=%v: %d packets served at an unserving home", wan, res.RoutedLocal)
		}
		if res.WANHops == 0 {
			t.Fatalf("wan=%v: no WAN hops recorded", wan)
		}
		// A non-zero hop can push arrivals born just before the horizon past
		// it (Truncated); the offered total is latency-invariant.
		offered[i] = res.WANHops + res.Truncated
		g := res.Datacenters[1].Results.PerRequest[model.RequestID(makeCfg(0).Global[0].ID)]
		if g == nil || g.N() == 0 {
			t.Fatalf("wan=%v: no delivered global packets measured", wan)
		}
		lat[i] = g.Mean()
	}
	if offered[0] != offered[1] {
		t.Errorf("offered global packets differ across WAN latencies: %d vs %d", offered[0], offered[1])
	}
	if lat[1]-lat[0] < 0.99 {
		t.Errorf("global mean latency grew %v for a 1s WAN hop, want >= ~1s", lat[1]-lat[0])
	}
}

// TestClusterValidation covers New's config validation.
func TestClusterValidation(t *testing.T) {
	base := fixtureSim(t, 11)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no datacenters", Config{}},
		{"negative wan", Config{WANLatency: -1, Datacenters: []Datacenter{{Sim: base}}}},
		{"mismatched horizon", func() Config {
			other := fixtureSim(t, 11)
			other.Horizon = 30
			return Config{Datacenters: []Datacenter{{Sim: base}, {Sim: other}}}
		}()},
		{"bad global rate", Config{Datacenters: []Datacenter{{Sim: base}},
			Global: []GlobalRequest{{ID: "g", Rate: 0, Home: 0}}}},
		{"bad home", Config{Datacenters: []Datacenter{{Sim: base}},
			Global: []GlobalRequest{{ID: "g", Rate: 1, Home: 3}}}},
		{"duplicate global", Config{Datacenters: []Datacenter{{Sim: base}},
			Global: []GlobalRequest{{ID: "g", Rate: 1}, {ID: "g", Rate: 2}}}},
		{"empty global id", Config{Datacenters: []Datacenter{{Sim: base}},
			Global: []GlobalRequest{{Rate: 1}}}},
		{"invalid member sim", Config{Datacenters: []Datacenter{{Sim: simulate.Config{}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Errorf("New accepted %s", tc.name)
			}
		})
	}
}

// TestClusterContextCancel asserts a cancelled context aborts the run.
func TestClusterContextCancel(t *testing.T) {
	c, err := New(clusterFixture(t, 2, 0.1, nil, 20))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunContext(ctx); err == nil {
		t.Error("cancelled cluster run succeeded")
	}
}

// TestParseRoutePolicy covers the flag round trip.
func TestParseRoutePolicy(t *testing.T) {
	for _, name := range RoutePolicies() {
		r, err := ParseRoutePolicy(name)
		if err != nil || r.Name() != name {
			t.Errorf("ParseRoutePolicy(%q) = %v, %v", name, r, err)
		}
	}
	if _, err := ParseRoutePolicy("bogus"); err == nil {
		t.Error("ParseRoutePolicy(bogus) succeeded")
	}
}

// TestRouterPolicies pins each built-in policy's decision on a fixed state.
func TestRouterPolicies(t *testing.T) {
	req := &GlobalRequest{ID: "g", Home: 1}
	dcs := []DCState{
		{Pending: 5, CanServe: true, Capacity: 100, Routed: 10},
		{Pending: 9, CanServe: true, Capacity: 100, Routed: 0, Home: true},
		{Pending: 1, CanServe: false, Capacity: 100},
		{Pending: 7, CanServe: true, Capacity: 400, Routed: 4},
	}
	if got := (LocalityFirst{}).Route(req, dcs); got != 1 {
		t.Errorf("locality routed to %d, want home 1", got)
	}
	if got := (LeastLoaded{}).Route(req, dcs); got != 0 {
		t.Errorf("least-loaded routed to %d, want 0 (pending 5, dc2 cannot serve)", got)
	}
	// weighted costs: dc0 11/100, dc1 1/100, dc3 5/400 → dc1 wins.
	if got := (Weighted{}).Route(req, dcs); got != 1 {
		t.Errorf("weighted routed to %d, want 1", got)
	}
	// Home cannot serve → locality falls back to least-loaded.
	dcs[1].CanServe = false
	if got := (LocalityFirst{}).Route(req, dcs); got != 0 {
		t.Errorf("locality fallback routed to %d, want 0", got)
	}
	none := []DCState{{Pending: 1}, {Pending: 2}}
	for _, r := range []Router{LocalityFirst{}, LeastLoaded{}, Weighted{}} {
		if got := r.Route(req, none); got != -1 {
			t.Errorf("%s routed to %d with no serving datacenter, want -1", r.Name(), got)
		}
	}
}
