// Package cluster composes datacenter-level discrete-event simulators into
// one region-scale simulation under a single global clock — the multi-cloud
// SFC setting: N datacenters, each with its own placement and schedule, plus
// global service-chain requests whose arrivals are routed across datacenters
// by a pluggable policy and pay a WAN entry hop when served away from home.
//
// The composition is built on the Simulator stepping primitives
// (PeekNextEventTime / ProcessNextEvent / Inject): the ClusterSimulator
// repeatedly advances whichever datacenter holds the globally earliest
// pending event, interleaving cluster-level arrival injections in exact
// timestamp order. Each datacenter therefore executes the identical event
// sequence it would standalone given the same injections — with one
// datacenter and no global traffic the composition is bit-identical to a
// plain simulate.Run (the equivalence golden pins this).
//
// WAN latency is modeled on entry: a packet routed off-home arrives at the
// serving datacenter WANLatency seconds after its birth, and its measured
// end-to-end latency includes that hop (chains then run entirely within the
// serving datacenter — inter-stage WAN crossings are out of scope here and
// tracked by the ROADMAP).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/simulate"
	"nfvchain/internal/stats"
)

// Datacenter is one member simulation of the cluster.
type Datacenter struct {
	// Name labels the datacenter in results (defaults to "dc<i>").
	Name string
	// Sim is the datacenter's full simulation config: its own problem,
	// placement, schedule, seed and local traffic. All datacenters must
	// share one Horizon and Warmup. Requests listed in Config.Global are
	// automatically marked InjectOnly — the cluster supplies their
	// arrivals — but must be present in the problem and schedule of every
	// datacenter that may serve them.
	Sim simulate.Config
}

// Config parameterizes one cluster run.
type Config struct {
	Datacenters []Datacenter
	// WANLatency is the one-way inter-datacenter latency (seconds) charged
	// to a global packet served away from its home region.
	WANLatency float64
	// Router picks the serving datacenter per global arrival; nil means
	// LocalityFirst.
	Router Router
	// Global lists the cluster-level flows routed across datacenters.
	Global []GlobalRequest
	// Seed drives the cluster-level arrival streams (derived per request;
	// independent of every datacenter seed).
	Seed uint64
	// Workers selects the cluster execution driver. 0 (the default) keeps
	// the event-interleaved sequential driver: one global event at a time in
	// exact (time, seq) order. Workers >= 1 switches to the conservative-
	// window driver: datacenters only interact at global arrival instants,
	// so between consecutive arrivals each datacenter drains its own agenda
	// to the barrier in one batch (simulate.Simulator.DrainUntil) — inline
	// when Workers == 1, fanned out across min(Workers, N) goroutines when a
	// window carries enough events to pay for the handoff. Results are
	// bit-identical across every Workers value; like AgendaKind this is
	// purely a performance knob. The windowed driver assumes routing
	// policies read DCState.Pending only for datacenters with CanServe —
	// every built-in policy does — because datacenters no global flow can
	// reach are drained ahead of the barrier.
	Workers int
}

// DCResults pairs a datacenter's name with its standalone measurements.
type DCResults struct {
	Name    string
	Results *simulate.Results
}

// Results aggregates one cluster run.
type Results struct {
	Horizon float64
	// Router is the routing policy's name.
	Router string

	// Datacenters holds each member's full standalone Results (aliasing the
	// member simulator's buffers; valid until the ClusterSimulator is
	// garbage collected — cluster simulators are single-use).
	Datacenters []DCResults

	// Cluster-wide sums over all datacenters.
	Generated       int
	Delivered       int
	Retransmissions int
	Dropped         int
	InFlight        int
	// Latency merges every datacenter's delivered-latency summary; WAN
	// entry hops are included (the packet's birth predates its arrival).
	Latency      stats.Summary
	Availability float64

	// WANHops counts global packets that paid the WAN entry hop (served
	// away from home); RoutedLocal counts those served at home.
	WANHops     int
	RoutedLocal int
	// RoutedByDC counts global packets injected into each datacenter.
	RoutedByDC []int
	// Rejected counts global arrivals no datacenter could serve (the
	// router returned -1).
	Rejected int
	// Truncated counts global arrivals routed so close to the horizon that
	// the WAN hop pushed their entry past it (never admitted).
	Truncated int
}

// ClusterSimulator advances N datacenter Simulators in global-time order
// under a single clock. New validates and prepares the run; Run (or
// RunContext) executes it once. The zero value is not usable and a
// ClusterSimulator cannot be rerun — construct a fresh one per run.
type ClusterSimulator struct {
	cfg    Config
	router Router
	sims   []*simulate.Simulator
	// times caches each datacenter's PeekNextEventTime; refreshed only for
	// the datacenter that processed an event or received an injection.
	times []float64
	// Global arrival state: streams[i] generates request i's Poisson
	// process, next[i] is its next arrival time (+Inf when past horizon).
	streams []*rng.Stream
	next    []float64
	// canServe[i][d] precomputes whether datacenter d scheduled global
	// request i; capacity[d] is Σ A_v. states is the reused Route buffer.
	canServe [][]bool
	capacity []float64
	states   []DCState

	// dcIdx and arrIdx are the sequential driver's incremental argmin
	// structures over times and next (see timeindex.go).
	dcIdx  timeIndex
	arrIdx timeIndex

	res *Results
	ran bool
}

// New validates cfg and prepares a single-use cluster simulator: every
// datacenter is Reset with its (InjectOnly-augmented) config and the global
// arrival streams are seeded.
func New(cfg Config) (*ClusterSimulator, error) {
	if len(cfg.Datacenters) == 0 {
		return nil, errors.New("cluster: at least one datacenter is required")
	}
	if !(cfg.WANLatency >= 0) || math.IsInf(cfg.WANLatency, 1) {
		return nil, fmt.Errorf("cluster: WAN latency %v must be non-negative and finite", cfg.WANLatency)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("cluster: negative worker count %d", cfg.Workers)
	}
	horizon := cfg.Datacenters[0].Sim.Horizon
	warmup := cfg.Datacenters[0].Sim.Warmup
	for i := range cfg.Datacenters {
		if cfg.Datacenters[i].Sim.Horizon != horizon || cfg.Datacenters[i].Sim.Warmup != warmup {
			return nil, fmt.Errorf("cluster: datacenter %d horizon/warmup (%v/%v) differs from datacenter 0 (%v/%v); the shared clock requires equal windows",
				i, cfg.Datacenters[i].Sim.Horizon, cfg.Datacenters[i].Sim.Warmup, horizon, warmup)
		}
	}
	seen := make(map[model.RequestID]bool, len(cfg.Global))
	globalIDs := make([]model.RequestID, 0, len(cfg.Global))
	for i, g := range cfg.Global {
		if g.ID == "" {
			return nil, fmt.Errorf("cluster: global request %d: empty id", i)
		}
		if seen[g.ID] {
			return nil, fmt.Errorf("cluster: duplicate global request %q", g.ID)
		}
		seen[g.ID] = true
		if g.Source == nil && (!(g.Rate > 0) || math.IsInf(g.Rate, 1)) {
			return nil, fmt.Errorf("cluster: global request %q: rate %v must be positive and finite", g.ID, g.Rate)
		}
		if g.Home < 0 || g.Home >= len(cfg.Datacenters) {
			return nil, fmt.Errorf("cluster: global request %q: home %d outside [0,%d)", g.ID, g.Home, len(cfg.Datacenters))
		}
		globalIDs = append(globalIDs, g.ID)
	}
	router := cfg.Router
	if router == nil {
		router = LocalityFirst{}
	}

	c := &ClusterSimulator{
		cfg:      cfg,
		router:   router,
		sims:     make([]*simulate.Simulator, len(cfg.Datacenters)),
		times:    make([]float64, len(cfg.Datacenters)),
		streams:  make([]*rng.Stream, len(cfg.Global)),
		next:     make([]float64, len(cfg.Global)),
		canServe: make([][]bool, len(cfg.Global)),
		capacity: make([]float64, len(cfg.Datacenters)),
		states:   make([]DCState, len(cfg.Datacenters)),
	}
	for d := range cfg.Datacenters {
		simCfg := cfg.Datacenters[d].Sim
		if len(globalIDs) > 0 {
			// Copy-on-write: never mutate the caller's InjectOnly slice.
			merged := make([]model.RequestID, 0, len(simCfg.InjectOnly)+len(globalIDs))
			merged = append(merged, simCfg.InjectOnly...)
			merged = append(merged, globalIDs...)
			simCfg.InjectOnly = merged
		}
		sim := simulate.NewSimulator()
		if err := sim.Reset(simCfg); err != nil {
			return nil, fmt.Errorf("cluster: datacenter %d (%s): %w", d, c.dcName(d), err)
		}
		c.sims[d] = sim
		if simCfg.Problem != nil {
			for _, n := range simCfg.Problem.Nodes {
				c.capacity[d] += n.Capacity
			}
		}
	}
	for i, g := range cfg.Global {
		c.streams[i] = rng.Derive(cfg.Seed, "cluster/arrivals/"+string(g.ID))
		c.next[i] = c.nextArrival(i, 0, horizon)
		c.canServe[i] = make([]bool, len(cfg.Datacenters))
		for d := range c.sims {
			c.canServe[i][d] = c.sims[d].CanServe(g.ID)
		}
	}
	c.res = &Results{
		Horizon:    horizon,
		Router:     router.Name(),
		RoutedByDC: make([]int, len(cfg.Datacenters)),
	}
	return c, nil
}

// nextArrival draws global flow i's next arrival time strictly after t:
// from the flow's custom Source when one is set, otherwise from the Poisson
// process at Rate on the flow's derived stream. Arrivals at or past the
// horizon — and exhausted sources — come back as +Inf, which retires the
// flow from the arrival index heaps.
func (c *ClusterSimulator) nextArrival(i int, after, horizon float64) float64 {
	g := &c.cfg.Global[i]
	var next float64
	if g.Source != nil {
		t, ok := g.Source.Next(after)
		if !ok {
			return math.Inf(1)
		}
		next = t
		if !(next >= after) { // clamp non-monotone or NaN sources
			next = after
		}
	} else {
		next = after + c.streams[i].Exp(g.Rate)
	}
	if next >= horizon {
		return math.Inf(1)
	}
	return next
}

func (c *ClusterSimulator) dcName(d int) string {
	if n := c.cfg.Datacenters[d].Name; n != "" {
		return n
	}
	return fmt.Sprintf("dc%d", d)
}

// Run executes the cluster simulation and returns the aggregated results.
func (c *ClusterSimulator) Run() (*Results, error) {
	return c.RunContext(context.Background())
}

// RunContext is Run with cancellation (polled every
// simulate.CtxCheckInterval events). Config.Workers selects the driver:
// 0 runs the event-interleaved sequential loop, >= 1 the conservative-window
// loop (see windowed.go); both produce bit-identical results.
func (c *ClusterSimulator) RunContext(ctx context.Context) (*Results, error) {
	if c.ran {
		return nil, errors.New("cluster: a ClusterSimulator runs once; construct a new one")
	}
	c.ran = true
	for d, sim := range c.sims {
		c.times[d] = sim.PeekNextEventTime()
	}
	var err error
	if c.cfg.Workers >= 1 {
		err = c.runWindowed(ctx, c.cfg.Workers)
	} else {
		err = c.runSequential(ctx)
	}
	if err != nil {
		return nil, err
	}
	return c.finalizeAll()
}

// runSequential advances the composition one event at a time: the globally
// earliest pending occurrence — a datacenter event or a cluster-level
// arrival — is processed next. Ties go to datacenter events: an arrival
// injected at time t enters strictly after events already scheduled at t,
// matching the simulator's FIFO seq order. The argmin over datacenters and
// arrival streams comes from incrementally maintained index heaps, so one
// step costs O(log N) instead of the O(N) rescan the loop used to pay.
func (c *ClusterSimulator) runSequential(ctx context.Context) error {
	c.dcIdx.init(c.times)
	c.arrIdx.init(c.next)
	done := ctx.Done()
	check := simulate.CtxCheckInterval
	for {
		if done != nil {
			check--
			if check <= 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
				check = simulate.CtxCheckInterval
			}
		}
		minDC, minT := c.dcIdx.min()
		minA, arrT := c.arrIdx.min()
		if minDC < 0 && minA < 0 {
			return nil
		}
		if minA >= 0 && arrT < minT {
			if target := c.routeArrival(minA, arrT); target >= 0 {
				c.dcIdx.update(target, c.times[target])
			}
			c.next[minA] = c.nextArrival(minA, arrT, c.res.Horizon)
			c.arrIdx.update(minA, c.next[minA])
			continue
		}
		c.sims[minDC].ProcessNextEvent()
		c.times[minDC] = c.sims[minDC].PeekNextEventTime()
		c.dcIdx.update(minDC, c.times[minDC])
	}
}

// finalizeAll publishes every datacenter's measurements and the cluster-wide
// aggregates once a driver has drained the composition.
func (c *ClusterSimulator) finalizeAll() (*Results, error) {
	for d, sim := range c.sims {
		res, err := sim.Finalize()
		if err != nil {
			return nil, fmt.Errorf("cluster: datacenter %d (%s): %w", d, c.dcName(d), err)
		}
		c.res.Datacenters = append(c.res.Datacenters, DCResults{Name: c.dcName(d), Results: res})
		c.res.Generated += res.Generated
		c.res.Delivered += res.Delivered
		c.res.Retransmissions += res.Retransmissions
		c.res.Dropped += res.Dropped
		c.res.InFlight += res.InFlight
		c.res.Latency.Merge(&res.Latency)
	}
	c.res.Availability = 1
	if c.res.Generated > 0 {
		c.res.Availability = float64(c.res.Delivered) / float64(c.res.Generated)
	}
	return c.res, nil
}

// routeArrival asks the policy to place one arrival of global request i at
// time t and injects it into the chosen datacenter. It returns the index of
// the datacenter that admitted the packet (its cached next-event time in
// c.times has been refreshed — injections can pull it earlier), or -1 when
// the arrival was rejected or truncated.
func (c *ClusterSimulator) routeArrival(i int, t float64) int {
	g := &c.cfg.Global[i]
	for d := range c.states {
		c.states[d] = DCState{
			Name:     c.dcName(d),
			Home:     d == g.Home,
			CanServe: c.canServe[i][d],
			Pending:  c.sims[d].PendingPackets(),
			Routed:   c.res.RoutedByDC[d],
			Capacity: c.capacity[d],
		}
	}
	target := c.router.Route(g, c.states)
	if target < 0 || target >= len(c.sims) || !c.canServe[i][target] {
		c.res.Rejected++
		return -1
	}
	at := t
	if target != g.Home {
		at += c.cfg.WANLatency
	}
	ok, err := c.sims[target].Inject(at, t, g.ID)
	if err != nil {
		// Unreachable by construction (target serves g, at >= now); an
		// injection error would mean a policy bug — count it as a rejection
		// rather than abort a long run.
		c.res.Rejected++
		return -1
	}
	if !ok {
		c.res.Truncated++
		return -1
	}
	c.res.RoutedByDC[target]++
	if target != g.Home {
		c.res.WANHops++
	} else {
		c.res.RoutedLocal++
	}
	c.times[target] = c.sims[target].PeekNextEventTime()
	return target
}
