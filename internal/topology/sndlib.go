package topology

import (
	"fmt"
	"sort"
)

// The paper scales its simulated datacenter substrate from reference
// networks of the SNDlib survivable-network-design library [Orlowski et al.,
// Networks 2010], with 4 to 50 computing nodes. The library itself ships
// only as XML data files; here each reference network is embedded as an
// explicit vertex/edge list in SNDlib style (same node counts and link
// densities as the published instances). Placement and scheduling consume
// only node counts, capacities and inter-node distances, so this embedding
// preserves everything the algorithms observe.

type namedTopology struct {
	nodes []string
	edges [][2]string
}

var sndlibTopologies = map[string]namedTopology{
	// Abilene: 12 nodes, 15 links (the Internet2 research backbone).
	"abilene": {
		nodes: []string{
			"ATLAM5", "ATLAng", "CHINng", "DNVRng", "HSTNng", "IPLSng",
			"KSCYng", "LOSAng", "NYCMng", "SNVAng", "STTLng", "WASHng",
		},
		edges: [][2]string{
			{"ATLAM5", "ATLAng"}, {"ATLAng", "HSTNng"}, {"ATLAng", "IPLSng"},
			{"ATLAng", "WASHng"}, {"CHINng", "IPLSng"}, {"CHINng", "NYCMng"},
			{"DNVRng", "KSCYng"}, {"DNVRng", "SNVAng"}, {"DNVRng", "STTLng"},
			{"HSTNng", "KSCYng"}, {"HSTNng", "LOSAng"}, {"IPLSng", "KSCYng"},
			{"LOSAng", "SNVAng"}, {"NYCMng", "WASHng"}, {"SNVAng", "STTLng"},
		},
	},
	// Polska: 12 nodes, 18 links (Polish national backbone).
	"polska": {
		nodes: []string{
			"Gdansk", "Bydgoszcz", "Kolobrzeg", "Szczecin", "Poznan", "Warszawa",
			"Lodz", "Wroclaw", "Katowice", "Krakow", "Rzeszow", "Bialystok",
		},
		edges: [][2]string{
			{"Gdansk", "Kolobrzeg"}, {"Gdansk", "Bydgoszcz"}, {"Gdansk", "Warszawa"},
			{"Gdansk", "Bialystok"}, {"Kolobrzeg", "Szczecin"}, {"Kolobrzeg", "Bydgoszcz"},
			{"Szczecin", "Poznan"}, {"Bydgoszcz", "Poznan"}, {"Bydgoszcz", "Warszawa"},
			{"Poznan", "Wroclaw"}, {"Poznan", "Lodz"}, {"Wroclaw", "Lodz"},
			{"Wroclaw", "Katowice"}, {"Lodz", "Warszawa"}, {"Katowice", "Krakow"},
			{"Krakow", "Rzeszow"}, {"Rzeszow", "Bialystok"}, {"Warszawa", "Bialystok"},
		},
	},
	// Nobel-Germany: 17 nodes, 26 links.
	"nobel-germany": {
		nodes: []string{
			"Aachen", "Augsburg", "Berlin", "Bielefeld", "Bremen", "Dortmund",
			"Dresden", "Duesseldorf", "Essen", "Frankfurt", "Hamburg", "Hannover",
			"Karlsruhe", "Leipzig", "Muenchen", "Nuernberg", "Ulm",
		},
		edges: [][2]string{
			{"Aachen", "Duesseldorf"}, {"Aachen", "Frankfurt"}, {"Augsburg", "Muenchen"},
			{"Augsburg", "Ulm"}, {"Berlin", "Hamburg"}, {"Berlin", "Hannover"},
			{"Berlin", "Leipzig"}, {"Bielefeld", "Dortmund"}, {"Bielefeld", "Hannover"},
			{"Bremen", "Hamburg"}, {"Bremen", "Hannover"}, {"Dortmund", "Essen"},
			{"Dortmund", "Hannover"}, {"Dresden", "Berlin"}, {"Dresden", "Leipzig"},
			{"Duesseldorf", "Essen"}, {"Duesseldorf", "Frankfurt"}, {"Hamburg", "Hannover"},
			{"Frankfurt", "Hannover"}, {"Frankfurt", "Karlsruhe"}, {"Frankfurt", "Leipzig"},
			{"Frankfurt", "Nuernberg"}, {"Karlsruhe", "Ulm"}, {"Leipzig", "Nuernberg"},
			{"Muenchen", "Nuernberg"}, {"Muenchen", "Ulm"},
		},
	},
	// Geant: 22 nodes, 36 links (the pan-European research network).
	"geant": {
		nodes: []string{
			"at", "be", "ch", "cz", "de", "dk", "es", "fr", "gr", "hr", "hu",
			"ie", "il", "it", "lu", "nl", "no", "pl", "pt", "se", "sk", "uk",
		},
		edges: [][2]string{
			{"at", "ch"}, {"at", "cz"}, {"at", "de"}, {"at", "hu"}, {"at", "it"},
			{"at", "sk"}, {"be", "fr"}, {"be", "nl"}, {"be", "uk"}, {"ch", "de"},
			{"ch", "fr"}, {"ch", "it"}, {"cz", "de"}, {"cz", "pl"}, {"cz", "sk"},
			{"de", "dk"}, {"de", "fr"}, {"de", "nl"}, {"de", "pl"}, {"dk", "no"},
			{"dk", "se"}, {"es", "fr"}, {"es", "it"}, {"es", "pt"}, {"fr", "lu"},
			{"fr", "uk"}, {"gr", "it"}, {"gr", "il"}, {"hr", "hu"}, {"hr", "it"},
			{"hu", "sk"}, {"ie", "uk"}, {"il", "it"}, {"lu", "de"}, {"nl", "uk"},
			{"no", "se"},
		},
	},
}

// germany50 is generated structurally: 50 nodes on a ring with 38 fixed
// chords — 88 links, matching the published instance's size. Built once at
// package init of SNDlibNames/SNDlib via buildGermany50.
var germany50Chords = [][2]int{
	{0, 10}, {1, 17}, {2, 25}, {3, 31}, {4, 40}, {5, 22}, {6, 33}, {7, 44},
	{8, 19}, {9, 27}, {11, 29}, {12, 38}, {13, 45}, {14, 26}, {15, 34},
	{16, 42}, {18, 36}, {20, 41}, {21, 39}, {23, 47}, {24, 43}, {28, 46},
	{30, 48}, {32, 49}, {0, 25}, {5, 30}, {10, 35}, {15, 40}, {20, 45},
	{2, 37}, {7, 28}, {12, 33}, {17, 48}, {22, 43}, {4, 21}, {9, 36},
	{14, 41}, {19, 46},
}

func buildGermany50() *Graph {
	g := New()
	for i := 0; i < 50; i++ {
		g.AddVertex(fmt.Sprintf("g%02d", i), KindCompute)
	}
	for i := 0; i < 50; i++ {
		g.MustAddEdge(fmt.Sprintf("g%02d", i), fmt.Sprintf("g%02d", (i+1)%50), DefaultLinkDelay)
	}
	for _, ch := range germany50Chords {
		g.MustAddEdge(fmt.Sprintf("g%02d", ch[0]), fmt.Sprintf("g%02d", ch[1]), DefaultLinkDelay)
	}
	return g
}

// SNDlibNames lists the embedded reference networks, sorted.
func SNDlibNames() []string {
	names := make([]string, 0, len(sndlibTopologies)+1)
	for n := range sndlibTopologies {
		names = append(names, n)
	}
	names = append(names, "germany50")
	sort.Strings(names)
	return names
}

// SNDlib returns the named reference network with every node as a computing
// node and uniform link delays. Unknown names return an error listing the
// available networks.
func SNDlib(name string) (*Graph, error) {
	if name == "germany50" {
		return buildGermany50(), nil
	}
	t, ok := sndlibTopologies[name]
	if !ok {
		return nil, fmt.Errorf("topology: unknown sndlib network %q (have %v)", name, SNDlibNames())
	}
	g := New()
	for _, n := range t.nodes {
		g.AddVertex(n, KindCompute)
	}
	for _, e := range t.edges {
		if err := g.AddEdge(e[0], e[1], DefaultLinkDelay); err != nil {
			return nil, err
		}
	}
	return g, nil
}
