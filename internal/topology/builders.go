package topology

import (
	"fmt"

	"nfvchain/internal/rng"
)

// DefaultLinkDelay is the per-link delay used by generators when the caller
// does not care about absolute delay values. It corresponds to the paper's
// constant L: the sum of average propagation and transmission delay on the
// link between two computing nodes.
const DefaultLinkDelay = 1.0

// Line returns a path topology of n computing nodes c0-c1-…-c(n-1).
func Line(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex(computeID(i), KindCompute)
		if i > 0 {
			g.MustAddEdge(computeID(i-1), computeID(i), DefaultLinkDelay)
		}
	}
	return g
}

// Ring returns a cycle topology of n computing nodes.
func Ring(n int) *Graph {
	g := Line(n)
	if n > 2 {
		g.MustAddEdge(computeID(n-1), computeID(0), DefaultLinkDelay)
	}
	return g
}

// Star returns n computing nodes hanging off one central switch — the
// minimal stand-in for a single-rack deployment where every pair of servers
// is equidistant.
func Star(n int) *Graph {
	g := New()
	g.AddVertex("sw0", KindSwitch)
	for i := 0; i < n; i++ {
		g.AddVertex(computeID(i), KindCompute)
		g.MustAddEdge("sw0", computeID(i), DefaultLinkDelay/2)
	}
	return g
}

// FatTree returns a k-ary fat-tree: (k/2)² core switches, k pods each with
// k/2 aggregation and k/2 edge switches, and (k/2) hosts per edge switch —
// k³/4 computing nodes total. k must be even and ≥ 2.
func FatTree(k int) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity %d must be even and >= 2", k)
	}
	g := New()
	half := k / 2
	// Core switches.
	for i := 0; i < half*half; i++ {
		g.AddVertex(fmt.Sprintf("core%d", i), KindSwitch)
	}
	host := 0
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			agg := fmt.Sprintf("agg%d_%d", p, a)
			g.AddVertex(agg, KindSwitch)
			// Each aggregation switch connects to half core switches.
			for c := 0; c < half; c++ {
				g.MustAddEdge(agg, fmt.Sprintf("core%d", a*half+c), DefaultLinkDelay)
			}
		}
		for e := 0; e < half; e++ {
			edge := fmt.Sprintf("edge%d_%d", p, e)
			g.AddVertex(edge, KindSwitch)
			for a := 0; a < half; a++ {
				g.MustAddEdge(edge, fmt.Sprintf("agg%d_%d", p, a), DefaultLinkDelay)
			}
			for h := 0; h < half; h++ {
				id := computeID(host)
				host++
				g.AddVertex(id, KindCompute)
				g.MustAddEdge(edge, id, DefaultLinkDelay)
			}
		}
	}
	return g, nil
}

// RandomConnected returns a random connected topology of n computing nodes:
// a uniform random spanning tree (via random Prüfer-like attachment) plus
// extra random edges up to the requested edge count m (clamped to the
// complete-graph maximum). Determinism comes from the caller's stream.
func RandomConnected(n, m int, s *rng.Stream) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: random graph needs n >= 1, got %d", n)
	}
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex(computeID(i), KindCompute)
	}
	// Random attachment spanning tree: node i links to a uniform earlier node.
	for i := 1; i < n; i++ {
		j := s.IntN(i)
		g.MustAddEdge(computeID(i), computeID(j), DefaultLinkDelay)
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for g.NumEdges() < m {
		a, b := s.IntN(n), s.IntN(n)
		if a == b {
			continue
		}
		if _, dup := g.EdgeDelay(computeID(a), computeID(b)); dup {
			continue
		}
		g.MustAddEdge(computeID(a), computeID(b), DefaultLinkDelay)
	}
	return g, nil
}

func computeID(i int) string { return fmt.Sprintf("c%d", i) }
