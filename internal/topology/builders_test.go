package topology

import (
	"testing"

	"nfvchain/internal/rng"
)

func TestLine(t *testing.T) {
	g := Line(4)
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Errorf("Line(4): %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if !g.Connected() {
		t.Error("Line(4) disconnected")
	}
	if g.NumVertices() != len(g.ComputeVertices()) {
		t.Error("Line should contain only compute vertices")
	}
	if Line(1).NumEdges() != 0 {
		t.Error("Line(1) should have no edges")
	}
}

func TestRing(t *testing.T) {
	g := Ring(5)
	if g.NumEdges() != 5 {
		t.Errorf("Ring(5) edges = %d, want 5", g.NumEdges())
	}
	for _, v := range g.Vertices() {
		if len(g.Neighbors(v)) != 2 {
			t.Errorf("Ring vertex %s degree %d, want 2", v, len(g.Neighbors(v)))
		}
	}
	// Degenerate rings don't duplicate the line edge.
	if Ring(2).NumEdges() != 1 {
		t.Errorf("Ring(2) edges = %d, want 1", Ring(2).NumEdges())
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if len(g.ComputeVertices()) != 6 {
		t.Errorf("Star(6) compute = %d", len(g.ComputeVertices()))
	}
	if g.NumEdges() != 6 {
		t.Errorf("Star(6) edges = %d", g.NumEdges())
	}
	if len(g.Neighbors("sw0")) != 6 {
		t.Error("hub degree wrong")
	}
	if !g.Connected() {
		t.Error("Star disconnected")
	}
}

func TestFatTree(t *testing.T) {
	g, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.ComputeVertices()); got != 16 {
		t.Errorf("FatTree(4) hosts = %d, want k³/4 = 16", got)
	}
	switches := g.NumVertices() - 16
	if switches != 20 { // 4 core + 8 agg + 8 edge
		t.Errorf("FatTree(4) switches = %d, want 20", switches)
	}
	if !g.Connected() {
		t.Error("FatTree(4) disconnected")
	}
	// Any two hosts in the same pod are ≤ 4 physical hops apart; across pods ≤ 6.
	if d := g.HopDistance("c0", "c15"); d > 6 || d < 2 {
		t.Errorf("cross-pod host distance = %d, want within [2,6]", d)
	}

	for _, bad := range []int{0, 1, 3, -2} {
		if _, err := FatTree(bad); err == nil {
			t.Errorf("FatTree(%d) accepted", bad)
		}
	}
}

func TestRandomConnected(t *testing.T) {
	s := rng.New(42)
	g, err := RandomConnected(30, 60, s)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 30 {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 60 {
		t.Errorf("edges = %d, want 60", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("RandomConnected produced a disconnected graph")
	}

	// Edge count clamped to complete graph.
	g2, err := RandomConnected(4, 100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 6 {
		t.Errorf("clamped edges = %d, want 6", g2.NumEdges())
	}

	if _, err := RandomConnected(0, 0, rng.New(1)); err == nil {
		t.Error("RandomConnected(0) accepted")
	}

	// Determinism under identical seeds.
	a, _ := RandomConnected(15, 25, rng.New(9))
	b, _ := RandomConnected(15, 25, rng.New(9))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("seeded graphs differ in size")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("seeded graphs differ")
		}
	}
}

func TestSNDlib(t *testing.T) {
	wantSizes := map[string][2]int{ // nodes, edges
		"abilene":       {12, 15},
		"polska":        {12, 18},
		"nobel-germany": {17, 26},
		"geant":         {22, 36},
		"germany50":     {50, 88},
	}
	for name, want := range wantSizes {
		t.Run(name, func(t *testing.T) {
			g, err := SNDlib(name)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() != want[0] {
				t.Errorf("%s vertices = %d, want %d", name, g.NumVertices(), want[0])
			}
			if g.NumEdges() != want[1] {
				t.Errorf("%s edges = %d, want %d", name, g.NumEdges(), want[1])
			}
			if !g.Connected() {
				t.Errorf("%s disconnected", name)
			}
			if len(g.ComputeVertices()) != g.NumVertices() {
				t.Errorf("%s should expose all nodes as compute", name)
			}
		})
	}

	if _, err := SNDlib("atlantis"); err == nil {
		t.Error("unknown network accepted")
	}
	names := SNDlibNames()
	if len(names) != 5 {
		t.Errorf("SNDlibNames = %v", names)
	}
}
