// Package topology models the datacenter network G = (V, E) of the paper:
// computing nodes connected through switch nodes. Switches provide
// connectivity but host no VNFs (they are excluded from the placement set V);
// the placement and scheduling layers consume only computing-node capacities
// and inter-node distances/delays from this package.
//
// Besides generic graph construction it provides generators for canonical
// datacenter and WAN topologies (fat-tree, star, line, ring, random) and
// SNDlib-style reference networks scaled from 4 to 50 computing nodes, the
// range the paper's evaluation uses.
package topology

import (
	"fmt"
	"sort"

	"nfvchain/internal/model"
)

// Kind distinguishes computing nodes (which may host VNFs) from switches.
type Kind int

// Vertex kinds. Enums start at one so the zero value is invalid.
const (
	KindCompute Kind = iota + 1
	KindSwitch
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSwitch:
		return "switch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Vertex is a network element.
type Vertex struct {
	ID   string
	Kind Kind
}

// Edge is an undirected link with a propagation+transmission delay (the
// paper's per-hop constant L when uniform).
type Edge struct {
	A, B  string
	Delay float64
}

// Graph is an undirected network graph. Construct with New and mutate with
// AddVertex/AddEdge; it is not safe for concurrent mutation.
type Graph struct {
	vertices map[string]Vertex
	adj      map[string]map[string]float64 // neighbor → delay
	order    []string                      // insertion order for determinism
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[string]Vertex),
		adj:      make(map[string]map[string]float64),
	}
}

// AddVertex inserts a vertex; adding an existing id updates its kind.
func (g *Graph) AddVertex(id string, kind Kind) {
	if _, ok := g.vertices[id]; !ok {
		g.order = append(g.order, id)
		g.adj[id] = make(map[string]float64)
	}
	g.vertices[id] = Vertex{ID: id, Kind: kind}
}

// AddEdge inserts an undirected edge with the given delay. Both endpoints
// must already exist; self-loops and non-positive delays are rejected.
func (g *Graph) AddEdge(a, b string, delay float64) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on %s", a)
	}
	if delay <= 0 {
		return fmt.Errorf("topology: edge %s-%s delay %v must be positive", a, b, delay)
	}
	if _, ok := g.vertices[a]; !ok {
		return fmt.Errorf("topology: edge endpoint %s undefined", a)
	}
	if _, ok := g.vertices[b]; !ok {
		return fmt.Errorf("topology: edge endpoint %s undefined", b)
	}
	g.adj[a][b] = delay
	g.adj[b][a] = delay
	return nil
}

// MustAddEdge is AddEdge that panics on error, for use in generators whose
// inputs are validated by construction.
func (g *Graph) MustAddEdge(a, b string, delay float64) {
	if err := g.AddEdge(a, b, delay); err != nil {
		panic(err)
	}
}

// HasVertex reports whether id exists.
func (g *Graph) HasVertex(id string) bool {
	_, ok := g.vertices[id]
	return ok
}

// Vertex returns the vertex with the given id.
func (g *Graph) Vertex(id string) (Vertex, bool) {
	v, ok := g.vertices[id]
	return v, ok
}

// NumVertices returns the total vertex count (compute + switch).
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	sum := 0
	for _, nbrs := range g.adj {
		sum += len(nbrs)
	}
	return sum / 2
}

// Vertices returns all vertex ids in insertion order.
func (g *Graph) Vertices() []string {
	return append([]string(nil), g.order...)
}

// ComputeVertices returns the ids of computing nodes in insertion order
// (the paper's set V).
func (g *Graph) ComputeVertices() []string {
	var out []string
	for _, id := range g.order {
		if g.vertices[id].Kind == KindCompute {
			out = append(out, id)
		}
	}
	return out
}

// Neighbors returns the ids adjacent to v, sorted.
func (g *Graph) Neighbors(v string) []string {
	nbrs := g.adj[v]
	out := make([]string, 0, len(nbrs))
	for id := range nbrs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// EdgeDelay returns the delay of edge (a,b), or false when absent.
func (g *Graph) EdgeDelay(a, b string) (float64, bool) {
	d, ok := g.adj[a][b]
	return d, ok
}

// Edges returns every undirected edge once, sorted for determinism.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for a, nbrs := range g.adj {
		for b, d := range nbrs {
			if a < b {
				out = append(out, Edge{A: a, B: b, Delay: d})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Connected reports whether every vertex is reachable from the first one.
// The empty graph is considered connected.
func (g *Graph) Connected() bool {
	if len(g.order) == 0 {
		return true
	}
	seen := map[string]bool{g.order[0]: true}
	stack := []string{g.order[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(g.vertices)
}

// ComputeNodes converts the graph's computing vertices into model.Node
// values, assigning each a capacity via the supplied function (called with
// the vertex's index among compute vertices and its id).
func (g *Graph) ComputeNodes(capacity func(i int, id string) float64) []model.Node {
	ids := g.ComputeVertices()
	nodes := make([]model.Node, len(ids))
	for i, id := range ids {
		nodes[i] = model.Node{ID: model.NodeID(id), Name: id, Capacity: capacity(i, id)}
	}
	return nodes
}
