package topology

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	if KindCompute.String() != "compute" || KindSwitch.String() != "switch" {
		t.Error("Kind.String wrong")
	}
	if !strings.Contains(Kind(0).String(), "0") {
		t.Error("invalid kind should render numerically")
	}
}

func TestAddVertexAndEdge(t *testing.T) {
	g := New()
	g.AddVertex("a", KindCompute)
	g.AddVertex("b", KindSwitch)
	if err := g.AddEdge("a", "b", 2.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Errorf("counts = %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if d, ok := g.EdgeDelay("b", "a"); !ok || d != 2.5 {
		t.Errorf("EdgeDelay(b,a) = %v, %v — edges must be symmetric", d, ok)
	}
	if v, ok := g.Vertex("b"); !ok || v.Kind != KindSwitch {
		t.Errorf("Vertex(b) = %+v, %v", v, ok)
	}
	// Re-adding updates the kind without duplicating.
	g.AddVertex("b", KindCompute)
	if g.NumVertices() != 2 {
		t.Error("AddVertex duplicated existing id")
	}
	if v, _ := g.Vertex("b"); v.Kind != KindCompute {
		t.Error("AddVertex did not update kind")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	g.AddVertex("a", KindCompute)
	g.AddVertex("b", KindCompute)
	tests := []struct {
		name    string
		a, b    string
		delay   float64
		wantErr string
	}{
		{"self loop", "a", "a", 1, "self-loop"},
		{"zero delay", "a", "b", 0, "delay"},
		{"missing endpoint a", "x", "b", 1, "undefined"},
		{"missing endpoint b", "a", "y", 1, "undefined"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.a, tt.b, tt.delay)
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("AddEdge = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge did not panic on bad edge")
		}
	}()
	New().MustAddEdge("x", "y", 1)
}

func TestComputeVertices(t *testing.T) {
	g := Star(3)
	cs := g.ComputeVertices()
	if len(cs) != 3 {
		t.Fatalf("Star(3) compute vertices = %v", cs)
	}
	all := g.Vertices()
	if len(all) != 4 {
		t.Errorf("Star(3) total vertices = %d, want 4 (incl. switch)", len(all))
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	for _, id := range []string{"m", "a", "z"} {
		g.AddVertex(id, KindCompute)
	}
	g.MustAddEdge("m", "z", 1)
	g.MustAddEdge("m", "a", 1)
	nbrs := g.Neighbors("m")
	if len(nbrs) != 2 || nbrs[0] != "a" || nbrs[1] != "z" {
		t.Errorf("Neighbors(m) = %v, want [a z]", nbrs)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := Ring(4)
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != 4 {
		t.Fatalf("Ring(4) edges = %d, want 4", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Edges order not deterministic")
		}
		if e1[i].A >= e1[i].B {
			t.Errorf("edge %v not normalized A<B", e1[i])
		}
	}
}

func TestConnected(t *testing.T) {
	if !New().Connected() {
		t.Error("empty graph should be connected")
	}
	g := Line(5)
	if !g.Connected() {
		t.Error("Line(5) disconnected")
	}
	g.AddVertex("island", KindCompute)
	if g.Connected() {
		t.Error("graph with isolated vertex reported connected")
	}
}

func TestComputeNodes(t *testing.T) {
	g := Line(3)
	nodes := g.ComputeNodes(func(i int, id string) float64 { return float64(100 * (i + 1)) })
	if len(nodes) != 3 {
		t.Fatalf("ComputeNodes len = %d", len(nodes))
	}
	if nodes[1].Capacity != 200 || string(nodes[1].ID) != "c1" {
		t.Errorf("nodes[1] = %+v", nodes[1])
	}
}
