package topology

import (
	"math"
	"testing"
	"testing/quick"

	"nfvchain/internal/rng"
)

func TestHopDistances(t *testing.T) {
	g := Line(5)
	d := g.HopDistances("c0")
	for i, want := range []int{0, 1, 2, 3, 4} {
		id := computeID(i)
		if d[id] != want {
			t.Errorf("hop(c0,%s) = %d, want %d", id, d[id], want)
		}
	}
	if got := g.HopDistance("c0", "c4"); got != 4 {
		t.Errorf("HopDistance = %d, want 4", got)
	}
	if got := g.HopDistance("c0", "ghost"); got != -1 {
		t.Errorf("HopDistance to missing vertex = %d, want -1", got)
	}
	if len(New().HopDistances("x")) != 0 {
		t.Error("HopDistances from missing source should be empty")
	}
}

func TestHopDistanceDisconnected(t *testing.T) {
	g := Line(2)
	g.AddVertex("island", KindCompute)
	if got := g.HopDistance("c0", "island"); got != -1 {
		t.Errorf("HopDistance disconnected = %d, want -1", got)
	}
}

func TestComputeHopDistance(t *testing.T) {
	g := Star(3) // every pair of compute nodes is 2 physical hops via sw0
	if got := g.ComputeHopDistance("c0", "c1"); got != 1 {
		t.Errorf("ComputeHopDistance via switch = %d, want 1 inter-node transfer", got)
	}
	if got := g.ComputeHopDistance("c0", "c0"); got != 0 {
		t.Errorf("ComputeHopDistance self = %d, want 0", got)
	}
	g.AddVertex("island", KindCompute)
	if got := g.ComputeHopDistance("c0", "island"); got != -1 {
		t.Errorf("ComputeHopDistance disconnected = %d, want -1", got)
	}
}

func TestDelayDistances(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		g.AddVertex(id, KindCompute)
	}
	g.MustAddEdge("a", "b", 10)
	g.MustAddEdge("b", "c", 10)
	g.MustAddEdge("a", "c", 15) // direct shortcut beats 20 via b
	if got := g.DelayDistance("a", "c"); got != 15 {
		t.Errorf("DelayDistance(a,c) = %v, want 15", got)
	}
	if got := g.DelayDistance("a", "b"); got != 10 {
		t.Errorf("DelayDistance(a,b) = %v, want 10", got)
	}
	g.AddVertex("island", KindCompute)
	if got := g.DelayDistance("a", "island"); !math.IsInf(got, 1) {
		t.Errorf("DelayDistance disconnected = %v, want +Inf", got)
	}
}

func TestDijkstraMatchesBFSOnUnitDelays(t *testing.T) {
	s := rng.New(7)
	g, err := RandomConnected(20, 40, s)
	if err != nil {
		t.Fatal(err)
	}
	hops := g.HopDistances("c0")
	delays := g.DelayDistances("c0")
	for id, h := range hops {
		if d := delays[id]; math.Abs(d-float64(h)*DefaultLinkDelay) > 1e-9 {
			t.Errorf("delay(%s) = %v, hop %d: mismatch on unit-delay graph", id, d, h)
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		g.AddVertex(id, KindCompute)
	}
	g.MustAddEdge("a", "b", 1)
	g.MustAddEdge("b", "c", 1)
	g.MustAddEdge("a", "c", 5) // direct edge is worse than a-b-c
	g.MustAddEdge("c", "d", 1)

	path, delay := g.ShortestPath("a", "c")
	if delay != 2 {
		t.Errorf("delay = %v, want 2", delay)
	}
	want := []string{"a", "b", "c"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, path[i], want[i])
		}
	}

	if p, d := g.ShortestPath("a", "a"); d != 0 || len(p) != 1 || p[0] != "a" {
		t.Errorf("self path = %v, %v", p, d)
	}
	if p, d := g.ShortestPath("a", "ghost"); p != nil || !math.IsInf(d, 1) {
		t.Errorf("missing target = %v, %v", p, d)
	}
	g.AddVertex("island", KindCompute)
	if p, d := g.ShortestPath("a", "island"); p != nil || !math.IsInf(d, 1) {
		t.Errorf("disconnected = %v, %v", p, d)
	}
}

func TestShortestPathConsistentWithDelayDistance(t *testing.T) {
	g, err := RandomConnected(15, 30, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	ids := g.ComputeVertices()
	for _, a := range ids[:5] {
		for _, b := range ids[5:10] {
			path, delay := g.ShortestPath(a, b)
			if math.Abs(delay-g.DelayDistance(a, b)) > 1e-9 {
				t.Errorf("%s→%s: path delay %v vs DelayDistance %v", a, b, delay, g.DelayDistance(a, b))
			}
			// Path really is a walk with that total delay.
			var sum float64
			for i := 1; i < len(path); i++ {
				d, ok := g.EdgeDelay(path[i-1], path[i])
				if !ok {
					t.Fatalf("path uses missing edge %s-%s", path[i-1], path[i])
				}
				sum += d
			}
			if math.Abs(sum-delay) > 1e-9 {
				t.Errorf("path edge sum %v vs reported %v", sum, delay)
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	if got := Line(5).Diameter(); got != 4 {
		t.Errorf("Line(5) diameter = %d, want 4", got)
	}
	if got := Ring(6).Diameter(); got != 3 {
		t.Errorf("Ring(6) diameter = %d, want 3", got)
	}
	if got := New().Diameter(); got != -1 {
		t.Errorf("empty graph diameter = %d, want -1", got)
	}
	g := Line(2)
	g.AddVertex("island", KindCompute)
	if got := g.Diameter(); got != -1 {
		t.Errorf("disconnected diameter = %d, want -1", got)
	}
}

func TestAveragePairDelay(t *testing.T) {
	g := Star(2) // two compute nodes, each DefaultLinkDelay/2 from switch
	want := DefaultLinkDelay
	if got := g.AveragePairDelay(); math.Abs(got-want) > 1e-9 {
		t.Errorf("AveragePairDelay = %v, want %v", got, want)
	}
	if got := Line(1).AveragePairDelay(); got != 0 {
		t.Errorf("single-node AveragePairDelay = %v, want 0", got)
	}
	g2 := Line(2)
	g2.AddVertex("island", KindCompute)
	if got := g2.AveragePairDelay(); got != 0 {
		t.Errorf("disconnected AveragePairDelay = %v, want 0", got)
	}
}

func TestTriangleInequalityOnRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		g, err := RandomConnected(12, 20, s)
		if err != nil {
			return false
		}
		ids := g.ComputeVertices()
		da := g.DelayDistances(ids[0])
		for _, b := range ids {
			db := g.DelayDistances(b)
			for _, c := range ids {
				// d(a,c) <= d(a,b) + d(b,c)
				if da[c] > da[b]+db[c]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPathSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := RandomConnected(10, 18, rng.New(seed))
		if err != nil {
			return false
		}
		ids := g.ComputeVertices()
		for i, a := range ids {
			for _, b := range ids[i+1:] {
				if g.HopDistance(a, b) != g.HopDistance(b, a) {
					return false
				}
				if math.Abs(g.DelayDistance(a, b)-g.DelayDistance(b, a)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
