package topology

import (
	"container/heap"
	"math"
)

// HopDistances returns the minimum hop count from src to every reachable
// vertex (BFS). Unreachable vertices are absent from the map.
func (g *Graph) HopDistances(src string) map[string]int {
	dist := make(map[string]int)
	if !g.HasVertex(src) {
		return dist
	}
	dist[src] = 0
	queue := []string{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if _, seen := dist[w]; !seen {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// HopDistance returns the minimum hop count between a and b, or -1 when
// disconnected.
func (g *Graph) HopDistance(a, b string) int {
	d, ok := g.HopDistances(a)[b]
	if !ok {
		return -1
	}
	return d
}

// ComputeHopDistance returns the hop count between two computing nodes
// counted in *computing-node hops*: switches along the way are free, so a
// path compute→switch→switch→compute is one hop. This matches the paper's
// Eq. 16 where traversing from one used node to the next costs one L. It
// returns -1 when disconnected.
func (g *Graph) ComputeHopDistance(a, b string) int {
	if a == b {
		return 0
	}
	d := g.HopDistance(a, b)
	if d < 0 {
		return -1
	}
	return 1 // adjacent in the compute overlay: one inter-node transfer
}

// priorityQueue implements heap.Interface for Dijkstra.
type pqItem struct {
	id   string
	dist float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int            { return len(q) }
func (q priorityQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// DelayDistances returns the minimum total link delay from src to every
// reachable vertex (Dijkstra).
func (g *Graph) DelayDistances(src string) map[string]float64 {
	dist := make(map[string]float64)
	if !g.HasVertex(src) {
		return dist
	}
	done := make(map[string]bool)
	dist[src] = 0
	pq := &priorityQueue{{id: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if done[it.id] {
			continue
		}
		done[it.id] = true
		for w, d := range g.adj[it.id] {
			nd := it.dist + d
			if cur, seen := dist[w]; !seen || nd < cur {
				dist[w] = nd
				heap.Push(pq, pqItem{id: w, dist: nd})
			}
		}
	}
	return dist
}

// DelayDistance returns the minimum total delay between a and b, or +Inf
// when disconnected.
func (g *Graph) DelayDistance(a, b string) float64 {
	d, ok := g.DelayDistances(a)[b]
	if !ok {
		return math.Inf(1)
	}
	return d
}

// ShortestPath returns a minimum-delay path from a to b as the full vertex
// sequence (including switches) plus its total delay. The second return is
// +Inf and the path nil when disconnected. Ties are broken deterministically
// by predecessor vertex id.
func (g *Graph) ShortestPath(a, b string) ([]string, float64) {
	if !g.HasVertex(a) || !g.HasVertex(b) {
		return nil, math.Inf(1)
	}
	if a == b {
		return []string{a}, 0
	}
	dist := map[string]float64{a: 0}
	prev := make(map[string]string)
	done := make(map[string]bool)
	pq := &priorityQueue{{id: a, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if done[it.id] {
			continue
		}
		done[it.id] = true
		if it.id == b {
			break
		}
		for _, w := range g.Neighbors(it.id) { // sorted → deterministic ties
			nd := it.dist + g.adj[it.id][w]
			if cur, seen := dist[w]; !seen || nd < cur {
				dist[w] = nd
				prev[w] = it.id
				heap.Push(pq, pqItem{id: w, dist: nd})
			}
		}
	}
	total, ok := dist[b]
	if !ok || !done[b] {
		return nil, math.Inf(1)
	}
	var path []string
	for v := b; ; v = prev[v] {
		path = append(path, v)
		if v == a {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, total
}

// Diameter returns the maximum finite hop distance over all vertex pairs,
// or -1 when the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if len(g.order) == 0 || !g.Connected() {
		return -1
	}
	maxD := 0
	for _, v := range g.order {
		for _, d := range g.HopDistances(v) {
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// AveragePairDelay returns the mean shortest-path delay over all unordered
// pairs of *computing* vertices — a natural calibration for the paper's
// constant inter-node latency L. It returns 0 when fewer than two computing
// vertices exist or they are disconnected.
func (g *Graph) AveragePairDelay() float64 {
	ids := g.ComputeVertices()
	if len(ids) < 2 {
		return 0
	}
	var sum float64
	var count int
	for i, a := range ids {
		dd := g.DelayDistances(a)
		for _, b := range ids[i+1:] {
			d, ok := dd[b]
			if !ok {
				return 0
			}
			sum += d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
