package portfolio

import (
	"context"
	"math"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

// annealer is the simulated-annealing solver: Metropolis acceptance over
// elementary (placement, assignment) moves — relocate a VNF instance
// bundle, reassign one request between instances, swap two requests —
// with a periodic large move that applies the repo's Improve local
// searches (see compiled.polish). Deterministic at a fixed seed.
type annealer struct {
	name        string
	seed        uint64
	iters       int
	t0          float64
	cooling     float64
	polishEvery int
	obj         Objective
}

// move undo record: enough to revert any elementary move in place.
type saUndo struct {
	kind         int // 0 relocate, 1 reassign, 2 swap, -1 none
	f, i, j      int
	prevA, prevB int
}

func (a *annealer) Name() string { return a.name }

func (a *annealer) Solve(ctx context.Context, p *model.Problem, report func(Incumbent)) (*Solution, error) {
	c, err := compile(p, a.obj)
	if err != nil {
		return nil, err
	}
	cand, err := c.seedCandidate(a.seed)
	if err != nil {
		return nil, err
	}
	ev := newEvaluator(c)
	t := newTracker(c, a.name, report)
	cur := ev.value(cand)
	t.offer(cand, cur, 0)

	r := rng.Derive(a.seed, "portfolio/"+a.name)
	scratch := c.cloneCandidate(cand)
	temp := a.t0
	budget := a.iters
	if budget <= 0 {
		budget = math.MaxInt
	}
	i := 0
	for ; i < budget; i++ {
		if i&63 == 63 && ctx.Err() != nil {
			break
		}
		if a.polishEvery > 0 && i > 0 && i%a.polishEvery == 0 {
			scratch.copyFrom(cand)
			if obj := c.polish(ev, scratch); obj < cur-improveEps {
				cand.copyFrom(scratch)
				cur = obj
				t.offer(cand, cur, i)
			}
			continue
		}
		u := a.propose(c, cand, r)
		if u.kind < 0 {
			temp *= a.cooling
			continue
		}
		nxt := ev.value(cand)
		if d := nxt - cur; d <= 0 || r.Float64() < math.Exp(-d/math.Max(temp, 1e-12)) {
			cur = nxt
			t.offer(cand, cur, i+1)
		} else {
			revert(cand, u)
		}
		temp *= a.cooling
	}
	return t.solution(i)
}

// propose mutates cand with one random elementary move and returns the
// undo record; kind -1 means the draw produced no applicable move (the rng
// state still advances deterministically).
func (a *annealer) propose(c *compiled, cand *candidate, r *rng.Stream) saUndo {
	none := saUndo{kind: -1}
	switch k := r.IntN(10); {
	case k < 4: // relocate a VNF bundle to another feasible node
		if len(c.vnfIDs) == 0 || len(c.nodeIDs) < 2 {
			return none
		}
		f := r.IntN(len(c.vnfIDs))
		n := r.IntN(len(c.nodeIDs))
		if n == cand.nodeOf[f] || !c.fits(cand, f, n) {
			return none
		}
		u := saUndo{kind: 0, f: f, prevA: cand.nodeOf[f]}
		cand.nodeOf[f] = n
		return u
	case k < 8: // reassign one request to another instance
		if len(c.movable) == 0 {
			return none
		}
		f := c.movable[r.IntN(len(c.movable))]
		i := r.IntN(len(c.items[f]))
		dst := r.IntN(c.inst[f])
		if dst == cand.assign[f][i] {
			return none
		}
		u := saUndo{kind: 1, f: f, i: i, prevA: cand.assign[f][i]}
		cand.assign[f][i] = dst
		return u
	default: // swap two requests across instances of one VNF
		if len(c.movable) == 0 {
			return none
		}
		f := c.movable[r.IntN(len(c.movable))]
		n := len(c.items[f])
		if n < 2 {
			return none
		}
		i, j := r.IntN(n), r.IntN(n)
		if i == j || cand.assign[f][i] == cand.assign[f][j] {
			return none
		}
		u := saUndo{kind: 2, f: f, i: i, j: j, prevA: cand.assign[f][i], prevB: cand.assign[f][j]}
		cand.assign[f][i], cand.assign[f][j] = cand.assign[f][j], cand.assign[f][i]
		return u
	}
}

func revert(cand *candidate, u saUndo) {
	switch u.kind {
	case 0:
		cand.nodeOf[u.f] = u.prevA
	case 1:
		cand.assign[u.f][u.i] = u.prevA
	case 2:
		cand.assign[u.f][u.i], cand.assign[u.f][u.j] = u.prevA, u.prevB
	}
}
