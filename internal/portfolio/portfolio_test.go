package portfolio

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
)

// testProblem builds a feasible joint instance: random chains over the
// VNF catalog, service rates scaled so the hottest VNF runs near ρ≈0.75
// in aggregate, and node capacities with ~40% headroom.
func testProblem(tb testing.TB, vnfs, requests, nodes int, seed uint64) *model.Problem {
	tb.Helper()
	r := rng.Derive(seed, "portfolio/testproblem")
	p := &model.Problem{}
	var totalDemand, maxDemand float64
	for i := 0; i < vnfs; i++ {
		f := model.VNF{
			ID:          model.VNFID(fmt.Sprintf("f%02d", i)),
			Instances:   r.UniformInt(2, 4),
			Demand:      r.Uniform(1, 3),
			ServiceRate: 1, // rescaled below
		}
		p.VNFs = append(p.VNFs, f)
		totalDemand += f.TotalDemand()
		if f.TotalDemand() > maxDemand {
			maxDemand = f.TotalDemand()
		}
	}
	for i := 0; i < requests; i++ {
		chainLen := r.UniformInt(2, min(4, vnfs))
		perm := r.Perm(vnfs)
		var chain []model.VNFID
		for _, f := range perm[:chainLen] {
			chain = append(chain, p.VNFs[f].ID)
		}
		p.Requests = append(p.Requests, model.Request{
			ID:           model.RequestID(fmt.Sprintf("r%03d", i)),
			Chain:        chain,
			Rate:         r.Uniform(1, 10),
			DeliveryProb: r.Uniform(0.9, 1.0),
		})
	}
	// Scale service rates: hottest VNF at aggregate ρ ≈ 0.75.
	for i := range p.VNFs {
		f := &p.VNFs[i]
		var load float64
		for _, req := range p.Requests {
			if req.Uses(f.ID) {
				load += req.EffectiveRate()
			}
		}
		if load > 0 {
			f.ServiceRate = load / (0.75 * float64(f.Instances))
		}
	}
	capacity := math.Max(maxDemand, totalDemand*1.4/float64(nodes))
	for i := 0; i < nodes; i++ {
		p.Nodes = append(p.Nodes, model.Node{
			ID:       model.NodeID(fmt.Sprintf("n%02d", i)),
			Capacity: capacity,
		})
	}
	if err := p.Validate(); err != nil {
		tb.Fatalf("testProblem invalid: %v", err)
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// shortSpecs returns fast-budget variants of every solver for tests.
func shortSpecs(tb testing.TB, texts ...string) []Spec {
	tb.Helper()
	specs, err := ParseSpecs(texts)
	if err != nil {
		tb.Fatalf("ParseSpecs(%v): %v", texts, err)
	}
	return specs
}

func TestSolversProduceValidMonotoneIncumbents(t *testing.T) {
	p := testProblem(t, 8, 40, 6, 11)
	specs := shortSpecs(t,
		"greedy", "bfd", "ffd", "nah",
		"sa:iters=1500;polish=500", "lns:iters=80", "pso:iters=25;particles=8")
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			solver, err := spec.Build(DefaultObjective(), 7)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			var trajectory []Incumbent
			sol, err := solver.Solve(context.Background(), p, func(inc Incumbent) {
				trajectory = append(trajectory, inc)
			})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if len(trajectory) == 0 {
				t.Fatal("no incumbents reported")
			}
			for i := 1; i < len(trajectory); i++ {
				if trajectory[i].Objective >= trajectory[i-1].Objective {
					t.Errorf("incumbent %d objective %v not below %v", i,
						trajectory[i].Objective, trajectory[i-1].Objective)
				}
				if trajectory[i].Iteration < trajectory[i-1].Iteration {
					t.Errorf("incumbent %d iteration %d regressed from %d", i,
						trajectory[i].Iteration, trajectory[i-1].Iteration)
				}
			}
			last := trajectory[len(trajectory)-1]
			if sol.Objective != last.Objective {
				t.Errorf("final objective %v != last incumbent %v", sol.Objective, last.Objective)
			}
			if sol.Incumbents != len(trajectory) {
				t.Errorf("Incumbents = %d, reported %d", sol.Incumbents, len(trajectory))
			}
			if err := sol.Placement.Validate(p); err != nil {
				t.Errorf("final placement invalid: %v", err)
			}
			if err := sol.Schedule.Validate(p); err != nil {
				t.Errorf("final schedule invalid: %v", err)
			}
			if math.IsNaN(sol.Objective) || math.IsInf(sol.Objective, 0) {
				t.Errorf("objective %v not finite", sol.Objective)
			}
		})
	}
}

// TestSolverDeterminism: fixed seed ⇒ identical (iteration, objective)
// incumbent trajectory, run to run.
func TestSolverDeterminism(t *testing.T) {
	p := testProblem(t, 8, 40, 6, 13)
	specs := shortSpecs(t,
		"greedy", "sa:iters=2000;polish=500", "lns:iters=100", "pso:iters=30;particles=8")
	type point struct {
		iter int
		obj  float64
	}
	run := func(spec Spec) []point {
		solver, err := spec.Build(DefaultObjective(), 21)
		if err != nil {
			t.Fatalf("Build(%s): %v", spec.Name, err)
		}
		var traj []point
		if _, err := solver.Solve(context.Background(), p, func(inc Incumbent) {
			traj = append(traj, point{inc.Iteration, inc.Objective})
		}); err != nil {
			t.Fatalf("Solve(%s): %v", spec.Name, err)
		}
		return traj
	}
	for _, spec := range specs {
		a, b := run(spec), run(spec)
		if len(a) != len(b) {
			t.Fatalf("%s: trajectory lengths differ: %d vs %d", spec.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trajectory diverges at %d: %+v vs %+v", spec.Name, i, a[i], b[i])
			}
		}
	}
}

func TestSolveHonorsCancelledContext(t *testing.T) {
	p := testProblem(t, 6, 20, 5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := shortSpecs(t, "greedy")[0]
	solver, err := spec.Build(DefaultObjective(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(ctx, p, nil); err == nil {
		t.Fatal("expected error from pre-cancelled context")
	}
}

func TestSolveDeadlineReturnsBestSoFar(t *testing.T) {
	p := testProblem(t, 8, 40, 6, 17)
	// Unbounded SA: must stop at the deadline with its best-so-far.
	spec := Spec{Name: "sa", Iters: 0, InitialTemp: 2, Cooling: 0.99999, PolishEvery: 5000}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	solver, err := spec.Build(DefaultObjective(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	sol, err := solver.Solve(ctx, p, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: ran %v", elapsed)
	}
	if sol == nil || sol.Placement == nil {
		t.Fatal("no best-so-far solution returned")
	}
}
