package portfolio

import (
	"context"
	"math"

	"nfvchain/internal/model"
	"nfvchain/internal/rng"
	"nfvchain/internal/scheduling"
)

// pso is the particle-swarm solver over placement vectors: each particle
// carries a score per (VNF, node) pair, decoded demand-descending into a
// feasible placement by picking the highest-scoring node that still fits.
// The inner evaluator is the KK scheduler — an RCKK partition polished by
// scheduling.ImproveInPlace, computed once per problem since the
// assignment does not depend on the placement. Deterministic at a fixed
// seed; one iteration is one full swarm sweep.
type pso struct {
	name      string
	seed      uint64
	iters     int
	particles int
	inertia   float64
	cognitive float64
	social    float64
	obj       Objective
}

func (s *pso) Name() string { return s.name }

const psoVMax = 0.5

func (s *pso) Solve(ctx context.Context, p *model.Problem, report func(Incumbent)) (*Solution, error) {
	c, err := compile(p, s.obj)
	if err != nil {
		return nil, err
	}
	seedCand, err := c.seedCandidate(s.seed)
	if err != nil {
		return nil, err
	}
	ev := newEvaluator(c)
	t := newTracker(c, s.name, report)

	// Inner evaluator: one KK schedule shared by every particle.
	cand := c.cloneCandidate(seedCand)
	for _, f := range c.movable {
		if assign, err := (scheduling.RCKK{}).Partition(c.items[f], c.inst[f]); err == nil {
			copy(cand.assign[f], assign)
			scheduling.ImproveInPlace(c.items[f], cand.assign[f], c.inst[f], 0)
		}
	}

	nV, nN := len(c.vnfIDs), len(c.nodeIDs)
	dims := nV * nN
	r := rng.Derive(s.seed, "portfolio/"+s.name)
	pos := make([][]float64, s.particles)
	vel := make([][]float64, s.particles)
	pbestPos := make([][]float64, s.particles)
	pbestObj := make([]float64, s.particles)
	gbestPos := make([]float64, dims)
	gbestNode := make([]int, nV)
	gbestObj := math.Inf(1)
	decoded := make([]int, nV)

	evalAt := func(x []float64) (float64, bool) {
		if !s.decode(c, x, decoded) {
			return math.Inf(1), false
		}
		copy(cand.nodeOf, decoded)
		return ev.value(cand), true
	}

	for i := 0; i < s.particles; i++ {
		pos[i] = make([]float64, dims)
		vel[i] = make([]float64, dims)
		for d := 0; d < dims; d++ {
			pos[i][d] = r.Float64()
			vel[i][d] = (r.Float64() - 0.5) * 0.2
		}
		if i == 0 {
			// Bias the first particle toward the greedy seed placement so
			// the swarm always starts from one feasible decode.
			for f, n := range seedCand.nodeOf {
				pos[0][f*nN+n] += 1.0
			}
		}
		obj, ok := evalAt(pos[i])
		pbestPos[i] = append([]float64(nil), pos[i]...)
		pbestObj[i] = obj
		if ok && obj < gbestObj {
			gbestObj = obj
			copy(gbestPos, pos[i])
			copy(gbestNode, decoded)
		}
	}
	if math.IsInf(gbestObj, 1) {
		return nil, &infeasibleSwarmError{}
	}
	copy(cand.nodeOf, gbestNode)
	t.offer(cand, gbestObj, 0)

	budget := s.iters
	if budget <= 0 {
		budget = math.MaxInt
	}
	iter := 0
	for ; iter < budget; iter++ {
		if ctx.Err() != nil {
			break
		}
		for i := 0; i < s.particles; i++ {
			x, v, pb := pos[i], vel[i], pbestPos[i]
			for d := 0; d < dims; d++ {
				nv := s.inertia*v[d] +
					s.cognitive*r.Float64()*(pb[d]-x[d]) +
					s.social*r.Float64()*(gbestPos[d]-x[d])
				if nv > psoVMax {
					nv = psoVMax
				} else if nv < -psoVMax {
					nv = -psoVMax
				}
				v[d] = nv
				x[d] += nv
			}
			obj, ok := evalAt(x)
			if !ok {
				continue
			}
			if obj < pbestObj[i] {
				pbestObj[i] = obj
				copy(pb, x)
			}
			if obj < gbestObj {
				gbestObj = obj
				copy(gbestPos, x)
				copy(gbestNode, decoded)
				copy(cand.nodeOf, gbestNode)
				t.offer(cand, gbestObj, iter+1)
			}
		}
	}
	copy(cand.nodeOf, gbestNode)
	return t.solution(iter)
}

// decode turns a score vector into a feasible placement: VNFs in
// demand-descending order each take the feasible node with the highest
// score (ties to the lower index); false when some VNF no longer fits.
func (s *pso) decode(c *compiled, x []float64, out []int) bool {
	nN := len(c.nodeIDs)
	for f := range out {
		out[f] = -1
	}
	scratch := candidate{nodeOf: out}
	for _, f := range c.demandOrder {
		best := -1
		var bestScore float64
		for n := 0; n < nN; n++ {
			score := x[f*nN+n]
			if best >= 0 && score <= bestScore {
				continue
			}
			if !c.fits(&scratch, f, n) {
				continue
			}
			best, bestScore = n, score
		}
		if best < 0 {
			return false
		}
		out[f] = best
	}
	return true
}

type infeasibleSwarmError struct{}

func (*infeasibleSwarmError) Error() string {
	return "portfolio: pso: no particle decoded to a feasible placement"
}
