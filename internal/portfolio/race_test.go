package portfolio

import (
	"context"
	"runtime"
	"testing"
	"time"
)

func raceSpecs(tb testing.TB) []Spec {
	return shortSpecs(tb,
		"greedy", "ffd", "nah",
		"sa:iters=1500;polish=500", "lns:iters=80", "pso:iters=25;particles=8")
}

func TestRaceWinsAgainstEveryBaseline(t *testing.T) {
	p := testProblem(t, 8, 40, 6, 19)
	res, err := Race(context.Background(), p, RaceConfig{Specs: raceSpecs(t), Seed: 1})
	if err != nil {
		t.Fatalf("Race: %v", err)
	}
	if res.Best == nil {
		t.Fatal("no winner")
	}
	for _, out := range res.Outcomes {
		if out.Err != "" {
			t.Errorf("solver %s failed: %s", out.Solver, out.Err)
			continue
		}
		if res.Best.Objective > out.Objective+1e-9 {
			t.Errorf("winner %v worse than %s at %v", res.Best.Objective, out.Solver, out.Objective)
		}
	}
	if err := res.Best.Placement.Validate(p); err != nil {
		t.Errorf("winning placement invalid: %v", err)
	}
	if err := res.Best.Schedule.Validate(p); err != nil {
		t.Errorf("winning schedule invalid: %v", err)
	}
}

// TestRaceWorkerCountInvariance: the race result must be identical whether
// the solvers run one at a time or fully parallel — GOMAXPROCS(1) ≡
// GOMAXPROCS(8). Published counts are timing-dependent and excluded.
func TestRaceWorkerCountInvariance(t *testing.T) {
	p := testProblem(t, 8, 40, 6, 23)
	run := func(procs, workers int) *RaceResult {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		res, err := Race(context.Background(), p, RaceConfig{
			Specs:   raceSpecs(t),
			Workers: workers,
			Seed:    5,
		})
		if err != nil {
			t.Fatalf("Race(workers=%d): %v", workers, err)
		}
		return res
	}
	serial := run(1, 1)
	parallel := run(8, 8)
	if serial.Best.Solver != parallel.Best.Solver {
		t.Errorf("winner differs: %s vs %s", serial.Best.Solver, parallel.Best.Solver)
	}
	if serial.Best.Objective != parallel.Best.Objective {
		t.Errorf("winning objective differs: %v vs %v", serial.Best.Objective, parallel.Best.Objective)
	}
	if len(serial.Outcomes) != len(parallel.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(serial.Outcomes), len(parallel.Outcomes))
	}
	for i := range serial.Outcomes {
		a, b := serial.Outcomes[i], parallel.Outcomes[i]
		if a != b {
			t.Errorf("outcome %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestRaceFirstImprovementPublication(t *testing.T) {
	p := testProblem(t, 8, 40, 6, 29)
	var objectives []float64
	res, err := Race(context.Background(), p, RaceConfig{
		Specs: raceSpecs(t),
		Seed:  9,
		OnIncumbent: func(inc Incumbent) {
			objectives = append(objectives, inc.Objective)
		},
	})
	if err != nil {
		t.Fatalf("Race: %v", err)
	}
	if len(objectives) == 0 {
		t.Fatal("no incumbents published")
	}
	for i := 1; i < len(objectives); i++ {
		if objectives[i] >= objectives[i-1] {
			t.Errorf("publication %d (%v) not below %d (%v)", i, objectives[i], i-1, objectives[i-1])
		}
	}
	if res.Published != len(objectives) {
		t.Errorf("Published = %d, callback saw %d", res.Published, len(objectives))
	}
	if last := objectives[len(objectives)-1]; last != res.Best.Objective {
		t.Errorf("last publication %v != winner %v", last, res.Best.Objective)
	}
}

func TestRaceDeadlineReturnsBestSoFar(t *testing.T) {
	p := testProblem(t, 8, 40, 6, 31)
	specs := shortSpecs(t, "greedy", "sa:iters=0;cooling=0.99999")
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	res, err := Race(ctx, p, RaceConfig{Specs: specs, Seed: 2})
	if err != nil {
		t.Fatalf("Race: %v", err)
	}
	if !res.DeadlineExpired {
		t.Error("DeadlineExpired not set")
	}
	if res.Best == nil || res.Best.Placement == nil {
		t.Fatal("no best-so-far result at deadline")
	}
}

func TestRaceRejectsBadConfigs(t *testing.T) {
	p := testProblem(t, 4, 10, 4, 37)
	if _, err := Race(context.Background(), p, RaceConfig{}); err == nil {
		t.Error("K=0 race accepted")
	}
	// Unbounded spec without a deadline must be rejected up front.
	specs := shortSpecs(t, "sa:iters=0")
	if _, err := Race(context.Background(), p, RaceConfig{Specs: specs}); err == nil {
		t.Error("unbounded spec without deadline accepted")
	}
}
