package portfolio

import (
	"context"
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
)

// baseline wraps an existing two-phase pipeline (placement.Algorithm +
// scheduling.Partitioner) as a portfolio Solver. It reports one incumbent
// for the raw pipeline result and, when polish is set, a second one after
// the Improve local searches.
type baseline struct {
	name      string
	placer    placement.Algorithm
	scheduler scheduling.Partitioner
	polish    bool
	obj       Objective
}

func (b *baseline) Name() string { return b.name }

func (b *baseline) Solve(ctx context.Context, p *model.Problem, report func(Incumbent)) (*Solution, error) {
	c, err := compile(p, b.obj)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ev := newEvaluator(c)
	t := newTracker(c, b.name, report)

	res, err := b.placer.Place(p)
	if err != nil {
		return nil, fmt.Errorf("portfolio: %s: %w", b.name, err)
	}
	s, err := scheduling.ScheduleAll(p, b.scheduler)
	if err != nil {
		return nil, fmt.Errorf("portfolio: %s: %w", b.name, err)
	}
	cand := c.newCandidate()
	if err := c.fromModel(res.Placement, s, cand); err != nil {
		return nil, err
	}
	t.offer(cand, ev.value(cand), 1)

	iters := 1
	if b.polish && ctx.Err() == nil {
		iters = 2
		t.offer(cand, c.polish(ev, cand), 2)
	}
	return t.solution(iters)
}
