package portfolio

import (
	"strings"
	"testing"
)

func TestParseSpecDefaultsAndOverrides(t *testing.T) {
	s, err := ParseSpec("sa:iters=5000;seed=7;t0=1.5;cooling=0.99")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Name != "sa" || s.Iters != 5000 || !s.SeedSet || s.Seed != 7 ||
		s.InitialTemp != 1.5 || s.Cooling != 0.99 {
		t.Errorf("unexpected spec: %+v", s)
	}
	for _, name := range SolverNames() {
		if _, err := ParseSpec(name); err != nil {
			t.Errorf("ParseSpec(%q): %v", name, err)
		}
		if _, err := ParseSpec(strings.ToUpper(name)); err != nil {
			t.Errorf("ParseSpec(%q) uppercase: %v", name, err)
		}
	}
	for _, text := range DefaultPortfolio() {
		if _, err := ParseSpec(text); err != nil {
			t.Errorf("default portfolio entry %q: %v", text, err)
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"warp-drive",
		"sa:iters",
		"sa:iters=abc",
		"sa:iters=-5",
		"sa:t0=NaN",
		"sa:t0=+Inf",
		"sa:t0=-1",
		"sa:cooling=1.5",
		"sa:cooling=0",
		"sa:unknown=1",
		"lns:destroy=0",
		"lns:destroy=2",
		"lns:destroy=nan",
		"pso:particles=0",
		"pso:particles=100000",
		"pso:inertia=inf",
		"greedy:seed=-1",
		"greedy:seed=1e9",
	}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) accepted", text)
		}
	}
	if _, err := ParseSpecs(nil); err == nil {
		t.Error("ParseSpecs(nil) accepted (K=0)")
	}
	if _, err := ParseSpecs(make([]string, MaxPortfolioSize+1)); err == nil {
		t.Error("oversized portfolio accepted")
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, text := range []string{
		"greedy", "sa:seed=7;iters=500", "lns", "pso",
		"sa:t0=1.5;cooling=0.99;polish=100",
		"lns:destroy=0.5;iters=77",
		"pso:particles=8;inertia=0.5;cognitive=2;social=0.25",
	} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(String()=%q): %v", s.String(), err)
		}
		if back != s {
			t.Errorf("round trip %q -> %+v -> %q -> %+v", text, s, s.String(), back)
		}
	}
}

// FuzzParseSpec: parsing must never panic, and any accepted spec must
// validate and build.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"sa", "greedy", "pso:particles=16", "sa:iters=100;seed=3",
		"sa:t0=NaN", "sa:t0=Inf", "sa:cooling=1", "lns:destroy=-0.5",
		"pso:particles=-1", "exact:seed=18446744073709551615",
		":=;=", "sa:;;;", "sa:seed=", "\x00", "sa:iters=9999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed spec %q fails Validate: %v", text, err)
		}
		if _, err := s.Build(DefaultObjective(), 1); err != nil {
			t.Fatalf("parsed spec %q fails Build: %v", text, err)
		}
	})
}
