package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nfvchain/internal/model"
)

// RaceConfig parameterizes a portfolio race.
type RaceConfig struct {
	// Specs are the K solvers to race (at least one).
	Specs []Spec
	// Workers bounds solver-level parallelism; 0 means GOMAXPROCS. The
	// race result is invariant to the worker count.
	Workers int
	// Seed derives per-solver seeds for specs that did not pin one.
	Seed uint64
	// Objective overrides the shared objective; zero value means
	// DefaultObjective.
	Objective Objective
	// OnIncumbent, when set, receives the globally-improving incumbents in
	// publication order (first-improvement: an incumbent is published only
	// when it beats everything published before it, across all solvers).
	// It is called under the race's internal lock and must return quickly.
	OnIncumbent func(Incumbent)
}

// SolverOutcome is one racer's final standing.
type SolverOutcome struct {
	Solver     string  `json:"solver"`
	Objective  float64 `json:"objective"`
	Iterations int     `json:"iterations"`
	Incumbents int     `json:"incumbents"`
	Err        string  `json:"err,omitempty"`
}

// RaceResult is the deterministic aggregate of a race.
type RaceResult struct {
	// Best is the winning solution: the minimum final objective across
	// solvers, ties broken by spec order — a deterministic choice that
	// does not depend on publication timing or worker count.
	Best *Solution
	// Outcomes holds one entry per spec, in spec order.
	Outcomes []SolverOutcome
	// Published counts first-improvement publications to OnIncumbent. It
	// depends on goroutine interleaving and is NOT deterministic — it
	// exists for observability, not for comparisons.
	Published int
	// DeadlineExpired reports whether the race ended because ctx's
	// deadline passed.
	DeadlineExpired bool
}

// Race runs every spec's solver over the problem on a bounded worker pool,
// sharing a best-so-far incumbent stream, and returns the deterministic
// winner. Solvers cut short by ctx contribute their best-so-far; the race
// fails only when every solver fails.
func Race(ctx context.Context, p *model.Problem, cfg RaceConfig) (*RaceResult, error) {
	if len(cfg.Specs) == 0 {
		return nil, errors.New("portfolio: race needs at least one solver spec")
	}
	if len(cfg.Specs) > MaxPortfolioSize {
		return nil, fmt.Errorf("portfolio: %d specs exceeds the maximum of %d", len(cfg.Specs), MaxPortfolioSize)
	}
	obj := cfg.Objective.withDefaults()
	solvers := make([]Solver, len(cfg.Specs))
	for i, s := range cfg.Specs {
		if s.Iters == 0 {
			if _, ok := ctx.Deadline(); !ok {
				return nil, fmt.Errorf("portfolio: spec %q has no iteration budget and the race has no deadline", s.String())
			}
		}
		sv, err := s.Build(obj, deriveSeed(cfg.Seed, i))
		if err != nil {
			return nil, err
		}
		solvers[i] = sv
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(solvers) {
		workers = len(solvers)
	}

	shared := &sharedIncumbent{on: cfg.OnIncumbent}
	results := make([]*Solution, len(solvers))
	errs := make([]error, len(solvers))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(solvers) {
					return
				}
				results[i], errs[i] = solvers[i].Solve(ctx, p, shared.publish)
			}
		}()
	}
	wg.Wait()

	res := &RaceResult{
		Published:       shared.count,
		DeadlineExpired: errors.Is(ctx.Err(), context.DeadlineExceeded),
	}
	bestIdx := -1
	for i, sol := range results {
		out := SolverOutcome{Solver: solvers[i].Name()}
		if errs[i] != nil {
			out.Err = errs[i].Error()
		}
		if sol != nil {
			out.Objective = sol.Objective
			out.Iterations = sol.Iterations
			out.Incumbents = sol.Incumbents
			if bestIdx < 0 || sol.Objective < results[bestIdx].Objective {
				bestIdx = i
			}
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("portfolio: every solver failed; first error: %w", firstError(errs))
	}
	res.Best = results[bestIdx]
	return res, nil
}

// deriveSeed assigns independent per-solver seeds from the race seed.
func deriveSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9e3779b97f4a7c15
}

// sharedIncumbent is the race-wide first-improvement filter.
type sharedIncumbent struct {
	mu    sync.Mutex
	has   bool
	best  float64
	count int
	on    func(Incumbent)
}

func (s *sharedIncumbent) publish(inc Incumbent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.has && inc.Objective >= s.best-improveEps {
		return
	}
	s.has = true
	s.best = inc.Objective
	s.count++
	if s.on != nil {
		s.on(inc)
	}
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return errors.New("unknown failure")
}
