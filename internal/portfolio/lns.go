package portfolio

import (
	"context"
	"math"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/rng"
	"nfvchain/internal/scheduling"
)

// lns is the large-neighborhood-search solver: each iteration destroys
// part of the incumbent (close a node via placement.PlanEvacuation,
// unplace a random VNF subset, or scramble one VNF's assignment) and
// repairs it (best-fit re-placement, scheduling.ImproveInPlace), accepting
// repairs under a threshold-acceptance rule. The destroy/repair moves
// reuse the repo's existing local searches rather than duplicating them.
// Deterministic at a fixed seed.
type lns struct {
	name    string
	seed    uint64
	iters   int
	destroy float64 // fraction of VNFs unplaced by the shake move
	obj     Objective
}

func (l *lns) Name() string { return l.name }

func (l *lns) Solve(ctx context.Context, p *model.Problem, report func(Incumbent)) (*Solution, error) {
	c, err := compile(p, l.obj)
	if err != nil {
		return nil, err
	}
	cand, err := c.seedCandidate(l.seed)
	if err != nil {
		return nil, err
	}
	ev := newEvaluator(c)
	t := newTracker(c, l.name, report)
	cur := ev.value(cand)
	scratch := c.cloneCandidate(cand)
	if polished := c.polish(ev, scratch); polished < cur {
		cand.copyFrom(scratch)
		cur = polished
	}
	t.offer(cand, cur, 0)

	r := rng.Derive(l.seed, "portfolio/"+l.name)
	trial := c.cloneCandidate(cand)
	budget := l.iters
	if budget <= 0 {
		budget = math.MaxInt
	}
	i := 0
	for ; i < budget; i++ {
		if i&15 == 15 && ctx.Err() != nil {
			break
		}
		trial.copyFrom(cand)
		switch r.IntN(3) {
		case 0:
			l.closeNode(c, trial, r)
		case 1:
			if !l.shake(c, trial, r) {
				continue
			}
		case 2:
			l.scramble(c, trial, r)
		}
		obj := ev.value(trial)
		if obj < cur+math.Abs(cur)*0.02 { // threshold acceptance: allow ≤2% uphill drift
			cand.copyFrom(trial)
			cur = obj
			if obj < t.best-improveEps {
				// Polish strict improvements before publishing — into a
				// scratch copy, kept only when it helps: polish optimizes
				// makespan and node count, which can disagree with the race
				// objective, and cand must always match cur.
				scratch.copyFrom(cand)
				if polished := c.polish(ev, scratch); polished < obj {
					cand.copyFrom(scratch)
					cur = polished
				}
				t.offer(cand, cur, i+1)
			}
		}
	}
	return t.solution(i)
}

// closeNode evacuates one random used node through the placement package's
// PlanEvacuation move; a failed plan leaves trial unchanged.
func (l *lns) closeNode(c *compiled, trial *candidate, r *rng.Stream) {
	pl := c.toPlacement(trial)
	used := pl.UsedNodes()
	if len(used) < 2 {
		return
	}
	victim := used[r.IntN(len(used))]
	if moves, ok := placement.PlanEvacuation(c.p, pl, victim); ok {
		for fid, nid := range moves {
			trial.nodeOf[c.vnfIndex[fid]] = c.nodeIndex[nid]
		}
	}
}

// shake unplaces a random destroy-fraction of VNFs and re-places them
// best-fit in demand order with a randomized tie among feasible nodes;
// false when the repair dead-ends (trial must be discarded).
func (l *lns) shake(c *compiled, trial *candidate, r *rng.Stream) bool {
	v := len(c.vnfIDs)
	if v == 0 || len(c.nodeIDs) < 2 {
		return false
	}
	k := int(l.destroy * float64(v))
	if k < 1 {
		k = 1
	}
	perm := r.Perm(v)
	removed := perm[:k]
	for _, f := range removed {
		trial.nodeOf[f] = -1
	}
	// Repair in demand-descending order, best-fit: a coin flip between the
	// two smallest feasible residuals keeps the repair greedy but
	// diversified.
	load := make([]float64, len(c.nodeIDs))
	for g, ng := range trial.nodeOf {
		if ng >= 0 {
			load[ng] += c.demand[g]
		}
	}
	for _, f := range c.demandOrder {
		if trial.nodeOf[f] != -1 {
			continue
		}
		best, second := -1, -1
		for n := range c.nodeIDs {
			if !c.fits(trial, f, n) {
				continue
			}
			res := c.cap[n] - load[n]
			switch {
			case best < 0 || res < c.cap[best]-load[best]:
				best, second = n, best
			case second < 0 || res < c.cap[second]-load[second]:
				second = n
			}
		}
		if best < 0 {
			return false
		}
		pick := best
		if second >= 0 && r.IntN(2) == 1 {
			pick = second
		}
		trial.nodeOf[f] = pick
		load[pick] += c.demand[f]
	}
	return true
}

// scramble reassigns a random quarter of one VNF's requests and rebalances
// with the scheduling package's in-place local search.
func (l *lns) scramble(c *compiled, trial *candidate, r *rng.Stream) {
	if len(c.movable) == 0 {
		return
	}
	f := c.movable[r.IntN(len(c.movable))]
	n := len(c.items[f])
	moves := n / 4
	if moves < 1 {
		moves = 1
	}
	for t := 0; t < moves; t++ {
		trial.assign[f][r.IntN(n)] = r.IntN(c.inst[f])
	}
	scheduling.ImproveInPlace(c.items[f], trial.assign[f], c.inst[f], 0)
}
