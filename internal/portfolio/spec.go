package portfolio

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
)

// Spec selects and parameterizes one portfolio solver. The textual form is
// "name" or "name:key=value;key=value" — parameters are semicolon-
// separated so comma can separate specs in CLI lists, e.g.
// "portfolio:greedy,sa:iters=5000;seed=7,lns,pso".
type Spec struct {
	// Name is one of SolverNames.
	Name string
	// Seed overrides the racer-assigned seed when SeedSet is true.
	Seed    uint64
	SeedSet bool
	// Iters is the iteration budget; 0 means run until ctx is done (only
	// valid when the race has a deadline).
	Iters int
	// InitialTemp and Cooling parameterize sa (Metropolis temperature
	// schedule T_i = t0·cooling^i); PolishEvery is its large-move period.
	InitialTemp float64
	Cooling     float64
	PolishEvery int
	// DestroyFraction is lns's shake intensity in (0,1].
	DestroyFraction float64
	// Particles, Inertia, Cognitive, Social parameterize pso.
	Particles int
	Inertia   float64
	Cognitive float64
	Social    float64
}

// SolverNames lists the accepted Spec names: baselines wrapping the
// existing two-phase pipelines, then the metaheuristic tier.
func SolverNames() []string {
	return []string{"greedy", "bfd", "ffd", "nah", "exact", "sa", "lns", "pso"}
}

// DefaultPortfolio is the spec list raced when a request names none.
func DefaultPortfolio() []string {
	return []string{"greedy", "ffd", "nah", "sa", "lns", "pso"}
}

// MaxPortfolioSize bounds K, the number of specs in one race.
const MaxPortfolioSize = 64

// ParseSpec parses one solver spec string.
func ParseSpec(text string) (Spec, error) {
	name, params, _ := strings.Cut(strings.TrimSpace(text), ":")
	s := defaultSpec(strings.ToLower(strings.TrimSpace(name)))
	if s.Name == "" {
		return Spec{}, fmt.Errorf("portfolio: unknown solver %q (want one of %s)",
			name, strings.Join(SolverNames(), ", "))
	}
	if params != "" {
		for _, kv := range strings.Split(params, ";") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Spec{}, fmt.Errorf("portfolio: spec %q: parameter %q is not key=value", text, kv)
			}
			if err := s.setParam(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
				return Spec{}, fmt.Errorf("portfolio: spec %q: %w", text, err)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ParseSpecs parses a full portfolio; it rejects empty lists (K=0) and
// lists beyond MaxPortfolioSize.
func ParseSpecs(texts []string) ([]Spec, error) {
	if len(texts) == 0 {
		return nil, fmt.Errorf("portfolio: empty portfolio (need at least one solver spec)")
	}
	if len(texts) > MaxPortfolioSize {
		return nil, fmt.Errorf("portfolio: %d specs exceeds the maximum of %d", len(texts), MaxPortfolioSize)
	}
	specs := make([]Spec, 0, len(texts))
	for _, t := range texts {
		s, err := ParseSpec(t)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// defaultSpec returns the named solver's default parameters, or a zero
// Spec for unknown names.
func defaultSpec(name string) Spec {
	switch name {
	case "greedy", "bfd", "ffd", "nah", "exact":
		return Spec{Name: name, Iters: 1}
	case "sa":
		return Spec{Name: name, Iters: 20000, InitialTemp: 2.0, Cooling: 0.9997, PolishEvery: 2000}
	case "lns":
		return Spec{Name: name, Iters: 400, DestroyFraction: 0.3}
	case "pso":
		return Spec{Name: name, Iters: 150, Particles: 16, Inertia: 0.72, Cognitive: 1.49, Social: 1.49}
	default:
		return Spec{}
	}
}

func (s *Spec) setParam(key, val string) error {
	switch key {
	case "seed":
		u, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("seed %q: %v", val, err)
		}
		s.Seed, s.SeedSet = u, true
	case "iters":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("iters %q: %v", val, err)
		}
		s.Iters = n
	case "polish":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("polish %q: %v", val, err)
		}
		s.PolishEvery = n
	case "particles":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("particles %q: %v", val, err)
		}
		s.Particles = n
	case "t0":
		return parseFinite(val, &s.InitialTemp)
	case "cooling":
		return parseFinite(val, &s.Cooling)
	case "destroy":
		return parseFinite(val, &s.DestroyFraction)
	case "inertia":
		return parseFinite(val, &s.Inertia)
	case "cognitive":
		return parseFinite(val, &s.Cognitive)
	case "social":
		return parseFinite(val, &s.Social)
	default:
		return fmt.Errorf("unknown parameter %q", key)
	}
	return nil
}

func parseFinite(val string, dst *float64) error {
	x, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("value %q: %v", val, err)
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("value %q is not finite", val)
	}
	*dst = x
	return nil
}

// Validate checks a Spec's fields, including specs constructed directly
// rather than parsed.
func (s Spec) Validate() error {
	valid := false
	for _, n := range SolverNames() {
		if s.Name == n {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("portfolio: unknown solver %q (want one of %s)",
			s.Name, strings.Join(SolverNames(), ", "))
	}
	if s.Iters < 0 {
		return fmt.Errorf("portfolio: %s: iters %d must be >= 0", s.Name, s.Iters)
	}
	if s.PolishEvery < 0 {
		return fmt.Errorf("portfolio: %s: polish %d must be >= 0", s.Name, s.PolishEvery)
	}
	switch s.Name {
	case "sa":
		if math.IsNaN(s.InitialTemp) || math.IsInf(s.InitialTemp, 0) || s.InitialTemp <= 0 {
			return fmt.Errorf("portfolio: sa: t0 %v must be a positive finite number", s.InitialTemp)
		}
		if math.IsNaN(s.Cooling) || !(s.Cooling > 0 && s.Cooling < 1) {
			return fmt.Errorf("portfolio: sa: cooling %v must be in (0,1)", s.Cooling)
		}
	case "lns":
		if math.IsNaN(s.DestroyFraction) || !(s.DestroyFraction > 0 && s.DestroyFraction <= 1) {
			return fmt.Errorf("portfolio: lns: destroy %v must be in (0,1]", s.DestroyFraction)
		}
	case "pso":
		if s.Particles < 1 || s.Particles > 4096 {
			return fmt.Errorf("portfolio: pso: particles %d must be in [1,4096]", s.Particles)
		}
		for _, c := range []struct {
			name string
			v    float64
		}{{"inertia", s.Inertia}, {"cognitive", s.Cognitive}, {"social", s.Social}} {
			if math.IsNaN(c.v) || math.IsInf(c.v, 0) || c.v < 0 || c.v > 10 {
				return fmt.Errorf("portfolio: pso: %s %v must be finite in [0,10]", c.name, c.v)
			}
		}
	}
	return nil
}

// String renders the spec back into its canonical textual form: the name
// followed by every parameter that differs from the solver's defaults,
// using setParam's key names so the output re-parses to an equal Spec.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	sep := byte(':')
	add := func(key, val string) {
		b.WriteByte(sep)
		sep = ';'
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	ftoa := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := defaultSpec(s.Name)
	if s.SeedSet {
		add("seed", strconv.FormatUint(s.Seed, 10))
	}
	if s.Iters != d.Iters {
		add("iters", strconv.Itoa(s.Iters))
	}
	if s.InitialTemp != d.InitialTemp {
		add("t0", ftoa(s.InitialTemp))
	}
	if s.Cooling != d.Cooling {
		add("cooling", ftoa(s.Cooling))
	}
	if s.PolishEvery != d.PolishEvery {
		add("polish", strconv.Itoa(s.PolishEvery))
	}
	if s.DestroyFraction != d.DestroyFraction {
		add("destroy", ftoa(s.DestroyFraction))
	}
	if s.Particles != d.Particles {
		add("particles", strconv.Itoa(s.Particles))
	}
	if s.Inertia != d.Inertia {
		add("inertia", ftoa(s.Inertia))
	}
	if s.Cognitive != d.Cognitive {
		add("cognitive", ftoa(s.Cognitive))
	}
	if s.Social != d.Social {
		add("social", ftoa(s.Social))
	}
	return b.String()
}

// Build constructs the solver a Spec describes. seed is the effective seed
// (racer-assigned unless the spec pinned one); obj is the shared
// objective.
func (s Spec) Build(obj Objective, seed uint64) (Solver, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.SeedSet {
		seed = s.Seed
	}
	switch s.Name {
	case "greedy":
		return &baseline{name: s.Name, placer: &placement.BFDSU{Seed: seed},
			scheduler: scheduling.RCKK{}, polish: true, obj: obj}, nil
	case "bfd":
		return &baseline{name: s.Name, placer: placement.BFD{}, scheduler: scheduling.RCKK{}, obj: obj}, nil
	case "ffd":
		return &baseline{name: s.Name, placer: placement.FFD{}, scheduler: scheduling.RCKK{}, obj: obj}, nil
	case "nah":
		return &baseline{name: s.Name, placer: placement.NAH{}, scheduler: scheduling.RCKK{}, obj: obj}, nil
	case "exact":
		return &baseline{name: s.Name, placer: &placement.Exact{}, scheduler: &scheduling.Exact{}, obj: obj}, nil
	case "sa":
		return &annealer{name: s.Name, seed: seed, iters: s.Iters, t0: s.InitialTemp,
			cooling: s.Cooling, polishEvery: s.PolishEvery, obj: obj}, nil
	case "lns":
		return &lns{name: s.Name, seed: seed, iters: s.Iters, destroy: s.DestroyFraction, obj: obj}, nil
	case "pso":
		return &pso{name: s.Name, seed: seed, iters: s.Iters, particles: s.Particles,
			inertia: s.Inertia, cognitive: s.Cognitive, social: s.Social, obj: obj}, nil
	}
	return nil, fmt.Errorf("portfolio: unknown solver %q", s.Name)
}
