// Package portfolio optimizes chain placement and request scheduling
// jointly behind one Solver interface and races several solvers against a
// deadline. It is the anytime tier above the fixed two-phase pipeline: the
// greedy and exact pipelines are wrapped as baseline solvers, and a
// metaheuristic tier — simulated annealing and large-neighborhood search
// over (placement, assignment) moves plus particle-swarm optimization over
// placement score vectors with the KK schedulers as inner evaluator —
// searches beyond them. Every solver is deterministic at a fixed seed and
// reports monotone incumbents; Race runs K solvers on parallel workers
// sharing a best-so-far incumbent and returns the deterministic winner.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"time"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
)

// Objective scalarizes the paper's two objectives — nodes in service
// (Eq. 14) and mean per-request latency (Eq. 16) — into one lower-is-better
// value so heterogeneous solvers compare incumbents on a single axis.
type Objective struct {
	// NodeWeight multiplies the nodes-in-service count.
	NodeWeight float64
	// LatencyWeight multiplies the mean per-request latency (seconds).
	LatencyWeight float64
	// LinkDelay is the inter-node hop delay L of Eq. 16.
	LinkDelay float64
	// UnstablePenalty replaces Eq. 11's response time on an instance with
	// Λ ≥ µ, scaled by the overload ratio so moves toward stability are
	// still rewarded. Metaheuristics may traverse unstable schedules; final
	// solutions pass through admission control downstream.
	UnstablePenalty float64
}

// DefaultObjective balances the two terms so that opening one extra node
// trades against ~40ms of mean request latency.
func DefaultObjective() Objective {
	return Objective{NodeWeight: 1, LatencyWeight: 25, LinkDelay: 1e-3, UnstablePenalty: 10}
}

func (o Objective) withDefaults() Objective {
	d := DefaultObjective()
	if o.NodeWeight == 0 && o.LatencyWeight == 0 {
		o.NodeWeight, o.LatencyWeight = d.NodeWeight, d.LatencyWeight
	}
	if o.LinkDelay == 0 {
		o.LinkDelay = d.LinkDelay
	}
	if o.UnstablePenalty == 0 {
		o.UnstablePenalty = d.UnstablePenalty
	}
	return o
}

// Incumbent is one monotone improvement reported by a solver: the best
// (placement, schedule) pair seen so far with its objective and timestamp.
type Incumbent struct {
	Solver    string
	Objective float64
	// Iteration is the solver-local iteration that produced the incumbent;
	// it is deterministic at a fixed seed, unlike the wall-clock fields.
	Iteration int
	Elapsed   time.Duration
	At        time.Time
	Placement *model.Placement
	Schedule  *model.Schedule
}

// Solution is a solver's final answer: its best incumbent plus run totals.
type Solution struct {
	Solver     string
	Objective  float64
	Iterations int
	// Incumbents counts the solver-local monotone improvements reported.
	Incumbents int
	Placement  *model.Placement
	Schedule   *model.Schedule
}

// Solver optimizes placement and scheduling jointly. Solve runs until its
// iteration budget is exhausted or ctx is done, reporting each strict
// improvement through report (which may be nil), and returns its best
// solution; when ctx expires after at least one incumbent was found, Solve
// returns that best-so-far with a nil error. Implementations are
// deterministic at a fixed seed: the (iteration, objective) incumbent
// trajectory is identical across runs.
type Solver interface {
	Name() string
	Solve(ctx context.Context, p *model.Problem, report func(Incumbent)) (*Solution, error)
}

// capEps mirrors the placement package's capacity tolerance.
const capEps = 1e-9

// improveEps is the strict-improvement threshold for incumbent publication.
const improveEps = 1e-12

// compiled is the index-space view of a Problem shared by all solvers:
// dense slices instead of ID-keyed maps, so candidate evaluation is a few
// linear scans.
type compiled struct {
	p   *model.Problem
	obj Objective

	nodeIDs    []model.NodeID
	nodeIndex  map[model.NodeID]int
	cap        []float64
	nodeExtras [][]float64

	vnfIDs    []model.VNFID
	vnfIndex  map[model.VNFID]int
	demand    []float64   // TotalDemand per VNF
	vnfExtras [][]float64 // TotalExtras per VNF
	inst      []int       // M_f
	mu        []float64   // µ_f

	items [][]scheduling.Item // per VNF, in ItemsFor order
	rawW  [][]float64         // per VNF item: raw rate λ_r (items carry λ_r/P_r)

	chains [][]int // per request: chain as VNF indices
	pos    [][]int // per request: item index of the request within each chain VNF

	// movable lists VNF indices with ≥1 item and ≥2 instances — the ones
	// scheduling moves can act on. demandOrder sorts VNF indices by total
	// demand descending (ties by ID), the order every repair packs in.
	movable     []int
	demandOrder []int
	dims        int
}

func compile(p *model.Problem, obj Objective) (*compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("portfolio: %w", err)
	}
	if err := placement.Precheck(p); err != nil {
		return nil, fmt.Errorf("portfolio: %w", err)
	}
	c := &compiled{
		p:         p,
		obj:       obj.withDefaults(),
		nodeIndex: make(map[model.NodeID]int, len(p.Nodes)),
		vnfIndex:  make(map[model.VNFID]int, len(p.VNFs)),
		dims:      p.ExtraResources(),
	}
	for i, n := range p.Nodes {
		c.nodeIDs = append(c.nodeIDs, n.ID)
		c.nodeIndex[n.ID] = i
		c.cap = append(c.cap, n.Capacity)
		row := make([]float64, c.dims)
		copy(row, n.Extras)
		c.nodeExtras = append(c.nodeExtras, row)
	}
	itemPos := make([]map[model.RequestID]int, len(p.VNFs))
	for i, f := range p.VNFs {
		c.vnfIDs = append(c.vnfIDs, f.ID)
		c.vnfIndex[f.ID] = i
		c.demand = append(c.demand, f.TotalDemand())
		row := make([]float64, c.dims)
		copy(row, f.TotalExtras())
		c.vnfExtras = append(c.vnfExtras, row)
		c.inst = append(c.inst, f.Instances)
		c.mu = append(c.mu, f.ServiceRate)

		items := scheduling.ItemsFor(p, f.ID)
		c.items = append(c.items, items)
		itemPos[i] = make(map[model.RequestID]int, len(items))
		raw := make([]float64, len(items))
		for j, it := range items {
			itemPos[i][it.ID] = j
		}
		c.rawW = append(c.rawW, raw)
		if len(items) > 0 && f.Instances > 1 {
			c.movable = append(c.movable, i)
		}
	}
	for _, r := range p.Requests {
		chain := make([]int, len(r.Chain))
		pos := make([]int, len(r.Chain))
		for j, fid := range r.Chain {
			f := c.vnfIndex[fid]
			chain[j] = f
			pos[j] = itemPos[f][r.ID]
			c.rawW[f][pos[j]] = r.Rate
		}
		c.chains = append(c.chains, chain)
		c.pos = append(c.pos, pos)
	}
	c.demandOrder = make([]int, len(p.VNFs))
	for i := range c.demandOrder {
		c.demandOrder[i] = i
	}
	// Insertion sort keeps ordering stable and avoids a sort.Slice closure.
	for i := 1; i < len(c.demandOrder); i++ {
		for j := i; j > 0; j-- {
			a, b := c.demandOrder[j-1], c.demandOrder[j]
			if c.demand[a] > c.demand[b] || (c.demand[a] == c.demand[b] && c.vnfIDs[a] <= c.vnfIDs[b]) {
				break
			}
			c.demandOrder[j-1], c.demandOrder[j] = b, a
		}
	}
	return c, nil
}

// candidate is a joint solution in index space: nodeOf[f] hosts VNF f's
// whole instance bundle (Eq. 2); assign[f][i] is the instance serving item
// i of VNF f.
type candidate struct {
	nodeOf []int
	assign [][]int
}

func (c *compiled) newCandidate() *candidate {
	cand := &candidate{nodeOf: make([]int, len(c.vnfIDs)), assign: make([][]int, len(c.vnfIDs))}
	for f := range c.items {
		cand.assign[f] = make([]int, len(c.items[f]))
	}
	return cand
}

func (cand *candidate) copyFrom(o *candidate) {
	copy(cand.nodeOf, o.nodeOf)
	for f := range cand.assign {
		copy(cand.assign[f], o.assign[f])
	}
}

func (c *compiled) cloneCandidate(cand *candidate) *candidate {
	out := c.newCandidate()
	out.copyFrom(cand)
	return out
}

// toPlacement materializes the model-space placement of cand.
func (c *compiled) toPlacement(cand *candidate) *model.Placement {
	pl := model.NewPlacement()
	for f, n := range cand.nodeOf {
		pl.Assign(c.vnfIDs[f], c.nodeIDs[n])
	}
	return pl
}

// toSchedule materializes the model-space schedule of cand.
func (c *compiled) toSchedule(cand *candidate) *model.Schedule {
	s := model.NewSchedule()
	for f, items := range c.items {
		fid := c.vnfIDs[f]
		for i, it := range items {
			s.Assign(it.ID, fid, cand.assign[f][i])
		}
	}
	return s
}

// fromModel imports a model-space solution into index space.
func (c *compiled) fromModel(pl *model.Placement, s *model.Schedule, cand *candidate) error {
	for f, fid := range c.vnfIDs {
		nid, ok := pl.Node(fid)
		if !ok {
			return fmt.Errorf("portfolio: vnf %s unplaced", fid)
		}
		n, ok := c.nodeIndex[nid]
		if !ok {
			return fmt.Errorf("portfolio: vnf %s on unknown node %s", fid, nid)
		}
		cand.nodeOf[f] = n
		for i, it := range c.items[f] {
			k, ok := s.Instance(it.ID, fid)
			if !ok {
				return fmt.Errorf("portfolio: request %s unassigned at %s", it.ID, fid)
			}
			cand.assign[f][i] = k
		}
	}
	return nil
}

// applyPlacement overwrites cand's placement from a model-space placement.
func (c *compiled) applyPlacement(pl *model.Placement, cand *candidate) {
	for f, fid := range c.vnfIDs {
		if nid, ok := pl.Node(fid); ok {
			cand.nodeOf[f] = c.nodeIndex[nid]
		}
	}
}

// evaluator scores candidates against the compiled objective, reusing
// scratch across calls so the metaheuristic inner loops stay allocation-
// lean.
type evaluator struct {
	c     *compiled
	stamp []int // per node, epoch marks for distinct-node counting
	epoch int
	eff   [][]float64 // per VNF instance: Λ (effective)
	raw   [][]float64 // per VNF instance: Σλ (raw)
	w     [][]float64 // per VNF instance: W(f,k)
}

func newEvaluator(c *compiled) *evaluator {
	e := &evaluator{c: c, stamp: make([]int, len(c.nodeIDs))}
	for f := range c.vnfIDs {
		e.eff = append(e.eff, make([]float64, c.inst[f]))
		e.raw = append(e.raw, make([]float64, c.inst[f]))
		e.w = append(e.w, make([]float64, c.inst[f]))
	}
	return e
}

// value computes the scalar objective of cand: NodeWeight·(nodes in
// service) + LatencyWeight·(mean Eq. 16 latency), with UnstablePenalty
// standing in for Eq. 11 on overloaded instances.
func (e *evaluator) value(cand *candidate) float64 {
	c := e.c
	e.epoch++
	nodes := 0
	for _, n := range cand.nodeOf {
		if e.stamp[n] != e.epoch {
			e.stamp[n] = e.epoch
			nodes++
		}
	}
	for f := range c.vnfIDs {
		eff, raw, w := e.eff[f], e.raw[f], e.w[f]
		for k := range eff {
			eff[k], raw[k] = 0, 0
		}
		items := c.items[f]
		asg := cand.assign[f]
		for i := range items {
			k := asg[i]
			eff[k] += items[i].Weight
			raw[k] += c.rawW[f][i]
		}
		mu := c.mu[f]
		for k := range w {
			switch {
			case raw[k] <= 0:
				w[k] = 0
			case eff[k] >= mu:
				w[k] = c.obj.UnstablePenalty * (1 + eff[k]/mu)
			default:
				rho := eff[k] / mu
				w[k] = rho / ((1 - rho) * raw[k])
			}
		}
	}
	var total float64
	for r, chain := range c.chains {
		var lat float64
		e.epoch++
		span := 0
		for j, f := range chain {
			lat += e.w[f][cand.assign[f][c.pos[r][j]]]
			n := cand.nodeOf[f]
			if e.stamp[n] != e.epoch {
				e.stamp[n] = e.epoch
				span++
			}
		}
		if span > 1 {
			lat += float64(span-1) * c.obj.LinkDelay
		}
		total += lat
	}
	mean := 0.0
	if len(c.chains) > 0 {
		mean = total / float64(len(c.chains))
	}
	return c.obj.NodeWeight*float64(nodes) + c.obj.LatencyWeight*mean
}

// fits reports whether moving VNF f onto node n keeps every resource
// dimension within capacity. VNFs with nodeOf < 0 (mid-repair) are ignored.
func (c *compiled) fits(cand *candidate, f, n int) bool {
	load := c.demand[f]
	for g, ng := range cand.nodeOf {
		if ng == n && g != f {
			load += c.demand[g]
		}
	}
	if load > c.cap[n]+capEps {
		return false
	}
	for d := 0; d < c.dims; d++ {
		l := c.vnfExtras[f][d]
		for g, ng := range cand.nodeOf {
			if ng == n && g != f {
				l += c.vnfExtras[g][d]
			}
		}
		if l > c.nodeExtras[n][d]+capEps {
			return false
		}
	}
	return true
}

// seedCandidate builds the deterministic starting point every metaheuristic
// shares: BFD placement (BFDSU fallback when BFD dead-ends) plus an RCKK
// schedule.
func (c *compiled) seedCandidate(seed uint64) (*candidate, error) {
	res, err := (placement.BFD{}).Place(c.p)
	if err != nil {
		bfdsu := &placement.BFDSU{Seed: seed}
		res, err = bfdsu.Place(c.p)
		if err != nil {
			return nil, fmt.Errorf("portfolio: no feasible initial placement: %w", err)
		}
	}
	s, err := scheduling.ScheduleAll(c.p, scheduling.RCKK{})
	if err != nil {
		return nil, fmt.Errorf("portfolio: initial schedule: %w", err)
	}
	cand := c.newCandidate()
	if err := c.fromModel(res.Placement, s, cand); err != nil {
		return nil, err
	}
	return cand, nil
}

// polish tightens cand in place with the repo's existing local searches —
// placement.Improve node evacuation and per-VNF scheduling.ImproveInPlace —
// and returns the resulting objective. This is the portfolio's large
// neighborhood move; it reuses the two Improve passes rather than
// duplicating their move logic.
func (c *compiled) polish(ev *evaluator, cand *candidate) float64 {
	pl := c.toPlacement(cand)
	if better, err := placement.Improve(c.p, pl, 0); err == nil {
		c.applyPlacement(better, cand)
	}
	for _, f := range c.movable {
		scheduling.ImproveInPlace(c.items[f], cand.assign[f], c.inst[f], 0)
	}
	return ev.value(cand)
}

// tracker keeps a solver's best-so-far candidate and forwards each strict
// improvement to the report callback as a monotone incumbent stream.
type tracker struct {
	c      *compiled
	name   string
	start  time.Time
	report func(Incumbent)
	best   float64
	cand   *candidate
	count  int
}

func newTracker(c *compiled, name string, report func(Incumbent)) *tracker {
	return &tracker{c: c, name: name, start: time.Now(), report: report}
}

// offer records cand when it strictly improves on the tracker's best and
// reports it; returns whether it was an improvement.
func (t *tracker) offer(cand *candidate, obj float64, iter int) bool {
	if t.cand != nil && obj >= t.best-improveEps {
		return false
	}
	t.best = obj
	if t.cand == nil {
		t.cand = t.c.cloneCandidate(cand)
	} else {
		t.cand.copyFrom(cand)
	}
	t.count++
	if t.report != nil {
		t.report(Incumbent{
			Solver:    t.name,
			Objective: obj,
			Iteration: iter,
			Elapsed:   time.Since(t.start),
			At:        time.Now(),
			Placement: t.c.toPlacement(t.cand),
			Schedule:  t.c.toSchedule(t.cand),
		})
	}
	return true
}

// solution finalizes the tracker into the solver's answer.
func (t *tracker) solution(iters int) (*Solution, error) {
	if t.cand == nil {
		return nil, errors.New("portfolio: no incumbent found before cancellation")
	}
	return &Solution{
		Solver:     t.name,
		Objective:  t.best,
		Iterations: iters,
		Incumbents: t.count,
		Placement:  t.c.toPlacement(t.cand),
		Schedule:   t.c.toSchedule(t.cand),
	}, nil
}
