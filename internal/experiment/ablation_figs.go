package experiment

import (
	"fmt"

	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/stats"
)

// AblationPlacement isolates BFDSU's two design choices (DESIGN.md §4) by
// comparing, over the Fig. 5 workload sweep:
//
//   - BFDSU — used-first search + weighted randomized best fit (the paper);
//   - BFD — same best-fit core, derandomized and without used/spare lists;
//   - Random — feasibility-only placement (no fit preference at all).
//
// The Y axis is the average utilization of nodes in service (Objective 1).
// The sweep rides the same cross-point work queue as the main placement
// figures.
func AblationPlacement(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-placement",
		Title:  "Placement ablation: weighted used-first best fit vs its components",
		XLabel: "requests",
		YLabel: "avg utilization of used nodes",
	}
	algs := func(seed uint64) []placement.Algorithm {
		return []placement.Algorithm{
			&placement.BFDSU{Seed: seed},
			placement.BFD{},
			&placement.Random{Seed: seed},
		}
	}
	if err := placementSweep(t, cfg, requestSweepPoints(15, 10, placementLoadFactor), algs, utilizationMetric); err != nil {
		return nil, err
	}
	for _, label := range []string{"BFDSU", "BFD", "Random"} {
		t.Note("%s mean utilization: %.2f%%", label, t.Mean(label)*100)
	}
	return t, nil
}

// AblationScheduling compares the three scheduling philosophies over the
// Fig. 11 sweep (5 instances, P = 0.98): differencing (RCKK), sorted greedy
// (LPT — CGA with the decreasing sort) and cyclic dealing (RoundRobin). The
// pairing-rule ablation itself lives in the scheduling package's unit tests:
// forward pairing collapses all mass onto one instance and random pairing
// random-walks to instability, which is precisely why Algorithm 2 combines
// in reverse order — neither variant survives near-saturation comparison.
// The Y axis is the mean per-instance response time.
func AblationScheduling(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-scheduling",
		Title:  "Scheduling ablation: differencing vs sorted greedy vs round robin",
		XLabel: "requests",
		YLabel: "mean W per instance (s)",
	}
	const m, p = 5, 0.98
	algs := []scheduling.Partitioner{scheduling.RCKK{}, scheduling.CGA{}, scheduling.RoundRobin{}}
	var tps []trialParams
	for _, n := range []int{15, 25, 50, 100, 200} {
		tps = append(tps, trialParams{n: n, m: m, p: p, rhoRaw: responseFigRho})
	}
	perPoint, err := schedulingSweep(cfg, tps, algs,
		func(cfg Config, tp trialParams, trial int) uint64 {
			return cfg.Seed + uint64(trial)*2654435761 + uint64(tp.n*41)
		})
	if err != nil {
		return nil, fmt.Errorf("ablation-scheduling: %w", err)
	}
	for pi, tp := range tps {
		sums := make(map[string]*stats.Summary)
		skipped := 0
		for _, results := range perPoint[pi] {
			allStable := true
			for i := range algs {
				allStable = allStable && results[i].stable
			}
			if !allStable {
				skipped++
				continue
			}
			for i, alg := range algs {
				if sums[alg.Name()] == nil {
					sums[alg.Name()] = &stats.Summary{}
				}
				sums[alg.Name()].Add(results[i].meanW)
			}
		}
		for _, alg := range algs {
			if s := sums[alg.Name()]; s != nil {
				t.AddPoint(alg.Name(), float64(tp.n), s.Mean())
			}
		}
		if skipped > 0 {
			t.Note("n=%d: %d unstable trials skipped", tp.n, skipped)
		}
	}
	return t, nil
}
