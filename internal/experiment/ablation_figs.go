package experiment

import (
	"errors"
	"fmt"

	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/stats"
)

// AblationPlacement isolates BFDSU's two design choices (DESIGN.md §4) by
// comparing, over the Fig. 5 workload sweep:
//
//   - BFDSU — used-first search + weighted randomized best fit (the paper);
//   - BFD — same best-fit core, derandomized and without used/spare lists;
//   - Random — feasibility-only placement (no fit preference at all).
//
// The Y axis is the average utilization of nodes in service (Objective 1).
func AblationPlacement(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-placement",
		Title:  "Placement ablation: weighted used-first best fit vs its components",
		XLabel: "requests",
		YLabel: "avg utilization of used nodes",
	}
	algs := func(seed uint64) []placement.Algorithm {
		return []placement.Algorithm{
			&placement.BFDSU{Seed: seed},
			placement.BFD{},
			&placement.Random{Seed: seed},
		}
	}
	failures := make(map[string]int)
	for _, pt := range requestSweepPoints(15, 10) {
		sums := make(map[string]*stats.Summary)
		for trial := 0; trial < cfg.PlacementTrials; trial++ {
			seed := cfg.Seed + uint64(trial)*1000003 + uint64(pt.x*7919)
			prob, err := placementProblem(seed, pt.vnfs, pt.requests, pt.nodes, placementLoadFactor)
			if err != nil {
				return nil, fmt.Errorf("experiment: ablation-placement: %w", err)
			}
			for _, alg := range algs(seed) {
				res, err := alg.Place(prob)
				if err != nil {
					if errors.Is(err, placement.ErrInfeasible) {
						failures[alg.Name()]++
						continue
					}
					return nil, fmt.Errorf("experiment: ablation-placement: %s: %w", alg.Name(), err)
				}
				if sums[alg.Name()] == nil {
					sums[alg.Name()] = &stats.Summary{}
				}
				sums[alg.Name()].Add(res.Placement.AverageUtilization(prob))
			}
		}
		for _, alg := range algs(0) {
			if s := sums[alg.Name()]; s != nil {
				t.AddPoint(alg.Name(), pt.x, s.Mean())
			}
		}
	}
	for name, n := range failures {
		t.Note("%s failed to find a feasible placement in %d trials (skipped)", name, n)
	}
	for _, label := range []string{"BFDSU", "BFD", "Random"} {
		t.Note("%s mean utilization: %.2f%%", label, t.Mean(label)*100)
	}
	return t, nil
}

// AblationScheduling compares the three scheduling philosophies over the
// Fig. 11 sweep (5 instances, P = 0.98): differencing (RCKK), sorted greedy
// (LPT — CGA with the decreasing sort) and cyclic dealing (RoundRobin). The
// pairing-rule ablation itself lives in the scheduling package's unit tests:
// forward pairing collapses all mass onto one instance and random pairing
// random-walks to instability, which is precisely why Algorithm 2 combines
// in reverse order — neither variant survives near-saturation comparison.
// The Y axis is the mean per-instance response time.
func AblationScheduling(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-scheduling",
		Title:  "Scheduling ablation: differencing vs sorted greedy vs round robin",
		XLabel: "requests",
		YLabel: "mean W per instance (s)",
	}
	const m, p = 5, 0.98
	algs := []scheduling.Partitioner{scheduling.RCKK{}, scheduling.CGA{}, scheduling.RoundRobin{}}
	for _, n := range []int{15, 25, 50, 100, 200} {
		sums := make(map[string]*stats.Summary)
		skipped := 0
		for trial := 0; trial < cfg.SchedulingTrials; trial++ {
			seed := cfg.Seed + uint64(trial)*2654435761 + uint64(n*41)
			results := make(map[string]trialResult, len(algs))
			allStable := true
			for _, alg := range algs {
				res, err := schedulingTrial(seed, trialParams{n: n, m: m, p: p, rhoRaw: responseFigRho}, alg)
				if err != nil {
					return nil, fmt.Errorf("ablation-scheduling (n=%d): %s: %w", n, alg.Name(), err)
				}
				results[alg.Name()] = res
				allStable = allStable && res.stable
			}
			if !allStable {
				skipped++
				continue
			}
			for name, res := range results {
				if sums[name] == nil {
					sums[name] = &stats.Summary{}
				}
				sums[name].Add(res.meanW)
			}
		}
		for _, alg := range algs {
			if s := sums[alg.Name()]; s != nil {
				t.AddPoint(alg.Name(), float64(n), s.Mean())
			}
		}
		if skipped > 0 {
			t.Note("n=%d: %d unstable trials skipped", n, skipped)
		}
	}
	return t, nil
}
