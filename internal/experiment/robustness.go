package experiment

import (
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/queueing"
	"nfvchain/internal/simulate"
)

// Robustness probes the paper's central modeling assumption: every service
// instance is an M/M/1 queue. The simulator runs one instance at utilization
// ρ under three service-time distributions with identical mean rate —
// deterministic (CV 0), exponential (CV 1, the model's assumption) and
// heavy-tailed lognormal (CV ≈ 1.31) — and the table reports the relative
// error of the Eq. 12 (M/M/1) latency prediction against the simulated
// truth. Exponential error hovers near zero; deterministic shows the model
// overestimating (up to ~2× at high ρ, the Pollaczek–Khinchine factor);
// lognormal shows it underestimating. Notes record how much of the gap
// Kingman's G/G/1 formula recovers.
func Robustness(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "robustness",
		Title:  "M/M/1 model error vs service-time distribution (one instance, λ varies, µ=100)",
		XLabel: "utilization",
		YLabel: "relative error of Eq. 12 prediction",
	}
	const mu = 100.0
	dists := []struct {
		name string
		d    simulate.ServiceDist
	}{
		{"deterministic", simulate.ServiceDeterministic},
		{"exponential", simulate.ServiceExponential},
		{"lognormal", simulate.ServiceLogNormal},
	}
	var kingmanWorst float64
	// One reusable simulator serves every (ρ, distribution) cell: each Reset
	// retains the agenda, packet arena, ring buffers and sample slice of the
	// previous run, so the 15 long-horizon runs allocate run state once. The
	// Results is consumed before the next Reset, as the contract requires.
	sim := simulate.NewSimulator()
	for _, rho := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
		lambda := rho * mu
		for _, dist := range dists {
			prob := &model.Problem{
				Nodes:    []model.Node{{ID: "n", Capacity: 1}},
				VNFs:     []model.VNF{{ID: "f", Instances: 1, Demand: 0.5, ServiceRate: mu}},
				Requests: []model.Request{{ID: "r", Chain: []model.VNFID{"f"}, Rate: lambda, DeliveryProb: 1}},
			}
			sched := model.NewSchedule()
			sched.Assign("r", "f", 0)
			if err := sim.Reset(simulate.Config{
				Problem: prob, Schedule: sched,
				Horizon: 2000, Warmup: 100,
				ServiceDist: dist.d, Seed: cfg.Seed + uint64(rho*100),
			}); err != nil {
				return nil, fmt.Errorf("experiment: robustness (ρ=%.1f, %s): %w", rho, dist.name, err)
			}
			res, err := sim.Run()
			if err != nil {
				return nil, fmt.Errorf("experiment: robustness (ρ=%.1f, %s): %w", rho, dist.name, err)
			}
			measured := res.Latency.Mean()
			mm1, err := (queueing.MM1{Lambda: lambda, Mu: mu}).MeanResponseTime()
			if err != nil {
				return nil, err
			}
			t.AddPoint(dist.name, rho, (mm1-measured)/measured)

			kg, err := (queueing.Kingman{Lambda: lambda, Mu: mu, CA: 1, CS: dist.d.CV()}).MeanResponseTime()
			if err != nil {
				return nil, err
			}
			if e := abs((kg - measured) / measured); e > kingmanWorst {
				kingmanWorst = e
			}
		}
	}
	t.Note("Kingman's G/G/1 formula tracks every distribution within %.1f%%", kingmanWorst*100)
	t.Note("Eq. 12 is exact only under exponential service; deterministic service halves the wait, heavy tails inflate it")
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
