package experiment

import (
	"fmt"

	"nfvchain/internal/cluster"
	"nfvchain/internal/core"
	"nfvchain/internal/workload"
)

// clusterPolicies are the routing policies compared at every region count.
var clusterPolicies = []cluster.Router{
	cluster.LocalityFirst{},
	cluster.LeastLoaded{},
	cluster.Weighted{},
}

// Cluster scales the paper's single-datacenter pipeline out to a region: a
// generated workload is partitioned across N datacenters (requests dealt
// round-robin, 25% promoted to cluster-level global flows present in every
// region), each region is solved independently with BFDSU+RCKK, and the N
// per-region simulators are composed under one global clock with a fixed
// 5 ms WAN entry hop. Series per routing policy: mean packet latency and the
// fraction of global arrivals the router kept in their home region. Locality-
// first pins latency to the single-DC baseline (zero WAN hops by
// construction); least-loaded and weighted trade WAN hops for balance, so
// their latency carries the hop cost weighted by how often they leave home.
func Cluster(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "cluster",
		Title:  "Region-scale composition: N datacenters under one clock (BFDSU+RCKK, 25% global flows, 5ms WAN hop)",
		XLabel: "datacenters",
		YLabel: "mean packet latency (s) / local-service fraction",
	}
	const (
		horizon    = 20.0
		warmup     = 2.0
		wanLatency = 0.005
		globalFrac = 0.25
	)
	regionCounts := []int{1, 2, 4, 8}

	type polResult struct {
		meanW, localFrac float64
	}
	perPoint, err := forEachPointTrial(len(regionCounts), cfg.PlacementTrials,
		func(point, trial int) ([3]polResult, error) {
			var out [3]polResult
			n := regionCounts[point]
			seed := cfg.Seed + uint64(trial)*2654435761
			wcfg := workload.DefaultConfig()
			wcfg.Seed = seed
			wcfg.NumVNFs = 8
			wcfg.NumRequests = 16 * n // keep per-region load constant as N grows
			wcfg.NumNodes = 6
			wcfg.RateMax = 40
			prob, err := workload.Generate(wcfg)
			if err != nil {
				return out, fmt.Errorf("cluster: %w", err)
			}
			cs, err := core.OptimizeCluster(prob, core.ClusterOptions{
				Datacenters:    n,
				GlobalFraction: globalFrac,
				Options:        core.Options{Seed: seed, LinkDelay: 0.001},
			})
			if err != nil {
				return out, fmt.Errorf("cluster: %w", err)
			}
			for pi, pol := range clusterPolicies {
				res, err := core.SimulateCluster(cs, core.ClusterSimConfig{
					Sim: core.SimulationConfig{
						Horizon: horizon,
						Warmup:  warmup,
						Seed:    seed,
					},
					WANLatency: wanLatency,
					Router:     pol,
					Seed:       seed,
					// The windowed driver is bit-identical to sequential and
					// cheaper per event; the figure's numbers do not depend
					// on this knob.
					Workers: 1,
				})
				if err != nil {
					return out, fmt.Errorf("cluster: %s: %w", pol.Name(), err)
				}
				local := 1.0
				if routed := res.RoutedLocal + res.WANHops; routed > 0 {
					local = float64(res.RoutedLocal) / float64(routed)
				}
				out[pi] = polResult{meanW: res.Latency.Mean(), localFrac: local}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	for pi, n := range regionCounts {
		for mi, pol := range clusterPolicies {
			var meanW, local float64
			for _, tr := range perPoint[pi] {
				meanW += tr[mi].meanW
				local += tr[mi].localFrac
			}
			trials := float64(len(perPoint[pi]))
			t.AddPoint("mean latency ("+pol.Name()+")", float64(n), meanW/trials)
			t.AddPoint("local fraction ("+pol.Name()+")", float64(n), local/trials)
		}
	}

	t.Note("per-region load is held constant (16 requests/region); X scales the fleet, not the pressure")
	t.Note("locality-first never pays the %.0fms WAN hop; the gap to least-loaded/weighted is the hop cost times their off-home fraction", wanLatency*1e3)
	return t, nil
}
