package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"nfvchain/internal/core"
	"nfvchain/internal/model"
	"nfvchain/internal/portfolio"
)

// portfolioBaselines are the single-pipeline racers; the race's winner can
// never be worse than the best of them because they run inside the race.
var portfolioBaselines = []string{"greedy", "ffd", "nah"}

// portfolioMetaheuristics are the anytime racers whose incumbent
// trajectories become the time-to-quality curves. Iteration budgets (not
// wall clock) bound them, so the curves are deterministic at a fixed seed.
var portfolioMetaheuristics = []string{
	"sa:iters=6000;polish=1500",
	"lns:iters=120",
	"pso:iters=40;particles=8",
}

// portfolioRaceDeadline caps each race's wall clock. The budgets above
// finish far inside it on the ablation sizes, so the deadline is a safety
// net, not the stopping rule — determinism is preserved.
const portfolioRaceDeadline = time.Second

// portfolioPoints is the ablation sweep: the same generator family as the
// placement figures at three scales.
var portfolioPoints = []struct {
	vnfs, requests, nodes int
}{
	{8, 50, 6},
	{10, 100, 8},
	{15, 200, 10},
}

// Portfolio extends the ablation family to the full solver portfolio
// (ISSUE: anytime racing). Per sweep point it races baselines (greedy, FFD,
// NAH) against the metaheuristic tier (SA, LNS, PSO) under a 1s deadline and
// records, in the notes, the winner versus the best single baseline. The
// table's series are time-to-quality curves at the largest point: X is the
// iteration checkpoint, Y the best objective any incumbent of that solver
// had reached by then (monotone non-increasing by construction).
func Portfolio(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "portfolio",
		Title:  "Solver portfolio: anytime racing vs single baselines",
		XLabel: "iteration checkpoint",
		YLabel: "best objective (lower is better)",
	}
	lineup := append(append([]string{}, portfolioBaselines...), portfolioMetaheuristics...)
	var curveSeed uint64
	var curveProblem *model.Problem
	for pi, pt := range portfolioPoints {
		seed := cfg.Seed + uint64(pi)*9176
		p, err := placementProblem(seed, pt.vnfs, pt.requests, pt.nodes, placementLoadFactor)
		if err != nil {
			return nil, fmt.Errorf("portfolio: point %d: %w", pi, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), portfolioRaceDeadline)
		_, res, err := core.SolveRace(ctx, p, core.RaceOptions{
			Portfolio: lineup,
			Seed:      seed,
			LinkDelay: 0.001,
		})
		cancel()
		if err != nil {
			return nil, fmt.Errorf("portfolio: point %d: %w", pi, err)
		}
		bestBase, bestBaseName := math.Inf(1), ""
		for _, oc := range res.Outcomes {
			if oc.Err != "" {
				continue
			}
			for _, b := range portfolioBaselines {
				if oc.Solver == b && oc.Objective < bestBase {
					bestBase, bestBaseName = oc.Objective, oc.Solver
				}
			}
		}
		if math.IsInf(bestBase, 1) {
			t.Note("n=%d: race winner %s %.4f (no baseline racer finished)",
				pt.requests, res.Best.Solver, res.Best.Objective)
		} else {
			t.Note("n=%d: race winner %s %.4f vs best baseline %s %.4f (%.2f%% better)",
				pt.requests, res.Best.Solver, res.Best.Objective, bestBaseName, bestBase,
				(bestBase-res.Best.Objective)/bestBase*100)
		}
		curveSeed, curveProblem = seed, p
	}
	if err := addTimeToQuality(t, curveProblem, curveSeed); err != nil {
		return nil, err
	}
	return t, nil
}

// addTimeToQuality runs each metaheuristic solo on the largest sweep point
// (the race keeps only per-solver summaries, so the full trajectories are
// re-derived here — deterministic at the same seed) and converts its
// incumbent stream into a best-so-far curve. All curves share one geometric
// checkpoint grid so the table rows line up; each starts at the first
// checkpoint its solver has reached an incumbent by, holds its value between
// improvements, and stays flat past its own iteration budget, so a flat tail
// means "budget exhausted".
func addTimeToQuality(t *Table, p *model.Problem, seed uint64) error {
	obj := portfolio.DefaultObjective()
	type curve struct {
		label string
		incs  []portfolio.Incumbent
	}
	var curves []curve
	maxLast := 1
	for _, specStr := range portfolioMetaheuristics {
		spec, err := portfolio.ParseSpec(specStr)
		if err != nil {
			return fmt.Errorf("portfolio: %w", err)
		}
		solver, err := spec.Build(obj, seed)
		if err != nil {
			return fmt.Errorf("portfolio: %w", err)
		}
		var incs []portfolio.Incumbent
		ctx, cancel := context.WithTimeout(context.Background(), portfolioRaceDeadline)
		_, err = solver.Solve(ctx, p, func(inc portfolio.Incumbent) {
			incs = append(incs, inc)
		})
		cancel()
		if err != nil {
			return fmt.Errorf("portfolio: %s trajectory: %w", spec.Name, err)
		}
		label, _ := metaLabel(spec.Name)
		curves = append(curves, curve{label: label, incs: incs})
		if n := len(incs); n > 0 {
			if last := incs[n-1].Iteration; last > maxLast {
				maxLast = last
			}
		}
	}
	grid := checkpointGrid(maxLast)
	for _, c := range curves {
		if len(c.incs) == 0 {
			continue
		}
		for _, cp := range grid {
			// A checkpoint before the curve's first incumbent has no
			// quality to report yet; emitting incs[0].Objective there would
			// claim quality before it was reached.
			if cp < c.incs[0].Iteration {
				continue
			}
			best := c.incs[0].Objective
			for _, inc := range c.incs {
				if inc.Iteration > cp {
					break
				}
				best = inc.Objective
			}
			t.AddPoint(c.label, float64(cp), best)
		}
	}
	return nil
}

// metaLabel maps a metaheuristic solver name to its curve label.
func metaLabel(solver string) (string, bool) {
	switch solver {
	case "sa":
		return "SA", true
	case "lns":
		return "LNS", true
	case "pso":
		return "PSO", true
	}
	return "", false
}

// checkpointGrid returns a 1-2-5 geometric grid clipped to maxIter, always
// ending exactly at maxIter so every curve's final value is on the table.
func checkpointGrid(maxIter int) []int {
	if maxIter < 1 {
		maxIter = 1
	}
	var grid []int
	for base := 1; base <= maxIter; base *= 10 {
		for _, m := range []int{1, 2, 5} {
			if cp := base * m; cp < maxIter {
				grid = append(grid, cp)
			}
		}
	}
	return append(grid, maxIter)
}
