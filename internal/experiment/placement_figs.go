package experiment

import (
	"errors"
	"fmt"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/stats"
)

// sweepPoint is one X point of a placement sweep: the instance shape and the
// load factor its problems are generated at.
type sweepPoint struct {
	x                     float64
	vnfs, requests, nodes int
	loadFactor            float64
}

// placementAlgorithms returns fresh instances of the compared algorithms,
// seeded per trial. Besides the paper's three series (BFDSU, FFD, NAH) we
// include WFD: textbook first-fit-decreasing packs far better than the FFD
// behavior the paper reports (≈69% utilization over 10.8 nodes), which
// matches a worst-fit/spreading discipline — WFD is that discipline, so the
// pair brackets any reasonable reading of the baseline (see EXPERIMENTS.md).
func placementAlgorithms(seed uint64) []placement.Algorithm {
	return []placement.Algorithm{
		&placement.BFDSU{Seed: seed},
		placement.FFD{},
		placement.WFD{},
		placement.NAH{},
	}
}

// placementMetric extracts one Y value from a placement result.
type placementMetric func(p *model.Problem, res *placement.Result) float64

// placementTrialOutcome is one trial's metric per algorithm (ok=false marks
// an infeasible skip).
type placementTrialOutcome struct {
	value map[string]float64
	ok    map[string]bool
}

// placementSweep runs the algorithms over `trials` random instances for
// every sweep point and adds the metric's mean per algorithm to the table.
// All (point, trial) pairs share one cross-point work queue — workers start
// the next point's trials while a slow trial of the previous point is still
// running — and the per-point aggregation folds trials in index order, so
// the result is bit-identical to a serial sweep. Infeasible trials (possible
// for the baselines on tight instances) are skipped and counted in a note.
func placementSweep(t *Table, cfg Config, points []sweepPoint,
	algorithms func(seed uint64) []placement.Algorithm, metric placementMetric) error {
	perPoint, err := forEachPointTrial(len(points), cfg.PlacementTrials,
		func(point, trial int) (placementTrialOutcome, error) {
			pt := points[point]
			out := placementTrialOutcome{value: map[string]float64{}, ok: map[string]bool{}}
			seed := cfg.Seed + uint64(trial)*1000003 + uint64(pt.x*7919)
			prob, err := placementProblem(seed, pt.vnfs, pt.requests, pt.nodes, pt.loadFactor)
			if err != nil {
				return out, fmt.Errorf("experiment: %s: %w", t.ID, err)
			}
			for _, alg := range algorithms(seed) {
				res, err := alg.Place(prob)
				if err != nil {
					if errors.Is(err, placement.ErrInfeasible) {
						continue
					}
					return out, fmt.Errorf("experiment: %s: %s: %w", t.ID, alg.Name(), err)
				}
				out.value[alg.Name()] = metric(prob, res)
				out.ok[alg.Name()] = true
			}
			return out, nil
		})
	if err != nil {
		return err
	}

	failures := make(map[string]int)
	for pi, pt := range points {
		sums := make(map[string]*stats.Summary)
		for _, trial := range perPoint[pi] {
			for _, alg := range algorithms(0) {
				name := alg.Name()
				if !trial.ok[name] {
					failures[name]++
					continue
				}
				if sums[name] == nil {
					sums[name] = &stats.Summary{}
				}
				sums[name].Add(trial.value[name])
			}
		}
		for _, alg := range algorithms(0) {
			if s := sums[alg.Name()]; s != nil {
				t.AddPoint(alg.Name(), pt.x, s.Mean())
			}
		}
	}
	for _, alg := range algorithms(0) {
		if n := failures[alg.Name()]; n > 0 {
			t.Note("%s failed to find a feasible placement in %d trials (skipped)", alg.Name(), n)
		}
	}
	return nil
}

func utilizationMetric(p *model.Problem, res *placement.Result) float64 {
	return res.Placement.AverageUtilization(p)
}

// requestSweepPoints is the Fig. 5/10 X axis: request counts from 30 to 1000.
func requestSweepPoints(vnfs, nodes int, loadFactor float64) []sweepPoint {
	var pts []sweepPoint
	for _, n := range []int{30, 100, 200, 400, 600, 800, 1000} {
		pts = append(pts, sweepPoint{x: float64(n), vnfs: vnfs, requests: n, nodes: nodes, loadFactor: loadFactor})
	}
	return pts
}

// nodeSweepPoints is the Fig. 7/8/9 X axis: node counts from 10 to 30 with
// 15 VNFs, total demand pinned to the fig7ReferenceNodes deployment (the
// load factor shrinks as nodes grow, so extra nodes mean extra *room*, not
// extra work). (The paper sweeps from 6; our demand reference needs ≥10
// nodes of room, see fig7ReferenceNodes.)
func nodeSweepPoints() []sweepPoint {
	var pts []sweepPoint
	for _, n := range []int{10, 14, 18, 22, 26, 30} {
		lf := placementLoadFactor * float64(fig7ReferenceNodes) / float64(n)
		pts = append(pts, sweepPoint{x: float64(n), vnfs: 15, requests: 200, nodes: n, loadFactor: lf})
	}
	return pts
}

// fig7ReferenceNodes fixes the total demand of the Fig. 7–9 sweeps to what
// fills placementLoadFactor×0.75 of a 10-node deployment, independent of how
// many nodes are available. More available nodes then mean more *room*, not
// more work — exactly the regime where spreading baselines decay while
// BFDSU stays put.
const fig7ReferenceNodes = 10

// Fig5 — average resource utilization of used nodes (10 nodes, 15 VNFs) as
// the number of requests scales from 30 to 1000. Paper: all three stay
// flat; BFDSU ≈ 91.8%, FFD ≈ 68.6%, NAH ≈ 66.9%.
func Fig5(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig5",
		Title:  "Average resource utilization of 10 nodes vs number of requests",
		XLabel: "requests",
		YLabel: "avg utilization of used nodes",
	}
	if err := placementSweep(t, cfg, requestSweepPoints(15, 10, placementLoadFactor), placementAlgorithms, utilizationMetric); err != nil {
		return nil, err
	}
	noteOverallUtilization(t)
	return t, nil
}

// Fig6 — average resource utilization of used nodes handling 1000 requests
// as VNFs scale 6→30 and nodes 4→20 together.
func Fig6(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig6",
		Title:  "Average resource utilization of used nodes, 1000 requests, VNFs 6-30 / nodes 4-20",
		XLabel: "vnfs",
		YLabel: "avg utilization of used nodes",
	}
	var pts []sweepPoint
	for _, v := range []int{6, 12, 18, 24, 30} {
		pts = append(pts, sweepPoint{x: float64(v), vnfs: v, requests: 1000, nodes: (v * 2) / 3, loadFactor: placementLoadFactor})
	}
	if err := placementSweep(t, cfg, pts, placementAlgorithms, utilizationMetric); err != nil {
		return nil, err
	}
	noteOverallUtilization(t)
	return t, nil
}

// Fig7 — average resource utilization of used nodes for placing 15 VNFs as
// the number of available nodes scales 6→30. Paper: FFD and NAH decay,
// BFDSU stays stable.
func Fig7(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig7",
		Title:  "Average resource utilization of used nodes for placing 15 VNFs vs available nodes",
		XLabel: "nodes",
		YLabel: "avg utilization of used nodes",
	}
	if err := placementSweep(t, cfg, nodeSweepPoints(), placementAlgorithms, utilizationMetric); err != nil {
		return nil, err
	}
	noteOverallUtilization(t)
	return t, nil
}

// Fig8 — average number of nodes in service for placing 15 VNFs. Paper:
// BFDSU 8.56 < NAH 10.55 < FFD 10.80 on average.
func Fig8(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig8",
		Title:  "Average number of nodes in service for placing 15 VNFs vs available nodes",
		XLabel: "nodes",
		YLabel: "nodes in service",
	}
	if err := placementSweep(t, cfg, nodeSweepPoints(), placementAlgorithms, func(p *model.Problem, res *placement.Result) float64 {
		return float64(res.Placement.NodesInService())
	}); err != nil {
		return nil, err
	}
	for _, s := range t.Series {
		t.Note("%s mean nodes in service: %.2f", s.Label, t.Mean(s.Label))
	}
	return t, nil
}

// Fig9 — average resource occupation (total capacity of nodes in service)
// for placing 15 VNFs. Paper: BFDSU stays low and flat; FFD and NAH grow
// with the number of available nodes.
func Fig9(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9",
		Title:  "Average resource occupation for placing 15 VNFs vs available nodes",
		XLabel: "nodes",
		YLabel: "total capacity of nodes in service",
	}
	if err := placementSweep(t, cfg, nodeSweepPoints(), placementAlgorithms, func(p *model.Problem, res *placement.Result) float64 {
		return res.Placement.ResourceOccupation(p)
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig10 — iterations to reach a feasible placement for 15 VNFs as requests
// scale. Paper: FFD constant at 1; BFDSU ≈ 11; NAH ≈ 32 (≈3× BFDSU).
// Tightness is raised so the randomized restarts actually engage.
func Fig10(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig10",
		Title:  "Iterations to find a feasible placement for 15 VNFs vs number of requests",
		XLabel: "requests",
		YLabel: "iterations",
	}
	// Tighter than the utilization figures so BFDSU's restart machinery can
	// engage, but loose enough that the restart-free NAH baseline still
	// completes most trials.
	const tightLoadFactor = 0.68
	if err := placementSweep(t, cfg, requestSweepPoints(15, 10, tightLoadFactor), placementAlgorithms, func(p *model.Problem, res *placement.Result) float64 {
		return float64(res.Iterations)
	}); err != nil {
		return nil, err
	}
	for _, s := range t.Series {
		t.Note("%s mean iterations: %.2f", s.Label, t.Mean(s.Label))
	}
	return t, nil
}

// noteOverallUtilization records the per-algorithm grand means and the
// BFDSU-vs-baseline enhancement ratios the paper headlines (31.6% over FFD,
// 33.4% over NAH).
func noteOverallUtilization(t *Table) {
	b := t.Mean("BFDSU")
	for _, base := range []string{"FFD", "WFD", "NAH"} {
		m := t.Mean(base)
		if m > 0 {
			t.Note("BFDSU %.2f%% vs %s %.2f%% → improvement %.1f%%", b*100, base, m*100, (b-m)/m*100)
		}
	}
}
