package experiment

import (
	"runtime"
	"testing"
)

// TestControlShape pins the cost-vs-SLO frontier property: at the worst
// preemption intensity, autoscale+migrate must strictly beat the unmitigated
// baseline on both p99 latency and availability at the same seed, and the
// autoscale policies must engage the shedding valve somewhere in the sweep.
func TestControlShape(t *testing.T) {
	tab := runFig(t, "control")
	worst := func(label string) float64 {
		s, ok := tab.SeriesByLabel(label)
		if !ok {
			t.Fatalf("missing series %s", label)
		}
		return s.Y[len(s.Y)-1]
	}
	if mig, none := worst("p99 latency (autoscale+migrate)"), worst("p99 latency (none)"); mig >= none {
		t.Errorf("autoscale+migrate p99 %.4f not strictly below none %.4f at worst preemption", mig, none)
	}
	// Under FailRetransmit nothing is abandoned, so availability differences
	// reduce to horizon-end backlog; the policies must not lose ground.
	if mig, none := worst("availability (autoscale+migrate)"), worst("availability (none)"); mig < none-1e-3 {
		t.Errorf("autoscale+migrate availability %.4f below none %.4f at worst preemption", mig, none)
	}
	if rep, none := worst("availability (repair)"), worst("availability (none)"); rep < none-1e-3 {
		t.Errorf("repair availability %.4f below none %.4f", rep, none)
	}
	// The baseline never sheds; the shed series must exist and stay zero.
	if s, ok := tab.SeriesByLabel("shed fraction (none)"); !ok {
		t.Fatal("missing shed series")
	} else {
		for _, y := range s.Y {
			if y != 0 {
				t.Errorf("baseline shed fraction %v, want 0", y)
			}
		}
	}
	// Without preemption the policies agree the deployment is healthy: no
	// availability gap at intensity 0.
	for _, label := range []string{"availability (none)", "availability (autoscale+migrate)"} {
		s, _ := tab.SeriesByLabel(label)
		if s.Y[0] < 0.99 {
			t.Errorf("%s = %.4f at zero preemption, want ≈ 1", label, s.Y[0])
		}
	}
}

// TestControlParallelismInvariant asserts the control experiment's aggregates
// are bit-identical whether the sweep pool ran on one core or eight — the
// controller instances are per-cell, so no shared mutable state leaks across
// workers.
func TestControlParallelismInvariant(t *testing.T) {
	cfg := Config{Seed: 3, PlacementTrials: 3, SchedulingTrials: 12}
	run := func(procs int) *Table {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		tab, err := Run("control", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	serial, wide := run(1), run(8)
	if len(serial.Series) != len(wide.Series) {
		t.Fatalf("series count differs: %d vs %d", len(serial.Series), len(wide.Series))
	}
	for si := range serial.Series {
		for i := range serial.Series[si].Y {
			if serial.Series[si].Y[i] != wide.Series[si].Y[i] {
				t.Fatalf("%s[%d]: GOMAXPROCS(1) gives %v, GOMAXPROCS(8) gives %v",
					serial.Series[si].Label, i, serial.Series[si].Y[i], wide.Series[si].Y[i])
			}
		}
	}
}
