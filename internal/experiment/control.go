package experiment

import (
	"fmt"
	"sync"

	"nfvchain/internal/control"
	"nfvchain/internal/dynamic"
	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
	"nfvchain/internal/stats"
	"nfvchain/internal/workload"
)

// controlPolicies are the control-plane policies compared at every preemption
// intensity. PolicyNone runs with no hooks at all — the unmitigated baseline
// on the identical fault sample path.
var controlPolicies = []control.Policy{
	control.PolicyNone,
	control.PolicyRepair,
	control.PolicyAutoscale,
	control.PolicyAutoscaleMigrate,
}

// Control maps the cost-vs-SLO frontier of the online control plane under
// correlated preemptions. A BFDSU-placed, RCKK-scheduled deployment faces
// spot-style correlated capacity loss (groups of nodes preempted at once,
// with advance notice) at increasing intensity, crossed with the four
// internal/control policies; every policy sees the identical preemption
// sample path per (intensity, trial) cell. Reported per policy: availability,
// p99 latency, the shed fraction of offered load, and the mean number of
// nodes in service (the cost axis — NodeSeconds/horizon). Escalating the
// policy buys back tail latency and availability: repair replaces lost
// capacity after each loss, autoscaling rightsizes pools between losses and
// sheds deterministically when capacity cannot cover load, and migration
// evacuates doomed nodes during the notice window so the loss lands on empty
// hosts.
func Control(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "control",
		Title:  "Online control plane under correlated preemption × policy (BFDSU+RCKK, group=2, ClickOS setup)",
		XLabel: "expected preemptions per horizon (horizon/mean interval)",
		YLabel: "availability (delivered/offered)",
	}
	const (
		horizon  = 20.0
		warmup   = 1.0
		interval = 0.5 // controller tick period
		group    = 2   // nodes preempted per event
		leadTime = 0.5 // advance-notice window
	)
	recovery := horizon / 8
	// Expected preemption events per horizon; 0 disables preemption.
	intensities := []float64{0, 1, 3, 6}

	type policyResult struct {
		avail, p99, shed, nodes float64
		p99ok                   bool
	}
	simPool := sync.Pool{New: func() any { return simulate.NewSimulator() }}
	perPoint, err := forEachPointTrial(len(intensities), cfg.PlacementTrials,
		func(point, trial int) ([4]policyResult, error) {
			var out [4]policyResult
			seed := cfg.Seed + uint64(trial)*2654435761
			wcfg := workload.DefaultConfig()
			wcfg.Seed = seed
			wcfg.NumVNFs = 8
			wcfg.NumRequests = 40
			wcfg.NumNodes = 6
			wcfg.RateMax = 40
			prob, err := workload.Generate(wcfg)
			if err != nil {
				return out, fmt.Errorf("control: %w", err)
			}
			placed, err := (&placement.BFDSU{Seed: seed}).Place(prob)
			if err != nil {
				return out, fmt.Errorf("control: %w", err)
			}
			sched, err := scheduling.ScheduleAll(prob, scheduling.RCKK{})
			if err != nil {
				return out, fmt.Errorf("control: %w", err)
			}
			var plan *simulate.FaultPlan
			if intensities[point] > 0 {
				plan = &simulate.FaultPlan{Preemption: &simulate.PreemptionPlan{
					MeanInterval: horizon / intensities[point],
					GroupSize:    group,
					Recovery:     recovery,
					LeadTime:     leadTime,
				}}
			}
			sim := simPool.Get().(*simulate.Simulator)
			defer simPool.Put(sim)
			for pi, policy := range controlPolicies {
				scfg := simulate.Config{
					Problem:   prob,
					Schedule:  sched,
					Placement: placed.Placement,
					Horizon:   horizon,
					Warmup:    warmup,
					LinkDelay: 0.001,
					Seed:      seed,
					FaultPlan: plan,
					// Retransmit on failure: no packet is abandoned, so a
					// preemption shows up as retry storms and backlog tail
					// latency — the SLO axis the control plane defends —
					// rather than as silently purged queues.
					FailurePolicy:   simulate.FailRetransmit,
					RetransmitDelay: 0.05,
				}
				var ctrl *control.Controller
				if policy != control.PolicyNone {
					ctrl, err = control.New(control.Config{
						Problem:       prob,
						Placement:     placed.Placement,
						Schedule:      sched,
						Policy:        policy,
						SetupCost:     dynamic.SetupCostClickOS,
						MigrationCost: dynamic.SetupCostClickOS,
						Seed:          seed,
					})
					if err != nil {
						return out, fmt.Errorf("control: %w", err)
					}
					scfg.FaultHook = ctrl
					scfg.Control = ctrl
					scfg.ControlInterval = interval
				}
				if err := sim.Reset(scfg); err != nil {
					return out, fmt.Errorf("control: %w", err)
				}
				res, err := sim.Run()
				if err != nil {
					return out, fmt.Errorf("control: %w", err)
				}
				p99, ok := stats.PercentileOK(res.LatencySamples, 99)
				nodes := float64(placedNodes(prob, placed.Placement))
				if ctrl != nil {
					nodes = ctrl.StatsAt(horizon).NodeSeconds / horizon
				}
				out[pi] = policyResult{
					avail: res.Availability,
					p99:   p99,
					p99ok: ok,
					shed:  float64(res.Shed) / float64(max(res.Generated, 1)),
					nodes: nodes,
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	for xi, x := range intensities {
		for pi, policy := range controlPolicies {
			var avail, p99, shed, nodes float64
			p99n := 0
			for _, tr := range perPoint[xi] {
				avail += tr[pi].avail
				shed += tr[pi].shed
				nodes += tr[pi].nodes
				if tr[pi].p99ok {
					p99 += tr[pi].p99
					p99n++
				}
			}
			n := float64(len(perPoint[xi]))
			t.AddPoint("availability ("+policy.String()+")", x, avail/n)
			t.AddPoint("shed fraction ("+policy.String()+")", x, shed/n)
			t.AddPoint("nodes in service ("+policy.String()+")", x, nodes/n)
			if p99n > 0 {
				t.AddPoint("p99 latency ("+policy.String()+")", x, p99/float64(p99n))
			}
		}
	}

	worst := intensities[len(intensities)-1]
	noneP99, ok1 := seriesAt(t, "p99 latency (none)", worst)
	migP99, ok2 := seriesAt(t, "p99 latency (autoscale+migrate)", worst)
	noneNodes, _ := seriesAt(t, "nodes in service (none)", worst)
	migNodes, _ := seriesAt(t, "nodes in service (autoscale+migrate)", worst)
	if ok1 && ok2 {
		t.Note("frontier at %.0f preemptions/horizon: autoscale+migrate p99 %.4fs on %.2f mean nodes vs none p99 %.4fs on %.2f nodes",
			worst, migP99, migNodes, noneP99, noneNodes)
	}
	t.Note("preemptions take %d nodes down together for %.3gs with %.2gs advance notice; controller ticks every %.2gs (ClickOS boot/migration %.3gs)",
		group, recovery, leadTime, interval, dynamic.SetupCostClickOS)
	t.Note("shedding is the graceful-degradation valve: autoscale policies shed the admission fraction active capacity cannot cover at the target utilization instead of letting queues diverge")
	return t, nil
}

// placedNodes counts the distinct nodes hosting at least one VNF under the
// initial placement — the constant nodes-in-service of an uncontrolled run.
func placedNodes(prob *model.Problem, pl *model.Placement) int {
	seen := make(map[model.NodeID]struct{}, len(prob.Nodes))
	for _, f := range prob.VNFs {
		if n, ok := pl.Node(f.ID); ok {
			seen[n] = struct{}{}
		}
	}
	return len(seen)
}

// seriesAt returns the series value at x, if both exist.
func seriesAt(t *Table, label string, x float64) (float64, bool) {
	s, ok := t.SeriesByLabel(label)
	if !ok {
		return 0, false
	}
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}
