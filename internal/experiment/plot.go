package experiment

import (
	"fmt"
	"math"
	"strings"
)

// seriesMarkers assigns one glyph per series in a plot.
var seriesMarkers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Plot renders the table as an ASCII chart: X mapped linearly across width
// columns, Y autoscaled across height rows, one marker per series. Series
// beyond len(seriesMarkers) reuse glyphs. Intended for terminal inspection
// of figure shapes; CSV remains the precise export.
func (t *Table) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if len(t.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	// Bounds over all finite points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		b.WriteString("(no finite data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	col := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - minY) / (maxY - minY) * float64(height-1)))
		return clampInt(height-1-r, 0, height-1) // invert: top row = max
	}
	for si, s := range t.Series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			r, c := row(y), col(x)
			if grid[r][c] != ' ' && grid[r][c] != marker {
				grid[r][c] = '?'
			} else {
				grid[r][c] = marker
			}
		}
	}

	fmt.Fprintf(&b, "%10.4g ┤", maxY)
	b.WriteString(string(grid[0]))
	b.WriteString("\n")
	for r := 1; r < height-1; r++ {
		b.WriteString(strings.Repeat(" ", 11))
		b.WriteString("│")
		b.WriteString(string(grid[r]))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%10.4g ┤", minY)
	b.WriteString(string(grid[height-1]))
	b.WriteString("\n")
	b.WriteString(strings.Repeat(" ", 11))
	b.WriteString("└")
	b.WriteString(strings.Repeat("─", width))
	b.WriteString("\n")
	fmt.Fprintf(&b, "%12s%-10.4g%*s%10.4g\n", "", minX, width-20, "", maxX)
	fmt.Fprintf(&b, "%12s%s vs %s — ", "", t.YLabel, t.XLabel)
	for si, s := range t.Series {
		if si > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", seriesMarkers[si%len(seriesMarkers)], s.Label)
	}
	b.WriteString("\n")
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
