package experiment

import (
	"errors"
	"fmt"

	"nfvchain/internal/core"
	"nfvchain/internal/model"
	"nfvchain/internal/queueing"
	"nfvchain/internal/rng"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/stats"
)

// trialParams is one scheduling-trial operating point.
type trialParams struct {
	n int     // requests
	m int     // service instances
	p float64 // delivery probability P
	// mu fixes the per-instance service rate; when 0 it is scaled from the
	// drawn rates ("scale µ_f with the number of requests", Figs. 11–14):
	// µ = Σλ_r/(m·rhoRaw), so a balanced split runs at raw utilization
	// rhoRaw.
	mu     float64
	rhoRaw float64
	// admission applies admission control (Figs. 15–16). Without it, a
	// trial whose assignment leaves an unstable instance reports
	// stable=false and is skipped (Figs. 11–14 compare response times only
	// where both systems are stable).
	admission bool
}

// trialResult is one trial's outcome for one algorithm.
type trialResult struct {
	meanW         float64 // Eq. 15: W(f,k) averaged over loaded instances
	rejectionRate float64
	stable        bool
}

// schedulingTrial builds a single-VNF instance — n requests with rates
// uniform in [1,100] pps sharing one VNF with m service instances — and runs
// the schedule → (admission) → evaluate pipeline for the algorithm.
func schedulingTrial(seed uint64, tp trialParams, alg scheduling.Partitioner) (trialResult, error) {
	stream := rng.Derive(seed, "sched-trial")
	prob := &model.Problem{
		Nodes: []model.Node{{ID: "n0", Capacity: 1}},
		VNFs:  []model.VNF{{ID: "f", Instances: tp.m, Demand: 1.0 / float64(tp.m+1), ServiceRate: 1}},
	}
	var sum float64
	for i := 0; i < tp.n; i++ {
		rate := stream.Uniform(1, 100)
		sum += rate
		prob.Requests = append(prob.Requests, model.Request{
			ID:           model.RequestID(fmt.Sprintf("r%04d", i)),
			Chain:        []model.VNFID{"f"},
			Rate:         rate,
			DeliveryProb: tp.p,
		})
	}
	mu := tp.mu
	if mu == 0 {
		mu = sum / (float64(tp.m) * tp.rhoRaw)
	}
	prob.VNFs[0].ServiceRate = mu
	if err := prob.Validate(); err != nil {
		return trialResult{}, fmt.Errorf("experiment: scheduling trial: %w", err)
	}

	sched, err := scheduling.ScheduleAll(prob, alg)
	if err != nil {
		return trialResult{}, err
	}
	res := trialResult{stable: true}
	if tp.admission {
		adm, err := scheduling.ApplyAdmissionControl(prob, sched)
		if err != nil {
			return trialResult{}, err
		}
		sched = adm.Admitted
		res.rejectionRate = adm.RejectionRate
	}
	pl := model.NewPlacement()
	pl.Assign("f", "n0")
	ev, err := core.Evaluate(&core.Solution{Problem: prob, Placement: pl, Schedule: sched})
	if err != nil {
		if errors.Is(err, queueing.ErrUnstable) {
			res.stable = false
			return res, nil
		}
		return trialResult{}, err
	}
	res.meanW = ev.AvgResponseTime
	return res, nil
}

// schedulingAlgorithms returns the two compared schedulers.
func schedulingAlgorithms() []scheduling.Partitioner {
	return []scheduling.Partitioner{scheduling.RCKK{}, scheduling.CGA{ArrivalOrder: true}}
}

// schedulingSeed is the per-(point, trial) seed of the Fig. 11–16 sweeps.
func schedulingSeed(cfg Config, tp trialParams, trial int) uint64 {
	return cfg.Seed + uint64(trial)*2654435761 + uint64(tp.n*31+tp.m*7)
}

// schedulingSweep runs every algorithm on every (point, trial) pair of the
// sweep over ONE cross-point work queue and returns
// perPoint[point][trial][algIndex]. Trial results land in index order, so
// any per-point fold is bit-identical to a serial sweep, while workers never
// idle at a point boundary.
func schedulingSweep(cfg Config, tps []trialParams, algs []scheduling.Partitioner,
	seedFor func(cfg Config, tp trialParams, trial int) uint64) ([][][]trialResult, error) {
	return forEachPointTrial(len(tps), cfg.SchedulingTrials,
		func(point, trial int) ([]trialResult, error) {
			tp := tps[point]
			seed := seedFor(cfg, tp, trial)
			results := make([]trialResult, len(algs))
			for i, alg := range algs {
				res, err := schedulingTrial(seed, tp, alg)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", alg.Name(), err)
				}
				results[i] = res
			}
			return results, nil
		})
}

// responseFigRho is the balanced raw utilization of the Fig. 11–14 sweeps.
// Near saturation the mean of 1/(µ−Λ_k) over instances is dominated by the
// most loaded instance, so the baseline's O(E[λ]) imbalance costs a large
// response-time premium at small n that decays as headroom grows with n —
// the paper's 42%→2% enhancement curve. Trials where either algorithm
// leaves an unstable instance are skipped for both (pairwise comparison).
const responseFigRho = 0.85

// rejectionFigRho is the balanced *raw* utilization of the Fig. 15–16
// sweeps. It sits right at the loss-inflation boundary: with P = 0.997 a
// balanced split stays stable (effective ρ ≈ 0.983) and only the baseline's
// imbalance trips admission control, while with P = 0.984 even the balanced
// split is within a whisker of saturation (effective ρ ≈ 0.996), so load fluctuations and any imbalance shed jobs —
// the paper's "with a higher packet loss rate, the job rejection rate is
// consequently higher".
const rejectionFigRho = 0.98

// pointAggregates collects per-algorithm summaries at one sweep point.
type pointAggregates struct {
	w        stats.Summary // per-trial mean W (stable trials only)
	rej      stats.Summary // per-trial rejection rate
	unstable int           // skipped trials
}

// foldPointAggregates averages one point's trials per algorithm. Response
// times are compared *pairwise*: a trial counts toward the W means only when
// every algorithm's assignment is stable, so neither side is favored by
// dropping only its own hard trials.
func foldPointAggregates(perTrial [][]trialResult, algs []scheduling.Partitioner) map[string]*pointAggregates {
	out := make(map[string]*pointAggregates)
	for _, alg := range algs {
		out[alg.Name()] = &pointAggregates{}
	}
	for _, results := range perTrial {
		allStable := true
		for i, alg := range algs {
			out[alg.Name()].rej.Add(results[i].rejectionRate)
			allStable = allStable && results[i].stable
		}
		for i, alg := range algs {
			if allStable {
				out[alg.Name()].w.Add(results[i].meanW)
			} else {
				out[alg.Name()].unstable++
			}
		}
	}
	return out
}

// responseTimeVsRequests generates Figs. 11 and 12: mean response time of 5
// instances as the number of requests scales, plus the enhancement ratio
// (W_CGA − W_RCKK)/W_CGA.
func responseTimeVsRequests(id string, cfg Config, p float64) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Average response time, 5 instances, P = %.2f", p),
		XLabel: "requests",
		YLabel: "mean W per instance (s)",
	}
	const m = 5
	var tps []trialParams
	for _, n := range []int{15, 25, 50, 100, 150, 200, 250} {
		tps = append(tps, trialParams{n: n, m: m, p: p, rhoRaw: responseFigRho})
	}
	algs := schedulingAlgorithms()
	perPoint, err := schedulingSweep(cfg, tps, algs, schedulingSeed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	unstable := 0
	for pi, tp := range tps {
		ws := foldPointAggregates(perPoint[pi], algs)
		t.AddPoint("RCKK", float64(tp.n), ws["RCKK"].w.Mean())
		t.AddPoint("CGA", float64(tp.n), ws["CGA"].w.Mean())
		t.AddPoint("enhancement", float64(tp.n), stats.EnhancementRatio(ws["CGA"].w.Mean(), ws["RCKK"].w.Mean()))
		unstable += ws["RCKK"].unstable + ws["CGA"].unstable
	}
	noteEnhancementRange(t)
	if unstable > 0 {
		t.Note("%d unstable trials skipped", unstable)
	}
	return t, nil
}

// responseTimeVsInstances generates Figs. 13 and 14: mean response time with
// 50 requests as the number of service instances scales 2→10.
func responseTimeVsInstances(id string, cfg Config, p float64) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Average response time, 50 requests, P = %.2f", p),
		XLabel: "instances",
		YLabel: "mean W per instance (s)",
	}
	const n = 50
	var tps []trialParams
	for m := 2; m <= 10; m++ {
		tps = append(tps, trialParams{n: n, m: m, p: p, rhoRaw: responseFigRho})
	}
	algs := schedulingAlgorithms()
	perPoint, err := schedulingSweep(cfg, tps, algs, schedulingSeed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	unstable := 0
	for pi, tp := range tps {
		ws := foldPointAggregates(perPoint[pi], algs)
		t.AddPoint("RCKK", float64(tp.m), ws["RCKK"].w.Mean())
		t.AddPoint("CGA", float64(tp.m), ws["CGA"].w.Mean())
		t.AddPoint("enhancement", float64(tp.m), stats.EnhancementRatio(ws["CGA"].w.Mean(), ws["RCKK"].w.Mean()))
		unstable += ws["RCKK"].unstable + ws["CGA"].unstable
	}
	noteEnhancementRange(t)
	if unstable > 0 {
		t.Note("%d unstable trials skipped", unstable)
	}
	return t, nil
}

// rejectionVsRequests generates Figs. 15 and 16: the job rejection rate as
// the number of requests scales toward and through saturation, under low
// (P=0.997) or high (P=0.984) packet loss. Unlike Figs. 11–14, µ is fixed
// (calibrated at the reference load), so growing request counts genuinely
// load the system and admission control must shed jobs.
func rejectionVsRequests(id string, cfg Config, p float64) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Average job rejection rate, 5 instances, P = %.3f", p),
		XLabel: "requests",
		YLabel: "job rejection rate",
	}
	const m = 5
	var tps []trialParams
	for _, n := range []int{15, 25, 50, 100, 150, 200, 250} {
		tps = append(tps, trialParams{n: n, m: m, p: p, rhoRaw: rejectionFigRho, admission: true})
	}
	algs := schedulingAlgorithms()
	perPoint, err := schedulingSweep(cfg, tps, algs, schedulingSeed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	for pi, tp := range tps {
		ws := foldPointAggregates(perPoint[pi], algs)
		t.AddPoint("RCKK", float64(tp.n), ws["RCKK"].rej.Mean())
		t.AddPoint("CGA", float64(tp.n), ws["CGA"].rej.Mean())
	}
	t.Note("mean rejection rate: RCKK %.2f%%, CGA %.2f%%", t.Mean("RCKK")*100, t.Mean("CGA")*100)
	return t, nil
}

// noteEnhancementRange records the enhancement ratio's endpoints, the way
// the paper quotes Figs. 11–14 ("reducing from 41.89% to 2.10%").
func noteEnhancementRange(t *Table) {
	s, ok := t.SeriesByLabel("enhancement")
	if !ok || len(s.Y) == 0 {
		return
	}
	t.Note("enhancement ratio from %.2f%% (x=%g) to %.2f%% (x=%g)",
		s.Y[0]*100, s.X[0], s.Y[len(s.Y)-1]*100, s.X[len(s.X)-1])
}

// Fig11 — average response time vs requests, P = 0.98.
func Fig11(cfg Config) (*Table, error) { return responseTimeVsRequests("fig11", cfg, 0.98) }

// Fig12 — average response time vs requests, P = 1.00.
func Fig12(cfg Config) (*Table, error) { return responseTimeVsRequests("fig12", cfg, 1.00) }

// Fig13 — average response time vs instances, P = 0.98.
func Fig13(cfg Config) (*Table, error) { return responseTimeVsInstances("fig13", cfg, 0.98) }

// Fig14 — average response time vs instances, P = 1.00.
func Fig14(cfg Config) (*Table, error) { return responseTimeVsInstances("fig14", cfg, 1.00) }

// Fig15 — job rejection rate vs requests under low loss, P = 0.997.
func Fig15(cfg Config) (*Table, error) { return rejectionVsRequests("fig15", cfg, 0.997) }

// Fig16 — job rejection rate vs requests under high loss, P = 0.984.
func Fig16(cfg Config) (*Table, error) { return rejectionVsRequests("fig16", cfg, 0.984) }

// FigTail — the 99th-percentile response-time statistics the paper quotes in
// prose: p99 over the trial population of per-trial mean W, for requests
// scaling 10→200 at 5 instances, P = 0.98. The p50/p95/p99 of each sample
// set come from a single Percentiles call (one sort) per algorithm.
func FigTail(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "tail",
		Title:  "99th-percentile response time over trials, 5 instances, P = 0.98",
		XLabel: "requests",
		YLabel: "p99 of per-trial mean W (s)",
	}
	const m = 5
	var tps []trialParams
	for _, n := range []int{10, 25, 50, 100, 200} {
		tps = append(tps, trialParams{n: n, m: m, p: 0.98, rhoRaw: responseFigRho})
	}
	algs := schedulingAlgorithms()
	perPoint, err := schedulingSweep(cfg, tps, algs,
		func(cfg Config, tp trialParams, trial int) uint64 {
			return cfg.Seed + uint64(trial)*2654435761 + uint64(tp.n*131)
		})
	if err != nil {
		return nil, fmt.Errorf("tail: %w", err)
	}
	for pi, tp := range tps {
		samples := map[string][]float64{}
		for _, results := range perPoint[pi] {
			allStable := true
			for i := range algs {
				allStable = allStable && results[i].stable
			}
			if !allStable {
				continue // pairwise comparison: skip the trial for both
			}
			for i, alg := range algs {
				samples[alg.Name()] = append(samples[alg.Name()], results[i].meanW)
			}
		}
		// Every trial may be skipped as unstable, leaving no samples for
		// this n — PercentilesOK makes the empty case explicit instead of
		// relying on the callee to panic, and batches the three quantiles
		// into one sort per sample set (see stats.Percentile's cost note).
		rq, rok := stats.PercentilesOK(samples["RCKK"], 50, 95, 99)
		cq, cok := stats.PercentilesOK(samples["CGA"], 50, 95, 99)
		if !rok || !cok {
			continue
		}
		t.AddPoint("RCKK", float64(tp.n), rq[2])
		t.AddPoint("CGA", float64(tp.n), cq[2])
		t.AddPoint("enhancement", float64(tp.n), stats.EnhancementRatio(cq[2], rq[2]))
		t.Note("n=%d: RCKK p50/p95/p99 = %.4g/%.4g/%.4g, CGA = %.4g/%.4g/%.4g",
			tp.n, rq[0], rq[1], rq[2], cq[0], cq[1], cq[2])
	}
	noteEnhancementRange(t)
	return t, nil
}
