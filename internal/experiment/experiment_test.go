package experiment

import (
	"strings"
	"testing"
)

// testConfig keeps test runtime modest; the shape assertions below use
// tolerant thresholds accordingly.
func testConfig() Config {
	return Config{Seed: 1, PlacementTrials: 6, SchedulingTrials: 40}
}

func runFig(t *testing.T, id string) *Table {
	t.Helper()
	tab, err := Run(id, testConfig())
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if tab.ID != id {
		t.Fatalf("table id = %s, want %s", tab.ID, id)
	}
	if len(tab.Series) == 0 {
		t.Fatalf("%s produced no series", id)
	}
	return tab
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Errorf("IDs() = %v, want 21 experiments", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("IDs not sorted")
		}
	}
	if _, err := Run("fig99", testConfig()); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := Run("fig5", Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestConfigs(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	if err := FastConfig().Validate(); err != nil {
		t.Error(err)
	}
	if DefaultConfig().SchedulingTrials != 1000 {
		t.Error("DefaultConfig must follow the paper's 1000-run protocol")
	}
}

func TestFig5Shape(t *testing.T) {
	tab := runFig(t, "fig5")
	b, n, w := tab.Mean("BFDSU"), tab.Mean("NAH"), tab.Mean("WFD")
	// Paper: BFDSU ≈ 91.8% ≫ NAH ≈ 66.9% (and the spreading baseline even
	// lower).
	if b < 0.85 {
		t.Errorf("BFDSU utilization %.3f, want ≥ 0.85", b)
	}
	if b-n < 0.10 {
		t.Errorf("BFDSU %.3f vs NAH %.3f: gap below 10 points", b, n)
	}
	if w >= b {
		t.Errorf("WFD %.3f should be below BFDSU %.3f", w, b)
	}
	// Flat in the number of requests: BFDSU spread below 10 points.
	s, _ := tab.SeriesByLabel("BFDSU")
	lo, hi := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if hi-lo > 0.10 {
		t.Errorf("BFDSU utilization varies %.3f–%.3f across request counts, want flat", lo, hi)
	}
}

func TestFig7Shape(t *testing.T) {
	tab := runFig(t, "fig7")
	// Paper: BFDSU stable while the baselines decay as nodes are added.
	b, _ := tab.SeriesByLabel("BFDSU")
	if b.Y[len(b.Y)-1] < b.Y[0]-0.12 {
		t.Errorf("BFDSU decays from %.3f to %.3f; want stable", b.Y[0], b.Y[len(b.Y)-1])
	}
	for _, label := range []string{"WFD", "NAH"} {
		s, ok := tab.SeriesByLabel(label)
		if !ok {
			t.Fatalf("missing series %s", label)
		}
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("%s should decay with more nodes: %.3f → %.3f", label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tab := runFig(t, "fig8")
	b, n, w := tab.Mean("BFDSU"), tab.Mean("NAH"), tab.Mean("WFD")
	if b > n+0.5 {
		t.Errorf("BFDSU uses %.2f nodes vs NAH %.2f; want fewer or equal", b, n)
	}
	if b >= w {
		t.Errorf("BFDSU uses %.2f nodes vs spreading WFD %.2f; want clearly fewer", b, w)
	}
}

func TestFig9Shape(t *testing.T) {
	tab := runFig(t, "fig9")
	// Paper: BFDSU's occupation stays low and flat; the spreading baseline
	// grows with the node pool.
	b, _ := tab.SeriesByLabel("BFDSU")
	w, _ := tab.SeriesByLabel("WFD")
	if w.Y[len(w.Y)-1] <= w.Y[0] {
		t.Errorf("WFD occupation should grow: %.0f → %.0f", w.Y[0], w.Y[len(w.Y)-1])
	}
	if b.Y[len(b.Y)-1] > 1.5*b.Y[0] {
		t.Errorf("BFDSU occupation grew %.0f → %.0f; want ~flat", b.Y[0], b.Y[len(b.Y)-1])
	}
	if tab.Mean("BFDSU") >= tab.Mean("WFD") {
		t.Error("BFDSU should occupy less capacity than WFD")
	}
}

func TestFig10Shape(t *testing.T) {
	tab := runFig(t, "fig10")
	f, _ := tab.SeriesByLabel("FFD")
	for _, y := range f.Y {
		if y != 1 {
			t.Errorf("FFD iterations = %v, want constant 1", y)
		}
	}
	b, n := tab.Mean("BFDSU"), tab.Mean("NAH")
	if b <= 1 {
		t.Errorf("BFDSU iterations %.1f, want > 1", b)
	}
	if n <= b {
		t.Errorf("NAH iterations %.1f should exceed BFDSU %.1f (paper: ≈3×)", n, b)
	}
}

func TestFig11Shape(t *testing.T) {
	tab := runFig(t, "fig11")
	r, _ := tab.SeriesByLabel("RCKK")
	c, _ := tab.SeriesByLabel("CGA")
	for i := range r.Y {
		if r.Y[i] > c.Y[i]*1.001 {
			t.Errorf("n=%g: RCKK W %.4g above CGA %.4g", r.X[i], r.Y[i], c.Y[i])
		}
	}
	e, _ := tab.SeriesByLabel("enhancement")
	if e.Y[0] < 0.10 {
		t.Errorf("enhancement at n=15 is %.3f, want ≥ 10%% (paper: ≈42%%)", e.Y[0])
	}
	last := e.Y[len(e.Y)-1]
	if last > 0.10 {
		t.Errorf("enhancement at n=250 is %.3f, want ≤ 10%% (paper: ≈2%%)", last)
	}
	if e.Y[0] <= last {
		t.Error("enhancement should decay as requests grow")
	}
}

func TestFig12LowerThanFig11(t *testing.T) {
	f11 := runFig(t, "fig11")
	f12 := runFig(t, "fig12")
	// Paper: higher packet loss (P=0.98 vs 1.00) increases response time.
	if f11.Mean("RCKK") <= f12.Mean("RCKK") {
		t.Errorf("RCKK W with loss %.4g should exceed lossless %.4g",
			f11.Mean("RCKK"), f12.Mean("RCKK"))
	}
}

func TestFig13Shape(t *testing.T) {
	tab := runFig(t, "fig13")
	e, _ := tab.SeriesByLabel("enhancement")
	if e.Y[len(e.Y)-1] <= e.Y[0] {
		t.Errorf("enhancement should grow with instances: %.3f → %.3f (paper: 5%%→25%%)",
			e.Y[0], e.Y[len(e.Y)-1])
	}
	r, _ := tab.SeriesByLabel("RCKK")
	c, _ := tab.SeriesByLabel("CGA")
	for i := range r.Y {
		if r.Y[i] > c.Y[i]*1.001 {
			t.Errorf("m=%g: RCKK above CGA", r.X[i])
		}
	}
}

func TestFig15And16Shape(t *testing.T) {
	f15 := runFig(t, "fig15")
	f16 := runFig(t, "fig16")
	// RCKK (nearly) zero under low loss; CGA clearly above.
	if f15.Mean("RCKK") > 0.03 {
		t.Errorf("fig15 RCKK rejection %.3f, want ≈0", f15.Mean("RCKK"))
	}
	if f15.Mean("CGA") < 2*f15.Mean("RCKK") {
		t.Errorf("fig15 CGA %.3f not clearly above RCKK %.3f", f15.Mean("CGA"), f15.Mean("RCKK"))
	}
	// Higher loss ⇒ higher rejection, for both algorithms.
	if f16.Mean("CGA") <= f15.Mean("CGA") {
		t.Errorf("CGA rejection should rise with loss: %.3f vs %.3f", f16.Mean("CGA"), f15.Mean("CGA"))
	}
	if f16.Mean("RCKK") < f15.Mean("RCKK") {
		t.Errorf("RCKK rejection should not fall with loss")
	}
	if f16.Mean("RCKK") >= f16.Mean("CGA") {
		t.Errorf("fig16: RCKK %.3f should stay below CGA %.3f", f16.Mean("RCKK"), f16.Mean("CGA"))
	}
}

func TestTailShape(t *testing.T) {
	tab := runFig(t, "tail")
	r, _ := tab.SeriesByLabel("RCKK")
	c, _ := tab.SeriesByLabel("CGA")
	if len(r.Y) == 0 {
		t.Fatal("no tail points")
	}
	for i := range r.Y {
		if r.Y[i] > c.Y[i]*1.01 {
			t.Errorf("n=%g: RCKK p99 %.4g above CGA %.4g", r.X[i], r.Y[i], c.Y[i])
		}
	}
}

func TestAblationPlacementShape(t *testing.T) {
	tab := runFig(t, "ablation-placement")
	b, d, r := tab.Mean("BFDSU"), tab.Mean("BFD"), tab.Mean("Random")
	if r >= b {
		t.Errorf("Random utilization %.3f should trail BFDSU %.3f", r, b)
	}
	if d > b+0.05 {
		t.Errorf("derandomized BFD %.3f should not clearly beat BFDSU %.3f", d, b)
	}
}

func TestAblationSchedulingShape(t *testing.T) {
	tab := runFig(t, "ablation-scheduling")
	rckk, _ := tab.SeriesByLabel("RCKK")
	lpt, _ := tab.SeriesByLabel("CGA")
	rr, _ := tab.SeriesByLabel("RoundRobin")
	if len(rckk.Y) == 0 || len(lpt.Y) == 0 || len(rr.Y) == 0 {
		t.Fatal("missing ablation series")
	}
	if tab.Mean("RCKK") > tab.Mean("CGA")*1.001 {
		t.Errorf("differencing W %.5f above sorted greedy %.5f", tab.Mean("RCKK"), tab.Mean("CGA"))
	}
	if tab.Mean("RCKK") > tab.Mean("RoundRobin")*1.001 {
		t.Errorf("RCKK W %.5f above round robin %.5f", tab.Mean("RCKK"), tab.Mean("RoundRobin"))
	}
}

func TestRobustnessShape(t *testing.T) {
	tab := runFig(t, "robustness")
	exp, _ := tab.SeriesByLabel("exponential")
	det, _ := tab.SeriesByLabel("deterministic")
	ln, _ := tab.SeriesByLabel("lognormal")
	if len(exp.Y) == 0 || len(det.Y) == 0 || len(ln.Y) == 0 {
		t.Fatal("missing robustness series")
	}
	for i, e := range exp.Y {
		if e > 0.12 || e < -0.12 {
			t.Errorf("rho=%g: exponential model error %.3f, want ~0", exp.X[i], e)
		}
	}
	for i, e := range det.Y {
		if e <= 0 {
			t.Errorf("rho=%g: deterministic error %.3f, model should overestimate", det.X[i], e)
		}
	}
	if det.Y[len(det.Y)-1] <= det.Y[0] {
		t.Error("deterministic error should grow with utilization")
	}
	for i, e := range ln.Y {
		if e >= 0 {
			t.Errorf("rho=%g: lognormal error %.3f, model should underestimate", ln.X[i], e)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", XLabel: "n"}
	tab.AddPoint("a", 1, 10)
	tab.AddPoint("a", 2, 20)
	tab.AddPoint("b", 1, 5)
	if got := tab.Mean("a"); got != 15 {
		t.Errorf("Mean(a) = %v", got)
	}
	if got := tab.Mean("missing"); got != 0 {
		t.Errorf("Mean(missing) = %v", got)
	}
	if _, ok := tab.SeriesByLabel("b"); !ok {
		t.Error("SeriesByLabel(b) missing")
	}
	tab.Note("hello %d", 7)
	out := tab.String()
	for _, want := range []string{"x — T", "a", "b", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}

	var csv strings.Builder
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "x,a,b\n1,10,5\n") {
		t.Errorf("CSV = %q", csv.String())
	}

	empty := &Table{ID: "e"}
	if !strings.Contains(empty.String(), "no data") {
		t.Error("empty table String() missing placeholder")
	}
	var ecsv strings.Builder
	if err := empty.WriteCSV(&ecsv); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementProblemTightness(t *testing.T) {
	p, err := placementProblem(3, 15, 200, 10, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	ratio := p.TotalDemand() / p.TotalCapacity()
	if ratio < 0.5 || ratio > 0.7 {
		t.Errorf("load factor %.3f, want ≈0.6 after quantization", ratio)
	}
	for _, n := range p.Nodes {
		if int(n.Capacity)%int(capacityTier) != 0 {
			t.Errorf("node capacity %v not on tier", n.Capacity)
		}
	}
}

func TestHeadlineShape(t *testing.T) {
	tab := runFig(t, "headline")
	if got := tab.Mean("utilization-improvement-vs-NAH"); got < 0.15 {
		t.Errorf("utilization improvement %.3f, want >= 15%% (paper: 33.4%%)", got)
	}
	if got := tab.Mean("latency-reduction-vs-CGA"); got <= 0 {
		t.Errorf("latency reduction %.3f, want positive", got)
	}
	if tab.Mean("rejection-RCKK") >= tab.Mean("rejection-CGA") {
		t.Error("RCKK rejection should stay below CGA")
	}
	if len(tab.Notes) < 3 {
		t.Errorf("headline notes = %v", tab.Notes)
	}
}

func TestClusterShape(t *testing.T) {
	cfg := testConfig()
	cfg.PlacementTrials = 2 // each trial solves + simulates up to 8 regions × 3 policies
	tab, err := Run("cluster", cfg)
	if err != nil {
		t.Fatalf("Run(cluster): %v", err)
	}
	if len(tab.Series) != 6 {
		t.Fatalf("want 6 series (latency + local fraction × 3 policies), got %d", len(tab.Series))
	}
	locLat, ok1 := tab.SeriesByLabel("mean latency (locality)")
	locFrac, ok2 := tab.SeriesByLabel("local fraction (locality)")
	llFrac, ok3 := tab.SeriesByLabel("local fraction (least-loaded)")
	wFrac, ok4 := tab.SeriesByLabel("local fraction (weighted)")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("missing cluster series; have %v", tab.Series)
	}
	wantX := []float64{1, 2, 4, 8}
	if len(locLat.X) != len(wantX) {
		t.Fatalf("want %d region-count points, got %d", len(wantX), len(locLat.X))
	}
	for i, x := range wantX {
		if locLat.X[i] != x {
			t.Errorf("X[%d] = %v, want %v", i, locLat.X[i], x)
		}
		// Locality-first serves every global arrival at home by construction.
		if locFrac.Y[i] != 1 {
			t.Errorf("locality local fraction at N=%v: %v, want 1", x, locFrac.Y[i])
		}
		if locLat.Y[i] <= 0 {
			t.Errorf("locality mean latency at N=%v: %v, want > 0", x, locLat.Y[i])
		}
	}
	// At N=1 every policy routes home; past that the balancing policies pay
	// WAN hops, so their local fraction must drop below locality's.
	if llFrac.Y[0] != 1 || wFrac.Y[0] != 1 {
		t.Errorf("single-DC local fractions: least-loaded %v, weighted %v, want 1", llFrac.Y[0], wFrac.Y[0])
	}
	last := len(wantX) - 1
	if llFrac.Y[last] >= 1 || wFrac.Y[last] >= 1 {
		t.Errorf("at N=8 balancing policies never left home: least-loaded %v, weighted %v", llFrac.Y[last], wFrac.Y[last])
	}
}

func TestAvailabilityShape(t *testing.T) {
	tab := runFig(t, "availability")
	none, ok1 := tab.SeriesByLabel("availability (none)")
	resched, ok2 := tab.SeriesByLabel("availability (reschedule)")
	replace, ok3 := tab.SeriesByLabel("availability (replace)")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing availability series; have %v", tab.Series)
	}
	if len(none.Y) != 4 || len(resched.Y) != 4 || len(replace.Y) != 4 {
		t.Fatalf("want 4 failure-rate points per mode, got %d/%d/%d",
			len(none.Y), len(resched.Y), len(replace.Y))
	}
	// The first point is fault-free: every mode must agree exactly (the
	// repair hook observes no transitions) and sit near full availability.
	if none.Y[0] != replace.Y[0] || none.Y[0] != resched.Y[0] {
		t.Errorf("fault-free availability differs across modes: %v/%v/%v",
			none.Y[0], resched.Y[0], replace.Y[0])
	}
	if none.Y[0] < 0.95 {
		t.Errorf("fault-free availability %v, want ≈1", none.Y[0])
	}
	// Unrepaired availability degrades as failures accelerate.
	if none.Y[3] >= none.Y[0] {
		t.Errorf("availability without repair did not degrade: %v → %v", none.Y[0], none.Y[3])
	}
	// The acceptance property: reschedule+replace recovers availability at
	// the same failure rates and seeds — strictly at the two highest rates
	// (at the mildest rate the few fast-config trials may draw no failure
	// at all, leaving the modes identical).
	for i := 1; i < 4; i++ {
		if replace.Y[i] < none.Y[i] {
			t.Errorf("x=%g: replace availability %v below none %v",
				replace.X[i], replace.Y[i], none.Y[i])
		}
	}
	for i := 2; i < 4; i++ {
		if replace.Y[i] <= none.Y[i] {
			t.Errorf("x=%g: replace availability %v not strictly above none %v",
				replace.X[i], replace.Y[i], none.Y[i])
		}
	}
	// Latency series exist for every mode.
	for _, mode := range []string{"none", "reschedule", "replace"} {
		if _, ok := tab.SeriesByLabel("mean latency (" + mode + ")"); !ok {
			t.Errorf("missing mean latency series for %s", mode)
		}
		if _, ok := tab.SeriesByLabel("p99 latency (" + mode + ")"); !ok {
			t.Errorf("missing p99 latency series for %s", mode)
		}
	}
	if len(tab.Notes) < 2 {
		t.Errorf("availability notes = %v", tab.Notes)
	}
}
