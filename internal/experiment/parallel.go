package experiment

import (
	"context"
	"runtime"
	"sync"
)

// forEachPointTrial runs fn(point, trial) for every pair in
// [0, points) × [0, trials) on ONE bounded worker pool spanning the whole
// sweep, and returns the results as results[point][trial]. Jobs are claimed
// in (point, trial) order but may complete in any order; callers aggregate
// per point by folding trials in index order, so downstream floating-point
// folds are bit-identical to a serial sweep.
//
// A single cross-point queue is what keeps `-fig all` busy: with a per-point
// pool, every sweep point ends with a tail of idle cores waiting for its
// slowest trial before the next point may start. Here the first trials of
// point k+1 start the moment workers free up, so the only idle tail is the
// final one of the whole sweep.
//
// The first error wins; remaining workers drain without claiming new jobs.
func forEachPointTrial[T any](points, trials int, fn func(point, trial int) (T, error)) ([][]T, error) {
	return forEachPointTrialCtx(context.Background(), points, trials, fn)
}

// forEachPointTrialCtx is forEachPointTrial with cancellation: once ctx
// fires no new (point, trial) cell is claimed — in-flight cells finish, so
// the sweep stops within one cell per worker — and the sweep returns
// ctx.Err(). First-error-wins semantics are preserved: an fn error observed
// before the cancellation still wins over ctx.Err().
func forEachPointTrialCtx[T any](ctx context.Context, points, trials int, fn func(point, trial int) (T, error)) ([][]T, error) {
	results := make([][]T, points)
	flat := make([]T, points*trials)
	for p := range results {
		results[p] = flat[p*trials : (p+1)*trials : (p+1)*trials]
	}
	jobs := points * trials
	// GOMAXPROCS (not NumCPU) respects container CPU quotas and explicit
	// user overrides; NumCPU would oversubscribe a quota-limited cgroup.
	workers := runtime.GOMAXPROCS(0)
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	done := ctx.Done()
	claim := func() (int, bool) {
		if done != nil && ctx.Err() != nil {
			return 0, false
		}
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= jobs {
			return 0, false
		}
		j := next
		next++
		return j, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				j, ok := claim()
				if !ok {
					return
				}
				out, err := fn(j/trials, j%trials)
				if err != nil {
					fail(err)
					return
				}
				results[j/trials][j%trials] = out
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// forEachTrial runs fn(trial) for trial ∈ [0, trials) on a bounded worker
// pool and returns the per-trial results *in trial order*, so downstream
// aggregation (floating-point folds included) is bit-identical to a serial
// run. It is the single-point special case of forEachPointTrial.
func forEachTrial[T any](trials int, fn func(trial int) (T, error)) ([]T, error) {
	if trials == 0 {
		return nil, nil
	}
	results, err := forEachPointTrial(1, trials, func(_, trial int) (T, error) {
		return fn(trial)
	})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}
