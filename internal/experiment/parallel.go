package experiment

import (
	"runtime"
	"sync"
)

// forEachTrial runs fn(trial) for trial ∈ [0, trials) on a bounded worker
// pool and returns the per-trial results *in trial order*, so downstream
// aggregation (floating-point folds included) is bit-identical to a serial
// run. The first error wins; remaining workers drain without starting new
// trials.
func forEachTrial[T any](trials int, fn func(trial int) (T, error)) ([]T, error) {
	results := make([]T, trials)
	// GOMAXPROCS (not NumCPU) respects container CPU quotas and explicit
	// user overrides; NumCPU would oversubscribe a quota-limited cgroup.
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= trials {
			return 0, false
		}
		t := next
		next++
		return t, true
	}
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				trial, ok := claim()
				if !ok {
					return
				}
				out, err := fn(trial)
				if err != nil {
					fail(err)
					return
				}
				results[trial] = out
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
