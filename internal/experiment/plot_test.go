package experiment

import (
	"math"
	"strings"
	"testing"
)

func plotTable() *Table {
	t := &Table{ID: "p", Title: "Plot test", XLabel: "x", YLabel: "y"}
	for i := 0; i <= 10; i++ {
		t.AddPoint("up", float64(i), float64(i))
		t.AddPoint("down", float64(i), float64(10-i))
	}
	return t
}

func TestPlotBasics(t *testing.T) {
	out := plotTable().Plot(40, 10)
	for _, want := range []string{"p — Plot test", "*=up", "o=down", "└", "10", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Both markers present.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
	// Crossing point where both series meet renders as collision glyph.
	if !strings.Contains(out, "?") {
		t.Errorf("expected collision glyph where series cross:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestPlotDegenerate(t *testing.T) {
	empty := &Table{ID: "e", Title: "Empty"}
	if !strings.Contains(empty.Plot(40, 10), "no data") {
		t.Error("empty table plot missing placeholder")
	}

	nan := &Table{ID: "n", Title: "NaNs"}
	nan.AddPoint("s", math.NaN(), math.NaN())
	nan.AddPoint("s", math.Inf(1), 1)
	if !strings.Contains(nan.Plot(40, 10), "no finite data") {
		t.Error("all-NaN table plot missing placeholder")
	}

	single := &Table{ID: "s", Title: "Single"}
	single.AddPoint("s", 5, 7)
	out := single.Plot(40, 10)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not rendered:\n%s", out)
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	out := plotTable().Plot(1, 1) // clamped to minimums, must not panic
	if len(out) == 0 {
		t.Error("empty plot")
	}
}

func TestPlotManySeriesReuseMarkers(t *testing.T) {
	tab := &Table{ID: "m", Title: "Many"}
	for i := 0; i < 10; i++ {
		tab.AddPoint(string(rune('a'+i)), float64(i), float64(i))
	}
	out := tab.Plot(40, 10)
	if !strings.Contains(out, "*=a") {
		t.Errorf("legend missing:\n%s", out)
	}
}
