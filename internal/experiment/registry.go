package experiment

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper figure.
type Runner func(Config) (*Table, error)

// registry maps experiment ids to their runners.
var registry = map[string]Runner{
	"fig5":  Fig5,
	"fig6":  Fig6,
	"fig7":  Fig7,
	"fig8":  Fig8,
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"fig15": Fig15,
	"fig16": Fig16,
	"tail":  FigTail,

	// Ablations of the paper's design choices (DESIGN.md §4) and the
	// abstract's headline numbers in one table.
	"ablation-placement":  AblationPlacement,
	"ablation-scheduling": AblationScheduling,
	"headline":            Headline,

	// Solver portfolio: anytime racing vs single baselines, with
	// time-to-quality curves for the metaheuristic tier.
	"portfolio": Portfolio,

	// Model robustness: how Eq. 12 degrades when service is not exponential.
	"robustness": Robustness,

	// Fault tolerance: availability under node failures × repair mode.
	"availability": Availability,

	// Region scale: N datacenters composed under one clock × routing policy.
	"cluster": Cluster,

	// Online control plane: cost-vs-SLO frontier under correlated
	// preemption × control policy.
	"control": Control,
}

// IDs returns the known experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return r(cfg)
}
