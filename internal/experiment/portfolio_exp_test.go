package experiment

import (
	"fmt"
	"reflect"
	"testing"
)

func TestPortfolioTimeToQualityCurves(t *testing.T) {
	tab, err := Portfolio(FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"SA", "LNS", "PSO"} {
		s, ok := tab.SeriesByLabel(label)
		if !ok {
			t.Errorf("missing time-to-quality curve %s", label)
			continue
		}
		if len(s.X) < 2 {
			t.Errorf("%s: curve has %d checkpoints", label, len(s.X))
			continue
		}
		for i := 1; i < len(s.X); i++ {
			if s.X[i] <= s.X[i-1] {
				t.Errorf("%s: checkpoint grid not increasing at %d: %g <= %g", label, i, s.X[i], s.X[i-1])
			}
			if s.Y[i] > s.Y[i-1] {
				t.Errorf("%s: incumbent curve not monotone at checkpoint %g: %g > %g",
					label, s.X[i], s.Y[i], s.Y[i-1])
			}
		}
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("%s: no improvement over its first incumbent (%g -> %g)",
				label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

// TestPortfolioRaceBeatsBaselines parses the per-point notes: the racing
// portfolio must match or beat the best single baseline on every ablation
// point (it runs the baselines inside the race, so losing would be a bug in
// winner selection).
func TestPortfolioRaceBeatsBaselines(t *testing.T) {
	tab, err := Portfolio(FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Notes) != len(portfolioPoints) {
		t.Fatalf("notes = %d, want one per sweep point (%d)", len(tab.Notes), len(portfolioPoints))
	}
	for _, note := range tab.Notes {
		var n int
		var winner, base string
		var winnerObj, baseObj, pct float64
		if _, err := fmt.Sscanf(note, "n=%d: race winner %s %f vs best baseline %s %f (%f%% better)",
			&n, &winner, &winnerObj, &base, &baseObj, &pct); err != nil {
			t.Fatalf("unparseable note %q: %v", note, err)
		}
		if winnerObj > baseObj {
			t.Errorf("n=%d: race winner %s %.4f worse than baseline %s %.4f",
				n, winner, winnerObj, base, baseObj)
		}
	}
}

func TestPortfolioDeterministicAtFixedSeed(t *testing.T) {
	a, err := Portfolio(FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Portfolio(FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Error("time-to-quality curves differ between identical runs")
	}
	if !reflect.DeepEqual(a.Notes, b.Notes) {
		t.Errorf("race notes differ between identical runs:\n%v\n%v", a.Notes, b.Notes)
	}
}
