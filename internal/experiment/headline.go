package experiment

import (
	"nfvchain/internal/stats"
)

// Headline distills the paper's abstract into one table: the average
// resource-utilization improvement (paper: +33.4% vs NAH), the average
// total-latency reduction (paper: −19.9% vs CGA), and the job-rejection
// reduction (paper: −23.4 points worth vs CGA under loss). Each series has
// a single point: the measured aggregate.
func Headline(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "headline",
		Title:  "Headline claims (paper abstract) — measured aggregates",
		XLabel: "claim",
		YLabel: "value",
	}

	f5, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	b, n := f5.Mean("BFDSU"), f5.Mean("NAH")
	utilGain := 0.0
	if n > 0 {
		utilGain = (b - n) / n
	}
	t.AddPoint("utilization-improvement-vs-NAH", 1, utilGain)
	t.Note("utilization: BFDSU %.2f%% vs NAH %.2f%% → +%.1f%% (paper: +33.4%%)",
		b*100, n*100, utilGain*100)

	f11, err := Fig11(cfg)
	if err != nil {
		return nil, err
	}
	e, _ := f11.SeriesByLabel("enhancement")
	latencyGain := stats.Mean(e.Y)
	t.AddPoint("latency-reduction-vs-CGA", 2, latencyGain)
	t.Note("latency: mean enhancement ratio across the Fig. 11 sweep %.1f%% (paper: 19.9%%)",
		latencyGain*100)

	f16, err := Fig16(cfg)
	if err != nil {
		return nil, err
	}
	rj, cj := f16.Mean("RCKK"), f16.Mean("CGA")
	t.AddPoint("rejection-RCKK", 3, rj)
	t.AddPoint("rejection-CGA", 3, cj)
	t.Note("rejection under loss: RCKK %.2f%% vs CGA %.2f%% (paper: 4.87%% vs 28.28%%)",
		rj*100, cj*100)

	return t, nil
}
