// Package experiment regenerates every figure of the paper's evaluation
// (Section V, Figs. 5–16 plus the 99th-percentile tail statistics quoted in
// prose). Each experiment returns a Table whose series mirror the figure's
// curves; the nfvsim CLI prints them and EXPERIMENTS.md records paper-vs-
// measured values. Experiment parameters follow Section V-A: 6–30 VNFs,
// 30–1000 requests, 4–50 nodes with capacities up to 5000 units, chains of
// at most 6 VNFs, λ ∈ [1,100] pps, and P ∈ [0.98, 1].
package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Series is one curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Table is the regenerated data behind one paper figure.
type Table struct {
	ID     string // e.g. "fig5"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries scalar findings (overall averages, enhancement ratios).
	Notes []string
}

// AddPoint appends (x, y) to the named series, creating it if needed.
func (t *Table) AddPoint(label string, x, y float64) {
	for i := range t.Series {
		if t.Series[i].Label == label {
			t.Series[i].X = append(t.Series[i].X, x)
			t.Series[i].Y = append(t.Series[i].Y, y)
			return
		}
	}
	t.Series = append(t.Series, Series{Label: label, X: []float64{x}, Y: []float64{y}})
}

// SeriesByLabel returns the named series, or false.
func (t *Table) SeriesByLabel(label string) (Series, bool) {
	for _, s := range t.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// Mean returns the average Y of the named series (0 when absent/empty).
func (t *Table) Mean(label string) float64 {
	s, ok := t.SeriesByLabel(label)
	if !ok || len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

// Note records a scalar finding.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text: one row per X value, one column
// per series.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if len(t.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteString("\n")
	for i := range t.Series[0].X {
		fmt.Fprintf(&b, "%-12.6g", t.Series[0].X[i])
		for _, s := range t.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %14.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the table as CSV: header x,<series...>, one row per X.
func (t *Table) WriteCSV(w io.Writer) error {
	if len(t.Series) == 0 {
		_, err := fmt.Fprintln(w, "x")
		return err
	}
	cols := []string{"x"}
	for _, s := range t.Series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range t.Series[0].X {
		row := []string{fmt.Sprintf("%g", t.Series[0].X[i])}
		for _, s := range t.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
