package experiment

import (
	"fmt"
	"math"

	"nfvchain/internal/model"
	"nfvchain/internal/workload"
)

// Config tunes experiment fidelity. The zero value is unusable; start from
// DefaultConfig (paper-faithful averaging) or FastConfig (CI-friendly).
type Config struct {
	// Seed drives every randomized component.
	Seed uint64
	// PlacementTrials is the number of random instances averaged per X
	// point in the placement figures (Figs. 5–10).
	PlacementTrials int
	// SchedulingTrials is the number of random instances averaged per X
	// point in the scheduling figures (the paper executes 1000).
	SchedulingTrials int
}

// DefaultConfig mirrors the paper's averaging protocol.
func DefaultConfig() Config {
	return Config{Seed: 1, PlacementTrials: 30, SchedulingTrials: 1000}
}

// FastConfig trades averaging depth for speed; shapes remain but curves are
// noisier. Used by tests.
func FastConfig() Config {
	return Config{Seed: 1, PlacementTrials: 8, SchedulingTrials: 60}
}

// Validate reports unusable configs.
func (c Config) Validate() error {
	if c.PlacementTrials < 1 {
		return fmt.Errorf("experiment: PlacementTrials %d < 1", c.PlacementTrials)
	}
	if c.SchedulingTrials < 1 {
		return fmt.Errorf("experiment: SchedulingTrials %d < 1", c.SchedulingTrials)
	}
	return nil
}

// placementLoadFactor is the fraction of total node capacity consumed by
// total VNF demand in the placement figures. High enough that packing
// quality matters, low enough that every compared algorithm (including the
// chain-oriented NAH, which cannot restart) almost always finds a feasible
// placement.
const placementLoadFactor = 0.6

// Quantization of the generated instances: node capacities land on server
// tiers (multiples of 1000 units ≈ 6⅔ CPU cores at the paper's 150
// units/core) and VNF bundle demands on multiples of 250 units. Tiered
// sizes are how real fleets look, and they are what makes fit *matching*
// observable: snug placements exist, and algorithms that don't look for
// them leave measurable gaps.
const (
	capacityTier = 1000.0
	demandTier   = 250.0
)

// placementProblem generates a placement instance with the workload
// generator, rescales VNF demands so total demand is loadFactor × total
// capacity, and quantizes sizes to the tiers above. Rescaling keeps
// tightness — the property the packing figures sweep — invariant to the
// request count, matching the flat curves of Fig. 5.
func placementProblem(seed uint64, vnfs, requests, nodes int, loadFactor float64) (*model.Problem, error) {
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	cfg.NumVNFs = vnfs
	cfg.NumRequests = requests
	cfg.NumNodes = nodes
	if cfg.MaxChainLength > vnfs {
		cfg.MaxChainLength = vnfs
	}
	p, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	total := p.TotalDemand()
	if total == 0 {
		return p, nil
	}
	scale := loadFactor * p.TotalCapacity() / total
	for i := range p.VNFs {
		p.VNFs[i].Demand *= scale
	}
	for i := range p.Nodes {
		p.Nodes[i].Capacity = math.Max(capacityTier, capacityTier*math.Round(p.Nodes[i].Capacity/capacityTier))
	}
	for i := range p.VNFs {
		bundle := p.VNFs[i].TotalDemand()
		q := math.Max(demandTier, demandTier*math.Round(bundle/demandTier))
		p.VNFs[i].Demand = q / float64(p.VNFs[i].Instances)
	}
	return p, nil
}
