package experiment

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachTrialOrdering(t *testing.T) {
	got, err := forEachTrial(100, func(trial int) (int, error) {
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachTrialErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := forEachTrial(1000, func(trial int) (int, error) {
		calls.Add(1)
		if trial == 7 {
			return 0, boom
		}
		return trial, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool must stop claiming new trials after the failure.
	if calls.Load() == 1000 {
		t.Error("all trials ran despite early failure")
	}
}

func TestForEachTrialEdgeCases(t *testing.T) {
	got, err := forEachTrial(0, func(int) (string, error) { return "x", nil })
	if err != nil || len(got) != 0 {
		t.Errorf("zero trials: %v %v", got, err)
	}
	one, err := forEachTrial(1, func(int) (string, error) { return "only", nil })
	if err != nil || len(one) != 1 || one[0] != "only" {
		t.Errorf("one trial: %v %v", one, err)
	}
}

func TestParallelExperimentsDeterministic(t *testing.T) {
	// The parallel fold must be bit-identical across runs (and hence to a
	// serial execution): same seeds, same trial-order aggregation.
	cfg := Config{Seed: 1, PlacementTrials: 4, SchedulingTrials: 20}
	for _, id := range []string{"fig5", "fig11"} {
		a, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Series) != len(b.Series) {
			t.Fatalf("%s: series count differs", id)
		}
		for si := range a.Series {
			for i := range a.Series[si].Y {
				if a.Series[si].Y[i] != b.Series[si].Y[i] {
					t.Fatalf("%s: %s[%d] differs across runs: %v vs %v",
						id, a.Series[si].Label, i, a.Series[si].Y[i], b.Series[si].Y[i])
				}
			}
		}
	}
}
