package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachTrialOrdering(t *testing.T) {
	got, err := forEachTrial(100, func(trial int) (int, error) {
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachTrialErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := forEachTrial(1000, func(trial int) (int, error) {
		calls.Add(1)
		if trial == 7 {
			return 0, boom
		}
		return trial, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool must stop claiming new trials after the failure.
	if calls.Load() == 1000 {
		t.Error("all trials ran despite early failure")
	}
}

func TestForEachTrialEdgeCases(t *testing.T) {
	got, err := forEachTrial(0, func(int) (string, error) { return "x", nil })
	if err != nil || len(got) != 0 {
		t.Errorf("zero trials: %v %v", got, err)
	}
	one, err := forEachTrial(1, func(int) (string, error) { return "only", nil })
	if err != nil || len(one) != 1 || one[0] != "only" {
		t.Errorf("one trial: %v %v", one, err)
	}
}

func TestForEachPointTrialOrdering(t *testing.T) {
	const points, trials = 7, 13
	got, err := forEachPointTrial(points, trials, func(point, trial int) (int, error) {
		return point*1000 + trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != points {
		t.Fatalf("points = %d, want %d", len(got), points)
	}
	for p := range got {
		if len(got[p]) != trials {
			t.Fatalf("point %d: trials = %d, want %d", p, len(got[p]), trials)
		}
		for tr, v := range got[p] {
			if v != p*1000+tr {
				t.Fatalf("result[%d][%d] = %d, want %d", p, tr, v, p*1000+tr)
			}
		}
	}
}

func TestForEachPointTrialZeroPoints(t *testing.T) {
	got, err := forEachPointTrial(0, 5, func(int, int) (int, error) {
		t.Error("fn called with zero points")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("zero points: %v %v", got, err)
	}
}

// TestForEachPointTrialWorkerClamp pins the workers > jobs clamp: with only
// two jobs, no more than two may ever be in flight, however many cores
// GOMAXPROCS offers.
func TestForEachPointTrialWorkerClamp(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 3 {
		t.Skip("needs GOMAXPROCS >= 3 to observe the clamp")
	}
	var inFlight, peak atomic.Int64
	var release sync.WaitGroup
	release.Add(2) // both jobs must overlap before either finishes
	_, err := forEachPointTrial(1, 2, func(_, trial int) (int, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		release.Done()
		release.Wait()
		return trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != 2 {
		t.Fatalf("peak concurrency = %d, want exactly 2 (jobs), not GOMAXPROCS=%d",
			got, runtime.GOMAXPROCS(0))
	}
}

// TestForEachPointTrialFirstErrorWins forces a single worker so the claim
// order is the serial job order, then plants failures at trials 5 and 7: the
// earliest-claimed failure must be the one reported, and the worker must
// drain — no job after the failing one may run.
func TestForEachPointTrialFirstErrorWins(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	errFirst := errors.New("first")
	errLater := errors.New("later")
	var calls atomic.Int64
	_, err := forEachPointTrial(1, 100, func(_, trial int) (int, error) {
		calls.Add(1)
		switch trial {
		case 5:
			return 0, fmt.Errorf("trial 5: %w", errFirst)
		case 7:
			return 0, fmt.Errorf("trial 7: %w", errLater)
		}
		return trial, nil
	})
	if !errors.Is(err, errFirst) {
		t.Fatalf("err = %v, want the trial-5 error", err)
	}
	if got := calls.Load(); got != 6 {
		t.Fatalf("calls = %d, want 6 (trials 0..5, then drain)", got)
	}
}

// TestFigPointAggregateParallelismInvariant asserts the promise the whole
// sweep pipeline rests on: a figure point's aggregate is a trial-index-order
// fold, so its value is bit-identical whether the pool ran on one core or
// eight.
func TestFigPointAggregateParallelismInvariant(t *testing.T) {
	cfg := Config{Seed: 3, PlacementTrials: 3, SchedulingTrials: 12}
	run := func(procs int) *Table {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		tab, err := Run("fig11", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	serial, wide := run(1), run(8)
	if len(serial.Series) != len(wide.Series) {
		t.Fatalf("series count differs: %d vs %d", len(serial.Series), len(wide.Series))
	}
	for si := range serial.Series {
		for i := range serial.Series[si].Y {
			if serial.Series[si].Y[i] != wide.Series[si].Y[i] {
				t.Fatalf("%s[%d]: GOMAXPROCS(1) gives %v, GOMAXPROCS(8) gives %v",
					serial.Series[si].Label, i, serial.Series[si].Y[i], wide.Series[si].Y[i])
			}
		}
	}
}

func TestParallelExperimentsDeterministic(t *testing.T) {
	// The parallel fold must be bit-identical across runs (and hence to a
	// serial execution): same seeds, same trial-order aggregation.
	cfg := Config{Seed: 1, PlacementTrials: 4, SchedulingTrials: 20}
	for _, id := range []string{"fig5", "fig11"} {
		a, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Series) != len(b.Series) {
			t.Fatalf("%s: series count differs", id)
		}
		for si := range a.Series {
			for i := range a.Series[si].Y {
				if a.Series[si].Y[i] != b.Series[si].Y[i] {
					t.Fatalf("%s: %s[%d] differs across runs: %v vs %v",
						id, a.Series[si].Label, i, a.Series[si].Y[i], b.Series[si].Y[i])
				}
			}
		}
	}
}

// TestForEachPointTrialCtxCancel asserts a cancelled sweep stops claiming
// new cells promptly and reports ctx.Err().
func TestForEachPointTrialCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	var once sync.Once
	_, err := forEachPointTrialCtx(ctx, 10, 100, func(point, trial int) (int, error) {
		calls.Add(1)
		once.Do(cancel) // cancel from inside the first claimed cell
		return point*1000 + trial, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// After the cancellation, at most one in-flight cell per worker may
	// still finish; nothing new is claimed.
	if got := calls.Load(); got > int64(runtime.GOMAXPROCS(0)+1) {
		t.Errorf("calls = %d after immediate cancel, want at most one per worker", got)
	}
}

// TestForEachPointTrialCtxFirstErrorWins asserts an fn error observed before
// the cancellation still wins over ctx.Err().
func TestForEachPointTrialCtxFirstErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	var once sync.Once
	_, err := forEachPointTrialCtx(ctx, 1, 50, func(_, trial int) (int, error) {
		var failed bool
		once.Do(func() { failed = true })
		if failed {
			defer cancel()
			return 0, boom
		}
		return trial, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom (first error wins over cancellation)", err)
	}
}

// TestForEachPointTrialCtxBackground asserts the Background path is the
// plain forEachPointTrial behavior.
func TestForEachPointTrialCtxBackground(t *testing.T) {
	got, err := forEachPointTrialCtx(context.Background(), 2, 3, func(point, trial int) (int, error) {
		return point*10 + trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := range got {
		for tr, v := range got[p] {
			if v != p*10+tr {
				t.Fatalf("result[%d][%d] = %d", p, tr, v)
			}
		}
	}
}
