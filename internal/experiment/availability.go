package experiment

import (
	"fmt"
	"math"
	"sync"

	"nfvchain/internal/dynamic"
	"nfvchain/internal/placement"
	"nfvchain/internal/repair"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
	"nfvchain/internal/stats"
	"nfvchain/internal/workload"
)

// availabilityModes are the repair modes compared at every failure rate.
var availabilityModes = []repair.Mode{
	repair.ModeNone,
	repair.ModeReschedule,
	repair.ModeRescheduleReplace,
}

// Availability quantifies what the paper's steady-state model leaves out:
// node failures. A BFDSU-placed, RCKK-scheduled deployment is simulated
// under increasing random failure rates (MTBF from ∞ down to the horizon
// itself, MTTR = horizon/6) crossed with the three repair modes of
// internal/repair, using the same seed per (rate, trial) cell so every mode
// faces the identical fault sample path. Reported per mode: availability
// (delivered/offered), mean latency, and p99 latency. Because the paper's
// placement hosts all of a VNF's instances on one node, reschedule-only
// repair has no survivors to rebalance onto after a failure and tracks the
// no-repair baseline; reschedule+replace boots ClickOS-cost replicas on
// surviving nodes and recovers most of the lost availability.
func Availability(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "availability",
		Title:  "Availability under node failures × repair mode (BFDSU+RCKK, MTTR=horizon/6, ClickOS setup)",
		XLabel: "expected failures per node per horizon (horizon/MTBF)",
		YLabel: "availability (delivered/offered)",
	}
	const (
		horizon = 20.0
		warmup  = 1.0
	)
	mttr := horizon / 6
	// MTBF = factor × horizon; +Inf disables random faults (the baseline).
	factors := []float64{math.Inf(1), 10, 3, 1}

	type modeResult struct {
		avail, meanW, p99 float64
		p99ok             bool
		repaired          repair.Stats
	}
	// Each (point, trial) cell runs 3 fault-injected simulations; recycling
	// simulators across cells keeps the packet arena, agenda and fault
	// tables warm instead of reallocating them 3×points×trials times.
	// Results alias the simulator's buffers, so each cell extracts its
	// scalars before returning the simulator to the pool.
	simPool := sync.Pool{New: func() any { return simulate.NewSimulator() }}
	perPoint, err := forEachPointTrial(len(factors), cfg.PlacementTrials,
		func(point, trial int) ([3]modeResult, error) {
			var out [3]modeResult
			seed := cfg.Seed + uint64(trial)*2654435761
			wcfg := workload.DefaultConfig()
			wcfg.Seed = seed
			wcfg.NumVNFs = 8
			wcfg.NumRequests = 40
			wcfg.NumNodes = 6
			wcfg.RateMax = 40
			prob, err := workload.Generate(wcfg)
			if err != nil {
				return out, fmt.Errorf("availability: %w", err)
			}
			placed, err := (&placement.BFDSU{Seed: seed}).Place(prob)
			if err != nil {
				return out, fmt.Errorf("availability: %w", err)
			}
			sched, err := scheduling.ScheduleAll(prob, scheduling.RCKK{})
			if err != nil {
				return out, fmt.Errorf("availability: %w", err)
			}
			sim := simPool.Get().(*simulate.Simulator)
			defer simPool.Put(sim)
			plan := &simulate.FaultPlan{MTBF: factors[point] * horizon, MTTR: mttr}
			for mi, mode := range availabilityModes {
				ctrl, err := repair.New(repair.Config{
					Problem:   prob,
					Placement: placed.Placement,
					Schedule:  sched,
					Mode:      mode,
					SetupCost: dynamic.SetupCostClickOS,
					Seed:      seed,
				})
				if err != nil {
					return out, fmt.Errorf("availability: %w", err)
				}
				if err := sim.Reset(simulate.Config{
					Problem:   prob,
					Schedule:  sched,
					Placement: placed.Placement,
					Horizon:   horizon,
					Warmup:    warmup,
					LinkDelay: 0.001,
					Seed:      seed,
					FaultPlan: plan,
					FaultHook: ctrl,
				}); err != nil {
					return out, fmt.Errorf("availability: %w", err)
				}
				res, err := sim.Run()
				if err != nil {
					return out, fmt.Errorf("availability: %w", err)
				}
				p99, ok := stats.PercentileOK(res.LatencySamples, 99)
				out[mi] = modeResult{
					avail:    res.Availability,
					meanW:    res.Latency.Mean(),
					p99:      p99,
					p99ok:    ok,
					repaired: ctrl.Stats(),
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	var replacementsTotal, replacementsFailed int
	for pi, factor := range factors {
		x := 0.0 // expected failures per node per horizon
		if !math.IsInf(factor, 1) {
			x = 1 / factor
		}
		for mi, mode := range availabilityModes {
			var avail, meanW, p99 float64
			p99n := 0
			for _, tr := range perPoint[pi] {
				avail += tr[mi].avail
				meanW += tr[mi].meanW
				if tr[mi].p99ok {
					p99 += tr[mi].p99
					p99n++
				}
				replacementsTotal += tr[mi].repaired.Replacements
				replacementsFailed += tr[mi].repaired.ReplacementsFailed
			}
			n := float64(len(perPoint[pi]))
			t.AddPoint("availability ("+mode.String()+")", x, avail/n)
			t.AddPoint("mean latency ("+mode.String()+")", x, meanW/n)
			if p99n > 0 {
				t.AddPoint("p99 latency ("+mode.String()+")", x, p99/float64(p99n))
			}
		}
	}

	noneAtWorst := t.Series[0].Y[len(factors)-1]
	if s, ok := t.SeriesByLabel("availability (" + repair.ModeRescheduleReplace.String() + ")"); ok {
		replaceAtWorst := s.Y[len(s.Y)-1]
		t.Note("at MTBF = horizon, reschedule+replace availability %.4f vs %.4f unrepaired (+%.1f%%)",
			replaceAtWorst, noneAtWorst, 100*(replaceAtWorst-noneAtWorst))
	}
	t.Note("replacements booted across all runs: %d (%d found no feasible node); setup cost %.3gs each (ClickOS)",
		replacementsTotal, replacementsFailed, dynamic.SetupCostClickOS)
	t.Note("reschedule-only tracks no-repair: the paper's placement co-locates all of a VNF's instances, so a node failure leaves no survivors to rebalance onto")
	return t, nil
}
