package dynamic

import (
	"fmt"
	"strings"
	"testing"

	"nfvchain/internal/model"
)

// baseProblem: one VNF with one instance serving 100 pps, plenty of node
// capacity for replicas.
func baseProblem() *model.Problem {
	return &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 100},
			{ID: "n2", Capacity: 100},
		},
		VNFs: []model.VNF{
			{ID: "fw", Instances: 1, Demand: 10, ServiceRate: 100},
		},
	}
}

func request(id string, rate float64) model.Request {
	return model.Request{
		ID:           model.RequestID(id),
		Chain:        []model.VNFID{"fw"},
		Rate:         rate,
		DeliveryProb: 1,
	}
}

func newController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil problem accepted")
	}
	if _, err := New(Config{Problem: baseProblem(), SetupCost: -1}); err == nil {
		t.Error("negative setup cost accepted")
	}
	if _, err := New(Config{Problem: baseProblem(), ScaleOutUtilization: 1.5}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	if _, err := New(Config{Problem: baseProblem(), RetireLinger: -2}); err == nil {
		t.Error("negative linger accepted")
	}
	c := newController(t, Config{Problem: baseProblem()})
	if c.cfg.SetupCost != SetupCostVM {
		t.Errorf("default setup cost = %v, want VM boot", c.cfg.SetupCost)
	}
}

func TestAdmitSimple(t *testing.T) {
	c := newController(t, Config{Problem: baseProblem()})
	out, err := c.Admit(request("r1", 50), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted || out.ReadyAt != 0 || len(out.ScaleOuts) != 0 {
		t.Errorf("outcome = %+v", out)
	}
	if got := c.Stats().Admitted; got != 1 {
		t.Errorf("Admitted = %d", got)
	}
	_, pl, sched := c.Snapshot()
	if err := pl.Validate(c.problem); err != nil {
		t.Fatal(err)
	}
	if _, ok := sched.Instance("r1", "fw"); !ok {
		t.Error("request not scheduled")
	}
}

func TestAdmitErrors(t *testing.T) {
	c := newController(t, Config{Problem: baseProblem()})
	if _, err := c.Admit(model.Request{ID: "bad"}, 0); err == nil {
		t.Error("invalid request accepted")
	}
	if _, err := c.Admit(model.Request{ID: "x", Chain: []model.VNFID{"ghost"}, Rate: 1, DeliveryProb: 1}, 0); err == nil {
		t.Error("unknown vnf accepted")
	}
	if _, err := c.Admit(request("r1", 10), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(request("r1", 10), 2); err == nil {
		t.Error("duplicate request accepted")
	}
	if _, err := c.Admit(request("r2", 10), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Admit(request("r3", 10), 0.5); err == nil {
		t.Error("time travel accepted")
	}
}

func TestScaleOutOnSaturation(t *testing.T) {
	c := newController(t, Config{Problem: baseProblem(), SetupCost: SetupCostClickOS})
	// Fill the base instance close to the 0.9 threshold.
	if out, err := c.Admit(request("big", 85), 0); err != nil || !out.Accepted {
		t.Fatalf("first admit: %v %+v", err, out)
	}
	// The next request cannot fit (85+10 > 90): a replica must boot.
	out, err := c.Admit(request("spill", 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatal("spill rejected despite spare node capacity")
	}
	if len(out.ScaleOuts) != 1 {
		t.Fatalf("ScaleOuts = %v, want one replica", out.ScaleOuts)
	}
	if out.ReadyAt != 1+SetupCostClickOS {
		t.Errorf("ReadyAt = %v, want now+setup", out.ReadyAt)
	}
	st := c.Stats()
	if st.ScaleOuts != 1 || st.ActiveReplica != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.SetupSecs != SetupCostClickOS {
		t.Errorf("SetupSecs = %v", st.SetupSecs)
	}
	// The replica is a first-class VNF placed on a real node.
	_, pl, _ := c.Snapshot()
	host, ok := pl.Node(out.ScaleOuts[0])
	if !ok {
		t.Fatal("replica unplaced")
	}
	if host != "n1" && host != "n2" {
		t.Errorf("replica on %s", host)
	}
}

func TestRejectWhenNoCapacity(t *testing.T) {
	p := baseProblem()
	p.Nodes = []model.Node{{ID: "n1", Capacity: 10}} // room for base only
	c := newController(t, Config{Problem: p})
	if out, err := c.Admit(request("r1", 85), 0); err != nil || !out.Accepted {
		t.Fatalf("%v %+v", err, out)
	}
	out, err := c.Admit(request("r2", 50), 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("accepted without capacity for a replica")
	}
	if c.Stats().Rejected != 1 {
		t.Errorf("Rejected = %d", c.Stats().Rejected)
	}
}

func TestDepartFreesLoad(t *testing.T) {
	c := newController(t, Config{Problem: baseProblem()})
	if _, err := c.Admit(request("r1", 85), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart("r1", 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Depart("r1", 6); err == nil {
		t.Error("double departure accepted")
	}
	if err := c.Depart("ghost", 6); err == nil {
		t.Error("unknown departure accepted")
	}
	// Capacity is free again: a big request fits without scale-out.
	out, err := c.Admit(request("r2", 85), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted || len(out.ScaleOuts) != 0 {
		t.Errorf("outcome after departure = %+v", out)
	}
	if c.Stats().Departed != 1 {
		t.Errorf("Departed = %d", c.Stats().Departed)
	}
}

func TestScaleInRetiresIdleReplicas(t *testing.T) {
	c := newController(t, Config{Problem: baseProblem(), RetireLinger: 10, SetupCost: 0.01})
	if _, err := c.Admit(request("big", 85), 0); err != nil {
		t.Fatal(err)
	}
	out, err := c.Admit(request("spill", 20), 1)
	if err != nil || !out.Accepted || len(out.ScaleOuts) != 1 {
		t.Fatalf("%v %+v", err, out)
	}
	replica := out.ScaleOuts[0]

	// Still busy: nothing retires.
	retired, err := c.MaybeScaleIn(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 0 {
		t.Errorf("busy replica retired: %v", retired)
	}

	if err := c.Depart("spill", 100); err != nil {
		t.Fatal(err)
	}
	// Idle but within linger.
	retired, _ = c.MaybeScaleIn(105)
	if len(retired) != 0 {
		t.Errorf("retired too early: %v", retired)
	}
	// Past linger.
	retired, err = c.MaybeScaleIn(111)
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != 1 || retired[0] != replica {
		t.Fatalf("retired = %v, want [%s]", retired, replica)
	}
	st := c.Stats()
	if st.Retired != 1 || st.ActiveReplica != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The replica is fully gone: problem, placement, instances.
	prob, pl, _ := c.Snapshot()
	if _, ok := prob.VNF(replica); ok {
		t.Error("retired replica still in problem")
	}
	if _, ok := pl.Node(replica); ok {
		t.Error("retired replica still placed")
	}
}

func TestReplicaReuseBeforeRetire(t *testing.T) {
	c := newController(t, Config{Problem: baseProblem(), RetireLinger: 1000})
	if _, err := c.Admit(request("big", 85), 0); err != nil {
		t.Fatal(err)
	}
	out, err := c.Admit(request("spill", 20), 1)
	if err != nil || len(out.ScaleOuts) != 1 {
		t.Fatalf("%v %+v", err, out)
	}
	// Another spill joins the existing replica instead of booting a new one.
	out2, err := c.Admit(request("spill2", 20), 2)
	if err != nil || !out2.Accepted {
		t.Fatalf("%v %+v", err, out2)
	}
	if len(out2.ScaleOuts) != 0 {
		t.Errorf("unnecessary scale-out: %v", out2.ScaleOuts)
	}
}

func TestChainAdmissionAllOrNothing(t *testing.T) {
	p := &model.Problem{
		Nodes: []model.Node{{ID: "n1", Capacity: 20}},
		VNFs: []model.VNF{
			{ID: "a", Instances: 1, Demand: 10, ServiceRate: 100},
			{ID: "b", Instances: 1, Demand: 10, ServiceRate: 10}, // tiny µ
		},
	}
	c := newController(t, Config{Problem: p})
	r := model.Request{ID: "r", Chain: []model.VNFID{"a", "b"}, Rate: 50, DeliveryProb: 1}
	out, err := c.Admit(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Fatal("chain admitted despite saturated b and no replica room")
	}
	// No partial state: a later feasible request sees a clean slate.
	out2, err := c.Admit(request2("ok", 5, "a"), 1)
	if err != nil || !out2.Accepted {
		t.Fatalf("%v %+v", err, out2)
	}
}

func request2(id string, rate float64, chain ...model.VNFID) model.Request {
	return model.Request{ID: model.RequestID(id), Chain: chain, Rate: rate, DeliveryProb: 1}
}

func TestUtilizationView(t *testing.T) {
	c := newController(t, Config{Problem: baseProblem()})
	if _, err := c.Admit(request("r1", 40), 0); err != nil {
		t.Fatal(err)
	}
	us := c.Utilization()
	if len(us["fw"]) != 1 || us["fw"][0] != 0.4 {
		t.Errorf("Utilization = %v", us)
	}
}

func TestManyRequestsChurn(t *testing.T) {
	p := baseProblem()
	p.Nodes[0].Capacity = 500
	p.Nodes[1].Capacity = 500
	c := newController(t, Config{Problem: p, SetupCost: 0.001, RetireLinger: 5})
	now := 0.0
	active := []model.RequestID{}
	for i := 0; i < 200; i++ {
		now += 0.5
		id := model.RequestID(fmt.Sprintf("r%03d", i))
		out, err := c.Admit(model.Request{ID: id, Chain: []model.VNFID{"fw"}, Rate: 20, DeliveryProb: 0.98}, now)
		if err != nil {
			t.Fatal(err)
		}
		if out.Accepted {
			active = append(active, id)
		}
		if len(active) > 8 { // steady churn
			if err := c.Depart(active[0], now); err != nil {
				t.Fatal(err)
			}
			active = active[1:]
		}
		if i%20 == 0 {
			if _, err := c.MaybeScaleIn(now); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.Admitted == 0 || st.ScaleOuts == 0 {
		t.Errorf("churn produced no activity: %+v", st)
	}
	// Internal consistency: placement valid for the evolved problem.
	prob, pl, sched := c.Snapshot()
	if err := pl.Validate(prob); err != nil {
		t.Fatal(err)
	}
	// Every active request's schedule references existing VNFs/instances.
	for rid, m := range sched.InstanceOf {
		for f, k := range m {
			vnf, ok := prob.VNF(f)
			if !ok {
				t.Fatalf("request %s scheduled on missing vnf %s", rid, f)
			}
			if k < 0 || k >= vnf.Instances {
				t.Fatalf("request %s instance %d out of range", rid, k)
			}
		}
	}
	if strings.Contains("", "x") {
		t.Fatal("unreachable")
	}
}
