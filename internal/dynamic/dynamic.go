// Package dynamic adds the online dimension the paper discusses but defers
// (Section IV-A): requests arrive and depart over time, VNFs scale out by
// placing *replica* VNFs on other nodes ("place some replicas of the VNF on
// different nodes, and regard each replica as a new VNF"), and every
// scale-out pays a configurable setup cost — around five seconds to boot a
// middlebox VM, or ~30 ms on a ClickOS-style platform, both cited by the
// paper. Idle replicas are retired after a linger period so the fleet
// tracks load without thrashing.
package dynamic

import (
	"errors"
	"fmt"
	"sort"

	"nfvchain/internal/model"
	"nfvchain/internal/placement"
)

// Setup costs cited by the paper (seconds).
const (
	SetupCostVM      = 5.0   // booting a Linux VM per middlebox
	SetupCostClickOS = 0.030 // ClickOS-style lightweight instantiation
)

// Config parameterizes the online controller.
type Config struct {
	// Problem supplies nodes and base VNF definitions. Its Requests are
	// ignored — requests are admitted online.
	Problem *model.Problem
	// Placer performs the initial placement of base VNFs (nil = BFDSU).
	Placer placement.Algorithm
	// Seed drives the default placer.
	Seed uint64
	// SetupCost is the delay (seconds) before a newly placed replica can
	// serve traffic. Defaults to SetupCostVM.
	SetupCost float64
	// ScaleOutUtilization is the per-instance utilization above which a new
	// request triggers a replica instead of joining an existing instance.
	// Must lie in (0,1]; default 0.9.
	ScaleOutUtilization float64
	// RetireLinger is how long (seconds) a replica must stay completely
	// idle before MaybeScaleIn retires it; default 30.
	RetireLinger float64
}

// AdmitOutcome describes what happened to one admitted request.
type AdmitOutcome struct {
	// Accepted is false when some chain VNF had no capacity and no replica
	// could be placed.
	Accepted bool
	// ReadyAt is when the whole chain can serve the request: now, unless a
	// replica had to boot (then now + SetupCost).
	ReadyAt float64
	// ScaleOuts lists replica VNFs created for this admission.
	ScaleOuts []model.VNFID
}

// Stats aggregates controller activity.
type Stats struct {
	Admitted      int
	Rejected      int
	Departed      int
	ScaleOuts     int
	Retired       int
	SetupSecs     float64 // total setup time paid
	ActiveReplica int     // current replica count
}

// instanceState tracks one service instance's load.
type instanceState struct {
	vnf  model.VNFID
	k    int
	load float64 // Σ effective rates
}

// replicaState tracks one replica VNF.
type replicaState struct {
	base      model.VNFID
	readyAt   float64
	idleSince float64 // valid when load == 0
}

// Controller manages a live deployment. It is not safe for concurrent use.
type Controller struct {
	cfg       Config
	problem   *model.Problem // grows as replicas are added
	placement *model.Placement
	schedule  *model.Schedule

	instances map[model.VNFID][]*instanceState
	replicas  map[model.VNFID]*replicaState // replica id → state
	family    map[model.VNFID][]model.VNFID // base id → all serving ids (base first)
	requests  map[model.RequestID]model.Request
	stats     Stats
	nextID    int
	now       float64
}

// New validates the config, places the base VNFs, and returns a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Problem == nil {
		return nil, errors.New("dynamic: nil problem")
	}
	base := cfg.Problem.Clone()
	base.Requests = nil
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	if cfg.SetupCost < 0 {
		return nil, fmt.Errorf("dynamic: negative setup cost %v", cfg.SetupCost)
	}
	if cfg.SetupCost == 0 {
		cfg.SetupCost = SetupCostVM
	}
	if cfg.ScaleOutUtilization == 0 {
		cfg.ScaleOutUtilization = 0.9
	}
	if cfg.ScaleOutUtilization <= 0 || cfg.ScaleOutUtilization > 1 {
		return nil, fmt.Errorf("dynamic: scale-out utilization %v outside (0,1]", cfg.ScaleOutUtilization)
	}
	if cfg.RetireLinger == 0 {
		cfg.RetireLinger = 30
	}
	if cfg.RetireLinger < 0 {
		return nil, fmt.Errorf("dynamic: negative retire linger %v", cfg.RetireLinger)
	}
	placer := cfg.Placer
	if placer == nil {
		placer = &placement.BFDSU{Seed: cfg.Seed}
	}
	res, err := placer.Place(base)
	if err != nil {
		return nil, fmt.Errorf("dynamic: initial placement: %w", err)
	}

	c := &Controller{
		cfg:       cfg,
		problem:   base,
		placement: res.Placement,
		schedule:  model.NewSchedule(),
		instances: make(map[model.VNFID][]*instanceState),
		replicas:  make(map[model.VNFID]*replicaState),
		family:    make(map[model.VNFID][]model.VNFID),
		requests:  make(map[model.RequestID]model.Request),
	}
	for _, f := range base.VNFs {
		c.family[f.ID] = []model.VNFID{f.ID}
		states := make([]*instanceState, f.Instances)
		for k := range states {
			states[k] = &instanceState{vnf: f.ID, k: k}
		}
		c.instances[f.ID] = states
	}
	return c, nil
}

// Now returns the controller's clock (the largest time it has seen).
func (c *Controller) Now() float64 { return c.now }

// Stats returns a snapshot of the activity counters.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.ActiveReplica = len(c.replicas)
	return s
}

// Snapshot exposes the current problem, placement and schedule (live
// references; treat as read-only) for evaluation with core.Evaluate.
func (c *Controller) Snapshot() (*model.Problem, *model.Placement, *model.Schedule) {
	return c.problem, c.placement, c.schedule
}

func (c *Controller) advance(now float64) error {
	if now < c.now {
		return fmt.Errorf("dynamic: time moved backwards: %v < %v", now, c.now)
	}
	c.now = now
	return nil
}

// Admit routes a new request onto the least-loaded viable instance of every
// chain VNF, scaling out with replicas where saturated. Admission is
// all-or-nothing per request.
func (c *Controller) Admit(r model.Request, now float64) (*AdmitOutcome, error) {
	if err := c.advance(now); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	if _, dup := c.requests[r.ID]; dup {
		return nil, fmt.Errorf("dynamic: duplicate request %s", r.ID)
	}
	for _, fid := range r.Chain {
		if _, ok := c.family[fid]; !ok {
			return nil, fmt.Errorf("dynamic: request %s references unknown vnf %s", r.ID, fid)
		}
	}

	outcome := &AdmitOutcome{Accepted: true, ReadyAt: now}
	rate := r.EffectiveRate()
	type assignment struct {
		serving model.VNFID
		k       int
	}
	var plan []assignment

	for _, fid := range r.Chain {
		inst := c.pickInstance(fid, rate)
		if inst == nil {
			replica, err := c.scaleOut(fid, now)
			if err != nil {
				c.stats.Rejected++
				return &AdmitOutcome{Accepted: false, ReadyAt: now}, nil
			}
			outcome.ScaleOuts = append(outcome.ScaleOuts, replica)
			if ready := c.replicas[replica].readyAt; ready > outcome.ReadyAt {
				outcome.ReadyAt = ready
			}
			inst = c.pickInstance(fid, rate)
			if inst == nil {
				c.stats.Rejected++
				return &AdmitOutcome{Accepted: false, ReadyAt: now}, nil
			}
		}
		plan = append(plan, assignment{serving: inst.vnf, k: inst.k})
		inst.load += rate // reserve as we go so one chain can't double-book
	}

	// Commit: record the schedule against the *serving* VNF (base or
	// replica — the chain logically traverses the base function).
	for i, fid := range r.Chain {
		_ = fid
		c.schedule.Assign(r.ID, plan[i].serving, plan[i].k)
	}
	c.requests[r.ID] = r
	for _, a := range plan {
		if rep, ok := c.replicas[a.serving]; ok {
			rep.idleSince = -1
		}
	}
	c.stats.Admitted++
	return outcome, nil
}

// pickInstance returns an instance that stays under the scale-out
// utilization after adding rate, or nil. Family members are tried in
// creation order — the base VNF first, then replicas oldest-first — taking
// the least-loaded fitting instance of the first member with room. Filling
// the base before replicas keeps replicas drainable, so scale-in can
// actually retire them when load recedes.
func (c *Controller) pickInstance(base model.VNFID, rate float64) *instanceState {
	for _, serving := range c.family[base] {
		f, ok := c.problem.VNF(serving)
		if !ok {
			continue
		}
		var best *instanceState
		for _, inst := range c.instances[serving] {
			if (inst.load+rate)/f.ServiceRate >= c.cfg.ScaleOutUtilization {
				continue
			}
			if best == nil || inst.load < best.load {
				best = inst
			}
		}
		if best != nil {
			return best
		}
	}
	return nil
}

// scaleOut places a new replica of the base VNF by deterministic best fit
// on residual node capacities (the incremental analogue of BFDSU's snug
// preference — a full re-placement would disturb running instances, which
// the paper rules out due to setup cost).
func (c *Controller) scaleOut(base model.VNFID, now float64) (model.VNFID, error) {
	f, ok := c.problem.VNF(base)
	if !ok {
		return "", fmt.Errorf("dynamic: unknown base vnf %s", base)
	}
	c.nextID++
	replica := f
	replica.ID = model.VNFID(fmt.Sprintf("%s#rep%d", base, c.nextID))
	replica.Name = string(replica.ID)

	residual := c.placement.Residual(c.problem)
	var hostIDs []model.NodeID
	for id, rst := range residual {
		if rst >= replica.TotalDemand()-1e-9 {
			hostIDs = append(hostIDs, id)
		}
	}
	if len(hostIDs) == 0 {
		return "", fmt.Errorf("dynamic: no capacity for replica of %s: %w", base, placement.ErrInfeasible)
	}
	sort.Slice(hostIDs, func(i, j int) bool {
		if residual[hostIDs[i]] != residual[hostIDs[j]] {
			return residual[hostIDs[i]] < residual[hostIDs[j]]
		}
		return hostIDs[i] < hostIDs[j]
	})

	c.problem.VNFs = append(c.problem.VNFs, replica)
	c.placement.Assign(replica.ID, hostIDs[0])
	c.family[base] = append(c.family[base], replica.ID)
	states := make([]*instanceState, replica.Instances)
	for k := range states {
		states[k] = &instanceState{vnf: replica.ID, k: k}
	}
	c.instances[replica.ID] = states
	c.replicas[replica.ID] = &replicaState{base: base, readyAt: now + c.cfg.SetupCost, idleSince: -1}
	c.stats.ScaleOuts++
	c.stats.SetupSecs += c.cfg.SetupCost
	return replica.ID, nil
}

// Depart removes a finished request's load from every instance it used.
func (c *Controller) Depart(id model.RequestID, now float64) error {
	if err := c.advance(now); err != nil {
		return err
	}
	r, ok := c.requests[id]
	if !ok {
		return fmt.Errorf("dynamic: unknown request %s", id)
	}
	rate := r.EffectiveRate()
	for serving, k := range c.schedule.InstanceOf[id] {
		for _, inst := range c.instances[serving] {
			if inst.k == k {
				inst.load -= rate
				if inst.load < 1e-9 {
					inst.load = 0
				}
			}
		}
		if rep, ok := c.replicas[serving]; ok && c.servingLoad(serving) == 0 {
			rep.idleSince = now
		}
	}
	delete(c.schedule.InstanceOf, id)
	delete(c.requests, id)
	c.stats.Departed++
	return nil
}

// servingLoad sums the load across a VNF's instances.
func (c *Controller) servingLoad(id model.VNFID) float64 {
	var sum float64
	for _, inst := range c.instances[id] {
		sum += inst.load
	}
	return sum
}

// MaybeScaleIn retires replicas that have been idle longer than the linger
// period, freeing their node capacity. It returns the retired replica ids,
// sorted.
func (c *Controller) MaybeScaleIn(now float64) ([]model.VNFID, error) {
	if err := c.advance(now); err != nil {
		return nil, err
	}
	var retired []model.VNFID
	for id, rep := range c.replicas {
		if rep.idleSince < 0 || now-rep.idleSince < c.cfg.RetireLinger {
			continue
		}
		if c.servingLoad(id) > 0 {
			continue
		}
		retired = append(retired, id)
		delete(c.replicas, id)
		delete(c.instances, id)
		delete(c.placement.NodeOf, id)
		// Remove from the family and the problem.
		fam := c.family[rep.base]
		for i, v := range fam {
			if v == id {
				c.family[rep.base] = append(fam[:i], fam[i+1:]...)
				break
			}
		}
		for i, f := range c.problem.VNFs {
			if f.ID == id {
				c.problem.VNFs = append(c.problem.VNFs[:i], c.problem.VNFs[i+1:]...)
				break
			}
		}
		c.stats.Retired++
	}
	sort.Slice(retired, func(i, j int) bool { return retired[i] < retired[j] })
	return retired, nil
}

// Utilization returns the current utilization of every serving instance.
func (c *Controller) Utilization() map[model.VNFID][]float64 {
	out := make(map[model.VNFID][]float64, len(c.instances))
	for id, insts := range c.instances {
		f, ok := c.problem.VNF(id)
		if !ok {
			continue
		}
		us := make([]float64, len(insts))
		for i, inst := range insts {
			us[i] = inst.load / f.ServiceRate
		}
		out[id] = us
	}
	return out
}
