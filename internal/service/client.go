package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"nfvchain/internal/core"
	"nfvchain/internal/simulate"
)

// Client is a minimal Go client for the nfvd HTTP API, backing the
// end-to-end tests and examples/service.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Wait's status polling; 0 means 10ms.
	PollInterval time.Duration
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response; non-2xx statuses
// (other than the expected ones) become errors carrying the server's error
// envelope.
func (c *Client) do(ctx context.Context, method, path string, body, out any, okCodes ...int) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, fmt.Errorf("service client: encode request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return 0, fmt.Errorf("service client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, fmt.Errorf("service client: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	for _, code := range okCodes {
		if resp.StatusCode == code {
			if out != nil {
				if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
					return resp.StatusCode, fmt.Errorf("service client: decode response: %w", err)
				}
			}
			return resp.StatusCode, nil
		}
	}
	var envelope errorBody
	msg := resp.Status
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	return resp.StatusCode, fmt.Errorf("service client: %s %s: %d: %s", method, path, resp.StatusCode, msg)
}

// Solve submits an optimization job. The returned status is either queued
// (202) or done (200, a cache hit).
func (c *Client) Solve(ctx context.Context, req SolveRequest) (*JobStatus, error) {
	var st JobStatus
	if _, err := c.do(ctx, http.MethodPost, "/v1/solve", &req, &st, http.StatusOK, http.StatusAccepted); err != nil {
		return nil, err
	}
	return &st, nil
}

// SolveAnytime submits an anytime-portfolio solve, waits for it to finish,
// and returns the terminal status (carrying the incumbent trajectory in
// Progress) plus the winning Solution. The request must set Portfolio; see
// SolveRequest for deadline semantics.
func (c *Client) SolveAnytime(ctx context.Context, req SolveRequest) (*JobStatus, *core.Solution, error) {
	st, err := c.Solve(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	if st, err = c.Wait(ctx, st.ID); err != nil {
		return st, nil, err
	}
	if st.State != StateDone {
		return st, nil, fmt.Errorf("service client: anytime job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	sol, err := c.SolveResult(ctx, st.ID)
	if err != nil {
		return st, nil, err
	}
	return st, sol, nil
}

// Simulate submits a solve+simulate (or simulate-a-solution) job.
func (c *Client) Simulate(ctx context.Context, req SimulateRequest) (*JobStatus, error) {
	var st JobStatus
	if _, err := c.do(ctx, http.MethodPost, "/v1/simulate", &req, &st, http.StatusOK, http.StatusAccepted); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, http.StatusOK); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel requests a job's cancellation (idempotent on already-canceled
// jobs; errors on done/failed ones).
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if _, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st, http.StatusOK); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls the job until it reaches a terminal state or ctx fires.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// ResultBytes fetches a completed job's raw result document (the Solution
// or Results JSON exactly as the server rendered it).
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, fmt.Errorf("service client: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("service client: fetch result: %w", err)
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("service client: read result: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var envelope errorBody
		msg := resp.Status
		if err := json.Unmarshal(data, &envelope); err == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		return nil, fmt.Errorf("service client: result %s: %d: %s", id, resp.StatusCode, msg)
	}
	return data, nil
}

// SolveResult fetches and parses a completed solve job's Solution.
func (c *Client) SolveResult(ctx context.Context, id string) (*core.Solution, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	return core.ReadSolutionJSON(bytes.NewReader(data))
}

// SimulateResult fetches and parses a completed simulate job's Results.
func (c *Client) SimulateResult(ctx context.Context, id string) (*simulate.Results, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	return simulate.ReadResultsJSON(bytes.NewReader(data))
}

// Metrics fetches the server's metrics document.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if _, err := c.do(ctx, http.MethodGet, "/metrics", nil, &m, http.StatusOK); err != nil {
		return nil, err
	}
	return &m, nil
}

// Healthy probes /healthz.
func (c *Client) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("service client: healthz: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service client: healthz: %s", resp.Status)
	}
	return nil
}
