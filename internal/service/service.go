package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nfvchain/internal/core"
	"nfvchain/internal/portfolio"
	"nfvchain/internal/simulate"
	"nfvchain/internal/stats"
)

// Config parameterizes a Server. The zero value picks sensible defaults.
type Config struct {
	// Workers is the solver/simulator worker-pool size; 0 means
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker; a full
	// queue answers 429 (backpressure, not OOM). 0 means 64.
	QueueDepth int
	// CacheEntries bounds the result cache (FIFO eviction). 0 means 256;
	// negative disables caching.
	CacheEntries int
	// RetryAfter is the 429 Retry-After hint. 0 means 1s.
	RetryAfter time.Duration
	// LatencyWindow is the number of recent completed jobs feeding the
	// /metrics latency percentiles. 0 means 1024.
	LatencyWindow int
	// MaxBodyBytes bounds request bodies. 0 means 32 MiB.
	MaxBodyBytes int64
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	return c
}

// job is one queued unit of work. The exec closure carries the parsed,
// validated request; it runs on a worker goroutine with the job's context.
type job struct {
	id          string
	kind        string
	fingerprint string
	state       JobState
	cacheHit    bool
	err         string
	result      []byte
	// noCache marks a job whose result must not enter the cache (anytime
	// races are wall-clock dependent).
	noCache bool
	// progress is the anytime-race incumbent trajectory, appended under
	// the server's mutex by the race's publication callback.
	progress []ProgressPoint

	enqueued time.Time
	cancel   context.CancelFunc // non-nil while running
	canceled bool               // cancellation requested

	exec func(ctx context.Context, j *job) ([]byte, error)
}

// status snapshots the job's wire form; the server's mutex must be held.
func (j *job) status() JobStatus {
	st := JobStatus{ID: j.id, Kind: j.kind, State: j.state, CacheHit: j.cacheHit, Error: j.err}
	if len(j.progress) > 0 {
		st.Progress = append([]ProgressPoint(nil), j.progress...)
	}
	return st
}

// Server is the solver/simulator serving daemon: an http.Handler backed by
// a bounded job queue and a worker pool. Create with New, expose via
// Handler, stop with Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job
	nextID   uint64
	queue    chan *job
	closed   bool // intake stopped (shutdown begun)
	byState  map[JobState]int
	busy     int
	latRing  []float64 // enqueue-to-finish seconds, ring buffer
	latNext  int
	latCount int

	cacheHits    int
	cacheMisses  int
	cacheOrder   []string
	cacheEntries map[string][]byte

	races RaceMetrics

	wg      sync.WaitGroup
	simPool sync.Pool // *simulate.Simulator, reused across simulate jobs

	// clock is stubbed in tests; wall time never influences job results.
	clock func() time.Time
}

// New starts a server's worker pool and returns it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:          cfg,
		jobs:         make(map[string]*job),
		queue:        make(chan *job, cfg.QueueDepth),
		byState:      make(map[JobState]int),
		latRing:      make([]float64, cfg.LatencyWindow),
		cacheEntries: make(map[string][]byte),
		clock:        time.Now,
	}
	s.simPool.New = func() any { return simulate.NewSimulator() }
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops intake (new submissions answer 503) and drains: workers
// finish the queued and in-flight jobs. If ctx expires first, running jobs
// are cancelled — they abort within one simulator ctx-check interval — and
// Shutdown returns ctx.Err() once the pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.canceled = true
			if j.cancel != nil {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// worker drains the job queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one dequeued job.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	s.mu.Lock()
	if j.canceled {
		s.setStateLocked(j, StateCanceled)
		s.mu.Unlock()
		return
	}
	s.setStateLocked(j, StateRunning)
	j.cancel = cancel
	s.busy++
	s.mu.Unlock()

	result, err := j.exec(ctx, j)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.busy--
	j.cancel = nil
	switch {
	case err == nil:
		j.result = result
		s.setStateLocked(j, StateDone)
		if !j.noCache {
			s.cachePutLocked(j.fingerprint, result)
		}
		s.noteLatencyLocked(j)
	case j.canceled && errors.Is(err, context.Canceled):
		s.setStateLocked(j, StateCanceled)
	default:
		j.err = err.Error()
		s.setStateLocked(j, StateFailed)
		s.noteLatencyLocked(j)
	}
}

// setStateLocked transitions a job's state, keeping the by-state counters
// consistent. The server's mutex must be held.
func (s *Server) setStateLocked(j *job, to JobState) {
	if j.state != "" {
		s.byState[j.state]--
	}
	j.state = to
	s.byState[to]++
}

// noteLatencyLocked folds a finished job's enqueue-to-finish latency into
// the metrics ring.
func (s *Server) noteLatencyLocked(j *job) {
	s.latRing[s.latNext] = s.clock().Sub(j.enqueued).Seconds()
	s.latNext = (s.latNext + 1) % len(s.latRing)
	if s.latCount < len(s.latRing) {
		s.latCount++
	}
}

// cacheGetLocked looks up a cached result, bumping the hit/miss counters.
func (s *Server) cacheGetLocked(fp string) ([]byte, bool) {
	if s.cfg.CacheEntries < 0 {
		s.cacheMisses++
		return nil, false
	}
	res, ok := s.cacheEntries[fp]
	if ok {
		s.cacheHits++
	} else {
		s.cacheMisses++
	}
	return res, ok
}

// cachePutLocked stores a result under its fingerprint, evicting the
// oldest entry past the cap (FIFO: the cache serves dedupe, not working-set
// tuning).
func (s *Server) cachePutLocked(fp string, result []byte) {
	if s.cfg.CacheEntries < 0 {
		return
	}
	if _, ok := s.cacheEntries[fp]; ok {
		return
	}
	for len(s.cacheOrder) >= s.cfg.CacheEntries {
		oldest := s.cacheOrder[0]
		s.cacheOrder = s.cacheOrder[1:]
		delete(s.cacheEntries, oldest)
	}
	s.cacheEntries[fp] = result
	s.cacheOrder = append(s.cacheOrder, fp)
}

// submit registers a job for the fingerprint and either answers it from the
// cache (a completed job, instantly) or enqueues it. It writes the HTTP
// response in every case. noCache jobs (anytime races) skip both cache
// lookup and insertion.
func (s *Server) submit(w http.ResponseWriter, kind, fp string, noCache bool, exec func(ctx context.Context, j *job) ([]byte, error)) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.nextID++
	j := &job{
		id:          "job-" + strconv.FormatUint(s.nextID, 10),
		kind:        kind,
		fingerprint: fp,
		noCache:     noCache,
		enqueued:    s.clock(),
		exec:        exec,
	}
	s.jobs[j.id] = j
	if !noCache {
		if cached, ok := s.cacheGetLocked(fp); ok {
			j.result = cached
			j.cacheHit = true
			s.setStateLocked(j, StateDone)
			status := j.status()
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, status)
			return
		}
	}
	select {
	case s.queue <- j:
		s.setStateLocked(j, StateQueued)
		status := j.status()
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, status)
	default:
		// Queue full: refuse the job entirely (it never existed) and tell
		// the client when to retry.
		delete(s.jobs, j.id)
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "job queue is full")
	}
}

// handleSolve parses, validates and enqueues an optimization job.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Problem == nil {
		writeError(w, http.StatusBadRequest, "missing problem")
		return
	}
	if err := req.Problem.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := req.Options.coreOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Portfolio) > 0 {
		s.submitAnytime(w, &req)
		return
	}
	if req.DeadlineMS != 0 {
		writeError(w, http.StatusBadRequest, "deadline_ms requires a portfolio")
		return
	}
	fp, err := fingerprint("solve", &req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	problem := req.Problem
	s.submit(w, "solve", fp, false, func(ctx context.Context, _ *job) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sol, err := core.Optimize(problem, opts)
		if err != nil {
			return nil, err
		}
		// Optimize is not interruptible mid-run; honor a cancellation that
		// arrived while it computed rather than publishing the result.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := sol.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// submitAnytime validates and enqueues an anytime-portfolio solve: a race
// of the requested solver specs, bounded by deadline_ms, streaming the
// incumbent trajectory into the job's progress. The result document is a
// regular core.Solution JSON — the winner after admission control — so
// downstream consumers (e.g. /v1/simulate with a posted solution) work
// unchanged.
func (s *Server) submitAnytime(w http.ResponseWriter, req *SolveRequest) {
	// The classic placer/scheduler selection does not apply to a race —
	// the portfolio specs pick the algorithms. Reject rather than silently
	// ignore, mirroring nfvsim's -improve/-solver portfolio conflict.
	if req.Options.Placer != "" || req.Options.Scheduler != "" {
		writeError(w, http.StatusBadRequest,
			"placer/scheduler options conflict with a portfolio solve; select algorithms via the portfolio specs instead")
		return
	}
	specs, err := portfolio.ParseSpecs(req.Portfolio)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.DeadlineMS < 0 || req.DeadlineMS > MaxDeadlineMS {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("deadline_ms %d outside [0,%d]", req.DeadlineMS, MaxDeadlineMS))
		return
	}
	if req.DeadlineMS == 0 {
		for _, sp := range specs {
			if sp.Iters == 0 {
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("spec %q has no iteration budget; set deadline_ms", sp.String()))
				return
			}
		}
	}
	fp, err := fingerprint("solve-anytime", req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	problem := req.Problem
	options := req.Options
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	s.submit(w, "solve", fp, true, func(ctx context.Context, j *job) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		s.mu.Lock()
		s.races.Started++
		s.mu.Unlock()
		sol, res, err := core.SolveRace(ctx, problem, core.RaceOptions{
			Portfolio:               req.Portfolio,
			Seed:                    options.Seed,
			LinkDelay:               options.LinkDelay,
			DisableAdmissionControl: options.DisableAdmissionControl,
			OnIncumbent: func(inc portfolio.Incumbent) {
				s.mu.Lock()
				j.progress = append(j.progress, ProgressPoint{
					Solver:    inc.Solver,
					Objective: inc.Objective,
					Iteration: inc.Iteration,
					ElapsedMS: float64(inc.Elapsed) / float64(time.Millisecond),
				})
				s.races.Incumbents++
				s.mu.Unlock()
			},
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.races.Completed++
		if res.DeadlineExpired {
			s.races.DeadlineExpired++
		}
		s.mu.Unlock()
		var buf bytes.Buffer
		if err := sol.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// handleSimulate parses, validates and enqueues a solve+simulate (or
// simulate-a-posted-solution) job.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if (req.Problem == nil) == (len(req.Solution) == 0) {
		writeError(w, http.StatusBadRequest, "exactly one of problem or solution must be set")
		return
	}
	simCfg, err := req.Sim.simConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var (
		opts     core.Options
		solution *core.Solution
	)
	if req.Problem != nil {
		if err := req.Problem.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if opts, err = req.Options.coreOptions(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		if solution, err = core.ReadSolutionJSON(bytes.NewReader(req.Solution)); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	fp, err := fingerprint("simulate", &req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	problem := req.Problem
	s.submit(w, "simulate", fp, false, func(ctx context.Context, _ *job) ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sol := solution
		if sol == nil {
			var err error
			if sol, err = core.Optimize(problem, opts); err != nil {
				return nil, err
			}
		}
		sim := s.simPool.Get().(*simulate.Simulator)
		defer s.simPool.Put(sim)
		res, err := core.SimulateWith(ctx, sim, sol, simCfg)
		if err != nil {
			return nil, err
		}
		// Encode before the deferred Put: the Results aliases the pooled
		// simulator's buffers and dies with its next Reset.
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// handleJob reports a job's status.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	status := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

// handleResult serves a completed job's result document: 200 with the
// Solution/Results JSON when done, 202 with the status while pending, 410
// after a cancellation, 500 with the error after a failure.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	status := j.status()
	result := j.result
	s.mu.Unlock()
	switch status.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(result)
	case StateCanceled:
		writeError(w, http.StatusGone, "job "+status.ID+" was canceled")
	case StateFailed:
		writeError(w, http.StatusInternalServerError, status.Error)
	default:
		writeJSON(w, http.StatusAccepted, status)
	}
}

// handleCancel cancels a queued or running job. Cancelling a queued job
// unqueues it logically (the worker skips it); cancelling a running job
// fires its context, aborting the simulator within one ctx-check interval.
// Terminal jobs answer 409 (done/failed) or 200 (already canceled,
// idempotent).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	switch {
	case j.state == StateCanceled:
		// Idempotent.
	case j.state.terminal():
		status := j.status()
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, status)
		return
	default:
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		} else if j.state == StateQueued {
			// The worker will observe canceled and skip; reflect the final
			// state immediately so polling clients see it without racing.
			s.setStateLocked(j, StateCanceled)
		}
	}
	status := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

// handleHealthz answers liveness probes.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleMetrics reports queue, worker, cache and latency metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	m := Metrics{
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		BusyWorkers:   s.busy,
		JobsByState:   make(map[JobState]int, len(s.byState)),
		Cache: CacheMetrics{
			Hits:    s.cacheHits,
			Misses:  s.cacheMisses,
			Entries: len(s.cacheEntries),
		},
		Races: s.races,
	}
	for st, n := range s.byState {
		if n > 0 {
			m.JobsByState[st] = n
		}
	}
	if lookups := s.cacheHits + s.cacheMisses; lookups > 0 {
		m.Cache.HitRate = float64(s.cacheHits) / float64(lookups)
	}
	// Config.withDefaults guarantees Workers >= 1, but guard anyway: a zero
	// divisor would put NaN in the document and break strict JSON decoders.
	if s.cfg.Workers > 0 {
		m.WorkerUtilization = float64(s.busy) / float64(s.cfg.Workers)
	}
	lat := make([]float64, s.latCount)
	copy(lat, s.latRing[:s.latCount])
	s.mu.Unlock()

	// JobLatency stays all-zero (not omitted) until the first job completes,
	// so the document shape is identical on a fresh daemon.
	if qs, ok := stats.PercentilesOK(lat, 50, 95, 99); ok {
		m.JobLatency = LatencyMetrics{
			Count: len(lat),
			Mean:  stats.Mean(lat),
			P50:   qs[0],
			P95:   qs[1],
			P99:   qs[2],
		}
	}
	writeJSON(w, http.StatusOK, m)
}

// lookup resolves the {id} path value, answering 404 itself on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return nil, false
	}
	return j, true
}

// decodeBody strictly decodes a JSON request body, answering 4xx itself on
// failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return false
	}
	return true
}

// writeJSON writes an indented JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}
