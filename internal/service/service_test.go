package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nfvchain/internal/core"
	"nfvchain/internal/model"
)

// testProblem builds the small fixed instance shared by the e2e tests: two
// nodes, two VNFs, three chained requests.
func testProblem(t *testing.T) *model.Problem {
	t.Helper()
	p := &model.Problem{
		Nodes: []model.Node{
			{ID: "n1", Capacity: 10},
			{ID: "n2", Capacity: 10},
		},
		VNFs: []model.VNF{
			{ID: "fw", Instances: 2, Demand: 1, ServiceRate: 40},
			{ID: "nat", Instances: 1, Demand: 1, ServiceRate: 30},
		},
		Requests: []model.Request{
			{ID: "r1", Chain: []model.VNFID{"fw", "nat"}, Rate: 6, DeliveryProb: 0.95},
			{ID: "r2", Chain: []model.VNFID{"fw"}, Rate: 8, DeliveryProb: 0.98},
			{ID: "r3", Chain: []model.VNFID{"nat", "fw"}, Rate: 4, DeliveryProb: 0.9},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// newTestServer boots a Server behind httptest and returns it with a client.
// Cleanup shuts the pool down, cancelling any jobs still running.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, NewClient(ts.URL)
}

// waitState polls until the job reaches want, failing on a terminal detour.
func waitState(t *testing.T, c *Client, id string, want JobState) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached %s (error %q) while waiting for %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return nil
}

// TestServedSolveBitIdentical asserts a served solve result is byte-for-byte
// the document the library produces directly under the same seed.
func TestServedSolveBitIdentical(t *testing.T) {
	p := testProblem(t)
	reqOpts := SolveOptions{Seed: 5, LinkDelay: 0.001}

	copts, err := reqOpts.coreOptions()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Optimize(p, copts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sol.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	st, err := c.Solve(ctx, SolveRequest{Problem: p, Options: reqOpts})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "solve" || st.State != StateQueued {
		t.Fatalf("unexpected submit status %+v", st)
	}
	if st, err = c.Wait(ctx, st.ID); err != nil || st.State != StateDone {
		t.Fatalf("wait: %v, state %s", err, st.State)
	}
	got, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("served solution differs from direct core.Optimize output (%d vs %d bytes)", len(got), want.Len())
	}
	back, err := c.SolveResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.RejectionRate != sol.RejectionRate || len(back.Schedule.InstanceOf) != len(sol.Schedule.InstanceOf) {
		t.Error("parsed served solution drifted from the direct one")
	}
}

// TestServedSimulateBitIdentical asserts a served solve+simulate run is
// byte-for-byte identical to the direct library path under the same seeds,
// and that posting the solved document instead reproduces the same results.
func TestServedSimulateBitIdentical(t *testing.T) {
	p := testProblem(t)
	reqOpts := SolveOptions{Seed: 5, LinkDelay: 0.001}
	simOpts := SimOptions{Horizon: 10, Warmup: 1, BufferSize: 1, Seed: 7}

	copts, err := reqOpts.coreOptions()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Optimize(p, copts)
	if err != nil {
		t.Fatal(err)
	}
	simCfg, err := simOpts.simConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Simulate(sol, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	var want, solDoc bytes.Buffer
	if err := res.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := sol.WriteJSON(&solDoc); err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	st, err := c.Simulate(ctx, SimulateRequest{Problem: p, Options: reqOpts, Sim: simOpts})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID); err != nil || st.State != StateDone {
		t.Fatalf("wait: %v, state %s", err, st.State)
	}
	got, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("served results differ from direct core.Simulate output (%d vs %d bytes)", len(got), want.Len())
	}

	// Same simulation, but over the posted solved document.
	st2, err := c.Simulate(ctx, SimulateRequest{Solution: json.RawMessage(solDoc.Bytes()), Sim: simOpts})
	if err != nil {
		t.Fatal(err)
	}
	if st2, err = c.Wait(ctx, st2.ID); err != nil || st2.State != StateDone {
		t.Fatalf("wait posted-solution job: %v, state %s", err, st2.State)
	}
	got2, err := c.ResultBytes(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want.Bytes()) {
		t.Error("simulating the posted solution diverged from the solve+simulate path")
	}
}

// TestCacheHit asserts a duplicate submission — even with different JSON
// formatting — answers instantly from the cache with the hit counter bumped.
func TestCacheHit(t *testing.T) {
	p := testProblem(t)
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	req := SolveRequest{Problem: p, Options: SolveOptions{Seed: 9}}

	st, err := c.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("first submission claims a cache hit")
	}
	if st, err = c.Wait(ctx, st.ID); err != nil || st.State != StateDone {
		t.Fatalf("wait: %v, state %s", err, st.State)
	}
	first, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Re-submit the same request with different whitespace: the fingerprint
	// canonicalizes the parsed body, so this must hit.
	compact, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var indented bytes.Buffer
	if err := json.Indent(&indented, compact, "", "    "); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.BaseURL+"/v1/solve", "application/json", &indented)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submission: got %d, want 200", resp.StatusCode)
	}
	var st2 JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("duplicate submission not served from cache: %+v", st2)
	}
	second, err := c.ResultBytes(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("cached result differs from the original")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 || m.Cache.Entries != 1 {
		t.Errorf("cache counters: got hits=%d misses=%d entries=%d, want 1/1/1",
			m.Cache.Hits, m.Cache.Misses, m.Cache.Entries)
	}
	if m.Cache.HitRate != 0.5 {
		t.Errorf("hit rate: got %v, want 0.5", m.Cache.HitRate)
	}
}

// longSimulate is a request whose event loop runs effectively forever, used
// to occupy a worker until cancelled. Seed varies the fingerprint so copies
// never collide in the cache.
func longSimulate(p *model.Problem, seed uint64) SimulateRequest {
	return SimulateRequest{Problem: p, Sim: SimOptions{Horizon: 1e12, Seed: seed}}
}

// TestQueueFullBackpressure fills a Workers:1/QueueDepth:1 server and
// asserts the overflow submission is refused with 429 and a Retry-After
// hint, leaving no orphan job behind.
func TestQueueFullBackpressure(t *testing.T) {
	p := testProblem(t)
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	ctx := context.Background()

	st1, err := c.Simulate(ctx, longSimulate(p, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st1.ID, StateRunning) // worker occupied
	st2, err := c.Simulate(ctx, longSimulate(p, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateQueued {
		t.Fatalf("second job: got %s, want queued", st2.State)
	}

	body, err := json.Marshal(longSimulate(p, 3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.BaseURL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: got %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After: got %q, want \"2\"", got)
	}

	// Unblock the pool so cleanup doesn't burn the drain budget.
	for _, id := range []string{st2.ID, st1.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if st, err := c.Wait(ctx, st1.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("cancel running job: %v, state %s", err, st.State)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueueCapacity != 1 || m.Workers != 1 {
		t.Errorf("metrics shape: %+v", m)
	}
	if total := m.JobsByState[StateCanceled]; total != 2 {
		t.Errorf("refused job leaked into the registry: canceled=%d, byState=%v", total, m.JobsByState)
	}
}

// TestCancelRunningJob asserts DELETE aborts an effectively-endless
// simulation promptly (within the simulator's ctx-check interval) and the
// result endpoint then answers 410.
func TestCancelRunningJob(t *testing.T) {
	p := testProblem(t)
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	st, err := c.Simulate(ctx, longSimulate(p, 42))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, StateRunning)
	start := time.Now()
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("wait: %v, state %s", err, st.State)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; the amortized ctx check should land far sooner", elapsed)
	}

	// Idempotent cancel.
	if st, err = c.Cancel(ctx, st.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("second cancel: %v, state %s", err, st.State)
	}
	// Result is gone.
	if _, err := c.ResultBytes(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "410") {
		t.Errorf("result of canceled job: got %v, want 410", err)
	}
}

// TestCancelDoneConflicts asserts cancelling a completed job answers 409.
func TestCancelDoneConflicts(t *testing.T) {
	p := testProblem(t)
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	st, err := c.Solve(ctx, SolveRequest{Problem: p})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID); err != nil || st.State != StateDone {
		t.Fatalf("wait: %v, state %s", err, st.State)
	}
	if _, err := c.Cancel(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("cancel done job: got %v, want 409", err)
	}
}

// TestValidationErrors exercises the 4xx paths.
func TestValidationErrors(t *testing.T) {
	p := testProblem(t)
	_, c := newTestServer(t, Config{Workers: 1})
	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(c.BaseURL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var envelope errorBody
		_ = json.NewDecoder(resp.Body).Decode(&envelope)
		return resp.StatusCode, envelope.Error
	}

	if code, _ := post("/v1/solve", `{`); code != http.StatusBadRequest {
		t.Errorf("malformed body: got %d", code)
	}
	if code, _ := post("/v1/solve", `{"bogus": 1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: got %d", code)
	}
	if code, msg := post("/v1/solve", `{"problem": null}`); code != http.StatusBadRequest || !strings.Contains(msg, "missing problem") {
		t.Errorf("missing problem: got %d %q", code, msg)
	}
	pb, _ := json.Marshal(p)
	if code, msg := post("/v1/solve", fmt.Sprintf(`{"problem": %s, "options": {"placer": "magic"}}`, pb)); code != http.StatusBadRequest || !strings.Contains(msg, "unknown placer") {
		t.Errorf("unknown placer: got %d %q", code, msg)
	}
	if code, msg := post("/v1/simulate", `{"sim": {"horizon": 1}}`); code != http.StatusBadRequest || !strings.Contains(msg, "exactly one") {
		t.Errorf("neither problem nor solution: got %d %q", code, msg)
	}
	if code, _ := post("/v1/simulate", fmt.Sprintf(`{"problem": %s, "solution": {"x":1}, "sim": {"horizon": 1}}`, pb)); code != http.StatusBadRequest {
		t.Errorf("both problem and solution: got %d", code)
	}
	if code, msg := post("/v1/simulate", fmt.Sprintf(`{"problem": %s, "sim": {"horizon": 1, "agenda": "calendar"}}`, pb)); code != http.StatusBadRequest || !strings.Contains(msg, "agenda") {
		t.Errorf("bad agenda: got %d %q", code, msg)
	}

	if st, err := c.Job(context.Background(), "job-999"); err == nil {
		t.Errorf("unknown job: got %+v, want 404 error", st)
	} else if !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job error: %v", err)
	}
}

// TestBodyTooLarge asserts oversized bodies answer 413.
func TestBodyTooLarge(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 64})
	body := `{"problem": {"nodes": [` + strings.Repeat(`{"id":"n","capacity":1},`, 64) + `]}}`
	resp, err := http.Post(c.BaseURL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: got %d, want 413", resp.StatusCode)
	}
}

// TestShutdownRefusesNewJobs asserts submissions after Shutdown answer 503
// and in-flight jobs drain to completion.
func TestShutdownRefusesNewJobs(t *testing.T) {
	p := testProblem(t)
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	st, err := c.Solve(ctx, SolveRequest{Problem: p})
	if err != nil {
		t.Fatal(err)
	}
	shutCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	// The queued job drained to done.
	if got, err := c.Job(ctx, st.ID); err != nil || got.State != StateDone {
		t.Fatalf("drained job: %v, state %+v", err, got)
	}
	if _, err := c.Solve(ctx, SolveRequest{Problem: p}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Errorf("post-shutdown submission: got %v, want 503", err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(shutCtx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestMetricsLatencyWindow asserts completed jobs populate the latency
// summary and the jobs-by-state census stays consistent.
func TestMetricsLatencyWindow(t *testing.T) {
	p := testProblem(t)
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	const n = 4
	for i := 0; i < n; i++ {
		st, err := c.Solve(ctx, SolveRequest{Problem: p, Options: SolveOptions{Seed: uint64(100 + i)}})
		if err != nil {
			t.Fatal(err)
		}
		if st, err = c.Wait(ctx, st.ID); err != nil || st.State != StateDone {
			t.Fatalf("wait: %v, state %s", err, st.State)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsByState[StateDone] != n {
		t.Errorf("done census: got %d, want %d (byState %v)", m.JobsByState[StateDone], n, m.JobsByState)
	}
	if m.JobLatency.Count != n {
		t.Fatalf("job latency summary: %+v", m.JobLatency)
	}
	if m.JobLatency.Mean < 0 || m.JobLatency.P50 > m.JobLatency.P99 {
		t.Errorf("latency summary inconsistent: %+v", m.JobLatency)
	}
	if m.BusyWorkers != 0 || m.QueueDepth != 0 {
		t.Errorf("idle server shows busy=%d depth=%d", m.BusyWorkers, m.QueueDepth)
	}
}

// TestMetricsFreshDaemonStableJSON decodes /metrics from a daemon that has
// never run a job: every field must be present with an explicit zero (no
// omitted keys, no NaN — a NaN would abort encoding server-side and fail the
// decode here), so the document shape is identical before and after traffic.
func TestMetricsFreshDaemonStableJSON(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2})
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", rec.Code, rec.Body.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics not valid JSON: %v\n%s", err, rec.Body.String())
	}
	for _, key := range []string{
		"queueDepth", "queueCapacity", "workers", "busyWorkers",
		"workerUtilization", "jobsByState", "cache", "jobLatency",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("fresh /metrics omits %q: %s", key, rec.Body.String())
		}
	}
	if got, ok := doc["workerUtilization"].(float64); !ok || got != 0 {
		t.Errorf("fresh workerUtilization: got %v, want explicit 0", doc["workerUtilization"])
	}
	lat, ok := doc["jobLatency"].(map[string]any)
	if !ok {
		t.Fatalf("fresh jobLatency: got %v, want a zero-valued object", doc["jobLatency"])
	}
	for _, k := range []string{"count", "mean", "p50", "p95", "p99"} {
		if v, ok := lat[k].(float64); !ok || v != 0 {
			t.Errorf("fresh jobLatency.%s: got %v, want explicit 0", k, lat[k])
		}
	}
	cache, ok := doc["cache"].(map[string]any)
	if !ok {
		t.Fatalf("fresh cache: got %v, want an object", doc["cache"])
	}
	if v, ok := cache["hitRate"].(float64); !ok || v != 0 {
		t.Errorf("fresh cache.hitRate: got %v, want explicit 0", cache["hitRate"])
	}
}

// TestConcurrentSubmitCancel storms the server with interleaved submissions
// and cancellations; run under -race this pins down the locking. Every job
// must land in a terminal state with the census adding up.
func TestConcurrentSubmitCancel(t *testing.T) {
	p := testProblem(t)
	_, c := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	ctx := context.Background()

	const goroutines = 8
	const perG = 4
	ids := make(chan string, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				seed := uint64(g*perG + i)
				var st *JobStatus
				var err error
				if seed%2 == 0 {
					st, err = c.Solve(ctx, SolveRequest{Problem: p, Options: SolveOptions{Seed: seed}})
				} else {
					st, err = c.Simulate(ctx, longSimulate(p, seed))
				}
				if err != nil {
					t.Error(err)
					return
				}
				if seed%2 == 1 || seed%4 == 0 {
					// Cancel every long job and half the solves; racing the
					// worker is the point.
					if _, err := c.Cancel(ctx, st.ID); err != nil && !strings.Contains(err.Error(), "409") {
						t.Error(err)
						return
					}
				}
				ids <- st.ID
			}
		}(g)
	}
	wg.Wait()
	close(ids)

	terminal := 0
	for id := range ids {
		st, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !st.State.terminal() {
			t.Errorf("job %s stuck in %s", id, st.State)
		}
		terminal++
	}
	if terminal != goroutines*perG {
		t.Fatalf("lost jobs: %d of %d terminal", terminal, goroutines*perG)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range m.JobsByState {
		total += n
	}
	if total != goroutines*perG {
		t.Errorf("census total %d != %d submitted (byState %v)", total, goroutines*perG, m.JobsByState)
	}
}
