package service

import (
	"context"
	"testing"
)

func anytimeRequest(t *testing.T, deadlineMS int, specs ...string) SolveRequest {
	t.Helper()
	return SolveRequest{
		Problem:    testProblem(t),
		Options:    SolveOptions{Seed: 42},
		Portfolio:  specs,
		DeadlineMS: deadlineMS,
	}
}

func TestAnytimeSolveRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	st, sol, err := c.SolveAnytime(ctx, anytimeRequest(t, 5000,
		"greedy", "sa:iters=800;polish=200", "lns:iters=60", "pso:iters=20;particles=6"))
	if err != nil {
		t.Fatalf("SolveAnytime: %v", err)
	}
	if len(st.Progress) == 0 {
		t.Fatal("no incumbent trajectory in job progress")
	}
	for i := 1; i < len(st.Progress); i++ {
		if st.Progress[i].Objective >= st.Progress[i-1].Objective {
			t.Errorf("progress %d objective %v not below %v",
				i, st.Progress[i].Objective, st.Progress[i-1].Objective)
		}
	}
	if sol.Placement == nil || sol.Schedule == nil {
		t.Fatal("winner missing placement or schedule")
	}
	if err := sol.Placement.Validate(sol.Problem); err != nil {
		t.Errorf("winning placement invalid: %v", err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Races.Started != 1 || m.Races.Completed != 1 {
		t.Errorf("race counters = %+v, want started=completed=1", m.Races)
	}
	if m.Races.Incumbents != len(st.Progress) {
		t.Errorf("Incumbents = %d, progress has %d points", m.Races.Incumbents, len(st.Progress))
	}
}

// TestAnytimeBypassesCache: two identical anytime submissions both run —
// deadline-bounded races are wall-clock dependent, so their results must
// never be served from the deterministic result cache.
func TestAnytimeBypassesCache(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	req := anytimeRequest(t, 2000, "greedy", "lns:iters=30")
	for i := 0; i < 2; i++ {
		st, _, err := c.SolveAnytime(ctx, req)
		if err != nil {
			t.Fatalf("SolveAnytime #%d: %v", i, err)
		}
		if st.CacheHit {
			t.Errorf("submission %d answered from cache", i)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Races.Started != 2 {
		t.Errorf("Started = %d, want 2 (no cache hit)", m.Races.Started)
	}
	if m.Cache.Entries != 0 {
		t.Errorf("cache entries = %d, want 0", m.Cache.Entries)
	}
}

func TestAnytimeDeadlineReturnsBestSoFar(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	// Unbounded SA must be cut off by the 300ms deadline with best-so-far.
	st, sol, err := c.SolveAnytime(ctx, anytimeRequest(t, 300, "greedy", "sa:iters=0;cooling=0.99999"))
	if err != nil {
		t.Fatalf("SolveAnytime: %v", err)
	}
	if sol == nil || len(st.Progress) == 0 {
		t.Fatal("no best-so-far incumbent at deadline")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Races.DeadlineExpired != 1 {
		t.Errorf("DeadlineExpired = %d, want 1", m.Races.DeadlineExpired)
	}
}

func TestAnytimeValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	cases := []SolveRequest{
		anytimeRequest(t, 0, "warp-drive"),           // unknown solver
		anytimeRequest(t, -5, "greedy"),              // negative deadline
		anytimeRequest(t, MaxDeadlineMS+1, "greedy"), // beyond cap
		anytimeRequest(t, 0, "sa:iters=0"),           // unbounded without deadline
		{Problem: testProblem(t), DeadlineMS: 100},   // deadline without portfolio
		func() SolveRequest { // classic placer conflicts with a race
			r := anytimeRequest(t, 0, "greedy")
			r.Options.Placer = "ffd"
			return r
		}(),
		func() SolveRequest { // classic scheduler conflicts with a race
			r := anytimeRequest(t, 0, "greedy")
			r.Options.Scheduler = "cga"
			return r
		}(),
	}
	for i, req := range cases {
		if _, err := c.Solve(ctx, req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
}

// TestAnytimeCancelReturnsBestSoFar: cancelling a running race stops it
// and, when an incumbent already exists, the job completes with the
// best-so-far result (the anytime contract: best-so-far on deadline or
// cancel).
func TestAnytimeCancelReturnsBestSoFar(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	// Unbounded SA keeps the race running until the cancel arrives.
	st, err := c.Solve(ctx, anytimeRequest(t, 60_000, "greedy", "sa:iters=0;cooling=0.99999"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, StateRunning)
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	switch final.State {
	case StateDone:
		if len(final.Progress) == 0 {
			t.Error("done without any incumbent in progress")
		}
		if _, err := c.SolveResult(ctx, st.ID); err != nil {
			t.Errorf("best-so-far result unavailable: %v", err)
		}
	case StateCanceled:
		// The cancel won the race against the first incumbent — legal, the
		// job reports canceled instead of best-so-far.
	default:
		t.Errorf("canceled anytime job ended %s (error %q)", final.State, final.Error)
	}
}
