// Package service turns the nfvchain library into a long-running decision
// service: an HTTP JSON API over the joint placement/scheduling optimizer
// (core.Optimize) and the discrete-event simulator (core.Simulate), backed
// by a bounded job queue, a configurable worker pool that reuses
// simulate.Simulators, and a content-addressed result cache.
//
// The API (stdlib net/http only):
//
//	POST   /v1/solve            submit an optimization job; with a
//	                            "portfolio" list (+ optional "deadline_ms")
//	                            it races solvers anytime-style and returns
//	                            best-so-far on deadline or cancel
//	POST   /v1/simulate         submit a solve+simulate (or simulate-only) job
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result job result (the Solution or Results JSON)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /healthz             liveness probe
//	GET    /metrics             queue/worker/cache/latency metrics (JSON)
//
// Jobs are content-addressed: the SHA-256 fingerprint of the canonical
// (endpoint, problem, options, sim-config) JSON keys a result cache, so an
// identical submission returns a completed job instantly. A full queue
// answers 429 with a Retry-After header — backpressure instead of unbounded
// memory growth. Results are deterministic: a served job is bit-identical
// to the corresponding direct library call under the same seed. Anytime
// portfolio jobs are the one exception — a deadline-bounded race is
// wall-clock dependent, so they bypass the result cache.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"nfvchain/internal/core"
	"nfvchain/internal/model"
	"nfvchain/internal/placement"
	"nfvchain/internal/scheduling"
	"nfvchain/internal/simulate"
)

// SolveOptions is the wire form of core.Options: algorithms by name so the
// request is pure data (and fingerprintable).
type SolveOptions struct {
	// Placer selects the phase-one algorithm: bfdsu|ffd|bfd|wfd|nah|exact
	// ("" = bfdsu, the paper's proposal).
	Placer string `json:"placer,omitempty"`
	// Scheduler selects the phase-two algorithm:
	// rckk|cga|ckk|kkforward|roundrobin|exact ("" = rckk).
	Scheduler string `json:"scheduler,omitempty"`
	// LinkDelay is the per-hop latency L of Eq. 16.
	LinkDelay float64 `json:"linkDelay,omitempty"`
	// DisableAdmissionControl keeps overloaded assignments.
	DisableAdmissionControl bool `json:"disableAdmissionControl,omitempty"`
	// Seed drives the seeded algorithms (BFDSU).
	Seed uint64 `json:"seed,omitempty"`
}

// coreOptions resolves the named algorithms into core.Options.
func (o SolveOptions) coreOptions() (core.Options, error) {
	opts := core.Options{
		LinkDelay:               o.LinkDelay,
		DisableAdmissionControl: o.DisableAdmissionControl,
		Seed:                    o.Seed,
	}
	switch o.Placer {
	case "", "bfdsu":
		// nil selects BFDSU with Seed inside core.Optimize.
	case "ffd":
		opts.Placer = placement.FFD{}
	case "bfd":
		opts.Placer = placement.BFD{}
	case "wfd":
		opts.Placer = placement.WFD{}
	case "nah":
		opts.Placer = placement.NAH{}
	case "exact":
		opts.Placer = &placement.Exact{}
	default:
		return opts, fmt.Errorf("unknown placer %q (want bfdsu|ffd|bfd|wfd|nah|exact)", o.Placer)
	}
	switch o.Scheduler {
	case "", "rckk":
	case "cga":
		opts.Scheduler = scheduling.CGA{}
	case "ckk":
		opts.Scheduler = scheduling.CKK{}
	case "kkforward":
		opts.Scheduler = scheduling.KKForward{}
	case "roundrobin":
		opts.Scheduler = scheduling.RoundRobin{}
	case "exact":
		opts.Scheduler = &scheduling.Exact{}
	default:
		return opts, fmt.Errorf("unknown scheduler %q (want rckk|cga|ckk|kkforward|roundrobin|exact)", o.Scheduler)
	}
	return opts, nil
}

// SolveRequest is the POST /v1/solve body. Setting Portfolio switches the
// job into anytime mode: the listed solver specs (see portfolio.ParseSpec;
// e.g. "greedy", "sa:iters=5000;seed=7", "lns", "pso") race on parallel
// workers, the incumbent objective trajectory streams through the job's
// Progress, and the best-so-far solution is returned when every solver
// finishes or DeadlineMS expires. Anytime jobs bypass the result cache:
// a deadline-bounded race is wall-clock dependent, and the cache only
// serves deterministic results.
type SolveRequest struct {
	Problem *model.Problem `json:"problem"`
	Options SolveOptions   `json:"options"`
	// Portfolio lists the solver specs to race; empty means the classic
	// single-pipeline solve.
	Portfolio []string `json:"portfolio,omitempty"`
	// DeadlineMS bounds the race's wall-clock budget in milliseconds
	// (0 = no deadline, allowed only when every spec has an iteration
	// budget; max MaxDeadlineMS). Ignored without Portfolio.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// MaxDeadlineMS caps an anytime job's deadline (10 minutes).
const MaxDeadlineMS = 600_000

// ProgressPoint is one incumbent of an anytime job's objective trajectory:
// monotone decreasing in Objective, in publication order.
type ProgressPoint struct {
	Solver    string  `json:"solver"`
	Objective float64 `json:"objective"`
	Iteration int     `json:"iteration"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// SimOptions is the wire form of core.SimulationConfig: enums by name so
// the request is pure data. Trace replay and fault hooks are not exposed
// over the wire; FaultPlan (plain data) is.
type SimOptions struct {
	Horizon    float64 `json:"horizon"`
	Warmup     float64 `json:"warmup,omitempty"`
	BufferSize int     `json:"bufferSize,omitempty"`
	// DropPolicy: discard|retransmit ("" = discard).
	DropPolicy      string  `json:"dropPolicy,omitempty"`
	RetransmitDelay float64 `json:"retransmitDelay,omitempty"`
	// ServiceDist: exponential|deterministic|lognormal ("" = exponential).
	ServiceDist string `json:"serviceDist,omitempty"`
	// Agenda: auto|heap|ladder ("" = auto); results are bit-identical under
	// every choice.
	Agenda string `json:"agenda,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// FaultPlan optionally injects node failures (requires the solution to
	// carry a placement).
	FaultPlan *simulate.FaultPlan `json:"faultPlan,omitempty"`
	// FailurePolicy: drop|retransmit ("" = drop). Ignored without FaultPlan.
	FailurePolicy string `json:"failurePolicy,omitempty"`
}

// simConfig resolves the named enums into a core.SimulationConfig.
func (o SimOptions) simConfig() (core.SimulationConfig, error) {
	cfg := core.SimulationConfig{
		Horizon:         o.Horizon,
		Warmup:          o.Warmup,
		BufferSize:      o.BufferSize,
		RetransmitDelay: o.RetransmitDelay,
		Seed:            o.Seed,
		FaultPlan:       o.FaultPlan,
	}
	switch o.DropPolicy {
	case "", "discard":
	case "retransmit":
		cfg.DropPolicy = simulate.DropRetransmit
	default:
		return cfg, fmt.Errorf("unknown drop policy %q (want discard|retransmit)", o.DropPolicy)
	}
	switch o.ServiceDist {
	case "", "exponential":
	case "deterministic":
		cfg.ServiceDist = simulate.ServiceDeterministic
	case "lognormal":
		cfg.ServiceDist = simulate.ServiceLogNormal
	default:
		return cfg, fmt.Errorf("unknown service distribution %q (want exponential|deterministic|lognormal)", o.ServiceDist)
	}
	if o.Agenda != "" {
		kind, err := simulate.ParseAgendaKind(o.Agenda)
		if err != nil {
			return cfg, err
		}
		cfg.Agenda = kind
	}
	switch o.FailurePolicy {
	case "", "drop":
	case "retransmit":
		cfg.FailurePolicy = simulate.FailRetransmit
	default:
		return cfg, fmt.Errorf("unknown failure policy %q (want drop|retransmit)", o.FailurePolicy)
	}
	return cfg, nil
}

// SimulateRequest is the POST /v1/simulate body. Exactly one of Problem
// (solve first, then simulate) or Solution (simulate a previously solved —
// e.g. nfvsim -out — document verbatim) must be set.
type SimulateRequest struct {
	Problem *model.Problem `json:"problem,omitempty"`
	// Options configures the solve phase; ignored with a posted Solution.
	Options SolveOptions `json:"options"`
	// Solution is a core.Solution document (problem+placement+schedule).
	Solution json.RawMessage `json:"solution,omitempty"`
	Sim      SimOptions      `json:"sim"`
}

// JobState enumerates a job's lifecycle.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the wire form of a job's state, returned by the submit,
// status and cancel endpoints.
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"` // "solve" or "simulate"
	State JobState `json:"state"`
	// CacheHit marks a submission answered from the result cache.
	CacheHit bool   `json:"cacheHit,omitempty"`
	Error    string `json:"error,omitempty"`
	// Progress is the anytime-race incumbent trajectory so far; empty for
	// classic jobs.
	Progress []ProgressPoint `json:"progress,omitempty"`
}

// Metrics is the GET /metrics document.
type Metrics struct {
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	Workers       int `json:"workers"`
	BusyWorkers   int `json:"busyWorkers"`
	// WorkerUtilization is BusyWorkers/Workers.
	WorkerUtilization float64 `json:"workerUtilization"`
	// JobsByState counts every job ever submitted by current state.
	JobsByState map[JobState]int `json:"jobsByState"`
	Cache       CacheMetrics     `json:"cache"`
	// JobLatency summarizes enqueue-to-finish latency (seconds) over the
	// most recent completed jobs. Always present so the document shape is
	// stable: all-zero until the first job completes, never NaN.
	JobLatency LatencyMetrics `json:"jobLatency"`
	// Races counts anytime-portfolio activity. Always present.
	Races RaceMetrics `json:"races"`
}

// RaceMetrics counts anytime-race traffic.
type RaceMetrics struct {
	// Started and Completed count races begun/finished by a worker.
	Started   int `json:"started"`
	Completed int `json:"completed"`
	// DeadlineExpired counts races that ended by deadline rather than by
	// exhausting every solver's budget.
	DeadlineExpired int `json:"deadlineExpired"`
	// Incumbents counts first-improvement publications across all races.
	Incumbents int `json:"incumbents"`
}

// CacheMetrics counts result-cache traffic.
type CacheMetrics struct {
	Hits    int `json:"hits"`
	Misses  int `json:"misses"`
	Entries int `json:"entries"`
	// HitRate is Hits/(Hits+Misses), 0 before any lookup.
	HitRate float64 `json:"hitRate"`
}

// LatencyMetrics summarizes job latencies with the repo's stats helpers.
type LatencyMetrics struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// fingerprint returns the SHA-256 content address of a request: the
// endpoint kind plus the canonical re-marshaling of the parsed body, so
// formatting differences (whitespace, field order) between semantically
// identical submissions do not split the cache.
func fingerprint(kind string, req any) (string, error) {
	canon, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("service: fingerprint: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}
